(* Command line interface to the library: build the paper's grammars and
   automata, check them, count, extract rectangle covers, and print the
   certified bounds. *)

open Cmdliner
open Ucfg_lang
open Ucfg_cfg
open Ucfg_core
module Bignum = Ucfg_util.Bignum

let n_arg =
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Language parameter n.")

(* every subcommand takes --jobs and sizes the Ucfg_exec pool before its
   body runs; results are identical at any job count, only wall-clock moves *)
let jobs_term =
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"JOBS"
          ~doc:
            "Domains used by the parallel execution pool (default: \
             $(b,UCFG_JOBS) or the machine's core count; 1 disables \
             parallelism).")
  in
  Term.(const (fun jobs -> Option.iter Ucfg_exec.Exec.set_jobs jobs) $ jobs_arg)

(* --timeout/--budget install a per-invocation resource guard as the
   ambient [Ucfg_exec.Exec] guard; every long-running library loop polls
   it cooperatively, and a trip surfaces as a diagnostic with exit code
   124 (the GNU timeout convention) *)
let guard_term =
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Abort the computation after $(docv) seconds of wall clock; \
             exits 124 with a diagnostic.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Abort after $(docv) guard ticks (loop iterations, summed \
             across domains); exits 124 with a diagnostic.")
  in
  Term.(
    const (fun timeout budget ->
        if timeout <> None || budget <> None then
          Ucfg_exec.Exec.set_guard (Ucfg_exec.Guard.create ?timeout ?budget ()))
    $ timeout_arg $ budget_arg)

(* --jobs then --timeout/--budget, shared by every subcommand *)
let common_term = Term.(const (fun () () -> ()) $ jobs_term $ guard_term)

(* the CLI's release version: also echoed by the serve daemon's ping and
   recorded in bombard reports *)
let version = "1.3.0"

(* guard trips and malformed inputs render as the linter's diagnostics:
   stable code, severity, message, optional hint — same text and JSON
   shape everywhere.  The constructors live in [Ucfg_lint.Diag] so the
   serve daemon's per-request error responses share them. *)
let interrupt_diag = Ucfg_lint.Diag.interrupted
let input_diag = Ucfg_lint.Diag.invalid_input

let kind_arg =
  let kinds =
    [ ("log", `Log); ("example3", `Example3); ("example4", `Example4);
      ("trivial", `Trivial) ]
  in
  Arg.(
    value
    & opt (enum kinds) `Log
    & info [ "kind" ] ~docv:"KIND"
        ~doc:
          "Grammar construction: $(b,log) (Appendix A), $(b,example3) (the \
           KMN grammar, n interpreted as t), $(b,example4) (the unambiguous \
           grammar), $(b,trivial) (one rule per word).")

let build_grammar kind n =
  match kind with
  | `Log -> Constructions.log_cfg n
  | `Example3 -> Constructions.example3 n
  | `Example4 -> Constructions.example4 n
  | `Trivial ->
    Constructions.of_language Ucfg_word.Alphabet.binary (Ln.language n)

let load_grammar path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Grammar_io.parse Ucfg_word.Alphabet.binary text

let from_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "from-file" ] ~docv:"PATH"
        ~doc:
          "Load a grammar from a file (Grammar_io text format over the \
           binary alphabet) instead of building a construction.")

(* --- separation ---------------------------------------------------------- *)

let separation_cmd =
  let run () ns =
    let reports = Ucfg_exec.Exec.parallel_map Separation.run ns in
    Report.print_table ~title:"Theorem 1 separation"
      ~headers:Separation.headers (Separation.rows reports)
  in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ]
      & info [ "ns" ] ~docv:"N,N,..." ~doc:"Values of n to report.")
  in
  Cmd.v (Cmd.info "separation" ~doc:"The Theorem 1 size table for L_n.")
    Term.(const run $ common_term $ ns_arg)

(* --- grammar ------------------------------------------------------------- *)

let grammar_cmd =
  let run () kind n print check from_file =
    let g =
      match from_file with
      | Some path -> load_grammar path
      | None -> build_grammar kind n
    in
    Printf.printf "size: %d\nnonterminals: %d\nrules: %d\n" (Grammar.size g)
      (Grammar.nonterminal_count g) (Grammar.rule_count g);
    if check then begin
      (if from_file = None then begin
         let expected =
           match kind with
           | `Example3 -> Ln.language ((1 lsl n) + 1)
           | _ -> Ln.language n
         in
         let actual = Analysis.language_exn g in
         Printf.printf "accepts L_n exactly: %b\n" (Lang.equal expected actual)
       end);
      Printf.printf "unambiguous: %b\n" (Ambiguity.is_unambiguous g)
    end;
    if print then print_endline (Grammar.to_string g)
  in
  let print_arg =
    Arg.(value & flag & info [ "print" ] ~doc:"Print all rules.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Verify the language against brute force and decide ambiguity.")
  in
  Cmd.v
    (Cmd.info "grammar"
       ~doc:"Build one of the paper's grammars for L_n, or load one.")
    Term.(
      const run $ common_term $ kind_arg $ n_arg $ print_arg $ check_arg
      $ from_file_arg)

(* --- count --------------------------------------------------------------- *)

let count_cmd =
  let run () n meth =
    match meth with
    | `Dp ->
      let g = Cnf.of_grammar (Constructions.example4 n) in
      Printf.printf "|L_%d| = %s (uCFG dynamic program)\n" n
        (Bignum.to_string (Count.words_unambiguous g (2 * n)))
    | `Enum ->
      let g = Constructions.log_cfg n in
      Printf.printf "|L_%d| = %s (enumeration of the ambiguous CFG)\n" n
        (Bignum.to_string (Count.words_by_enumeration g))
    | `Formula ->
      Printf.printf "|L_%d| = %s (4^n - 3^n)\n" n (Bignum.to_string (Ln.cardinal n))
  in
  let meth_arg =
    Arg.(
      value
      & opt (enum [ ("dp", `Dp); ("enum", `Enum); ("formula", `Formula) ]) `Formula
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"$(b,dp) (poly-time on the uCFG), $(b,enum) (brute force), \
                $(b,formula).")
  in
  Cmd.v (Cmd.info "count" ~doc:"Count the words of L_n.")
    Term.(const run $ common_term $ n_arg $ meth_arg)

(* --- rectangles ---------------------------------------------------------- *)

let rectangles_cmd =
  let run () kind n no_packed =
    let g = build_grammar kind n in
    let res = Ucfg_rect.Extract.run g in
    let v, shape_ok =
      Ucfg_rect.Extract.verify ~packed:(not no_packed) g res
    in
    Printf.printf
      "word length: %d\nCNF size: %d\nannotated size (Lemma 10): %d\n\
       rectangles: %d (bound N·|G| = %d)\ncover verified: %b\ndisjoint: %b\n\
       balanced and within bound: %b\n"
      res.Ucfg_rect.Extract.word_length res.Ucfg_rect.Extract.cnf_size
      res.Ucfg_rect.Extract.annotated_size
      (List.length res.Ucfg_rect.Extract.rectangles)
      res.Ucfg_rect.Extract.bound v.Ucfg_rect.Cover.is_cover
      v.Ucfg_rect.Cover.is_disjoint shape_ok
  in
  let no_packed_arg =
    Arg.(
      value & flag
      & info [ "no-packed" ]
          ~doc:
            "Verify the cover on the string-set baseline instead of the \
             packed bitset kernel (for timing comparisons; same result).")
  in
  Cmd.v
    (Cmd.info "rectangles"
       ~doc:"Run the Proposition 7 extraction on one of the grammars.")
    Term.(const run $ common_term $ kind_arg $ n_arg $ no_packed_arg)

(* --- bound --------------------------------------------------------------- *)

let bound_cmd =
  let run () ns =
    Report.print_table ~title:"Theorem 12 certified bounds"
      ~headers:[ "n"; "cover lower bound"; "uCFG size lower bound"; "log2" ]
      (Ucfg_exec.Exec.parallel_map
         (fun n ->
            [
              string_of_int n;
              Bignum.to_string (Ucfg_disc.Bound.cover_lower_bound n);
              Bignum.to_string (Ucfg_disc.Bound.ucfg_size_lower_bound n);
              Printf.sprintf "%.1f" (Ucfg_disc.Bound.log2_ucfg_bound n);
            ])
         ns)
  in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 50; 100; 200; 400; 800 ]
      & info [ "ns" ] ~docv:"N,N,..." ~doc:"Values of n.")
  in
  Cmd.v (Cmd.info "bound" ~doc:"Print the certified uCFG lower bounds.")
    Term.(const run $ common_term $ ns_arg)

(* --- csv ----------------------------------------------------------------- *)

let csv_cmd =
  let run () columns width =
    let s = { Csv.columns; width } in
    let g = Csv.grammar s in
    Printf.printf "columns: %d, width: %d, word length: %d\n" columns width
      (Csv.word_length s);
    Printf.printf "ambiguous CFG size: %d\n" (Grammar.size g);
    Printf.printf "uCFG lower bound (via the L_n reduction): %s\n"
      (Bignum.to_string (Csv.ucfg_size_lower_bound s))
  in
  let columns_arg =
    Arg.(value & opt int 4 & info [ "columns" ] ~docv:"K" ~doc:"Column count.")
  in
  let width_arg =
    Arg.(value & opt int 2 & info [ "width" ] ~docv:"W" ~doc:"Column width.")
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"The CSV information-extraction application.")
    Term.(const run $ common_term $ columns_arg $ width_arg)

(* --- access -------------------------------------------------------------- *)

let access_cmd =
  let run () n index sample seed =
    let da =
      Direct_access.create (Cnf.of_grammar (Constructions.example4 n))
        ~max_len:(2 * n)
    in
    Printf.printf "|L_%d| = %s\n" n (Bignum.to_string (Direct_access.total da));
    (match index with
     | Some i -> begin
         match Direct_access.nth da (Bignum.of_int i) with
         | Some w ->
           Printf.printf "word #%d = %s" i w;
           (match Direct_access.rank da w with
            | Some r -> Printf.printf " (rank checks: %s)\n" (Bignum.to_string r)
            | None -> print_newline ())
         | None -> Printf.printf "index %d out of range\n" i
       end
     | None -> ());
    if sample then begin
      let rng = Ucfg_util.Rng.create seed in
      match Direct_access.sample da rng with
      | Some w -> Printf.printf "uniform sample: %s\n" w
      | None -> Printf.printf "empty language\n"
    end
  in
  let index_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "index" ] ~docv:"I" ~doc:"Return the I-th word of L_n.")
  in
  let sample_arg =
    Arg.(value & flag & info [ "sample" ] ~doc:"Draw a uniform word.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Sampling seed.")
  in
  Cmd.v
    (Cmd.info "access"
       ~doc:"Direct access into L_n through the unambiguous grammar.")
    Term.(const run $ common_term $ n_arg $ index_arg $ sample_arg $ seed_arg)

(* --- profile ------------------------------------------------------------- *)

let profile_cmd =
  let run () kind n =
    let g = build_grammar kind n in
    let p = Ambiguity.profile g in
    Printf.printf "words: %d\nambiguous words: %d\nmax parse trees: %s\n"
      p.Ambiguity.word_total p.Ambiguity.ambiguous_words
      (Bignum.to_string p.Ambiguity.max_trees);
    List.iter
      (fun (k, v) -> Printf.printf "  %s trees: %d words\n" k v)
      p.Ambiguity.histogram
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Ambiguity-degree histogram of a grammar.")
    Term.(const run $ common_term $ kind_arg $ n_arg)

(* --- intersect ------------------------------------------------------------ *)

let intersect_cmd =
  let run () n check =
    let cube =
      Constructions.sigma_chain Ucfg_word.Alphabet.binary (2 * n)
    in
    let g =
      Ucfg_automata.Bar_hillel.intersect cube (Ucfg_automata.Ln_nfa.pattern n)
    in
    Printf.printf "Bar–Hillel product (Σ^%d ∩ pattern): size %d, %d rules\n"
      (2 * n) (Grammar.size g) (Grammar.rule_count g);
    if check then
      Printf.printf "equals L_%d: %b\n" n
        (Lang.equal (Ln.language n) (Analysis.language_exn g))
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify against brute force.")
  in
  Cmd.v
    (Cmd.info "intersect"
       ~doc:"Rebuild L_n by the Bar–Hillel product Σ^2n ∩ pattern.")
    Term.(const run $ common_term $ n_arg $ check_arg)

(* --- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let run () kind n from_file json nfa list_checks semantic =
    if list_checks then begin
      let print_registry title checks =
        Printf.printf "%s\n" title;
        List.iter
          (fun (c : Ucfg_lint.Diag.check) ->
             Printf.printf "  %s  %-11s %s\n" c.code
               (Ucfg_lint.Diag.soundness_label c.soundness)
               c.title)
          checks
      in
      print_registry "Grammar checks:" Ucfg_lint.Grammar_lint.checks;
      print_registry "Semantic checks:" Ucfg_lint.Semantic_lint.checks;
      print_registry "NFA checks:" Ucfg_lint.Nfa_lint.checks;
      exit 0
    end;
    let diags =
      if nfa then Ucfg_lint.Nfa_lint.run (Ucfg_automata.Ln_nfa.build n)
      else begin
        let g =
          match from_file with
          | Some path -> load_grammar path
          | None -> build_grammar kind n
        in
        Ucfg_lint.Grammar_lint.run ~semantic g
      end
    in
    if json then print_endline (Ucfg_lint.Diag.list_to_json diags)
    else Format.printf "%a@." Ucfg_lint.Diag.pp_report diags;
    exit (if Ucfg_lint.Diag.has_errors diags then 1 else 0)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let nfa_arg =
    Arg.(
      value & flag
      & info [ "nfa" ]
          ~doc:"Lint the Theorem 1(2) NFA for L_n instead of a grammar.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List every check code and its soundness status.")
  in
  let semantic_arg =
    Arg.(
      value & flag
      & info [ "semantic" ]
          ~doc:
            "Also run the deep semantic tier (universality with the \
             counting/packed backend cross-check, codes G016\xe2\x80\x93G020).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static diagnostics for a grammar or NFA: dead symbols, cycles, CNF \
          readiness, and sound ambiguity pre-checks.  Exits 1 when an error \
          fires (definite ambiguity).")
    Term.(
      const run $ common_term $ kind_arg $ n_arg $ from_file_arg $ json_arg
      $ nfa_arg $ list_arg $ semantic_arg)

(* --- check ----------------------------------------------------------------- *)

module SL = Ucfg_lint.Semantic_lint

(* A comparison grammar: a Grammar_io file path, or [kind:N] naming one of
   the built-in constructions (e.g. [log:4], [trivial:4]). *)
let load_spec spec =
  let built =
    match String.index_opt spec ':' with
    | None -> None
    | Some i ->
      let kind = String.sub spec 0 i
      and rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match
         ( List.assoc_opt kind
             [ ("log", `Log); ("example3", `Example3);
               ("example4", `Example4); ("trivial", `Trivial) ],
           int_of_string_opt rest )
       with
       | Some k, Some n -> Some (build_grammar k n)
       | _ -> None)
  in
  match built with
  | Some g -> g
  | None ->
    if Sys.file_exists spec then load_grammar spec
    else
      failwith
        (Printf.sprintf
           "grammar spec %S is neither a readable file nor KIND:N (KIND one \
            of log, example3, example4, trivial)" spec)

let check_cmd =
  let run () kind n from_file universal includes equiv disjoint cross_check
      json =
    let g1 =
      match from_file with
      | Some path -> load_grammar path
      | None -> build_grammar kind n
    in
    let props =
      (if universal then [ `Universal ] else [])
      @ (match includes with Some s -> [ `Includes s ] | None -> [])
      @ (match equiv with Some s -> [ `Equiv s ] | None -> [])
      @ (match disjoint with Some s -> [ `Disjoint s ] | None -> [])
    in
    match props with
    | [ prop ] ->
      let name, report =
        match prop with
        | `Universal -> ("universal", SL.universal ~cross_check g1)
        | `Includes s -> ("includes", SL.includes ~cross_check g1 (load_spec s))
        | `Equiv s -> ("equiv", SL.equiv ~cross_check g1 (load_spec s))
        | `Disjoint s -> ("disjoint", SL.disjoint ~cross_check g1 (load_spec s))
      in
      let diags = SL.to_diags report in
      let backend =
        match report.SL.backend with
        | SL.Counting -> "count"
        | SL.Packed -> "packed"
        | SL.Mixed -> "mixed"
      in
      let big = function Some b -> Bignum.to_string b | None -> "?" in
      if json then begin
        let status, reason =
          match report.SL.status with
          | SL.Holds -> ("holds", "null")
          | SL.Fails _ -> ("fails", "null")
          | SL.Interrupted r ->
            ( "interrupted",
              Printf.sprintf "%S" (Ucfg_exec.Guard.reason_code r) )
        in
        let opt_big = function
          | Some b -> Printf.sprintf "\"%s\"" (Bignum.to_string b)
          | None -> "null"
        in
        let witness =
          match report.SL.status with
          | SL.Fails cex ->
            Printf.sprintf
              "{ \"word\": %S, \"in_first\": %b, \"in_second\": %b }"
              cex.SL.word cex.SL.in_first cex.SL.in_second
          | _ -> "null"
        in
        Printf.printf
          "{ \"property\": %S, \"status\": %S, \"reason\": %s, \
           \"backend\": %S, \"vacuous\": %b, \"cardinal\": %s, \
           \"cardinal2\": %s, \"witness\": %s, \"diagnostics\": %s }\n"
          name status reason backend report.SL.vacuous
          (opt_big report.SL.cardinal)
          (opt_big report.SL.cardinal2)
          witness
          (Ucfg_lint.Diag.list_to_json diags)
      end
      else begin
        (match report.SL.status with
         | SL.Holds ->
           Printf.printf "check %s: HOLDS%s\n" name
             (if report.SL.vacuous then " (vacuously)" else "")
         | SL.Fails cex ->
           Printf.printf "check %s: FAILS\n" name;
           if not (report.SL.vacuous && prop = `Universal) then
             Printf.printf
               "witness: %S (in L(G1): %b, in comparison language: %b)\n"
               cex.SL.word cex.SL.in_first cex.SL.in_second
         | SL.Interrupted r ->
           Printf.printf "check %s: INTERRUPTED (%s)\n" name
             (Ucfg_exec.Guard.reason_code r));
        Printf.printf "backend: %s\n|L(G1)| = %s\n|comparison| = %s\n" backend
          (big report.SL.cardinal) (big report.SL.cardinal2);
        if diags <> [] then
          Format.printf "%a@." Ucfg_lint.Diag.pp_report diags
      end;
      exit
        (match report.SL.status with
         | SL.Interrupted _ -> 124
         | _ -> if Ucfg_lint.Diag.has_errors diags then 1 else 0)
    | _ ->
      let d =
        input_diag
          "pass exactly one of --universal, --includes, --equiv, --disjoint"
      in
      if json then print_endline (Ucfg_lint.Diag.list_to_json [ d ])
      else Format.printf "%a@." Ucfg_lint.Diag.pp_report [ d ];
      exit 2
  in
  let universal_arg =
    Arg.(
      value & flag
      & info [ "universal" ]
          ~doc:
            "Decide L(G) = \xce\xa3^\xe2\x84\x93 (the grammar's alphabet, \
             uniform length).")
  in
  let spec_doc verb =
    Printf.sprintf
      "Decide %s, where $(docv) is a grammar file or KIND:N (KIND one of \
       log, example3, example4, trivial)."
      verb
  in
  let includes_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "includes" ] ~docv:"SPEC"
          ~doc:(spec_doc "L(G) \xe2\x8a\x86 L(G2)"))
  in
  let equiv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "equiv" ] ~docv:"SPEC" ~doc:(spec_doc "L(G) = L(G2)"))
  in
  let disjoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "disjoint" ] ~docv:"SPEC"
          ~doc:(spec_doc "L(G) \xe2\x88\xa9 L(G2) = \xe2\x88\x85"))
  in
  let cross_check_arg =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "Run both decision backends (certificate-gated counting and \
             packed algebra) and fail with G020 if they disagree.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Decide universality, inclusion, equivalence or disjointness of \
          bounded-length grammars, with a shortest counterexample witness \
          on failure.  Uses exact tree counting when the unambiguity \
          certificate holds (the comparison language is never enumerated), \
          packed language algebra otherwise.  Exit codes: 0 the property \
          holds, 1 it fails (or an internal cross-check error), 2 invalid \
          input, 124 guard trip ($(b,--timeout)/$(b,--budget)).")
    Term.(
      const run $ common_term $ kind_arg $ n_arg $ from_file_arg
      $ universal_arg $ includes_arg $ equiv_arg $ disjoint_arg
      $ cross_check_arg $ json_arg)

(* --- search ---------------------------------------------------------------- *)

let search_cmd =
  let run () n unambiguous max_nonterminals max_size nodes json checkpoint_root
      no_checkpoint no_memo resume =
    let lang = Ln.language n in
    let budget = nodes in
    (* one checkpoint directory per search identity: a resume can only
       ever see a checkpoint written by the same search *)
    let checkpoint =
      if no_checkpoint then None
      else
        Some
          (Filename.concat checkpoint_root
             (Search.checkpoint_key ~unambiguous ~max_nonterminals ~max_size
                ?budget Ucfg_word.Alphabet.binary lang))
    in
    let r =
      Search.minimal_cnf_size ~unambiguous ~max_nonterminals ~max_size
        ?budget ~memo:(not no_memo) ?checkpoint ~resume
        Ucfg_word.Alphabet.binary lang
    in
    let warn_diags =
      match r.Search.checkpoint_warning with
      | Some reason -> [ Ucfg_lint.Diag.checkpoint_corrupt reason ]
      | None -> []
    in
    match r.Search.interrupted with
    | Some reason ->
      (* the guard tripped mid-search: report the partial progress the
         same way in text and JSON, then exit 124 like a trip anywhere
         else in the pipeline would *)
      let diags = interrupt_diag reason :: warn_diags in
      if json then
        Printf.printf
          "{ \"interrupted\": \"%s\", \"nodes_explored\": %d, \
           \"nodes_exact\": false, \"checkpoint\": %s, \"resumed\": %b, \
           \"diagnostics\": %s }\n"
          (Ucfg_exec.Guard.reason_code reason)
          r.Search.nodes_explored
          (match r.Search.checkpoint_written with
           | Some path -> Printf.sprintf "%S" path
           | None -> "null")
          r.Search.resumed
          (Ucfg_lint.Diag.list_to_json diags)
      else begin
        Format.printf "%a@." Ucfg_lint.Diag.pp_report diags;
        Printf.printf
          "partial nodes explored: %d (approximate: scheduling-dependent \
           under --jobs > 1)\n"
          r.Search.nodes_explored;
        (match r.Search.checkpoint_written with
         | Some path ->
           Printf.printf
             "checkpoint written: %s\nrerun with --resume to continue\n" path
         | None -> ())
      end;
      exit 124
    | None ->
      if json then
        Printf.printf
          "{ \"minimal_size\": %s, \"nodes_explored\": %d, \
           \"budget_exhausted\": %b, \"memo_hits\": %d, \"memo_misses\": %d, \
           \"resumed\": %b%s }\n"
          (match r.Search.minimal_size with
           | Some s -> string_of_int s
           | None -> "null")
          r.Search.nodes_explored r.Search.budget_exhausted r.Search.memo_hits
          r.Search.memo_misses r.Search.resumed
          (if warn_diags = [] then ""
           else
             Printf.sprintf ", \"diagnostics\": %s"
               (Ucfg_lint.Diag.list_to_json warn_diags))
      else begin
        if warn_diags <> [] then
          Format.printf "%a@." Ucfg_lint.Diag.pp_report warn_diags;
        (match r.Search.minimal_size, r.Search.witness with
         | Some s, Some g ->
           Printf.printf "minimal CNF size for L_%d: %d\n" n s;
           print_endline (Grammar.to_string g)
         | _ ->
           Printf.printf "no grammar within caps%s\n"
             (if r.Search.budget_exhausted then " (node budget exhausted)"
              else ""));
        Printf.printf "nodes explored: %d\n" r.Search.nodes_explored;
        if r.Search.resumed then
          Printf.printf "resumed from checkpoint (memo: %d hits, %d misses)\n"
            r.Search.memo_hits r.Search.memo_misses
      end
  in
  let unambiguous_arg =
    Arg.(
      value & flag
      & info [ "unambiguous" ] ~doc:"Restrict the search to uCFGs.")
  in
  let max_nonterminals_arg =
    Arg.(
      value & opt int 3
      & info [ "max-nonterminals" ] ~docv:"K" ~doc:"Nonterminal cap.")
  in
  let max_size_arg =
    Arg.(
      value & opt int 12
      & info [ "max-size" ] ~docv:"S" ~doc:"Grammar size cap.")
  in
  let nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "nodes" ] ~docv:"B"
          ~doc:
            "Deterministic search-node budget (default 3000000); distinct \
             from the wall-clock/tick guard of $(b,--timeout)/$(b,--budget).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.")
  in
  let checkpoint_dir_arg =
    Arg.(
      value
      & opt string (Filename.concat "_repro" "search")
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Root directory for search checkpoints; each search uses the \
             subdirectory named by its parameter digest.")
  in
  let no_checkpoint_arg =
    Arg.(
      value & flag
      & info [ "no-checkpoint" ]
          ~doc:"Do not write a checkpoint when the guard interrupts the run.")
  in
  let no_memo_arg =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:
            "Disable the cross-domain verdict memo (identical result, \
             slower on symmetric instances).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the checkpoint of an earlier interrupted run \
             with the same parameters, if one exists; a damaged or \
             mismatched checkpoint degrades to a fresh run with an R021 \
             warning.")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Exhaustively search the smallest CNF grammar accepting exactly \
          L_n.  Exponential: combine with --timeout/--budget for large n; \
          an interrupted run writes a checkpoint, reports its partial node \
          count and exits 124; $(b,--resume) picks it up.")
    Term.(
      const run $ common_term $ n_arg $ unambiguous_arg $ max_nonterminals_arg
      $ max_size_arg $ nodes_arg $ json_arg $ checkpoint_dir_arg
      $ no_checkpoint_arg $ no_memo_arg $ resume_arg)

(* --- circuit ---------------------------------------------------------------- *)

let circuit_cmd =
  let run () n =
    let naive = Ucfg_kc.Ln_circuit.naive n in
    let det = Ucfg_kc.Ln_circuit.deterministic n in
    Printf.printf "DNNF size: %d\nd-DNNF size: %d\nmodel count: %s (4^n - 3^n = %s)\n"
      (Ucfg_kc.Circuit.size naive) (Ucfg_kc.Circuit.size det)
      (Bignum.to_string (Ucfg_kc.Circuit.model_count det))
      (Bignum.to_string (Ln.cardinal n))
  in
  Cmd.v
    (Cmd.info "circuit"
       ~doc:"Boolean DNNF / d-DNNF circuits for the L_n predicate.")
    Term.(const run $ common_term $ n_arg)

(* --- serve ----------------------------------------------------------------- *)

module Server = Ucfg_serve.Server
module Bombard = Ucfg_serve.Bombard

let cache_dir_arg =
  Arg.(
    value
    & opt string "_repro/cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Root of the on-disk artifact cache (created on demand).")

let no_disk_arg =
  Arg.(
    value & flag
    & info [ "no-disk-cache" ]
        ~doc:"Keep the cache in memory only (no on-disk tier).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Loopback TCP port.")

let serve_cmd =
  (* the daemon must not inherit a process-wide --timeout guard (it would
     trip once and poison every later request), so it takes per-request
     defaults instead of [guard_term] and only uses [jobs_term] *)
  let run () socket tcp stdin_mode cache_dir no_disk mem_capacity
      cache_max_bytes default_timeout default_budget max_connections
      queue_capacity idle_timeout_ms max_request_bytes drain_timeout_ms
      backlog =
    let cache_dir = if no_disk then None else Some cache_dir in
    let srv =
      Server.create ~cache_dir ?mem_capacity ?cache_max_bytes
        ?default_timeout_ms:(Option.map (fun s -> s *. 1000.) default_timeout)
        ?default_budget ?max_connections ?queue_capacity ?idle_timeout_ms
        ?max_request_bytes ?drain_timeout_ms ~version ()
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let finish = function
      | Server.Drained -> ()
      | Server.Forced n ->
        Printf.eprintf
          "ucfg serve: forced exit: %d request(s) ignored cancellation\n%!" n;
        (* skip at_exit: it joins the domain pool, which a wedged request
           may hold forever *)
        Unix._exit 1
    in
    let install_drain_signals () =
      (* first signal: graceful drain (finish in-flight, flush the cache,
         exit 0); second: give up immediately *)
      let hits = Atomic.make 0 in
      let on_signal _ =
        if Atomic.fetch_and_add hits 1 = 0 then Server.request_drain srv
        else Unix._exit 1
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
    in
    match socket, tcp, stdin_mode with
    | Some path, None, false ->
      install_drain_signals ();
      Printf.eprintf "ucfg serve: listening on %s\n%!" path;
      finish (Server.run_unix ?backlog srv ~path)
    | None, Some port, false ->
      install_drain_signals ();
      Printf.eprintf "ucfg serve: listening on 127.0.0.1:%d\n%!" port;
      finish (Server.run_tcp ?backlog srv ~port)
    | None, None, true -> Server.run_stdin srv stdin stdout
    | None, None, false ->
      failwith "pass one of --socket PATH, --tcp PORT, --stdin"
    | _ -> failwith "pass exactly one of --socket, --tcp, --stdin"
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Batch mode: read all request lines from stdin, fan them over \
             the pool, and write response lines in request order (tests, \
             CI).")
  in
  let mem_capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-capacity" ] ~docv:"N"
          ~doc:"In-memory LRU entry cap (default 512).")
  in
  let cache_max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte cap on the on-disk cache tier; after each store, \
             oldest-stamp entries are evicted until the store fits \
             (default: unbounded).")
  in
  let default_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request wall-clock deadline applied when a request \
             carries none; a trip degrades that request to an R001 error \
             response, not process death.")
  in
  let default_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-budget" ] ~docv:"N"
          ~doc:"Per-request tick budget applied when a request carries none.")
  in
  let max_connections_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Serve up to $(docv) connections concurrently, each on its own \
             worker (default: the --jobs count).")
  in
  let queue_capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Accepted connections waiting for a worker beyond \
             --max-connections (default: --max-connections); past that the \
             daemon sheds with a retriable R013 response.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Absolute deadline for one complete request line (default \
             30000; <= 0 disables).  A stalled mid-request connection gets \
             a retriable R014 error and is closed; an idle one is closed \
             quietly.")
  in
  let max_request_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:
            "Cap on one request line (default 1048576); an oversized \
             request gets R015 and the connection is closed.")
  in
  let drain_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:
            "On SIGTERM/SIGINT or a shutdown request, wait up to $(docv) \
             (default 5000) for in-flight requests before cancelling their \
             guards (they answer R003).")
  in
  let backlog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "backlog" ] ~docv:"N"
          ~doc:"Kernel accept backlog for the listener (default 64).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived grammar-analysis daemon: line-delimited JSON requests \
          (lint / check / ambiguity / rectangles / rank) answered through a \
          content-addressed artifact cache (in-memory LRU over a verified \
          on-disk store).  Guard trips and bad inputs become structured \
          error responses carrying the documented exit-code taxonomy \
          (R001\xe2\x80\x93R003 \xe2\x86\x92 124, R010/R011 \xe2\x86\x92 2) \
          instead of killing the process.")
    Term.(
      const run $ jobs_term $ socket_arg $ tcp_arg $ stdin_arg $ cache_dir_arg
      $ no_disk_arg $ mem_capacity_arg $ cache_max_bytes_arg
      $ default_timeout_arg
      $ default_budget_arg $ max_connections_arg $ queue_capacity_arg
      $ idle_timeout_arg $ max_request_bytes_arg $ drain_timeout_arg
      $ backlog_arg)

(* --- bombard --------------------------------------------------------------- *)

let bombard_cmd =
  let run () socket tcp in_process cache_dir no_disk smoke profile seed
      requests dump json_out json assert_warm_hits shutdown chaos_mode
      request_line rounds burst stall_ms oversize_bytes clients =
    let profile = if smoke then "smoke" else profile in
    let requests =
      match requests with
      | Some r -> r
      | None -> if profile = "smoke" then 40 else 200
    in
    let target =
      match socket, tcp with
      | Some path, None -> Some (Bombard.Unix_path path)
      | None, Some port -> Some (Bombard.Tcp_port port)
      | None, None -> None
      | Some _, Some _ -> failwith "pass one of --socket PATH or --tcp PORT"
    in
    let need_target what =
      match target with
      | Some t -> t
      | None -> failwith (what ^ " needs --socket PATH or --tcp PORT")
    in
    let with_dump f =
      let dump_oc = Option.map open_out dump in
      Fun.protect
        ~finally:(fun () -> Option.iter close_out dump_oc)
        (fun () -> f dump_oc)
    in
    let emit_report report =
      (match json_out with
       | Some path ->
         let oc = open_out path in
         output_string oc (Bombard.to_json report);
         output_char oc '\n';
         close_out oc
       | None -> ());
      if json then print_endline (Bombard.to_json report)
      else print_endline (Bombard.to_text report);
      if not (Bombard.ok report) then exit 1;
      if assert_warm_hits && report.Bombard.warm_hit_ratio <= 0. then begin
        prerr_endline
          "bombard: --assert-warm-hits failed (warm hit ratio is 0)";
        exit 3
      end
    in
    match request_line, chaos_mode with
    | Some _, true -> failwith "--request and --chaos are mutually exclusive"
    | Some line, false -> (
        (* one request, one response line on stdout: the drain-smoke
           client, and a handy manual probe *)
        let tgt = need_target "--request" in
        match Bombard.one_shot tgt line with
        | Some resp ->
          print_endline resp;
          if shutdown then ignore (Bombard.one_shot tgt {|{"op": "shutdown"}|})
        | None ->
          prerr_endline
            "bombard: no response (connection closed or timed out)";
          exit 1)
    | None, true ->
      let tgt = need_target "--chaos" in
      let params =
        { Bombard.rounds; burst; stall_ms; oversize_bytes }
      in
      let report =
        with_dump (fun dump_oc ->
            Bombard.chaos ?dump:dump_oc ~params ~target:tgt ~seed ())
      in
      if shutdown then ignore (Bombard.one_shot tgt {|{"op": "shutdown"}|});
      (match json_out with
       | Some path ->
         let oc = open_out path in
         output_string oc (Bombard.chaos_to_json report);
         output_char oc '\n';
         close_out oc
       | None -> ());
      if json then print_endline (Bombard.chaos_to_json report)
      else print_endline (Bombard.chaos_to_text report);
      if not (Bombard.chaos_ok report) then exit 1
    | None, false when clients > 1 ->
      let tgt = need_target "--clients" in
      let report =
        with_dump (fun dump_oc ->
            Bombard.concurrent_run ?dump:dump_oc ~profile ~seed ~requests
              ~clients tgt)
      in
      if shutdown then ignore (Bombard.one_shot tgt {|{"op": "shutdown"}|});
      emit_report report
    | None, false ->
    let send, cleanup =
      match socket, tcp, in_process with
      | Some path, None, false ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        let ic = Unix.in_channel_of_descr fd
        and oc = Unix.out_channel_of_descr fd in
        ( (fun line ->
             output_string oc line;
             output_char oc '\n';
             flush oc;
             input_line ic),
          fun () -> try Unix.close fd with Unix.Unix_error _ -> () )
      | None, Some port, false ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let ic = Unix.in_channel_of_descr fd
        and oc = Unix.out_channel_of_descr fd in
        ( (fun line ->
             output_string oc line;
             output_char oc '\n';
             flush oc;
             input_line ic),
          fun () -> try Unix.close fd with Unix.Unix_error _ -> () )
      | None, None, true ->
        let cache_dir = if no_disk then None else Some cache_dir in
        let srv = Server.create ~cache_dir ~version () in
        (Server.handle_line srv, fun () -> ())
      | _ ->
        failwith "pass exactly one of --socket PATH, --tcp PORT, --in-process"
    in
    let report =
      Fun.protect
        ~finally:(fun () ->
          if shutdown then ignore (send {|{"op": "shutdown"}|});
          cleanup ())
        (fun () ->
           with_dump (fun dump_oc ->
               Bombard.run ?dump:dump_oc ~profile ~seed ~requests send))
    in
    emit_report report
  in
  let in_process_arg =
    Arg.(
      value & flag
      & info [ "in-process" ]
          ~doc:
            "Drive an in-process server instead of a socket (no daemon \
             needed; uses --cache-dir/--no-disk-cache).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Shorthand for --profile smoke with a CI-sized request count.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (enum [ ("smoke", "smoke"); ("mixed", "mixed") ]) "mixed"
      & info [ "profile" ] ~docv:"NAME" ~doc:"Traffic profile: smoke or mixed.")
  in
  let seed_arg =
    Arg.(value & opt int 1066 & info [ "seed" ] ~docv:"S" ~doc:"Traffic seed.")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:"Warm-phase request count (default 40 smoke / 200 mixed).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"PATH"
          ~doc:
            "Write one '<key> <result>' line per distinct request — a \
             stable transcript for cold/warm and jobs 1-vs-4 diffs.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:"Also write the JSON report to $(docv) (CI artifact).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let assert_arg =
    Arg.(
      value & flag
      & info [ "assert-warm-hits" ]
          ~doc:"Exit 3 unless the warm-phase cache hit ratio is nonzero.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Send a shutdown request when done (stops the daemon).")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Seeded adversarial mode against a live daemon: partial \
             writes, mid-request disconnects, malformed and oversized \
             frames, slow and stalled clients, concurrent bursts — the \
             daemon must survive them all and keep answering \
             byte-identically (needs --socket/--tcp).")
  in
  let request_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "request" ] ~docv:"LINE"
          ~doc:
            "Send one request line, print the one response line, exit \
             (exit 1 if the connection closes unanswered; needs \
             --socket/--tcp).")
  in
  let rounds_arg =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~docv:"N" ~doc:"Chaos scenario rounds.")
  in
  let burst_arg =
    Arg.(
      value & opt int 6
      & info [ "burst" ] ~docv:"N"
          ~doc:"Concurrent clients per chaos burst round.")
  in
  let stall_ms_arg =
    Arg.(
      value & opt float 800.
      & info [ "stall-ms" ] ~docv:"MS"
          ~doc:
            "Chaos slow-loris silence; set above the daemon's \
             --idle-timeout-ms to exercise R014.")
  in
  let oversize_bytes_arg =
    Arg.(
      value & opt int 8192
      & info [ "oversize-bytes" ] ~docv:"BYTES"
          ~doc:
            "Chaos newline-free flood size; set above the daemon's \
             --max-request-bytes to exercise R015.")
  in
  let clients_arg =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Fan the warm phase over $(docv) concurrent connections \
             (needs --socket/--tcp when > 1).")
  in
  Cmd.v
    (Cmd.info "bombard"
       ~doc:
         "Seeded load generator for the serve daemon: replays a mixed \
          lint/check/ambiguity/rectangles/rank traffic profile and reports \
          p50/p99 latency, throughput and the cache hit ratio; fails (exit \
          1) if any response errors or two responses to the same request \
          differ byte-wise, and under $(b,--assert-warm-hits) (exit 3) if \
          the warm phase never hits the cache.")
    Term.(
      const run $ jobs_term $ socket_arg $ tcp_arg $ in_process_arg
      $ cache_dir_arg $ no_disk_arg $ smoke_arg $ profile_arg $ seed_arg
      $ requests_arg $ dump_arg $ json_out_arg $ json_arg $ assert_arg
      $ shutdown_arg $ chaos_arg $ request_arg $ rounds_arg $ burst_arg
      $ stall_ms_arg $ oversize_bytes_arg $ clients_arg)

let main_cmd =
  let doc =
    "reproduction of 'A Lower Bound on Unambiguous Context Free Grammars via \
     Communication Complexity' (PODS 2025)"
  in
  Cmd.group (Cmd.info "ucfg" ~version ~doc)
    [ separation_cmd; grammar_cmd; count_cmd; rectangles_cmd; bound_cmd;
      csv_cmd; access_cmd; profile_cmd; intersect_cmd; lint_cmd; check_cmd;
      circuit_cmd; search_cmd; serve_cmd; bombard_cmd ]

(* Exit codes: 0 success, 1 lint errors, 2 invalid input or usage,
   124 resource-guard trip (GNU timeout convention).  [~catch:false] lets
   library exceptions reach this handler so every failure mode renders as
   a diagnostic instead of a backtrace; cmdliner's own cli_error (124)
   would collide with the guard code, so usage errors are remapped to 2. *)
let () =
  let render d = Format.eprintf "%a@." Ucfg_lint.Diag.pp_report [ d ] in
  let code =
    try
      let c = Cmd.eval ~catch:false main_cmd in
      if c = Cmd.Exit.cli_error then 2 else c
    with
    | Ucfg_exec.Guard.Interrupt reason ->
      render (interrupt_diag reason);
      124
    | Invalid_argument msg | Failure msg | Sys_error msg ->
      render (input_diag msg);
      2
  in
  exit code
