open Ucfg_cfg
open Grammar

let () =
  let g =
    Grammar.make
      ~alphabet:(Ucfg_word.Alphabet.make ['a'])
      ~names:[| "S"; "A"; "B"; "C" |]
      ~rules:
        [
          { lhs = 0; rhs = [ N 1; N 2; N 3 ] };
          { lhs = 0; rhs = [ T 'a' ] };
          { lhs = 1; rhs = [] };
          { lhs = 2; rhs = [] };
          { lhs = 3; rhs = [ T 'a' ] };
        ]
      ~start:0
  in
  Printf.printf "count 'a' = %s (expected 2)\n"
    (Ucfg_util.Bignum.to_string (Count_word.trees g "a"))
