(* The communication-complexity view (Section 4.1): under the set
   perspective, L_n is the complement of set disjointness — the flagship
   problem of communication complexity.  This example walks the chain:
   words ↔ set pairs, rectangles, the communication matrix, rank and
   fooling bounds, and the discrepancy quantities of Lemma 18.

   Run with: dune exec examples/set_disjointness.exe *)

open Ucfg_rect
open Ucfg_comm
open Ucfg_core

let () =
  let n = 4 in
  Printf.printf "the set perspective at n = %d:\n" n;
  let w = "abaabbab" in
  let mask = Setview.of_word w in
  Printf.printf "  word %s ↔ X = {x_i : w_i = a} = bits %s of the mask\n" w
    (String.concat ","
       (List.map string_of_int
          (Ucfg_util.Bitset.elements
             (Ucfg_util.Bitset.of_mask n (Setview.x_part ~n mask)))));
  Printf.printf "  w ∈ L_%d ⟺ X ∩ Y ≠ ∅: %b\n\n" n (Setview.in_ln ~n mask);

  (* the communication matrix at the midpoint *)
  let m = Matrix.of_language Ucfg_word.Alphabet.binary (Ucfg_lang.Ln.language n) ~split:n in
  Printf.printf "communication matrix at the midpoint: %d × %d, %d ones\n"
    (Matrix.rows m) (Matrix.cols m) (Matrix.ones m);
  Printf.printf "rank over GF(2): %d, modulo p: %d  (2^n - 1 = %d)\n"
    (Rank.gf2 m) (Rank.mod_p m)
    ((1 lsl n) - 1);
  let fool = Fooling.greedy m in
  Printf.printf "greedy fooling set: %d pairs (so any cover needs ≥ %d \
                 rectangles)\n\n"
    (List.length fool) (List.length fool);

  (* a deterministic protocol and its rectangles *)
  let p = Protocol.intersects_protocol n in
  let xs = List.init (1 lsl n) Fun.id and ys = List.init (1 lsl n) Fun.id in
  Printf.printf
    "the trivial protocol (Alice announces her set): cost %d bits, %d \
     leaves, leaf classes are rectangles: %b\n\n"
    (Protocol.cost p) (Protocol.leaves p)
    (Protocol.classes_are_rectangles p ~xs ~ys);

  (* Lemma 18's quantities *)
  let m4 = n / 4 in
  if m4 >= 1 then begin
    Report.print_table ~title:"Lemma 18 (m = n/4)"
      ~headers:[ "quantity"; "formula"; "value" ]
      [
        [ "|𝓛|"; "2^4m"; Ucfg_util.Bignum.to_string (Ucfg_disc.Counts.family_size ~m:m4) ];
        [ "|B \\ L_n|"; "12^m"; Ucfg_util.Bignum.to_string (Ucfg_disc.Counts.b_minus_ln ~m:m4) ];
        [ "|B| - |A|"; "2^3m"; Ucfg_util.Bignum.to_string (Ucfg_disc.Counts.b_minus_a ~m:m4) ];
        [ "advantage"; "12^m - 2^3m";
          Ucfg_util.Bignum.to_string (Ucfg_disc.Counts.advantage ~m:m4) ];
      ]
  end;

  (* the exact minimum disjoint cover for the smallest interesting case *)
  (match Cover_search.minimum_ln 2 with
   | Cover_search.Exact k ->
     Printf.printf
       "ground truth: the minimum disjoint cover of L_2 by balanced ordered \
        rectangles has exactly %d rectangles\n" k
   | Cover_search.Budget_exhausted lb ->
     Printf.printf "search exhausted; at least %d rectangles\n" lb
   | Cover_search.Interrupted (lb, _) ->
     Printf.printf "search interrupted; at least %d rectangles\n" lb);

  Printf.printf
    "\nand asymptotically (Proposition 16): any disjoint cover of L_n \
     needs 2^Ω(n) rectangles —\n";
  List.iter
    (fun n ->
       Printf.printf "  n = %4d: ≥ %s rectangles\n" n
         (Ucfg_util.Bignum.to_string (Ucfg_disc.Bound.cover_lower_bound n)))
    [ 100; 200; 400 ]
