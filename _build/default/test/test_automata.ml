(* Tests for the automata substrate: NFA core, determinization, DFA
   minimization, unambiguity, the L_n automata (including the Theorem 1(2)
   reproduction finding) and the grammar translations. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_automata
module BN = Ucfg_util.Bignum

let lang = Alcotest.testable Lang.pp Lang.equal

(* NFA for (ab)* as a warm-up fixture *)
let ab_star () =
  Nfa.make ~alphabet:Alphabet.binary ~states:2 ~initials:[ 0 ] ~finals:[ 0 ]
    ~transitions:[ (0, 'a', 1); (1, 'b', 0) ]
    ()

(* ambiguous NFA: two parallel paths for "ab" *)
let ambiguous_ab () =
  Nfa.make ~alphabet:Alphabet.binary ~states:5 ~initials:[ 0 ] ~finals:[ 3; 4 ]
    ~transitions:
      [ (0, 'a', 1); (1, 'b', 3); (0, 'a', 2); (2, 'b', 4) ]
    ()

let test_nfa_accepts () =
  let m = ab_star () in
  List.iter
    (fun (w, expect) ->
       Alcotest.(check bool) w expect (Nfa.accepts m w))
    [ ("", true); ("ab", true); ("abab", true); ("a", false); ("ba", false);
      ("aba", false) ]

let test_nfa_epsilon () =
  (* a?b via ε *)
  let m =
    Nfa.make ~alphabet:Alphabet.binary ~states:3 ~initials:[ 0 ] ~finals:[ 2 ]
      ~transitions:[ (0, 'a', 1); (1, 'b', 2) ]
      ~epsilons:[ (0, 1) ] ()
  in
  Alcotest.(check bool) "ab" true (Nfa.accepts m "ab");
  Alcotest.(check bool) "b" true (Nfa.accepts m "b");
  Alcotest.(check bool) "a" false (Nfa.accepts m "a");
  let m' = Nfa.remove_epsilon m in
  Alcotest.(check int) "no ε left" 0 (Nfa.epsilon_count m');
  Alcotest.check lang "same language"
    (Nfa.language m ~max_len:4)
    (Nfa.language m' ~max_len:4)

let test_nfa_product () =
  (* (ab)* ∩ words of even length... (ab)* already even; intersect with
     language of words starting with a *)
  let starts_a =
    Nfa.make ~alphabet:Alphabet.binary ~states:2 ~initials:[ 0 ] ~finals:[ 1 ]
      ~transitions:[ (0, 'a', 1); (1, 'a', 1); (1, 'b', 1) ]
      ()
  in
  let p = Nfa.product (ab_star ()) starts_a in
  Alcotest.(check bool) "ab" true (Nfa.accepts p "ab");
  Alcotest.(check bool) "ε excluded" false (Nfa.accepts p "");
  Alcotest.check lang "language"
    (Lang.inter
       (Nfa.language (ab_star ()) ~max_len:4)
       (Nfa.language starts_a ~max_len:4))
    (Nfa.language p ~max_len:4)

let test_nfa_union_reverse () =
  let u = Nfa.union (ab_star ()) (Nfa.of_word_list Alphabet.binary [ "ba" ]) in
  Alcotest.(check bool) "ab" true (Nfa.accepts u "ab");
  Alcotest.(check bool) "ba" true (Nfa.accepts u "ba");
  let r = Nfa.reverse (Nfa.of_word_list Alphabet.binary [ "ab"; "aab" ]) in
  Alcotest.check lang "reversed" (Lang.of_list [ "ba"; "baa" ])
    (Nfa.language r ~max_len:4)

let test_nfa_trim () =
  let m =
    Nfa.make ~alphabet:Alphabet.binary ~states:4 ~initials:[ 0 ] ~finals:[ 1 ]
      ~transitions:[ (0, 'a', 1); (0, 'b', 2); (3, 'a', 1) ]
      ()
  in
  let t = Nfa.trim m in
  Alcotest.(check int) "2 useful states" 2 (Nfa.state_count t);
  Alcotest.check lang "language kept" (Lang.singleton "a")
    (Nfa.language t ~max_len:3)

let test_count_paths () =
  let m = ambiguous_ab () in
  let counts = Nfa.count_paths_by_length m 2 in
  Alcotest.(check string) "two runs for ab" "2" (BN.to_string counts.(2))

let test_determinize () =
  let d = Determinize.run_exn (ambiguous_ab ()) in
  Alcotest.check lang "same language" (Lang.singleton "ab")
    (Dfa.language d ~max_len:3);
  Alcotest.(check bool) "accepts" true (Dfa.accepts d "ab");
  Alcotest.(check bool) "rejects" false (Dfa.accepts d "aa")

let test_determinize_cap () =
  match Determinize.run ~max_states:2 (Ln_nfa.build 4) with
  | Error `Too_many_states -> ()
  | Ok _ -> Alcotest.fail "expected state-cap overflow"

let test_dfa_minimize () =
  let d = Determinize.run_exn (ambiguous_ab ()) in
  let m = Dfa.minimize d in
  Alcotest.(check bool) "equivalent" true (Dfa.equivalent d m);
  (* minimal DFA for {ab}: 4 states (start, after-a, accept, dead) *)
  Alcotest.(check int) "4 states" 4 (Dfa.state_count m);
  (* idempotent *)
  Alcotest.(check int) "idempotent" 4 (Dfa.state_count (Dfa.minimize m))

let test_dfa_complement () =
  let d = Determinize.run_exn (Nfa.of_word_list Alphabet.binary [ "ab" ]) in
  let c = Dfa.complement d in
  Alcotest.(check bool) "ab rejected" false (Dfa.accepts c "ab");
  Alcotest.(check bool) "aa accepted" true (Dfa.accepts c "aa");
  Alcotest.(check bool) "ε accepted" true (Dfa.accepts c "")

let test_dfa_count_words () =
  let d = Determinize.run_exn (Ln_nfa.build 3) in
  let counts = Dfa.count_words_by_length d 6 in
  Alcotest.(check string) "|L_3| = 4^3-3^3 = 37" "37" (BN.to_string counts.(6));
  Alcotest.(check string) "no length-5 words" "0" (BN.to_string counts.(5))

(* --- L_n automata ------------------------------------------------------- *)

let test_ln_nfa_exact () =
  List.iter
    (fun n ->
       Alcotest.check lang
         (Printf.sprintf "Ln_nfa %d accepts L_%d" n n)
         (Ln.language n)
         (Nfa.language (Ln_nfa.build n) ~max_len:(2 * n)))
    [ 1; 2; 3; 4; 5 ]

let test_ln_nfa_no_longer_words () =
  let m = Ln_nfa.build 3 in
  Seq.iter
    (fun w ->
       if Nfa.accepts m w then Alcotest.failf "accepts length-7 word %s" w)
    (Word.enumerate Alphabet.binary 7)

let test_ln_nfa_quadratic_size () =
  let sizes = List.map (fun n -> Nfa.state_count (Ln_nfa.build n)) [ 4; 8; 16 ] in
  match sizes with
  | [ s4; s8; s16 ] ->
    (* doubling n should roughly quadruple the state count *)
    Alcotest.(check bool)
      (Printf.sprintf "quadratic growth: %d %d %d" s4 s8 s16)
      true
      (s8 > 3 * s4 && s8 < 6 * s4 && s16 > 3 * s8 && s16 < 6 * s8)
  | _ -> assert false

let test_ln_pattern () =
  let p = Ln_nfa.pattern 3 in
  Alcotest.(check int) "n+2 states" 5 (Nfa.state_count p);
  (* the unbounded pattern accepts longer words too *)
  Alcotest.(check bool) "long word" true (Nfa.accepts p "bbabbabb");
  Alcotest.(check bool) "member of L_3" true (Nfa.accepts p "aabaab");
  Alcotest.(check bool) "no match" false (Nfa.accepts p "aabbba");
  (* L_n = pattern ∩ Σ^2n *)
  List.iter
    (fun n ->
       let filtered =
         Lang.filter
           (fun w -> Nfa.accepts (Ln_nfa.pattern n) w)
           (Lang.full Alphabet.binary (2 * n))
       in
       Alcotest.check lang
         (Printf.sprintf "pattern ∩ Σ^%d = L_%d" (2 * n) n)
         (Ln.language n) filtered)
    [ 1; 2; 3; 4 ]

let test_fooling_sets_are_fooling () =
  (* the Ω(n²) certificate: each level's pairs satisfy the fooling
     property exactly *)
  List.iter
    (fun n ->
       List.iter
         (fun i ->
            let pairs = Array.of_list (Ln_nfa.fooling_set n i) in
            Array.iteri
              (fun k (x, y) ->
                 if not (Ln.mem n (x ^ y)) then
                   Alcotest.failf "n=%d i=%d: diagonal pair %d not in L_n" n i k;
                 Array.iteri
                   (fun j (_, y') ->
                      if j <> k && Ln.mem n (x ^ y') then
                        Alcotest.failf "n=%d i=%d: cross pair (%d,%d) in L_n" n
                          i k j)
                   pairs)
              pairs)
         (Ucfg_util.Prelude.range_incl 0 (2 * n)))
    [ 1; 2; 3; 4; 6; 8 ]

let test_state_lower_bound_quadratic () =
  (* Σ_i min(i, 2n-i, n) = Θ(n²); exact value n²-n+... check monotone
     quadratic behaviour and the closed form for a couple of n *)
  let lb n = Ln_nfa.state_lower_bound n in
  Alcotest.(check int) "n=2" (0 + 1 + 2 + 1 + 0) (lb 2);
  Alcotest.(check bool) "quadratic" true
    (lb 16 > 3 * lb 8 && lb 16 < 5 * lb 8);
  (* the certified lower bound is consistent: our Θ(n²) NFA respects it *)
  List.iter
    (fun n ->
       Alcotest.(check bool)
         (Printf.sprintf "NFA(%d) >= bound" n)
         true
         (Nfa.state_count (Ln_nfa.build n) >= lb n))
    [ 1; 2; 4; 8 ]

let test_minimal_dfa_exponential () =
  let dfa_size n = Dfa.state_count (Determinize.minimal_dfa (Ln_nfa.build n)) in
  let s2 = dfa_size 2 and s3 = dfa_size 3 and s4 = dfa_size 4 in
  Alcotest.(check bool)
    (Printf.sprintf "DFA sizes grow fast: %d %d %d" s2 s3 s4)
    true
    (s3 >= 2 * s2 && s4 >= 2 * s3)

(* --- unambiguity -------------------------------------------------------- *)

let test_ufa_check () =
  Alcotest.(check bool) "(ab)* unambiguous" true
    (Unambiguous.is_unambiguous (ab_star ()));
  Alcotest.(check bool) "parallel paths ambiguous" false
    (Unambiguous.is_unambiguous (ambiguous_ab ()));
  (* the guess-and-verify NFA is ambiguous for n >= 2: a word with two
     matches has two runs *)
  Alcotest.(check bool) "Ln_nfa 2 ambiguous" false
    (Unambiguous.is_unambiguous (Ln_nfa.build 2));
  Alcotest.(check bool) "Ln_nfa 1 unambiguous" true
    (Unambiguous.is_unambiguous (Ln_nfa.build 1))

let test_ambiguous_word () =
  match Unambiguous.ambiguous_word (Ln_nfa.build 2) ~max_len:4 with
  | None -> Alcotest.fail "expected an ambiguous word"
  | Some w ->
    (* must have two distinct matches *)
    Alcotest.(check bool) ("two matches in " ^ w) true
      (w.[0] = 'a' && w.[2] = 'a' && w.[1] = 'a' && w.[3] = 'a')

let test_count_words_nfa () =
  let counts = Unambiguous.count_words (Ln_nfa.build 3) 6 in
  Alcotest.(check string) "|L_3|" "37" (BN.to_string counts.(6))

(* --- translations ------------------------------------------------------- *)

let test_cfg_of_nfa () =
  List.iter
    (fun n ->
       let g = Translate.cfg_of_nfa (Ln_nfa.build n) in
       Alcotest.check lang
         (Printf.sprintf "right-linear grammar accepts L_%d" n)
         (Ln.language n)
         (Ucfg_cfg.Analysis.language_exn g))
    [ 1; 2; 3 ]

let test_cfg_of_nfa_tree_bijection () =
  (* parse trees = accepting runs: ambiguous NFA gives ambiguous grammar *)
  let g_amb = Translate.cfg_of_nfa (ambiguous_ab ()) in
  Alcotest.(check bool) "ambiguous carried over" false
    (Ucfg_cfg.Ambiguity.is_unambiguous g_amb);
  let g_det = Translate.cfg_of_dfa (Determinize.run_exn (ambiguous_ab ())) in
  Alcotest.(check bool) "DFA grammar unambiguous" true
    (Ucfg_cfg.Ambiguity.is_unambiguous g_det)

let test_right_linear_roundtrip () =
  let g = Translate.cfg_of_nfa (Ln_nfa.build 2) in
  let m = Translate.nfa_of_right_linear g in
  Alcotest.check lang "roundtrip language" (Ln.language 2)
    (Nfa.language m ~max_len:4)

(* --- UFA for L_n ---------------------------------------------------------- *)

let test_ufa_ln_exact_and_unambiguous () =
  List.iter
    (fun n ->
       let u = Ufa_ln.build n in
       Alcotest.check lang
         (Printf.sprintf "UFA accepts L_%d" n)
         (Ln.language n)
         (Nfa.language u ~max_len:(2 * n));
       Alcotest.(check bool)
         (Printf.sprintf "UFA %d unambiguous" n)
         true
         (Unambiguous.is_unambiguous u))
    [ 1; 2; 3; 4 ]

let test_ufa_ln_size_sandwich () =
  (* 2^n - 1 <= UFA states <= O(2^n); and exponentially above the plain
     NFA *)
  List.iter
    (fun n ->
       let states = Nfa.state_count (Ufa_ln.build n) in
       let lb = Ufa_ln.state_lower_bound n in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d: %d within [%d, %d]" n states lb (8 * lb))
         true
         (states >= lb && states <= 8 * lb))
    [ 2; 3; 4; 5 ];
  let nfa5 = Nfa.state_count (Ln_nfa.build 5) in
  let ufa5 = Nfa.state_count (Ufa_ln.build 5) in
  Alcotest.(check bool)
    (Printf.sprintf "UFA %d > NFA %d" ufa5 nfa5)
    true (ufa5 > 2 * nfa5)

let test_ufa_lower_bound_is_rank () =
  (* the Schmidt bound used is exactly the midpoint matrix rank *)
  List.iter
    (fun n ->
       let m =
         Ucfg_comm.Matrix.of_language Alphabet.binary (Ln.language n) ~split:n
       in
       Alcotest.(check int)
         (Printf.sprintf "rank at n=%d" n)
         (Ufa_ln.state_lower_bound n)
         (Ucfg_comm.Rank.mod_p m))
    [ 1; 2; 3; 4; 5 ]

(* --- disambiguation (the KMN upper bound direction) ----------------------- *)

let test_disambiguate_correct () =
  List.iter
    (fun (name, g) ->
       let u = Disambiguate.ucfg_of_grammar g in
       Alcotest.check lang (name ^ ": language preserved")
         (Ucfg_cfg.Analysis.language_exn g)
         (Ucfg_cfg.Analysis.language_exn u);
       Alcotest.(check bool) (name ^ ": unambiguous") true
         (Ucfg_cfg.Ambiguity.is_unambiguous u))
    [
      ("log_cfg 3", Ucfg_cfg.Constructions.log_cfg 3);
      ("log_cfg 4", Ucfg_cfg.Constructions.log_cfg 4);
      ("example3 1", Ucfg_cfg.Constructions.example3 1);
    ]

let test_disambiguate_empty () =
  let empty =
    Ucfg_cfg.Grammar.make ~alphabet:Alphabet.binary ~names:[| "S" |] ~rules:[]
      ~start:0
  in
  Alcotest.check lang "empty stays empty" Lang.empty
    (Ucfg_cfg.Analysis.language_exn (Disambiguate.ucfg_of_grammar empty))

let test_disambiguate_blowup_exponential () =
  (* CFG Θ(log n) -> canonical uCFG Θ(2^n): the measured face of the
     double-exponential upper bound *)
  let _, u4 = Disambiguate.blowup (Ucfg_cfg.Constructions.log_cfg 4) in
  let s4, _ = Disambiguate.blowup (Ucfg_cfg.Constructions.log_cfg 4) in
  let _, u6 = Disambiguate.blowup (Ucfg_cfg.Constructions.log_cfg 6) in
  Alcotest.(check bool)
    (Printf.sprintf "blowup: %d -> %d, and %d at n=6" s4 u4 u6)
    true
    (u4 > 4 * s4 && u6 > 3 * u4)

(* --- Bar–Hillel ---------------------------------------------------------- *)

let test_bar_hillel_rebuilds_ln () =
  (* L_n = Σ^2n ∩ pattern: an independent route to a grammar for L_n *)
  List.iter
    (fun n ->
       let cube = Ucfg_cfg.Constructions.sigma_chain Alphabet.binary (2 * n) in
       let g = Bar_hillel.intersect cube (Ln_nfa.pattern n) in
       Alcotest.check lang
         (Printf.sprintf "Σ^%d ∩ pattern = L_%d" (2 * n) n)
         (Ln.language n)
         (Ucfg_cfg.Analysis.language_exn g))
    [ 1; 2; 3; 4 ]

let test_bar_hillel_ambiguity_tracks_runs () =
  (* cube grammar unambiguous × ambiguous pattern NFA: the product is
     exactly as ambiguous as the automaton's runs *)
  let cube = Ucfg_cfg.Constructions.sigma_chain Alphabet.binary 4 in
  let amb = Bar_hillel.intersect cube (Ln_nfa.pattern 2) in
  Alcotest.(check bool) "ambiguous product" false
    (Ucfg_cfg.Ambiguity.is_unambiguous amb);
  (* with a DFA instead, the product stays unambiguous *)
  let dfa = Determinize.run_exn (Ln_nfa.pattern 2) in
  let unam = Bar_hillel.intersect cube (Dfa.to_nfa dfa) in
  Alcotest.(check bool) "DFA product unambiguous" true
    (Ucfg_cfg.Ambiguity.is_unambiguous unam);
  Alcotest.check lang "same language"
    (Ucfg_cfg.Analysis.language_exn amb)
    (Ucfg_cfg.Analysis.language_exn unam)

let test_bar_hillel_empty_cases () =
  let cube = Ucfg_cfg.Constructions.sigma_chain Alphabet.binary 2 in
  (* intersect with an automaton accepting nothing of length 2 *)
  let only_long = Ln_nfa.build 3 in
  let g = Bar_hillel.intersect cube only_long in
  Alcotest.check lang "empty" Lang.empty (Ucfg_cfg.Analysis.language_exn g)

let prop_bar_hillel_random =
  QCheck.Test.make ~name:"Bar–Hillel = language intersection (random)"
    ~count:30 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g =
         Ucfg_cfg.Random_grammar.fixed_length rng ~word_len:4 ~variants:2
       in
       let words =
         List.init (1 + Ucfg_util.Rng.int rng 6) (fun _ ->
             Word.of_bits ~len:4 (Ucfg_util.Rng.bits62 rng land 15))
       in
       let nfa = Nfa.of_word_list Alphabet.binary words in
       let inter = Bar_hillel.intersect g nfa in
       Lang.equal
         (Ucfg_cfg.Analysis.language_exn inter)
         (Lang.inter
            (Ucfg_cfg.Analysis.language_exn g)
            (Lang.of_list words)))

let prop_determinize_preserves =
  QCheck.Test.make ~name:"determinization preserves language (random tries)"
    ~count:40 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words =
         List.init (1 + Ucfg_util.Rng.int rng 8) (fun _ ->
             Word.of_bits ~len:(Ucfg_util.Rng.int rng 5)
               (Ucfg_util.Rng.bits62 rng land 31))
       in
       let nfa = Nfa.of_word_list Alphabet.binary words in
       let dfa = Determinize.run_exn nfa in
       Lang.equal (Nfa.language nfa ~max_len:6) (Dfa.language dfa ~max_len:6))

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimization preserves language (random tries)"
    ~count:40 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words =
         List.init (1 + Ucfg_util.Rng.int rng 8) (fun _ ->
             Word.of_bits ~len:(Ucfg_util.Rng.int rng 5)
               (Ucfg_util.Rng.bits62 rng land 31))
       in
       let dfa = Determinize.run_exn (Nfa.of_word_list Alphabet.binary words) in
       Dfa.equivalent dfa (Dfa.minimize dfa))

let prop_trie_unambiguous =
  QCheck.Test.make ~name:"word tries are unambiguous" ~count:40
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words =
         List.init (1 + Ucfg_util.Rng.int rng 6) (fun _ ->
             Word.of_bits ~len:(1 + Ucfg_util.Rng.int rng 4)
               (Ucfg_util.Rng.bits62 rng land 15))
       in
       Unambiguous.is_unambiguous (Nfa.of_word_list Alphabet.binary words))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_determinize_preserves; prop_minimize_preserves;
      prop_trie_unambiguous; prop_bar_hillel_random ]

let () =
  Alcotest.run "ucfg_automata"
    [
      ( "nfa",
        [
          Alcotest.test_case "accepts" `Quick test_nfa_accepts;
          Alcotest.test_case "epsilon" `Quick test_nfa_epsilon;
          Alcotest.test_case "product" `Quick test_nfa_product;
          Alcotest.test_case "union/reverse" `Quick test_nfa_union_reverse;
          Alcotest.test_case "trim" `Quick test_nfa_trim;
          Alcotest.test_case "path counting" `Quick test_count_paths;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "determinize" `Quick test_determinize;
          Alcotest.test_case "state cap" `Quick test_determinize_cap;
          Alcotest.test_case "minimize" `Quick test_dfa_minimize;
          Alcotest.test_case "complement" `Quick test_dfa_complement;
          Alcotest.test_case "word counting" `Quick test_dfa_count_words;
        ] );
      ( "ln-automata",
        [
          Alcotest.test_case "exact language" `Quick test_ln_nfa_exact;
          Alcotest.test_case "rejects other lengths" `Quick
            test_ln_nfa_no_longer_words;
          Alcotest.test_case "Θ(n²) size" `Quick test_ln_nfa_quadratic_size;
          Alcotest.test_case "pattern automaton Θ(n)" `Quick test_ln_pattern;
          Alcotest.test_case "fooling sets valid (Ω(n²))" `Quick
            test_fooling_sets_are_fooling;
          Alcotest.test_case "lower bound quadratic" `Quick
            test_state_lower_bound_quadratic;
          Alcotest.test_case "minimal DFA exponential" `Slow
            test_minimal_dfa_exponential;
        ] );
      ( "unambiguous",
        [
          Alcotest.test_case "UFA check" `Quick test_ufa_check;
          Alcotest.test_case "ambiguous word" `Quick test_ambiguous_word;
          Alcotest.test_case "word counting" `Quick test_count_words_nfa;
        ] );
      ( "disambiguate",
        [
          Alcotest.test_case "correct + unambiguous" `Quick
            test_disambiguate_correct;
          Alcotest.test_case "empty language" `Quick test_disambiguate_empty;
          Alcotest.test_case "exponential blowup" `Quick
            test_disambiguate_blowup_exponential;
        ] );
      ( "ufa-ln",
        [
          Alcotest.test_case "exact + unambiguous" `Quick
            test_ufa_ln_exact_and_unambiguous;
          Alcotest.test_case "size sandwich 2^n" `Quick
            test_ufa_ln_size_sandwich;
          Alcotest.test_case "bound = rank" `Quick test_ufa_lower_bound_is_rank;
        ] );
      ( "bar-hillel",
        [
          Alcotest.test_case "rebuilds L_n" `Quick test_bar_hillel_rebuilds_ln;
          Alcotest.test_case "ambiguity tracks runs" `Quick
            test_bar_hillel_ambiguity_tracks_runs;
          Alcotest.test_case "empty intersection" `Quick
            test_bar_hillel_empty_cases;
        ] );
      ( "translate",
        [
          Alcotest.test_case "cfg_of_nfa language" `Quick test_cfg_of_nfa;
          Alcotest.test_case "tree/run bijection" `Quick
            test_cfg_of_nfa_tree_bijection;
          Alcotest.test_case "right-linear roundtrip" `Quick
            test_right_linear_roundtrip;
        ] );
      ("properties", qtests);
    ]
