(* Unit and property tests for the foundations: Bignum, Bitset, Rng,
   Prelude. *)

open Ucfg_util
module BN = Bignum

let bn = Alcotest.testable BN.pp BN.equal

(* --- Bignum ----------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
       Alcotest.(check (option int))
         (Printf.sprintf "roundtrip %d" n)
         (Some n)
         (BN.to_int (BN.of_int n)))
    [ 0; 1; -1; 42; -42; 999_999_999; 1_000_000_000; -1_000_000_001;
      max_int; min_int + 1 ]

let test_add_sub () =
  let a = BN.of_string "123456789012345678901234567890" in
  let b = BN.of_string "987654321098765432109876543210" in
  Alcotest.check bn "a+b"
    (BN.of_string "1111111110111111111011111111100")
    (BN.add a b);
  Alcotest.check bn "b-a"
    (BN.of_string "864197532086419753208641975320")
    (BN.sub b a);
  Alcotest.check bn "a-b"
    (BN.of_string "-864197532086419753208641975320")
    (BN.sub a b);
  Alcotest.check bn "a-a" BN.zero (BN.sub a a)

let test_mul () =
  let a = BN.of_string "123456789" in
  Alcotest.check bn "square"
    (BN.of_string "15241578750190521")
    (BN.mul a a);
  Alcotest.check bn "by zero" BN.zero (BN.mul a BN.zero);
  Alcotest.check bn "signs"
    (BN.of_string "-15241578750190521")
    (BN.mul a (BN.neg a))

let test_pow () =
  Alcotest.check bn "2^10" (BN.of_int 1024) (BN.pow BN.two 10);
  Alcotest.check bn "2^100"
    (BN.of_string "1267650600228229401496703205376")
    (BN.two_pow 100);
  Alcotest.check bn "12^20"
    (BN.of_string "3833759992447475122176")
    (BN.pow (BN.of_int 12) 20);
  Alcotest.check bn "x^0" BN.one (BN.pow (BN.of_int 7) 0)

let test_divmod_int () =
  let a = BN.of_string "1000000000000000000000001" in
  let q, r = BN.divmod_int a 7 in
  Alcotest.check bn "q*7+r" a (BN.add (BN.mul_int q 7) (BN.of_int r));
  Alcotest.(check bool) "0<=r<7" true (r >= 0 && r < 7)

let test_div_pow2 () =
  let a = BN.two_pow 200 in
  Alcotest.check bn "2^200/2^100" (BN.two_pow 100) (BN.div_pow2 a 100);
  Alcotest.check bn "(2^200+1)/2^100"
    (BN.two_pow 100)
    (BN.div_pow2 (BN.succ a) 100);
  Alcotest.check bn "ceil((2^200+1)/2^100)"
    (BN.succ (BN.two_pow 100))
    (BN.cdiv_pow2 (BN.succ a) 100);
  Alcotest.check bn "ceil(2^200/2^100)" (BN.two_pow 100) (BN.cdiv_pow2 a 100)

let test_compare () =
  Alcotest.(check bool) "neg < pos" true (BN.compare BN.minus_one BN.one < 0);
  Alcotest.(check bool) "ordering" true
    (BN.compare (BN.two_pow 64) (BN.two_pow 65) < 0);
  Alcotest.check bn "min" BN.minus_one (BN.min BN.minus_one BN.one);
  Alcotest.check bn "max" BN.one (BN.max BN.minus_one BN.one)

let test_to_string () =
  Alcotest.(check string) "zero" "0" (BN.to_string BN.zero);
  Alcotest.(check string)
    "limb boundary" "1000000000"
    (BN.to_string (BN.of_int 1_000_000_000));
  Alcotest.(check string)
    "negative" "-123456789123456789"
    (BN.to_string (BN.of_string "-123456789123456789"))

let test_divmod_general () =
  let a = BN.of_string "123456789012345678901234567890123" in
  let d = BN.of_string "987654321987654321" in
  let q, r = BN.divmod a d in
  Alcotest.check bn "reconstruct" a (BN.add (BN.mul q d) r);
  Alcotest.(check bool) "0 <= r < d" true
    (BN.sign r >= 0 && BN.compare r d < 0);
  Alcotest.check bn "exact division" (BN.of_int 0)
    (snd (BN.divmod (BN.mul d d) d));
  Alcotest.check bn "by one" a (fst (BN.divmod a BN.one));
  Alcotest.check bn "small by large" BN.zero (fst (BN.divmod d a))

let test_bit_length () =
  Alcotest.(check int) "0" 0 (BN.bit_length BN.zero);
  Alcotest.(check int) "1" 1 (BN.bit_length BN.one);
  Alcotest.(check int) "2^100" 101 (BN.bit_length (BN.two_pow 100));
  Alcotest.(check int) "2^100 - 1" 100 (BN.bit_length (BN.pred (BN.two_pow 100)))

let test_random_bignum () =
  let rng = Rng.create 5 in
  let bound = BN.of_string "1000000000000000000000" in
  for _ = 1 to 200 do
    let v = BN.random rng bound in
    if BN.sign v < 0 || BN.compare v bound >= 0 then
      Alcotest.failf "out of range: %s" (BN.to_string v)
  done;
  (* small bound hits every value *)
  let seen = Array.make 5 false in
  for _ = 1 to 300 do
    match BN.to_int (BN.random rng (BN.of_int 5)) with
    | Some v -> seen.(v) <- true
    | None -> Alcotest.fail "small value expected"
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_log2 () =
  let check_close msg expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "%s: |%f - %f| small" msg expected actual)
      true
      (Float.abs (expected -. actual) < 1e-6)
  in
  check_close "2^100" 100.0 (BN.log2 (BN.two_pow 100));
  check_close "12^50"
    (50.0 *. (Float.log 12. /. Float.log 2.))
    (BN.log2 (BN.pow (BN.of_int 12) 50))

(* properties *)

let gen_bignum =
  QCheck.Gen.(
    map
      (fun (a, b) -> BN.add (BN.mul (BN.of_int a) (BN.of_int b)) (BN.of_int a))
      (pair int int))

let arb_bignum = QCheck.make ~print:BN.to_string gen_bignum

let prop_add_comm =
  QCheck.Test.make ~name:"bignum add commutative" ~count:200
    (QCheck.pair arb_bignum arb_bignum)
    (fun (a, b) -> BN.equal (BN.add a b) (BN.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bignum mul distributes over add" ~count:200
    (QCheck.triple arb_bignum arb_bignum arb_bignum)
    (fun (a, b, c) ->
       BN.equal (BN.mul a (BN.add b c)) (BN.add (BN.mul a b) (BN.mul a c)))

let prop_sub_inverse =
  QCheck.Test.make ~name:"bignum a+b-b = a" ~count:200
    (QCheck.pair arb_bignum arb_bignum)
    (fun (a, b) -> BN.equal (BN.sub (BN.add a b) b) a)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bignum of_string . to_string = id" ~count:200
    arb_bignum
    (fun a -> BN.equal a (BN.of_string (BN.to_string a)))

let prop_divmod =
  QCheck.Test.make ~name:"bignum divmod_int reconstructs" ~count:200
    (QCheck.pair arb_bignum (QCheck.int_range 1 1_000_000_000))
    (fun (a, k) ->
       let a = BN.abs a in
       let q, r = BN.divmod_int a k in
       BN.equal a (BN.add (BN.mul_int q k) (BN.of_int r)) && r >= 0 && r < k)

let prop_divmod_general =
  QCheck.Test.make ~name:"bignum divmod reconstructs" ~count:200
    (QCheck.pair arb_bignum arb_bignum)
    (fun (a, d) ->
       let a = BN.abs a and d = BN.abs d in
       QCheck.assume (BN.sign d > 0);
       let q, r = BN.divmod a d in
       BN.equal a (BN.add (BN.mul q d) r)
       && BN.sign r >= 0
       && BN.compare r d < 0)

(* --- Bitset ----------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.of_list 100 [ 0; 61; 62; 63; 99 ] in
  Alcotest.(check int) "cardinal" 5 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 62" true (Bitset.mem s 62);
  Alcotest.(check bool) "mem 50" false (Bitset.mem s 50);
  Alcotest.(check (list int))
    "elements" [ 0; 61; 62; 63; 99 ] (Bitset.elements s);
  let s2 = Bitset.remove (Bitset.add s 50) 0 in
  Alcotest.(check (list int))
    "add/remove" [ 50; 61; 62; 63; 99 ] (Bitset.elements s2)

let test_bitset_ops () =
  let a = Bitset.of_list 70 [ 1; 2; 3; 65 ] in
  let b = Bitset.of_list 70 [ 3; 4; 65; 69 ] in
  Alcotest.(check (list int))
    "union" [ 1; 2; 3; 4; 65; 69 ]
    (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int))
    "inter" [ 3; 65 ]
    (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int))
    "diff" [ 1; 2 ]
    (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  Alcotest.(check bool) "subset inter" true (Bitset.subset (Bitset.inter a b) a)

let test_bitset_complement () =
  let a = Bitset.of_list 5 [ 0; 2; 4 ] in
  Alcotest.(check (list int))
    "complement" [ 1; 3 ]
    (Bitset.elements (Bitset.complement a));
  Alcotest.(check int) "full" 5 (Bitset.cardinal (Bitset.full 5));
  Alcotest.(check bool)
    "compl full is empty" true
    (Bitset.is_empty (Bitset.complement (Bitset.full 5)))

let test_bitset_mask () =
  let m = 0b101101 in
  let s = Bitset.of_mask 6 m in
  Alcotest.(check int) "to_mask" m (Bitset.to_mask s);
  Alcotest.(check (list int)) "elements" [ 0; 2; 3; 5 ] (Bitset.elements s)

let prop_bitset_union_card =
  QCheck.Test.make ~name:"bitset |A∪B| + |A∩B| = |A| + |B|" ~count:200
    (QCheck.pair (QCheck.list (QCheck.int_range 0 199))
       (QCheck.list (QCheck.int_range 0 199)))
    (fun (la, lb) ->
       let a = Bitset.of_list 200 la and b = Bitset.of_list 200 lb in
       Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b)
       = Bitset.cardinal a + Bitset.cardinal b)

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"bitset De Morgan" ~count:200
    (QCheck.pair (QCheck.list (QCheck.int_range 0 99))
       (QCheck.list (QCheck.int_range 0 99)))
    (fun (la, lb) ->
       let a = Bitset.of_list 100 la and b = Bitset.of_list 100 lb in
       Bitset.equal
         (Bitset.complement (Bitset.union a b))
         (Bitset.inter (Bitset.complement a) (Bitset.complement b)))

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let r1 = Rng.create 42 and r2 = Rng.create 42 in
  let l1 = List.init 20 (fun _ -> Rng.int r1 1000) in
  let l2 = List.init 20 (fun _ -> Rng.int r2 1000) in
  Alcotest.(check (list int)) "same seed, same stream" l1 l2

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Prelude ---------------------------------------------------------- *)

let test_prelude_ranges () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Ucfg_util.Prelude.range 2 5);
  Alcotest.(check (list int))
    "range_incl" [ 2; 3; 4; 5 ]
    (Ucfg_util.Prelude.range_incl 2 5);
  Alcotest.(check (list int)) "empty" [] (Ucfg_util.Prelude.range 5 5)

let test_prelude_log2 () =
  Alcotest.(check int) "floor 1" 0 (Prelude.log2_floor 1);
  Alcotest.(check int) "floor 7" 2 (Prelude.log2_floor 7);
  Alcotest.(check int) "floor 8" 3 (Prelude.log2_floor 8);
  Alcotest.(check int) "ceil 7" 3 (Prelude.log2_ceil 7);
  Alcotest.(check int) "ceil 8" 3 (Prelude.log2_ceil 8);
  Alcotest.(check int) "ceil 9" 4 (Prelude.log2_ceil 9)

let test_prelude_binary_digits () =
  Alcotest.(check (list int)) "13" [ 0; 2; 3 ] (Prelude.binary_digits 13);
  Alcotest.(check (list int)) "0" [] (Prelude.binary_digits 0);
  Alcotest.(check int)
    "reconstruct" 1234
    (Prelude.sum_int (List.map (fun i -> 1 lsl i) (Prelude.binary_digits 1234)))

let test_prelude_group_by () =
  let groups = Prelude.group_by_key [ (1, "a"); (2, "b"); (1, "c") ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check (list string)) "group 1" [ "a"; "c" ] (List.assoc 1 groups)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_comm; prop_mul_distributes; prop_sub_inverse;
      prop_string_roundtrip; prop_divmod; prop_divmod_general;
      prop_bitset_union_card;
      prop_bitset_demorgan ]

let () =
  Alcotest.run "ucfg_util"
    [
      ( "bignum",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "divmod_int" `Quick test_divmod_int;
          Alcotest.test_case "divmod general" `Quick test_divmod_general;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "random" `Quick test_random_bignum;
          Alcotest.test_case "div_pow2" `Quick test_div_pow2;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "log2" `Quick test_log2;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "boolean ops" `Quick test_bitset_ops;
          Alcotest.test_case "complement" `Quick test_bitset_complement;
          Alcotest.test_case "mask roundtrip" `Quick test_bitset_mask;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "ranges" `Quick test_prelude_ranges;
          Alcotest.test_case "log2" `Quick test_prelude_log2;
          Alcotest.test_case "binary digits" `Quick test_prelude_binary_digits;
          Alcotest.test_case "group_by" `Quick test_prelude_group_by;
        ] );
      ("properties", qtests);
    ]
