(* Cross-library integration properties: the pipelines of the paper
   composed end to end on randomised inputs.  Each test here crosses at
   least two libraries. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
module BN = Ucfg_util.Bignum

let arb_seed = QCheck.int_range 0 1_000_000

(* random word lists as finite-language fixtures *)
let random_words rng ~len ~count =
  List.init count (fun _ ->
      Word.of_bits ~len (Ucfg_util.Rng.bits62 rng land ((1 lsl len) - 1)))

let prop_pipeline_language_agreement =
  (* trivial grammar = trie NFA = minimal DFA = d-rep = canonical uCFG:
     five routes, one language *)
  QCheck.Test.make ~name:"five representations, one language" ~count:30
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words = random_words rng ~len:4 ~count:(1 + Ucfg_util.Rng.int rng 8) in
       let l = Lang.of_list words in
       let g = Constructions.of_language Alphabet.binary l in
       let nfa = Ucfg_automata.Nfa.of_word_list Alphabet.binary words in
       let dfa = Ucfg_automata.Determinize.minimal_dfa nfa in
       let drep = Ucfg_fr.Iso.drep_of_cfg g in
       let ucfg = Ucfg_automata.Disambiguate.ucfg_of_grammar g in
       Lang.equal l (Analysis.language_exn g)
       && Lang.equal l (Ucfg_automata.Nfa.language nfa ~max_len:4)
       && Lang.equal l (Ucfg_automata.Dfa.language dfa ~max_len:4)
       && Lang.equal l (Ucfg_fr.Drep.denotation drep)
       && Lang.equal l (Analysis.language_exn ucfg))

let prop_extract_counts_vs_language =
  (* Proposition 7 on uCFGs built from random languages: Σ|R_i| = |L| *)
  QCheck.Test.make ~name:"disjoint covers partition the language exactly"
    ~count:20 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words = random_words rng ~len:4 ~count:(2 + Ucfg_util.Rng.int rng 8) in
       let l = Lang.of_list words in
       let g = Constructions.of_language Alphabet.binary l in
       let res = Ucfg_rect.Extract.run g in
       let v, _ = Ucfg_rect.Extract.verify g res in
       v.Ucfg_rect.Cover.is_cover && v.Ucfg_rect.Cover.is_disjoint
       && v.Ucfg_rect.Cover.sum_cardinals = Lang.cardinal l)

let prop_direct_access_on_dfa_grammars =
  (* direct access through any unambiguous grammar enumerates the language
     bijectively *)
  QCheck.Test.make ~name:"nth/rank bijective on DFA-derived uCFGs" ~count:20
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words = random_words rng ~len:5 ~count:(1 + Ucfg_util.Rng.int rng 10) in
       let l = Lang.of_list words in
       let g =
         Cnf.of_grammar
           (Ucfg_automata.Disambiguate.ucfg_of_grammar
              (Constructions.of_language Alphabet.binary l))
       in
       let da = Direct_access.create g ~max_len:5 in
       match BN.to_int (Direct_access.total da) with
       | Some total when total = Lang.cardinal l ->
         List.for_all
           (fun i ->
              match Direct_access.nth da (BN.of_int i) with
              | Some w ->
                Lang.mem w l
                && Direct_access.rank da w = Some (BN.of_int i)
              | None -> false)
           (Ucfg_util.Prelude.range 0 total)
       | _ -> false)

let prop_weighted_counting_matches_drep =
  (* Σ-counting through grammars equals tuple counting through the KMN
     isomorphism *)
  QCheck.Test.make ~name:"CFG tree totals = d-rep tuple counts" ~count:30
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:4 ~variants:2 in
       let g = Trim.trim g in
       BN.equal
         (Analysis.count_trees_total g)
         (Ucfg_fr.Drep.count_tuples (Ucfg_fr.Iso.drep_of_cfg g)))

let prop_slp_char_at_total =
  QCheck.Test.make ~name:"SLP char_at reconstructs to_word" ~count:50
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let len = 1 + Ucfg_util.Rng.int rng 24 in
       let w = Word.of_bits ~len (Ucfg_util.Rng.bits62 rng land ((1 lsl len) - 1)) in
       let s = Slp.of_word w in
       let k = 1 + Ucfg_util.Rng.int rng 4 in
       let p = Slp.power s k in
       let expanded = Slp.to_word p in
       String.length expanded = len * k
       && List.for_all
            (fun i -> Char.equal expanded.[i] (Slp.char_at p (BN.of_int i)))
            (Ucfg_util.Prelude.range 0 (String.length expanded)))

let prop_stream_vs_nfa =
  (* two O(1)-per-character recognisers agree: the streaming window and the
     NFA simulation *)
  QCheck.Test.make ~name:"streaming window = NFA simulation" ~count:100
    arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let n = 1 + Ucfg_util.Rng.int rng 6 in
       let code = Ucfg_util.Rng.bits62 rng land ((1 lsl (2 * n)) - 1) in
       let w = Word.of_bits ~len:(2 * n) code in
       let stream =
         Ln_stream.accepted (Ln_stream.feed_string (Ln_stream.create n) w)
       in
       stream = Ucfg_automata.Nfa.accepts (Ucfg_automata.Ln_nfa.build n) w)

let prop_bar_hillel_vs_product_route =
  (* two intersection routes agree: Bar–Hillel on grammars, product on
     automata *)
  QCheck.Test.make ~name:"Bar–Hillel = NFA product route" ~count:20 arb_seed
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let words = random_words rng ~len:4 ~count:(1 + Ucfg_util.Rng.int rng 8) in
       let nfa1 = Ucfg_automata.Nfa.of_word_list Alphabet.binary words in
       let words2 = random_words rng ~len:4 ~count:(1 + Ucfg_util.Rng.int rng 8) in
       let nfa2 = Ucfg_automata.Nfa.of_word_list Alphabet.binary words2 in
       let via_grammar =
         Analysis.language_exn
           (Ucfg_automata.Bar_hillel.intersect
              (Constructions.of_language Alphabet.binary (Lang.of_list words))
              nfa2)
       in
       let via_product =
         Ucfg_automata.Nfa.language
           (Ucfg_automata.Nfa.product nfa1 nfa2)
           ~max_len:4
       in
       Lang.equal via_grammar via_product)

let prop_census_total =
  (* summing the Parikh census recovers the word count *)
  QCheck.Test.make ~name:"census coefficients sum to the word count" ~count:15
    (QCheck.int_range 1 4)
    (fun n ->
       let module WPoly = Weighted.Make (Semiring.Polynomial) in
       let g = Cnf.of_grammar (Constructions.example4 n) in
       let weight r =
         match r.Grammar.rhs with
         | [ Grammar.T 'a' ] -> Semiring.Polynomial.x
         | _ -> Semiring.Polynomial.one
       in
       let poly = WPoly.length_weight ~rule_weight:weight g (2 * n) in
       let total =
         BN.sum
           (List.map
              (Semiring.Polynomial.coeff poly)
              (Ucfg_util.Prelude.range_incl 0 (2 * n)))
       in
       BN.equal total (Ln.cardinal n))

let () =
  Alcotest.run "ucfg_integration"
    [
      ( "pipelines",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pipeline_language_agreement;
            prop_extract_counts_vs_language;
            prop_direct_access_on_dfa_grammars;
            prop_weighted_counting_matches_drep;
            prop_slp_char_at_total;
            prop_stream_vs_nfa;
            prop_bar_hillel_vs_product_route;
            prop_census_total;
          ] );
    ]
