(* Tests for the rectangle machinery: the set perspective, ordered
   partitions, string/set rectangles, Lemma 15 translations, Lemma 21
   neatification, covers, and the Proposition 7 extraction. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_rect

let lang = Alcotest.testable Lang.pp Lang.equal

(* --- set view ----------------------------------------------------------- *)

let test_setview_roundtrip () =
  List.iter
    (fun w ->
       let n = String.length w / 2 in
       Alcotest.(check string) ("roundtrip " ^ w) w
         (Setview.to_word ~n (Setview.of_word w)))
    [ "aa"; "abab"; "bbbbbb"; "abbaba" ]

let test_setview_parts () =
  let m = Setview.of_word "abba" in
  (* positions: 1:a 2:b 3:b 4:a -> bits 0 and 3 *)
  Alcotest.(check int) "mask" 0b1001 m;
  Alcotest.(check int) "x part" 0b01 (Setview.x_part ~n:2 m);
  Alcotest.(check int) "y part" 0b1000 (Setview.y_part ~n:2 m)

let test_setview_interval () =
  Alcotest.(check int) "Z[2,3] of n=2" 0b0110 (Setview.interval_mask ~n:2 2 3);
  Alcotest.(check int) "universe" 0b1111 (Setview.universe ~n:2)

let test_setview_ln () =
  Seq.iter
    (fun mask ->
       let w = Setview.to_word ~n:3 mask in
       if Setview.in_ln ~n:3 mask <> Ln.mem 3 w then
         Alcotest.failf "in_ln disagrees on %s" w)
    (Setview.all ~n:3)

let test_subsets_of () =
  let subs = List.of_seq (Setview.subsets_of 0b101) in
  Alcotest.(check (list int)) "subsets" [ 0b101; 0b100; 0b001; 0 ]
    subs

(* --- partitions --------------------------------------------------------- *)

let test_partition_balanced () =
  (* n=6: 2n=12, balanced iff 4 <= size <= 8 *)
  Alcotest.(check bool) "[1,4] ok" true
    (Partition.is_balanced (Partition.make ~n:6 1 4));
  Alcotest.(check bool) "[1,8] ok" true
    (Partition.is_balanced (Partition.make ~n:6 1 8));
  Alcotest.(check bool) "[1,3] too small" false
    (Partition.is_balanced (Partition.make ~n:6 1 3));
  Alcotest.(check bool) "[1,9] too big" false
    (Partition.is_balanced (Partition.make ~n:6 1 9))

let test_partition_neat () =
  (* n=4: blocks are [1,4] and [5,8] *)
  Alcotest.(check bool) "[1,4] neat" true (Partition.is_neat (Partition.make ~n:4 1 4));
  Alcotest.(check bool) "[5,8] neat" true (Partition.is_neat (Partition.make ~n:4 5 8));
  Alcotest.(check bool) "[2,5] not neat" false
    (Partition.is_neat (Partition.make ~n:4 2 5))

let test_partition_neaten () =
  let p = Partition.make ~n:8 3 10 in
  (* inside size 8 = outside size: grows to [1,12] *)
  let q, moved = Partition.neaten p in
  Alcotest.(check bool) "neat now" true (Partition.is_neat q);
  Alcotest.(check bool) "moved <= 8 elements" true (Setview.popcount moved <= 8);
  (* moved = symmetric difference *)
  Alcotest.(check int) "moved is the diff"
    (Partition.inside p lxor Partition.inside q)
    moved

let test_partition_matched_mask () =
  (* the [1,n] partition splits every pair: V_G = Z *)
  let p = Partition.make ~n:4 1 4 in
  Alcotest.(check int) "V_G = Z" (Setview.universe ~n:4)
    (Partition.matched_mask p);
  (* [1,2n] keeps every pair together: V_G = ∅ *)
  let q = Partition.make ~n:4 1 8 in
  Alcotest.(check int) "V_G empty" 0 (Partition.matched_mask q)

let test_lemma22_neat_balanced_partitions () =
  (* Lemma 22: for neat ordered balanced partitions, the smaller part is
     inside V_G and |Π_small| = |G| = |V_G|/2 *)
  List.iter
    (fun p ->
       if Partition.is_neat p then begin
         let vg = Partition.matched_mask p in
         let ins = Partition.inside p and out = Partition.outside p in
         let small, _big =
           if Setview.popcount ins <= Setview.popcount out then (ins, out)
           else (out, ins)
         in
         Alcotest.(check bool) "small part ⊆ V_G" true (small land lnot vg = 0);
         Alcotest.(check int) "|small| = |G|"
           (Setview.popcount vg / 2)
           (Setview.popcount small)
       end)
    (Partition.all_balanced ~n:8)

(* --- string rectangles --------------------------------------------------- *)

let test_rectangle_example8 () =
  List.iter
    (fun (n, k) ->
       let r = Rectangle.example8 n k in
       (* the middle has width n+1 over words of length 2n: balanced
          requires 3(n+1) <= 4n, i.e. n >= 3 *)
       Alcotest.(check bool) "balanced iff n >= 3" (n >= 3)
         (Rectangle.is_balanced r);
       Alcotest.check lang
         (Printf.sprintf "L_%d^%d" n k)
         (Ln.slice n k)
         (Rectangle.materialize r))
    [ (2, 0); (2, 1); (3, 0); (3, 2); (4, 1) ]

let test_rectangle_star () =
  let r = Rectangle.star 2 in
  Alcotest.(check bool) "balanced" true (Rectangle.is_balanced r);
  Alcotest.check lang "L*_2" (Ln.star 2) (Rectangle.materialize r)

let test_rectangle_mem_agrees () =
  let r = Rectangle.example8 3 1 in
  Seq.iter
    (fun w ->
       if Rectangle.mem r w <> Lang.mem w (Rectangle.materialize r) then
         Alcotest.failf "mem disagrees on %s" w)
    (Word.enumerate Alphabet.binary 6)

let test_rectangle_recover () =
  (* a genuine rectangle is recovered... *)
  let r = Rectangle.example8 2 0 in
  (match Rectangle.recover ~n1:0 ~n2:3 (Rectangle.materialize r) with
   | Some r' ->
     Alcotest.check lang "same denotation" (Rectangle.materialize r)
       (Rectangle.materialize r')
   | None -> Alcotest.fail "expected recovery");
  (* ... but L_n itself is not a rectangle for any proper split (only the
     degenerate whole-word split makes every language a rectangle) *)
  List.iter
    (fun (n1, n2) ->
       match Rectangle.recover ~n1 ~n2 (Ln.language 2) with
       | Some _ -> Alcotest.failf "L_2 recovered as (%d,%d) rectangle" n1 n2
       | None -> ())
    [ (0, 2); (1, 2); (2, 2); (1, 1); (0, 3); (1, 3) ];
  match Rectangle.recover ~n1:0 ~n2:4 (Ln.language 2) with
  | Some _ -> ()
  | None -> Alcotest.fail "whole-word split is always a rectangle"

let test_rectangle_singleton () =
  let r = Rectangle.singleton "abba" ~n1:1 ~n2:2 in
  Alcotest.check lang "just the word" (Lang.singleton "abba")
    (Rectangle.materialize r);
  Alcotest.(check bool) "balanced" true (Rectangle.is_balanced r)

(* --- set rectangles and Lemma 15 ----------------------------------------- *)

let test_lemma15_forward_backward () =
  List.iter
    (fun r ->
       let sr = Set_rectangle.of_string_rectangle r in
       (* members of the set rectangle = words of the string rectangle *)
       let from_set =
         Lang.of_seq
           (Seq.map
              (Setview.to_word ~n:(Rectangle.word_length r / 2))
              (Set_rectangle.members sr))
       in
       Alcotest.check lang "forward members" (Rectangle.materialize r) from_set;
       let back = Set_rectangle.to_string_rectangle sr in
       Alcotest.check lang "roundtrip" (Rectangle.materialize r)
         (Rectangle.materialize back))
    [ Rectangle.example8 2 0; Rectangle.example8 3 1; Rectangle.star 2 ]

let test_set_rectangle_mem () =
  let sr = Set_rectangle.of_string_rectangle (Rectangle.example8 2 1) in
  Seq.iter
    (fun mask ->
       let w = Setview.to_word ~n:2 mask in
       if Set_rectangle.mem sr mask <> Ln.slice_mem 2 1 w then
         Alcotest.failf "set mem disagrees on %s" w)
    (Setview.all ~n:2)

let test_split_neat () =
  (* a balanced non-neat rectangle over n=8 *)
  let n = 8 in
  let p = Partition.make ~n 3 10 in
  Alcotest.(check bool) "not neat yet" false (Partition.is_neat p);
  let ins = Partition.inside p and out = Partition.outside p in
  (* a small rectangle: a few arbitrary component masks *)
  let rng = Ucfg_util.Rng.create 5 in
  let masks k part =
    List.init k (fun _ -> Ucfg_util.Rng.bits62 rng land part)
  in
  let r = Set_rectangle.make p ~outer:(masks 6 out) ~inner:(masks 6 ins) in
  let pieces = Set_rectangle.split_neat r in
  Alcotest.(check bool) "at most 256" true (List.length pieces <= 256);
  List.iter
    (fun pc ->
       Alcotest.(check bool) "piece neat" true (Set_rectangle.is_neat pc))
    pieces;
  (* same union, pairwise disjoint *)
  let module IS = Set.Make (Int) in
  let union_pieces =
    List.fold_left
      (fun acc pc -> IS.union acc (IS.of_seq (Set_rectangle.members pc)))
      IS.empty pieces
  in
  let original = IS.of_seq (Set_rectangle.members r) in
  Alcotest.(check bool) "same union" true (IS.equal union_pieces original);
  let total_pieces =
    Ucfg_util.Prelude.sum_int (List.map Set_rectangle.cardinal pieces)
  in
  Alcotest.(check int) "disjoint (cardinalities add)" (IS.cardinal original)
    total_pieces

(* --- covers --------------------------------------------------------------- *)

let test_example8_cover () =
  List.iter
    (fun n ->
       let v = Cover.verify (Cover.example8_cover n) (Ln.language n) in
       Alcotest.(check bool) "covers" true v.Cover.is_cover;
       Alcotest.(check bool) "not disjoint (n >= 2)" (n < 2)
         v.Cover.is_disjoint;
       Alcotest.(check bool) "balanced for n >= 3" (n >= 3)
         (Cover.all_balanced (Cover.example8_cover n)))
    [ 1; 2; 3; 4 ]

let test_singleton_cover () =
  let l = Ln.language 2 in
  let v = Cover.verify (Cover.singleton_cover l ~n1:1 ~n2:2) l in
  Alcotest.(check bool) "covers" true v.Cover.is_cover;
  Alcotest.(check bool) "disjoint" true v.Cover.is_disjoint

let test_greedy_cover () =
  List.iter
    (fun n ->
       let l = Ln.language n in
       let rects = Cover.greedy_disjoint_cover l ~n in
       let v = Cover.verify rects l in
       Alcotest.(check bool) "covers" true v.Cover.is_cover;
       Alcotest.(check bool) "disjoint" true v.Cover.is_disjoint;
       Alcotest.(check bool) "balanced" true (Cover.all_balanced rects))
    [ 2; 3 ]

(* --- Proposition 7 extraction -------------------------------------------- *)

let check_extraction ?(expect_disjoint = false) name g =
  let res = Extract.run g in
  let v, shape_ok = Extract.verify g res in
  Alcotest.(check bool) (name ^ ": is a cover") true v.Cover.is_cover;
  Alcotest.(check bool) (name ^ ": balanced + within bound") true shape_ok;
  if expect_disjoint then
    Alcotest.(check bool) (name ^ ": disjoint") true v.Cover.is_disjoint

let test_extract_log_cfg () =
  List.iter
    (fun n ->
       check_extraction (Printf.sprintf "log_cfg %d" n) (Constructions.log_cfg n))
    [ 2; 3; 4; 5 ]

let test_extract_example3 () =
  check_extraction "example3 1" (Constructions.example3 1)

let test_extract_unambiguous () =
  List.iter
    (fun n ->
       check_extraction ~expect_disjoint:true
         (Printf.sprintf "example4 %d" n)
         (Constructions.example4 n))
    [ 2; 3; 4 ]

let test_extract_trivial_grammar () =
  let g = Constructions.of_language Alphabet.binary (Ln.language 2) in
  check_extraction ~expect_disjoint:true "trivial L_2" g

let test_extract_sigma_chain () =
  check_extraction ~expect_disjoint:true "sigma^4"
    (Constructions.sigma_chain Alphabet.binary 4)

let test_extract_counts () =
  (* the rectangle count respects ℓ <= N·|G| visibly, and is small for the
     small constructions *)
  let res = Extract.run (Constructions.log_cfg 3) in
  Alcotest.(check bool) "count <= bound" true
    (List.length res.Extract.rectangles <= res.Extract.bound);
  Alcotest.(check int) "word length" 6 res.Extract.word_length

let prop_extract_random_fixed_length =
  QCheck.Test.make ~name:"Proposition 7 on random fixed-length grammars"
    ~count:25 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:5 ~variants:2 in
       let res = Extract.run g in
       let v, shape_ok = Extract.verify g res in
       let disjoint_ok =
         (not (Ambiguity.is_unambiguous g)) || v.Cover.is_disjoint
       in
       v.Cover.is_cover && shape_ok && disjoint_ok)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_extract_random_fixed_length ]

let () =
  Alcotest.run "ucfg_rect"
    [
      ( "setview",
        [
          Alcotest.test_case "roundtrip" `Quick test_setview_roundtrip;
          Alcotest.test_case "parts" `Quick test_setview_parts;
          Alcotest.test_case "interval masks" `Quick test_setview_interval;
          Alcotest.test_case "L_n agreement" `Quick test_setview_ln;
          Alcotest.test_case "subset enumeration" `Quick test_subsets_of;
        ] );
      ( "partition",
        [
          Alcotest.test_case "balanced" `Quick test_partition_balanced;
          Alcotest.test_case "neat" `Quick test_partition_neat;
          Alcotest.test_case "neaten (Lemma 21)" `Quick test_partition_neaten;
          Alcotest.test_case "matched mask" `Quick test_partition_matched_mask;
          Alcotest.test_case "Lemma 22 properties" `Quick
            test_lemma22_neat_balanced_partitions;
        ] );
      ( "rectangle",
        [
          Alcotest.test_case "example8" `Quick test_rectangle_example8;
          Alcotest.test_case "star (Example 6)" `Quick test_rectangle_star;
          Alcotest.test_case "mem agrees" `Quick test_rectangle_mem_agrees;
          Alcotest.test_case "recover / L_n not a rectangle" `Quick
            test_rectangle_recover;
          Alcotest.test_case "singleton" `Quick test_rectangle_singleton;
        ] );
      ( "set-rectangle",
        [
          Alcotest.test_case "Lemma 15 both ways" `Quick
            test_lemma15_forward_backward;
          Alcotest.test_case "membership" `Quick test_set_rectangle_mem;
          Alcotest.test_case "Lemma 21 split_neat" `Quick test_split_neat;
        ] );
      ( "cover",
        [
          Alcotest.test_case "example8 cover" `Quick test_example8_cover;
          Alcotest.test_case "singleton cover" `Quick test_singleton_cover;
          Alcotest.test_case "greedy disjoint cover" `Quick test_greedy_cover;
        ] );
      ( "extract (Proposition 7)",
        [
          Alcotest.test_case "log_cfg" `Quick test_extract_log_cfg;
          Alcotest.test_case "example3" `Quick test_extract_example3;
          Alcotest.test_case "unambiguous => disjoint" `Quick
            test_extract_unambiguous;
          Alcotest.test_case "trivial grammar" `Quick test_extract_trivial_grammar;
          Alcotest.test_case "sigma chain" `Quick test_extract_sigma_chain;
          Alcotest.test_case "counts and bound" `Quick test_extract_counts;
        ] );
      ("properties", qtests);
    ]
