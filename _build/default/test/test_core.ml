(* Tests for the top layer: the separation report, the exhaustive minimal
   searches and the CSV application. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_core
module BN = Ucfg_util.Bignum

let lang = Alcotest.testable Lang.pp Lang.equal

(* --- separation ----------------------------------------------------------- *)

let test_separation_small () =
  List.iter
    (fun n ->
       let r = Separation.run n in
       Alcotest.(check bool) (Printf.sprintf "n=%d verified" n) true
         r.Separation.verified;
       Alcotest.(check string)
         (Printf.sprintf "|L_%d|" n)
         (BN.to_string (Ln.cardinal n))
         (BN.to_string r.Separation.language_cardinal))
    [ 1; 2; 3; 4; 5 ]

let test_separation_shape () =
  (* CFG logarithmic vs uCFG upper exponential vs NFA quadratic *)
  let r8 = Separation.run 8 and r12 = Separation.run 12 in
  Alcotest.(check bool) "CFG stays tiny" true
    (r12.Separation.cfg_size < 2 * r8.Separation.cfg_size);
  (match (r8.Separation.ucfg_upper, r12.Separation.ucfg_upper) with
   | Some u8, Some u12 ->
     Alcotest.(check bool) "uCFG upper explodes" true
       (BN.compare u12 (BN.mul_int u8 8) > 0)
   | _ -> Alcotest.fail "uCFG upper bounds should be built");
  Alcotest.(check bool) "NFA superlinear but poly" true
    (r12.Separation.nfa_states > r8.Separation.nfa_states
     && r12.Separation.nfa_states < 4 * r8.Separation.nfa_states)

let test_separation_example3_detection () =
  let r5 = Separation.run 5 in
  (* 5 = 2^2 + 1 *)
  Alcotest.(check bool) "example3 present" true
    (r5.Separation.example3_size <> None);
  let r6 = Separation.run 6 in
  Alcotest.(check bool) "example3 absent" true
    (r6.Separation.example3_size = None)

let test_separation_rows () =
  let rows = Separation.rows [ Separation.run 2; Separation.run 3 ] in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun row ->
       Alcotest.(check int) "columns match headers"
         (List.length Separation.headers)
         (List.length row))
    rows

let test_report_table () =
  let s =
    Report.table ~title:"t" ~headers:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 6 = "== t =")

(* --- search ---------------------------------------------------------------- *)

let test_minimal_dfa () =
  (* {ab}: states start, after-a, accept, dead = 4 *)
  Alcotest.(check int) "dfa {ab}" 4
    (Search.minimal_dfa_states Alphabet.binary (Lang.singleton "ab"));
  (* L_1 = {aa} *)
  Alcotest.(check int) "dfa L_1" 4
    (Search.minimal_dfa_states Alphabet.binary (Ln.language 1))

let test_minimal_cnf_l1 () =
  (* L_1 = {aa}: minimal CNF grammar is S -> AA, A -> a of size 4...
     or with S itself: S -> SS impossible (cycle), so 2 nonterminals,
     rules S->AA (2) + A->a (1) = size 3 *)
  let res = Search.minimal_cnf_size Alphabet.binary (Ln.language 1) in
  Alcotest.(check (option int)) "size 3" (Some 3) res.Search.minimal_size;
  match res.Search.witness with
  | Some g ->
    Alcotest.check lang "witness accepts L_1" (Ln.language 1)
      (Ucfg_cfg.Analysis.language_exn g)
  | None -> Alcotest.fail "witness expected"

let test_minimal_cnf_unambiguous_vs_plain () =
  (* {a, aa}: plain and unambiguous minimal sizes coincide here, but the
     search paths differ; check both return valid witnesses *)
  let l = Lang.of_list [ "a"; "aa" ] in
  let plain = Search.minimal_cnf_size Alphabet.binary l in
  let unam = Search.minimal_cnf_size ~unambiguous:true Alphabet.binary l in
  (match (plain.Search.minimal_size, unam.Search.minimal_size) with
   | Some p, Some u ->
     Alcotest.(check bool) (Printf.sprintf "plain %d <= unambiguous %d" p u)
       true (p <= u)
   | _ -> Alcotest.fail "both should succeed");
  match unam.Search.witness with
  | Some g ->
    Alcotest.(check bool) "witness unambiguous" true
      (Ucfg_cfg.Ambiguity.is_unambiguous g)
  | None -> Alcotest.fail "witness expected"

let test_minimal_cnf_budget () =
  let res =
    Search.minimal_cnf_size ~budget:100 Alphabet.binary (Ln.language 2)
  in
  Alcotest.(check bool) "budget exhausted" true res.Search.budget_exhausted

(* --- csv ------------------------------------------------------------------- *)

let test_csv_mem () =
  let s = { Csv.columns = 2; width = 1 } in
  (* rows "ab" and "bb": column 2 agrees *)
  Alcotest.(check bool) "agree col 2" true (Csv.mem s "abbb");
  Alcotest.(check bool) "no agreement" false (Csv.mem s "abba");
  Alcotest.(check bool) "wrong length" false (Csv.mem s "ab")

let test_csv_grammar () =
  List.iter
    (fun scheme ->
       let g = Csv.grammar scheme in
       Alcotest.check lang
         (Printf.sprintf "P_S for %d cols width %d" scheme.Csv.columns
            scheme.Csv.width)
         (Csv.language scheme)
         (Ucfg_cfg.Analysis.language_exn g))
    [ { Csv.columns = 1; width = 1 }; { Csv.columns = 2; width = 1 };
      { Csv.columns = 3; width = 1 }; { Csv.columns = 2; width = 2 } ]

let test_csv_grammar_ambiguous () =
  (* the cheap grammar is ambiguous as soon as two columns can agree *)
  Alcotest.(check bool) "ambiguous" false
    (Ucfg_cfg.Ambiguity.is_unambiguous (Csv.grammar { Csv.columns = 2; width = 1 }))

let test_csv_embed () =
  (* w ∈ L_n ⟺ embed w ∈ P_S, exhaustively for n <= 3 *)
  List.iter
    (fun n ->
       let scheme = Csv.embedding_scheme n in
       Seq.iter
         (fun w ->
            if Ln.mem n w <> Csv.mem scheme (Csv.embed n w) then
              Alcotest.failf "embedding wrong on %s" w)
         (Word.enumerate Alphabet.binary (2 * n)))
    [ 1; 2; 3 ]

let test_csv_embed_shape () =
  let e = Csv.embed 2 "abba" in
  Alcotest.(check int) "length" 8 (String.length e);
  Alcotest.(check string) "encoding" "aaabbbaa" e

let test_csv_comparison_ops () =
  let s = { Csv.columns = 2; width = 2 } in
  List.iter
    (fun (name, op) ->
       let g = Csv.grammar_op op s in
       Alcotest.check lang
         (Printf.sprintf "P_S^%s grammar correct" name)
         (Csv.language_op op s)
         (Ucfg_cfg.Analysis.language_exn g))
    [ ("eq", Csv.Equal); ("leq", Csv.Leq); ("distinct", Csv.Distinct) ]

let test_csv_comparison_semantics () =
  let s = { Csv.columns = 1; width = 2 } in
  (* rows "ab" and "ba": ab < ba lexicographically *)
  Alcotest.(check bool) "leq holds" true (Csv.mem_op Csv.Leq s "abba");
  Alcotest.(check bool) "geq direction fails" false (Csv.mem_op Csv.Leq s "baab");
  Alcotest.(check bool) "distinct" true (Csv.mem_op Csv.Distinct s "abba");
  Alcotest.(check bool) "equal fails" false (Csv.mem_op Csv.Equal s "abba");
  Alcotest.(check bool) "equal reflexive" true (Csv.mem_op Csv.Equal s "abab");
  Alcotest.(check bool) "leq reflexive" true (Csv.mem_op Csv.Leq s "abab")

let test_csv_witnesses () =
  let s = { Csv.columns = 3; width = 1 } in
  Seq.iter
    (fun w ->
       let direct = Csv.witness_columns s w in
       let parsed = Csv.witness_columns_by_parsing s w in
       if direct <> parsed then
         Alcotest.failf "witness mismatch on %s" w;
       (* ambiguity degree of the full grammar = number of witnesses *)
       let trees = Ucfg_cfg.Count_word.trees (Csv.grammar s) w in
       if
         not
           (Ucfg_util.Bignum.equal trees
              (Ucfg_util.Bignum.of_int (List.length direct)))
       then Alcotest.failf "tree count != witnesses on %s" w)
    (Word.enumerate Alphabet.binary 6)

(* --- streaming ------------------------------------------------------------- *)

let test_stream_matches_ln () =
  List.iter
    (fun n ->
       Seq.iter
         (fun w ->
            let t = Ln_stream.feed_string (Ln_stream.create n) w in
            if Ln_stream.accepted t <> Ln.mem n w then
              Alcotest.failf "stream disagrees on %s (n=%d)" w n)
         (Word.enumerate Alphabet.binary (2 * n)))
    [ 1; 2; 3; 4; 5 ]

let test_stream_partial_not_accepted () =
  let t = Ln_stream.feed_string (Ln_stream.create 3) "aab" in
  Alcotest.(check bool) "not accepted midway" false (Ln_stream.accepted t);
  Alcotest.(check int) "consumed" 3 (Ln_stream.chars_consumed t)

let test_stream_rejects_overfeed () =
  let t = Ln_stream.feed_string (Ln_stream.create 1) "aa" in
  Alcotest.check_raises "overfeed"
    (Invalid_argument "Ln_stream.feed: already consumed 2n characters")
    (fun () -> ignore (Ln_stream.feed t 'a'))

let prop_stream_random =
  QCheck.Test.make ~name:"streaming recogniser = L_n membership" ~count:300
    (QCheck.pair (QCheck.int_range 1 15) (QCheck.int_range 0 (1 lsl 30)))
    (fun (n, bits) ->
       let code = bits land ((1 lsl (2 * n)) - 1) in
       let w = Word.of_bits ~len:(2 * n) code in
       Ln_stream.accepted (Ln_stream.feed_string (Ln_stream.create n) w)
       = Ln.mem n w)

let test_csv_lower_bound () =
  (* the additive constants (256·2n) eat small n; by 2000 columns the
     bound is astronomically past 1000 *)
  let s = { Csv.columns = 2000; width = 2 } in
  Alcotest.(check bool) "exponential in columns" true
    (BN.compare (Csv.ucfg_size_lower_bound s) (BN.of_int 1000) > 0)

let () =
  Alcotest.run "ucfg_core"
    [
      ( "separation",
        [
          Alcotest.test_case "small n verified" `Quick test_separation_small;
          Alcotest.test_case "growth shapes" `Quick test_separation_shape;
          Alcotest.test_case "example3 detection" `Quick
            test_separation_example3_detection;
          Alcotest.test_case "rows/headers" `Quick test_separation_rows;
          Alcotest.test_case "report table" `Quick test_report_table;
        ] );
      ( "search",
        [
          Alcotest.test_case "minimal DFA" `Quick test_minimal_dfa;
          Alcotest.test_case "minimal CNF for L_1" `Quick test_minimal_cnf_l1;
          Alcotest.test_case "unambiguous vs plain" `Quick
            test_minimal_cnf_unambiguous_vs_plain;
          Alcotest.test_case "budget handling" `Quick test_minimal_cnf_budget;
        ] );
      ( "csv",
        [
          Alcotest.test_case "membership" `Quick test_csv_mem;
          Alcotest.test_case "grammar correct" `Quick test_csv_grammar;
          Alcotest.test_case "grammar ambiguous" `Quick test_csv_grammar_ambiguous;
          Alcotest.test_case "embedding exact" `Quick test_csv_embed;
          Alcotest.test_case "embedding shape" `Quick test_csv_embed_shape;
          Alcotest.test_case "lower bound transfers" `Quick test_csv_lower_bound;
          Alcotest.test_case "comparison operators" `Quick
            test_csv_comparison_ops;
          Alcotest.test_case "comparison semantics" `Quick
            test_csv_comparison_semantics;
          Alcotest.test_case "witness extraction = ambiguity degree" `Quick
            test_csv_witnesses;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches L_n" `Quick test_stream_matches_ln;
          Alcotest.test_case "partial input" `Quick
            test_stream_partial_not_accepted;
          Alcotest.test_case "overfeed rejected" `Quick
            test_stream_rejects_overfeed;
          QCheck_alcotest.to_alcotest prop_stream_random;
        ] );
    ]
