(* Tests for the discrepancy argument: block structure, the exact Lemma 18
   counts, the Lemma 19/23 discrepancy bounds and the final Theorem 12
   lower bound. *)

open Ucfg_rect
open Ucfg_disc
module BN = Ucfg_util.Bignum

let bn = Alcotest.testable BN.pp BN.equal

(* brute-force versions over the enumerated family *)
let enum_counts blocks =
  let n = Blocks.n blocks in
  Seq.fold_left
    (fun (a, b, b_not_ln) mask ->
       if Blocks.in_a blocks mask then (a + 1, b, b_not_ln)
       else begin
         let in_ln = Setview.in_ln ~n mask in
         (a, b + 1, if in_ln then b_not_ln else b_not_ln + 1)
       end)
    (0, 0, 0) (Blocks.family blocks)

let test_family_basics () =
  let blocks = Blocks.create 8 in
  Alcotest.(check int) "m" 2 (Blocks.m blocks);
  Alcotest.(check int) "2m blocks" 4 (List.length (Blocks.interval_masks blocks));
  Alcotest.(check int) "family size 16^m" 256 (Seq.length (Blocks.family blocks));
  Seq.iter
    (fun mask ->
       if not (Blocks.in_family blocks mask) then
         Alcotest.failf "family member rejected: %d" mask)
    (Blocks.family blocks)

let test_in_family_rejects () =
  let blocks = Blocks.create 4 in
  Alcotest.(check bool) "empty set" false (Blocks.in_family blocks 0);
  Alcotest.(check bool) "two in a block" false
    (Blocks.in_family blocks 0b00010011)

let test_a_members_in_ln () =
  (* A ⊆ L_n: an odd number of matches is at least one match *)
  List.iter
    (fun n ->
       let blocks = Blocks.create n in
       Seq.iter
         (fun mask ->
            if Blocks.in_a blocks mask && not (Setview.in_ln ~n mask) then
              Alcotest.failf "A member outside L_n at n=%d" n)
         (Blocks.family blocks))
    [ 4; 8 ]

let test_lemma18_by_enumeration () =
  List.iter
    (fun m ->
       let blocks = Blocks.create (4 * m) in
       let a, b, b_not_ln = enum_counts blocks in
       Alcotest.check bn
         (Printf.sprintf "|A| m=%d" m)
         (Counts.a_size ~m) (BN.of_int a);
       Alcotest.check bn
         (Printf.sprintf "|B| m=%d" m)
         (Counts.b_size ~m) (BN.of_int b);
       Alcotest.check bn
         (Printf.sprintf "|B\\L_n| = 12^m, m=%d" m)
         (Counts.b_minus_ln ~m) (BN.of_int b_not_ln);
       Alcotest.check bn
         (Printf.sprintf "|B|-|A| = 2^3m, m=%d" m)
         (Counts.b_minus_a ~m)
         (BN.of_int (b - a));
       Alcotest.check bn
         (Printf.sprintf "|𝓛| = 2^4m, m=%d" m)
         (Counts.family_size ~m)
         (BN.of_int (a + b)))
    [ 1; 2; 3 ]

let test_advantage () =
  (* advantage = |A ∩ L_n| - |B ∩ L_n| = |A| - (|B| - |B\L_n|) *)
  List.iter
    (fun m ->
       let blocks = Blocks.create (4 * m) in
       let n = 4 * m in
       let adv =
         Seq.fold_left
           (fun acc mask ->
              if not (Setview.in_ln ~n mask) then acc
              else if Blocks.in_a blocks mask then acc + 1
              else acc - 1)
           0 (Blocks.family blocks)
       in
       Alcotest.check bn
         (Printf.sprintf "advantage m=%d" m)
         (Counts.advantage ~m) (BN.of_int adv))
    [ 1; 2; 3 ]

let test_threshold () =
  (* 12^m - 8^m > 2^(7m/2) first holds at m = 4 *)
  Alcotest.(check int) "threshold m" 4 (Counts.smallest_threshold_m ());
  Alcotest.(check bool) "m=3 below" false (Counts.advantage_exceeds_threshold ~m:3);
  Alcotest.(check bool) "m=20 above" true (Counts.advantage_exceeds_threshold ~m:20)

(* --- discrepancy bounds --------------------------------------------------- *)

let test_tight_example_meets_lemma19 () =
  List.iter
    (fun m ->
       let blocks = Blocks.create (4 * m) in
       let r = Discrepancy.tight_example blocks in
       let d = Discrepancy.of_rectangle blocks r in
       Alcotest.check bn
         (Printf.sprintf "full-family rectangle m=%d" m)
         (Discrepancy.lemma19_bound ~m)
         (BN.of_int (abs d)))
    [ 1; 2; 3 ]

let test_lemma19_exhaustive_m1 () =
  (* n = 4: all [1,n]-rectangles whose components are family halves *)
  let blocks = Blocks.create 4 in
  let p = Partition.make ~n:4 1 4 in
  let ins = Partition.inside p in
  let halves_in = [ 0b0001; 0b0010; 0b0100; 0b1000 ] in
  let halves_out = List.map (fun h -> h lsl 4) halves_in in
  let bound = Option.get (BN.to_int (Discrepancy.lemma19_bound ~m:1)) in
  ignore ins;
  (* all 2^4 × 2^4 component subsets *)
  let subsets l =
    List.to_seq
      (List.concat_map
         (fun mask ->
            [ List.filteri (fun i _ -> (mask lsr i) land 1 = 1) l ])
         (List.init 16 Fun.id))
  in
  Seq.iter
    (fun inner ->
       Seq.iter
         (fun outer ->
            let r = Set_rectangle.make p ~outer ~inner in
            let d = abs (Discrepancy.of_rectangle blocks r) in
            if d > bound then
              Alcotest.failf "Lemma 19 violated: %d > %d" d bound)
         (subsets halves_out))
    (subsets halves_in)

let test_lemma19_random_m2 () =
  let blocks = Blocks.create 8 in
  let rng = Ucfg_util.Rng.create 42 in
  let p = Partition.make ~n:8 1 8 in
  let d = Discrepancy.max_over_random blocks ~rng ~samples:50 ~partition:p in
  let bound = Option.get (BN.to_int (Discrepancy.lemma19_bound ~m:2)) in
  Alcotest.(check bool)
    (Printf.sprintf "max %d <= 2^6 = %d" d bound)
    true (d <= bound)

let test_lemma23_all_neat_balanced_m2 () =
  (* n = 8: every neat balanced ordered partition, random rectangles *)
  let blocks = Blocks.create 8 in
  let rng = Ucfg_util.Rng.create 7 in
  List.iter
    (fun p ->
       if Partition.is_neat p then begin
         let d =
           Discrepancy.max_over_random blocks ~rng ~samples:20 ~partition:p
         in
         Alcotest.(check bool)
           (Printf.sprintf "Lemma 23 at %s: %d"
              (Format.asprintf "%a" Partition.pp p)
              d)
           true
           (Discrepancy.within_lemma23_bound ~m:2 d)
       end)
    (Partition.all_balanced ~n:8)

(* --- the final bound ------------------------------------------------------ *)

let test_bound_growth () =
  (* the bound is eventually exponential with slope
     (log₂12 - 10/3)/4 ≈ 0.0629 bits per unit of n; additive constants
     (the 256·2n divisors) need n in the thousands to wash out *)
  let l2k = Bound.log2_ucfg_bound 2000 in
  let l4k = Bound.log2_ucfg_bound 4000 in
  Alcotest.(check bool)
    (Printf.sprintf "doubling n ~doubles log-bound: %f vs %f" l2k l4k)
    true
    (l4k > 1.7 *. l2k && l4k < 2.3 *. l2k);
  let slope = (Float.log 12. /. Float.log 2. -. (10. /. 3.)) /. 4. in
  let measured = (l4k -. l2k) /. 2000. in
  Alcotest.(check bool)
    (Printf.sprintf "slope %f ≈ %f" measured slope)
    true
    (Float.abs (measured -. slope) < 0.005)

let test_bound_monotone_eventually () =
  let b i = Bound.ucfg_size_lower_bound i in
  Alcotest.(check bool) "b(200) < b(400)" true (BN.compare (b 200) (b 400) < 0);
  Alcotest.(check bool) "b(400) < b(800)" true (BN.compare (b 400) (b 800) < 0)

let test_first_nontrivial () =
  let n0 = Bound.first_nontrivial_n () in
  Alcotest.(check bool) "exists and below 300" true (n0 > 4 && n0 < 300);
  Alcotest.(check bool) "bound at n0 >= 2" true
    (BN.compare (Bound.ucfg_size_lower_bound n0) BN.two >= 0)

let test_bound_vs_example4_upper () =
  (* lower bound <= actual uCFG size (Example 4) wherever both are
     available *)
  List.iter
    (fun n ->
       let lower = Bound.ucfg_size_lower_bound n in
       let upper =
         BN.of_int (Ucfg_cfg.Grammar.size (Ucfg_cfg.Constructions.example4 n))
       in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d: lower %s <= upper %s" n (BN.to_string lower)
            (BN.to_string upper))
         true
         (BN.compare lower upper <= 0))
    [ 4; 8; 12 ]

let test_small_n_consistency () =
  (* for small n where we can compute actual disjoint covers, the certified
     cover bound must not exceed them *)
  List.iter
    (fun n ->
       let lb = Bound.cover_lower_bound n in
       let greedy =
         List.length (Ucfg_rect.Cover.greedy_disjoint_cover (Ucfg_lang.Ln.language n) ~n)
       in
       Alcotest.(check bool)
         (Printf.sprintf "n=%d: certified %s <= greedy %d" n (BN.to_string lb)
            greedy)
         true
         (BN.compare lb (BN.of_int greedy) <= 0))
    [ 2; 3 ]

let () =
  Alcotest.run "ucfg_disc"
    [
      ( "blocks",
        [
          Alcotest.test_case "family basics" `Quick test_family_basics;
          Alcotest.test_case "family rejection" `Quick test_in_family_rejects;
          Alcotest.test_case "A ⊆ L_n" `Quick test_a_members_in_ln;
        ] );
      ( "lemma18",
        [
          Alcotest.test_case "counts by enumeration" `Quick
            test_lemma18_by_enumeration;
          Alcotest.test_case "advantage" `Quick test_advantage;
          Alcotest.test_case "threshold 2^(7m/2)" `Quick test_threshold;
        ] );
      ( "discrepancy",
        [
          Alcotest.test_case "tight example (Lemma 19 equality)" `Quick
            test_tight_example_meets_lemma19;
          Alcotest.test_case "Lemma 19 exhaustive m=1" `Quick
            test_lemma19_exhaustive_m1;
          Alcotest.test_case "Lemma 19 random m=2" `Quick test_lemma19_random_m2;
          Alcotest.test_case "Lemma 23 all neat balanced m=2" `Slow
            test_lemma23_all_neat_balanced_m2;
        ] );
      ( "bound (Theorem 12)",
        [
          Alcotest.test_case "exponential growth" `Quick test_bound_growth;
          Alcotest.test_case "eventual monotonicity" `Quick
            test_bound_monotone_eventually;
          Alcotest.test_case "first nontrivial n" `Quick test_first_nontrivial;
          Alcotest.test_case "below Example 4 upper bound" `Quick
            test_bound_vs_example4_upper;
          Alcotest.test_case "small-n consistency" `Quick
            test_small_n_consistency;
        ] );
    ]
