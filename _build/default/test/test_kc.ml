(* Tests for the knowledge-compilation circuits and the L_n Boolean
   functions. *)

open Ucfg_kc
module BN = Ucfg_util.Bignum

let bn = Alcotest.testable BN.pp BN.equal

(* (v0 ∧ v1) ∨ (¬v0 ∧ v2): a deterministic, decomposable decision on v0 *)
let decision () =
  Circuit.make ~vars:3
    ~nodes:
      [|
        Circuit.Lit (0, true); Circuit.Lit (1, true); Circuit.Lit (0, false);
        Circuit.Lit (2, true); Circuit.And [ 0; 1 ]; Circuit.And [ 2; 3 ];
        Circuit.Or [ 4; 5 ];
      |]
    ~root:6

let test_evaluate () =
  let c = decision () in
  Alcotest.(check bool) "110" true (Circuit.evaluate c [| true; true; false |]);
  Alcotest.(check bool) "101" false (Circuit.evaluate c [| true; false; true |]);
  Alcotest.(check bool) "001" true (Circuit.evaluate c [| false; false; true |])

let test_structural_checks () =
  let c = decision () in
  Alcotest.(check bool) "decomposable" true (Circuit.is_decomposable c);
  Alcotest.(check bool) "deterministic" true (Circuit.is_deterministic c);
  Alcotest.(check bool) "not smooth" false (Circuit.is_smooth c);
  (* a non-decomposable And: v0 ∧ v0 *)
  let bad =
    Circuit.make ~vars:1
      ~nodes:[| Circuit.Lit (0, true); Circuit.Lit (0, true); Circuit.And [ 0; 1 ] |]
      ~root:2
  in
  Alcotest.(check bool) "shared-var And" false (Circuit.is_decomposable bad)

let test_model_count () =
  let c = decision () in
  (* models: v0=1: v1=1 (v2 free) -> 2; v0=0: v2=1 (v1 free) -> 2 *)
  Alcotest.check bn "dp count" (BN.of_int 4) (Circuit.model_count c);
  Alcotest.check bn "brute agrees" (BN.of_int 4) (Circuit.model_count_brute c);
  Alcotest.(check int) "models enumerated" 4 (Seq.length (Circuit.models c))

let test_nondeterministic_overcounts () =
  (* v0 ∨ v1: DP with smoothing counts 2+2 = 4 > 3 actual models *)
  let c =
    Circuit.make ~vars:2
      ~nodes:[| Circuit.Lit (0, true); Circuit.Lit (1, true); Circuit.Or [ 0; 1 ] |]
      ~root:2
  in
  Alcotest.(check bool) "not deterministic" false (Circuit.is_deterministic c);
  Alcotest.check bn "brute 3" (BN.of_int 3) (Circuit.model_count_brute c);
  Alcotest.check bn "dp overcounts to 4" (BN.of_int 4) (Circuit.model_count c)

let test_ln_circuits_semantics () =
  List.iter
    (fun n ->
       let naive = Ln_circuit.naive n in
       let det = Ln_circuit.deterministic n in
       (* both compute INT_n: model masks = codes of L_n *)
       let expected = List.of_seq (Ucfg_lang.Ln.codes n) in
       Alcotest.(check (list int))
         (Printf.sprintf "naive models n=%d" n)
         expected
         (List.of_seq (Circuit.models naive));
       Alcotest.(check (list int))
         (Printf.sprintf "det models n=%d" n)
         expected
         (List.of_seq (Circuit.models det)))
    [ 1; 2; 3; 4 ]

let test_ln_circuits_classes () =
  let n = 4 in
  let naive = Ln_circuit.naive n in
  let det = Ln_circuit.deterministic n in
  Alcotest.(check bool) "naive decomposable" true (Circuit.is_decomposable naive);
  Alcotest.(check bool) "naive NOT deterministic (n >= 2)" false
    (Circuit.is_deterministic naive);
  Alcotest.(check bool) "det decomposable" true (Circuit.is_decomposable det);
  Alcotest.(check bool) "det deterministic" true (Circuit.is_deterministic det)

let test_ln_model_counts () =
  (* the d-DNNF DP counts |L_n| = 4^n - 3^n exactly, even beyond brute
     force *)
  List.iter
    (fun n ->
       Alcotest.check bn
         (Printf.sprintf "4^%d - 3^%d" n n)
         (Ucfg_lang.Ln.cardinal n)
         (Circuit.model_count (Ln_circuit.deterministic n)))
    [ 1; 2; 3; 4; 8; 16; 24 ]

let test_ln_sizes () =
  (* naive Θ(n), deterministic Θ(n²) — determinism is cheap for the
     Boolean function (the paper's hardness is in the word structure) *)
  let s_naive n = Circuit.size (Ln_circuit.naive n) in
  let s_det n = Circuit.size (Ln_circuit.deterministic n) in
  Alcotest.(check bool) "naive linear" true
    (s_naive 32 < 2 * s_naive 16 + 8);
  Alcotest.(check bool) "det quadratic-ish" true
    (s_det 32 > 3 * s_det 16 && s_det 32 < 5 * s_det 16)

(* --- structured circuits (vtrees, rectangles) ----------------------------- *)

let test_vtree_basics () =
  let t = Vtree.balanced [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "variables" [ 0; 1; 2; 3 ] (Vtree.variables t);
  let l, r = Vtree.root_split t in
  Alcotest.(check (list int)) "left" [ 0; 1 ] l;
  Alcotest.(check (list int)) "right" [ 2; 3 ] r;
  Alcotest.(check int) "subtrees" 7 (List.length (Vtree.subtrees t));
  let rl = Vtree.right_linear [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "right-linear" [ 0; 1; 2 ] (Vtree.variables rl)

let test_structured_semantics () =
  List.iter
    (fun n ->
       let c = Ln_circuit.structured n in
       Alcotest.(check (list int))
         (Printf.sprintf "structured models n=%d" n)
         (List.of_seq (Ucfg_lang.Ln.codes n))
         (List.of_seq (Circuit.models c));
       Alcotest.(check bool) "deterministic" true (Circuit.is_deterministic c);
       Alcotest.(check bool) "decomposable" true (Circuit.is_decomposable c);
       Alcotest.(check bool) "respects its vtree" true
         (Structured.respects (Ln_circuit.structured_vtree n) c))
    [ 1; 2; 3; 4 ]

let test_unstructured_does_not_respect () =
  (* the O(n²) first-match circuit is NOT structured over the X|Y vtree:
     its no-match gates mix both sides below n-ary conjunctions *)
  let n = 3 in
  Alcotest.(check bool) "deterministic circuit unstructured" false
    (Structured.respects (Ln_circuit.structured_vtree n)
       (Ln_circuit.deterministic n))

let test_structured_rectangles () =
  (* the BCMS decomposition: one rectangle per root conjunct, disjoint
     cover, and the count is exactly 2^n - 1 = the rank bound — the
     structured circuit is rectangle-optimal *)
  List.iter
    (fun n ->
       let c = Ln_circuit.structured n in
       let v = Structured.verify (Ln_circuit.structured_vtree n) c in
       Alcotest.(check bool) "cover" true v.Structured.is_cover;
       Alcotest.(check bool) "disjoint" true v.Structured.is_disjoint;
       Alcotest.(check int)
         (Printf.sprintf "2^%d - 1 rectangles" n)
         ((1 lsl n) - 1)
         v.Structured.rectangle_count)
    [ 1; 2; 3; 4 ]

let test_structured_rectangles_nondeterministic () =
  (* a nondeterministic root-DNF circuit still covers, not disjointly:
     (x0 ∧ y0-or-y1) ∨ (x0-or-x1 ∧ y0) over 4 vars *)
  let c =
    Circuit.make ~vars:4
      ~nodes:
        [|
          Circuit.Lit (0, true); Circuit.Lit (1, true); Circuit.Lit (2, true);
          Circuit.Lit (3, true); Circuit.Or [ 2; 3 ]; Circuit.Or [ 0; 1 ];
          Circuit.And [ 0; 4 ]; Circuit.And [ 5; 2 ]; Circuit.Or [ 6; 7 ];
        |]
      ~root:8
  in
  let vtree = Vtree.Node (Vtree.right_linear [ 0; 1 ], Vtree.right_linear [ 2; 3 ]) in
  let v = Structured.verify vtree c in
  Alcotest.(check bool) "cover" true v.Structured.is_cover;
  Alcotest.(check bool) "overlapping" false v.Structured.is_disjoint

let test_structured_sizes () =
  (* exponential, as the rank bound forces *)
  let s n = Circuit.size (Ln_circuit.structured n) in
  Alcotest.(check bool)
    (Printf.sprintf "exponential: %d %d %d" (s 4) (s 6) (s 8))
    true
    (s 6 > 3 * s 4 && s 8 > 3 * s 6)

let prop_det_circuit_matches_ln =
  QCheck.Test.make ~name:"deterministic circuit decides L_n" ~count:200
    (QCheck.pair (QCheck.int_range 1 6) (QCheck.int_range 0 4095))
    (fun (n, code) ->
       let code = code land ((1 lsl (2 * n)) - 1) in
       let c = Ln_circuit.deterministic n in
       let assignment = Array.init (2 * n) (fun v -> (code lsr v) land 1 = 1) in
       Circuit.evaluate c assignment = Ucfg_lang.Ln.mem_code n code)

let qtests = List.map QCheck_alcotest.to_alcotest [ prop_det_circuit_matches_ln ]

let () =
  Alcotest.run "ucfg_kc"
    [
      ( "circuit",
        [
          Alcotest.test_case "evaluate" `Quick test_evaluate;
          Alcotest.test_case "structural checks" `Quick test_structural_checks;
          Alcotest.test_case "model counting" `Quick test_model_count;
          Alcotest.test_case "nondeterminism overcounts" `Quick
            test_nondeterministic_overcounts;
        ] );
      ( "ln-circuits",
        [
          Alcotest.test_case "semantics" `Quick test_ln_circuits_semantics;
          Alcotest.test_case "DNNF vs d-DNNF" `Quick test_ln_circuits_classes;
          Alcotest.test_case "model counts (4^n - 3^n)" `Quick
            test_ln_model_counts;
          Alcotest.test_case "size classes" `Quick test_ln_sizes;
        ] );
      ( "structured (vtrees)",
        [
          Alcotest.test_case "vtree basics" `Quick test_vtree_basics;
          Alcotest.test_case "structured L_n circuit" `Quick
            test_structured_semantics;
          Alcotest.test_case "unstructured detected" `Quick
            test_unstructured_does_not_respect;
          Alcotest.test_case "rectangles = rank bound" `Quick
            test_structured_rectangles;
          Alcotest.test_case "nondeterministic overlap" `Quick
            test_structured_rectangles_nondeterministic;
          Alcotest.test_case "exponential size" `Quick test_structured_sizes;
        ] );
      ("properties", qtests);
    ]
