(* Tests for factorised representations: d-rep semantics, determinism,
   the KMN isomorphism with CFGs, and the factorised join. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_fr
module BN = Ucfg_util.Bignum

let lang = Alcotest.testable Lang.pp Lang.equal

let test_drep_semantics () =
  (* ∪( ×(a b), ×(b a) ) *)
  let d =
    Drep.make ~alphabet:Alphabet.binary
      ~nodes:
        [| Drep.Letter 'a'; Drep.Letter 'b'; Drep.Prod [ 0; 1 ];
           Drep.Prod [ 1; 0 ]; Drep.Union [ 2; 3 ] |]
      ~root:4
  in
  Alcotest.check lang "denotation" (Lang.of_list [ "ab"; "ba" ])
    (Drep.denotation d);
  Alcotest.(check int) "size (edges)" 6 (Drep.size d);
  Alcotest.(check bool) "deterministic" true (Drep.is_deterministic d)

let test_drep_nondeterministic () =
  (* a ∪ a: two derivations of the same word *)
  let d =
    Drep.make ~alphabet:Alphabet.binary
      ~nodes:[| Drep.Letter 'a'; Drep.Letter 'a'; Drep.Union [ 0; 1 ] |]
      ~root:2
  in
  Alcotest.(check bool) "not deterministic" false (Drep.is_deterministic d);
  Alcotest.(check string) "2 tuples counted" "2"
    (BN.to_string (Drep.count_tuples d))

let test_drep_validation () =
  Alcotest.check_raises "forward edge"
    (Invalid_argument "Drep.make: children must precede their gate") (fun () ->
        ignore
          (Drep.make ~alphabet:Alphabet.binary
             ~nodes:[| Drep.Union [ 1 ]; Drep.Letter 'a' |]
             ~root:0))

let test_drep_of_word_language () =
  let d = Drep.of_word Alphabet.binary "abba" in
  Alcotest.check lang "word" (Lang.singleton "abba") (Drep.denotation d);
  let l = Ln.language 2 in
  let d2 = Drep.of_language Alphabet.binary l in
  Alcotest.check lang "language" l (Drep.denotation d2);
  Alcotest.(check bool) "trivial rep deterministic" true
    (Drep.is_deterministic d2)

(* --- the KMN isomorphism ------------------------------------------------- *)

let roundtrip_grammars () =
  [
    ("log_cfg 3", Constructions.log_cfg 3);
    ("log_cfg 5", Constructions.log_cfg 5);
    ("example3 1", Constructions.example3 1);
    ("example4 3", Constructions.example4 3);
    ("sigma 4", Constructions.sigma_chain Alphabet.binary 4);
  ]

let test_iso_preserves_language () =
  List.iter
    (fun (name, g) ->
       let d = Iso.drep_of_cfg g in
       Alcotest.check lang (name ^ ": drep language")
         (Analysis.language_exn g) (Drep.denotation d);
       let g' = Iso.cfg_of_drep d in
       Alcotest.check lang (name ^ ": roundtrip")
         (Analysis.language_exn g) (Analysis.language_exn g'))
    (roundtrip_grammars ())

let test_iso_preserves_determinism () =
  let unam = Iso.drep_of_cfg (Constructions.example4 3) in
  Alcotest.(check bool) "uCFG -> deterministic drep" true
    (Drep.is_deterministic unam);
  let amb = Iso.drep_of_cfg (Constructions.example3 1) in
  Alcotest.(check bool) "ambiguous CFG -> nondeterministic drep" false
    (Drep.is_deterministic amb)

let test_iso_size_constant_factor () =
  List.iter
    (fun (name, g) ->
       let g = Ucfg_cfg.Trim.trim g in
       let d = Iso.drep_of_cfg g in
       let gs = Grammar.size g and ds = Drep.size d in
       Alcotest.(check bool)
         (Printf.sprintf "%s: drep %d within [|G|/2, 2|G|+10] of %d" name ds gs)
         true
         (ds <= (2 * gs) + 10 && 2 * ds >= gs);
       let g' = Iso.cfg_of_drep d in
       Alcotest.(check bool)
         (Printf.sprintf "%s: back size %d <= 2·%d" name (Grammar.size g') ds)
         true
         (Grammar.size g' <= 2 * ds))
    (roundtrip_grammars ())

let test_iso_counts_match () =
  (* derivation counts transfer through the isomorphism *)
  List.iter
    (fun (name, g) ->
       let d = Iso.drep_of_cfg g in
       Alcotest.(check string)
         (name ^ ": tuple count = tree count")
         (BN.to_string (Analysis.count_trees_total (Ucfg_cfg.Trim.trim g)))
         (BN.to_string (Drep.count_tuples d)))
    (roundtrip_grammars ())

(* --- joins ---------------------------------------------------------------- *)

let test_join_semantics () =
  let r = Join.make ~width:2 [ ("aa", "ab"); ("ab", "ab"); ("bb", "ba") ] in
  let s = Join.make ~width:2 [ ("ab", "aa"); ("ab", "bb"); ("ba", "aa") ] in
  let tuples = Join.join_tuples r s in
  Alcotest.(check int) "5 join tuples" 5 (Lang.cardinal tuples);
  let d = Join.factorize r s in
  Alcotest.check lang "factorised = materialised" tuples (Drep.denotation d);
  Alcotest.(check bool) "deterministic" true (Drep.is_deterministic d)

let test_join_sizes () =
  (* skewed workload: factorised stays linear while materialised goes
     quadratic *)
  let rng = Ucfg_util.Rng.create 99 in
  let hot = "aaaaaaaa" in
  let r =
    Join.random_relation rng ~width:8 ~size:64 ~skew:1.0 ~join_side:`Second
      ~hot ()
  in
  let s =
    Join.random_relation rng ~width:8 ~size:64 ~skew:1.0 ~join_side:`First
      ~hot ()
  in
  let mat = Join.materialized_size r s in
  let fac = Drep.size (Join.factorize r s) in
  Alcotest.(check bool)
    (Printf.sprintf "factorised %d << materialised %d" fac mat)
    true
    (fac * 8 < mat)

let prop_join_factorization_correct =
  QCheck.Test.make ~name:"factorised join = materialised join (random)"
    ~count:40 (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let skew = Ucfg_util.Rng.float rng in
       let hot = "aba" in
       let r =
         Join.random_relation rng ~width:3 ~size:12 ~skew ~join_side:`Second
           ~hot ()
       in
       let s =
         Join.random_relation rng ~width:3 ~size:12 ~skew ~join_side:`First
           ~hot ()
       in
       let tuples = Join.join_tuples r s in
       let d = Join.factorize r s in
       Lang.equal tuples (Drep.denotation d) && Drep.is_deterministic d)

let prop_iso_random_grammars =
  QCheck.Test.make ~name:"KMN isomorphism on random grammars" ~count:40
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let g = Random_grammar.fixed_length rng ~word_len:4 ~variants:2 in
       let d = Iso.drep_of_cfg g in
       let back = Iso.cfg_of_drep d in
       Lang.equal (Analysis.language_exn g) (Drep.denotation d)
       && Lang.equal (Analysis.language_exn g) (Analysis.language_exn back))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_join_factorization_correct; prop_iso_random_grammars ]

let () =
  Alcotest.run "ucfg_fr"
    [
      ( "drep",
        [
          Alcotest.test_case "semantics" `Quick test_drep_semantics;
          Alcotest.test_case "nondeterminism" `Quick test_drep_nondeterministic;
          Alcotest.test_case "validation" `Quick test_drep_validation;
          Alcotest.test_case "of_word/of_language" `Quick
            test_drep_of_word_language;
        ] );
      ( "iso (KMN)",
        [
          Alcotest.test_case "language preserved" `Quick
            test_iso_preserves_language;
          Alcotest.test_case "determinism ↔ unambiguity" `Quick
            test_iso_preserves_determinism;
          Alcotest.test_case "size constant factor" `Quick
            test_iso_size_constant_factor;
          Alcotest.test_case "counts transfer" `Quick test_iso_counts_match;
        ] );
      ( "join",
        [
          Alcotest.test_case "semantics" `Quick test_join_semantics;
          Alcotest.test_case "size separation" `Quick test_join_sizes;
        ] );
      ("properties", qtests);
    ]
