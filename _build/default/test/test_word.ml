(* Tests for alphabets and words. *)

open Ucfg_word

let test_alphabet_basic () =
  let alpha = Alphabet.make [ 'x'; 'y'; 'z' ] in
  Alcotest.(check int) "size" 3 (Alphabet.size alpha);
  Alcotest.(check bool) "mem y" true (Alphabet.mem alpha 'y');
  Alcotest.(check bool) "mem w" false (Alphabet.mem alpha 'w');
  Alcotest.(check int) "index z" 2 (Alphabet.index alpha 'z');
  Alcotest.(check char) "char_at 1" 'y' (Alphabet.char_at alpha 1)

let test_alphabet_rejects_duplicates () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Alphabet.make: duplicate characters") (fun () ->
        ignore (Alphabet.make [ 'a'; 'a' ]));
  Alcotest.check_raises "empty" (Invalid_argument "Alphabet.make: empty alphabet")
    (fun () -> ignore (Alphabet.make []))

let test_binary () =
  Alcotest.(check (list char)) "chars" [ 'a'; 'b' ] (Alphabet.chars Alphabet.binary)

let test_complement () =
  Alcotest.(check string) "abba" "baab" (Word.complement "abba");
  Alcotest.(check string) "empty" "" (Word.complement "");
  Alcotest.(check string) "involution" "abab"
    (Word.complement (Word.complement "abab"))

let test_slice () =
  Alcotest.(check string) "middle" "bc" (Word.slice "abcd" 1 2);
  Alcotest.(check string) "empty slice" "" (Word.slice "abcd" 2 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Word.slice: out of range") (fun () ->
        ignore (Word.slice "abc" 2 2))

let test_enumerate () =
  let words = List.of_seq (Word.enumerate Alphabet.binary 2) in
  Alcotest.(check (list string)) "Σ^2" [ "aa"; "ab"; "ba"; "bb" ] words;
  Alcotest.(check (list string))
    "Σ^0" [ "" ]
    (List.of_seq (Word.enumerate Alphabet.binary 0));
  Alcotest.(check int)
    "Σ^5 count" 32
    (Seq.length (Word.enumerate Alphabet.binary 5))

let test_enumerate_persistent () =
  (* the sequence must be re-traversable *)
  let s = Word.enumerate Alphabet.binary 3 in
  Alcotest.(check int) "first pass" 8 (Seq.length s);
  Alcotest.(check int) "second pass" 8 (Seq.length s)

let test_count () =
  Alcotest.(check string)
    "2^10" "1024"
    (Ucfg_util.Bignum.to_string (Word.count Alphabet.binary 10));
  Alcotest.(check string)
    "3^4" "81"
    (Ucfg_util.Bignum.to_string (Word.count (Alphabet.make [ 'x'; 'y'; 'z' ]) 4))

let test_bits_roundtrip () =
  Alcotest.(check string) "of_bits" "aba" (Word.of_bits ~len:3 0b101);
  Alcotest.(check int) "to_bits" 0b101 (Word.to_bits "aba");
  Alcotest.(check string) "all b" "bbbb" (Word.of_bits ~len:4 0)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"word of_bits/to_bits roundtrip" ~count:500
    (QCheck.pair (QCheck.int_range 0 20) (QCheck.int_range 0 (1 lsl 20)))
    (fun (len, bits) ->
       let bits = bits land ((1 lsl len) - 1) in
       Word.to_bits (Word.of_bits ~len bits) = bits)

let prop_complement_involution =
  QCheck.Test.make ~name:"complement is an involution" ~count:200
    (QCheck.pair (QCheck.int_range 0 16) (QCheck.int_range 0 (1 lsl 16)))
    (fun (len, bits) ->
       let w = Word.of_bits ~len (bits land ((1 lsl len) - 1)) in
       Word.equal w (Word.complement (Word.complement w)))

let prop_enumerate_count =
  QCheck.Test.make ~name:"enumerate yields |Σ|^n distinct words" ~count:20
    (QCheck.int_range 0 8)
    (fun n ->
       let l = List.of_seq (Word.enumerate Alphabet.binary n) in
       List.length l = 1 lsl n
       && List.length (List.sort_uniq compare l) = 1 lsl n)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bits_roundtrip; prop_complement_involution; prop_enumerate_count ]

let () =
  Alcotest.run "ucfg_word"
    [
      ( "alphabet",
        [
          Alcotest.test_case "basic" `Quick test_alphabet_basic;
          Alcotest.test_case "validation" `Quick test_alphabet_rejects_duplicates;
          Alcotest.test_case "binary" `Quick test_binary;
        ] );
      ( "word",
        [
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "enumerate persistent" `Quick test_enumerate_persistent;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
        ] );
      ("properties", qtests);
    ]
