test/test_disc.mli:
