test/test_comm.ml: Alcotest Alphabet Biclique Cover_search Fooling Fun List Ln Matrix Printf Protocol Rank Splits Ucfg_comm Ucfg_lang Ucfg_rect Ucfg_util Ucfg_word
