test/test_fr.ml: Alcotest Alphabet Analysis Constructions Drep Grammar Iso Join Lang List Ln Printf QCheck QCheck_alcotest Random_grammar Ucfg_cfg Ucfg_fr Ucfg_lang Ucfg_util Ucfg_word
