test/test_rect.mli:
