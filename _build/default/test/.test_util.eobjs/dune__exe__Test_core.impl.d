test/test_core.ml: Alcotest Alphabet Csv Lang List Ln Ln_stream Printf QCheck QCheck_alcotest Report Search Separation Seq String Ucfg_cfg Ucfg_core Ucfg_lang Ucfg_util Ucfg_word Word
