test/test_regex.ml: Alcotest Alphabet Glushkov Lang List Ln Ln_regex Printf QCheck QCheck_alcotest Regex Seq String Ucfg_automata Ucfg_lang Ucfg_regex Ucfg_util Ucfg_word Word
