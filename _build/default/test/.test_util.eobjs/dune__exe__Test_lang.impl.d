test/test_lang.ml: Alcotest Alphabet Lang List Ln Option Printf QCheck QCheck_alcotest Residual String Ucfg_automata Ucfg_lang Ucfg_util Ucfg_word Word
