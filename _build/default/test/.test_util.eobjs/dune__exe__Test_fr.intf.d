test/test_fr.mli:
