test/test_disc.ml: Alcotest Blocks Bound Counts Discrepancy Float Format Fun List Option Partition Printf Seq Set_rectangle Setview Ucfg_cfg Ucfg_disc Ucfg_lang Ucfg_rect Ucfg_util
