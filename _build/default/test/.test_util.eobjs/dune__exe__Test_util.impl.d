test/test_util.ml: Alcotest Array Bignum Bitset Float Fun List Prelude Printf QCheck QCheck_alcotest Rng Ucfg_util
