test/test_word.ml: Alcotest Alphabet List QCheck QCheck_alcotest Seq Ucfg_util Ucfg_word Word
