test/test_kc.ml: Alcotest Array Circuit List Ln_circuit Printf QCheck QCheck_alcotest Seq Structured Ucfg_kc Ucfg_lang Ucfg_util Vtree
