(* Tests for finite languages and the witness family L_n. *)

open Ucfg_word
open Ucfg_lang
module BN = Ucfg_util.Bignum

let lang = Alcotest.testable Lang.pp Lang.equal

let test_lang_ops () =
  let a = Lang.of_list [ "ab"; "ba" ] and b = Lang.of_list [ "ba"; "bb" ] in
  Alcotest.check lang "union" (Lang.of_list [ "ab"; "ba"; "bb" ]) (Lang.union a b);
  Alcotest.check lang "inter" (Lang.of_list [ "ba" ]) (Lang.inter a b);
  Alcotest.check lang "diff" (Lang.of_list [ "ab" ]) (Lang.diff a b);
  Alcotest.(check int) "cardinal" 2 (Lang.cardinal a)

let test_lang_concat () =
  let a = Lang.of_list [ "a"; "b" ] and b = Lang.of_list [ "x"; "y" ] in
  Alcotest.check lang "product"
    (Lang.of_list [ "ax"; "ay"; "bx"; "by" ])
    (Lang.concat a b);
  Alcotest.check lang "unit left" a (Lang.concat (Lang.singleton "") a);
  Alcotest.check lang "empty absorbs" Lang.empty (Lang.concat Lang.empty a);
  Alcotest.check lang "concat_list"
    (Lang.of_list [ "axa"; "axb"; "aya"; "ayb"; "bxa"; "bxb"; "bya"; "byb" ])
    (Lang.concat_list [ a; b; a ])

let test_lang_full_complement () =
  let f2 = Lang.full Alphabet.binary 2 in
  Alcotest.(check int) "Σ^2" 4 (Lang.cardinal f2);
  let l = Lang.of_list [ "aa"; "bb" ] in
  Alcotest.check lang "complement"
    (Lang.of_list [ "ab"; "ba" ])
    (Lang.complement_within Alphabet.binary 2 l)

let test_lang_lengths () =
  let l = Lang.of_list [ "a"; "bb"; "ab" ] in
  Alcotest.(check (list int)) "lengths" [ 1; 2 ] (Lang.lengths l);
  Alcotest.(check (option int)) "not uniform" None (Lang.uniform_length l);
  Alcotest.(check (option int))
    "uniform" (Some 2)
    (Lang.uniform_length (Lang.of_list [ "aa"; "bb" ]))

let test_lang_sample () =
  let rng = Ucfg_util.Rng.create 11 in
  let l = Lang.full Alphabet.binary 4 in
  let s = Lang.sample rng 5 l in
  Alcotest.(check int) "five samples" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun w -> Alcotest.(check bool) "member" true (Lang.mem w l)) s

(* --- L_n --------------------------------------------------------------- *)

let brute_ln n =
  (* reference definition straight from the paper: exists k <= n-1 with 'a'
     at positions k and k+n (0-based) *)
  Lang.filter
    (fun w ->
       List.exists
         (fun k -> w.[k] = 'a' && w.[k + n] = 'a')
         (Ucfg_util.Prelude.range 0 n))
    (Lang.full Alphabet.binary (2 * n))

let test_ln_matches_brute_force () =
  List.iter
    (fun n ->
       Alcotest.check lang
         (Printf.sprintf "L_%d" n)
         (brute_ln n) (Ln.language n))
    [ 1; 2; 3; 4; 5 ]

let test_ln_cardinal () =
  List.iter
    (fun n ->
       Alcotest.(check int)
         (Printf.sprintf "|L_%d| = 4^%d - 3^%d" n n n)
         (Lang.cardinal (Ln.language n))
         (Option.get (BN.to_int (Ln.cardinal n))))
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check string)
    "|L_40| formula"
    (BN.to_string
       (BN.sub (BN.pow (BN.of_int 4) 40) (BN.pow (BN.of_int 3) 40)))
    (BN.to_string (Ln.cardinal 40))

let test_ln_membership_examples () =
  Alcotest.(check bool) "aa in L_1" true (Ln.mem 1 "aa");
  Alcotest.(check bool) "ab not in L_1" false (Ln.mem 1 "ab");
  Alcotest.(check bool) "abab in L_2" true (Ln.mem 2 "abab");
  Alcotest.(check bool) "abba not in L_2" false (Ln.mem 2 "abba");
  Alcotest.(check bool) "wrong length" false (Ln.mem 2 "ab");
  Alcotest.(check bool) "bad chars" false (Ln.mem 1 "ax")

let test_ln_mem_code_agrees () =
  List.iter
    (fun n ->
       let all = 1 lsl (2 * n) in
       for code = 0 to all - 1 do
         let w = Word.of_bits ~len:(2 * n) code in
         if Ln.mem_code n code <> Ln.mem n w then
           Alcotest.failf "mem_code disagrees at n=%d code=%d (%s)" n code w
       done)
    [ 1; 2; 3; 4 ]

let test_ln_slices_cover () =
  (* Example 8: L_n is the union of the slices L_n^k (not disjointly) *)
  List.iter
    (fun n ->
       let union =
         List.fold_left
           (fun acc k -> Lang.union acc (Ln.slice n k))
           Lang.empty
           (Ucfg_util.Prelude.range 0 n)
       in
       Alcotest.check lang
         (Printf.sprintf "slices cover L_%d" n)
         (Ln.language n) union)
    [ 1; 2; 3; 4 ]

let test_ln_slices_overlap () =
  (* the point of the paper: the natural cover is NOT disjoint *)
  let s0 = Ln.slice 2 0 and s1 = Ln.slice 2 1 in
  Alcotest.(check bool) "L_2^0 and L_2^1 overlap" false (Lang.disjoint s0 s1);
  Alcotest.(check bool) "aaaa in both" true
    (Lang.mem "aaaa" s0 && Lang.mem "aaaa" s1)

let test_ln_slice_cardinal () =
  (* |L_n^k| = 4^(n-1): two positions fixed to 'a' *)
  List.iter
    (fun n ->
       List.iter
         (fun k ->
            Alcotest.(check int)
              (Printf.sprintf "|L_%d^%d|" n k)
              (1 lsl (2 * (n - 1)))
              (Lang.cardinal (Ln.slice n k)))
         (Ucfg_util.Prelude.range 0 n))
    [ 1; 2; 3 ]

let test_ln_star () =
  let s = Ln.star 2 in
  (* words of length 4 starting and ending with one 'a' *)
  Alcotest.check lang "L*_2"
    (Lang.of_list [ "aaaa"; "aaba"; "abaa"; "abba" ])
    s;
  Alcotest.(check int) "|L*_4|" 16 (Lang.cardinal (Ln.star 4))

let prop_ln_complement_is_disjointness =
  (* the complement of L_n within Σ^2n is exactly the disjoint pairs *)
  QCheck.Test.make ~name:"L_n complement = set disjointness" ~count:200
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 0 (1 lsl 16)))
    (fun (n, code) ->
       let code = code land ((1 lsl (2 * n)) - 1) in
       let x = code land ((1 lsl n) - 1) in
       let y = code lsr n in
       Ln.mem_code n code = (x land y <> 0))

let prop_ln_shift_invariance =
  (* membership depends only on the pairs (w_k, w_{k+n}) *)
  QCheck.Test.make ~name:"L_n via half-overlap" ~count:500
    (QCheck.int_range 0 (1 lsl 12))
    (fun code ->
       let n = 6 in
       let code = code land ((1 lsl (2 * n)) - 1) in
       let w = Word.of_bits ~len:(2 * n) code in
       Ln.mem n w
       = List.exists
           (fun k -> w.[k] = 'a' && w.[k + n] = 'a')
           (Ucfg_util.Prelude.range 0 n))

(* --- residuals ----------------------------------------------------------- *)

let test_residual_left_right () =
  let l = Lang.of_list [ "ab"; "aa"; "ba" ] in
  Alcotest.check lang "a⁻¹l" (Lang.of_list [ "b"; "a" ])
    (Residual.left "a" l);
  Alcotest.check lang "b⁻¹l" (Lang.of_list [ "a" ]) (Residual.left "b" l);
  Alcotest.check lang "l a⁻¹" (Lang.of_list [ "a"; "b" ])
    (Residual.right "a" l);
  Alcotest.check lang "ε residual" l (Residual.left "" l);
  Alcotest.check lang "dead prefix" Lang.empty (Residual.left "bb" l)

let test_nerode_index_is_min_dfa () =
  (* the Myhill–Nerode index equals the minimal complete DFA size *)
  List.iter
    (fun (name, l) ->
       let trie =
         Ucfg_automata.Nfa.of_word_list Alphabet.binary (Lang.elements l)
       in
       let dfa_states =
         Ucfg_automata.Dfa.state_count
           (Ucfg_automata.Determinize.minimal_dfa trie)
       in
       Alcotest.(check int) name dfa_states
         (Residual.nerode_index Alphabet.binary l))
    [
      ("{ab}", Lang.singleton "ab");
      ("L_1", Ln.language 1);
      ("L_2", Ln.language 2);
      ("L_3", Ln.language 3);
      ("L*_2", Ln.star 2);
    ]

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ln_complement_is_disjointness; prop_ln_shift_invariance ]

let () =
  Alcotest.run "ucfg_lang"
    [
      ( "lang",
        [
          Alcotest.test_case "boolean ops" `Quick test_lang_ops;
          Alcotest.test_case "concatenation" `Quick test_lang_concat;
          Alcotest.test_case "full/complement" `Quick test_lang_full_complement;
          Alcotest.test_case "lengths" `Quick test_lang_lengths;
          Alcotest.test_case "sampling" `Quick test_lang_sample;
        ] );
      ( "ln",
        [
          Alcotest.test_case "matches brute force" `Quick test_ln_matches_brute_force;
          Alcotest.test_case "cardinality 4^n-3^n" `Quick test_ln_cardinal;
          Alcotest.test_case "membership examples" `Quick test_ln_membership_examples;
          Alcotest.test_case "mem_code agrees" `Quick test_ln_mem_code_agrees;
          Alcotest.test_case "slices cover (Example 8)" `Quick test_ln_slices_cover;
          Alcotest.test_case "slices overlap" `Quick test_ln_slices_overlap;
          Alcotest.test_case "slice cardinality" `Quick test_ln_slice_cardinal;
          Alcotest.test_case "star language (Example 6)" `Quick test_ln_star;
        ] );
      ( "residual",
        [
          Alcotest.test_case "left/right quotients" `Quick
            test_residual_left_right;
          Alcotest.test_case "Nerode index = min DFA" `Quick
            test_nerode_index_is_min_dfa;
        ] );
      ("properties", qtests);
    ]
