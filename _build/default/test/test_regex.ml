(* Tests for regular expressions, the Glushkov construction and the L_n
   expressions. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_regex
module R = Regex

let lang = Alcotest.testable Lang.pp Lang.equal

let test_smart_constructors () =
  Alcotest.(check bool) "∅|r = r" true (R.alt R.empty (R.chr 'a') = R.chr 'a');
  Alcotest.(check bool) "∅r = ∅" true (R.cat R.empty (R.chr 'a') = R.empty);
  Alcotest.(check bool) "εr = r" true (R.cat R.eps (R.chr 'a') = R.chr 'a');
  Alcotest.(check bool) "ε* = ε" true (R.star R.eps = R.eps);
  Alcotest.(check bool) "r** = r*" true
    (R.star (R.star (R.chr 'a')) = R.star (R.chr 'a'))

let test_matches () =
  let r = R.cat (R.star (R.chr 'a')) (R.chr 'b') in
  Alcotest.(check bool) "b" true (R.matches r "b");
  Alcotest.(check bool) "aab" true (R.matches r "aab");
  Alcotest.(check bool) "aba" false (R.matches r "aba");
  Alcotest.(check bool) "ε" false (R.matches r "");
  Alcotest.(check bool) "ε in a*" true (R.matches (R.star (R.chr 'a')) "")

let test_nullable () =
  Alcotest.(check bool) "a* nullable" true (R.nullable (R.star (R.chr 'a')));
  Alcotest.(check bool) "a not" false (R.nullable (R.chr 'a'));
  Alcotest.(check bool) "a|ε" true (R.nullable (R.alt (R.chr 'a') R.eps))

let test_power_of_word () =
  Alcotest.(check bool) "aaa" true (R.matches (R.power (R.chr 'a') 3) "aaa");
  Alcotest.(check bool) "aa" false (R.matches (R.power (R.chr 'a') 3) "aa");
  Alcotest.(check bool) "word" true (R.matches (R.of_word "abba") "abba")

let test_print_parse_roundtrip () =
  let exprs =
    [
      R.chr 'a';
      R.alt (R.chr 'a') (R.chr 'b');
      R.cat (R.alt (R.chr 'a') R.eps) (R.star (R.chr 'b'));
      Ln_regex.ln 3;
      Ln_regex.pattern 4;
    ]
  in
  List.iter
    (fun r ->
       let s = R.to_string r in
       let r' = R.parse s in
       (* parse . print need not be syntactically identical (smart
          constructors), but must be language-equal *)
       Alcotest.check lang
         (Printf.sprintf "roundtrip %s" s)
         (R.language r ~alphabet:Alphabet.binary ~max_len:6)
         (R.language r' ~alphabet:Alphabet.binary ~max_len:6))
    exprs

let test_parse_errors () =
  List.iter
    (fun s ->
       match R.parse s with
       | exception Invalid_argument _ -> ()
       | _ -> Alcotest.failf "expected parse error on %S" s)
    [ "("; "a)"; "*a"; "a|*"; "a b" ]

let test_glushkov_basic () =
  let r = R.cat (R.star (R.alt (R.chr 'a') (R.chr 'b'))) (R.chr 'a') in
  let nfa = Glushkov.nfa Alphabet.binary r in
  Alcotest.(check int) "ε-free" 0 (Ucfg_automata.Nfa.epsilon_count nfa);
  Alcotest.check lang "language"
    (R.language r ~alphabet:Alphabet.binary ~max_len:5)
    (Ucfg_automata.Nfa.language nfa ~max_len:5)

let test_ln_regex () =
  List.iter
    (fun n ->
       Alcotest.check lang
         (Printf.sprintf "regex L_%d" n)
         (Ln.language n)
         (R.language (Ln_regex.ln n) ~alphabet:Alphabet.binary
            ~max_len:(2 * n)))
    [ 1; 2; 3; 4 ]

let test_ln_star_regex () =
  Alcotest.check lang "L*_2"
    (Ln.star 2)
    (R.language (Ln_regex.ln_star 2) ~alphabet:Alphabet.binary ~max_len:4)

let test_slice_regex () =
  List.iter
    (fun (n, k) ->
       Alcotest.check lang
         (Printf.sprintf "slice %d %d" n k)
         (Ln.slice n k)
         (R.language (Ln_regex.slice n k) ~alphabet:Alphabet.binary
            ~max_len:(2 * n)))
    [ (2, 0); (2, 1); (3, 1) ]

let test_pattern_regex_vs_nfa () =
  let r = Ln_regex.pattern 3 in
  let m = Ucfg_automata.Ln_nfa.pattern 3 in
  Alcotest.check lang "same unbounded pattern"
    (R.language r ~alphabet:Alphabet.binary ~max_len:8)
    (Ucfg_automata.Nfa.language m ~max_len:8)

(* random regex generator over a seed *)
let random_regex rng =
  let module Rng = Ucfg_util.Rng in
  let rec gen depth =
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 -> R.chr 'a'
      | 1 -> R.chr 'b'
      | _ -> R.eps
    else
      match Rng.int rng 4 with
      | 0 -> R.alt (gen (depth - 1)) (gen (depth - 1))
      | 1 -> R.cat (gen (depth - 1)) (gen (depth - 1))
      | 2 -> R.star (gen (depth - 1))
      | _ -> gen 0
  in
  gen 4

let prop_glushkov_equals_derivatives =
  QCheck.Test.make ~name:"Glushkov NFA = derivative semantics" ~count:60
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let r = random_regex rng in
       let nfa = Glushkov.nfa Alphabet.binary r in
       Seq.for_all
         (fun w -> R.matches r w = Ucfg_automata.Nfa.accepts nfa w)
         (Seq.concat_map
            (fun len -> Word.enumerate Alphabet.binary len)
            (List.to_seq [ 0; 1; 2; 3; 4 ])))

let prop_parse_print =
  QCheck.Test.make ~name:"parse ∘ print preserves the language" ~count:60
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let r = random_regex rng in
       let r' = R.parse (R.to_string r) in
       Seq.for_all
         (fun w -> R.matches r w = R.matches r' w)
         (Seq.concat_map
            (fun len -> Word.enumerate Alphabet.binary len)
            (List.to_seq [ 0; 1; 2; 3 ])))

let prop_deriv_correct =
  QCheck.Test.make ~name:"derivative: w ∈ c·L iff w' ∈ deriv" ~count:100
    (QCheck.int_range 0 100_000)
    (fun seed ->
       let rng = Ucfg_util.Rng.create seed in
       let r = random_regex rng in
       let c = if Ucfg_util.Rng.bool rng then 'a' else 'b' in
       Seq.for_all
         (fun w ->
            R.matches r (String.make 1 c ^ w) = R.matches (R.deriv r c) w)
         (Word.enumerate Alphabet.binary 3))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_glushkov_equals_derivatives; prop_parse_print; prop_deriv_correct ]

let () =
  Alcotest.run "ucfg_regex"
    [
      ( "regex",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "matches" `Quick test_matches;
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "power/of_word" `Quick test_power_of_word;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_print_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "glushkov",
        [ Alcotest.test_case "basic" `Quick test_glushkov_basic ] );
      ( "ln-regex",
        [
          Alcotest.test_case "L_n" `Quick test_ln_regex;
          Alcotest.test_case "L*_n" `Quick test_ln_star_regex;
          Alcotest.test_case "slices" `Quick test_slice_regex;
          Alcotest.test_case "pattern vs NFA" `Quick test_pattern_regex_vs_nfa;
        ] );
      ("properties", qtests);
    ]
