(* Failure injection: every public constructor and algorithm must reject
   ill-formed input with a clear [Invalid_argument], never crash or return
   garbage.  One suite sweeping the whole library surface. *)

open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
module BN = Ucfg_util.Bignum

let raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: expected Invalid_argument" name)

let util_cases =
  [
    raises_invalid "Bignum.pow negative exponent" (fun () ->
        BN.pow BN.two (-1));
    raises_invalid "Bignum.divmod_int zero divisor" (fun () ->
        BN.divmod_int BN.one 0);
    raises_invalid "Bignum.divmod negative dividend" (fun () ->
        BN.divmod BN.minus_one BN.one);
    raises_invalid "Bignum.divmod zero divisor" (fun () ->
        BN.divmod BN.one BN.zero);
    raises_invalid "Bignum.of_string empty" (fun () -> BN.of_string "");
    raises_invalid "Bignum.of_string junk" (fun () -> BN.of_string "12x4");
    raises_invalid "Bignum.random non-positive bound" (fun () ->
        BN.random (Ucfg_util.Rng.create 1) BN.zero);
    raises_invalid "Bignum.log2 of zero" (fun () -> BN.log2 BN.zero);
    raises_invalid "Bitset out of range" (fun () ->
        Ucfg_util.Bitset.mem (Ucfg_util.Bitset.create 4) 4);
    raises_invalid "Bitset size mismatch" (fun () ->
        Ucfg_util.Bitset.union (Ucfg_util.Bitset.create 4)
          (Ucfg_util.Bitset.create 5));
    raises_invalid "Rng.int non-positive" (fun () ->
        Ucfg_util.Rng.int (Ucfg_util.Rng.create 1) 0);
  ]

let word_cases =
  [
    raises_invalid "Word.slice out of range" (fun () -> Word.slice "ab" 1 2);
    raises_invalid "Word.complement non-binary" (fun () ->
        Word.complement "axb");
    raises_invalid "Word.of_bits too long" (fun () -> Word.of_bits ~len:63 0);
    raises_invalid "Word.to_bits non-binary" (fun () -> Word.to_bits "xy");
    raises_invalid "Alphabet.char_at range" (fun () ->
        Alphabet.char_at Alphabet.binary 2);
  ]

let lang_cases =
  [
    raises_invalid "Ln.slice bad k" (fun () -> Ln.slice 3 3);
    raises_invalid "Ln.star odd n" (fun () -> Ln.star 3);
    raises_invalid "Ln_stream odd char" (fun () ->
        Ln_stream.feed (Ln_stream.create 2) 'x');
    raises_invalid "Ln_stream n too large" (fun () -> Ln_stream.create 61);
  ]

let cfg_cases =
  [
    raises_invalid "Grammar bad start" (fun () ->
        Grammar.make ~alphabet:Alphabet.binary ~names:[| "S" |] ~rules:[]
          ~start:1);
    raises_invalid "Constructions.log_cfg 0" (fun () ->
        Constructions.log_cfg 0);
    raises_invalid "Constructions.example4 0" (fun () ->
        Constructions.example4 0);
    raises_invalid "Constructions.example3 -1" (fun () ->
        Constructions.example3 (-1));
    raises_invalid "Cyk on non-CNF" (fun () ->
        Cyk.recognize (Constructions.log_cfg 3) "aabaab");
    raises_invalid "Count.derivations_by_length non-CNF" (fun () ->
        Count.derivations_by_length (Constructions.log_cfg 3) 6);
    raises_invalid "Direct_access non-CNF" (fun () ->
        Direct_access.create (Constructions.log_cfg 3) ~max_len:6);
    raises_invalid "Length_annotate on mixed lengths" (fun () ->
        Length_annotate.annotate
          (Constructions.of_language Alphabet.binary
             (Lang.of_list [ "a"; "aa" ])));
    raises_invalid "Length_annotate on empty language" (fun () ->
        Length_annotate.annotate
          (Grammar.make ~alphabet:Alphabet.binary ~names:[| "S" |] ~rules:[]
             ~start:0));
    raises_invalid "Slp.of_word empty" (fun () -> Slp.of_word "");
    raises_invalid "Slp.power 0" (fun () -> Slp.power (Slp.of_word "a") 0);
    raises_invalid "Slp.char_at out of range" (fun () ->
        Slp.char_at (Slp.of_word "ab") (BN.of_int 2));
    raises_invalid "Slp.to_word too long" (fun () ->
        Slp.to_word ~max_len:10 (Slp.power (Slp.of_word "ab") 1024));
    raises_invalid "Ops.union alphabet mismatch" (fun () ->
        Ops.union
          (Constructions.of_language Alphabet.binary (Lang.singleton "a"))
          (Constructions.of_language (Alphabet.make [ 'x'; 'y' ])
             (Lang.singleton "x")));
    raises_invalid "Ambiguity.check on infinite-trees grammar" (fun () ->
        Ambiguity.check
          (Grammar.make ~alphabet:Alphabet.binary ~names:[| "S"; "A" |]
             ~rules:
               [
                 { Grammar.lhs = 0; rhs = [ Grammar.N 1 ] };
                 { Grammar.lhs = 1; rhs = [ Grammar.N 0 ] };
                 { Grammar.lhs = 0; rhs = [ Grammar.T 'a' ] };
               ]
             ~start:0));
  ]

let automata_cases =
  [
    raises_invalid "Nfa bad state" (fun () ->
        Ucfg_automata.Nfa.make ~alphabet:Alphabet.binary ~states:1
          ~initials:[ 1 ] ~finals:[] ~transitions:[] ());
    raises_invalid "Nfa foreign symbol" (fun () ->
        Ucfg_automata.Nfa.make ~alphabet:Alphabet.binary ~states:1
          ~initials:[ 0 ] ~finals:[] ~transitions:[ (0, 'z', 0) ] ());
    raises_invalid "Ln_nfa.build 0" (fun () -> Ucfg_automata.Ln_nfa.build 0);
    raises_invalid "product with ε" (fun () ->
        let m =
          Ucfg_automata.Nfa.make ~alphabet:Alphabet.binary ~states:2
            ~initials:[ 0 ] ~finals:[ 1 ] ~transitions:[]
            ~epsilons:[ (0, 1) ] ()
        in
        Ucfg_automata.Nfa.product m m);
    raises_invalid "Bar_hillel with ε" (fun () ->
        let m =
          Ucfg_automata.Nfa.make ~alphabet:Alphabet.binary ~states:2
            ~initials:[ 0 ] ~finals:[ 1 ] ~transitions:[]
            ~epsilons:[ (0, 1) ] ()
        in
        Ucfg_automata.Bar_hillel.intersect (Constructions.log_cfg 2) m);
    raises_invalid "nfa_of_right_linear on non-linear" (fun () ->
        Ucfg_automata.Translate.nfa_of_right_linear (Constructions.log_cfg 2));
  ]

let rect_cases =
  [
    raises_invalid "Partition bad interval" (fun () ->
        Ucfg_rect.Partition.make ~n:2 3 2);
    raises_invalid "Partition.neaten n not mult of 4" (fun () ->
        Ucfg_rect.Partition.neaten (Ucfg_rect.Partition.make ~n:3 1 3));
    raises_invalid "Rectangle.make bad lengths" (fun () ->
        Ucfg_rect.Rectangle.make ~n1:1 ~n2:1 ~n3:1
          ~outer:(Lang.singleton "abc") ~middle:(Lang.singleton "a"));
    raises_invalid "Set_rectangle mask outside part" (fun () ->
        Ucfg_rect.Set_rectangle.make
          (Ucfg_rect.Partition.make ~n:2 1 2)
          ~outer:[ 0b0001 ] ~inner:[]);
    raises_invalid "Extract on word length 1" (fun () ->
        Ucfg_rect.Extract.run
          (Constructions.of_language Alphabet.binary (Lang.singleton "a")));
    raises_invalid "Blocks.create not mult of 4" (fun () ->
        Ucfg_disc.Blocks.create 6);
  ]

let kc_cases =
  [
    raises_invalid "Circuit forward edge" (fun () ->
        Ucfg_kc.Circuit.make ~vars:1
          ~nodes:[| Ucfg_kc.Circuit.And [ 1 ]; Ucfg_kc.Circuit.True |] ~root:0);
    raises_invalid "Circuit bad variable" (fun () ->
        Ucfg_kc.Circuit.make ~vars:1
          ~nodes:[| Ucfg_kc.Circuit.Lit (1, true) |] ~root:0);
    raises_invalid "Circuit.models too many vars" (fun () ->
        Ucfg_kc.Circuit.models (Ucfg_kc.Ln_circuit.naive 16));
  ]

let fr_cases =
  [
    raises_invalid "Join.make width" (fun () ->
        Ucfg_fr.Join.make ~width:2 [ ("a", "ab") ]);
    raises_invalid "Join width mismatch" (fun () ->
        Ucfg_fr.Join.factorize
          (Ucfg_fr.Join.make ~width:1 [ ("a", "b") ])
          (Ucfg_fr.Join.make ~width:2 [ ("aa", "bb") ]));
    raises_invalid "Drep children order" (fun () ->
        Ucfg_fr.Drep.make ~alphabet:Alphabet.binary
          ~nodes:[| Ucfg_fr.Drep.Union [ 1 ]; Ucfg_fr.Drep.Letter 'a' |]
          ~root:0);
  ]

let () =
  Alcotest.run "ucfg_validation"
    [
      ("util", util_cases);
      ("word", word_cases);
      ("lang", lang_cases);
      ("cfg", cfg_cases);
      ("automata", automata_cases);
      ("rect+disc", rect_cases);
      ("kc", kc_cases);
      ("fr", fr_cases);
    ]
