(* The database motivation: query answers as factorised representations.
   A join result R(A,B) ⋈ S(B,C) materialises quadratically on skewed
   keys but factorises linearly; and factorised representations are
   exactly CFGs of finite languages (Kimelfeld–Martens–Niewerth), which
   is what connects the paper's grammar lower bound to databases.

   Run with: dune exec examples/factorized_join.exe *)

open Ucfg_fr
open Ucfg_core

let () =
  let rng = Ucfg_util.Rng.create 2026 in
  let width = 6 in
  let hot = String.make width 'a' in

  Report.print_table
    ~title:
      "R(A,B) ⋈ S(B,C), fully skewed keys: factorised vs materialised size"
    ~headers:[ "|R|=|S|"; "join tuples"; "materialised chars"; "factorised edges" ]
    (List.map
       (fun size ->
          let r =
            Join.random_relation rng ~width ~size ~skew:1.0 ~join_side:`Second
              ~hot ()
          in
          let s =
            Join.random_relation rng ~width ~size ~skew:1.0 ~join_side:`First
              ~hot ()
          in
          let tuples = Join.join_tuples r s in
          let d = Join.factorize r s in
          assert (Ucfg_lang.Lang.equal tuples (Drep.denotation d));
          [
            string_of_int size;
            string_of_int (Ucfg_lang.Lang.cardinal tuples);
            string_of_int (Join.materialized_size r s);
            string_of_int (Drep.size d);
          ])
       [ 4; 8; 16; 32; 64 ]);

  (* uniform keys for contrast *)
  Report.print_table
    ~title:"same, uniform keys (skew 0)"
    ~headers:[ "|R|=|S|"; "join tuples"; "materialised chars"; "factorised edges" ]
    (List.map
       (fun size ->
          let r =
            Join.random_relation rng ~width ~size ~skew:0.0 ~join_side:`Second ()
          in
          let s =
            Join.random_relation rng ~width ~size ~skew:0.0 ~join_side:`First ()
          in
          let tuples = Join.join_tuples r s in
          let d = Join.factorize r s in
          [
            string_of_int size;
            string_of_int (Ucfg_lang.Lang.cardinal tuples);
            string_of_int (Join.materialized_size r s);
            string_of_int (Drep.size d);
          ])
       [ 16; 64; 256 ]);

  (* the KMN bridge: a factorised representation IS a grammar *)
  let r =
    Join.random_relation rng ~width:3 ~size:6 ~skew:1.0 ~join_side:`Second
      ~hot:"aba" ()
  in
  let s =
    Join.random_relation rng ~width:3 ~size:6 ~skew:1.0 ~join_side:`First
      ~hot:"aba" ()
  in
  let d = Join.factorize r s in
  let g = Iso.cfg_of_drep d in
  Printf.printf
    "KMN isomorphism: the factorised join as a CFG has size %d (drep %d \
     edges), language equal: %b, unambiguous: %b\n"
    (Ucfg_cfg.Grammar.size g) (Drep.size d)
    (Ucfg_lang.Lang.equal (Drep.denotation d)
       (Ucfg_cfg.Analysis.language_exn g))
    (Ucfg_cfg.Ambiguity.is_unambiguous g);
  Printf.printf
    "\nThe paper's theorem, read through this bridge: there are finite\n\
     relations (the L_n family) whose factorised representation is tiny,\n\
     but whose *deterministic* (d-) representation — the kind that counts\n\
     and enumerates efficiently — must be exponentially large.\n"
