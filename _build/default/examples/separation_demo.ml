(* The headline experiment (Theorem 1): the sizes of the three
   representations of L_n side by side, with the certified lower bound.

   Run with: dune exec examples/separation_demo.exe [-- max_n]           *)

open Ucfg_core

let () =
  let max_n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12
  in
  let ns =
    List.filter (fun n -> n <= max_n) [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16; 24; 32 ]
  in
  let reports = List.map Separation.run ns in
  Report.print_table
    ~title:
      "Theorem 1: representations of L_n (CFG = Appendix A grammar, Ex3 = \
       Example 3 when n = 2^t + 1, uCFG<= = Example 4 upper bound, uCFG>= = \
       Theorem 12 certified lower bound)"
    ~headers:Separation.headers (Separation.rows reports);
  print_newline ();
  (* the asymptotic picture: log2 of the lower bound grows linearly in n,
     so the uCFG size is 2^Ω(n) while the CFG stays Θ(log n) *)
  Report.print_table ~title:"growth of the certified lower bound"
    ~headers:[ "n"; "log2 lower bound"; "CFG size" ]
    (List.map
       (fun n ->
          [
            string_of_int n;
            Printf.sprintf "%.1f" (Ucfg_disc.Bound.log2_ucfg_bound n);
            string_of_int
              (Ucfg_cfg.Grammar.size (Ucfg_cfg.Constructions.log_cfg n));
          ])
       [ 100; 200; 400; 800; 1600; 3200 ]);
  Printf.printf
    "\nReproduction note: the paper claims a Θ(n) NFA for L_n (Thm 1(2));\n\
     the fixed-length fooling argument (see Ucfg_automata.Ln_nfa) shows\n\
     Ω(n²) is required, matched by our leveled NFA. The Θ(n) automaton\n\
     exists for the unbounded pattern Σ*aΣ^(n-1)aΣ*; the exponential\n\
     NFA-vs-uCFG separation is unaffected.\n"
