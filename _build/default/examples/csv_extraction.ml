(* The introduction's information-extraction scenario: from a CSV file
   with fixed-width columns, extract all pairs of lines agreeing on at
   least one column of a column set S.  A small (ambiguous) CFG does it;
   the paper's lower bound says any unambiguous grammar is exponential in
   |S| — via the embedding of L_n.

   Run with: dune exec examples/csv_extraction.exe *)

open Ucfg_lang
open Ucfg_cfg
open Ucfg_core

let () =
  let scheme = { Csv.columns = 3; width = 2 } in
  Printf.printf
    "scheme: %d columns of width %d; a word is two concatenated rows (%d \
     chars)\n\n"
    scheme.Csv.columns scheme.Csv.width (Csv.word_length scheme);

  (* a tiny CSV: four rows over the binary alphabet *)
  let rows = [ "aabbab"; "ababab"; "bbabba"; "aabbbb" ] in
  Printf.printf "rows:\n";
  List.iteri (fun i r -> Printf.printf "  %d: %s\n" i r) rows;
  Printf.printf "\npairs agreeing on some column:\n";
  List.iteri
    (fun i r1 ->
       List.iteri
         (fun j r2 ->
            if i < j && Csv.mem scheme (r1 ^ r2) then
              Printf.printf "  rows %d and %d\n" i j)
         rows)
    rows;

  (* the ambiguous grammar for P_S is small... *)
  let g = Csv.grammar scheme in
  Printf.printf "\nambiguous CFG for P_S: size %d (%d rules)\n" (Grammar.size g)
    (Grammar.rule_count g);
  Printf.printf "it is ambiguous: %b (a pair can agree on several columns)\n"
    (not (Ambiguity.is_unambiguous g));
  Printf.printf "and correct: %b\n"
    (Lang.equal (Csv.language scheme) (Analysis.language_exn g));

  (* ... but any unambiguous grammar pays exponentially in the columns *)
  Printf.printf "\nthe reduction from L_n (n = #columns, width 2):\n";
  let n = 3 in
  let w = "aabaab" in
  Printf.printf "  %s ∈ L_%d: %b; embeds to %s ∈ P_S: %b\n" w n (Ln.mem n w)
    (Csv.embed n w)
    (Csv.mem (Csv.embedding_scheme n) (Csv.embed n w));
  let w' = "aabbba" in
  Printf.printf "  %s ∈ L_%d: %b; embeds to %s ∈ P_S: %b\n" w' n (Ln.mem n w')
    (Csv.embed n w')
    (Csv.mem (Csv.embedding_scheme n) (Csv.embed n w'));

  Report.print_table
    ~title:"uCFG size lower bound for P_S as the column count grows"
    ~headers:[ "columns"; "ambiguous CFG size"; "uCFG lower bound" ]
    (List.map
       (fun cols ->
          let s = { Csv.columns = cols; width = 2 } in
          [
            string_of_int cols;
            string_of_int (Grammar.size (Csv.grammar s));
            Ucfg_util.Bignum.to_string (Csv.ucfg_size_lower_bound s);
          ])
       [ 2; 4; 8; 200; 400; 800; 1600 ])
