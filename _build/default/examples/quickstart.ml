(* Quickstart: build the paper's witness language three ways, parse, count,
   check ambiguity, and extract the Proposition 7 rectangle cover.

   Run with: dune exec examples/quickstart.exe *)

open Ucfg_lang
open Ucfg_cfg

let () =
  let n = 3 in
  Printf.printf "L_%d: binary words of length %d with two a's at distance %d\n"
    n (2 * n) n;

  (* the language itself, by brute force *)
  let reference = Ln.language n in
  Printf.printf "|L_%d| = %d words (formula 4^n - 3^n = %s)\n\n" n
    (Lang.cardinal reference)
    (Ucfg_util.Bignum.to_string (Ln.cardinal n));

  (* 1. the Θ(log n) ambiguous CFG from Appendix A *)
  let cfg = Constructions.log_cfg n in
  Printf.printf "Appendix A CFG: size %d, %d nonterminals, unambiguous? %b\n"
    (Grammar.size cfg)
    (Grammar.nonterminal_count cfg)
    (Ambiguity.is_unambiguous cfg);

  (* 2. the exponential unambiguous CFG from Example 4 *)
  let ucfg = Constructions.example4 n in
  Printf.printf "Example 4 uCFG: size %d, unambiguous? %b\n" (Grammar.size ucfg)
    (Ambiguity.is_unambiguous ucfg);

  (* 3. the guess-and-verify NFA *)
  let nfa = Ucfg_automata.Ln_nfa.build n in
  Printf.printf "NFA: %d states, %d transitions\n\n"
    (Ucfg_automata.Nfa.state_count nfa)
    (Ucfg_automata.Nfa.transition_count nfa);

  (* all three agree with the brute-force language *)
  let cfg_lang = Analysis.language_exn cfg in
  let ucfg_lang = Analysis.language_exn ucfg in
  let nfa_lang = Ucfg_automata.Nfa.language nfa ~max_len:(2 * n) in
  Printf.printf "CFG language correct: %b\n" (Lang.equal reference cfg_lang);
  Printf.printf "uCFG language correct: %b\n" (Lang.equal reference ucfg_lang);
  Printf.printf "NFA language correct: %b\n\n" (Lang.equal reference nfa_lang);

  (* parse a word and show its tree; show ambiguity on the small CFG *)
  let w = "aabaab" in
  let cnf = Cnf.of_grammar cfg in
  (match Cyk.parse cnf w with
   | Some tree ->
     Printf.printf "a parse tree of %S (CNF of the Appendix A grammar):\n%s\n" w
       (Format.asprintf "%a" (Parse_tree.pp cnf) tree)
   | None -> Printf.printf "unexpected: %S did not parse\n" w);
  Printf.printf "parse trees of %S in the ambiguous grammar: %s\n" w
    (Ucfg_util.Bignum.to_string (Count_word.trees cfg w));
  Printf.printf "parse trees of %S in the unambiguous grammar: %s\n\n" w
    (Ucfg_util.Bignum.to_string (Count_word.trees ucfg w));

  (* counting: polynomial DP on the uCFG *)
  let count = Count.words_unambiguous (Cnf.of_grammar ucfg) (2 * n) in
  Printf.printf "counting |L_%d| by the uCFG dynamic program: %s\n" n
    (Ucfg_util.Bignum.to_string count);

  (* enumeration: the uCFG needs no duplicate suppression *)
  let first_five =
    Enumerate.derivation_words ucfg |> Seq.take 5 |> List.of_seq
  in
  Printf.printf "first five words enumerated from the uCFG: %s\n\n"
    (String.concat ", " first_five);

  (* Proposition 7: extract a balanced rectangle cover from each grammar *)
  let show_extraction name g =
    let res = Ucfg_rect.Extract.run g in
    let v, _ = Ucfg_rect.Extract.verify g res in
    Printf.printf
      "%s: %d rectangles (bound %d), covers: %b, disjoint: %b\n" name
      (List.length res.Ucfg_rect.Extract.rectangles)
      res.Ucfg_rect.Extract.bound v.Ucfg_rect.Cover.is_cover
      v.Ucfg_rect.Cover.is_disjoint
  in
  show_extraction "rectangles from the ambiguous CFG" cfg;
  show_extraction "rectangles from the uCFG" ucfg;

  (* the certified lower bound *)
  Printf.printf "\ncertified uCFG size lower bound at n = 64: %s\n"
    (Ucfg_util.Bignum.to_string (Ucfg_disc.Bound.ucfg_size_lower_bound 64))
