(* What unambiguity buys, operationally: exact counting, direct access,
   uniform sampling, and semiring-weighted evaluation — all on the
   unambiguous grammar for L_n, all impossible (or wrong) on the ambiguous
   one without extra work.

   Run with: dune exec examples/unambiguity_dividend.exe *)

open Ucfg_lang
open Ucfg_cfg
module BN = Ucfg_util.Bignum

let () =
  let n = 6 in
  let ucfg = Cnf.of_grammar (Constructions.example4 n) in
  let cfg = Cnf.of_grammar (Constructions.log_cfg n) in
  Printf.printf "L_%d: %s words; uCFG size %d, ambiguous CFG size %d\n\n" n
    (BN.to_string (Ln.cardinal n))
    (Grammar.size ucfg) (Grammar.size cfg);

  (* 1. counting: the DP is exact on the uCFG, overcounts on the CFG *)
  Printf.printf "derivation-counting DP: uCFG %s (exact), CFG %s (counts \
                 parse trees, not words)\n\n"
    (BN.to_string (Count.words_unambiguous ucfg (2 * n)))
    (BN.to_string (Count.words_unambiguous cfg (2 * n)));

  (* 2. direct access: the i-th word without enumerating *)
  let da = Direct_access.create ucfg ~max_len:(2 * n) in
  List.iter
    (fun i ->
       let w = Option.get (Direct_access.nth da (BN.of_int i)) in
       Printf.printf "word #%d of L_%d: %s (rank back: %s)\n" i n w
         (BN.to_string (Option.get (Direct_access.rank da w))))
    [ 0; 1000; 3000 ];

  (* 3. exactly uniform sampling via counting + big-integer randomness *)
  let rng = Ucfg_util.Rng.create 2025 in
  Printf.printf "\nfive uniform samples from L_%d:" n;
  for _ = 1 to 5 do
    Printf.printf " %s" (Option.get (Direct_access.sample da rng))
  done;
  Printf.printf "\n\n";

  (* 4. semirings: one CYK, many questions *)
  let module WBool = Weighted.Make (Semiring.Boolean) in
  let module WCount = Weighted.Make (Semiring.Counting) in
  let module WTrop = Weighted.Make (Semiring.Tropical) in
  let w = Option.get (Direct_access.nth da (BN.of_int 1234)) in
  Printf.printf "the word %s under different semirings (ambiguous CFG):\n" w;
  Printf.printf "  boolean (membership): %b\n" (WBool.word_weight cfg w);
  Printf.printf "  counting (parse trees): %s\n"
    (BN.to_string (WCount.word_weight cfg w));
  Printf.printf "  tropical (cheapest derivation, 1 per rule): %s\n"
    (match WTrop.word_weight ~rule_weight:(fun _ -> Some 1) cfg w with
     | Some c -> string_of_int c
     | None -> "∞");
  Printf.printf "  on the uCFG the parse-tree count is of course: %s\n"
    (BN.to_string (WCount.word_weight ucfg w))
