examples/quickstart.mli:
