examples/csv_extraction.mli:
