examples/unambiguity_dividend.mli:
