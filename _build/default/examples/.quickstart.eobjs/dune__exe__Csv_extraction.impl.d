examples/csv_extraction.ml: Ambiguity Analysis Csv Grammar Lang List Ln Printf Report Ucfg_cfg Ucfg_core Ucfg_lang Ucfg_util
