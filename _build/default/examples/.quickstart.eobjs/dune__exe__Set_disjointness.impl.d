examples/set_disjointness.ml: Cover_search Fooling Fun List Matrix Printf Protocol Rank Report Setview String Ucfg_comm Ucfg_core Ucfg_disc Ucfg_lang Ucfg_rect Ucfg_util Ucfg_word
