examples/unambiguity_dividend.ml: Cnf Constructions Count Direct_access Grammar List Ln Option Printf Semiring Ucfg_cfg Ucfg_lang Ucfg_util Weighted
