examples/separation_demo.ml: Array List Printf Report Separation Sys Ucfg_cfg Ucfg_core Ucfg_disc
