examples/set_disjointness.mli:
