examples/factorized_join.ml: Drep Iso Join List Printf Report String Ucfg_cfg Ucfg_core Ucfg_fr Ucfg_lang Ucfg_util
