examples/factorized_join.mli:
