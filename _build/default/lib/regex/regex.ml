open Ucfg_word

type t =
  | Empty
  | Eps
  | Chr of char
  | Alt of t * t
  | Cat of t * t
  | Star of t

let empty = Empty
let eps = Eps
let chr c = Chr c

let alt a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | a, b when a = b -> a
  | _ -> Alt (a, b)

let cat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, r | r, Eps -> r
  | _ -> Cat (a, b)

let star = function
  | Empty | Eps -> Eps
  | Star r -> Star r
  | r -> Star r

let alt_list = function [] -> Empty | r :: rest -> List.fold_left alt r rest
let cat_list = function [] -> Eps | r :: rest -> List.fold_left cat r rest

let any alpha = alt_list (List.map chr (Alphabet.chars alpha))

let power r k =
  if k < 0 then invalid_arg "Regex.power: negative exponent";
  cat_list (List.init k (fun _ -> r))

let of_word w = cat_list (List.init (String.length w) (fun i -> chr w.[i]))

let rec nullable = function
  | Empty | Chr _ -> false
  | Eps | Star _ -> true
  | Alt (a, b) -> nullable a || nullable b
  | Cat (a, b) -> nullable a && nullable b

let rec deriv r c =
  match r with
  | Empty | Eps -> Empty
  | Chr c' -> if Char.equal c c' then Eps else Empty
  | Alt (a, b) -> alt (deriv a c) (deriv b c)
  | Cat (a, b) ->
    let left = cat (deriv a c) b in
    if nullable a then alt left (deriv b c) else left
  | Star a -> cat (deriv a c) (star a)

let matches r w =
  let rec go r i =
    if i = String.length w then nullable r
    else
      match deriv r w.[i] with Empty -> false | r' -> go r' (i + 1)
  in
  go r 0

let rec size = function
  | Empty | Eps | Chr _ -> 1
  | Alt (a, b) | Cat (a, b) -> 1 + size a + size b
  | Star a -> 1 + size a

let language r ~alphabet ~max_len =
  let acc = ref Ucfg_lang.Lang.empty in
  for len = 0 to max_len do
    Seq.iter
      (fun w -> if matches r w then acc := Ucfg_lang.Lang.add w !acc)
      (Word.enumerate alphabet len)
  done;
  !acc

(* printing with precedence: alt(0) < cat(1) < star(2) *)
let pp fmt r =
  let rec go prec fmt = function
    | Empty -> Format.pp_print_char fmt '~'
    | Eps -> Format.pp_print_string fmt "()"
    | Chr c -> Format.pp_print_char fmt c
    | Alt (a, b) ->
      if prec > 0 then Format.fprintf fmt "(%a|%a)" (go 0) a (go 0) b
      else Format.fprintf fmt "%a|%a" (go 0) a (go 0) b
    | Cat (a, b) ->
      if prec > 1 then Format.fprintf fmt "(%a%a)" (go 1) a (go 1) b
      else Format.fprintf fmt "%a%a" (go 1) a (go 1) b
    | Star a -> Format.fprintf fmt "%a*" (go 2) a
  in
  go 0 fmt r

let to_string r = Format.asprintf "%a" pp r

let parse s =
  (* recursive descent; grammar:
     alt := cat ('|' cat)* ; cat := star* (ε when empty) ;
     star := atom '*'* ; atom := '(' alt ')' | '~' | letter *)
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = invalid_arg (Printf.sprintf "Regex.parse: %s at %d" msg !pos) in
  let is_letter c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let rec p_alt () =
    let a = p_cat () in
    match peek () with
    | Some '|' ->
      advance ();
      alt a (p_alt ())
    | _ -> a
  and p_cat () =
    let rec loop acc =
      match peek () with
      | Some c when is_letter c || c = '(' || c = '~' -> loop (cat acc (p_star ()))
      | _ -> acc
    in
    loop Eps
  and p_star () =
    let a = p_atom () in
    let rec stars a =
      match peek () with
      | Some '*' ->
        advance ();
        stars (star a)
      | _ -> a
    in
    stars a
  and p_atom () =
    match peek () with
    | Some '(' ->
      advance ();
      let a = p_alt () in
      (match peek () with
       | Some ')' ->
         advance ();
         a
       | _ -> fail "expected ')'")
    | Some '~' ->
      advance ();
      Empty
    | Some c when is_letter c ->
      advance ();
      Chr c
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  in
  let r = p_alt () in
  if !pos <> len then fail "trailing input";
  r

let equal = ( = )
