(** The Glushkov (position) automaton of a regular expression.

    An ε-free NFA with one state per character occurrence plus one initial
    state; accepts exactly the regex's language.  Unlike Thompson's
    construction it introduces no ε-transitions, so its output feeds
    directly into products, path counting and the UFA check. *)

(** [nfa alpha r] is the position automaton of [r] over [alpha]. *)
val nfa : Ucfg_word.Alphabet.t -> Regex.t -> Ucfg_automata.Nfa.t
