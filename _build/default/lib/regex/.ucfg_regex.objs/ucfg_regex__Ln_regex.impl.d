lib/regex/ln_regex.ml: Alphabet List Regex Ucfg_util Ucfg_word
