lib/regex/ln_regex.mli: Regex
