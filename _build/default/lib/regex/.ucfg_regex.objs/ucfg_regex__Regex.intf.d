lib/regex/regex.mli: Alphabet Format Ucfg_lang Ucfg_word
