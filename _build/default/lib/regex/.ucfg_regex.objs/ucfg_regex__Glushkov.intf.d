lib/regex/glushkov.mli: Regex Ucfg_automata Ucfg_word
