lib/regex/glushkov.ml: Hashtbl List Nfa Regex Ucfg_automata
