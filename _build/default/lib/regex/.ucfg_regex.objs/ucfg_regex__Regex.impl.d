lib/regex/regex.ml: Alphabet Char Format List Printf Seq String Ucfg_lang Ucfg_word Word
