(** Regular expressions.

    The paper writes languages as regular expressions throughout
    ([L_n = ∪_k (a+b)^k a (a+b)^(n-1) a (a+b)^(n-1-k)]); this module makes
    those expressions first-class so the test-suite can cross-check every
    representation (regex → NFA → DFA → grammar) against every other. *)

open Ucfg_word

type t =
  | Empty  (** ∅ *)
  | Eps  (** ε *)
  | Chr of char
  | Alt of t * t
  | Cat of t * t
  | Star of t

(** Smart constructors applying the cheap simplifications
    (∅ absorbs/cancels, ε cancels in products, [Star Star] collapses). *)

val empty : t
val eps : t
val chr : char -> t
val alt : t -> t -> t
val cat : t -> t -> t
val star : t -> t

(** [alt_list rs] folds {!alt}; [Empty] for the empty list. *)
val alt_list : t list -> t

(** [cat_list rs] folds {!cat}; [Eps] for the empty list. *)
val cat_list : t list -> t

(** [any alpha] is the union of all characters of [alpha] ([Σ]). *)
val any : Alphabet.t -> t

(** [power r k] is [r·r·...·r] ([k] times); [Eps] when [k = 0]. *)
val power : t -> int -> t

(** [of_word w] is the concatenation of [w]'s characters. *)
val of_word : string -> t

(** [nullable r] — does [r] accept ε? *)
val nullable : t -> bool

(** [matches r w] decides membership by Brzozowski derivatives. *)
val matches : t -> string -> bool

(** [deriv r c] is the Brzozowski derivative [c⁻¹ r]. *)
val deriv : t -> char -> t

(** [size r] is the number of AST nodes. *)
val size : t -> int

(** [language r ~max_len] materialises the words of length [<= max_len]. *)
val language : t -> alphabet:Alphabet.t -> max_len:int -> Ucfg_lang.Lang.t

(** [pp] prints with the usual precedence (alternation < concatenation <
    star); [parse] reads it back.  Characters: any letter; metacharacters
    [( ) | * ~] ([~] is ∅, the empty string between delimiters is ε). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [parse s] parses {!to_string}'s output format.
    @raise Invalid_argument on syntax errors. *)
val parse : string -> t

val equal : t -> t -> bool
