open Ucfg_word

let sigma = Regex.any Alphabet.binary

let slice n k =
  if n < 1 || k < 0 || k > n - 1 then invalid_arg "Ln_regex.slice";
  Regex.cat_list
    [
      Regex.power sigma k;
      Regex.chr 'a';
      Regex.power sigma (n - 1);
      Regex.chr 'a';
      Regex.power sigma (n - 1 - k);
    ]

let ln n =
  if n < 1 then invalid_arg "Ln_regex.ln";
  Regex.alt_list (List.map (slice n) (Ucfg_util.Prelude.range 0 n))

let pattern n =
  if n < 1 then invalid_arg "Ln_regex.pattern";
  Regex.cat_list
    [
      Regex.star sigma;
      Regex.chr 'a';
      Regex.power sigma (n - 1);
      Regex.chr 'a';
      Regex.star sigma;
    ]

let ln_star n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Ln_regex.ln_star";
  let h = n / 2 in
  Regex.cat_list
    [
      Regex.power (Regex.chr 'a') h;
      Regex.power sigma n;
      Regex.power (Regex.chr 'a') h;
    ]
