(** Regular expressions for the paper's languages. *)

(** [ln n] is the defining expression of [L_n] (Example 3):
    [∪_{k<=n-1} Σ^k a Σ^(n-1) a Σ^(n-1-k)]; size [Θ(n²)]. *)
val ln : int -> Regex.t

(** [pattern n] is the unbounded guess-and-verify expression
    [Σ* a Σ^(n-1) a Σ*]; size [Θ(n)]. *)
val pattern : int -> Regex.t

(** [ln_star n] is [L*_n] of Example 6: [a^(n/2) Σ^n a^(n/2)]
    ([n] even). *)
val ln_star : int -> Regex.t

(** [slice n k] is [L_n^k] of Example 8: [Σ^k a Σ^(n-1) a Σ^(n-1-k)]. *)
val slice : int -> int -> Regex.t
