open Ucfg_automata

(* Positions are numbered left to right.  The automaton has state 0 as the
   initial state and state p for position p (1-based).  Transitions:
   0 --c(p)--> p for p in first(r), p --c(q)--> q for (p,q) in follow(r);
   finals: last(r) (plus 0 when r is nullable). *)

type info = {
  first : int list;
  last : int list;
  nullable : bool;
  follow : (int * int) list;
}

let nfa alpha r =
  let counter = ref 0 in
  let char_of = Hashtbl.create 64 in
  (* linearise: assign positions and compute first/last/nullable/follow *)
  let rec go = function
    | Regex.Empty -> { first = []; last = []; nullable = false; follow = [] }
    | Regex.Eps -> { first = []; last = []; nullable = true; follow = [] }
    | Regex.Chr c ->
      incr counter;
      let p = !counter in
      Hashtbl.add char_of p c;
      { first = [ p ]; last = [ p ]; nullable = false; follow = [] }
    | Regex.Alt (a, b) ->
      let ia = go a in
      let ib = go b in
      {
        first = ia.first @ ib.first;
        last = ia.last @ ib.last;
        nullable = ia.nullable || ib.nullable;
        follow = ia.follow @ ib.follow;
      }
    | Regex.Cat (a, b) ->
      let ia = go a in
      let ib = go b in
      let bridge =
        List.concat_map (fun p -> List.map (fun q -> (p, q)) ib.first) ia.last
      in
      {
        first = (if ia.nullable then ia.first @ ib.first else ia.first);
        last = (if ib.nullable then ib.last @ ia.last else ib.last);
        nullable = ia.nullable && ib.nullable;
        follow = ia.follow @ ib.follow @ bridge;
      }
    | Regex.Star a ->
      let ia = go a in
      let loop =
        List.concat_map (fun p -> List.map (fun q -> (p, q)) ia.first) ia.last
      in
      { first = ia.first; last = ia.last; nullable = true;
        follow = ia.follow @ loop }
  in
  let info = go r in
  let states = !counter + 1 in
  let transitions =
    List.map (fun p -> (0, Hashtbl.find char_of p, p)) info.first
    @ List.map (fun (p, q) -> (p, Hashtbl.find char_of q, q)) info.follow
  in
  let finals = if info.nullable then 0 :: info.last else info.last in
  Nfa.make ~alphabet:alpha ~states ~initials:[ 0 ] ~finals
    ~transitions:(List.sort_uniq compare transitions)
    ()
