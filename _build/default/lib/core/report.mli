(** Plain-text tables shared by the benchmark harness, the CLI and the
    examples. *)

(** [table ~title ~headers rows] renders an aligned text table. *)
val table : title:string -> headers:string list -> string list list -> string

(** [print_table ~title ~headers rows] — same, to stdout. *)
val print_table : title:string -> headers:string list -> string list list -> unit

(** [kv ~title pairs] renders a key/value block. *)
val kv : title:string -> (string * string) list -> string
