(** The headline result, end to end (Theorem 1).

    For a given [n], build the three representations of [L_n] —
    the [Θ(log n)] CFG, the polynomial NFA, the exponential uCFG — verify
    each against brute force where feasible, and put the certified
    [2^Ω(n)] uCFG lower bound next to them. *)

module Bignum = Ucfg_util.Bignum

type report = {
  n : int;
  cfg_size : int;  (** Appendix A grammar *)
  example3_size : int option;
      (** Example 3 grammar, when [n = 2^t + 1] for some [t] *)
  nfa_states : int;  (** the exact (leveled) NFA *)
  nfa_size : int;  (** states + transitions *)
  pattern_nfa_states : int;  (** the unbounded Θ(n) pattern automaton *)
  nfa_state_lower_bound : int;  (** certified Ω(n²) fooling bound *)
  ucfg_upper : Bignum.t option;
      (** size of the Example 4 uCFG (built only for [n <= build_cap]) *)
  ucfg_lower : Bignum.t;  (** Theorem 12's certified lower bound *)
  language_cardinal : Bignum.t;  (** |L_n| = 4^n - 3^n *)
  verified : bool;
      (** all built representations checked against brute-force [L_n]
          (performed when [n <= verify_cap]) *)
}

(** [run ?verify_cap ?build_cap n] — defaults: verify for [n <= 6], build
    the exponential uCFG for [n <= 12]. *)
val run : ?verify_cap:int -> ?build_cap:int -> int -> report

(** [rows reports] formats reports for {!Report.table}. *)
val rows : report list -> string list list

val headers : string list
