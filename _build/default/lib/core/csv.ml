open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
module B = Grammar.Builder

type scheme = { columns : int; width : int }

let check s =
  if s.columns < 1 || s.width < 1 then invalid_arg "Csv: bad scheme"

let word_length s =
  check s;
  2 * s.columns * s.width

let column_slice s w ~row ~col =
  Word.slice w ((row * s.columns * s.width) + (col * s.width)) s.width

let mem s w =
  check s;
  String.length w = word_length s
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && List.exists
       (fun j ->
          String.equal (column_slice s w ~row:0 ~col:j)
            (column_slice s w ~row:1 ~col:j))
       (Ucfg_util.Prelude.range 0 s.columns)

let language s =
  check s;
  Lang.filter (mem s) (Lang.full Alphabet.binary (word_length s))

type comparison = Equal | Leq | Distinct

let satisfies op u v =
  match op with
  | Equal -> String.equal u v
  | Leq -> String.compare u v <= 0
  | Distinct -> not (String.equal u v)

let mem_op op s w =
  check s;
  String.length w = word_length s
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && List.exists
       (fun j ->
          satisfies op
            (column_slice s w ~row:0 ~col:j)
            (column_slice s w ~row:1 ~col:j))
       (Ucfg_util.Prelude.range 0 s.columns)

let language_op op s =
  check s;
  Lang.filter (mem_op op s) (Lang.full Alphabet.binary (word_length s))

let grammar_op_filtered op s ~column_ok =
  check s;
  let c = s.width and cols = s.columns in
  let b = B.create Alphabet.binary in
  let start = B.fresh b "S" in
  (* Σ^len generators, allocated on demand and shared *)
  let sigma_cache = Hashtbl.create 16 in
  let rec sigma len =
    if len = 0 then []
    else
      match Hashtbl.find_opt sigma_cache len with
      | Some id -> [ Grammar.N id ]
      | None ->
        let id = B.fresh b (Printf.sprintf "Sig%d" len) in
        Hashtbl.add sigma_cache len id;
        if len = 1 then begin
          B.add_rule b id [ Grammar.T 'a' ];
          B.add_rule b id [ Grammar.T 'b' ]
        end
        else begin
          let rest = sigma (len - 1) in
          B.add_rule b id ([ Grammar.T 'a' ] @ rest);
          B.add_rule b id ([ Grammar.T 'b' ] @ rest)
        end;
        [ Grammar.N id ]
  in
  (* the comparison gadget: E -> u Σ^{(cols-1)·c} v for every satisfying
     value pair (u, v) *)
  let gadget = B.fresh b "Cmp" in
  Seq.iter
    (fun u ->
       Seq.iter
         (fun v ->
            if satisfies op u v then begin
              let lits w = List.init c (fun i -> Grammar.T w.[i]) in
              B.add_rule b gadget
                (lits u @ sigma ((cols - 1) * c) @ lits v)
            end)
         (Word.enumerate Alphabet.binary c))
    (Word.enumerate Alphabet.binary c);
  (* column choice: S -> Σ^{jc} E Σ^{(cols-1-j)c} *)
  List.iter
    (fun j ->
       if column_ok j then
         B.add_rule b start
           (sigma (j * c) @ [ Grammar.N gadget ] @ sigma ((cols - 1 - j) * c)))
    (Ucfg_util.Prelude.range 0 cols);
  B.finish b ~start

let grammar_op op s = grammar_op_filtered op s ~column_ok:(fun _ -> true)

let grammar s = grammar_op Equal s

let witness_columns s w =
  check s;
  if String.length w <> word_length s then
    invalid_arg "Csv.witness_columns: bad length";
  List.filter
    (fun j ->
       String.equal (column_slice s w ~row:0 ~col:j)
         (column_slice s w ~row:1 ~col:j))
    (Ucfg_util.Prelude.range 0 s.columns)

let witness_columns_by_parsing s w =
  check s;
  (* one single-column grammar per column: the word parses in it iff that
     column is a witness.  Equivalently, each parse tree of the full
     grammar uses exactly one column rule. *)
  List.filter
    (fun j ->
       let g = grammar_op_filtered Equal s ~column_ok:(( = ) j) in
       Ucfg_cfg.Count_word.recognize g w)
    (Ucfg_util.Prelude.range 0 s.columns)

let embedding_scheme n = { columns = n; width = 2 }

let embed n w =
  if String.length w <> 2 * n then invalid_arg "Csv.embed: bad length";
  let row1 =
    Ucfg_util.Prelude.string_init_concat n (fun i ->
        if w.[i] = 'a' then "aa" else "ab")
  in
  let row2 =
    Ucfg_util.Prelude.string_init_concat n (fun i ->
        if w.[i + n] = 'a' then "aa" else "bb")
  in
  row1 ^ row2

let ucfg_size_lower_bound s =
  check s;
  Ucfg_disc.Bound.ucfg_size_lower_bound s.columns
