(** Exhaustive minimal representations for tiny languages — ground truth.

    The paper's bounds are asymptotic; for very small instances we can
    compute the actual minima: the minimal DFA in polynomial time
    (Myhill–Nerode), and the minimal CNF grammar — plain or unambiguous —
    by budgeted exhaustive search over rule sets. *)

open Ucfg_word
open Ucfg_lang

(** [minimal_dfa_states alpha l] — number of states of the minimal
    complete DFA of the finite language [l]. *)
val minimal_dfa_states : Alphabet.t -> Lang.t -> int

type grammar_search = {
  minimal_size : int option;
      (** smallest CNF grammar size found, [None] if none within caps *)
  witness : Ucfg_cfg.Grammar.t option;
  nodes_explored : int;
  budget_exhausted : bool;
}

(** [minimal_cnf_size ?unambiguous ?max_nonterminals ?max_size ?budget
    alpha l] searches for the smallest CNF grammar (rules [A -> a] of
    size 1 and [A -> BC] of size 2) accepting exactly [l]; with
    [unambiguous = true] (default false), restricts to uCFGs.

    Defaults: 3 nonterminals, size cap 12, budget 3 million nodes.
    [l] must not contain [ε]. *)
val minimal_cnf_size :
  ?unambiguous:bool ->
  ?max_nonterminals:int ->
  ?max_size:int ->
  ?budget:int ->
  Alphabet.t ->
  Lang.t ->
  grammar_search
