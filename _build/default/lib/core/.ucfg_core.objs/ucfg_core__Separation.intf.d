lib/core/separation.mli: Ucfg_util
