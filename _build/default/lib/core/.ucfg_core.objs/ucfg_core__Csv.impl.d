lib/core/csv.ml: Alphabet Grammar Hashtbl Lang List Printf Seq String Ucfg_cfg Ucfg_disc Ucfg_lang Ucfg_util Ucfg_word Word
