lib/core/report.ml: Array Buffer List String
