lib/core/search.ml: Alphabet Ambiguity Analysis Array Determinize Dfa Grammar Lang List Nfa Printf Ucfg_automata Ucfg_cfg Ucfg_lang Ucfg_util Ucfg_word
