lib/core/separation.ml: Ambiguity Analysis Constructions Grammar Lang List Ln Ln_nfa Nfa Option Ucfg_automata Ucfg_cfg Ucfg_disc Ucfg_lang Ucfg_util
