lib/core/report.mli:
