lib/core/csv.mli: Lang Ucfg_cfg Ucfg_lang Ucfg_util
