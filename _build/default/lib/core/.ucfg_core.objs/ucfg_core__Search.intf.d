lib/core/search.mli: Alphabet Lang Ucfg_cfg Ucfg_lang Ucfg_word
