(* UTF-8 aware-enough width: we only emit ASCII in tables, so byte length
   is fine. *)

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let table ~title ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let norm r =
    r @ List.init (ncols - List.length r) (fun _ -> "")
  in
  let all = List.map norm all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let render r =
    Buffer.add_string buf
      (String.concat "  " (List.mapi (fun i cell -> pad widths.(i) cell) r));
    Buffer.add_char buf '\n'
  in
  (match all with
   | header :: body ->
     render header;
     Buffer.add_string buf
       (String.concat "  "
          (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
     Buffer.add_char buf '\n';
     List.iter render body
   | [] -> ());
  Buffer.contents buf

let print_table ~title ~headers rows =
  print_string (table ~title ~headers rows);
  print_newline ()

let kv ~title pairs =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (pad width k ^ " : " ^ v ^ "\n"))
    pairs;
  Buffer.contents buf
