(** The introduction's information-extraction application.

    Data in a CSV file with fixed-width columns; extract all pairs of
    lines with identical entries in at least one column.  Encoded as a
    formal language: a word is the concatenation of two rows, each of
    [columns] fields of [width] binary characters; the language [P_S]
    contains the pairs agreeing on some column.

    A small ambiguous CFG for [P_S] exists (union over columns of an
    equality gadget), but the paper observes that any {e unambiguous}
    grammar must be exponential in the number of columns: [L_n] reduces
    to [P_S] by the encoding {!embed}, which turns "two a's at distance
    n" into "equal entries in some column". *)

open Ucfg_lang

type scheme = { columns : int; width : int }

(** [word_length s] = [2 · columns · width]. *)
val word_length : scheme -> int

(** [mem s w] — do the two encoded rows agree on some column? *)
val mem : scheme -> string -> bool

(** [language s] materialises [P_S] (use for tiny schemes). *)
val language : scheme -> Lang.t

(** [grammar s] — an ambiguous CFG for [P_S] of size
    [O(columns² · width + 2^width · width)]. *)
val grammar : scheme -> Ucfg_cfg.Grammar.t

(** The paper notes the lower bound survives replacing equality by "other
    natural comparisons of the columns, say lexicographic order": the
    comparison is a parameter. *)
type comparison =
  | Equal  (** identical entries *)
  | Leq  (** row-1 entry lexicographically ≤ row-2 entry (['a'] < ['b']) *)
  | Distinct  (** differing entries *)

(** [mem_op op s w] — do the rows satisfy [op] on some column of [S]? *)
val mem_op : comparison -> scheme -> string -> bool

(** [language_op op s] materialises the language (tiny schemes). *)
val language_op : comparison -> scheme -> Lang.t

(** [grammar_op op s] — the comparison-parameterised grammar (the equality
    gadget generalises to any binary predicate on column values by
    enumerating the satisfying value pairs — [O(4^width)] rules).
    [grammar s = grammar_op Equal s]. *)
val grammar_op : comparison -> scheme -> Ucfg_cfg.Grammar.t

(** [embed n w] encodes a word [w ∈ Σ^2n] into the scheme
    [{columns = n; width = 2}]: column [i] of row 1 is [aa]/[ab] for
    [w_i = a/b], of row 2 is [aa]/[bb] — so columns agree iff both
    original positions carry ['a'].  Hence
    [w ∈ L_n ⟺ embed n w ∈ P_S]. *)
val embed : int -> string -> string

(** [embedding_scheme n] = [{ columns = n; width = 2 }]. *)
val embedding_scheme : int -> scheme

(** [witness_columns s w] — the columns on which the two rows agree
    (directly computed). *)
val witness_columns : scheme -> string -> int list

(** [witness_columns_by_parsing s w] — the same set, but {e extracted from
    the parse trees} of the ambiguous grammar: each parse tree of [w]
    places the equality gadget at one agreeing column, and the ambiguity
    degree of [w] equals the number of witnesses — the
    information-extraction reading of ambiguity. *)
val witness_columns_by_parsing : scheme -> string -> int list

(** [ucfg_size_lower_bound s] — the lower bound on unambiguous grammars
    for [P_S] obtained through the [L_n] reduction (Theorem 12 at
    [n = columns], constants per the paper's Section 1 discussion). *)
val ucfg_size_lower_bound : scheme -> Ucfg_util.Bignum.t
