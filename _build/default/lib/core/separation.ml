open Ucfg_lang
open Ucfg_cfg
open Ucfg_automata
module Bignum = Ucfg_util.Bignum

type report = {
  n : int;
  cfg_size : int;
  example3_size : int option;
  nfa_states : int;
  nfa_size : int;
  pattern_nfa_states : int;
  nfa_state_lower_bound : int;
  ucfg_upper : Bignum.t option;
  ucfg_lower : Bignum.t;
  language_cardinal : Bignum.t;
  verified : bool;
}

let exact_log2 n =
  (* Some t with n = 2^t + 1 *)
  let rec go t =
    let v = (1 lsl t) + 1 in
    if v = n then Some t else if v > n then None else go (t + 1)
  in
  go 0

let run ?(verify_cap = 6) ?(build_cap = 12) n =
  if n < 1 then invalid_arg "Separation.run";
  let cfg = Constructions.log_cfg n in
  let nfa = Ln_nfa.build n in
  let ucfg = if n <= build_cap then Some (Constructions.example4 n) else None in
  let verified =
    if n > verify_cap then false
    else begin
      let reference = Ln.language n in
      let cfg_ok = Lang.equal reference (Analysis.language_exn cfg) in
      let nfa_ok = Lang.equal reference (Nfa.language nfa ~max_len:(2 * n)) in
      let ucfg_ok =
        match ucfg with
        | None -> true
        | Some g ->
          Lang.equal reference (Analysis.language_exn g)
          && Ambiguity.is_unambiguous g
      in
      cfg_ok && nfa_ok && ucfg_ok
    end
  in
  {
    n;
    cfg_size = Grammar.size cfg;
    example3_size =
      Option.map (fun t -> Grammar.size (Constructions.example3 t)) (exact_log2 n);
    nfa_states = Nfa.state_count nfa;
    nfa_size = Nfa.size nfa;
    pattern_nfa_states = Nfa.state_count (Ln_nfa.pattern n);
    nfa_state_lower_bound = Ln_nfa.state_lower_bound n;
    ucfg_upper = Option.map (fun g -> Bignum.of_int (Grammar.size g)) ucfg;
    ucfg_lower = Ucfg_disc.Bound.ucfg_size_lower_bound n;
    language_cardinal = Ln.cardinal n;
    verified;
  }

let headers =
  [ "n"; "|L_n|"; "CFG"; "Ex3"; "NFA st"; "NFA lb"; "uCFG<="; "uCFG>=";
    "verified" ]

let rows reports =
  List.map
    (fun r ->
       [
         string_of_int r.n;
         Bignum.to_string r.language_cardinal;
         string_of_int r.cfg_size;
         (match r.example3_size with Some s -> string_of_int s | None -> "-");
         string_of_int r.nfa_states;
         string_of_int r.nfa_state_lower_bound;
         (match r.ucfg_upper with Some b -> Bignum.to_string b | None -> "-");
         Bignum.to_string r.ucfg_lower;
         (if r.verified then "yes" else "-");
       ])
    reports
