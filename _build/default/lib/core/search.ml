open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_automata
module G = Grammar

let minimal_dfa_states alpha l =
  let nfa = Nfa.of_word_list alpha (Lang.elements l) in
  Dfa.state_count (Determinize.minimal_dfa nfa)

type grammar_search = {
  minimal_size : int option;
  witness : G.t option;
  nodes_explored : int;
  budget_exhausted : bool;
}

exception Out_of_budget

let minimal_cnf_size ?(unambiguous = false) ?(max_nonterminals = 3)
    ?(max_size = 12) ?(budget = 3_000_000) alpha l =
  if Lang.mem "" l then invalid_arg "Search.minimal_cnf_size: ε not supported";
  let max_word_len =
    List.fold_left max 0 (Lang.lengths l)
  in
  let nodes = ref 0 in
  let tick () =
    incr nodes;
    if !nodes > budget then raise Out_of_budget
  in
  (* the candidate rule universe for k nonterminals, with costs *)
  let rules_for k =
    let terminal =
      List.concat_map
        (fun a ->
           List.map (fun c -> ({ G.lhs = a; rhs = [ G.T c ] }, 1))
             (Alphabet.chars alpha))
        (Ucfg_util.Prelude.range 0 k)
    in
    let binary =
      List.concat_map
        (fun a ->
           List.concat_map
             (fun b ->
                List.map
                  (fun c -> ({ G.lhs = a; rhs = [ G.N b; G.N c ] }, 2))
                  (Ucfg_util.Prelude.range 0 k))
             (Ucfg_util.Prelude.range 0 k))
        (Ucfg_util.Prelude.range 0 k)
    in
    Array.of_list (terminal @ binary)
  in
  let names k = Array.init k (fun i -> Printf.sprintf "N%d" i) in
  let accepts_exactly rules k =
    tick ();
    let g = G.make ~alphabet:alpha ~names:(names k) ~rules ~start:0 in
    match Analysis.language ~max_len:max_word_len ~max_card:(4 * Lang.cardinal l + 16) g with
    | Error _ -> false
    | Ok lg ->
      Lang.equal lg l
      && (not unambiguous
          || (Analysis.has_finitely_many_trees g && Ambiguity.is_unambiguous g))
  in
  let witness = ref None in
  (* find some rule set of total cost exactly s accepting l *)
  let try_size k s =
    let universe = rules_for k in
    let len = Array.length universe in
    let rec dfs idx remaining chosen =
      tick ();
      if remaining = 0 then begin
        if accepts_exactly (List.rev chosen) k then begin
          witness :=
            Some (G.make ~alphabet:alpha ~names:(names k) ~rules:(List.rev chosen) ~start:0);
          true
        end
        else false
      end
      else if idx >= len then false
      else begin
        let rule, cost = universe.(idx) in
        (cost <= remaining && dfs (idx + 1) (remaining - cost) (rule :: chosen))
        || dfs (idx + 1) remaining chosen
      end
    in
    dfs 0 s []
  in
  try
    let rec over_sizes s =
      if s > max_size then
        { minimal_size = None; witness = None; nodes_explored = !nodes;
          budget_exhausted = false }
      else if
        List.exists
          (fun k -> try_size k s)
          (Ucfg_util.Prelude.range_incl 1 max_nonterminals)
      then
        { minimal_size = Some s; witness = !witness; nodes_explored = !nodes;
          budget_exhausted = false }
      else over_sizes (s + 1)
    in
    over_sizes 1
  with Out_of_budget ->
    { minimal_size = None; witness = None; nodes_explored = !nodes;
      budget_exhausted = true }
