(** Small helpers shared by every library in the repository. *)

(** [range lo hi] is [[lo; lo+1; ...; hi-1]] (empty when [lo >= hi]). *)
val range : int -> int -> int list

(** [range_incl lo hi] is [[lo; ...; hi]] (empty when [lo > hi]). *)
val range_incl : int -> int -> int list

(** [sum_int l] adds up a list of ints. *)
val sum_int : int list -> int

(** [cartesian xs ys] is all pairs, [xs] major. *)
val cartesian : 'a list -> 'b list -> ('a * 'b) list

(** [all_splits k] is all [(i, k - i)] with [0 <= i <= k]. *)
val all_splits : int -> (int * int) list

(** [log2_ceil n] is the least [e] with [2^e >= n]; requires [n >= 1]. *)
val log2_ceil : int -> int

(** [log2_floor n] is the greatest [e] with [2^e <= n]; requires [n >= 1]. *)
val log2_floor : int -> int

(** [binary_digits n] is the positions of set bits of [n], lowest first. *)
val binary_digits : int -> int list

(** [group_by_key kvs] groups a list of key/value pairs by key, preserving
    value order within each group; keys appear in first-seen order. *)
val group_by_key : ('k * 'v) list -> ('k * 'v list) list

(** [take n l] is the first [n] elements of [l] (or all of [l] if shorter). *)
val take : int -> 'a list -> 'a list

(** [unique_sorted cmp l] sorts and removes duplicates. *)
val unique_sorted : ('a -> 'a -> int) -> 'a list -> 'a list

(** [string_init_concat n f] concatenates [f 0 ^ f 1 ^ ... ^ f (n-1)]. *)
val string_init_concat : int -> (int -> string) -> string
