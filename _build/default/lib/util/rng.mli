(** Deterministic pseudo-random numbers (splitmix64).

    Workload generators and property tests want reproducible randomness that
    does not depend on the global [Random] state; a tiny splitmix64 stream
    keeps every experiment replayable from its printed seed. *)

type t

(** [create seed] is a fresh generator. *)
val create : int -> t

(** [int t bound] is uniform in [[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [bits62 t] is a uniform 62-bit non-negative integer. *)
val bits62 : t -> int

(** [bool t] is a uniform boolean. *)
val bool : t -> bool

(** [float t] is uniform in [[0, 1)]. *)
val float : t -> float

(** [pick t arr] is a uniform element of [arr].  Requires [arr] non-empty. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator. *)
val split : t -> t
