lib/util/prelude.ml: Buffer Hashtbl List
