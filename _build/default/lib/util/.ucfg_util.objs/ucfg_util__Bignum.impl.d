lib/util/bignum.ml: Array Buffer Float Format List Printf Rng Stdlib String
