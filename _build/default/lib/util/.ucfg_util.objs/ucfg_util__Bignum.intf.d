lib/util/bignum.mli: Format Rng
