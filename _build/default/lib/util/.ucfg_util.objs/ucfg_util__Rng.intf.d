lib/util/rng.mli:
