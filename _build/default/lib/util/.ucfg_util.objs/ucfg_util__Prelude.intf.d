lib/util/prelude.mli:
