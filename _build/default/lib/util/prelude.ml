let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let range_incl lo hi = range lo (hi + 1)

let sum_int l = List.fold_left ( + ) 0 l

let cartesian xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let all_splits k = List.map (fun i -> (i, k - i)) (range_incl 0 k)

let log2_floor n =
  if n < 1 then invalid_arg "Prelude.log2_floor";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let log2_ceil n =
  if n < 1 then invalid_arg "Prelude.log2_ceil";
  let f = log2_floor n in
  if 1 lsl f = n then f else f + 1

let binary_digits n =
  let rec go n i acc =
    if n = 0 then List.rev acc
    else go (n lsr 1) (i + 1) (if n land 1 = 1 then i :: acc else acc)
  in
  go n 0 []

let group_by_key kvs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
       match Hashtbl.find_opt tbl k with
       | None ->
         Hashtbl.add tbl k (ref [ v ]);
         order := k :: !order
       | Some r -> r := v :: !r)
    kvs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let take n l =
  let rec go n l acc =
    match (n, l) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> go (n - 1) rest (x :: acc)
  in
  go n l []

let unique_sorted cmp l = List.sort_uniq cmp l

let string_init_concat n f =
  let buf = Buffer.create (n * 2) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (f i)
  done;
  Buffer.contents buf
