(** Signed arbitrary-precision integers.

    Implemented from scratch (the sealed container has no [zarith]) on top of
    little-endian magnitude arrays in base [10^9].  The library only needs
    exact combinatorial counting — addition, subtraction, multiplication,
    powers, division by machine integers and by powers of two — so the
    implementation favours clarity over asymptotic sophistication
    (schoolbook multiplication). *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [of_int n] is the big integer with value [n]. *)
val of_int : int -> t

(** [to_int t] is [Some n] when [t] fits a native [int]. *)
val to_int : t -> int option

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [mul_int t k] multiplies by a machine integer ([abs k < 10^9]). *)
val mul_int : t -> int -> t

(** [pow base e] is [base^e].  @raise Invalid_argument on negative [e]. *)
val pow : t -> int -> t

(** [two_pow e] is [2^e] for [e >= 0]. *)
val two_pow : int -> t

(** [divmod_int t k] is [(q, r)] with [t = q*k + r], [0 <= r < k].
    Requires [0 < k <= 10^9]. *)
val divmod_int : t -> int -> t * int

(** [divmod a d] is [(q, r)] with [a = q*d + r], [0 <= r < d], for
    [a >= 0] and [d > 0] (binary long division).
    @raise Invalid_argument otherwise. *)
val divmod : t -> t -> t * t

(** [bit_length t] is the number of binary digits of [|t|] ([0] for 0). *)
val bit_length : t -> int

(** [random rng bound] is uniform in [[0, bound)] for [bound > 0]
    (rejection sampling on {!bit_length} bits — exactly uniform). *)
val random : Rng.t -> t -> t

(** [div_pow2 t e] is [t / 2^e] rounded towards zero, for [t >= 0]. *)
val div_pow2 : t -> int -> t

(** [cdiv_pow2 t e] is [ceil (t / 2^e)] for [t >= 0]. *)
val cdiv_pow2 : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** [sum ts] adds up a list of big integers. *)
val sum : t list -> t

(** [log2 t] approximates [log2 t] as a float, for [t > 0]. *)
val log2 : t -> float

val to_float : t -> float
val to_string : t -> string

(** [of_string s] parses an optionally signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
