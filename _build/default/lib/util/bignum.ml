(* Signed big integers: sign plus little-endian base-10^9 magnitude without
   leading zero limbs.  The zero value is canonically [{ sign = 0; mag = [||] }]. *)

let base = 1_000_000_000
let base_digits = 9

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let len = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (len - 1) in
  if hi < 0 then zero
  else if hi = len - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation is safe limb-wise because we divide before negating *)
    let rec limbs acc n =
      if n = 0 then List.rev acc
      else limbs (abs (n mod base) :: acc) (n / base)
    in
    { sign; mag = Array.of_list (limbs [] n) }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

(* Magnitude comparison: |a| vs |b|. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = !carry
            + (if i < la then a.(i) else 0)
            + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s mod base;
    carry := s / base
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - !borrow - (if i < lb then b.(i) else 0) in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)
let succ x = add x one
let pred x = sub x one

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else begin
    let a = x.mag and b = y.mag in
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        (* a.(i)*b.(j) < 10^18 and fits comfortably in a 63-bit int *)
        let cur = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    normalize (x.sign * y.sign) r
  end

let mul_int t k =
  if k = 0 || t.sign = 0 then zero
  else begin
    let ka = Stdlib.abs k in
    if ka >= base then mul t (of_int k)
    else begin
      let la = Array.length t.mag in
      let r = Array.make (la + 2) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let cur = (t.mag.(i) * ka) + !carry in
        r.(i) <- cur mod base;
        carry := cur / base
      done;
      let k' = ref la in
      while !carry > 0 do
        r.(!k') <- !carry mod base;
        carry := !carry / base;
        incr k'
      done;
      normalize (t.sign * if k < 0 then -1 else 1) r
    end
  end

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e asr 1)
    else go acc (mul b b) (e asr 1)
  in
  go one b e

let two_pow e = pow two e

let divmod_int t k =
  if k <= 0 || k > base then invalid_arg "Bignum.divmod_int: bad divisor";
  if t.sign = 0 then (zero, 0)
  else begin
    let la = Array.length t.mag in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r * base) + t.mag.(i) in
      q.(i) <- cur / k;
      r := cur mod k
    done;
    (normalize t.sign q, !r)
  end

let div_pow2 t e =
  if t.sign < 0 then invalid_arg "Bignum.div_pow2: negative argument";
  let rec go t e =
    if e = 0 || is_zero t then t
    else begin
      let step = Stdlib.min e 29 in
      let q, _ = divmod_int t (1 lsl step) in
      go q (e - step)
    end
  in
  go t e

let equal_aux a b = a.sign = b.sign && cmp_mag a.mag b.mag = 0

(* binary digits of |t|, most significant first *)
let bits_msb_first t =
  if t.sign = 0 then []
  else begin
    let rec chunks acc t =
      if t.sign = 0 then acc
      else begin
        let q, r = divmod_int t (1 lsl 29) in
        chunks (r :: acc) q
      end
    in
    (* chunks: most significant first, each 29 bits (leading chunk may be
       shorter) *)
    match chunks [] { t with sign = 1 } with
    | [] -> []
    | top :: rest ->
      let rec top_bits v acc =
        if v = 0 then acc else top_bits (v lsr 1) ((v land 1) :: acc)
      in
      let fixed_bits v =
        List.init 29 (fun i -> (v lsr (28 - i)) land 1)
      in
      top_bits top [] @ List.concat_map fixed_bits rest
  end

let bit_length t = List.length (bits_msb_first t)

let divmod a d =
  if a.sign < 0 then invalid_arg "Bignum.divmod: negative dividend";
  if d.sign <= 0 then invalid_arg "Bignum.divmod: non-positive divisor";
  (* binary long division over the dividend's bits; operands stay
     non-negative so magnitude comparison suffices *)
  let q = ref zero and r = ref zero in
  List.iter
    (fun bit ->
       r := add (add !r !r) (if bit = 1 then one else zero);
       q := add !q !q;
       if cmp_mag !r.mag d.mag >= 0 then begin
         r := sub !r d;
         q := add !q one
       end)
    (bits_msb_first a);
  (!q, !r)

let cdiv_pow2 t e =
  if t.sign < 0 then invalid_arg "Bignum.cdiv_pow2: negative argument";
  let q = div_pow2 t e in
  (* exact iff t = q * 2^e *)
  if equal_aux (mul q (two_pow e)) t then q else succ q

let compare x y =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else x.sign * cmp_mag x.mag y.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let sum ts = List.fold_left add zero ts

let to_int t =
  match t.sign with
  | 0 -> Some 0
  | _ ->
    (* accumulate while watching for overflow *)
    let la = Array.length t.mag in
    let rec go i acc =
      if i < 0 then Some (t.sign * acc)
      else if acc > (max_int - t.mag.(i)) / base then None
      else go (i - 1) ((acc * base) + t.mag.(i))
    in
    go (la - 1) 0

let to_float t =
  let la = Array.length t.mag in
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((acc *. float_of_int base) +. float_of_int t.mag.(i))
  in
  float_of_int t.sign *. go (la - 1) 0.

let log2 t =
  if t.sign <= 0 then invalid_arg "Bignum.log2: non-positive argument";
  let la = Array.length t.mag in
  (* use the top three limbs for the mantissa, count the rest as exponent *)
  let top = Stdlib.min la 3 in
  let lead = ref 0. in
  for i = la - 1 downto la - top do
    lead := (!lead *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  let dropped = la - top in
  (Float.log !lead /. Float.log 2.)
  +. (float_of_int (dropped * base_digits) *. (Float.log 10. /. Float.log 2.))

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let la = Array.length t.mag in
    let buf = Buffer.create (la * base_digits + 1) in
    if t.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf (string_of_int t.mag.(la - 1));
    for i = la - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" t.mag.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bignum.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bignum.of_string: no digits";
  String.iter
    (fun c -> if not (c >= '0' && c <= '9') && c <> '-' && c <> '+' then
        invalid_arg "Bignum.of_string: non-digit")
    s;
  let ndigits = len - start in
  let nlimbs = (ndigits + base_digits - 1) / base_digits in
  let mag = Array.make nlimbs 0 in
  let stop = ref len in
  for i = 0 to nlimbs - 1 do
    let lo = Stdlib.max start (!stop - base_digits) in
    mag.(i) <- int_of_string (String.sub s lo (!stop - lo));
    stop := lo
  done;
  normalize sign mag

let random rng bound =
  if sign bound <= 0 then invalid_arg "Bignum.random: non-positive bound";
  let k = bit_length bound in
  (* rejection sampling on k-bit candidates: exactly uniform *)
  let rec draw () =
    let rec build remaining acc =
      if remaining <= 0 then acc
      else begin
        let take = Stdlib.min remaining 29 in
        let chunk = Rng.int rng (1 lsl take) in
        build (remaining - take) (add (mul_int acc (1 lsl take)) (of_int chunk))
      end
    in
    let candidate = build k zero in
    if compare candidate bound < 0 then candidate else draw ()
  in
  draw ()

let pp fmt t = Format.pp_print_string fmt (to_string t)
