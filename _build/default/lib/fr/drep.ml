open Ucfg_word
open Ucfg_lang
module Bignum = Ucfg_util.Bignum

type node = Letter of char | Eps | Union of int list | Prod of int list

type t = { alphabet : Alphabet.t; nodes : node array; root : int }

let make ~alphabet ~nodes ~root =
  let n = Array.length nodes in
  if root < 0 || root >= n then invalid_arg "Drep.make: root out of range";
  Array.iteri
    (fun i nd ->
       match nd with
       | Letter c ->
         if not (Alphabet.mem alphabet c) then
           invalid_arg "Drep.make: letter outside the alphabet"
       | Eps -> ()
       | Union children | Prod children ->
         List.iter
           (fun j ->
              (* bottom-up order doubles as the acyclicity certificate *)
              if j < 0 || j >= i then
                invalid_arg "Drep.make: children must precede their gate")
           children)
    nodes;
  { alphabet; nodes; root }

let alphabet d = d.alphabet
let node_count d = Array.length d.nodes
let root d = d.root

let node d i =
  if i < 0 || i >= Array.length d.nodes then invalid_arg "Drep.node";
  d.nodes.(i)

let size d =
  Array.fold_left
    (fun acc nd ->
       match nd with
       | Letter _ | Eps -> acc
       | Union children | Prod children -> acc + List.length children)
    0 d.nodes

let denotations d =
  let n = Array.length d.nodes in
  let sem = Array.make n Lang.empty in
  for i = 0 to n - 1 do
    sem.(i) <-
      (match d.nodes.(i) with
       | Letter c -> Lang.singleton (String.make 1 c)
       | Eps -> Lang.singleton ""
       | Union children ->
         List.fold_left (fun acc j -> Lang.union acc sem.(j)) Lang.empty children
       | Prod children -> Lang.concat_list (List.map (fun j -> sem.(j)) children))
  done;
  sem

let denotation d = (denotations d).(d.root)

let denotation_of d i =
  if i < 0 || i >= Array.length d.nodes then invalid_arg "Drep.denotation_of";
  (denotations d).(i)

let count_tuples d =
  let n = Array.length d.nodes in
  let cnt = Array.make n Bignum.zero in
  for i = 0 to n - 1 do
    cnt.(i) <-
      (match d.nodes.(i) with
       | Letter _ | Eps -> Bignum.one
       | Union children ->
         Bignum.sum (List.map (fun j -> cnt.(j)) children)
       | Prod children ->
         List.fold_left (fun acc j -> Bignum.mul acc cnt.(j)) Bignum.one children)
  done;
  cnt.(d.root)

let is_deterministic d =
  Bignum.equal (count_tuples d) (Bignum.of_int (Lang.cardinal (denotation d)))

let of_word alphabet w =
  let len = String.length w in
  if len = 0 then make ~alphabet ~nodes:[| Eps |] ~root:0
  else begin
    let letters = Array.init len (fun i -> Letter w.[i]) in
    let prod = Prod (List.init len Fun.id) in
    make ~alphabet ~nodes:(Array.append letters [| prod |]) ~root:len
  end

let of_language alphabet l =
  (* share letter leaves; one product per word; a top union *)
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let letter_ids =
    List.map (fun c -> (c, push (Letter c))) (Alphabet.chars alphabet)
  in
  let eps_id = lazy (push Eps) in
  let word_ids =
    Lang.fold
      (fun w acc ->
         if String.length w = 0 then Lazy.force eps_id :: acc
         else
           push
             (Prod
                (List.init (String.length w) (fun i ->
                     List.assoc w.[i] letter_ids)))
           :: acc)
      l []
  in
  let root = push (Union (List.rev word_ids)) in
  make ~alphabet ~nodes:(Array.of_list (List.rev !nodes)) ~root

let pp fmt d =
  Format.fprintf fmt "@[<v>root: %d@," d.root;
  Array.iteri
    (fun i nd ->
       match nd with
       | Letter c -> Format.fprintf fmt "%d: '%c'@," i c
       | Eps -> Format.fprintf fmt "%d: ε@," i
       | Union children ->
         Format.fprintf fmt "%d: ∪(%s)@," i
           (String.concat "," (List.map string_of_int children))
       | Prod children ->
         Format.fprintf fmt "%d: ×(%s)@," i
           (String.concat "," (List.map string_of_int children)))
    d.nodes;
  Format.fprintf fmt "@]"
