open Ucfg_word
open Ucfg_lang

type relation = { width : int; tuples : (string * string) list }

let is_binary w s =
  String.length s = w && String.for_all (fun c -> c = 'a' || c = 'b') s

let make ~width pairs =
  if width < 1 then invalid_arg "Join.make: width must be >= 1";
  List.iter
    (fun (x, y) ->
       if not (is_binary width x && is_binary width y) then
         invalid_arg "Join.make: attributes must be binary of the given width")
    pairs;
  { width; tuples = List.sort_uniq compare pairs }

let cardinal r = List.length r.tuples

let join_tuples r s =
  if r.width <> s.width then invalid_arg "Join.join_tuples: width mismatch";
  List.fold_left
    (fun acc (a, b) ->
       List.fold_left
         (fun acc (b', c) ->
            if String.equal b b' then Lang.add (a ^ b ^ c) acc else acc)
         acc s.tuples)
    Lang.empty r.tuples

let materialized_size r s = 3 * r.width * Lang.cardinal (join_tuples r s)

let factorize r s =
  if r.width <> s.width then invalid_arg "Join.factorize: width mismatch";
  (* group both sides by the join value *)
  let by_b side = Ucfg_util.Prelude.group_by_key side in
  let left = by_b (List.map (fun (a, b) -> (b, a)) r.tuples) in
  let right = by_b s.tuples in
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let letter_a = push (Drep.Letter 'a') in
  let letter_b = push (Drep.Letter 'b') in
  let letter c = if c = 'a' then letter_a else letter_b in
  let word_cache = Hashtbl.create 64 in
  let word_node v =
    match Hashtbl.find_opt word_cache v with
    | Some id -> id
    | None ->
      let id =
        push (Drep.Prod (List.init (String.length v) (fun i -> letter v.[i])))
      in
      Hashtbl.add word_cache v id;
      id
  in
  let groups =
    List.filter_map
      (fun (b, as_) ->
         match List.assoc_opt b right with
         | None -> None
         | Some cs ->
           let a_union = push (Drep.Union (List.map word_node as_)) in
           let c_union = push (Drep.Union (List.map word_node cs)) in
           Some (push (Drep.Prod [ a_union; word_node b; c_union ])))
      left
  in
  let root = push (Drep.Union groups) in
  Drep.make ~alphabet:Alphabet.binary
    ~nodes:(Array.of_list (List.rev !nodes))
    ~root

let random_relation rng ~width ~size ~skew ~join_side ?hot () =
  if skew < 0. || skew > 1. then invalid_arg "Join.random_relation: bad skew";
  let random_word () =
    String.init width (fun _ -> if Ucfg_util.Rng.bool rng then 'a' else 'b')
  in
  let hot = match hot with Some h -> h | None -> random_word () in
  if not (is_binary width hot) then
    invalid_arg "Join.random_relation: bad hot key";
  let pairs =
    List.init size (fun _ ->
        let b = if Ucfg_util.Rng.float rng < skew then hot else random_word () in
        let other = random_word () in
        match join_side with
        | `First -> (b, other)
        | `Second -> (other, b))
  in
  make ~width pairs
