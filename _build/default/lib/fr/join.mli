(** Factorised join results (the Olteanu–Závodný motivation).

    A miniature of the database story behind the paper: the result of
    [R(A,B) ⋈ S(B,C)] materialises to [Σ_b |R_b|·|S_b|] tuples, but
    factorises as [∪_b (R_b × {b} × S_b)] — a d-representation of size
    [O(|R| + |S|)].  Tuples are encoded as words (unnamed perspective):
    each attribute is a fixed-width binary string. *)

open Ucfg_lang

type relation = {
  width : int;  (** characters per attribute *)
  tuples : (string * string) list;  (** binary pairs, each of [width] *)
}

(** [make ~width pairs] validates widths and deduplicates.
    @raise Invalid_argument on malformed values. *)
val make : width:int -> (string * string) list -> relation

val cardinal : relation -> int

(** [join_tuples r s] — the materialised join [{(a,b,c)}] as encoded words
    [a·b·c]. *)
val join_tuples : relation -> relation -> Lang.t

(** [materialized_size r s] — total characters of the materialised
    result. *)
val materialized_size : relation -> relation -> int

(** [factorize r s] — the factorised d-representation of the join,
    grouped by the join attribute. *)
val factorize : relation -> relation -> Drep.t

(** [random_relation rng ~width ~size ~skew ~join_side ?hot ()] — a
    workload generator.  [join_side] says which attribute is the join
    attribute ([`First] for an [S(B,C)], [`Second] for an [R(A,B)]);
    [skew] in [[0,1]] concentrates join values on the hot key
    ([0] = uniform keys, [1] = a single hot key — the quadratic worst
    case); pass the same [hot] to both relations to actually collide. *)
val random_relation :
  Ucfg_util.Rng.t ->
  width:int ->
  size:int ->
  skew:float ->
  join_side:[ `First | `Second ] ->
  ?hot:string ->
  unit ->
  relation
