lib/fr/iso.ml: Analysis Array Drep Grammar Lazy List Printf Trim Ucfg_cfg Ucfg_word
