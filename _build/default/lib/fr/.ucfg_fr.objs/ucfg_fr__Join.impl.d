lib/fr/join.ml: Alphabet Array Drep Hashtbl Lang List String Ucfg_lang Ucfg_util Ucfg_word
