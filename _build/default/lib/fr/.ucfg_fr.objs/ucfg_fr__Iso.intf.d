lib/fr/iso.mli: Drep Ucfg_cfg
