lib/fr/drep.ml: Alphabet Array Format Fun Lang Lazy List String Ucfg_lang Ucfg_util Ucfg_word
