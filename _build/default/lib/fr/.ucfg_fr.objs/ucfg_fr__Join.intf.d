lib/fr/join.mli: Drep Lang Ucfg_lang Ucfg_util
