(** d-representations: factorised representations as ∪/× circuits.

    The database motivation of the paper: Kimelfeld, Martens and Niewerth
    observed that CFGs of finite languages are isomorphic to
    d-representations in the unnamed perspective.  A d-representation is
    a DAG whose leaves are letters (or ε) and whose internal gates are
    unions and ordered products; it denotes a finite set of words (=
    tuples of an implicit relation).  The size measure — total number of
    gate inputs (edges) — matches the paper's CFG size up to a constant
    factor. *)

open Ucfg_word
open Ucfg_lang

type node =
  | Letter of char
  | Eps
  | Union of int list
  | Prod of int list

type t

(** [make ~alphabet ~nodes ~root] validates: children in range, no cycles
    (children must have smaller indices — nodes are given in bottom-up
    order), letters in the alphabet.
    @raise Invalid_argument otherwise. *)
val make : alphabet:Alphabet.t -> nodes:node array -> root:int -> t

val alphabet : t -> Alphabet.t
val node_count : t -> int
val root : t -> int
val node : t -> int -> node

(** [size d] — the number of edges (gate inputs); leaves cost nothing by
    themselves, mirroring the paper's [Σ|rhs|] grammar measure where a
    letter is charged at its occurrence in a rule. *)
val size : t -> int

(** [denotation d] — the set of words, computed bottom-up. *)
val denotation : t -> Lang.t

(** [denotation_of d i] — the language of node [i]. *)
val denotation_of : t -> int -> Lang.t

(** [count_tuples d] — the number of parse-ways, i.e. derivations: equals
    the number of words iff [d] is deterministic.  Computed without
    materialising. *)
val count_tuples : t -> Ucfg_util.Bignum.t

(** [is_deterministic d] — every union gate has pairwise disjoint child
    languages and every product has unambiguous factorisations (the d- in
    d-representation; corresponds to grammar unambiguity).  Decided
    exactly by comparing derivation counts with word counts. *)
val is_deterministic : t -> bool

(** [of_word w] / [of_language alpha l] — trivial representations. *)
val of_word : Alphabet.t -> string -> t

val of_language : Alphabet.t -> Lang.t -> t

val pp : Format.formatter -> t -> unit
