(** The upper-bound direction of the separation: CFG → uCFG.

    The paper notes (crediting KMN) that the double-exponential separation
    is {e optimal}: every CFG of a finite language converts to an
    equivalent uCFG with at most a double-exponential blow-up.  This
    module implements the canonical such conversion for the sizes we can
    materialise: language → minimal DFA → right-linear grammar.  The
    result is unambiguous (DFA runs are unique), and its size is the
    minimal-DFA size — for [L_n] that is [Θ(2^n)], sitting between the
    [2^Ω(n)] lower bound of Theorem 12 and the [2^O(n)] Example 4 upper
    bound. *)

(** [ucfg_of_grammar g] — an unambiguous grammar for [L(g)], built through
    the minimal DFA of the (materialised) language.  Exponential-time in
    general; meant for the experimental regime.
    @raise Invalid_argument when the language cannot be materialised
    (see {!Ucfg_cfg.Analysis.language}). *)
val ucfg_of_grammar : Ucfg_cfg.Grammar.t -> Ucfg_cfg.Grammar.t

(** [blowup g] — [(original size, ucfg size)]. *)
val blowup : Ucfg_cfg.Grammar.t -> int * int
