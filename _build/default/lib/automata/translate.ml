open Ucfg_cfg
module G = Grammar

let cfg_of_nfa nfa =
  if Nfa.epsilon_count nfa > 0 then
    invalid_arg "Translate.cfg_of_nfa: ε-transitions not supported";
  let nfa = Nfa.trim nfa in
  let n = Nfa.state_count nfa in
  (* nonterminal ids: 0 = fresh start, s+1 = state s *)
  let names =
    Array.init (n + 1) (fun i ->
        if i = 0 then "S" else Printf.sprintf "Q%d" (i - 1))
  in
  let rules = ref [] in
  List.iter
    (fun i -> rules := { G.lhs = 0; rhs = [ G.N (i + 1) ] } :: !rules)
    (Nfa.initials nfa);
  List.iter
    (fun (s, c, d) ->
       rules := { G.lhs = s + 1; rhs = [ G.T c; G.N (d + 1) ] } :: !rules)
    (Nfa.transitions nfa);
  List.iter
    (fun f -> rules := { G.lhs = f + 1; rhs = [] } :: !rules)
    (Nfa.finals nfa);
  G.make ~alphabet:(Nfa.alphabet nfa) ~names ~rules:(List.rev !rules) ~start:0

let cfg_of_dfa dfa = cfg_of_nfa (Dfa.to_nfa dfa)

let nfa_of_right_linear g =
  let n = G.nonterminal_count g in
  (* state ids: nonterminal a -> a; fresh sink final -> n *)
  let transitions = ref [] in
  let epsilons = ref [] in
  let finals = ref [ n ] in
  List.iter
    (fun { G.lhs; rhs } ->
       match rhs with
       | [ G.T c; G.N b ] -> transitions := (lhs, c, b) :: !transitions
       | [ G.T c ] -> transitions := (lhs, c, n) :: !transitions
       | [ G.N b ] -> epsilons := (lhs, b) :: !epsilons
       | [] -> finals := lhs :: !finals
       | _ -> invalid_arg "Translate.nfa_of_right_linear: not right-linear")
    (G.rules g);
  Nfa.trim
    (Nfa.make ~alphabet:(G.alphabet g) ~states:(n + 1)
       ~initials:[ G.start g ] ~finals:!finals ~transitions:!transitions
       ~epsilons:!epsilons ())
