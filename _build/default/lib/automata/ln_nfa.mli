(** NFAs for the witness language [L_n] — and a reproduction finding.

    Theorem 1(2) of the paper states that [L_n] has an NFA of size [Θ(n)],
    by "guessing the positions of the matching a symbols and verifying the
    guess".  Reproducing this surfaced a discrepancy:

    - the {e unbounded} pattern language [Σ* a Σ^(n-1) a Σ*] does have an
      [(n+2)]-state NFA ({!pattern}) — the guess-and-verify automaton;
    - but [L_n] itself is {e fixed-length} ([Σ^2n] ∩ pattern), and every
      trim NFA for a fixed-length language is leveled (a state's depth is
      unique, else two accepted lengths would differ).  At level [i], the
      fooling pairs [x_k = b^k a b^(i-k-1)], [y_k] with a single ['a'] at
      absolute position [n+k] form an identity sub-matrix of size
      [min(i, 2n-i, n)], forcing that many states at that level
      ({!fooling_set} returns them, and the test-suite checks the fooling
      property exhaustively).  Summing over levels gives [Ω(n²)] states.

    So the best possible NFA for [L_n] is [Θ(n²)] ({!build} achieves it),
    and the paper's [Θ(n)] can only refer to the unbounded pattern
    automaton.  Theorem 1's separation is unaffected: [Θ(n²)] is still
    exponentially smaller than the [2^Ω(n)] uCFG lower bound. *)

(** [build n] is a [Θ(n²)]-state NFA accepting exactly [L_n]
    (leveled guess-and-verify: level × window-progress).
    Requires [n >= 1]. *)
val build : int -> Nfa.t

(** [pattern n] is the [(n+2)]-state NFA for the unbounded language
    [Σ* a Σ^(n-1) a Σ*]; [L_n = L(pattern n) ∩ Σ^(2n)].
    Requires [n >= 1]. *)
val pattern : int -> Nfa.t

(** [fooling_set n i] is the level-[i] fooling set: a list of pairs
    [(x, y)] with [|x| = i], [|y| = 2n - i], such that [x·y ∈ L_n] but
    [x·y' ∉ L_n] for any two distinct pairs — a certificate that any
    NFA for [L_n] has at least [List.length (fooling_set n i)] states at
    level [i]. *)
val fooling_set : int -> int -> (string * string) list

(** [state_lower_bound n] is [Σ_i |fooling_set n i|] — the certified
    [Ω(n²)] lower bound on NFA states for [L_n]. *)
val state_lower_bound : int -> int
