open Ucfg_word
module Bignum = Ucfg_util.Bignum

type t = {
  alphabet : Alphabet.t;
  states : int;
  initials : int list;
  finals : bool array;
  (* delta.(s) = list of (char, dst); eps.(s) = ε-successors *)
  delta : (char * int) list array;
  eps : int list array;
}

let check_state states s =
  if s < 0 || s >= states then
    invalid_arg (Printf.sprintf "Nfa: state %d out of range" s)

let make ~alphabet ~states ~initials ~finals ~transitions ?(epsilons = [])
    () =
  if states < 0 then invalid_arg "Nfa.make: negative state count";
  List.iter (check_state states) initials;
  List.iter (check_state states) finals;
  let fin = Array.make states false in
  List.iter (fun s -> fin.(s) <- true) finals;
  let delta = Array.make states [] in
  let eps = Array.make states [] in
  List.iter
    (fun (src, c, dst) ->
       check_state states src;
       check_state states dst;
       if not (Alphabet.mem alphabet c) then
         invalid_arg (Printf.sprintf "Nfa.make: symbol %c not in alphabet" c);
       delta.(src) <- (c, dst) :: delta.(src))
    transitions;
  List.iter
    (fun (src, dst) ->
       check_state states src;
       check_state states dst;
       eps.(src) <- dst :: eps.(src))
    epsilons;
  Array.iteri (fun i l -> delta.(i) <- List.sort_uniq compare (List.rev l)) delta;
  Array.iteri (fun i l -> eps.(i) <- List.sort_uniq compare (List.rev l)) eps;
  { alphabet; states; initials = List.sort_uniq compare initials; finals = fin;
    delta; eps }

let alphabet t = t.alphabet
let state_count t = t.states

let transition_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.delta

let epsilon_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.eps

let size t = t.states + transition_count t + epsilon_count t

let initials t = t.initials

let finals t =
  let acc = ref [] in
  for s = t.states - 1 downto 0 do
    if t.finals.(s) then acc := s :: !acc
  done;
  !acc

let is_final t s =
  check_state t.states s;
  t.finals.(s)

let transitions t =
  let acc = ref [] in
  Array.iteri
    (fun src l -> List.iter (fun (c, dst) -> acc := (src, c, dst) :: !acc) l)
    t.delta;
  List.rev !acc

let epsilons t =
  let acc = ref [] in
  Array.iteri (fun src l -> List.iter (fun dst -> acc := (src, dst) :: !acc) l) t.eps;
  List.rev !acc

let step t s c =
  check_state t.states s;
  List.filter_map (fun (c', dst) -> if Char.equal c c' then Some dst else None)
    t.delta.(s)

let eps_closure t states =
  let seen = Array.make t.states false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter visit t.eps.(s)
    end
  in
  List.iter visit states;
  let acc = ref [] in
  for s = t.states - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

let step_set t states c =
  let seen = Array.make t.states false in
  List.iter
    (fun s -> List.iter (fun d -> seen.(d) <- true) (step t s c))
    states;
  let acc = ref [] in
  for s = t.states - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  eps_closure t !acc

let accepts t w =
  let current = ref (eps_closure t t.initials) in
  String.iter (fun c -> current := step_set t !current c) w;
  List.exists (fun s -> t.finals.(s)) !current

let remove_epsilon t =
  (* standard backward-closure: s --c--> d in the result iff
     s =ε=>* s' --c--> d in t; s final iff its closure meets a final *)
  let transitions = ref [] in
  let finals = ref [] in
  for s = 0 to t.states - 1 do
    let cl = eps_closure t [ s ] in
    if List.exists (fun x -> t.finals.(x)) cl then finals := s :: !finals;
    List.iter
      (fun s' ->
         List.iter (fun (c, d) -> transitions := (s, c, d) :: !transitions)
           t.delta.(s'))
      cl
  done;
  make ~alphabet:t.alphabet ~states:t.states ~initials:t.initials
    ~finals:!finals ~transitions:!transitions ()

let reverse t =
  let transitions =
    List.map (fun (s, c, d) -> (d, c, s)) (transitions t)
  in
  let epsilons = List.map (fun (s, d) -> (d, s)) (epsilons t) in
  make ~alphabet:t.alphabet ~states:t.states ~initials:(finals t)
    ~finals:t.initials ~transitions ~epsilons ()

let union a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Nfa.union: alphabet mismatch";
  let shift = a.states in
  let transitions =
    transitions a
    @ List.map (fun (s, c, d) -> (s + shift, c, d + shift)) (transitions b)
  in
  let epsilons =
    epsilons a @ List.map (fun (s, d) -> (s + shift, d + shift)) (epsilons b)
  in
  make ~alphabet:a.alphabet ~states:(a.states + b.states)
    ~initials:(initials a @ List.map (( + ) shift) (initials b))
    ~finals:(finals a @ List.map (( + ) shift) (finals b))
    ~transitions ~epsilons ()

let product a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Nfa.product: alphabet mismatch";
  if epsilon_count a > 0 || epsilon_count b > 0 then
    invalid_arg "Nfa.product: ε-transitions not supported";
  let encode p q = (p * b.states) + q in
  let transitions = ref [] in
  for p = 0 to a.states - 1 do
    List.iter
      (fun (c, p') ->
         for q = 0 to b.states - 1 do
           List.iter
             (fun (c', q') ->
                if Char.equal c c' then
                  transitions := (encode p q, c, encode p' q') :: !transitions)
             b.delta.(q)
         done)
      a.delta.(p)
  done;
  let initials =
    List.concat_map (fun p -> List.map (encode p) (initials b)) (initials a)
  in
  let finals =
    List.concat_map (fun p -> List.map (encode p) (finals b)) (finals a)
  in
  make ~alphabet:a.alphabet ~states:(a.states * b.states) ~initials ~finals
    ~transitions:!transitions ()

let trim t =
  let fwd = Array.make t.states false in
  let rec forward s =
    if not fwd.(s) then begin
      fwd.(s) <- true;
      List.iter (fun (_, d) -> forward d) t.delta.(s);
      List.iter forward t.eps.(s)
    end
  in
  List.iter forward t.initials;
  (* backward over reversed edges *)
  let pred = Array.make t.states [] in
  Array.iteri
    (fun s l -> List.iter (fun (_, d) -> pred.(d) <- s :: pred.(d)) l)
    t.delta;
  Array.iteri (fun s l -> List.iter (fun d -> pred.(d) <- s :: pred.(d)) l) t.eps;
  let bwd = Array.make t.states false in
  let rec backward s =
    if not bwd.(s) then begin
      bwd.(s) <- true;
      List.iter backward pred.(s)
    end
  in
  for s = 0 to t.states - 1 do
    if t.finals.(s) then backward s
  done;
  let keep = Array.init t.states (fun s -> fwd.(s) && bwd.(s)) in
  let remap = Array.make t.states (-1) in
  let next = ref 0 in
  Array.iteri
    (fun s k ->
       if k then begin
         remap.(s) <- !next;
         incr next
       end)
    keep;
  let live s = keep.(s) in
  make ~alphabet:t.alphabet ~states:!next
    ~initials:(List.filter_map (fun s -> if live s then Some remap.(s) else None)
                 t.initials)
    ~finals:(List.filter_map
               (fun s -> if live s then Some remap.(s) else None)
               (finals t))
    ~transitions:(List.filter_map
                    (fun (s, c, d) ->
                       if live s && live d then Some (remap.(s), c, remap.(d))
                       else None)
                    (transitions t))
    ~epsilons:(List.filter_map
                 (fun (s, d) ->
                    if live s && live d then Some (remap.(s), remap.(d))
                    else None)
                 (epsilons t))
    ()

let language t ~max_len =
  let alpha = t.alphabet in
  let rec explore states len acc prefix =
    let acc =
      if List.exists (fun s -> t.finals.(s)) states then
        Ucfg_lang.Lang.add prefix acc
      else acc
    in
    if len = max_len then acc
    else
      List.fold_left
        (fun acc c ->
           match step_set t states c with
           | [] -> acc
           | next -> explore next (len + 1) acc (prefix ^ String.make 1 c))
        acc (Alphabet.chars alpha)
  in
  explore (eps_closure t t.initials) 0 Ucfg_lang.Lang.empty ""

let count_paths_by_length t len =
  if epsilon_count t > 0 then
    invalid_arg "Nfa.count_paths_by_length: ε-transitions not supported";
  (* vec.(s) = number of runs of the current length from an initial state
     to s *)
  let vec = Array.make t.states Bignum.zero in
  List.iter (fun s -> vec.(s) <- Bignum.one) t.initials;
  let result = Array.make (len + 1) Bignum.zero in
  let count_accepting v =
    let acc = ref Bignum.zero in
    Array.iteri (fun s x -> if t.finals.(s) then acc := Bignum.add !acc x) v;
    !acc
  in
  result.(0) <- count_accepting vec;
  let current = ref vec in
  for l = 1 to len do
    let next = Array.make t.states Bignum.zero in
    Array.iteri
      (fun s x ->
         if Bignum.sign x > 0 then
           List.iter
             (fun (_, d) -> next.(d) <- Bignum.add next.(d) x)
             t.delta.(s))
      !current;
    current := next;
    result.(l) <- count_accepting next
  done;
  result

let of_word_list alpha ws =
  (* a trie: one state per distinct prefix *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let node p =
    match Hashtbl.find_opt ids p with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add ids p id;
      id
  in
  let transitions = ref [] in
  let finals = ref [] in
  let root = node "" in
  List.iter
    (fun w ->
       let len = String.length w in
       for i = 0 to len - 1 do
         let src = node (String.sub w 0 i) in
         let dst = node (String.sub w 0 (i + 1)) in
         transitions := (src, w.[i], dst) :: !transitions
       done;
       finals := node w :: !finals)
    ws;
  make ~alphabet:alpha ~states:!count ~initials:[ root ] ~finals:!finals
    ~transitions:(List.sort_uniq compare !transitions)
    ()

let pp fmt t =
  Format.fprintf fmt "@[<v>states: %d@,initials: %s@,finals: %s@," t.states
    (String.concat "," (List.map string_of_int t.initials))
    (String.concat "," (List.map string_of_int (finals t)));
  List.iter
    (fun (s, c, d) -> Format.fprintf fmt "%d --%c--> %d@," s c d)
    (transitions t);
  List.iter (fun (s, d) -> Format.fprintf fmt "%d --ε--> %d@," s d) (epsilons t);
  Format.fprintf fmt "@]"
