(* The deterministic (hence unambiguous) witness: the trimmed minimal DFA.
   Its state count is Θ(2^n) — within a constant factor of the 2^n − 1
   rank lower bound — while the plain NFA of Ln_nfa is Θ(n²): unambiguity
   costs exponentially for automata too. *)

let build n =
  if n < 1 then invalid_arg "Ufa_ln.build: n must be >= 1";
  Nfa.trim (Dfa.to_nfa (Determinize.minimal_dfa (Ln_nfa.build n)))

let state_lower_bound n =
  if n < 1 then invalid_arg "Ufa_ln.state_lower_bound";
  (1 lsl n) - 1
