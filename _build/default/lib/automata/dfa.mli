(** Deterministic finite automata.

    Complete DFAs (every state has exactly one successor per symbol) with
    Moore minimisation — used to contrast the paper's [Θ(n)] NFA for [L_n]
    with the exponentially larger minimal DFA, and to decide language
    equivalence of automata exactly. *)

open Ucfg_word

type t

(** [make ~alphabet ~states ~initial ~finals ~delta] builds a complete DFA;
    [delta state char_index] must be a valid state for every pair.
    @raise Invalid_argument on inconsistencies. *)
val make :
  alphabet:Alphabet.t ->
  states:int ->
  initial:int ->
  finals:int list ->
  delta:(int -> int -> int) ->
  t

val alphabet : t -> Alphabet.t
val state_count : t -> int
val initial : t -> int
val is_final : t -> int -> bool

(** [next t s c] is the unique [c]-successor. *)
val next : t -> int -> char -> int

val accepts : t -> string -> bool

(** [complement t] swaps final and non-final states. *)
val complement : t -> t

(** [minimize t] is the unique minimal complete DFA for [L(t)]
    (Moore partition refinement over reachable states). *)
val minimize : t -> t

(** [equivalent a b] decides [L(a) = L(b)] by product reachability. *)
val equivalent : t -> t -> bool

(** [language t ~max_len] is the set of accepted words of length
    [<= max_len]. *)
val language : t -> max_len:int -> Ucfg_lang.Lang.t

(** [count_words_by_length t len] counts accepted words per length
    (exact: a DFA is trivially unambiguous). *)
val count_words_by_length : t -> int -> Ucfg_util.Bignum.t array

(** [to_nfa t] forgets determinism. *)
val to_nfa : t -> Nfa.t

val pp : Format.formatter -> t -> unit
