open Ucfg_word

(* Leveled guess-and-verify NFA for L_n.
   States:
   - B_i (i in [0, n-1]): read i symbols, no guess yet;
   - M_(i,t) (t in [1, n-1], i = k + t for some guess position
     k in [0, n-1]): the first matched 'a' was read at position k,
     t further symbols consumed, currently at absolute position i;
   - D_i (i in [n+1, 2n]): both matched 'a's read, absolute position i.
   Accept at D_2n.  For n = 1 there is no M layer: the second 'a'
   immediately follows the first. *)
let build n =
  if n < 1 then invalid_arg "Ln_nfa.build: n must be >= 1";
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let names = ref [] in
  let count = ref 0 in
  let state name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add ids name id;
      names := name :: !names;
      id
  in
  let b i = state (Printf.sprintf "B%d" i) in
  let m i t = state (Printf.sprintf "M%d_%d" i t) in
  let d i = state (Printf.sprintf "D%d" i) in
  let transitions = ref [] in
  let add src c dst = transitions := (src, c, dst) :: !transitions in
  let sigma src dst =
    add src 'a' dst;
    add src 'b' dst
  in
  (* prefix *)
  for i = 0 to n - 2 do
    sigma (b i) (b (i + 1))
  done;
  (* guess at position k: consume the matched 'a', land in the window with
     0 middle symbols consumed at absolute position k+1 *)
  for k = 0 to n - 1 do
    add (b k) 'a' (m (k + 1) 0)
  done;
  (* window: t = middle symbols consumed; M_(i,t) has i = k+1+t *)
  for t = 0 to n - 2 do
    for k = 0 to n - 1 do
      let i = k + 1 + t in
      sigma (m i t) (m (i + 1) (t + 1))
    done
  done;
  (* the second matched 'a' at absolute position k+n, read from t = n-1 *)
  for k = 0 to n - 1 do
    let i = k + n in
    add (m i (n - 1)) 'a' (d (i + 1))
  done;
  (* suffix *)
  for i = n + 1 to (2 * n) - 1 do
    sigma (d i) (d (i + 1))
  done;
  let accept = d (2 * n) in
  Nfa.make ~alphabet:Alphabet.binary ~states:!count ~initials:[ b 0 ]
    ~finals:[ accept ] ~transitions:!transitions ()

let pattern n =
  if n < 1 then invalid_arg "Ln_nfa.pattern: n must be >= 1";
  (* states: 0 = looking (loop); 1..n = window progress (state 1+t after t
     middle symbols); n+1 = done (loop).  0 --a--> 1, n-1 middle steps,
     n --a--> n+1.  That is n+2 states. *)
  let transitions = ref [] in
  let add src c dst = transitions := (src, c, dst) :: !transitions in
  let sigma src dst =
    add src 'a' dst;
    add src 'b' dst
  in
  sigma 0 0;
  add 0 'a' 1;
  for t = 1 to n - 1 do
    sigma t (t + 1)
  done;
  add n 'a' (n + 1);
  sigma (n + 1) (n + 1);
  Nfa.make ~alphabet:Alphabet.binary ~states:(n + 2) ~initials:[ 0 ]
    ~finals:[ n + 1 ] ~transitions:!transitions ()

let fooling_set n i =
  if n < 1 || i < 0 || i > 2 * n then invalid_arg "Ln_nfa.fooling_set";
  (* pairs indexed by k: x has its single 'a' at position k (so k < i and
     k <= n-1), y has its single 'a' at absolute position n+k (so
     n+k >= i, i.e. k >= i-n, and n+k <= 2n-1) *)
  let lo = max 0 (i - n) and hi = min (i - 1) (n - 1) in
  List.filter_map
    (fun k ->
       if k < lo || k > hi then None
       else begin
         let x = String.init i (fun p -> if p = k then 'a' else 'b') in
         let y =
           String.init ((2 * n) - i) (fun p ->
               if p + i = n + k then 'a' else 'b')
         in
         Some (x, y)
       end)
    (Ucfg_util.Prelude.range_incl lo hi)

let state_lower_bound n =
  Ucfg_util.Prelude.sum_int
    (List.map
       (fun i -> List.length (fooling_set n i))
       (Ucfg_util.Prelude.range_incl 0 (2 * n)))
