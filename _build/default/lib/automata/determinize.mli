(** Subset construction: NFA → DFA.

    Exponential in the worst case — exactly the succinctness gap the paper
    places next to the CFG/uCFG gap.  A state cap keeps experiments from
    running away. *)

(** [run ?max_states nfa] determinizes [nfa] (ε-transitions allowed).
    Returns [Error `Too_many_states] once more than [max_states]
    (default 1_000_000) subset states appear. *)
val run : ?max_states:int -> Nfa.t -> (Dfa.t, [ `Too_many_states ]) result

(** [run_exn ?max_states nfa] raises [Invalid_argument] on overflow. *)
val run_exn : ?max_states:int -> Nfa.t -> Dfa.t

(** [minimal_dfa ?max_states nfa] is the minimized determinization. *)
val minimal_dfa : ?max_states:int -> Nfa.t -> Dfa.t
