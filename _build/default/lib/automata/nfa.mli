(** Nondeterministic finite automata.

    The paper's Theorem 1(2) states that [L_n] has an NFA of size [Θ(n)];
    this module provides the general NFA machinery and {!Ln_nfa} the
    concrete construction.  States are integers [0..states-1]; automata
    may have several initial states and ε-transitions (removable with
    {!remove_epsilon}). *)

open Ucfg_word

type t

(** [make ~alphabet ~states ~initials ~finals ~transitions ~epsilons]
    validates and builds an NFA.  [transitions] are labelled edges
    [(src, char, dst)]; [epsilons] are [(src, dst)] pairs.
    @raise Invalid_argument on out-of-range states or foreign symbols. *)
val make :
  alphabet:Alphabet.t ->
  states:int ->
  initials:int list ->
  finals:int list ->
  transitions:(int * char * int) list ->
  ?epsilons:(int * int) list ->
  unit ->
  t

val alphabet : t -> Alphabet.t
val state_count : t -> int
val transition_count : t -> int
val epsilon_count : t -> int

(** The paper-style size of an NFA: states plus transitions (a robust
    measure for [Θ]-statements; both components are [Θ(n)] for
    {!Ln_nfa.build}). *)
val size : t -> int

val initials : t -> int list
val finals : t -> int list
val is_final : t -> int -> bool
val transitions : t -> (int * char * int) list
val epsilons : t -> (int * int) list

(** [step t state c] is the set of states reachable by one [c]-edge
    (no ε-closure applied). *)
val step : t -> int -> char -> int list

(** [eps_closure t states] closes a state set under ε-edges. *)
val eps_closure : t -> int list -> int list

(** [accepts t w] decides membership by subset simulation. *)
val accepts : t -> string -> bool

(** [remove_epsilon t] is an equivalent ε-free NFA on the same states. *)
val remove_epsilon : t -> t

(** [reverse t] accepts the mirror language. *)
val reverse : t -> t

(** [union a b] accepts [L(a) ∪ L(b)] (disjoint sum of states). *)
val union : t -> t -> t

(** [product a b] accepts [L(a) ∩ L(b)]; both must be ε-free.
    @raise Invalid_argument on ε-transitions or alphabet mismatch. *)
val product : t -> t -> t

(** [trim t] restricts to useful (reachable and co-reachable) states. *)
val trim : t -> t

(** [language t ~max_len] is the set of accepted words of length
    [<= max_len]. *)
val language : t -> max_len:int -> Ucfg_lang.Lang.t

(** [count_paths_by_length t len] is the number of accepting runs per word
    length [0..len] (counts runs, not words: equals word counts exactly
    when the automaton is unambiguous).  Requires an ε-free automaton. *)
val count_paths_by_length : t -> int -> Ucfg_util.Bignum.t array

(** [of_word_list alpha ws] is a trie-shaped NFA (in fact a DFA) for a
    finite list of words. *)
val of_word_list : Alphabet.t -> string list -> t

val pp : Format.formatter -> t -> unit
