module Bignum = Ucfg_util.Bignum

(* Self-product criterion.  On the trim automaton, a word with two distinct
   accepting runs yields a reachable, co-reachable product state (p, q)
   with p <> q (the runs differ somewhere); conversely such a state splices
   into two distinct accepting runs of one word.  Distinct initial states
   reachable on the same (empty) prefix count as well, which the product's
   initial pairs cover. *)
let is_unambiguous nfa =
  if Nfa.epsilon_count nfa > 0 then
    invalid_arg "Unambiguous.is_unambiguous: ε-transitions not supported";
  let t = Nfa.trim nfa in
  let n = Nfa.state_count t in
  (* forward-reachable product pairs *)
  let fwd = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push pq =
    if not (Hashtbl.mem fwd pq) then begin
      Hashtbl.add fwd pq ();
      Queue.add pq queue
    end
  in
  List.iter
    (fun p -> List.iter (fun q -> push (p, q)) (Nfa.initials t))
    (Nfa.initials t);
  let alphabet = Nfa.alphabet t in
  while not (Queue.is_empty queue) do
    let p, q = Queue.pop queue in
    List.iter
      (fun c ->
         List.iter
           (fun p' -> List.iter (fun q' -> push (p', q')) (Nfa.step t q c))
           (Nfa.step t p c))
      (Ucfg_word.Alphabet.chars alphabet)
  done;
  (* backward co-reachability over the product *)
  let co = Hashtbl.create 256 in
  let bqueue = Queue.create () in
  let bpush pq =
    if not (Hashtbl.mem co pq) then begin
      Hashtbl.add co pq ();
      Queue.add pq bqueue
    end
  in
  List.iter
    (fun f -> List.iter (fun f' -> bpush (f, f')) (Nfa.finals t))
    (Nfa.finals t);
  (* predecessor map of t *)
  let preds = Array.make n [] in
  List.iter
    (fun (s, c, d) -> preds.(d) <- (s, c) :: preds.(d))
    (Nfa.transitions t);
  while not (Queue.is_empty bqueue) do
    let p, q = Queue.pop bqueue in
    List.iter
      (fun (p', c) ->
         List.iter
           (fun (q', c') -> if Char.equal c c' then bpush (p', q'))
           preds.(q))
      preds.(p)
  done;
  not
    (Hashtbl.fold
       (fun (p, q) () acc -> acc || (p <> q && Hashtbl.mem co (p, q)))
       fwd false)

let count_paths nfa len = Nfa.count_paths_by_length nfa len

let count_words_via_dfa nfa len =
  let dfa = Determinize.run_exn nfa in
  Dfa.count_words_by_length dfa len

let ambiguous_word nfa ~max_len =
  let dfa = Determinize.run_exn nfa in
  let words = Dfa.count_words_by_length dfa max_len in
  let paths = count_paths nfa max_len in
  (* find the shortest length where paths exceed words, then locate a word
     of that length with two runs by direct path counting per word *)
  let rec find_len l =
    if l > max_len then None
    else if Bignum.compare paths.(l) words.(l) > 0 then Some l
    else find_len (l + 1)
  in
  match find_len 0 with
  | None -> None
  | Some l ->
    let count_runs w =
      (* runs of w: dynamic program over positions *)
      let n = Nfa.state_count nfa in
      let vec = Array.make n Bignum.zero in
      List.iter (fun s -> vec.(s) <- Bignum.one) (Nfa.initials nfa);
      let cur = ref vec in
      String.iter
        (fun c ->
           let nxt = Array.make n Bignum.zero in
           Array.iteri
             (fun s x ->
                if Bignum.sign x > 0 then
                  List.iter
                    (fun d -> nxt.(d) <- Bignum.add nxt.(d) x)
                    (Nfa.step nfa s c))
             !cur;
           cur := nxt)
        w;
      let acc = ref Bignum.zero in
      Array.iteri
        (fun s x -> if Nfa.is_final nfa s then acc := Bignum.add !acc x)
        !cur;
      !acc
    in
    Seq.find
      (fun w -> Bignum.compare (count_runs w) Bignum.one > 0)
      (Ucfg_word.Word.enumerate (Nfa.alphabet nfa) l)

let count_words nfa len =
  if is_unambiguous nfa then count_paths nfa len
  else count_words_via_dfa nfa len
