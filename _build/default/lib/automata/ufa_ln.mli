(** Unambiguous finite automata for [L_n] — the automata-side analogue of
    the paper's theorem.

    The paper's introduction places uCFG lower bounds next to the recent
    unambiguous-automata results (Göös–Kiefer–Yuan, Raskin).  For [L_n]
    itself the situation mirrors Theorem 1 one level down:

    - NFAs for [L_n] are polynomial ([Θ(n²)], see {!Ln_nfa});
    - every {e unambiguous} NFA needs [2^n − 1] states, by Schmidt's
      classical rank bound: a UFA with [k] states induces a rank-[k]
      factorisation of the word matrix over ℚ, and the midpoint matrix of
      [L_n] has rank [2^n − 1] (computed exactly in {!Ucfg_comm.Rank});
    - {!build} constructs a matching [O(2^n)]-state UFA by first-match
      subset tracking: remember the set of first-half ['a'] positions
      still "pending", discharge them deterministically in the second
      half at the first matched position.

    So unambiguity costs exponentially for automata too — with the same
    witness language, by the same kind of algebraic argument. *)

(** [build n] — an unambiguous NFA for [L_n] with [O(n·2^n)] states
    (first-match subset construction).  Use [n <= 6] or so. *)
val build : int -> Nfa.t

(** [state_lower_bound n] = [2^n − 1]: Schmidt's rank bound instantiated
    to [L_n] (the midpoint matrix rank, which {!Ucfg_comm.Rank} verifies
    numerically for small [n]). *)
val state_lower_bound : int -> int
