open Ucfg_word
module Bignum = Ucfg_util.Bignum

type t = {
  alphabet : Alphabet.t;
  states : int;
  initial : int;
  finals : bool array;
  (* delta.(s).(ci) = successor on the ci-th alphabet character *)
  delta : int array array;
}

let make ~alphabet ~states ~initial ~finals ~delta =
  if states <= 0 then invalid_arg "Dfa.make: need at least one state";
  if initial < 0 || initial >= states then invalid_arg "Dfa.make: bad initial";
  let fin = Array.make states false in
  List.iter
    (fun s ->
       if s < 0 || s >= states then invalid_arg "Dfa.make: bad final";
       fin.(s) <- true)
    finals;
  let k = Alphabet.size alphabet in
  let d =
    Array.init states (fun s ->
        Array.init k (fun ci ->
            let dst = delta s ci in
            if dst < 0 || dst >= states then
              invalid_arg "Dfa.make: transition out of range";
            dst))
  in
  { alphabet; states; initial; finals = fin; delta = d }

let alphabet t = t.alphabet
let state_count t = t.states
let initial t = t.initial

let is_final t s =
  if s < 0 || s >= t.states then invalid_arg "Dfa.is_final: bad state";
  t.finals.(s)

let next t s c = t.delta.(s).(Alphabet.index t.alphabet c)

let accepts t w =
  let s = ref t.initial in
  String.iter (fun c -> s := next t !s c) w;
  t.finals.(!s)

let complement t =
  { t with finals = Array.map not t.finals }

let reachable t =
  let seen = Array.make t.states false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter visit t.delta.(s)
    end
  in
  visit t.initial;
  seen

let minimize t =
  let reach = reachable t in
  (* Moore: start from the final / non-final split, refine by successor
     block vectors until stable; unreachable states are parked in class
     (-1) and dropped at rebuild *)
  let cls = Array.make t.states (-1) in
  for s = 0 to t.states - 1 do
    if reach.(s) then cls.(s) <- if t.finals.(s) then 1 else 0
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    let signature s =
      (cls.(s), Array.to_list (Array.map (fun d -> cls.(d)) t.delta.(s)))
    in
    let tbl = Hashtbl.create 64 in
    let next_cls = Array.make t.states (-1) in
    let counter = ref 0 in
    for s = 0 to t.states - 1 do
      if reach.(s) then begin
        let sg = signature s in
        match Hashtbl.find_opt tbl sg with
        | Some c -> next_cls.(s) <- c
        | None ->
          Hashtbl.add tbl sg !counter;
          next_cls.(s) <- !counter;
          incr counter
      end
    done;
    if next_cls <> cls then begin
      Array.blit next_cls 0 cls 0 t.states;
      changed := true
    end
  done;
  let nclasses = 1 + Array.fold_left max (-1) cls in
  (* a representative per class *)
  let repr = Array.make nclasses (-1) in
  for s = t.states - 1 downto 0 do
    if cls.(s) >= 0 then repr.(cls.(s)) <- s
  done;
  let finals = ref [] in
  for c = 0 to nclasses - 1 do
    if t.finals.(repr.(c)) then finals := c :: !finals
  done;
  make ~alphabet:t.alphabet ~states:nclasses ~initial:cls.(t.initial)
    ~finals:!finals
    ~delta:(fun c ci -> cls.(t.delta.(repr.(c)).(ci)))

let equivalent a b =
  if not (Alphabet.equal a.alphabet b.alphabet) then
    invalid_arg "Dfa.equivalent: alphabet mismatch";
  (* product BFS looking for a distinguishing pair *)
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push p = if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      Queue.add p queue
    end
  in
  push (a.initial, b.initial);
  let k = Alphabet.size a.alphabet in
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let p, q = Queue.pop queue in
    if a.finals.(p) <> b.finals.(q) then ok := false
    else
      for ci = 0 to k - 1 do
        push (a.delta.(p).(ci), b.delta.(q).(ci))
      done
  done;
  !ok

let language t ~max_len =
  let chars = Alphabet.chars t.alphabet in
  let rec explore s len acc prefix =
    let acc = if t.finals.(s) then Ucfg_lang.Lang.add prefix acc else acc in
    if len = max_len then acc
    else
      List.fold_left
        (fun acc c -> explore (next t s c) (len + 1) acc (prefix ^ String.make 1 c))
        acc chars
  in
  explore t.initial 0 Ucfg_lang.Lang.empty ""

let count_words_by_length t len =
  let vec = Array.make t.states Bignum.zero in
  vec.(t.initial) <- Bignum.one;
  let result = Array.make (len + 1) Bignum.zero in
  let count v =
    let acc = ref Bignum.zero in
    Array.iteri (fun s x -> if t.finals.(s) then acc := Bignum.add !acc x) v;
    !acc
  in
  result.(0) <- count vec;
  let current = ref vec in
  for l = 1 to len do
    let nxt = Array.make t.states Bignum.zero in
    Array.iteri
      (fun s x ->
         if Bignum.sign x > 0 then
           Array.iter (fun d -> nxt.(d) <- Bignum.add nxt.(d) x) t.delta.(s))
      !current;
    current := nxt;
    result.(l) <- count nxt
  done;
  result

let to_nfa t =
  let transitions = ref [] in
  for s = 0 to t.states - 1 do
    Array.iteri
      (fun ci d ->
         transitions := (s, Alphabet.char_at t.alphabet ci, d) :: !transitions)
      t.delta.(s)
  done;
  let finals = ref [] in
  for s = t.states - 1 downto 0 do
    if t.finals.(s) then finals := s :: !finals
  done;
  Nfa.make ~alphabet:t.alphabet ~states:t.states ~initials:[ t.initial ]
    ~finals:!finals ~transitions:!transitions ()

let pp fmt t =
  Format.fprintf fmt "@[<v>states: %d, initial: %d@," t.states t.initial;
  for s = 0 to t.states - 1 do
    Format.fprintf fmt "%d%s:" s (if t.finals.(s) then "*" else "");
    Array.iteri
      (fun ci d ->
         Format.fprintf fmt " %c->%d" (Alphabet.char_at t.alphabet ci) d)
      t.delta.(s);
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
