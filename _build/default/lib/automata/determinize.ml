open Ucfg_word

exception Overflow

let run ?(max_states = 1_000_000) nfa =
  let alpha = Nfa.alphabet nfa in
  let k = Alphabet.size alpha in
  (* subset states keyed by their sorted state lists *)
  let ids : (int list, int) Hashtbl.t = Hashtbl.create 256 in
  let subsets = ref [] in
  let count = ref 0 in
  let node subset =
    match Hashtbl.find_opt ids subset with
    | Some id -> (id, false)
    | None ->
      if !count >= max_states then raise Overflow;
      let id = !count in
      incr count;
      Hashtbl.add ids subset id;
      subsets := subset :: !subsets;
      (id, true)
  in
  try
    let start = Nfa.eps_closure nfa (Nfa.initials nfa) in
    let queue = Queue.create () in
    let transitions = ref [] in
    let start_id, _ = node start in
    Queue.add (start_id, start) queue;
    while not (Queue.is_empty queue) do
      let id, subset = Queue.pop queue in
      for ci = 0 to k - 1 do
        let c = Alphabet.char_at alpha ci in
        let nxt =
          Nfa.eps_closure nfa
            (List.sort_uniq compare
               (List.concat_map (fun s -> Nfa.step nfa s c) subset))
        in
        let nid, fresh = node nxt in
        if fresh then Queue.add (nid, nxt) queue;
        transitions := ((id, ci), nid) :: !transitions
      done
    done;
    let subset_arr = Array.make !count [] in
    List.iter (fun s -> subset_arr.(Hashtbl.find ids s) <- s) !subsets;
    let finals = ref [] in
    Array.iteri
      (fun id subset ->
         if List.exists (Nfa.is_final nfa) subset then finals := id :: !finals)
      subset_arr;
    let tbl = Hashtbl.create 256 in
    List.iter (fun (kq, v) -> Hashtbl.replace tbl kq v) !transitions;
    Ok
      (Dfa.make ~alphabet:alpha ~states:!count ~initial:start_id
         ~finals:!finals
         ~delta:(fun s ci -> Hashtbl.find tbl (s, ci)))
  with Overflow -> Error `Too_many_states

let run_exn ?max_states nfa =
  match run ?max_states nfa with
  | Ok d -> d
  | Error `Too_many_states ->
    invalid_arg "Determinize.run_exn: too many subset states"

let minimal_dfa ?max_states nfa = Dfa.minimize (run_exn ?max_states nfa)
