(** Automata ↔ grammar translations.

    A right-linear grammar built from an NFA has exactly one parse tree per
    accepting run, so DFAs (and UFAs) give unambiguous grammars — the
    bridge between the automata side and the grammar side of Theorem 1. *)

(** [cfg_of_nfa nfa] is a right-linear CFG with [L(cfg) = L(nfa)]; its
    parse trees are in bijection with the accepting runs of [nfa] (so the
    grammar is unambiguous iff [nfa] is a UFA).  ε-free automata only;
    ε in the language is handled by an ε-rule on a fresh start symbol.
    @raise Invalid_argument on ε-transitions. *)
val cfg_of_nfa : Nfa.t -> Ucfg_cfg.Grammar.t

(** [cfg_of_dfa dfa] = [cfg_of_nfa (Dfa.to_nfa dfa)] restricted to useful
    states; always unambiguous. *)
val cfg_of_dfa : Dfa.t -> Ucfg_cfg.Grammar.t

(** [nfa_of_right_linear g] converts a right-linear grammar (rules of the
    form [A -> cB], [A -> c] or [A -> ε]) back to an NFA.
    @raise Invalid_argument if [g] is not right-linear. *)
val nfa_of_right_linear : Ucfg_cfg.Grammar.t -> Nfa.t
