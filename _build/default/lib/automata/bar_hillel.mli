(** The Bar–Hillel product: CFG ∩ NFA.

    A grammar for [L(g) ∩ L(nfa)] over triple nonterminals [(p, A, q)]
    ("[A] derives a word taking the automaton from [p] to [q]").  The
    paper's witness language factors as
    [L_n = Σ^2n ∩ Σ* a Σ^(n-1) a Σ*], so intersecting the (unambiguous)
    full-cube grammar with the [Θ(n)] pattern automaton rebuilds [L_n] by
    a route entirely independent of the paper's constructions — the
    experiments use it as a cross-check and an ablation.

    Parse trees of the product are in bijection with pairs (parse tree of
    [g], accepting run of [nfa] over the same word): the product of an
    unambiguous grammar with an ambiguous automaton is exactly as
    ambiguous as the automaton's runs. *)

(** [intersect g nfa] — [g] is converted to CNF if needed; [nfa] must be
    ε-free.  Only reachable/productive triples are materialised and the
    result is trimmed.
    @raise Invalid_argument on ε-transitions. *)
val intersect : Ucfg_cfg.Grammar.t -> Nfa.t -> Ucfg_cfg.Grammar.t
