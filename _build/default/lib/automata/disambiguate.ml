open Ucfg_cfg

let ucfg_of_grammar g =
  let lang = Analysis.language_exn g in
  if Ucfg_lang.Lang.is_empty lang then
    Grammar.make ~alphabet:(Grammar.alphabet g) ~names:[| "S" |] ~rules:[]
      ~start:0
  else begin
    let trie =
      Nfa.of_word_list (Grammar.alphabet g) (Ucfg_lang.Lang.elements lang)
    in
    let dfa = Determinize.minimal_dfa trie in
    (* the trimmed right-linear grammar of the minimal DFA: unambiguous
       because accepting runs of a DFA are unique *)
    Trim.trim (Translate.cfg_of_dfa dfa)
  end

let blowup g = (Grammar.size g, Grammar.size (ucfg_of_grammar g))
