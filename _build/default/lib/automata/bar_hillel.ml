open Ucfg_cfg
open Grammar

let intersect g nfa =
  if Nfa.epsilon_count nfa > 0 then
    invalid_arg "Bar_hillel.intersect: ε-transitions not supported";
  let g = Cnf.ensure g in
  let nn = nonterminal_count g in
  let ns = Nfa.state_count nfa in
  if nn = 0 || ns = 0 then
    (* one side is empty: an empty grammar *)
    make ~alphabet:(alphabet g) ~names:[| "S" |] ~rules:[] ~start:0
  else begin
    let triple p a q = (((p * nn) + a) * ns) + q in
    let fresh = nn * ns * ns in
    let names =
      Array.init (fresh + 1) (fun i ->
          if i = fresh then "S&"
          else begin
            let q = i mod ns in
            let a = i / ns mod nn in
            let p = i / ns / nn in
            Printf.sprintf "%d_%s_%d" p (name g a) q
          end)
    in
    let acc_rules = ref [] in
    List.iter
      (fun { lhs; rhs } ->
         match rhs with
         | [ T c ] ->
           List.iter
             (fun (p, c', q) ->
                if Char.equal c c' then
                  acc_rules := { lhs = triple p lhs q; rhs = [ T c ] } :: !acc_rules)
             (Nfa.transitions nfa)
         | [ N b; N c ] ->
           for p = 0 to ns - 1 do
             for r = 0 to ns - 1 do
               for q = 0 to ns - 1 do
                 acc_rules :=
                   { lhs = triple p lhs q;
                     rhs = [ N (triple p b r); N (triple r c q) ] }
                   :: !acc_rules
               done
             done
           done
         | [] ->
           (* only the start symbol may have an ε-rule in CNF; handled at
              the fresh start below *)
           ()
         | _ -> assert false (* CNF *))
      (rules g);
    List.iter
      (fun i ->
         List.iter
           (fun f ->
              acc_rules :=
                { lhs = fresh; rhs = [ N (triple i (start g) f) ] } :: !acc_rules)
           (Nfa.finals nfa))
      (Nfa.initials nfa);
    if
      has_rule g (start g) []
      && List.exists (Nfa.is_final nfa) (Nfa.initials nfa)
    then acc_rules := { lhs = fresh; rhs = [] } :: !acc_rules;
    Trim.trim
      (make ~alphabet:(alphabet g) ~names ~rules:!acc_rules ~start:fresh)
  end
