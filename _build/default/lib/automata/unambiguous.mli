(** Unambiguous finite automata (UFAs).

    An NFA is unambiguous when every word has at most one accepting run.
    Like uCFGs, UFAs trade succinctness for counting: accepted-word counts
    are exact path counts.  The classical decision procedure is the
    self-product criterion: a trim NFA is ambiguous iff its product with
    itself has a useful off-diagonal state. *)

(** [is_unambiguous nfa] decides unambiguity.  ε-free automata only.
    @raise Invalid_argument on ε-transitions. *)
val is_unambiguous : Nfa.t -> bool

(** [ambiguous_word nfa ~max_len] finds a word with two accepting runs by
    comparing path counts against determinized word counts, length by
    length. *)
val ambiguous_word : Nfa.t -> max_len:int -> string option

(** [count_words nfa len] counts accepted words of each length in
    [0..len]: directly by path counting when [nfa] is unambiguous,
    otherwise through determinization. *)
val count_words : Nfa.t -> int -> Ucfg_util.Bignum.t array
