lib/automata/disambiguate.ml: Analysis Determinize Grammar Nfa Translate Trim Ucfg_cfg Ucfg_lang
