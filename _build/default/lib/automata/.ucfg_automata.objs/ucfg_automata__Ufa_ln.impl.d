lib/automata/ufa_ln.ml: Determinize Dfa Ln_nfa Nfa
