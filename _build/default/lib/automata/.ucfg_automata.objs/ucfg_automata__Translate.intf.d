lib/automata/translate.mli: Dfa Nfa Ucfg_cfg
