lib/automata/nfa.ml: Alphabet Array Char Format Hashtbl List Printf String Ucfg_lang Ucfg_util Ucfg_word
