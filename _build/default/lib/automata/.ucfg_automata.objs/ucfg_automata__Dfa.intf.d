lib/automata/dfa.mli: Alphabet Format Nfa Ucfg_lang Ucfg_util Ucfg_word
