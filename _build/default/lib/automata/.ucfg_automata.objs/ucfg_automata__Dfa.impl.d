lib/automata/dfa.ml: Alphabet Array Format Hashtbl List Nfa Queue String Ucfg_lang Ucfg_util Ucfg_word
