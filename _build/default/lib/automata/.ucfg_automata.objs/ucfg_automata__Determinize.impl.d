lib/automata/determinize.ml: Alphabet Array Dfa Hashtbl List Nfa Queue Ucfg_word
