lib/automata/unambiguous.mli: Nfa Ucfg_util
