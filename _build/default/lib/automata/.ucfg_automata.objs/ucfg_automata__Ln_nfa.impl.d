lib/automata/ln_nfa.ml: Alphabet Hashtbl List Nfa Printf String Ucfg_util Ucfg_word
