lib/automata/bar_hillel.ml: Array Char Cnf Grammar List Nfa Printf Trim Ucfg_cfg
