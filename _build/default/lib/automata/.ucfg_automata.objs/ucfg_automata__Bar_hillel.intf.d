lib/automata/bar_hillel.mli: Nfa Ucfg_cfg
