lib/automata/translate.ml: Array Dfa Grammar List Nfa Printf Ucfg_cfg
