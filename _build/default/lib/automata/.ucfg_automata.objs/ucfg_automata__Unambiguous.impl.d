lib/automata/unambiguous.ml: Array Char Determinize Dfa Hashtbl List Nfa Queue Seq String Ucfg_util Ucfg_word
