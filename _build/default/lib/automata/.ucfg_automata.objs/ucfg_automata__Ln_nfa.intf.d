lib/automata/ln_nfa.mli: Nfa
