lib/automata/nfa.mli: Alphabet Format Ucfg_lang Ucfg_util Ucfg_word
