lib/automata/disambiguate.mli: Ucfg_cfg
