lib/automata/ufa_ln.mli: Nfa
