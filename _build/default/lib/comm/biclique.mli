(** Biclique covers of communication matrices — the nondeterministic
    analogue of the rank bound.

    A biclique (all-ones combinatorial rectangle) cover of the 1-entries
    corresponds to a nondeterministic protocol, and its minimum size
    lower-bounds NFA states at the corresponding level (the quantity
    behind the Ω(n²) certificate of {!Ucfg_automata.Ln_nfa}).  Unlike
    disjoint covers, overlaps are free — which is exactly why the [L_n]
    matrix needs only [n] bicliques but [2^n − 1] disjoint rectangles. *)

(** [greedy_cover m] — a cover of the 1-entries by maximal-ish bicliques,
    grown greedily from uncovered entries.  Returns each biclique as
    [(rows, cols)].  The count is an upper bound on the biclique cover
    number. *)
val greedy_cover : Matrix.t -> (int list * int list) list

(** [is_cover m bicliques] — every 1-entry covered, every biclique inside
    the 1-entries. *)
val is_cover : Matrix.t -> (int list * int list) list -> bool

(** [cover_number_bounds m] — [(lower, upper)]: the fooling-set lower
    bound and the greedy upper bound. *)
val cover_number_bounds : Matrix.t -> int * int
