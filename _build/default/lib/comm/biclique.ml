module Bitset = Ucfg_util.Bitset

(* the maximal biclique containing all of column c: its rows are those
   with a 1 at c, its columns the ones those rows share *)
let grow_column m c =
  let rows = ref [] in
  for r = 0 to Matrix.rows m - 1 do
    if Matrix.get m r c then rows := r :: !rows
  done;
  match !rows with
  | [] -> ([], [])
  | first :: rest ->
    let cols =
      List.fold_left
        (fun acc r -> Bitset.inter acc (Matrix.row m r))
        (Matrix.row m first) rest
    in
    (List.rev !rows, Bitset.elements cols)

(* the maximal biclique containing all of row r *)
let grow_row m r =
  let cols = Matrix.row m r in
  if Bitset.is_empty cols then ([], [])
  else begin
    let rows = ref [] in
    for r' = 0 to Matrix.rows m - 1 do
      if Bitset.subset cols (Matrix.row m r') then rows := r' :: !rows
    done;
    (List.rev !rows, Bitset.elements cols)
  end

let greedy_cover m =
  let covered =
    Array.init (Matrix.rows m) (fun _ -> Bitset.create (Matrix.cols m))
  in
  let uncovered_in (rows, cols) =
    Ucfg_util.Prelude.sum_int
      (List.map
         (fun r ->
            List.length (List.filter (fun c -> not (Bitset.mem covered.(r) c)) cols))
         rows)
  in
  let candidates () =
    List.map (grow_column m) (Ucfg_util.Prelude.range 0 (Matrix.cols m))
    @ List.map (grow_row m) (Ucfg_util.Prelude.range 0 (Matrix.rows m))
  in
  let all_candidates = candidates () in
  let bicliques = ref [] in
  let remaining = ref (Matrix.ones m) in
  while !remaining > 0 do
    (* pick the candidate covering the most still-uncovered entries *)
    let best =
      List.fold_left
        (fun best cand ->
           let gain = uncovered_in cand in
           match best with
           | Some (bg, _) when bg >= gain -> best
           | _ when gain = 0 -> best
           | _ -> Some (gain, cand))
        None all_candidates
    in
    match best with
    | None ->
      (* should not happen: every 1-entry lies in some column biclique *)
      assert false
    | Some (gain, (rows, cols)) ->
      List.iter
        (fun r ->
           covered.(r) <-
             Bitset.union covered.(r) (Bitset.of_list (Matrix.cols m) cols))
        rows;
      remaining := !remaining - gain;
      bicliques := (rows, cols) :: !bicliques
  done;
  List.rev !bicliques

let is_cover m bicliques =
  (* inside the ones *)
  List.for_all
    (fun (rows, cols) ->
       List.for_all
         (fun r -> List.for_all (fun c -> Matrix.get m r c) cols)
         rows)
    bicliques
  && begin
    (* covering *)
    let covered =
      Array.init (Matrix.rows m) (fun _ -> Bitset.create (Matrix.cols m))
    in
    List.iter
      (fun (rows, cols) ->
         let cs = Bitset.of_list (Matrix.cols m) cols in
         List.iter (fun r -> covered.(r) <- Bitset.union covered.(r) cs) rows)
      bicliques;
    let ok = ref true in
    for r = 0 to Matrix.rows m - 1 do
      if not (Bitset.subset (Matrix.row m r) covered.(r)) then ok := false
    done;
    !ok
  end

let cover_number_bounds m =
  (List.length (Fooling.greedy m), List.length (greedy_cover m))
