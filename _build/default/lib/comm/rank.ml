module Bitset = Ucfg_util.Bitset

let gf2 m =
  let rows = Matrix.rows m in
  (* copy rows and eliminate *)
  let work = Array.init rows (fun i -> Bitset.Mut.copy (Matrix.row m i)) in
  let rank = ref 0 in
  (* pivots.(c) = row index with leading column c, or -1 *)
  let pivot_of_row = Array.make rows (-1) in
  for i = 0 to rows - 1 do
    let continue_ = ref true in
    while !continue_ do
      match Bitset.Mut.lowest_set work.(i) with
      | None -> continue_ := false
      | Some c ->
        (* find an existing pivot row with the same leading column *)
        let found = ref (-1) in
        for r = 0 to i - 1 do
          if pivot_of_row.(r) = c then found := r
        done;
        if !found >= 0 then Bitset.Mut.xor_in_place work.(i) work.(!found)
        else begin
          pivot_of_row.(i) <- c;
          incr rank;
          continue_ := false
        end
    done
  done;
  !rank

let mod_p ?(p = (1 lsl 31) - 1) m =
  let rows = Matrix.rows m and cols = Matrix.cols m in
  let work =
    Array.init rows (fun i ->
        Array.init cols (fun j -> if Matrix.get m i j then 1 else 0))
  in
  (* Gaussian elimination over Z_p; p < 2^31 keeps products in range *)
  let rank = ref 0 in
  let r = ref 0 in
  let modinv a =
    (* Fermat: a^(p-2) mod p *)
    let rec power b e acc =
      if e = 0 then acc
      else power (b * b mod p) (e asr 1) (if e land 1 = 1 then acc * b mod p else acc)
    in
    power a (p - 2) 1
  in
  let c = ref 0 in
  while !r < rows && !c < cols do
    (* find pivot in column c at or below row r *)
    let piv = ref (-1) in
    for i = !r to rows - 1 do
      if !piv < 0 && work.(i).(!c) <> 0 then piv := i
    done;
    if !piv < 0 then incr c
    else begin
      let tmp = work.(!r) in
      work.(!r) <- work.(!piv);
      work.(!piv) <- tmp;
      let inv = modinv work.(!r).(!c) in
      for j = !c to cols - 1 do
        work.(!r).(j) <- work.(!r).(j) * inv mod p
      done;
      for i = 0 to rows - 1 do
        if i <> !r && work.(i).(!c) <> 0 then begin
          let f = work.(i).(!c) in
          for j = !c to cols - 1 do
            work.(i).(j) <- ((work.(i).(j) - (f * work.(!r).(j) mod p)) mod p + p) mod p
          done
        end
      done;
      incr rank;
      incr r;
      incr c
    end
  done;
  !rank

let disjoint_cover_lower_bound m = max (gf2 m) (mod_p m)
