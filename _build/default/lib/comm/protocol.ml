type ('x, 'y) t =
  | Output of bool
  | Alice of ('x -> bool) * ('x, 'y) t * ('x, 'y) t
  | Bob of ('y -> bool) * ('x, 'y) t * ('x, 'y) t

let rec eval p x y =
  match p with
  | Output b -> b
  | Alice (pred, f, t) -> eval (if pred x then t else f) x y
  | Bob (pred, f, t) -> eval (if pred y then t else f) x y

let rec cost = function
  | Output _ -> 0
  | Alice (_, f, t) | Bob (_, f, t) -> 1 + max (cost f) (cost t)

let rec leaves = function
  | Output _ -> 1
  | Alice (_, f, t) | Bob (_, f, t) -> leaves f + leaves t

let computes p ~xs ~ys f =
  List.for_all
    (fun x -> List.for_all (fun y -> eval p x y = f x y) ys)
    xs

(* index of the leaf reached, by numbering leaves left to right *)
let leaf_index p x y =
  let rec go p acc =
    match p with
    | Output b -> `Leaf (acc, b)
    | Alice (pred, f, t) ->
      if pred x then go t (acc + leaves f) else go f acc
    | Bob (pred, f, t) -> if pred y then go t (acc + leaves f) else go f acc
  in
  match go p 0 with `Leaf (i, b) -> (i, b)

let classes_with_index p ~xs ~ys =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun x ->
       List.iter
         (fun y ->
            let i, b = leaf_index p x y in
            let xs', ys' =
              Option.value ~default:([], []) (Hashtbl.find_opt tbl (i, b))
            in
            Hashtbl.replace tbl (i, b) (x :: xs', y :: ys'))
         ys)
    xs;
  Hashtbl.fold
    (fun (i, b) (xs', ys') acc ->
       (i, List.sort_uniq compare xs', List.sort_uniq compare ys', b) :: acc)
    tbl []

let leaf_classes p ~xs ~ys =
  List.map (fun (_, xs', ys', b) -> (xs', ys', b)) (classes_with_index p ~xs ~ys)

let classes_are_rectangles p ~xs ~ys =
  (* the class of leaf i must equal the full product of its projections:
     every pair from the product reaches leaf i again *)
  List.for_all
    (fun (i, rxs, rys, _) ->
       List.for_all
         (fun x -> List.for_all (fun y -> fst (leaf_index p x y) = i) rys)
         rxs)
    (classes_with_index p ~xs ~ys)

let alice_announces ~bits ~extract ~decide =
  let rec build i revealed =
    if i = bits then
      (* Bob decides from the transcript *)
      Bob
        ( (fun y -> decide (List.rev revealed) y),
          Output false,
          Output true )
    else
      Alice
        ( (fun x -> extract i x),
          build (i + 1) (false :: revealed),
          build (i + 1) (true :: revealed) )
  in
  build 0 []

let intersects_protocol n =
  alice_announces ~bits:n
    ~extract:(fun i x -> (x lsr i) land 1 = 1)
    ~decide:(fun revealed y ->
        List.exists2
          (fun bit i -> bit && (y lsr i) land 1 = 1)
          revealed
          (List.init n Fun.id))
