(** Fooling sets.

    A fooling set for a matrix [M] is a set of 1-entries
    [(r_1,c_1), ..., (r_k,c_k)] such that for every [i ≠ j] at least one
    of [M[r_i][c_j]], [M[r_j][c_i]] is 0.  No rectangle inside the
    1-entries can contain two fooling pairs, so [k] lower-bounds the
    rectangle cover number (disjoint or not). *)

(** [is_fooling m pairs] verifies the property. *)
val is_fooling : Matrix.t -> (int * int) list -> bool

(** [greedy m] grows a fooling set greedily over the 1-entries (a lower
    bound, not necessarily maximum). *)
val greedy : Matrix.t -> (int * int) list

(** [diagonal m] — the special case where rows and columns have the same
    index space ([rows = cols]): try the diagonal pairs [(i, i)], keeping
    the fooling subset.  This is the structure used for [L_n]. *)
val diagonal : Matrix.t -> (int * int) list
