(** Deterministic two-party communication protocols.

    A protocol is a binary tree: internal nodes name a speaker and a
    predicate of that speaker's input; leaves output a bit.  A protocol
    with [k] leaves partitions the input space into [k] rectangles — the
    origin of the rectangle method that Section 3 transplants to
    grammars. *)

type ('x, 'y) t =
  | Output of bool
  | Alice of ('x -> bool) * ('x, 'y) t * ('x, 'y) t
      (** [(pred, on_false, on_true)] *)
  | Bob of ('y -> bool) * ('x, 'y) t * ('x, 'y) t

(** [eval p x y] runs the protocol. *)
val eval : ('x, 'y) t -> 'x -> 'y -> bool

(** [cost p] is the depth (bits exchanged in the worst case). *)
val cost : ('x, 'y) t -> int

(** [leaves p] is the number of leaves. *)
val leaves : ('x, 'y) t -> int

(** [computes p ~xs ~ys f] — does [p] compute [f] on the given finite
    domain? *)
val computes : ('x, 'y) t -> xs:'x list -> ys:'y list -> ('x -> 'y -> bool) -> bool

(** [leaf_classes p ~xs ~ys] groups the input pairs by the leaf they reach
    and returns each class as [(row_set, col_set, output)].  The classes
    are rectangles by construction; {!classes_are_rectangles} re-verifies
    it extensionally. *)
val leaf_classes :
  ('x, 'y) t -> xs:'x list -> ys:'y list -> ('x list * 'y list * bool) list

(** [classes_are_rectangles p ~xs ~ys] checks that each leaf class equals
    the full product of its projections. *)
val classes_are_rectangles : ('x, 'y) t -> xs:'x list -> ys:'y list -> bool

(** [exchange_bits ~bits extract] — the canonical protocol where Alice
    announces [bits] predicates of her input and Bob then answers:
    [extract i x] is Alice's [i]-th bit; [decide revealed y] is Bob's
    verdict from the transcript. *)
val alice_announces :
  bits:int -> extract:(int -> 'x -> bool) -> decide:(bool list -> 'y -> bool) ->
  ('x, 'y) t

(** [intersects_protocol n] — the trivial protocol for the [L_n]
    predicate on mask pairs ([x] and [y] are [n]-bit masks): Alice
    announces all of [x], Bob outputs [x ∧ y ≠ 0].  Cost [n],
    [2^n] leaf... [2^(n+1)] nodes in the worst case — the point being
    that {e deterministic} communication for set intersection is
    expensive. *)
val intersects_protocol : int -> (int, int) t
