open Ucfg_word
open Ucfg_lang
module Bitset = Ucfg_util.Bitset

type t = {
  rows : int;
  cols : int;
  data : Bitset.t array;  (** one bitset per row *)
  row_labels : string array;
  col_labels : string array;
}

let max_side = 1 lsl 20

let of_predicate ~rows ~cols f =
  if rows < 0 || cols < 0 || rows > max_side || cols > max_side then
    invalid_arg "Matrix.of_predicate: bad dimensions";
  let data =
    Array.init rows (fun i ->
        Bitset.of_list cols
          (List.filter (fun j -> f i j) (Ucfg_util.Prelude.range 0 cols)))
  in
  { rows; cols; data; row_labels = [||]; col_labels = [||] }

let of_language alpha l ~split =
  match Lang.uniform_length l with
  | None -> invalid_arg "Matrix.of_language: mixed word lengths"
  | Some len ->
    if split < 0 || split > len then invalid_arg "Matrix.of_language: bad split";
    let row_labels = Array.of_seq (Word.enumerate alpha split) in
    let col_labels = Array.of_seq (Word.enumerate alpha (len - split)) in
    let rows = Array.length row_labels and cols = Array.length col_labels in
    if rows > max_side || cols > max_side then
      invalid_arg "Matrix.of_language: matrix too large";
    let data =
      Array.map
        (fun x ->
           Bitset.of_list cols
             (Array.to_list col_labels
              |> List.mapi (fun j y -> (j, y))
              |> List.filter_map (fun (j, y) ->
                  if Lang.mem (x ^ y) l then Some j else None)))
        row_labels
    in
    { rows; cols; data; row_labels; col_labels }

let rows t = t.rows
let cols t = t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Matrix.get: out of range";
  Bitset.mem t.data.(i) j

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Matrix.row: out of range";
  t.data.(i)

let ones t = Array.fold_left (fun acc r -> acc + Bitset.cardinal r) 0 t.data

let row_label t i =
  if Array.length t.row_labels = 0 then
    invalid_arg "Matrix.row_label: unlabelled matrix";
  t.row_labels.(i)

let col_label t j =
  if Array.length t.col_labels = 0 then
    invalid_arg "Matrix.col_label: unlabelled matrix";
  t.col_labels.(j)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      Format.pp_print_char fmt (if get t i j then '1' else '0')
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
