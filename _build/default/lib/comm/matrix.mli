(** Communication matrices.

    For a language [L] of words of length [N] and a split position [i],
    the communication matrix has a row per prefix [x ∈ Σ^i], a column per
    suffix [y ∈ Σ^(N-i)], and entry 1 iff [xy ∈ L].  This is the object
    on which the classical rank bound (Theorem 17's standard proof) and
    fooling-set bounds live. *)

open Ucfg_word
open Ucfg_lang

type t

(** [of_language alpha l ~split] builds the matrix; all words of [l] must
    have the same length [>= split].
    @raise Invalid_argument on mixed lengths or an oversized matrix
    (more than [2^20] rows or columns). *)
val of_language : Alphabet.t -> Lang.t -> split:int -> t

(** [of_predicate ~rows ~cols f] builds an explicit boolean matrix. *)
val of_predicate : rows:int -> cols:int -> (int -> int -> bool) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> bool

(** [row t i] is row [i] as a bitset over the columns. *)
val row : t -> int -> Ucfg_util.Bitset.t

(** [ones t] counts the 1-entries. *)
val ones : t -> int

(** [row_label t i] / [col_label t j] — the words indexing the matrix
    (only for matrices built by {!of_language}). *)
val row_label : t -> int -> string

val col_label : t -> int -> string

val pp : Format.formatter -> t -> unit
