lib/comm/matrix.mli: Alphabet Format Lang Ucfg_lang Ucfg_util Ucfg_word
