lib/comm/splits.ml: Float Fooling Lang List Matrix Rank Ucfg_lang Ucfg_util Ucfg_word
