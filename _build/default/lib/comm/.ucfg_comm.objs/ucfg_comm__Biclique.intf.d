lib/comm/biclique.mli: Matrix
