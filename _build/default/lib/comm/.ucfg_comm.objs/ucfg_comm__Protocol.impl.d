lib/comm/protocol.ml: Fun Hashtbl List Option
