lib/comm/cover_search.mli:
