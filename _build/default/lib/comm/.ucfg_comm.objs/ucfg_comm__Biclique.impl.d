lib/comm/biclique.ml: Array Fooling List Matrix Ucfg_util
