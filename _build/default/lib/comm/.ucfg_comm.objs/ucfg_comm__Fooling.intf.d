lib/comm/fooling.mli: Matrix
