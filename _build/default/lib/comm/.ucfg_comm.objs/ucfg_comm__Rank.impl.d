lib/comm/rank.ml: Array Matrix Ucfg_util
