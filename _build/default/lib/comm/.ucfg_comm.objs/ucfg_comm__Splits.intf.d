lib/comm/splits.mli: Ucfg_lang Ucfg_word
