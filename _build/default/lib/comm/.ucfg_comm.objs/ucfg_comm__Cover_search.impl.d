lib/comm/cover_search.ml: Hashtbl Int List Partition Set Ucfg_lang Ucfg_rect
