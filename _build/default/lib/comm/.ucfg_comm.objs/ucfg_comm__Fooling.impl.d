lib/comm/fooling.ml: Array List Matrix Ucfg_util
