lib/comm/protocol.mli:
