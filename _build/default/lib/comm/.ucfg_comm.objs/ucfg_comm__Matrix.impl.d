lib/comm/matrix.ml: Array Format Lang List Ucfg_lang Ucfg_util Ucfg_word Word
