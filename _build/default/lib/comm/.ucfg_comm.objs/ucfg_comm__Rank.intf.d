lib/comm/rank.mli: Matrix
