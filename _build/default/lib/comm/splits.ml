open Ucfg_lang

type row = {
  split : int;
  rows : int;
  cols : int;
  rank_gf2 : int;
  fooling : int;
}

let cap = 1 lsl 12

let profile alpha lang =
  match Lang.uniform_length lang with
  | None -> invalid_arg "Splits.profile: mixed word lengths"
  | Some len ->
    List.filter_map
      (fun split ->
         let k = Ucfg_word.Alphabet.size alpha in
         let rows = int_of_float (Float.pow (float_of_int k) (float_of_int split)) in
         let cols =
           int_of_float (Float.pow (float_of_int k) (float_of_int (len - split)))
         in
         if rows > cap || cols > cap then None
         else begin
           let m = Matrix.of_language alpha lang ~split in
           Some
             {
               split;
               rows = Matrix.rows m;
               cols = Matrix.cols m;
               rank_gf2 = Rank.gf2 m;
               fooling = List.length (Fooling.greedy m);
             }
         end)
      (Ucfg_util.Prelude.range 1 len)

let balanced_min_rank alpha lang =
  match Lang.uniform_length lang with
  | None -> invalid_arg "Splits.balanced_min_rank: mixed word lengths"
  | Some len ->
    let balanced =
      List.filter
        (fun r -> 3 * r.split >= len && 3 * r.split <= 2 * len)
        (profile alpha lang)
    in
    (match balanced with
     | [] -> 0
     | r :: rest ->
       List.fold_left (fun acc r -> min acc r.rank_gf2) r.rank_gf2 rest)
