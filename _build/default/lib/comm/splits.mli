(** Rank and fooling profiles across every split position.

    The multi-partition model of Section 4 lets each rectangle choose its
    own (balanced) split; the classical single-partition bounds below show
    how much each individual split position certifies — the per-split rank
    profile is the fixed-partition shadow of Proposition 16. *)

type row = {
  split : int;
  rows : int;
  cols : int;
  rank_gf2 : int;
  fooling : int;  (** greedy fooling set size *)
}

(** [profile alpha lang] computes one {!row} per split position
    [1 .. len-1] of a fixed-length language.  Matrices capped at 2^12
    rows/columns; larger splits are skipped. *)
val profile : Ucfg_word.Alphabet.t -> Ucfg_lang.Lang.t -> row list

(** [balanced_min_rank alpha lang] — the minimum GF(2) rank over the
    balanced splits (positions [p] with [len/3 <= p <= 2len/3]): a valid
    lower bound on disjoint covers in which all rectangles use the {e
    best} single balanced split. *)
val balanced_min_rank : Ucfg_word.Alphabet.t -> Ucfg_lang.Lang.t -> int
