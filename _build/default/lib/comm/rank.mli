(** Matrix rank bounds.

    Theorem 17 of the paper is "an immediate consequence of the so-called
    rank bound" (Mehlhorn–Schmidt): the number of rectangles in any
    disjoint cover of the 1-entries of a communication matrix is at least
    the matrix's rank over any field.  We compute the rank over GF(2)
    (bitset elimination) and modulo a large prime (a lower bound on —
    and in practice equal to — the rank over ℚ). *)

(** [gf2 m] — rank over GF(2). *)
val gf2 : Matrix.t -> int

(** [mod_p ?p m] — rank modulo the prime [p]
    (default [2^31 - 1]). *)
val mod_p : ?p:int -> Matrix.t -> int

(** [disjoint_cover_lower_bound m] — the best rank bound we can certify:
    [max (gf2 m) (mod_p m)]. *)
val disjoint_cover_lower_bound : Matrix.t -> int
