open Ucfg_util
open Ucfg_word
open Grammar
module B = Grammar.Builder

let general rng ~nonterminals ~max_rules ~max_rhs_len =
  if nonterminals < 1 then invalid_arg "Random_grammar.general";
  let b = B.create Alphabet.binary in
  let nts =
    Array.init nonterminals (fun i -> B.fresh b (Printf.sprintf "N%d" i))
  in
  for i = 0 to nonterminals - 1 do
    let nrules = Rng.int rng (max_rules + 1) in
    for _ = 1 to nrules do
      let len = Rng.int rng (max_rhs_len + 1) in
      let rhs =
        List.init len (fun _ ->
            (* bias towards terminals so the language stays small; only
               higher-numbered nonterminals keep the grammar acyclic *)
            if i = nonterminals - 1 || Rng.int rng 3 < 2 then
              T (if Rng.bool rng then 'a' else 'b')
            else N nts.(i + 1 + Rng.int rng (nonterminals - i - 1)))
      in
      B.add_rule b nts.(i) rhs
    done
  done;
  B.finish b ~start:nts.(0)

let fixed_length rng ~word_len ~variants =
  if word_len < 1 || variants < 1 then invalid_arg "Random_grammar.fixed_length";
  let b = B.create Alphabet.binary in
  (* by_len.(l) = nonterminals generating words of length exactly l+1 *)
  let by_len = Array.make word_len [] in
  for l = 1 to word_len do
    let k = if l = word_len then 1 else 1 + Rng.int rng variants in
    for v = 1 to k do
      let nt = B.fresh b (Printf.sprintf "L%d_%d" l v) in
      by_len.(l - 1) <- nt :: by_len.(l - 1);
      if l = 1 then begin
        B.add_rule b nt [ T (if Rng.bool rng then 'a' else 'b') ];
        if Rng.bool rng then
          B.add_rule b nt [ T (if Rng.bool rng then 'a' else 'b') ]
      end
      else begin
        let nrules = 1 + Rng.int rng 2 in
        for _ = 1 to nrules do
          let split = 1 + Rng.int rng (l - 1) in
          let left = Rng.pick rng (Array.of_list by_len.(split - 1)) in
          let right = Rng.pick rng (Array.of_list by_len.(l - split - 1)) in
          B.add_rule b nt [ N left; N right ]
        done
      end
    done
  done;
  match by_len.(word_len - 1) with
  | start :: _ -> B.finish b ~start
  | [] -> assert false
