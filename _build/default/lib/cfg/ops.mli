(** Closure operations on grammars: union and concatenation.

    (The Bar–Hillel intersection with an automaton lives in
    {!Ucfg_automata.Bar_hillel}, next to the automata it consumes.)
    Both operations preserve parse-tree structure: a tree of the result
    is a choice tag plus trees of the arguments, so unambiguity is
    preserved exactly when the operands' languages are disjoint (union)
    or concatenation-unambiguous (concat) — for the fixed-length
    languages of this repository, concatenation is always unambiguous. *)

(** [union a b] accepts [L(a) ∪ L(b)] (fresh start with two unit rules);
    size [|a| + |b| + 2].
    @raise Invalid_argument on alphabet mismatch. *)
val union : Grammar.t -> Grammar.t -> Grammar.t

(** [concat a b] accepts [L(a)·L(b)]; size [|a| + |b| + 2]. *)
val concat : Grammar.t -> Grammar.t -> Grammar.t
