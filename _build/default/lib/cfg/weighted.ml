open Grammar

module Make (R : Semiring.S) = struct
  let default_weight _ = R.one

  let split_rules g =
    let term = ref [] and bin = ref [] in
    List.iter
      (fun r ->
         match r.rhs with
         | [ T c ] -> term := (r, c) :: !term
         | [ N b; N c ] -> bin := (r, b, c) :: !bin
         | _ -> ())
      (rules g);
    (List.rev !term, List.rev !bin)

  let word_weight ?(rule_weight = default_weight) g w =
    if not (Grammar.is_cnf g) then
      invalid_arg "Weighted.word_weight: grammar not in CNF";
    let n = String.length w in
    if n = 0 then
      if Grammar.has_rule g (start g) [] then
        rule_weight { lhs = start g; rhs = [] }
      else R.zero
    else begin
      let nn = nonterminal_count g in
      let term, bin = split_rules g in
      (* table.(pos).(len-1).(a) *)
      let table =
        Array.init n (fun pos ->
            Array.init (n - pos) (fun _ -> Array.make nn R.zero))
      in
      for pos = 0 to n - 1 do
        List.iter
          (fun (r, c) ->
             if Char.equal w.[pos] c then
               table.(pos).(0).(r.lhs) <-
                 R.plus table.(pos).(0).(r.lhs) (rule_weight r))
          term
      done;
      for len = 2 to n do
        for pos = 0 to n - len do
          let cell = table.(pos).(len - 1) in
          for split = 1 to len - 1 do
            let left = table.(pos).(split - 1) in
            let right = table.(pos + split).(len - split - 1) in
            List.iter
              (fun (r, b, c) ->
                 let contribution =
                   R.times (rule_weight r) (R.times left.(b) right.(c))
                 in
                 cell.(r.lhs) <- R.plus cell.(r.lhs) contribution)
              bin
          done
        done
      done;
      table.(0).(n - 1).(start g)
    end

  let length_weight ?(rule_weight = default_weight) g len =
    if not (Grammar.is_cnf g) then
      invalid_arg "Weighted.length_weight: grammar not in CNF";
    if len = 0 then
      if Grammar.has_rule g (start g) [] then
        rule_weight { lhs = start g; rhs = [] }
      else R.zero
    else begin
      let nn = nonterminal_count g in
      let term, bin = split_rules g in
      (* d.(a).(l) = Σ over derivations of length-l words from a *)
      let d = Array.make_matrix nn (len + 1) R.zero in
      List.iter
        (fun (r, _) -> d.(r.lhs).(1) <- R.plus d.(r.lhs).(1) (rule_weight r))
        term;
      for l = 2 to len do
        List.iter
          (fun (r, b, c) ->
             let acc = ref d.(r.lhs).(l) in
             for k = 1 to l - 1 do
               acc :=
                 R.plus !acc
                   (R.times (rule_weight r) (R.times d.(b).(k) d.(c).(l - k)))
             done;
             d.(r.lhs).(l) <- !acc)
          bin
      done;
      d.(start g).(len)
    end
end
