type t = Leaf of char | Node of int * t list

let yield t =
  let buf = Buffer.create 16 in
  let rec go = function
    | Leaf c -> Buffer.add_char buf c
    | Node (_, children) -> List.iter go children
  in
  go t;
  Buffer.contents buf

let root = function
  | Node (a, _) -> a
  | Leaf _ -> invalid_arg "Parse_tree.root: leaf"

let rec size = function
  | Leaf _ -> 1
  | Node (_, children) -> 1 + List.fold_left (fun acc c -> acc + size c) 0 children

let rec leaf_count = function
  | Leaf _ -> 1
  | Node (_, children) ->
    List.fold_left (fun acc c -> acc + leaf_count c) 0 children

let rec depth = function
  | Leaf _ -> 1
  | Node (_, children) ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let shape_of_child = function
  | Leaf c -> Grammar.T c
  | Node (a, _) -> Grammar.N a

let rule_of_node g t =
  match t with
  | Leaf _ -> None
  | Node (a, children) ->
    let rhs = List.map shape_of_child children in
    if Grammar.has_rule g a rhs then Some rhs else None

let is_valid g a t =
  let rec go expected t =
    match (expected, t) with
    | Grammar.T c, Leaf c' -> Char.equal c c'
    | Grammar.N a, Node (a', children) ->
      a = a'
      && Grammar.has_rule g a (List.map shape_of_child children)
      && List.for_all2 go (List.map shape_of_child children) children
    | _ -> false
  in
  go (Grammar.N a) t

let nonterminals t =
  let rec go acc = function
    | Leaf _ -> acc
    | Node (a, children) -> List.fold_left go (a :: acc) children
  in
  List.rev (go [] t)

let rec contains_nonterminal t a =
  match t with
  | Leaf _ -> false
  | Node (a', children) ->
    a = a' || List.exists (fun c -> contains_nonterminal c a) children

let equal = ( = )
let compare = Stdlib.compare

let pp g fmt t =
  let rec go fmt = function
    | Leaf c -> Format.fprintf fmt "%c" c
    | Node (a, children) ->
      Format.fprintf fmt "@[<hov 1>(%s" (Grammar.name g a);
      List.iter (fun c -> Format.fprintf fmt "@ %a" go c) children;
      Format.fprintf fmt ")@]"
  in
  go fmt t
