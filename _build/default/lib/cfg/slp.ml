module Bignum = Ucfg_util.Bignum

type node = Char of char | Pair of int * int

type t = { nodes : node array; root : int; lengths : Bignum.t array }

let compute_lengths nodes =
  Array.mapi
    (fun i nd ->
       match nd with
       | Char _ -> Bignum.one
       | Pair (a, b) ->
         if a < 0 || b < 0 || a >= i || b >= i then
           invalid_arg "Slp.make: children must precede their node"
         else Bignum.zero)
    nodes
  |> fun lengths ->
  Array.iteri
    (fun i nd ->
       match nd with
       | Char _ -> ()
       | Pair (a, b) -> lengths.(i) <- Bignum.add lengths.(a) lengths.(b))
    nodes;
  lengths

let make ~nodes ~root =
  if root < 0 || root >= Array.length nodes then invalid_arg "Slp.make: root";
  { nodes; root; lengths = compute_lengths nodes }

let root t = t.root
let node_count t = Array.length t.nodes
let size t = Array.length t.nodes
let length t = t.lengths.(t.root)

let char_at t i =
  if Bignum.sign i < 0 || Bignum.compare i (length t) >= 0 then
    invalid_arg "Slp.char_at: index out of range";
  let rec go node i =
    match t.nodes.(node) with
    | Char c -> c
    | Pair (a, b) ->
      if Bignum.compare i t.lengths.(a) < 0 then go a i
      else go b (Bignum.sub i t.lengths.(a))
  in
  go t.root i

let to_word ?(max_len = 1_000_000) t =
  match Bignum.to_int (length t) with
  | Some len when len <= max_len ->
    let buf = Buffer.create len in
    let rec go node =
      match t.nodes.(node) with
      | Char c -> Buffer.add_char buf c
      | Pair (a, b) ->
        go a;
        go b
    in
    go t.root;
    Buffer.contents buf
  | _ -> invalid_arg "Slp.to_word: word too long"

(* hash-consed bottom-up builder *)
module Builder = struct
  type b = {
    mutable nodes_rev : node list;
    mutable count : int;
    cache : (node, int) Hashtbl.t;
  }

  let create () = { nodes_rev = []; count = 0; cache = Hashtbl.create 64 }

  let node b nd =
    match Hashtbl.find_opt b.cache nd with
    | Some id -> id
    | None ->
      let id = b.count in
      b.count <- id + 1;
      b.nodes_rev <- nd :: b.nodes_rev;
      Hashtbl.add b.cache nd id;
      id

  let finish b ~root =
    make ~nodes:(Array.of_list (List.rev b.nodes_rev)) ~root
end

let of_word w =
  if String.length w = 0 then invalid_arg "Slp.of_word: empty word";
  let b = Builder.create () in
  let rec build lo hi =
    (* [lo, hi): balanced split, hash-consing shares repeated subwords of
       aligned shape *)
    if hi - lo = 1 then Builder.node b (Char w.[lo])
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let l = build lo mid in
      let r = build mid hi in
      Builder.node b (Pair (l, r))
    end
  in
  let root = build 0 (String.length w) in
  Builder.finish b ~root

(* import the nodes of [src] into builder [b]; returns the new id of
   [src]'s root *)
let import b src =
  let map = Array.make (Array.length src.nodes) (-1) in
  Array.iteri
    (fun i nd ->
       let nd' =
         match nd with
         | Char c -> Char c
         | Pair (x, y) -> Pair (map.(x), map.(y))
       in
       map.(i) <- Builder.node b nd')
    src.nodes;
  map.(src.root)

let concat a b =
  let bl = Builder.create () in
  let ra = import bl a in
  let rb = import bl b in
  Builder.finish bl ~root:(Builder.node bl (Pair (ra, rb)))

let power t k =
  if k < 1 then invalid_arg "Slp.power: k must be >= 1";
  let b = Builder.create () in
  let base = import b t in
  (* binary exponentiation: squares plus combinations *)
  let rec go k =
    if k = 1 then base
    else begin
      let half = go (k / 2) in
      let sq = Builder.node b (Pair (half, half)) in
      if k mod 2 = 0 then sq else Builder.node b (Pair (sq, base))
    end
  in
  Builder.finish b ~root:(go k)

let fibonacci k =
  if k < 1 then invalid_arg "Slp.fibonacci: k must be >= 1";
  let b = Builder.create () in
  let f1 = Builder.node b (Char 'b') in
  let f2 = Builder.node b (Char 'a') in
  if k = 1 then Builder.finish b ~root:f1
  else begin
    let rec go i prev prev2 =
      if i = k then prev
      else go (i + 1) (Builder.node b (Pair (prev, prev2))) prev
    in
    Builder.finish b ~root:(go 2 f2 f1)
  end

let to_grammar alpha t =
  let names =
    Array.init (Array.length t.nodes) (fun i -> Printf.sprintf "X%d" i)
  in
  let rules =
    Array.to_list
      (Array.mapi
         (fun i nd ->
            match nd with
            | Char c -> { Grammar.lhs = i; rhs = [ Grammar.T c ] }
            | Pair (a, b) ->
              { Grammar.lhs = i; rhs = [ Grammar.N a; Grammar.N b ] })
         t.nodes)
  in
  Grammar.make ~alphabet:alpha ~names ~rules ~start:t.root

let equal_naive ?(max_len = 100_000) a b =
  Bignum.equal (length a) (length b)
  && begin
    match Bignum.to_int (length a) with
    | Some len when len <= max_len ->
      let rec go i =
        i >= len
        || (Char.equal
              (char_at a (Bignum.of_int i))
              (char_at b (Bignum.of_int i))
            && go (i + 1))
      in
      go 0
    | _ -> invalid_arg "Slp.equal_naive: word too long"
  end
