open Grammar

(* Disjointly renumber [b]'s nonterminals after [a]'s, add a fresh start. *)
let combine name_tag build_start_rules a b =
  if not (Ucfg_word.Alphabet.equal (alphabet a) (alphabet b)) then
    invalid_arg ("Ops." ^ name_tag ^ ": alphabet mismatch");
  let na = nonterminal_count a in
  let nb = nonterminal_count b in
  let fresh = na + nb in
  let names =
    Array.concat
      [
        names a;
        Array.map (fun s -> s ^ "'") (names b);
        [| String.uppercase_ascii name_tag |];
      ]
  in
  let shift_sym = function T c -> T c | N i -> N (i + na) in
  let rules =
    rules a
    @ List.map
        (fun { lhs; rhs } -> { lhs = lhs + na; rhs = List.map shift_sym rhs })
        (rules b)
    @ build_start_rules ~fresh ~start_a:(start a) ~start_b:(start b + na)
  in
  make ~alphabet:(alphabet a) ~names ~rules ~start:fresh

let union a b =
  combine "union"
    (fun ~fresh ~start_a ~start_b ->
       [ { lhs = fresh; rhs = [ N start_a ] };
         { lhs = fresh; rhs = [ N start_b ] } ])
    a b

let concat a b =
  combine "concat"
    (fun ~fresh ~start_a ~start_b ->
       [ { lhs = fresh; rhs = [ N start_a; N start_b ] } ])
    a b
