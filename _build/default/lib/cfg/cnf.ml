open Grammar

let is_cnf = Grammar.is_cnf

let nullable g =
  let n = nonterminal_count g in
  let nul = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         if (not nul.(lhs))
         && List.for_all (function N i -> nul.(i) | T _ -> false) rhs
         then begin
           nul.(lhs) <- true;
           changed := true
         end)
      (rules g)
  done;
  nul

(* START: fresh start symbol S0 with the single rule S0 -> S, so the start
   symbol never occurs on a right-hand side. *)
let add_start g =
  let n = nonterminal_count g in
  let names = Array.append (names g) [| name g (start g) ^ "'" |] in
  let rules = { lhs = n; rhs = [ N (start g) ] } :: rules g in
  make ~alphabet:(alphabet g) ~names ~rules ~start:n

(* TERM: terminals in right-hand sides of length >= 2 get proxy
   nonterminals. *)
let lift_terminals g =
  let proxies = Hashtbl.create 8 in
  let extra_names = ref [] in
  let count = ref (nonterminal_count g) in
  let proxy c =
    match Hashtbl.find_opt proxies c with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      extra_names := Printf.sprintf "T_%c" c :: !extra_names;
      Hashtbl.add proxies c id;
      id
  in
  let rules =
    List.map
      (fun { lhs; rhs } ->
         if List.length rhs >= 2 then
           { lhs;
             rhs = List.map (function T c -> N (proxy c) | N i -> N i) rhs }
         else { lhs; rhs })
      (rules g)
  in
  let proxy_rules =
    Hashtbl.fold (fun c id acc -> { lhs = id; rhs = [ T c ] } :: acc) proxies []
  in
  let names =
    Array.append (names g) (Array.of_list (List.rev !extra_names))
  in
  make ~alphabet:(alphabet g) ~names ~rules:(rules @ proxy_rules)
    ~start:(start g)

(* BIN: split right-hand sides of length > 2 with a chain of fresh
   nonterminals. *)
let binarize g =
  let extra_names = ref [] in
  let count = ref (nonterminal_count g) in
  let extra_rules = ref [] in
  let fresh base =
    let id = !count in
    incr count;
    extra_names := Printf.sprintf "%s#%d" base (id - nonterminal_count g) :: !extra_names;
    id
  in
  let rec chain base = function
    | [ x; y ] -> [ x; y ]
    | x :: (_ :: _ :: _ as rest) ->
      let a = fresh base in
      (* bind the recursive result first: the recursive call mutates
         [extra_rules], so it must not race the read of [!extra_rules] *)
      let inner = chain base rest in
      extra_rules := (a, inner) :: !extra_rules;
      [ x; N a ]
    | short -> short
  in
  let rules =
    List.map
      (fun { lhs; rhs } ->
         if List.length rhs > 2 then { lhs; rhs = chain (name g lhs) rhs }
         else { lhs; rhs })
      (rules g)
  in
  let extra =
    List.rev_map (fun (lhs, rhs) -> { lhs; rhs }) !extra_rules
  in
  let names =
    Array.append (names g) (Array.of_list (List.rev !extra_names))
  in
  make ~alphabet:(alphabet g) ~names ~rules:(rules @ extra) ~start:(start g)

(* DEL: eliminate ε-rules, keeping the language.  Operates on right-hand
   sides of length <= 2.  Only the start symbol may keep an ε-rule. *)
let eliminate_epsilon g =
  let nul = nullable g in
  let variants { lhs; rhs } =
    match rhs with
    | [] -> []
    | [ _ ] -> [ { lhs; rhs } ]
    | [ x; y ] ->
      let base = [ { lhs; rhs } ] in
      let base =
        match x with
        | N i when nul.(i) -> { lhs; rhs = [ y ] } :: base
        | _ -> base
      in
      let base =
        match y with
        | N i when nul.(i) -> { lhs; rhs = [ x ] } :: base
        | _ -> base
      in
      base
    | _ -> invalid_arg "Cnf.eliminate_epsilon: rhs longer than 2"
  in
  let rules = List.concat_map variants (rules g) in
  let rules =
    if nul.(start g) then { lhs = start g; rhs = [] } :: rules else rules
  in
  make ~alphabet:(alphabet g) ~names:(names g) ~rules ~start:(start g)

(* UNIT: eliminate unit rules A -> B by copying B's non-unit rules up every
   unit chain.  Only nonterminals with outgoing unit edges need a closure
   walk — everything else keeps its own non-unit rules — so the pass is
   linear in the grammar plus the (small) unit sub-graph. *)
let eliminate_unit g =
  let n = nonterminal_count g in
  let direct = Array.make n [] in
  List.iter
    (fun { lhs; rhs } ->
       match rhs with [ N b ] -> direct.(lhs) <- b :: direct.(lhs) | _ -> ())
    (rules g);
  let closure a =
    (* all b with a =>* b via unit rules, reflexively; visits only the
       unit sub-graph *)
    let seen = Hashtbl.create 8 in
    let rec visit b =
      if not (Hashtbl.mem seen b) then begin
        Hashtbl.add seen b ();
        List.iter visit direct.(b)
      end
    in
    visit a;
    Hashtbl.fold (fun b () acc -> b :: acc) seen []
  in
  let new_rules = ref [] in
  let copy_non_unit a b =
    List.iter
      (fun rhs ->
         match rhs with
         | [ N _ ] -> ()
         | _ -> new_rules := { lhs = a; rhs } :: !new_rules)
      (rules_of g b)
  in
  for a = 0 to n - 1 do
    match direct.(a) with
    | [] -> copy_non_unit a a
    | _ -> List.iter (copy_non_unit a) (closure a)
  done;
  make ~alphabet:(alphabet g) ~names:(names g) ~rules:!new_rules
    ~start:(start g)

let of_grammar g =
  g |> add_start |> lift_terminals |> binarize |> eliminate_epsilon
  |> eliminate_unit |> Trim.trim

let ensure g = if is_cnf g && Trim.is_trim g then g else of_grammar g
