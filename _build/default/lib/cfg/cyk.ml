open Grammar
module Bignum = Ucfg_util.Bignum

(* counts.(pos).(len-1).(a) = number of parse trees of w[pos..pos+len-1]
   rooted at a.  Laid out as a triangular array of Bignum arrays. *)
type table = {
  g : Grammar.t;
  w : string;
  counts : Bignum.t array array array;
}

let binary_rules g =
  List.filter_map
    (fun { lhs; rhs } ->
       match rhs with [ N b; N c ] -> Some (lhs, b, c) | _ -> None)
    (rules g)

let terminal_rules g =
  List.filter_map
    (fun { lhs; rhs } -> match rhs with [ T c ] -> Some (lhs, c) | _ -> None)
    (rules g)

let build g w =
  if not (Grammar.is_cnf g) then invalid_arg "Cyk.build: grammar not in CNF";
  let n = String.length w in
  let nn = nonterminal_count g in
  let counts =
    Array.init n (fun pos ->
        Array.init (n - pos) (fun _ -> Array.make nn Bignum.zero))
  in
  let bin = binary_rules g in
  let term = terminal_rules g in
  for pos = 0 to n - 1 do
    List.iter
      (fun (a, c) ->
         if Char.equal w.[pos] c then
           counts.(pos).(0).(a) <- Bignum.add counts.(pos).(0).(a) Bignum.one)
      term
  done;
  for len = 2 to n do
    for pos = 0 to n - len do
      let cell = counts.(pos).(len - 1) in
      for split = 1 to len - 1 do
        let left = counts.(pos).(split - 1) in
        let right = counts.(pos + split).(len - split - 1) in
        List.iter
          (fun (a, b, c) ->
             if Bignum.sign left.(b) > 0 && Bignum.sign right.(c) > 0 then
               cell.(a) <-
                 Bignum.add cell.(a) (Bignum.mul left.(b) right.(c)))
          bin
      done
    done
  done;
  { g; w; counts }

let start_epsilon_count g =
  if Grammar.has_rule g (start g) [] then Bignum.one else Bignum.zero

let count_trees g w =
  if String.length w = 0 then start_epsilon_count g
  else begin
    let t = build g w in
    t.counts.(0).(String.length w - 1).(start g)
  end

let recognize g w = Bignum.sign (count_trees g w) > 0

let derivable t a pos len =
  len >= 1
  && pos >= 0
  && pos + len <= String.length t.w
  && Bignum.sign t.counts.(pos).(len - 1).(a) > 0

(* Enumerate parse trees from a filled table, lazily, capped by the
   caller. *)
let trees_of_cell t a pos len =
  let g = t.g in
  let bin = binary_rules g in
  let rec gen a pos len : Parse_tree.t Seq.t =
    if len = 1 then
      (* terminal rule, and possibly binary rules do not apply at len 1 *)
      if
        List.exists
          (fun (lhs, c) -> lhs = a && Char.equal c t.w.[pos])
          (terminal_rules g)
      then Seq.return (Parse_tree.Node (a, [ Parse_tree.Leaf t.w.[pos] ]))
      else Seq.empty
    else
      List.to_seq bin
      |> Seq.filter (fun (lhs, _, _) -> lhs = a)
      |> Seq.concat_map (fun (_, b, c) ->
          Seq.init (len - 1) (fun i -> i + 1)
          |> Seq.concat_map (fun split ->
              if derivable t b pos split && derivable t c (pos + split) (len - split)
              then
                Seq.concat_map
                  (fun lt ->
                     Seq.map
                       (fun rt -> Parse_tree.Node (a, [ lt; rt ]))
                       (gen c (pos + split) (len - split)))
                  (gen b pos split)
              else Seq.empty))
  in
  gen a pos len

let parse g w =
  if String.length w = 0 then
    if Grammar.has_rule g (start g) [] then Some (Parse_tree.Node (start g, []))
    else None
  else begin
    let t = build g w in
    let n = String.length w in
    if not (derivable t (start g) 0 n) then None
    else
      match (trees_of_cell t (start g) 0 n) () with
      | Seq.Nil -> None
      | Seq.Cons (tree, _) -> Some tree
  end

let occurrence_counts g w =
  let t = build g w in
  let n = String.length w in
  let nn = nonterminal_count g in
  let inside = t.counts in
  (* outside.(pos).(len-1).(a): parse-ways of the context around the
     span *)
  let outside =
    Array.init n (fun pos ->
        Array.init (n - pos) (fun _ -> Array.make nn Bignum.zero))
  in
  if n > 0 then begin
    outside.(0).(n - 1).(start g) <- Bignum.one;
    let bin = binary_rules g in
    for len = n downto 2 do
      for pos = 0 to n - len do
        List.iter
          (fun (a, b, c) ->
             let out_a = outside.(pos).(len - 1).(a) in
             if Bignum.sign out_a > 0 then
               for split = 1 to len - 1 do
                 let in_b = inside.(pos).(split - 1).(b) in
                 let in_c = inside.(pos + split).(len - split - 1).(c) in
                 if Bignum.sign in_c > 0 then
                   outside.(pos).(split - 1).(b) <-
                     Bignum.add
                       outside.(pos).(split - 1).(b)
                       (Bignum.mul out_a in_c);
                 if Bignum.sign in_b > 0 then
                   outside.(pos + split).(len - split - 1).(c) <-
                     Bignum.add
                       outside.(pos + split).(len - split - 1).(c)
                       (Bignum.mul out_a in_b)
               done)
          bin
      done
    done
  end;
  let acc = ref [] in
  for pos = n - 1 downto 0 do
    for len = n - pos downto 1 do
      for a = nn - 1 downto 0 do
        let occ =
          Bignum.mul inside.(pos).(len - 1).(a) outside.(pos).(len - 1).(a)
        in
        if Bignum.sign occ > 0 then acc := (a, pos, len, occ) :: !acc
      done
    done
  done;
  !acc

let all_trees ?(limit = 1000) g w =
  if String.length w = 0 then
    if Grammar.has_rule g (start g) [] then [ Parse_tree.Node (start g, []) ]
    else []
  else begin
    let t = build g w in
    let n = String.length w in
    trees_of_cell t (start g) 0 n
    |> Seq.take limit |> List.of_seq
  end
