(** Removing useless nonterminals.

    Section 2 assumes grammars have no redundant nonterminals: every
    nonterminal appears in some parse tree.  That is exactly the
    productive-and-reachable ("useful") restriction computed here. *)

(** [productive g] marks nonterminals that derive at least one terminal
    word. *)
val productive : Grammar.t -> bool array

(** [reachable g] marks nonterminals reachable from the start symbol
    through rules whose nonterminals are all productive. *)
val reachable : Grammar.t -> bool array

(** [useful g] marks nonterminals appearing in at least one parse tree. *)
val useful : Grammar.t -> bool array

(** [trim g] restricts [g] to its useful nonterminals (the start symbol is
    always kept, so a grammar with empty language trims to a start symbol
    with no rules).  Parse trees are preserved exactly. *)
val trim : Grammar.t -> Grammar.t

(** [is_trim g] holds when every nonterminal of [g] is useful. *)
val is_trim : Grammar.t -> bool
