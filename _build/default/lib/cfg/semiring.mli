(** Commutative semirings for weighted parsing.

    The factorised-representation literature the paper builds on uses the
    same circuits for provenance (Olteanu–Závodný [28]): evaluating a
    representation over different semirings answers different questions.
    {!Weighted} runs CYK over any of these; recognition, tree counting,
    best-derivation and inside-probability all become instances. *)

module type S = sig
  type t

  val zero : t
  (** neutral for {!plus}; annihilates {!times}. *)

  val one : t
  (** neutral for {!times}. *)

  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Recognition: ∨ / ∧ over booleans. *)
module Boolean : S with type t = bool

(** Derivation counting: + / × over big integers. *)
module Counting : S with type t = Ucfg_util.Bignum.t

(** Min-plus (tropical): cheapest derivation; [None] is +∞. *)
module Tropical : S with type t = int option

(** Inside probabilities: + / × over floats (no normalisation checks). *)
module Inside : S with type t = float

(** Univariate counting polynomials over big integers: with terminal-rule
    weights set to the indeterminate [x] for a marked letter, the weight
    of a length class is the generating polynomial of derivations by
    marked-letter count (the Parikh census of one letter). *)
module Polynomial : sig
  include S with type t = Ucfg_util.Bignum.t array

  (** the indeterminate [x]. *)
  val x : t

  (** [coeff p k] — the coefficient of [x^k] ([zero] beyond the degree). *)
  val coeff : t -> int -> Ucfg_util.Bignum.t
end

(** Free commutative-monoid-ish provenance: the multiset of derivations,
    each derivation being the multiset of rule tags used.  Exponential in
    general — meant for tiny examples and tests.  [plus] is multiset
    union, [times] the pairwise merge of tag multisets. *)
module Provenance : sig
  include S with type t = int list list

  (** [of_tag t] — the single derivation using rule tag [t] once. *)
  val of_tag : int -> t
end
