open Grammar

let trees g =
  let g = Trim.trim g in
  if nonterminal_count g = 0 then Seq.empty
  else if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Enumerate.trees: infinitely many parse trees"
  else begin
    (* expand rules in declaration order; acyclicity bounds the recursion *)
    let rec trees_of a () =
      (List.to_seq (rules_of g a)
       |> Seq.concat_map (fun rhs ->
           Seq.map
             (fun children -> Parse_tree.Node (a, children))
             (trees_of_rhs rhs)))
        ()
    and trees_of_rhs = function
      | [] -> Seq.return []
      | T c :: rest ->
        Seq.map (fun tl -> Parse_tree.Leaf c :: tl) (trees_of_rhs rest)
      | N b :: rest ->
        Seq.concat_map
          (fun hd -> Seq.map (fun tl -> hd :: tl) (trees_of_rhs rest))
          (trees_of b)
    in
    trees_of (start g)
  end

let derivation_words g = Seq.map Parse_tree.yield (trees g)

let words g () =
  (* the seen-set is allocated per traversal so the sequence stays
     persistent *)
  let seen = Hashtbl.create 256 in
  (Seq.filter
     (fun w ->
        if Hashtbl.mem seen w then false
        else begin
          Hashtbl.add seen w ();
          true
        end)
     (derivation_words g))
    ()
