(** Chomsky normal form (Section 2).

    Every CFG converts to an equivalent CNF grammar with at most quadratic
    size blow-up; the paper assumes CNF throughout Sections 3–4.  The
    conversion here is the standard START/TERM/BIN/DEL/UNIT pipeline
    followed by a trim.  On ε-free grammars the parse trees of the result
    are in bijection with the original ones, so unambiguity is
    preserved. *)

(** [is_cnf g] — see {!Grammar.is_cnf}. *)
val is_cnf : Grammar.t -> bool

(** [of_grammar g] converts [g] to Chomsky normal form and trims the
    result.  The language is preserved exactly (including [ε]). *)
val of_grammar : Grammar.t -> Grammar.t

(** [ensure g] is [g] when it is already CNF and trim, otherwise
    [of_grammar g]. *)
val ensure : Grammar.t -> Grammar.t

(** [nullable g] marks nonterminals deriving [ε]. *)
val nullable : Grammar.t -> bool array
