(** Earley recognition for arbitrary grammars.

    CYK needs Chomsky normal form; the Earley recogniser works on any
    grammar as written, which lets the test-suite cross-check CNF
    conversion (same membership answers before and after) and gives the
    examples a parser that follows the paper's rule shapes directly. *)

type stats = {
  accepted : bool;
  items : int;  (** total Earley items over all chart columns *)
}

(** [recognize g w] decides [w ∈ L(g)]. *)
val recognize : Grammar.t -> string -> bool

(** [recognize_stats g w] also reports the chart size. *)
val recognize_stats : Grammar.t -> string -> stats
