open Grammar
module Bignum = Ucfg_util.Bignum

let derivations_by_length g max_len =
  if not (Grammar.is_cnf g) then
    invalid_arg "Count.derivations_by_length: grammar not in CNF";
  let nn = nonterminal_count g in
  (* d.(a).(l) = number of parse trees of words of length l from a;
     computed by fixpoint iteration that converges because trees of length
     l only use trees of strictly smaller length in CNF *)
  let d = Array.make_matrix nn (max_len + 1) Bignum.zero in
  List.iter
    (fun { lhs; rhs } ->
       match rhs with
       | [ T _ ] when max_len >= 1 ->
         d.(lhs).(1) <- Bignum.add d.(lhs).(1) Bignum.one
       | _ -> ())
    (rules g);
  let bin =
    List.filter_map
      (fun { lhs; rhs } ->
         match rhs with [ N b; N c ] -> Some (lhs, b, c) | _ -> None)
      (rules g)
  in
  for len = 2 to max_len do
    List.iter
      (fun (a, b, c) ->
         let acc = ref d.(a).(len) in
         for k = 1 to len - 1 do
           acc := Bignum.add !acc (Bignum.mul d.(b).(k) d.(c).(len - k))
         done;
         d.(a).(len) <- !acc)
      bin
  done;
  let res = Array.make (max_len + 1) Bignum.zero in
  for l = 1 to max_len do
    res.(l) <- d.(start g).(l)
  done;
  if Grammar.has_rule g (start g) [] then res.(0) <- Bignum.one;
  res

let words_unambiguous g max_len =
  Bignum.sum (Array.to_list (derivations_by_length g max_len))

let words_by_enumeration ?max_len ?max_card g =
  let lang = Analysis.language_exn ?max_len ?max_card g in
  Bignum.of_int (Ucfg_lang.Lang.cardinal lang)
