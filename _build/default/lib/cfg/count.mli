(** Counting words of a grammar's language.

    For unambiguous grammars, counting is polynomial: the number of
    derivations of each length satisfies a convolution recurrence over the
    CNF rules, and unambiguity makes derivations and words coincide.  For
    ambiguous grammars the same recurrence counts derivations (an upper
    bound) and exact word counting needs enumeration — the succinctness /
    tractability trade-off the paper's introduction highlights. *)

module Bignum = Ucfg_util.Bignum

(** [derivations_by_length g max_len] is an array [d] with [d.(l)] the
    number of leftmost derivations (equivalently parse trees) of words of
    length [l], for [0 <= l <= max_len].
    @raise Invalid_argument when [g] is not in CNF. *)
val derivations_by_length : Grammar.t -> int -> Bignum.t array

(** [words_unambiguous g max_len] counts the words of length [<= max_len]
    of an unambiguous CNF grammar in polynomial time.  (On an ambiguous
    grammar this overcounts — it counts parse trees.) *)
val words_unambiguous : Grammar.t -> int -> Bignum.t

(** [words_by_enumeration g] counts words exactly by materialising the
    language (exponential in general — the #P-flavoured baseline). *)
val words_by_enumeration :
  ?max_len:int -> ?max_card:int -> Grammar.t -> Bignum.t
