(** Enumerating the language and the parse trees of a grammar.

    Unambiguity matters for enumeration (this is one of the paper's
    motivations): an unambiguous grammar can be enumerated by walking its
    derivations without any duplicate suppression, whereas an ambiguous
    grammar enumerated the same way emits each word once per parse tree. *)

(** [trees g] lazily enumerates every parse tree of [g].
    @raise Invalid_argument when there are infinitely many (the sequence
    is produced for trimmed acyclic grammars). *)
val trees : Grammar.t -> Parse_tree.t Seq.t

(** [derivation_words g] is [Seq.map yield (trees g)]: each word appears
    once per parse tree.  Duplicate-free exactly when [g] is
    unambiguous. *)
val derivation_words : Grammar.t -> string Seq.t

(** [words g] enumerates the language without duplicates, whatever the
    ambiguity, by filtering [derivation_words] through a seen-set. *)
val words : Grammar.t -> string Seq.t
