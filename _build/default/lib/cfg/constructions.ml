open Ucfg_word
open Ucfg_lang
open Grammar
module B = Grammar.Builder

let example3 t =
  if t < 0 then invalid_arg "Constructions.example3: t must be >= 0";
  let b = B.create Alphabet.binary in
  let a_ = Array.init (t + 1) (fun i -> B.fresh b (Printf.sprintf "A%d" i)) in
  let b_ = Array.init (t + 1) (fun i -> B.fresh b (Printf.sprintf "B%d" i)) in
  for i = 1 to t do
    B.add_rule b a_.(i) [ N b_.(i - 1); N a_.(i - 1) ];
    B.add_rule b a_.(i) [ N a_.(i - 1); N b_.(i - 1) ];
    B.add_rule b b_.(i) [ N b_.(i - 1); N b_.(i - 1) ]
  done;
  B.add_rule b a_.(0) [ N b_.(0); T 'a'; N b_.(t); T 'a' ];
  B.add_rule b a_.(0) [ T 'a'; N b_.(t); T 'a'; N b_.(0) ];
  B.add_rule b b_.(0) [ T 'a' ];
  B.add_rule b b_.(0) [ T 'b' ];
  B.finish b ~start:a_.(t)

(* A balanced binary tree over a list of leaf payloads; used to combine the
   blocks of the Appendix A construction. *)
type 'a tree = Leaf of 'a | Branch of 'a tree * 'a tree

let rec balanced_tree = function
  | [] -> invalid_arg "balanced_tree: empty"
  | [ x ] -> Leaf x
  | l ->
    let rec split i acc = function
      | rest when i = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (i - 1) (x :: acc) rest
    in
    let half = List.length l / 2 in
    let left, right = split half [] l in
    Branch (balanced_tree left, balanced_tree right)

let log_cfg n =
  if n < 1 then invalid_arg "Constructions.log_cfg: n must be >= 1";
  let b = B.create Alphabet.binary in
  if n = 1 then begin
    (* L_1 = {aa} *)
    let s = B.fresh b "S" in
    B.add_rule b s [ T 'a'; T 'a' ];
    B.finish b ~start:s
  end
  else begin
    (* blocks: binary decomposition of n-1 *)
    let blocks = Ucfg_util.Prelude.binary_digits (n - 1) in
    let max_i = List.fold_left max 0 blocks in
    (* B_i generates all words of length 2^i *)
    let b_ = Array.init (max_i + 1) (fun i -> B.fresh b (Printf.sprintf "B%d" i)) in
    B.add_rule b b_.(0) [ T 'a' ];
    B.add_rule b b_.(0) [ T 'b' ];
    for i = 1 to max_i do
      B.add_rule b b_.(i) [ N b_.(i - 1); N b_.(i - 1) ]
    done;
    (* S generates w' of length n-1 *)
    let s = B.fresh b "S" in
    B.add_rule b s (List.map (fun i -> N b_.(i)) blocks);
    (* A_i: a block of length 2^i with aS a inserted somewhere *)
    let a_ = Array.init (max_i + 1) (fun i -> B.fresh b (Printf.sprintf "A%d" i)) in
    B.add_rule b a_.(0) [ N b_.(0); T 'a'; N s; T 'a' ];
    B.add_rule b a_.(0) [ T 'a'; N s; T 'a'; N b_.(0) ];
    for i = 1 to max_i do
      B.add_rule b a_.(i) [ N b_.(i - 1); N a_.(i - 1) ];
      B.add_rule b a_.(i) [ N a_.(i - 1); N b_.(i - 1) ]
    done;
    (* the combination tree over the blocks: C_v = insertion happens below
       v, D_v = plain blocks *)
    let tree = balanced_tree blocks in
    let counter = ref 0 in
    let rec build = function
      | Leaf i ->
        incr counter;
        let c = B.fresh b (Printf.sprintf "C_leaf%d" !counter) in
        let d = B.fresh b (Printf.sprintf "D_leaf%d" !counter) in
        B.add_rule b c [ N a_.(i) ];
        B.add_rule b d [ N b_.(i) ];
        (c, d)
      | Branch (l, r) ->
        let cl, dl = build l in
        let cr, dr = build r in
        incr counter;
        let c = B.fresh b (Printf.sprintf "C%d" !counter) in
        let d = B.fresh b (Printf.sprintf "D%d" !counter) in
        B.add_rule b c [ N cl; N dr ];
        B.add_rule b c [ N dl; N cr ];
        B.add_rule b d [ N dl; N dr ];
        (c, d)
    in
    let c_root, _d_root = build tree in
    B.finish b ~start:c_root
  end

let example4 n =
  if n < 1 then invalid_arg "Constructions.example4: n must be >= 1";
  let b = B.create Alphabet.binary in
  let s = B.fresh b "S" in
  (* C_j generates Σ^j, for 1 <= j <= n-1 *)
  let c_ = Array.make n (-1) in
  if n >= 2 then begin
    c_.(1) <- B.fresh b "C1";
    B.add_rule b c_.(1) [ T 'a' ];
    B.add_rule b c_.(1) [ T 'b' ];
    for j = 2 to n - 1 do
      c_.(j) <- B.fresh b (Printf.sprintf "C%d" j);
      B.add_rule b c_.(j) [ T 'a'; N c_.(j - 1) ];
      B.add_rule b c_.(j) [ T 'b'; N c_.(j - 1) ]
    done
  end;
  (* A_w -> w, allocated on demand *)
  let word_nt = Hashtbl.create 256 in
  let nt_of_word w =
    match Hashtbl.find_opt word_nt w with
    | Some id -> id
    | None ->
      let id = B.fresh b (Printf.sprintf "A_%s" w) in
      Hashtbl.add word_nt w id;
      B.add_rule b id (List.init (String.length w) (fun i -> T w.[i]));
      id
  in
  (* optionally reference A_w: elided entirely when w = ε *)
  let opt_word w = if String.length w = 0 then [] else [ N (nt_of_word w) ] in
  let opt_c j = if j = 0 then [] else [ N c_.(j) ] in
  (* all pairs (p, q) of length len with no position j where p.[j] and
     q.[j] are both 'a' — three choices per position.  The paper's
     Example 4 takes only q = complement p, which under-generates (it
     misses early pairs (b,b)); the correction enumerates every
     "a-disjoint" pair, keeping the grammar unambiguous and exact. *)
  let nomatch_pairs len =
    let rec gen len =
      if len = 0 then Seq.return ("", "")
      else
        Seq.concat_map
          (fun (p, q) ->
             List.to_seq
               [ ("a" ^ p, "b" ^ q); ("b" ^ p, "a" ^ q); ("b" ^ p, "b" ^ q) ])
          (gen (len - 1))
    in
    gen len
  in
  for i = 1 to n do
    let a_i = B.fresh b (Printf.sprintf "A%d" i) in
    B.add_rule b s [ N a_i ];
    Seq.iter
      (fun (p, q) ->
         if i < n then
           B.add_rule b a_i
             (opt_word p @ [ T 'a' ] @ opt_c (n - i) @ opt_word q
              @ [ T 'a' ] @ opt_c (n - i))
         else
           B.add_rule b a_i
             (opt_word p @ [ T 'a' ] @ opt_word q @ [ T 'a' ]))
      (nomatch_pairs (i - 1))
  done;
  B.finish b ~start:s

let example4_literal n =
  if n < 1 then invalid_arg "Constructions.example4_literal: n must be >= 1";
  let b = B.create Alphabet.binary in
  let s = B.fresh b "S" in
  let c_ = Array.make n (-1) in
  if n >= 2 then begin
    c_.(1) <- B.fresh b "C1";
    B.add_rule b c_.(1) [ T 'a' ];
    B.add_rule b c_.(1) [ T 'b' ];
    for j = 2 to n - 1 do
      c_.(j) <- B.fresh b (Printf.sprintf "C%d" j);
      B.add_rule b c_.(j) [ T 'a'; N c_.(j - 1) ];
      B.add_rule b c_.(j) [ T 'b'; N c_.(j - 1) ]
    done
  end;
  let word_nt = Hashtbl.create 256 in
  let nt_of_word w =
    match Hashtbl.find_opt word_nt w with
    | Some id -> id
    | None ->
      let id = B.fresh b (Printf.sprintf "A_%s" w) in
      Hashtbl.add word_nt w id;
      B.add_rule b id (List.init (String.length w) (fun i -> T w.[i]));
      id
  in
  let opt_word w = if String.length w = 0 then [] else [ N (nt_of_word w) ] in
  let opt_c j = if j = 0 then [] else [ N c_.(j) ] in
  for i = 1 to n do
    let a_i = B.fresh b (Printf.sprintf "A%d" i) in
    B.add_rule b s [ N a_i ];
    Seq.iter
      (fun w ->
         (* the paper's rule: second-half prefix is the exact complement *)
         let wbar = Word.complement w in
         if i < n then
           B.add_rule b a_i
             (opt_word w @ [ T 'a' ] @ opt_c (n - i) @ opt_word wbar
              @ [ T 'a' ] @ opt_c (n - i))
         else
           B.add_rule b a_i
             (opt_word w @ [ T 'a' ] @ opt_word wbar @ [ T 'a' ]))
      (Word.enumerate Alphabet.binary (i - 1))
  done;
  B.finish b ~start:s

let of_language alpha l =
  let b = B.create alpha in
  let s = B.fresh b "S" in
  Lang.iter
    (fun w -> B.add_rule b s (List.init (String.length w) (fun i -> T w.[i])))
    l;
  B.finish b ~start:s

let sigma_chain alpha k =
  if k < 1 then invalid_arg "Constructions.sigma_chain: k must be >= 1";
  let b = B.create alpha in
  let nts =
    Array.init k (fun i -> B.fresh b (Printf.sprintf "Sig%d" (k - i)))
  in
  (* nts.(0) generates Σ^k, nts.(k-1) generates Σ^1 *)
  for i = 0 to k - 2 do
    List.iter
      (fun c -> B.add_rule b nts.(i) [ T c; N nts.(i + 1) ])
      (Alphabet.chars alpha)
  done;
  List.iter (fun c -> B.add_rule b nts.(k - 1) [ T c ]) (Alphabet.chars alpha);
  B.finish b ~start:nts.(0)
