(** Direct access (unranking), ranking, and exact uniform sampling for
    unambiguous grammars.

    One of the paper's motivations: unambiguous representations support
    counting-based algorithms.  This module realises the strongest of
    them — given an unambiguous CNF grammar, words are totally ordered by
    a canonical derivation order, and the [i]-th word is computed in time
    polynomial in the grammar and word length from the counting tables
    (no enumeration), like ranked access over factorised representations.

    The canonical order is length-first, then, recursively at each
    nonterminal: by rule (declaration order), then by split position, then
    by the left subderivation, then the right.  On an {e ambiguous}
    grammar the functions index {e derivations} rather than words (each
    word appears once per parse tree) — which the experiments use to show
    the difference. *)

module Bignum = Ucfg_util.Bignum

type t

(** [create g ~max_len] precomputes counting tables for words of length
    up to [max_len].
    @raise Invalid_argument when [g] is not in CNF. *)
val create : Grammar.t -> max_len:int -> t

val grammar : t -> Grammar.t
val max_len : t -> int

(** [count_length t len] — derivations of words of length [len]. *)
val count_length : t -> int -> Bignum.t

(** [total t] — derivations of words of length [<= max_len]. *)
val total : t -> Bignum.t

(** [nth t i] — the [i]-th word (0-based) in the canonical order;
    [None] if [i >= total t]. *)
val nth : t -> Bignum.t -> string option

(** [rank t w] — the inverse of {!nth} for unambiguous grammars:
    the canonical index of [w], or [None] if [w ∉ L(g)] (or longer than
    [max_len]). *)
val rank : t -> string -> Bignum.t option

(** [sample t rng] — an exactly uniformly random derivation (= word, when
    the grammar is unambiguous); [None] on an empty language. *)
val sample : t -> Ucfg_util.Rng.t -> string option
