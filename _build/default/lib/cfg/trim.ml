open Grammar

let productive g =
  let n = nonterminal_count g in
  let prod = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         if not prod.(lhs) then begin
           let all_ok =
             List.for_all (function T _ -> true | N i -> prod.(i)) rhs
           in
           if all_ok then begin
             prod.(lhs) <- true;
             changed := true
           end
         end)
      (rules g)
  done;
  prod

let reachable_from g prod root =
  let n = nonterminal_count g in
  let reach = Array.make n false in
  let rec visit a =
    if not reach.(a) then begin
      reach.(a) <- true;
      List.iter
        (fun rhs ->
           (* only rules usable in a parse tree: all nonterminals productive *)
           if List.for_all (function T _ -> true | N i -> prod.(i)) rhs then
             List.iter (function N i -> visit i | T _ -> ()) rhs)
        (rules_of g a)
    end
  in
  if prod.(root) then visit root;
  reach

let reachable g = reachable_from g (productive g) (start g)

let useful g =
  let prod = productive g in
  let reach = reachable_from g prod (start g) in
  Array.init (nonterminal_count g) (fun i -> prod.(i) && reach.(i))

let trim g =
  let keep = useful g in
  keep.(start g) <- true;
  let n = nonterminal_count g in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      remap.(i) <- !next;
      incr next
    end
  done;
  let new_names = Array.make !next "" in
  for i = 0 to n - 1 do
    if keep.(i) then new_names.(remap.(i)) <- name g i
  done;
  let keep_rule { lhs; rhs } =
    keep.(lhs)
    && List.for_all (function N i -> keep.(i) | T _ -> true) rhs
  in
  let remap_sym = function T c -> T c | N i -> N remap.(i) in
  let new_rules =
    List.filter keep_rule (rules g)
    |> List.map (fun { lhs; rhs } ->
        { lhs = remap.(lhs); rhs = List.map remap_sym rhs })
  in
  make ~alphabet:(alphabet g) ~names:new_names ~rules:new_rules
    ~start:remap.(start g)

let is_trim g = Array.for_all (fun b -> b) (useful g)
