(** Parse-tree counting for general (non-CNF) grammars.

    CNF conversion does not always preserve the number of parse trees
    (UNIT elimination may merge duplicate rules), so ambiguity questions
    about a grammar as written need counting on the original rules.  This
    works for any grammar whose trimmed dependency graph is acyclic —
    which covers every finite-language grammar in this repository. *)

module Bignum = Ucfg_util.Bignum

(** [trees g w] is the number of parse trees of [w] in [g], counted on the
    original rules.
    @raise Invalid_argument when [g] has infinitely many parse trees. *)
val trees : Grammar.t -> string -> Bignum.t

(** [recognize g w] is [trees g w > 0]. *)
val recognize : Grammar.t -> string -> bool
