(** Textual grammar format: parse and print.

    A practical front door for the CLI and for test fixtures.  The format
    is the one {!Grammar.pp} prints:

    {v
    start: <S>
    <S> -> <A> <B>
    <S> -> <B> <A>
    <A> -> a
    <B> -> b | ε
    v}

    Nonterminals in angle brackets, terminals as bare characters, [ε] (or
    [eps]) for the empty right-hand side, [|] separating alternative
    right-hand sides of one line (sugar for several rules, as in the
    paper's Definition 2 remark).  Lines starting with [#] are
    comments. *)

(** [parse alpha s] — @raise Invalid_argument with a line-numbered message
    on syntax errors, unknown terminals, or a missing start
    declaration. *)
val parse : Ucfg_word.Alphabet.t -> string -> Grammar.t

(** [to_string g] — {!Grammar.to_string}, re-exported for symmetry;
    [parse alpha (to_string g)] reproduces [g] up to nonterminal
    numbering. *)
val to_string : Grammar.t -> string
