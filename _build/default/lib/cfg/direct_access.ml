open Grammar
module Bignum = Ucfg_util.Bignum

type t = {
  g : Grammar.t;
  max_len : int;
  (* counts.(a).(l) = derivations of words of length l from a (l >= 1) *)
  counts : Bignum.t array array;
  has_eps : bool;  (** start ε-rule *)
}

let create g ~max_len =
  if not (Grammar.is_cnf g) then
    invalid_arg "Direct_access.create: grammar not in CNF";
  if max_len < 0 then invalid_arg "Direct_access.create: negative max_len";
  let nn = nonterminal_count g in
  let counts = Array.make_matrix nn (max_len + 1) Bignum.zero in
  List.iter
    (fun { lhs; rhs } ->
       match rhs with
       | [ T _ ] when max_len >= 1 ->
         counts.(lhs).(1) <- Bignum.add counts.(lhs).(1) Bignum.one
       | _ -> ())
    (rules g);
  let bin =
    List.filter_map
      (fun { lhs; rhs } ->
         match rhs with [ N b; N c ] -> Some (lhs, b, c) | _ -> None)
      (rules g)
  in
  for len = 2 to max_len do
    List.iter
      (fun (a, b, c) ->
         let acc = ref counts.(a).(len) in
         for k = 1 to len - 1 do
           acc := Bignum.add !acc (Bignum.mul counts.(b).(k) counts.(c).(len - k))
         done;
         counts.(a).(len) <- !acc)
      bin
  done;
  { g; max_len; counts; has_eps = Grammar.has_rule g (start g) [] }

let grammar t = t.g
let max_len t = t.max_len

let count_length t len =
  if len < 0 || len > t.max_len then Bignum.zero
  else if len = 0 then if t.has_eps then Bignum.one else Bignum.zero
  else t.counts.(start t.g).(len)

let total t =
  Bignum.sum
    (List.map (count_length t) (Ucfg_util.Prelude.range_incl 0 t.max_len))

(* the idx-th word derived from nonterminal [a] at length [l], in canonical
   order: rule order, then split position, then left, then right *)
let rec word_at t a l idx =
  let remaining = ref idx in
  let result = ref None in
  List.iter
    (fun rhs ->
       if !result = None then
         match rhs with
         | [ T c ] ->
           if l = 1 then begin
             if Bignum.is_zero !remaining then result := Some (String.make 1 c)
             else remaining := Bignum.pred !remaining
           end
         | [ N b; N c ] ->
           let k = ref 1 in
           while !result = None && !k <= l - 1 do
             let cnt_b = t.counts.(b).(!k) in
             let cnt_c = t.counts.(c).(l - !k) in
             let cnt = Bignum.mul cnt_b cnt_c in
             if Bignum.compare !remaining cnt < 0 then begin
               let idx_b, idx_c = Bignum.divmod !remaining cnt_c in
               result :=
                 Some (word_at t b !k idx_b ^ word_at t c (l - !k) idx_c)
             end
             else remaining := Bignum.sub !remaining cnt;
             incr k
           done
         | _ -> ())
    (rules_of t.g a);
  match !result with
  | Some w -> w
  | None -> invalid_arg "Direct_access.word_at: index out of range"

let nth t i =
  if Bignum.sign i < 0 then None
  else begin
    let rec over_lengths l i =
      if l > t.max_len then None
      else begin
        let c = count_length t l in
        if Bignum.compare i c < 0 then
          if l = 0 then Some "" else Some (word_at t (start t.g) l i)
        else over_lengths (l + 1) (Bignum.sub i c)
      end
    in
    over_lengths 0 i
  end

let rank t w =
  let l = String.length w in
  if l > t.max_len then None
  else if l = 0 then if t.has_eps then Some Bignum.zero else None
  else begin
    let table = Cyk.build t.g w in
    if not (Cyk.derivable table (start t.g) 0 l) then None
    else begin
      (* rank of the canonical (first) derivation of w[pos..pos+len) from a *)
      let rec rank_in a pos len =
        let acc = ref Bignum.zero in
        let result = ref None in
        List.iter
          (fun rhs ->
             if !result = None then
               match rhs with
               | [ T c ] ->
                 if len = 1 then begin
                   if Char.equal w.[pos] c then result := Some !acc
                   else acc := Bignum.succ !acc
                 end
               | [ N b; N c ] ->
                 let k = ref 1 in
                 while !result = None && !k <= len - 1 do
                   let cnt_b = t.counts.(b).(!k) in
                   let cnt_c = t.counts.(c).(len - !k) in
                   if
                     Cyk.derivable table b pos !k
                     && Cyk.derivable table c (pos + !k) (len - !k)
                   then begin
                     let rb = rank_in b pos !k in
                     let rc = rank_in c (pos + !k) (len - !k) in
                     result :=
                       Some
                         (Bignum.add !acc
                            (Bignum.add (Bignum.mul rb cnt_c) rc))
                   end
                   else acc := Bignum.add !acc (Bignum.mul cnt_b cnt_c);
                   incr k
                 done
               | _ -> ())
          (rules_of t.g a);
        match !result with
        | Some r -> r
        | None -> assert false (* derivable was checked *)
      in
      let before =
        Bignum.sum
          (List.map (count_length t) (Ucfg_util.Prelude.range 0 l))
      in
      Some (Bignum.add before (rank_in (start t.g) 0 l))
    end
  end

let sample t rng =
  let n = total t in
  if Bignum.is_zero n then None else nth t (Bignum.random rng n)
