(** Deciding unambiguity of finite-language grammars.

    Unambiguity is semantic, which is what makes lower bounds hard — but
    for finite languages it is decidable by exact counting: a grammar is
    unambiguous iff its total number of parse trees equals the number of
    words in its language (every word has at least one tree, so equality
    forces exactly one each). *)

type verdict = {
  unambiguous : bool;
  total_trees : Ucfg_util.Bignum.t;
  word_count : int;
}

(** [check ?max_len ?max_card g] decides unambiguity of [g].
    @raise Invalid_argument when the language is infinite or too large to
    materialise under the caps (see {!Analysis.language}), or when the
    trimmed grammar has a dependency cycle — in which case it has
    infinitely many parse trees and is trivially ambiguous on a finite
    language. *)
val check : ?max_len:int -> ?max_card:int -> Grammar.t -> verdict

(** [is_unambiguous g] is [(check g).unambiguous]. *)
val is_unambiguous : ?max_len:int -> ?max_card:int -> Grammar.t -> bool

(** [ambiguous_witness g] is some word with at least two parse trees, when
    one exists.  Found by per-word tree counting over the language. *)
val ambiguous_witness :
  ?max_len:int -> ?max_card:int -> Grammar.t -> string option

type profile = {
  word_total : int;
  ambiguous_words : int;  (** words with at least two parse trees *)
  max_trees : Ucfg_util.Bignum.t;  (** the ambiguity degree *)
  histogram : (string * int) list;
      (** tree-count (as a decimal string) → number of words, ascending *)
}

(** [profile g] measures the distribution of parse-tree counts over the
    words of a finite-language grammar — how ambiguous the grammar is,
    beyond the yes/no of {!check}.  Same caps and exceptions as
    {!check}. *)
val profile : ?max_len:int -> ?max_card:int -> Grammar.t -> profile
