open Ucfg_word

let fail line msg =
  invalid_arg (Printf.sprintf "Grammar_io.parse: line %d: %s" line msg)

(* tokenize one right-hand side: "<A> a <B>" -> [N "A"; T 'a'; N "B"];
   "ε" / "eps" / empty -> [] *)
let parse_rhs alpha line s =
  let s = String.trim s in
  if s = "" || s = "ε" || s = "eps" then []
  else begin
    let tokens =
      String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
    in
    List.map
      (fun tok ->
         let len = String.length tok in
         if len >= 2 && tok.[0] = '<' && tok.[len - 1] = '>' then
           `N (String.sub tok 1 (len - 2))
         else if len = 1 && Alphabet.mem alpha tok.[0] then `T tok.[0]
         else fail line (Printf.sprintf "unrecognised token %S" tok))
      tokens
  end

let parse alpha s =
  let lines = String.split_on_char '\n' s in
  let b = Grammar.Builder.create alpha in
  let start = ref None in
  List.iteri
    (fun i raw ->
       let line = i + 1 in
       let text = String.trim raw in
       if text = "" || text.[0] = '#' then ()
       else if String.length text > 6 && String.sub text 0 6 = "start:" then begin
         match
           parse_rhs alpha line (String.sub text 6 (String.length text - 6))
         with
         | [ `N name ] -> start := Some (Grammar.Builder.fresh_memo b name)
         | _ -> fail line "start: expects a single <nonterminal>"
       end
       else begin
         match String.index_opt text '-' with
         | Some i
           when i + 1 < String.length text
                && text.[i + 1] = '>' -> begin
             let lhs_text = String.trim (String.sub text 0 i) in
             let rhs_text =
               String.sub text (i + 2) (String.length text - i - 2)
             in
             match parse_rhs alpha line lhs_text with
             | [ `N name ] ->
               let lhs = Grammar.Builder.fresh_memo b name in
               List.iter
                 (fun alt ->
                    let rhs =
                      List.map
                        (function
                          | `N name ->
                            Grammar.N (Grammar.Builder.fresh_memo b name)
                          | `T c -> Grammar.T c)
                        (parse_rhs alpha line alt)
                    in
                    Grammar.Builder.add_rule b lhs rhs)
                 (String.split_on_char '|' rhs_text)
             | _ -> fail line "left-hand side must be one <nonterminal>"
           end
         | _ -> fail line "expected '<A> -> ...' or 'start: <A>'"
       end)
    lines;
  match !start with
  | None -> invalid_arg "Grammar_io.parse: missing 'start:' declaration"
  | Some s -> Grammar.Builder.finish b ~start:s

let to_string = Grammar.to_string
