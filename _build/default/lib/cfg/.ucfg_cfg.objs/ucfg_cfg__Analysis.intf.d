lib/cfg/analysis.mli: Grammar Lang Parse_tree Ucfg_lang Ucfg_util
