lib/cfg/direct_access.mli: Grammar Ucfg_util
