lib/cfg/enumerate.ml: Analysis Grammar Hashtbl List Parse_tree Seq Trim
