lib/cfg/count_word.ml: Analysis Array Char Grammar Hashtbl String Trim Ucfg_util
