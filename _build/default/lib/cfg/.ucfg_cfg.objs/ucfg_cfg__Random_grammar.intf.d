lib/cfg/random_grammar.mli: Grammar Rng Ucfg_util
