lib/cfg/constructions.ml: Alphabet Array Grammar Hashtbl Lang List Printf Seq String Ucfg_lang Ucfg_util Ucfg_word Word
