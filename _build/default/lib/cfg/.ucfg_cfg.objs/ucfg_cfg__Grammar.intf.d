lib/cfg/grammar.mli: Alphabet Format Ucfg_word
