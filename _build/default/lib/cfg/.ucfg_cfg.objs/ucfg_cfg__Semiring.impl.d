lib/cfg/semiring.ml: Array Bool Float Format List Printf String Ucfg_util
