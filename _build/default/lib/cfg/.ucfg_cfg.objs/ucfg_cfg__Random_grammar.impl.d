lib/cfg/random_grammar.ml: Alphabet Array Grammar List Printf Rng Ucfg_util Ucfg_word
