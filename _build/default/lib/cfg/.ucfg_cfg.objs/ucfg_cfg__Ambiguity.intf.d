lib/cfg/ambiguity.mli: Grammar Ucfg_util
