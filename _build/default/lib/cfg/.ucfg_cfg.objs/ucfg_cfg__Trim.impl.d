lib/cfg/trim.ml: Array Grammar List
