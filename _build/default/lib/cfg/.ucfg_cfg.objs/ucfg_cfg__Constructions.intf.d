lib/cfg/constructions.mli: Grammar Lang Ucfg_lang Ucfg_word
