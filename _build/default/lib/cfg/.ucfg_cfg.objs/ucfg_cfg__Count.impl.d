lib/cfg/count.ml: Analysis Array Grammar List Ucfg_lang Ucfg_util
