lib/cfg/weighted.ml: Array Char Grammar List Semiring String
