lib/cfg/length_annotate.ml: Analysis Array Cnf Grammar Hashtbl List Printf
