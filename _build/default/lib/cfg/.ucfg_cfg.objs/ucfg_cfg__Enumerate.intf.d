lib/cfg/enumerate.mli: Grammar Parse_tree Seq
