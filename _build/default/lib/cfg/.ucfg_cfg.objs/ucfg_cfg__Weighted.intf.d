lib/cfg/weighted.mli: Grammar Semiring
