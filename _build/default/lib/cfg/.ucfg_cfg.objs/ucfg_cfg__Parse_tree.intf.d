lib/cfg/parse_tree.mli: Format Grammar
