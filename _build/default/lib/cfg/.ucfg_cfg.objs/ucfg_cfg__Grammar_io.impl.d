lib/cfg/grammar_io.ml: Alphabet Grammar List Printf String Ucfg_word
