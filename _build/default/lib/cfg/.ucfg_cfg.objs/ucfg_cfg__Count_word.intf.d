lib/cfg/count_word.mli: Grammar Ucfg_util
