lib/cfg/length_annotate.mli: Grammar
