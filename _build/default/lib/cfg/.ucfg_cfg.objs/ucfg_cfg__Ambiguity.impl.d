lib/cfg/ambiguity.ml: Analysis Count_word Hashtbl Lang List Option Trim Ucfg_lang Ucfg_util
