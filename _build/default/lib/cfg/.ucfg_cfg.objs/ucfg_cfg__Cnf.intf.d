lib/cfg/cnf.mli: Grammar
