lib/cfg/semiring.mli: Format Ucfg_util
