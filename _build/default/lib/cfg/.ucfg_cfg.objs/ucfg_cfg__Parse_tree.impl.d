lib/cfg/parse_tree.ml: Buffer Char Format Grammar List Stdlib
