lib/cfg/cyk.ml: Array Char Grammar List Parse_tree Seq String Ucfg_util
