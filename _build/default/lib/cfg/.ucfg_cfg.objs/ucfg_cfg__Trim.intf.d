lib/cfg/trim.mli: Grammar
