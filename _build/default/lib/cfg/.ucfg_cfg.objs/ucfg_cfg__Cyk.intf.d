lib/cfg/cyk.mli: Grammar Parse_tree Ucfg_util
