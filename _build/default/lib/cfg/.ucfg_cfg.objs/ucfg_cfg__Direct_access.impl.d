lib/cfg/direct_access.ml: Array Char Cyk Grammar List String Ucfg_util
