lib/cfg/slp.ml: Array Buffer Char Grammar Hashtbl List Printf String Ucfg_util
