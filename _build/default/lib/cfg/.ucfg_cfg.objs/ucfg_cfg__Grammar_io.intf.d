lib/cfg/grammar_io.mli: Grammar Ucfg_word
