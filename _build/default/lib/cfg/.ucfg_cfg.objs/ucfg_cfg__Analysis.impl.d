lib/cfg/analysis.ml: Array Grammar Hashtbl Lang List Option Parse_tree Printf String Trim Ucfg_lang Ucfg_util
