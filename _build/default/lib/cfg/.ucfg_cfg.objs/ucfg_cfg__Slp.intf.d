lib/cfg/slp.mli: Grammar Ucfg_util Ucfg_word
