lib/cfg/count.mli: Grammar Ucfg_util
