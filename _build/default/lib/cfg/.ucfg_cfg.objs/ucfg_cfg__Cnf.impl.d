lib/cfg/cnf.ml: Array Grammar Hashtbl List Printf Trim
