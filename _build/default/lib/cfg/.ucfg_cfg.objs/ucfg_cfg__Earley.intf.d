lib/cfg/earley.mli: Grammar
