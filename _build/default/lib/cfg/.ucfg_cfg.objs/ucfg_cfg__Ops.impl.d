lib/cfg/ops.ml: Array Grammar List String Ucfg_word
