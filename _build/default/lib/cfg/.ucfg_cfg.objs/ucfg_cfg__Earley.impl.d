lib/cfg/earley.ml: Array Char Grammar Hashtbl List Queue String
