lib/cfg/grammar.ml: Alphabet Array Format Hashtbl List Printf Ucfg_word
