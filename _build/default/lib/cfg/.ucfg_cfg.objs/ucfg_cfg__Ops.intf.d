lib/cfg/ops.mli: Grammar
