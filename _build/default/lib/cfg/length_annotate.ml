open Grammar

type t = {
  grammar : Grammar.t;
  word_length : int;
  origin : (int * int) array;
  span_length : int array;
}

let annotate g =
  let cnf = Cnf.ensure g in
  match Analysis.fixed_lengths cnf with
  | None ->
    invalid_arg "Length_annotate.annotate: language not of fixed word length"
  | Some (cnf, lens) ->
    if nonterminal_count cnf = 0 || rules_of cnf (start cnf) = [] then
      invalid_arg "Length_annotate.annotate: empty language";
    let n = lens.(start cnf) in
    (* allocate copies (a, i) on demand, reachably from (start, 1) *)
    let ids : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    let origin_rev = ref [] in
    let count = ref 0 in
    let new_rules = ref [] in
    let rec copy (a, i) =
      match Hashtbl.find_opt ids (a, i) with
      | Some id -> id
      | None ->
        let id = !count in
        incr count;
        Hashtbl.add ids (a, i) id;
        origin_rev := (a, i) :: !origin_rev;
        List.iter
          (fun rhs ->
             match rhs with
             | [ T c ] -> new_rules := (id, [ T c ]) :: !new_rules
             | [ N b; N c ] ->
               let bid = copy (b, i) in
               let cid = copy (c, i + lens.(b)) in
               new_rules := (id, [ N bid; N cid ]) :: !new_rules
             | [] ->
               invalid_arg "Length_annotate.annotate: ε in the language"
             | _ -> assert false (* CNF *))
          (rules_of cnf a);
        id
    in
    let start_id = copy (start cnf, 1) in
    let origin = Array.of_list (List.rev !origin_rev) in
    let names =
      Array.map
        (fun (a, i) -> Printf.sprintf "%s@%d" (name cnf a) i)
        origin
    in
    let rules =
      List.rev_map (fun (lhs, rhs) -> { lhs; rhs }) !new_rules
    in
    let grammar =
      make ~alphabet:(alphabet cnf) ~names ~rules ~start:start_id
    in
    let span_length = Array.map (fun (a, _) -> lens.(a)) origin in
    { grammar; word_length = n; origin; span_length }
