open Grammar
module Bignum = Ucfg_util.Bignum

let trees g w =
  (* trimming removes unproductive cycles and preserves parse trees *)
  let g = Trim.trim g in
  if nonterminal_count g = 0 then Bignum.zero
  else if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Count_word.trees: infinitely many parse trees"
  else begin
    let n = String.length w in
    let rules_arr = Array.of_list (rules g) in
    let rhs_arr = Array.map (fun r -> Array.of_list r.rhs) rules_arr in
    let nt_memo : (int * int * int, Bignum.t) Hashtbl.t = Hashtbl.create 256 in
    let seq_memo : (int * int * int * int, Bignum.t) Hashtbl.t =
      Hashtbl.create 256
    in
    (* #ways nonterminal a derives w[i..j) *)
    let rec nt a i j =
      match Hashtbl.find_opt nt_memo (a, i, j) with
      | Some v -> v
      | None ->
        (* seed with zero to cut ε-cycles: trimmed acyclic grammars never
           revisit, but the guard is harmless *)
        Hashtbl.replace nt_memo (a, i, j) Bignum.zero;
        let total = ref Bignum.zero in
        Array.iteri
          (fun ridx r ->
             if r.lhs = a then total := Bignum.add !total (seq ridx 0 i j))
          rules_arr;
        Hashtbl.replace nt_memo (a, i, j) !total;
        !total
    (* #ways the suffix rhs_arr.(ridx)[k..] derives w[i..j) *)
    and seq ridx k i j =
      let rhs = rhs_arr.(ridx) in
      let len = Array.length rhs in
      if k = len then if i = j then Bignum.one else Bignum.zero
      else
        match Hashtbl.find_opt seq_memo (ridx, k, i, j) with
        | Some v -> v
        | None ->
          let total = ref Bignum.zero in
          begin
            match rhs.(k) with
            | T c ->
              if i < j && Char.equal w.[i] c then
                total := seq ridx (k + 1) (i + 1) j
            | N b ->
              for mid = i to j do
                let left = nt b i mid in
                if Bignum.sign left > 0 then
                  total :=
                    Bignum.add !total (Bignum.mul left (seq ridx (k + 1) mid j))
              done
          end;
          Hashtbl.replace seq_memo (ridx, k, i, j) !total;
          !total
    in
    nt (start g) 0 n
  end

let recognize g w = Bignum.sign (trees g w) > 0
