(** Random finite-language grammars for property-based tests.

    Acyclicity is enforced structurally (a nonterminal only references
    higher-numbered ones), so every generated grammar has a finite language
    and finitely many parse trees. *)

open Ucfg_util

(** [general rng ~nonterminals ~max_rules ~max_rhs_len] draws a random
    acyclic grammar over the binary alphabet.  Some nonterminals may be
    useless (no rules, or unreachable) on purpose, to exercise trimming. *)
val general :
  Rng.t -> nonterminals:int -> max_rules:int -> max_rhs_len:int -> Grammar.t

(** [fixed_length rng ~word_len ~variants] draws a random CNF grammar all
    of whose words have length exactly [word_len]; [variants] controls how
    many distinct nonterminals share each span length (more variants, more
    rules).  The language is never empty. *)
val fixed_length : Rng.t -> word_len:int -> variants:int -> Grammar.t
