module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Boolean = struct
  type t = bool

  let zero = false
  let one = true
  let plus = ( || )
  let times = ( && )
  let equal = Bool.equal
  let pp fmt b = Format.pp_print_bool fmt b
end

module Counting = struct
  module B = Ucfg_util.Bignum

  type t = B.t

  let zero = B.zero
  let one = B.one
  let plus = B.add
  let times = B.mul
  let equal = B.equal
  let pp = B.pp
end

module Tropical = struct
  type t = int option

  let zero = None
  let one = Some 0

  let plus a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)

  let times a b =
    match (a, b) with None, _ | _, None -> None | Some a, Some b -> Some (a + b)

  let equal = ( = )

  let pp fmt = function
    | None -> Format.pp_print_string fmt "∞"
    | Some v -> Format.pp_print_int fmt v
end

module Inside = struct
  type t = float

  let zero = 0.
  let one = 1.
  let plus = ( +. )
  let times = ( *. )
  let equal a b = Float.abs (a -. b) < 1e-12
  let pp fmt v = Format.fprintf fmt "%g" v
end

module Polynomial = struct
  module B = Ucfg_util.Bignum

  (* little-endian coefficient arrays without trailing-zero guarantees;
     equality normalises *)
  type t = B.t array

  let zero = [||]
  let one = [| B.one |]
  let x = [| B.zero; B.one |]

  let coeff p k = if k < 0 || k >= Array.length p then B.zero else p.(k)

  let plus a b =
    Array.init
      (max (Array.length a) (Array.length b))
      (fun k -> B.add (coeff a k) (coeff b k))

  let times a b =
    if Array.length a = 0 || Array.length b = 0 then [||]
    else
      Array.init
        (Array.length a + Array.length b - 1)
        (fun k ->
           let acc = ref B.zero in
           for i = 0 to k do
             acc := B.add !acc (B.mul (coeff a i) (coeff b (k - i)))
           done;
           !acc)

  let degree p =
    let rec go i = if i >= 0 && B.is_zero p.(i) then go (i - 1) else i in
    go (Array.length p - 1)

  let equal a b =
    let da = degree a and db = degree b in
    da = db
    && List.for_all (fun k -> B.equal (coeff a k) (coeff b k))
         (Ucfg_util.Prelude.range_incl 0 (max da 0))

  let pp fmt p =
    let d = degree p in
    if d < 0 then Format.pp_print_string fmt "0"
    else
      Format.pp_print_string fmt
        (String.concat " + "
           (List.filter_map
              (fun k ->
                 if B.is_zero (coeff p k) then None
                 else Some (Printf.sprintf "%s·x^%d" (B.to_string (coeff p k)) k))
              (Ucfg_util.Prelude.range_incl 0 d)))
end

module Provenance = struct
  (* a value is a multiset of derivations; a derivation is a sorted
     multiset of rule tags *)
  type t = int list list

  let zero = []
  let one = [ [] ]

  let normalize d = List.sort compare d
  let plus a b = List.sort compare (a @ b)

  let times a b =
    List.concat_map
      (fun da -> List.map (fun db -> normalize (da @ db)) b)
      a
    |> List.sort compare

  let equal a b = List.sort compare a = List.sort compare b

  let pp fmt t =
    Format.fprintf fmt "{%s}"
      (String.concat "; "
         (List.map
            (fun d -> String.concat "," (List.map string_of_int d))
            t))

  let of_tag t = [ [ t ] ]
end
