(** Semiring-weighted parsing (CYK over an arbitrary commutative semiring).

    For a CNF grammar with a weight per rule, the weight of a word is the
    semiring sum over its parse trees of the product of the rule weights
    used.  Instantiations:
    - {!Semiring.Boolean} with weight 1: recognition;
    - {!Semiring.Counting} with weight 1: parse-tree counting;
    - {!Semiring.Tropical}: the cheapest derivation;
    - {!Semiring.Inside}: inside probabilities of a weighted grammar;
    - {!Semiring.Provenance}: the full derivation provenance
      (how-provenance of the parse, in database terms).

    On unambiguous grammars the sum has one addend per word — the paper's
    tractability side, generalised. *)

module Make (R : Semiring.S) : sig
  (** [word_weight ?rule_weight g w] — the weight of [w].  [rule_weight]
      defaults to [R.one] everywhere (so Boolean/Counting give
      recognition/counting).
      @raise Invalid_argument if [g] is not in CNF. *)
  val word_weight :
    ?rule_weight:(Grammar.rule -> R.t) -> Grammar.t -> string -> R.t

  (** [length_weight ?rule_weight g len] — the semiring sum of the weights
      of all derivations of words of length exactly [len]. *)
  val length_weight :
    ?rule_weight:(Grammar.rule -> R.t) -> Grammar.t -> int -> R.t
end
