(** Parse trees of context free grammars.

    A parse tree witnesses a derivation: internal nodes are labelled by a
    nonterminal together with the right-hand side used, leaves are
    terminals.  Unambiguity (Section 2) is the property that every word of
    the language has exactly one parse tree. *)

type t =
  | Leaf of char
  | Node of int * t list
      (** [Node (a, children)]: nonterminal [a] expanded by the rule whose
          right-hand side matches the children shapes. *)

(** [yield t] is the word at the leaves, left to right. *)
val yield : t -> string

(** [root t] is the root nonterminal.  @raise Invalid_argument on a leaf. *)
val root : t -> int

(** [size t] is the number of nodes (internal and leaves). *)
val size : t -> int

(** [leaf_count t] is the number of leaves, i.e. the yield length. *)
val leaf_count : t -> int

(** [depth t] is the height of the tree (a leaf has depth 1). *)
val depth : t -> int

(** [rule_of_node g t] recovers the right-hand side used at the root of
    [t]; checks it is an actual rule of [g]. *)
val rule_of_node : Grammar.t -> t -> Grammar.sym list option

(** [is_valid g a t] checks [t] is a parse tree of [g] rooted at
    nonterminal [a]: every internal node uses an existing rule. *)
val is_valid : Grammar.t -> int -> t -> bool

(** [nonterminals t] lists the nonterminals occurring in [t] (with
    repetition, preorder). *)
val nonterminals : t -> int list

(** [contains_nonterminal t a] tests whether [a] labels some node. *)
val contains_nonterminal : t -> int -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Grammar.t -> Format.formatter -> t -> unit
