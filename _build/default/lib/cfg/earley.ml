open Grammar

type stats = { accepted : bool; items : int }

(* Earley items are (rule index, dot position, origin column).  Columns are
   processed strictly in order: additions only ever target the current
   column (predict / complete) or the next one (scan), so when a completion
   looks back at its origin column, that column is already closed — except
   for empty spans (origin = current column), which are caught at
   prediction time by [completed_empty_span] (the classical nullable
   fix). *)
let recognize_stats g w =
  let n = String.length w in
  let rules_arr = Array.of_list (rules g) in
  let rhs_arr = Array.map (fun r -> Array.of_list r.rhs) rules_arr in
  let nrules = Array.length rules_arr in
  let chart = Array.init (n + 1) (fun _ -> Hashtbl.create 64) in
  let pending = Array.init (n + 1) (fun _ -> Queue.create ()) in
  let add col item =
    if not (Hashtbl.mem chart.(col) item) then begin
      Hashtbl.add chart.(col) item ();
      Queue.add item pending.(col)
    end
  in
  for r = 0 to nrules - 1 do
    if rules_arr.(r).lhs = start g then add 0 (r, 0, 0)
  done;
  let expecting col a =
    Hashtbl.fold
      (fun (r, dot, org) () acc ->
         if dot < Array.length rhs_arr.(r) then
           match rhs_arr.(r).(dot) with
           | N b when b = a -> (r, dot, org) :: acc
           | _ -> acc
         else acc)
      chart.(col) []
  in
  let completed_empty_span col a =
    Hashtbl.fold
      (fun (r, dot, org) () acc ->
         acc
         || (org = col && dot = Array.length rhs_arr.(r)
             && rules_arr.(r).lhs = a))
      chart.(col) false
  in
  for col = 0 to n do
    let q = pending.(col) in
    while not (Queue.is_empty q) do
      let (r, dot, org) = Queue.pop q in
      let rhs = rhs_arr.(r) in
      if dot < Array.length rhs then begin
        match rhs.(dot) with
        | T c ->
          if col < n && Char.equal w.[col] c then add (col + 1) (r, dot + 1, org)
        | N a ->
          for r' = 0 to nrules - 1 do
            if rules_arr.(r').lhs = a then add col (r', 0, col)
          done;
          if completed_empty_span col a then add col (r, dot + 1, org)
      end
      else begin
        let a = rules_arr.(r).lhs in
        List.iter
          (fun (r', dot', org') -> add col (r', dot' + 1, org'))
          (expecting org a)
      end
    done
  done;
  let accepted =
    Hashtbl.fold
      (fun (r, dot, org) () acc ->
         acc
         || (org = 0 && dot = Array.length rhs_arr.(r)
             && rules_arr.(r).lhs = start g))
      chart.(n) false
  in
  let items =
    Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 chart
  in
  { accepted; items }

let recognize g w = (recognize_stats g w).accepted
