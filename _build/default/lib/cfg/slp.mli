(** Straight-line programs: grammar-based compression of single words.

    The related-work strand the paper contrasts itself with ([18–21]
    and the recent database applications): a CFG generating exactly one
    word is a compressed representation of that word, on which algorithms
    run without decompression.  An SLP assigns every nonterminal exactly
    one rule — a terminal character or a pair of earlier nonterminals —
    so the derived word can be doubly exponential in the program size;
    lengths are big integers and random access walks the DAG. *)

module Bignum = Ucfg_util.Bignum

type node =
  | Char of char
  | Pair of int * int  (** indices of earlier nodes *)

type t

(** [make ~nodes ~root] validates: [Pair] children must precede their
    node.  @raise Invalid_argument otherwise. *)
val make : nodes:node array -> root:int -> t

val root : t -> int
val node_count : t -> int

(** [size t] — number of nodes (the usual SLP size measure; each node is
    one rule of size ≤ 2). *)
val size : t -> int

(** [length t] — the length of the derived word, without expanding. *)
val length : t -> Bignum.t

(** [char_at t i] — the [i]-th character (0-based big-integer index) in
    time O(depth), without expanding.
    @raise Invalid_argument when out of range. *)
val char_at : t -> Bignum.t -> char

(** [to_word ?max_len t] materialises the word.
    @raise Invalid_argument when longer than [max_len] (default 10^6). *)
val to_word : ?max_len:int -> t -> string

(** [of_word w] — an SLP for [w] by balanced splitting with hash-consing,
    so repetitive words compress (e.g. [(ab)^(2^k)] to O(k) nodes).
    Requires [w] non-empty. *)
val of_word : string -> t

(** [power t k] — an SLP for [word(t)^k] of size [size t + O(log k)]
    (binary exponentiation).  Requires [k >= 1]. *)
val power : t -> int -> t

(** [concat a b] — derives [word(a) · word(b)]. *)
val concat : t -> t -> t

(** [fibonacci k] — the [k]-th Fibonacci word ([F_1 = "b"], [F_2 = "a"],
    [F_k = F_(k-1) F_(k-2)]): [O(k)] nodes for a word of length
    [Fib(k)].  Requires [k >= 1]. *)
val fibonacci : int -> t

(** [to_grammar alpha t] — the corresponding single-word CFG; its language
    is the singleton [{word(t)}]. *)
val to_grammar : Ucfg_word.Alphabet.t -> t -> Grammar.t

(** [equal_naive ?max_len a b] — equality of the derived words, decided by
    comparing lengths and then characters through {!char_at} (up to
    [max_len] characters, default 10^5).  Polynomial SLP equality
    (Plandowski) is a classical result out of scope here.
    @raise Invalid_argument when the words are longer than [max_len]. *)
val equal_naive : ?max_len:int -> t -> t -> bool
