(** Knowledge-compilation circuits (NNF / DNNF / d-DNNF).

    The paper's lower-bound technique is "inspired by methods from
    knowledge compilation [Bova–Capelli–Mengel–Slivovsky]"; this module
    provides the circuit classes those methods live in.  Circuits are
    DAGs over literals with ∧/∨ gates; {e decomposable} ∧-gates have
    variable-disjoint children (DNNF), {e deterministic} ∨-gates have
    pairwise inconsistent children (d-DNNF) — determinism is to circuits
    what unambiguity is to grammars, and it is what makes model counting
    a simple dynamic program. *)

module Bignum = Ucfg_util.Bignum

type node =
  | True
  | False
  | Lit of int * bool  (** variable, polarity ([true] = positive) *)
  | And of int list
  | Or of int list

type t

(** [make ~vars ~nodes ~root] validates: children precede their gate,
    variables in range.  @raise Invalid_argument otherwise. *)
val make : vars:int -> nodes:node array -> root:int -> t

val vars : t -> int
val node_count : t -> int
val root : t -> int

(** [node c i] — the [i]-th node.  @raise Invalid_argument. *)
val node : t -> int -> node

(** [size c] — the number of gate inputs (edges). *)
val size : t -> int

(** [support c i] — the variables below node [i], as a bitset. *)
val support : t -> int -> Ucfg_util.Bitset.t

(** [evaluate c assignment] — the root value under a total assignment
    (array of length [vars c]). *)
val evaluate : t -> bool array -> bool

(** [evaluate_at c i assignment] — the value of node [i]. *)
val evaluate_at : t -> int -> bool array -> bool

(** [is_decomposable c] — every ∧-gate has pairwise variable-disjoint
    children (the D in DNNF). *)
val is_decomposable : t -> bool

(** [is_smooth c] — every ∨-gate's children mention the same variables. *)
val is_smooth : t -> bool

(** [is_deterministic c] — every ∨-gate's children are pairwise jointly
    unsatisfiable, decided exactly by enumerating assignments over the
    gate's support (kept feasible by a per-gate cap of 2^22
    assignments).
    @raise Invalid_argument when some gate's support is too large. *)
val is_deterministic : t -> bool

(** [model_count c] — the number of satisfying total assignments, by the
    d-DNNF dynamic program with on-the-fly smoothing.  Correct when the
    circuit is decomposable and deterministic (an upper bound
    otherwise). *)
val model_count : t -> Bignum.t

(** [model_count_brute c] — by enumeration; requires [vars c <= 24]. *)
val model_count_brute : t -> Bignum.t

(** [models c] enumerates the satisfying assignments as bit masks
    (variable [v] = bit [v]); requires [vars c <= 24]. *)
val models : t -> int Seq.t

val pp : Format.formatter -> t -> unit
