(** Boolean circuits for the [L_n] predicate — and what they teach.

    Under the set view, [L_n] is the Boolean function
    [INT_n(x, y) = ∨_i (x_i ∧ y_i)] over [2n] variables (variable [i] is
    [x_i], variable [n+i] is [y_i]).

    - {!naive} is a DNNF (decomposable, tiny) but {e not} deterministic:
      the disjuncts overlap — the same overlap that makes Example 3's
      grammar ambiguous.
    - {!deterministic} resolves the overlap by first-match splitting,
      with a {e three-way} deterministic gate per earlier block
      ([x̄ȳ ∨ x̄y ∨ xȳ]) — the exact Boolean shadow of the corrected
      Example 4 — and is a d-DNNF of size only [O(n²)].

    The contrast is the point: determinism is cheap for the Boolean
    function but exponential for the {e grammar} (Theorem 12).  The
    paper's hardness lives in the word/concatenation structure (ordered
    partitions), not in the Boolean structure of set intersection. *)

(** [naive n] — [∨_i (x_i ∧ y_i)]; decomposable, non-deterministic,
    size [Θ(n)]. *)
val naive : int -> Circuit.t

(** [deterministic n] — the first-match d-DNNF; decomposable and
    deterministic, size [Θ(n²)]. *)
val deterministic : int -> Circuit.t

(** [structured n] — a {e structured} deterministic circuit for [INT_n]
    over the vtree [{x-vars} | {y-vars}] ({!structured_vtree}): a root
    disjunction with one conjunct per non-empty [X]-assignment [α]
    ([2^n − 1] of them), each [And(x-profile α, first-match-in-α over
    y)].  Exponential — {e necessarily} so: its root-rectangle
    decomposition is a disjoint cover of the [INT_n] matrix, which needs
    [2^n − 1] rectangles by the rank bound.  The structure requirement
    (the circuit analogue of the grammar's ordered partitions) is exactly
    what makes determinism expensive; compare the unstructured
    {!deterministic} at [O(n²)]. *)
val structured : int -> Circuit.t

(** [structured_vtree n] — the vtree [structured n] respects: a right
    comb over the [x] variables joined to a right comb over the [y]
    variables. *)
val structured_vtree : int -> Vtree.t
