module Bitset = Ucfg_util.Bitset

type t = Leaf of int | Node of t * t

let rec balanced = function
  | [] -> invalid_arg "Vtree.balanced: no variables"
  | [ v ] -> Leaf v
  | vars ->
    let n = List.length vars in
    let left = Ucfg_util.Prelude.take (n / 2) vars in
    let right =
      List.filteri (fun i _ -> i >= n / 2) vars
    in
    Node (balanced left, balanced right)

let rec right_linear = function
  | [] -> invalid_arg "Vtree.right_linear: no variables"
  | [ v ] -> Leaf v
  | v :: rest -> Node (Leaf v, right_linear rest)

let rec variables = function
  | Leaf v -> [ v ]
  | Node (l, r) -> variables l @ variables r

let var_set ~vars t = Bitset.of_list vars (variables t)

let root_split = function
  | Leaf _ -> invalid_arg "Vtree.root_split: single leaf"
  | Node (l, r) -> (variables l, variables r)

let rec subtrees t =
  match t with
  | Leaf _ -> [ t ]
  | Node (l, r) -> (t :: subtrees l) @ subtrees r

let rec pp fmt = function
  | Leaf v -> Format.fprintf fmt "%d" v
  | Node (l, r) -> Format.fprintf fmt "(%a %a)" pp l pp r
