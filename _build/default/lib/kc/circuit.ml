module Bignum = Ucfg_util.Bignum
module Bitset = Ucfg_util.Bitset

type node = True | False | Lit of int * bool | And of int list | Or of int list

type t = {
  vars : int;
  nodes : node array;
  root : int;
  supports : Bitset.t array;  (** per-node variable support *)
}

let make ~vars ~nodes ~root =
  if vars < 0 then invalid_arg "Circuit.make: negative vars";
  if root < 0 || root >= Array.length nodes then invalid_arg "Circuit.make: root";
  let supports = Array.make (Array.length nodes) (Bitset.create vars) in
  Array.iteri
    (fun i nd ->
       match nd with
       | True | False -> ()
       | Lit (v, _) ->
         if v < 0 || v >= vars then invalid_arg "Circuit.make: variable range";
         supports.(i) <- Bitset.add supports.(i) v
       | And children | Or children ->
         List.iter
           (fun j ->
              if j < 0 || j >= i then
                invalid_arg "Circuit.make: children must precede their gate";
              supports.(i) <- Bitset.union supports.(i) supports.(j))
           children)
    nodes;
  { vars; nodes; root; supports }

let vars c = c.vars
let node_count c = Array.length c.nodes
let root c = c.root

let node c i =
  if i < 0 || i >= Array.length c.nodes then invalid_arg "Circuit.node";
  c.nodes.(i)

let size c =
  Array.fold_left
    (fun acc nd ->
       match nd with
       | True | False | Lit _ -> acc
       | And children | Or children -> acc + List.length children)
    0 c.nodes

let support c i =
  if i < 0 || i >= Array.length c.nodes then invalid_arg "Circuit.support";
  c.supports.(i)

let evaluate_node c assignment i =
  let memo = Array.make (Array.length c.nodes) None in
  let rec go i =
    match memo.(i) with
    | Some v -> v
    | None ->
      let v =
        match c.nodes.(i) with
        | True -> true
        | False -> false
        | Lit (x, pol) -> Bool.equal assignment.(x) pol
        | And children -> List.for_all go children
        | Or children -> List.exists go children
      in
      memo.(i) <- Some v;
      v
  in
  go i

let evaluate c assignment =
  if Array.length assignment <> c.vars then
    invalid_arg "Circuit.evaluate: assignment length";
  evaluate_node c assignment c.root

let evaluate_at c i assignment =
  if i < 0 || i >= Array.length c.nodes then invalid_arg "Circuit.evaluate_at";
  if Array.length assignment <> c.vars then
    invalid_arg "Circuit.evaluate_at: assignment length";
  evaluate_node c assignment i

let is_decomposable c =
  Array.for_all
    (fun nd ->
       match nd with
       | And children ->
         let rec pairwise = function
           | [] -> true
           | x :: rest ->
             List.for_all
               (fun y -> Bitset.disjoint c.supports.(x) c.supports.(y))
               rest
             && pairwise rest
         in
         pairwise children
       | True | False | Lit _ | Or _ -> true)
    c.nodes

let is_smooth c =
  Array.mapi
    (fun i nd ->
       match nd with
       | Or children ->
         List.for_all (fun j -> Bitset.equal c.supports.(j) c.supports.(i)) children
       | True | False | Lit _ | And _ -> true)
    c.nodes
  |> Array.for_all Fun.id

let is_deterministic c =
  let check_gate i children =
    let sup = c.supports.(i) in
    let sup_vars = Array.of_list (Bitset.elements sup) in
    let k = Array.length sup_vars in
    if k > 22 then
      invalid_arg "Circuit.is_deterministic: gate support too large";
    let assignment = Array.make c.vars false in
    let ok = ref true in
    for mask = 0 to (1 lsl k) - 1 do
      Array.iteri
        (fun bit v -> assignment.(v) <- (mask lsr bit) land 1 = 1)
        sup_vars;
      let sat = List.filter (evaluate_node c assignment) children in
      if List.length sat > 1 then ok := false
    done;
    !ok
  in
  let result = ref true in
  Array.iteri
    (fun i nd ->
       match nd with
       | Or children -> if not (check_gate i children) then result := false
       | True | False | Lit _ | And _ -> ())
    c.nodes;
  !result

let model_count c =
  (* counts over each node's own support; smoothing applied at ∨-gates and
     at the root *)
  let n = Array.length c.nodes in
  let counts = Array.make n Bignum.zero in
  for i = 0 to n - 1 do
    counts.(i) <-
      (match c.nodes.(i) with
       | True -> Bignum.one
       | False -> Bignum.zero
       | Lit _ -> Bignum.one
       | And children ->
         List.fold_left
           (fun acc j -> Bignum.mul acc counts.(j))
           Bignum.one children
       | Or children ->
         Bignum.sum
           (List.map
              (fun j ->
                 let missing =
                   Bitset.cardinal c.supports.(i)
                   - Bitset.cardinal c.supports.(j)
                 in
                 Bignum.mul counts.(j) (Bignum.two_pow missing))
              children))
  done;
  let missing = c.vars - Bitset.cardinal c.supports.(c.root) in
  Bignum.mul counts.(c.root) (Bignum.two_pow missing)

let models c =
  if c.vars > 24 then invalid_arg "Circuit.models: too many variables";
  let assignment = Array.make c.vars false in
  Seq.filter
    (fun mask ->
       for v = 0 to c.vars - 1 do
         assignment.(v) <- (mask lsr v) land 1 = 1
       done;
       evaluate c assignment)
    (Seq.init (1 lsl c.vars) Fun.id)

let model_count_brute c =
  Seq.fold_left (fun acc _ -> Bignum.succ acc) Bignum.zero (models c)

let pp fmt c =
  Format.fprintf fmt "@[<v>vars: %d, root: %d@," c.vars c.root;
  Array.iteri
    (fun i nd ->
       match nd with
       | True -> Format.fprintf fmt "%d: ⊤@," i
       | False -> Format.fprintf fmt "%d: ⊥@," i
       | Lit (v, true) -> Format.fprintf fmt "%d: v%d@," i v
       | Lit (v, false) -> Format.fprintf fmt "%d: ¬v%d@," i v
       | And children ->
         Format.fprintf fmt "%d: ∧(%s)@," i
           (String.concat "," (List.map string_of_int children))
       | Or children ->
         Format.fprintf fmt "%d: ∨(%s)@," i
           (String.concat "," (List.map string_of_int children)))
    c.nodes;
  Format.fprintf fmt "@]"
