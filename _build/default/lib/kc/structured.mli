(** Structured circuits and their rectangle decompositions — the
    knowledge-compilation result ([6]) that inspired Proposition 7.

    For circuits in {e root-DNF shape} — a root ∨-gate over ∧-gates each
    splitting along the vtree's root partition [(X, Y)] — the rectangle
    decomposition is immediate and exact: each root conjunct is the
    product of its two sides' model sets, so the models are a union of at
    most [#conjuncts] rectangles w.r.t. [(X, Y)], {e disjoint} when the
    root is deterministic.  This mirrors Proposition 7 line by line
    (∧-gate ↔ balanced nonterminal occurrence, determinism ↔ unambiguity)
    and, combined with the rank bound, yields exponential lower bounds for
    structured deterministic circuits computing [INT_n] — see
    {!Ln_circuit.structured}. *)

module Bitset = Ucfg_util.Bitset

(** [respects vtree c] — every ∧-gate of [c] has at most two children
    whose supports split along some vtree node (the standard
    structuredness condition, checked per gate). *)
val respects : Vtree.t -> Circuit.t -> bool

type rectangle = {
  left_part : int list;  (** model masks restricted to the left variables *)
  right_part : int list;
  left_vars : Bitset.t;
  right_vars : Bitset.t;
}

(** [rectangle_members r] — the masks [l lor r]. *)
val rectangle_members : rectangle -> int Seq.t

(** [root_rectangles vtree c] — the rectangle decomposition of a
    root-DNF-shaped structured circuit: one rectangle per root conjunct,
    smoothing free variables on each side.
    @raise Invalid_argument when [c] is not root-DNF-shaped w.r.t. the
    vtree's root split, or has more than 20 variables (model sets are
    materialised). *)
val root_rectangles : Vtree.t -> Circuit.t -> rectangle list

type verification = {
  is_cover : bool;
  is_disjoint : bool;
  rectangle_count : int;
}

(** [verify vtree c] — decompose and check against [Circuit.models]. *)
val verify : Vtree.t -> Circuit.t -> verification
