(** Variable trees (vtrees) for structured circuits.

    A vtree is a binary tree whose leaves are the variables; a circuit is
    {e structured} by a vtree when every ∧-gate splits its variables along
    some vtree node.  Structure is the circuit-world counterpart of the
    paper's {e ordered partitions}: the root split of a vtree induces a
    fixed variable partition, exactly like an interval induces a partition
    of [Z] — which is why structured circuits decompose into rectangles
    (Bova–Capelli–Mengel–Slivovsky) the same way grammars do
    (Proposition 7). *)

type t = Leaf of int | Node of t * t

(** [balanced vars] — a balanced vtree over the given variables, in
    order.  @raise Invalid_argument on an empty list. *)
val balanced : int list -> t

(** [right_linear vars] — a right-comb vtree. *)
val right_linear : int list -> t

(** [variables t] — the leaves, left to right. *)
val variables : t -> int list

(** [var_set ~vars t] — the leaves as a bitset over a universe of [vars]
    variables. *)
val var_set : vars:int -> t -> Ucfg_util.Bitset.t

(** [root_split t] — [(left leaves, right leaves)] of the root.
    @raise Invalid_argument on a single-leaf vtree. *)
val root_split : t -> int list * int list

(** [subtrees t] — all subtrees, preorder. *)
val subtrees : t -> t list

val pp : Format.formatter -> t -> unit
