lib/kc/vtree.ml: Format List Ucfg_util
