lib/kc/circuit.ml: Array Bool Format Fun List Seq String Ucfg_util
