lib/kc/ln_circuit.mli: Circuit Vtree
