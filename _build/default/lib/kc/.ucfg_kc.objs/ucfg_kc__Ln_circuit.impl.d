lib/kc/ln_circuit.ml: Array Circuit Fun Hashtbl List Ucfg_util Vtree
