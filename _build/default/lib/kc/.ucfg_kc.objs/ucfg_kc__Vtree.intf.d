lib/kc/vtree.mli: Format Ucfg_util
