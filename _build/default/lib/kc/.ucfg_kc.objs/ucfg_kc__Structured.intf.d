lib/kc/structured.mli: Circuit Seq Ucfg_util Vtree
