lib/kc/structured.ml: Array Circuit Fun Int List Seq Set Ucfg_util Vtree
