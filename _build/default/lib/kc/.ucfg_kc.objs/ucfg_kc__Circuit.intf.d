lib/kc/circuit.mli: Format Seq Ucfg_util
