module Bitset = Ucfg_util.Bitset

let respects vtree c =
  let nvars = Circuit.vars c in
  let node_sets =
    List.filter_map
      (function
        | Vtree.Node (l, r) ->
          Some (Vtree.var_set ~vars:nvars l, Vtree.var_set ~vars:nvars r)
        | Vtree.Leaf _ -> None)
      (Vtree.subtrees vtree)
  in
  let ok = ref true in
  for i = 0 to Circuit.node_count c - 1 do
    match Circuit.node c i with
    | Circuit.And [] | Circuit.And [ _ ] -> ()
    | Circuit.And [ a; b ] ->
      let sa = Circuit.support c a and sb = Circuit.support c b in
      if
        not
          (List.exists
             (fun (l, r) -> Bitset.subset sa l && Bitset.subset sb r)
             node_sets)
      then ok := false
    | Circuit.And _ -> ok := false
    | Circuit.True | Circuit.False | Circuit.Lit _ | Circuit.Or _ -> ()
  done;
  !ok

type rectangle = {
  left_part : int list;
  right_part : int list;
  left_vars : Bitset.t;
  right_vars : Bitset.t;
}

let rectangle_members r =
  Seq.concat_map
    (fun l -> Seq.map (fun rt -> l lor rt) (List.to_seq r.right_part))
    (List.to_seq r.left_part)

(* all masks over the variable set [vs] (a bitset over the circuit's
   variables) on which node [i] evaluates true; other variables are set
   false, and the result masks mention only [vs]'s bits (smoothing: free
   variables of [vs] range over both values) *)
let side_models c i vs =
  let nvars = Circuit.vars c in
  let members = Bitset.elements vs in
  let k = List.length members in
  if k > 20 then invalid_arg "Structured.side_models: side too large";
  let assignment = Array.make nvars false in
  List.filter_map
    (fun sel ->
       Array.fill assignment 0 nvars false;
       List.iteri
         (fun bit v -> assignment.(v) <- (sel lsr bit) land 1 = 1)
         members;
       if Circuit.evaluate_at c i assignment then begin
         let mask =
           List.fold_left
             (fun acc (bit, v) ->
                if (sel lsr bit) land 1 = 1 then acc lor (1 lsl v) else acc)
             0
             (List.mapi (fun bit v -> (bit, v)) members)
         in
         Some mask
       end
       else None)
    (List.init (1 lsl k) Fun.id)

let root_rectangles vtree c =
  if Circuit.vars c > 20 then
    invalid_arg "Structured.root_rectangles: too many variables";
  let xl, yl = Vtree.root_split vtree in
  let xs = Bitset.of_list (Circuit.vars c) xl in
  let ys = Bitset.of_list (Circuit.vars c) yl in
  let conjuncts =
    match Circuit.node c (Circuit.root c) with
    | Circuit.Or children -> children
    | Circuit.And _ -> [ Circuit.root c ]
    | _ -> invalid_arg "Structured.root_rectangles: root not ∨/∧"
  in
  List.map
    (fun g ->
       match Circuit.node c g with
       | Circuit.And [ a; b ]
         when Bitset.subset (Circuit.support c a) xs
              && Bitset.subset (Circuit.support c b) ys ->
         {
           left_part = side_models c a xs;
           right_part = side_models c b ys;
           left_vars = xs;
           right_vars = ys;
         }
       | _ ->
         invalid_arg
           "Structured.root_rectangles: conjunct does not split at the root")
    conjuncts

type verification = {
  is_cover : bool;
  is_disjoint : bool;
  rectangle_count : int;
}

let verify vtree c =
  let rects = root_rectangles vtree c in
  let module IS = Set.Make (Int) in
  let union =
    List.fold_left
      (fun acc r -> IS.union acc (IS.of_seq (rectangle_members r)))
      IS.empty rects
  in
  let total =
    Ucfg_util.Prelude.sum_int
      (List.map
         (fun r -> List.length r.left_part * List.length r.right_part)
         rects)
  in
  let models = IS.of_seq (Circuit.models c) in
  {
    is_cover = IS.equal union models;
    is_disjoint = total = IS.cardinal union;
    rectangle_count = List.length rects;
  }
