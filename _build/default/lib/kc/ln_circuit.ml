(* variables: x_i = i, y_i = n + i, for i in [0, n) *)

let naive n =
  if n < 1 then invalid_arg "Ln_circuit.naive";
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let conjuncts =
    List.map
      (fun i ->
         let x = push (Circuit.Lit (i, true)) in
         let y = push (Circuit.Lit (n + i, true)) in
         push (Circuit.And [ x; y ]))
      (Ucfg_util.Prelude.range 0 n)
  in
  let root = push (Circuit.Or conjuncts) in
  Circuit.make ~vars:(2 * n) ~nodes:(Array.of_list (List.rev !nodes)) ~root

let structured_vtree n =
  Vtree.Node
    ( Vtree.right_linear (Ucfg_util.Prelude.range 0 n),
      Vtree.right_linear (Ucfg_util.Prelude.range n (2 * n)) )

let structured n =
  if n < 1 then invalid_arg "Ln_circuit.structured";
  if n > 16 then invalid_arg "Ln_circuit.structured: n too large";
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let lit_cache = Hashtbl.create 64 in
  let lit v pol =
    match Hashtbl.find_opt lit_cache (v, pol) with
    | Some id -> id
    | None ->
      let id = push (Circuit.Lit (v, pol)) in
      Hashtbl.add lit_cache (v, pol) id;
      id
  in
  (* binary right-nested conjunction of literals given in increasing
     variable order, so every And splits along the right-linear vtree *)
  let rec chain = function
    | [] -> push Circuit.True
    | [ (v, pol) ] -> lit v pol
    | (v, pol) :: rest -> push (Circuit.And [ lit v pol; chain rest ])
  in
  let branches =
    (* α ranges over the non-empty subsets of [0, n) *)
    List.filter_map
      (fun alpha ->
         if alpha = 0 then None
         else begin
           (* x side: the exact profile α *)
           let x_lits =
             List.init n (fun i -> (i, (alpha lsr i) land 1 = 1))
           in
           let xgate = chain x_lits in
           (* y side: first matched index within α — deterministic *)
           let members =
             List.filter (fun i -> (alpha lsr i) land 1 = 1)
               (Ucfg_util.Prelude.range 0 n)
           in
           let y_disjuncts =
             List.mapi
               (fun k i ->
                  let earlier = Ucfg_util.Prelude.take k members in
                  chain
                    (List.map (fun j -> (n + j, false)) earlier
                     @ [ (n + i, true) ]))
               members
           in
           let ygate = push (Circuit.Or y_disjuncts) in
           Some (push (Circuit.And [ xgate; ygate ]))
         end)
      (List.init (1 lsl n) Fun.id)
  in
  let root = push (Circuit.Or branches) in
  Circuit.make ~vars:(2 * n) ~nodes:(Array.of_list (List.rev !nodes)) ~root

let deterministic n =
  if n < 1 then invalid_arg "Ln_circuit.deterministic";
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let pos v = push (Circuit.Lit (v, true)) in
  let neg v = push (Circuit.Lit (v, false)) in
  (* nomatch_j: the j-th position pair is not a match, split three ways so
     the gate is deterministic — the Boolean shadow of the corrected
     Example 4 *)
  let nomatch j =
    let a = push (Circuit.And [ neg j; neg (n + j) ]) in
    let b = push (Circuit.And [ neg j; pos (n + j) ]) in
    let c = push (Circuit.And [ pos j; neg (n + j) ]) in
    push (Circuit.Or [ a; b; c ])
  in
  let branches =
    List.map
      (fun i ->
         (* first match at i: positions j < i unmatched, x_i ∧ y_i *)
         let earlier = List.map nomatch (Ucfg_util.Prelude.range 0 i) in
         let here = [ pos i; pos (n + i) ] in
         push (Circuit.And (earlier @ here)))
      (Ucfg_util.Prelude.range 0 n)
  in
  let root = push (Circuit.Or branches) in
  Circuit.make ~vars:(2 * n) ~nodes:(Array.of_list (List.rev !nodes)) ~root
