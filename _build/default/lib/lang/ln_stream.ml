type t = {
  n : int;
  consumed : int;
  window : int;  (** bit [p mod n] = 1 iff character at position [p] was 'a',
                     for the last [n] positions *)
  matched : bool;
}

let create n =
  if n < 1 || n > 60 then invalid_arg "Ln_stream.create: need 1 <= n <= 60";
  { n; consumed = 0; window = 0; matched = false }

let feed t c =
  if t.consumed >= 2 * t.n then
    invalid_arg "Ln_stream.feed: already consumed 2n characters";
  let is_a =
    match c with
    | 'a' -> true
    | 'b' -> false
    | _ -> invalid_arg "Ln_stream.feed: non-binary character"
  in
  let slot = t.consumed mod t.n in
  (* the character n positions back lives in the slot we are about to
     overwrite *)
  let partner_a = t.consumed >= t.n && (t.window lsr slot) land 1 = 1 in
  let matched = t.matched || (is_a && partner_a) in
  let window =
    if is_a then t.window lor (1 lsl slot) else t.window land lnot (1 lsl slot)
  in
  { t with consumed = t.consumed + 1; window; matched }

let feed_string t w = String.fold_left feed t w

let accepted t = t.consumed = 2 * t.n && t.matched

let chars_consumed t = t.consumed
