(** Residuals (left quotients) and the Myhill–Nerode view.

    [w⁻¹L = { v | wv ∈ L }].  For a finite language the number of distinct
    non-empty residuals (plus the empty one when reachable) is exactly the
    minimal-DFA state count — ground truth the automata side is tested
    against, and the quantity whose UFA/uCFG analogues the paper's
    techniques bound. *)

open Ucfg_word

type t = Lang.t

(** [left w l] = [w⁻¹ l]. *)
val left : string -> Lang.t -> Lang.t

(** [right w l] = [l w⁻¹ = { u | uw ∈ l }]. *)
val right : string -> Lang.t -> Lang.t

(** [distinct_left alpha l] — the set of distinct left residuals of [l] by
    prefixes over [alpha] (including [l] itself for [w = ε]; the empty
    residual appears when some prefix leads nowhere). *)
val distinct_left : Alphabet.t -> Lang.t -> Lang.t list

(** [nerode_index alpha l] — the number of distinct left residuals
    (= minimal complete DFA states, counting the sink iff the empty
    residual is reachable). *)
val nerode_index : Alphabet.t -> Lang.t -> int
