(** A streaming recogniser for [L_n] in O(n) bits.

    Set disjointness is the canonical streaming lower-bound tool (the
    survey [39] the paper cites); the positive side for [L_n] itself is
    easy: slide a window of the last [n] characters, raise a flag when the
    character [n] steps back and the current one are both ['a'].  One pass,
    constant time per character, [n + O(log n)] bits of state. *)

type t

(** [create n] — a fresh recogniser for [L_n].  Requires [1 <= n <= 60]
    (the window is a machine-word bit mask). *)
val create : int -> t

(** [feed t c] consumes one character (['a'] or ['b']).
    @raise Invalid_argument on other characters or after [2n]
    characters. *)
val feed : t -> char -> t

(** [feed_string t w] folds {!feed}. *)
val feed_string : t -> string -> t

(** [accepted t] — exactly [2n] characters consumed and two ['a']s at
    distance [n] were seen. *)
val accepted : t -> bool

(** [chars_consumed t]. *)
val chars_consumed : t -> int
