open Ucfg_word

type t = Lang.t

let left w l =
  let lw = String.length w in
  Lang.fold
    (fun u acc ->
       if String.length u >= lw && String.equal (String.sub u 0 lw) w then
         Lang.add (String.sub u lw (String.length u - lw)) acc
       else acc)
    l Lang.empty

let right w l =
  let lw = String.length w in
  Lang.fold
    (fun u acc ->
       let lu = String.length u in
       if lu >= lw && String.equal (String.sub u (lu - lw) lw) w then
         Lang.add (String.sub u 0 (lu - lw)) acc
       else acc)
    l Lang.empty

let distinct_left alpha l =
  (* BFS over residuals: finitely many for a finite language *)
  let module LS = Set.Make (struct
      type t = Lang.t

      let compare a b =
        compare (Lang.elements a) (Lang.elements b)
    end)
  in
  let seen = ref LS.empty in
  let queue = Queue.create () in
  let push r =
    if not (LS.mem r !seen) then begin
      seen := LS.add r !seen;
      Queue.add r queue
    end
  in
  push l;
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    List.iter (fun c -> push (left (String.make 1 c) r)) (Alphabet.chars alpha)
  done;
  LS.elements !seen

let nerode_index alpha l = List.length (distinct_left alpha l)
