lib/lang/ln_stream.mli:
