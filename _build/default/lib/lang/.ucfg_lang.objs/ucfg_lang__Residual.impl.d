lib/lang/residual.ml: Alphabet Lang List Queue Set String Ucfg_word
