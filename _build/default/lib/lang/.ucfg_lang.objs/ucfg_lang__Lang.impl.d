lib/lang/lang.ml: Array Format List String Ucfg_util Ucfg_word Word
