lib/lang/lang.mli: Alphabet Format Seq Ucfg_util Ucfg_word Word
