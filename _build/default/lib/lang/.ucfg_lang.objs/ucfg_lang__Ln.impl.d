lib/lang/ln.ml: Alphabet Fun Lang Seq String Ucfg_util Ucfg_word Word
