lib/lang/ln.mli: Lang Seq Ucfg_util Ucfg_word Word
