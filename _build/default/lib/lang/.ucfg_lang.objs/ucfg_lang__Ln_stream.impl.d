lib/lang/ln_stream.ml: String
