lib/lang/residual.mli: Alphabet Lang Ucfg_word
