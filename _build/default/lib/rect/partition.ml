type t = { n : int; i : int; j : int }

let make ~n i j =
  if n < 1 || i < 1 || j > 2 * n || i > j then invalid_arg "Partition.make";
  { n; i; j }

let n p = p.n
let interval p = (p.i, p.j)
let inside p = Setview.interval_mask ~n:p.n p.i p.j
let outside p = Setview.universe ~n:p.n land lnot (inside p)

let is_balanced p =
  let size = p.j - p.i + 1 in
  (* 2n/3 <= size <= 4n/3, exactly *)
  3 * size >= 2 * p.n && 3 * size <= 4 * p.n

let blocks ~n =
  if n mod 4 <> 0 then invalid_arg "Partition.blocks: n must be divisible by 4";
  let m = n / 4 in
  List.map
    (fun b -> Setview.interval_mask ~n ((4 * b) + 1) (4 * (b + 1)))
    (Ucfg_util.Prelude.range 0 (2 * m))

let is_neat p =
  let ins = inside p in
  List.for_all
    (fun blk -> blk land ins = 0 || blk land ins = blk)
    (blocks ~n:p.n)

let neaten p =
  if p.n mod 4 <> 0 then invalid_arg "Partition.neaten: n must be divisible by 4";
  let size_in = p.j - p.i + 1 in
  let size_out = (2 * p.n) - size_in in
  (* round the interval to block boundaries: grow it when the inside part
     is the smaller one, shrink it otherwise — either way the straddled
     elements join the smaller part (Lemma 21) *)
  let round_down_i i = i - ((i - 1) mod 4) in
  let round_up_j j = j + ((4 - (j mod 4)) mod 4) in
  let round_up_i i = if (i - 1) mod 4 = 0 then i else i + (4 - ((i - 1) mod 4)) in
  let round_down_j j = j - (j mod 4) in
  let i', j' =
    if size_in <= size_out then (round_down_i p.i, round_up_j p.j)
    else (round_up_i p.i, round_down_j p.j)
  in
  if i' > j' || i' < 1 || j' > 2 * p.n then
    invalid_arg "Partition.neaten: interval degenerates (n too small)";
  let q = make ~n:p.n i' j' in
  (q, inside p lxor inside q)

let matched_mask p =
  let ins = inside p in
  let acc = ref 0 in
  for l = 0 to p.n - 1 do
    let x = (ins lsr l) land 1 in
    let y = (ins lsr (l + p.n)) land 1 in
    if x <> y then acc := !acc lor (1 lsl l) lor (1 lsl (l + p.n))
  done;
  !acc

let all_ordered ~n =
  List.concat_map
    (fun i ->
       List.map (fun j -> make ~n i j) (Ucfg_util.Prelude.range_incl i (2 * n)))
    (Ucfg_util.Prelude.range_incl 1 (2 * n))

let all_balanced ~n = List.filter is_balanced (all_ordered ~n)

let equal a b = a = b

let pp fmt p = Format.fprintf fmt "[%d,%d]⊆Z[1,%d]" p.i p.j (2 * p.n)
