(** The set perspective of Section 4.1.

    A binary word [w] of length [2n] is identified with the pair
    [(X_w, Y_w)] of subsets of [{x_1..x_n}] and [{y_1..y_n}]: [x_i ∈ X_w]
    iff [w_i = a], [y_i ∈ Y_w] iff [w_{i+n} = a].  Unified, [w] is a
    subset of [Z = {z_1, ..., z_2n}], which we pack into an [int] bit mask
    (bit [i-1] set iff [z_i] in the set).  Under this view [L_n] is
    exactly the set of pairs with [X ∩ Y ≠ ∅] — the complement of set
    disjointness. *)

(** [of_word w] is the bit mask of a binary word ([|w| <= 60]). *)
val of_word : string -> int

(** [to_word ~n mask] is the length-[2n] word of a mask. *)
val to_word : n:int -> int -> string

(** [x_part ~n mask] restricts to [X] (low [n] bits). *)
val x_part : n:int -> int -> int

(** [y_part ~n mask] restricts to [Y] (kept in place: bits [n..2n-1]). *)
val y_part : n:int -> int -> int

(** [interval_mask ~n i j] is the mask of [Z[i, j]] (1-based, inclusive).
    Requires [1 <= i <= j <= 2n]. *)
val interval_mask : n:int -> int -> int -> int

(** [universe ~n] is the mask of all of [Z]. *)
val universe : n:int -> int

(** [in_ln ~n mask] — membership of the corresponding word in [L_n]. *)
val in_ln : n:int -> int -> bool

(** [all ~n] enumerates all [4^n] masks. *)
val all : n:int -> int Seq.t

(** [subsets_of mask] enumerates all subsets of [mask] (including [0] and
    [mask] itself), in the standard descending-submask order. *)
val subsets_of : int -> int Seq.t

val popcount : int -> int
