open Ucfg_word
open Ucfg_lang

type verification = {
  is_cover : bool;
  is_disjoint : bool;
  union_cardinal : int;
  sum_cardinals : int;
}

let verify rects lang =
  let materialized = List.map Rectangle.materialize rects in
  let union = List.fold_left Lang.union Lang.empty materialized in
  let sum_cardinals =
    Ucfg_util.Prelude.sum_int (List.map Lang.cardinal materialized)
  in
  let union_cardinal = Lang.cardinal union in
  {
    is_cover = Lang.equal union lang;
    is_disjoint = sum_cardinals = union_cardinal;
    union_cardinal;
    sum_cardinals;
  }

let all_balanced rects = List.for_all Rectangle.is_balanced rects

let example8_cover n =
  List.map (Rectangle.example8 n) (Ucfg_util.Prelude.range 0 n)

let singleton_cover l ~n1 ~n2 =
  Lang.fold (fun w acc -> Rectangle.singleton w ~n1 ~n2 :: acc) l []

let greedy_disjoint_cover l ~n =
  let len = 2 * n in
  if not (Lang.for_all (fun w -> String.length w = len) l) then
    invalid_arg "Cover.greedy_disjoint_cover: words must have length 2n";
  (* balanced splits (n1, n2) *)
  let splits =
    List.concat_map
      (fun n2 ->
         if 3 * n2 >= len && 3 * n2 <= 2 * len then
           List.map (fun n1 -> (n1, n2)) (Ucfg_util.Prelude.range_incl 0 (len - n2))
         else [])
      (Ucfg_util.Prelude.range_incl 1 len)
  in
  let outer_of (n1, n2) w =
    Word.slice w 0 n1 ^ Word.slice w (n1 + n2) (len - n1 - n2)
  in
  let middle_of (n1, n2) w = Word.slice w n1 n2 in
  let best_rectangle remaining w =
    List.fold_left
      (fun best ((n1, n2) as split) ->
         (* middles available for each outer *)
         let by_outer = Hashtbl.create 64 in
         Lang.iter
           (fun u ->
              let o = outer_of split u in
              let m = middle_of split u in
              let cur =
                Option.value ~default:Lang.empty (Hashtbl.find_opt by_outer o)
              in
              Hashtbl.replace by_outer o (Lang.add m cur))
           remaining;
         let m0 = Hashtbl.find by_outer (outer_of split w) in
         let outer =
           Hashtbl.fold
             (fun o ms acc -> if Lang.subset m0 ms then Lang.add o acc else acc)
             by_outer Lang.empty
         in
         let r =
           Rectangle.make ~n1 ~n2 ~n3:(len - n1 - n2) ~outer ~middle:m0
         in
         match best with
         | Some b when Rectangle.cardinal b >= Rectangle.cardinal r -> best
         | _ -> Some r)
      None splits
  in
  let rec go remaining acc =
    match Lang.choose_opt remaining with
    | None -> List.rev acc
    | Some w ->
      (match best_rectangle remaining w with
       | None -> assert false
       | Some r ->
         go (Lang.diff remaining (Rectangle.materialize r)) (r :: acc))
  in
  go l []
