open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
module G = Grammar

type result = {
  rectangles : Rectangle.t list;
  word_length : int;
  annotated_size : int;
  cnf_size : int;
  bound : int;
}

let run g =
  let cnf = Cnf.ensure g in
  let ann = Length_annotate.annotate g in
  let n = ann.Length_annotate.word_length in
  if n < 2 then
    invalid_arg "Extract.run: need word length >= 2 for balanced rectangles";
  let names = G.names ann.Length_annotate.grammar in
  let start = G.start ann.Length_annotate.grammar in
  let span = ann.Length_annotate.span_length in
  let origin = ann.Length_annotate.origin in
  let alphabet = G.alphabet ann.Length_annotate.grammar in
  if Alphabet.mem alphabet '#' then
    invalid_arg "Extract.run: alphabet already uses the marker '#'";
  let marker_alphabet = Alphabet.make (Alphabet.chars alphabet @ [ '#' ]) in
  let rules = ref (G.rules ann.Length_annotate.grammar) in
  let mentions a r =
    r.G.lhs = a
    || List.exists (function G.N b -> b = a | G.T _ -> false) r.G.rhs
  in
  let rectangles = ref [] in
  let current () = G.make ~alphabet ~names ~rules:!rules ~start in
  let continue_ = ref true in
  while !continue_ do
    match Analysis.witness_tree (current ()) start with
    | None -> continue_ := false
    | Some tree ->
      (* descend to a balanced node: heaviest child until span <= 2n/3 *)
      let rec descend node =
        let a = Parse_tree.root node in
        if 3 * span.(a) <= 2 * n then a
        else
          match node with
          | Parse_tree.Node (_, [ l; r ]) ->
            let weight = function
              | Parse_tree.Node (b, _) -> span.(b)
              | Parse_tree.Leaf _ -> 0
            in
            descend (if weight l >= weight r then l else r)
          | Parse_tree.Node (_, _) | Parse_tree.Leaf _ ->
            (* CNF node with span > 2n/3 >= 2 always has two children *)
            assert false
      in
      let a_i = descend tree in
      let _, pos = origin.(a_i) in
      let n1 = pos - 1 in
      let n2 = span.(a_i) in
      let n3 = n - n1 - n2 in
      (* middle: the words generated from a_i under the current rules *)
      let middle =
        Analysis.language_exn (G.make ~alphabet ~names ~rules:!rules ~start:a_i)
      in
      (* outer: replace a_i's productions with a marker block, collect the
         words whose derivation passes through a_i *)
      let marker_rules =
        { G.lhs = a_i; rhs = List.init n2 (fun _ -> G.T '#') }
        :: List.filter (fun r -> r.G.lhs <> a_i) !rules
      in
      let marked =
        Analysis.language_exn
          (G.make ~alphabet:marker_alphabet ~names ~rules:marker_rules ~start)
      in
      let outer =
        Lang.fold
          (fun w acc ->
             if String.contains w '#' then begin
               (* Lemma 10 pins every occurrence of a_i at position n1+1 *)
               assert (Word.slice w n1 n2 = String.make n2 '#');
               Lang.add (Word.slice w 0 n1 ^ Word.slice w (n1 + n2) n3) acc
             end
             else acc)
          marked Lang.empty
      in
      rectangles := Rectangle.make ~n1 ~n2 ~n3 ~outer ~middle :: !rectangles;
      (* delete a_i entirely *)
      rules := List.filter (fun r -> not (mentions a_i r)) !rules
  done;
  {
    rectangles = List.rev !rectangles;
    word_length = n;
    annotated_size = G.size ann.Length_annotate.grammar;
    cnf_size = G.size cnf;
    bound = n * G.size cnf;
  }

let verify g res =
  let lang = Analysis.language_exn g in
  let ver = Cover.verify res.rectangles lang in
  let shape_ok =
    Cover.all_balanced res.rectangles
    && List.length res.rectangles <= res.bound
  in
  (ver, shape_ok)
