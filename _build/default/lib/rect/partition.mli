(** Ordered partitions of [Z] (Definition 13).

    A partition [(Π_0, Π_1)] of [Z = {z_1..z_2n}] is {e induced by the
    interval} [[i, j]] when one part equals [Z[i, j]]; such partitions are
    {e ordered}.  It is {e balanced} when [2n/3 <= |Π_0|, |Π_1| <= 4n/3],
    and (for [n] divisible by 4) {e neat} when every size-4 block [I_ℓ] of
    the discrepancy argument lies entirely in one part. *)

type t

(** [make ~n i j] is the partition of [Z] induced by the interval [[i, j]]
    (1-based, inclusive); [inside] is [Z[i,j]], [outside] its
    complement. *)
val make : n:int -> int -> int -> t

val n : t -> int
val interval : t -> int * int

(** [inside p] is the mask of [Z[i, j]]. *)
val inside : t -> int

(** [outside p] is the complementary mask. *)
val outside : t -> int

(** [is_balanced p] — [2n/3 <= |Z[i,j]| <= 4n/3] (Definition 13, exact
    rational comparison). *)
val is_balanced : t -> bool

(** [blocks ~n] is the list of the [2m = n/2] size-4 interval masks
    [I_1, ..., I_2m] of Section 4.2 ([I_ℓ^X] first, then [I_ℓ^Y]).
    Requires [n] divisible by 4. *)
val blocks : n:int -> int list

(** [is_neat p] — every size-4 block lies inside one part.  Requires
    [n mod 4 = 0]. *)
val is_neat : t -> bool

(** [neaten p] rounds [p] to a neat ordered partition by moving the (at
    most two) straddling blocks into the smaller part, as in Lemma 21.
    The result is balanced whenever [p] is balanced and [n] is large
    enough; requires [n mod 4 = 0].  Returns the new partition together
    with the mask of elements that changed side. *)
val neaten : t -> t * int

(** [matched_mask p] is the paper's [V_G]: the mask of all [x_ℓ, y_ℓ] such
    that [x_ℓ] and [y_ℓ] lie in different parts. *)
val matched_mask : t -> int

(** [all_ordered ~n] enumerates every ordered partition (every interval
    [[i, j]] with [1 <= i <= j <= 2n]). *)
val all_ordered : n:int -> t list

(** [all_balanced ~n] restricts {!all_ordered} to balanced ones. *)
val all_balanced : n:int -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
