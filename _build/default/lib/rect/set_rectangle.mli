(** Set rectangles (Definition 14) and the Lemma 15 translation.

    For an ordered partition [(Π_0, Π_1)] of [Z], a set rectangle is
    [R = S × T = {U ∪ V | U ∈ S, V ∈ T}] with [S ⊆ P(Π_0)],
    [T ⊆ P(Π_1)].  Here the two parts are named after the string picture:
    [inner] masks live on the inducing interval [Z[i,j]] (the [L2] side of
    Lemma 15), [outer] masks on its complement (the [L1] side).  Sets are
    bit masks; the components are mask sets. *)

module IntSet : Set.S with type elt = int

type t = {
  partition : Partition.t;
  outer : IntSet.t;  (** subsets of [Partition.outside] — the [S]/[L1] side *)
  inner : IntSet.t;  (** subsets of [Partition.inside] — the [T]/[L2] side *)
}

(** [make partition ~outer ~inner] validates the side conditions.
    @raise Invalid_argument if some mask strays outside its part. *)
val make : Partition.t -> outer:int list -> inner:int list -> t

(** [mem r mask] — membership of a set (= word) in the rectangle. *)
val mem : t -> int -> bool

(** [members r] enumerates the masks of [R = S × T]. *)
val members : t -> int Seq.t

val cardinal : t -> int
val is_balanced : t -> bool

(** [is_neat r] — the underlying partition is neat. *)
val is_neat : t -> bool

(** [of_string_rectangle r] is Lemma 15, forward direction: a string
    rectangle with parameters [(L1, L2, n1, n2, n3)] over words of length
    [2n] becomes an [[n1+1, n1+n2]]-set rectangle. *)
val of_string_rectangle : Rectangle.t -> t

(** [to_string_rectangle r] is Lemma 15, converse direction. *)
val to_string_rectangle : t -> Rectangle.t

(** [split_neat r] is Lemma 21: decompose an ordered balanced rectangle
    into at most 256 pairwise disjoint rectangles over one {e neat}
    ordered partition, with the same union.  Requires [n mod 4 = 0]. *)
val split_neat : t -> t list

(** [count_diff r ~in_a ~in_b] is [|R ∩ A| - |R ∩ B|] for arbitrary
    predicate classes [A], [B], by enumerating [R]. *)
val count_diff : t -> in_a:(int -> bool) -> in_b:(int -> bool) -> int

val pp : Format.formatter -> t -> unit
