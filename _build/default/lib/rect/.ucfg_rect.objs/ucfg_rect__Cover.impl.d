lib/rect/cover.ml: Hashtbl Lang List Option Rectangle String Ucfg_lang Ucfg_util Ucfg_word Word
