lib/rect/setview.ml: Fun Seq Ucfg_lang Ucfg_word Word
