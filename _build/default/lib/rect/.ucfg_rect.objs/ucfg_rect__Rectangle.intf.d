lib/rect/rectangle.mli: Format Lang Ucfg_lang
