lib/rect/extract.ml: Alphabet Analysis Array Cnf Cover Grammar Lang Length_annotate List Parse_tree Rectangle String Ucfg_cfg Ucfg_lang Ucfg_word Word
