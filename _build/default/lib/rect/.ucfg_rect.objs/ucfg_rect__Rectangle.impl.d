lib/rect/rectangle.ml: Alphabet Format Lang String Ucfg_lang Ucfg_word Word
