lib/rect/partition.ml: Format List Setview Ucfg_util
