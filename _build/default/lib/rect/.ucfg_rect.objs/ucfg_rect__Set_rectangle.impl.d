lib/rect/set_rectangle.ml: Format Int Lang List Partition Rectangle Seq Set Setview Ucfg_lang Ucfg_word Word
