lib/rect/setview.mli: Seq
