lib/rect/cover.mli: Lang Rectangle Ucfg_lang
