lib/rect/partition.mli: Format
