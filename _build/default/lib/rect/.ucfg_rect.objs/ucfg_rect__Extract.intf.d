lib/rect/extract.mli: Cover Rectangle Ucfg_cfg
