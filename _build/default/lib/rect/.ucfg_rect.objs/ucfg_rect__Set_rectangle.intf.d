lib/rect/set_rectangle.mli: Format Partition Rectangle Seq Set
