open Ucfg_word
open Ucfg_lang

type t = {
  n1 : int;
  n2 : int;
  n3 : int;
  outer : Lang.t;
  middle : Lang.t;
}

let make ~n1 ~n2 ~n3 ~outer ~middle =
  if n1 < 0 || n2 < 0 || n3 < 0 then invalid_arg "Rectangle.make: negative part";
  if not (Lang.for_all (fun w -> String.length w = n1 + n3) outer) then
    invalid_arg "Rectangle.make: outer words must have length n1+n3";
  if not (Lang.for_all (fun w -> String.length w = n2) middle) then
    invalid_arg "Rectangle.make: middle words must have length n2";
  { n1; n2; n3; outer; middle }

let word_length r = r.n1 + r.n2 + r.n3

let is_balanced r =
  let n = word_length r in
  3 * r.n2 >= n && 3 * r.n2 <= 2 * n

let mem r w =
  String.length w = word_length r
  && Lang.mem (Word.slice w r.n1 r.n2) r.middle
  && Lang.mem (Word.slice w 0 r.n1 ^ Word.slice w (r.n1 + r.n2) r.n3) r.outer

let materialize r =
  Lang.fold
    (fun w13 acc ->
       let w1 = Word.slice w13 0 r.n1 in
       let w3 = Word.slice w13 r.n1 r.n3 in
       Lang.fold (fun w2 acc -> Lang.add (w1 ^ w2 ^ w3) acc) r.middle acc)
    r.outer Lang.empty

let cardinal r = Lang.cardinal r.outer * Lang.cardinal r.middle

let recover ~n1 ~n2 l =
  match Lang.uniform_length l with
  | None -> None
  | Some len ->
    if len < n1 + n2 then None
    else begin
      let n3 = len - n1 - n2 in
      let outer =
        Lang.map (fun w -> Word.slice w 0 n1 ^ Word.slice w (n1 + n2) n3) l
      in
      let middle = Lang.map (fun w -> Word.slice w n1 n2) l in
      let r = { n1; n2; n3; outer; middle } in
      if Lang.equal (materialize r) l then Some r else None
    end

let singleton w ~n1 ~n2 =
  let len = String.length w in
  if n1 + n2 > len then invalid_arg "Rectangle.singleton";
  let n3 = len - n1 - n2 in
  {
    n1;
    n2;
    n3;
    outer = Lang.singleton (Word.slice w 0 n1 ^ Word.slice w (n1 + n2) n3);
    middle = Lang.singleton (Word.slice w n1 n2);
  }

let example8 n k =
  if n < 1 || k < 0 || k > n - 1 then invalid_arg "Rectangle.example8";
  let sigma j = Lang.full Alphabet.binary j in
  {
    n1 = k;
    n2 = n + 1;
    n3 = n - 1 - k;
    outer = sigma (n - 1);
    middle =
      Lang.concat (Lang.singleton "a") (Lang.concat (sigma (n - 1)) (Lang.singleton "a"));
  }

let star n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Rectangle.star";
  let h = n / 2 in
  {
    n1 = h;
    n2 = n;
    n3 = h;
    outer = Lang.singleton (String.make n 'a');
    middle = Lang.full Alphabet.binary n;
  }

let pp fmt r =
  Format.fprintf fmt "rect(n1=%d,n2=%d,n3=%d,|L1|=%d,|L2|=%d)" r.n1 r.n2 r.n3
    (Lang.cardinal r.outer) (Lang.cardinal r.middle)
