(** String rectangles (Definition 5).

    A language [L] of words of length [N] is a rectangle with parameters
    [(L1, L2, n1, n2, n3)] when
    [L = ∪_{w1 w3 ∈ L1} {w1} × L2 × {w3}] with [|w1| = n1], [|w3| = n3],
    [L2 ⊆ Σ^n2]: the middle section varies freely over [L2],
    independently of the (paired) outside.  Balanced: [N/3 <= n2 <= 2N/3]. *)

open Ucfg_lang

type t = {
  n1 : int;
  n2 : int;
  n3 : int;
  outer : Lang.t;  (** [L1]: words [w1 w3] of length [n1 + n3] *)
  middle : Lang.t;  (** [L2]: words of length [n2] *)
}

(** [make ~n1 ~n2 ~n3 ~outer ~middle] validates lengths.
    @raise Invalid_argument on length mismatches. *)
val make : n1:int -> n2:int -> n3:int -> outer:Lang.t -> middle:Lang.t -> t

(** Total word length [n1 + n2 + n3]. *)
val word_length : t -> int

(** [is_balanced r] — [N/3 <= n2 <= 2N/3] (exact rationals). *)
val is_balanced : t -> bool

(** [mem r w] decides membership without materialising. *)
val mem : t -> string -> bool

(** [materialize r] is the denoted language [|L1|·|L2|] words. *)
val materialize : t -> Lang.t

(** [cardinal r] = [|L1| · |L2|]. *)
val cardinal : t -> int

(** [recover ~n1 ~n2 l] checks whether [l] {e is} a rectangle with the
    given split: it computes the outer/middle projections of [l] and
    verifies that their product gives back exactly [l].  All words of [l]
    must have the same length [>= n1 + n2]. *)
val recover : n1:int -> n2:int -> Lang.t -> t option

(** [singleton w ~n1 ~n2] is the one-word rectangle [{w}] split at
    [(n1, n2)]. *)
val singleton : string -> n1:int -> n2:int -> t

(** [example8 n k] is the balanced rectangle [L_n^k] of Example 8:
    [n1 = k], [n2 = n + 1], [n3 = n - 1 - k], [L1 = Σ^(n-1)],
    [L2 = a Σ^(n-1) a]. *)
val example8 : int -> int -> t

(** [star n] is Example 6's [L*_n] as a balanced rectangle ([n] even). *)
val star : int -> t

val pp : Format.formatter -> t -> unit
