open Ucfg_word
open Ucfg_lang
module IntSet = Set.Make (Int)

type t = {
  partition : Partition.t;
  outer : IntSet.t;
  inner : IntSet.t;
}

let make partition ~outer ~inner =
  let ins = Partition.inside partition in
  let out = Partition.outside partition in
  List.iter
    (fun m ->
       if m land lnot out <> 0 then
         invalid_arg "Set_rectangle.make: outer mask leaves its part")
    outer;
  List.iter
    (fun m ->
       if m land lnot ins <> 0 then
         invalid_arg "Set_rectangle.make: inner mask leaves its part")
    inner;
  { partition; outer = IntSet.of_list outer; inner = IntSet.of_list inner }

let mem r mask =
  IntSet.mem (mask land Partition.outside r.partition) r.outer
  && IntSet.mem (mask land Partition.inside r.partition) r.inner

let members r =
  Seq.concat_map
    (fun u -> Seq.map (fun v -> u lor v) (IntSet.to_seq r.inner))
    (IntSet.to_seq r.outer)

let cardinal r = IntSet.cardinal r.outer * IntSet.cardinal r.inner
let is_balanced r = Partition.is_balanced r.partition
let is_neat r = Partition.is_neat r.partition

let of_string_rectangle (sr : Rectangle.t) =
  let nn = Rectangle.word_length sr in
  if nn mod 2 <> 0 then
    invalid_arg "Set_rectangle.of_string_rectangle: odd word length";
  let n = nn / 2 in
  if sr.Rectangle.n2 = 0 || sr.Rectangle.n1 + sr.Rectangle.n3 = 0 then
    invalid_arg "Set_rectangle.of_string_rectangle: degenerate split";
  let n1 = sr.Rectangle.n1 and n2 = sr.Rectangle.n2 and n3 = sr.Rectangle.n3 in
  let partition = Partition.make ~n (n1 + 1) (n1 + n2) in
  let inner =
    Lang.fold
      (fun w2 acc -> (Word.to_bits w2 lsl n1) :: acc)
      sr.Rectangle.middle []
  in
  let outer =
    Lang.fold
      (fun w13 acc ->
         let w1 = Word.slice w13 0 n1 and w3 = Word.slice w13 n1 n3 in
         (Word.to_bits w1 lor (Word.to_bits w3 lsl (n1 + n2))) :: acc)
      sr.Rectangle.outer []
  in
  make partition ~outer ~inner

let to_string_rectangle r =
  let n = Partition.n r.partition in
  let i, j = Partition.interval r.partition in
  let n1 = i - 1 and n2 = j - i + 1 in
  let n3 = (2 * n) - (n1 + n2) in
  let middle =
    IntSet.fold
      (fun m acc -> Lang.add (Word.of_bits ~len:n2 (m lsr n1)) acc)
      r.inner Lang.empty
  in
  let outer =
    IntSet.fold
      (fun m acc ->
         let w1 = Word.of_bits ~len:n1 m in
         let w3 = Word.of_bits ~len:n3 (m lsr (n1 + n2)) in
         Lang.add (w1 ^ w3) acc)
      r.outer Lang.empty
  in
  Rectangle.make ~n1 ~n2 ~n3 ~outer ~middle

let split_neat r =
  let q, moved = Partition.neaten r.partition in
  let ins_q = Partition.inside q and out_q = Partition.outside q in
  let mo = moved land Partition.outside r.partition in
  let mi = moved land Partition.inside r.partition in
  (* one sub-rectangle per trace α ⊆ moved; each is fixed on [moved], so
     it is a rectangle for both partitions *)
  Seq.filter_map
    (fun alpha ->
       let outer_a =
         IntSet.filter (fun u -> u land mo = alpha land mo) r.outer
       in
       let inner_a =
         IntSet.filter (fun v -> v land mi = alpha land mi) r.inner
       in
       if IntSet.is_empty outer_a || IntSet.is_empty inner_a then None
       else begin
         let inner' =
           IntSet.fold
             (fun v acc -> ((v lor (alpha land mo)) land ins_q) :: acc)
             inner_a []
         in
         let outer' =
           IntSet.fold
             (fun u acc -> ((u lor (alpha land mi)) land out_q) :: acc)
             outer_a []
         in
         Some (make q ~outer:outer' ~inner:inner')
       end)
    (Setview.subsets_of moved)
  |> List.of_seq

let count_diff r ~in_a ~in_b =
  Seq.fold_left
    (fun acc m ->
       if in_a m then acc + 1 else if in_b m then acc - 1 else acc)
    0 (members r)

let pp fmt r =
  Format.fprintf fmt "set-rect(%a, |S|=%d, |T|=%d)" Partition.pp r.partition
    (IntSet.cardinal r.outer) (IntSet.cardinal r.inner)
