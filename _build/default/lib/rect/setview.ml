open Ucfg_word

let of_word = Word.to_bits

let to_word ~n mask = Word.of_bits ~len:(2 * n) mask

let x_part ~n mask = mask land ((1 lsl n) - 1)

let y_part ~n mask = mask land (((1 lsl n) - 1) lsl n)

let interval_mask ~n i j =
  if i < 1 || j > 2 * n || i > j then invalid_arg "Setview.interval_mask";
  ((1 lsl (j - i + 1)) - 1) lsl (i - 1)

let universe ~n = (1 lsl (2 * n)) - 1

let in_ln ~n mask = Ucfg_lang.Ln.mem_code n mask

let all ~n =
  if 2 * n > 60 then invalid_arg "Setview.all: n too large";
  Seq.init (1 lsl (2 * n)) Fun.id

let subsets_of mask =
  (* descending submask enumeration: m, (m-1)&mask, ...; emit 0 last *)
  let rec from sub () =
    if sub = 0 then Seq.Cons (0, fun () -> Seq.Nil)
    else Seq.Cons (sub, from ((sub - 1) land mask))
  in
  from mask

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0
