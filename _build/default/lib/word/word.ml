type t = string

let length = String.length
let concat = ( ^ )
let concat_list = String.concat ""
let empty = ""

let is_over alpha w =
  String.for_all (fun c -> Alphabet.mem alpha c) w

let slice w pos len =
  if pos < 0 || len < 0 || pos + len > String.length w then
    invalid_arg "Word.slice: out of range";
  String.sub w pos len

let complement w =
  String.map
    (function
      | 'a' -> 'b'
      | 'b' -> 'a'
      | _ -> invalid_arg "Word.complement: non-binary character")
    w

let enumerate alpha n =
  if n < 0 then invalid_arg "Word.enumerate: negative length";
  let chars = List.to_seq (Alphabet.chars alpha) in
  (* Persistent lazy enumeration: extend every word of length [n-1] by each
     character in first position, so the order is lexicographic in the
     alphabet's own character order. *)
  let rec gen n =
    if n = 0 then Seq.return ""
    else
      Seq.concat_map
        (fun c -> Seq.map (fun rest -> String.make 1 c ^ rest) (gen (n - 1)))
        chars
  in
  gen n

let count alpha n = Ucfg_util.Bignum.pow (Ucfg_util.Bignum.of_int (Alphabet.size alpha)) n

let of_bits ~len bits =
  if len < 0 || len > 62 then invalid_arg "Word.of_bits: bad length";
  String.init len (fun i -> if (bits lsr i) land 1 = 1 then 'a' else 'b')

let to_bits w =
  let n = String.length w in
  if n > 62 then invalid_arg "Word.to_bits: word too long";
  let bits = ref 0 in
  for i = 0 to n - 1 do
    match w.[i] with
    | 'a' -> bits := !bits lor (1 lsl i)
    | 'b' -> ()
    | _ -> invalid_arg "Word.to_bits: non-binary character"
  done;
  !bits

let equal = String.equal
let compare = String.compare
let pp fmt w = Format.fprintf fmt "%S" w

module Set = Set.Make (String)
module Map = Map.Make (String)
