(** Words over an alphabet.

    Words are immutable strings; the binary alphabet additionally gets a
    packed integer code (bit [i] set iff position [i] carries an ['a'])
    which the set-perspective and the discrepancy machinery rely on for
    fast enumeration. *)

type t = string

val length : t -> int
val concat : t -> t -> t
val concat_list : t list -> t
val empty : t

(** [is_over alpha w] checks every character of [w] belongs to [alpha]. *)
val is_over : Alphabet.t -> t -> bool

(** [slice w pos len] is the subword of length [len] starting at 0-based
    [pos].  @raise Invalid_argument when out of range. *)
val slice : t -> int -> int -> t

(** [complement w] flips ['a'] and ['b'] (the \bar{w} of Example 4).
    @raise Invalid_argument on non-binary characters. *)
val complement : t -> t

(** [enumerate alpha n] is all words of length [n] over [alpha] in
    lexicographic order of character indices, as a lazy sequence. *)
val enumerate : Alphabet.t -> int -> t Seq.t

(** [count alpha n] is [|alpha|^n]. *)
val count : Alphabet.t -> int -> Ucfg_util.Bignum.t

(** [of_bits ~len bits] is the binary word of length [len] whose position
    [i] (0-based) is ['a'] iff bit [i] of [bits] is set.  Requires
    [len <= 62]. *)
val of_bits : len:int -> int -> t

(** [to_bits w] inverts {!of_bits}.  Requires a binary word with
    [length w <= 62]. *)
val to_bits : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
