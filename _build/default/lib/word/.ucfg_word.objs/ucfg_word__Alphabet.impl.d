lib/word/alphabet.ml: Array Char Format List String
