lib/word/word.ml: Alphabet Format List Map Seq Set String Ucfg_util
