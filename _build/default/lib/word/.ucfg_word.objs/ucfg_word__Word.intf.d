lib/word/word.mli: Alphabet Format Map Seq Set Ucfg_util
