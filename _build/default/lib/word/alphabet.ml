type t = { chars : char array }

let make chars =
  if chars = [] then invalid_arg "Alphabet.make: empty alphabet";
  let sorted = List.sort_uniq Char.compare chars in
  if List.length sorted <> List.length chars then
    invalid_arg "Alphabet.make: duplicate characters";
  { chars = Array.of_list chars }

let binary = make [ 'a'; 'b' ]

let size t = Array.length t.chars
let chars t = Array.to_list t.chars
let mem t c = Array.exists (Char.equal c) t.chars

let index t c =
  let n = Array.length t.chars in
  let rec go i =
    if i >= n then raise Not_found
    else if Char.equal t.chars.(i) c then i
    else go (i + 1)
  in
  go 0

let char_at t i =
  if i < 0 || i >= Array.length t.chars then
    invalid_arg "Alphabet.char_at: out of range";
  t.chars.(i)

let equal a b = a.chars = b.chars

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map (String.make 1) (chars t)))
