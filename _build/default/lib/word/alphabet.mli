(** Finite alphabets.

    The paper works over the binary alphabet [{a, b}]; the CSV application
    and the relational examples use slightly larger alphabets, so alphabets
    are explicit values rather than a global assumption. *)

type t

(** [make chars] builds an alphabet from a list of distinct characters,
    kept in the given order.  @raise Invalid_argument on duplicates or an
    empty list. *)
val make : char list -> t

(** The binary alphabet [{a, b}] used throughout the paper. *)
val binary : t

val size : t -> int
val chars : t -> char list
val mem : t -> char -> bool

(** [index t c] is the position of [c] in [t].  @raise Not_found. *)
val index : t -> char -> int

(** [char_at t i] is the [i]-th character.  @raise Invalid_argument. *)
val char_at : t -> int -> char

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
