module Bignum = Ucfg_util.Bignum

let cover_lower_bound n =
  if n < 1 then invalid_arg "Bound.cover_lower_bound";
  let m = n / 4 in
  if m = 0 then Bignum.zero
  else begin
    let numer = Bignum.sub (Bignum.pow (Bignum.of_int 12) m) (Bignum.two_pow (3 * m)) in
    if Bignum.sign numer <= 0 then Bignum.zero
    else begin
      (* divide by 2^⌈10m/3⌉ (conservative), by 2^8 for neatification, and
         by 2^6 more when n is not a multiple of 4 *)
      let e = ((10 * m) + 2) / 3 in
      let e = e + 8 + if n mod 4 = 0 then 0 else 6 in
      Bignum.div_pow2 numer e
    end
  end

let ucfg_size_lower_bound n =
  let cover = cover_lower_bound n in
  if Bignum.is_zero cover then Bignum.zero
  else begin
    (* ℓ <= 2n·|G| (Proposition 7 at word length 2n), so
       |G| >= ⌈ℓ / 2n⌉ *)
    let q, r = Bignum.divmod_int cover (2 * n) in
    if r = 0 then q else Bignum.succ q
  end

let log2_ucfg_bound n =
  let b = ucfg_size_lower_bound n in
  if Bignum.sign b <= 0 then neg_infinity else Bignum.log2 b

let first_nontrivial_n () =
  let rec go n =
    if n > 10_000 then invalid_arg "Bound.first_nontrivial_n: not found"
    else if Bignum.compare (ucfg_size_lower_bound n) Bignum.two >= 0 then n
    else go (n + 1)
  in
  go 1
