open Ucfg_rect
module Bignum = Ucfg_util.Bignum

type t = { n : int; m : int; masks : int list }

let create n =
  if n < 4 || n mod 4 <> 0 then
    invalid_arg "Blocks.create: n must be a positive multiple of 4";
  if 2 * n > 60 then invalid_arg "Blocks.create: n too large for masks";
  { n; m = n / 4; masks = Partition.blocks ~n }

let n t = t.n
let m t = t.m
let interval_masks t = t.masks

let in_family t mask =
  List.for_all (fun blk -> Setview.popcount (mask land blk) = 1) t.masks

let matches t mask =
  let x = mask land ((1 lsl t.n) - 1) in
  let y = mask lsr t.n in
  Setview.popcount (x land y)

let in_a t mask = in_family t mask && matches t mask mod 2 = 1
let in_b t mask = in_family t mask && matches t mask mod 2 = 0

let family t =
  (* choose an offset 0..3 in each of the 2m blocks *)
  let rec gen blocks =
    match blocks with
    | [] -> Seq.return 0
    | blk :: rest ->
      (* lowest bit position of blk *)
      let rec low b p = if b land 1 = 1 then p else low (b lsr 1) (p + 1) in
      let base = low blk 0 in
      Seq.concat_map
        (fun partial ->
           Seq.init 4 (fun off -> partial lor (1 lsl (base + off))))
        (gen rest)
  in
  gen t.masks

let family_cardinal t = Bignum.two_pow (4 * t.m)
