module Bignum = Ucfg_util.Bignum

let check_m m = if m < 1 then invalid_arg "Counts: m must be >= 1"

let family_size ~m =
  check_m m;
  Bignum.two_pow (4 * m)

let b_minus_ln ~m =
  check_m m;
  Bignum.pow (Bignum.of_int 12) m

let b_minus_a ~m =
  check_m m;
  Bignum.two_pow (3 * m)

let a_size ~m =
  check_m m;
  (* (2^(4m) - 2^(3m)) / 2 *)
  let q, r =
    Bignum.divmod_int (Bignum.sub (Bignum.two_pow (4 * m)) (Bignum.two_pow (3 * m))) 2
  in
  assert (r = 0);
  q

let b_size ~m =
  check_m m;
  let q, r =
    Bignum.divmod_int (Bignum.add (Bignum.two_pow (4 * m)) (Bignum.two_pow (3 * m))) 2
  in
  assert (r = 0);
  q

let advantage ~m =
  check_m m;
  Bignum.sub (b_minus_ln ~m) (b_minus_a ~m)

let advantage_exceeds_threshold ~m =
  check_m m;
  let adv = advantage ~m in
  Bignum.sign adv > 0
  && Bignum.compare (Bignum.mul adv adv) (Bignum.two_pow (7 * m)) > 0

let smallest_threshold_m () =
  let rec go m =
    if advantage_exceeds_threshold ~m then m
    else if m > 1000 then invalid_arg "Counts.smallest_threshold_m: not found"
    else go (m + 1)
  in
  go 1
