open Ucfg_rect
module Bignum = Ucfg_util.Bignum

let of_rectangle blocks r =
  Set_rectangle.count_diff r ~in_a:(Blocks.in_a blocks)
    ~in_b:(Blocks.in_b blocks)

let lemma19_bound ~m = Bignum.two_pow (3 * m)

let within_lemma23_bound ~m d =
  let d = Bignum.of_int (abs d) in
  Bignum.compare (Bignum.mul d (Bignum.mul d d)) (Bignum.two_pow (10 * m)) <= 0

let random_family_member blocks rng =
  List.fold_left
    (fun acc blk ->
       let rec low b p = if b land 1 = 1 then p else low (b lsr 1) (p + 1) in
       let base = low blk 0 in
       acc lor (1 lsl (base + Ucfg_util.Rng.int rng 4)))
    0
    (Blocks.interval_masks blocks)

let max_over_random blocks ~rng ~samples ~partition =
  let ins = Partition.inside partition in
  let out = Partition.outside partition in
  let best = ref 0 in
  for _ = 1 to samples do
    let picks = List.init 32 (fun _ -> random_family_member blocks rng) in
    let inner = List.sort_uniq compare (List.map (fun m -> m land ins) picks) in
    let outer = List.sort_uniq compare (List.map (fun m -> m land out) picks) in
    let r = Set_rectangle.make partition ~outer ~inner in
    let d = abs (of_rectangle blocks r) in
    if d > !best then best := d
  done;
  !best

let tight_example blocks =
  let n = Blocks.n blocks in
  let partition = Partition.make ~n 1 n in
  let ins = Partition.inside partition in
  (* every family member splits cleanly into its X and Y halves; collect
     the distinct halves *)
  let inner = Hashtbl.create 256 and outer = Hashtbl.create 256 in
  Seq.iter
    (fun m ->
       Hashtbl.replace inner (m land ins) ();
       Hashtbl.replace outer (m land lnot ins land Setview.universe ~n) ())
    (Blocks.family blocks);
  Set_rectangle.make partition
    ~outer:(Hashtbl.fold (fun k () acc -> k :: acc) outer [])
    ~inner:(Hashtbl.fold (fun k () acc -> k :: acc) inner [])
