(** Lemma 18, exactly.

    With [m = n/4]:
    - [|𝓛| = 2^(4m)],
    - [|B \ L_n| = 12^m] (the all-blocks-unmatched picks),
    - [|B| - |A| = 2^(3m)] (the binomial telescope),
    - [|A ∩ L_n| - |B ∩ L_n| = |A| - |B ∩ L_n| = 12^m - 2^(3m)],
    and the paper uses [12^m - 2^(3m) > 2^(7m/2)] for large [m].
    All values are exact big integers; the test-suite cross-checks them
    against brute-force enumeration for small [m]. *)

module Bignum = Ucfg_util.Bignum

val family_size : m:int -> Bignum.t
val b_minus_ln : m:int -> Bignum.t
val b_minus_a : m:int -> Bignum.t

(** [a_size ~m] = [(16^m - 8^m) / 2] and [b_size ~m] = [(16^m + 8^m) / 2]
    (from [|A| + |B| = 2^(4m)] and [|B| - |A| = 2^(3m)]). *)
val a_size : m:int -> Bignum.t

val b_size : m:int -> Bignum.t

(** [advantage ~m] = [|A ∩ L_n| - |B ∩ L_n| = 12^m - 2^(3m)]. *)
val advantage : m:int -> Bignum.t

(** [advantage_exceeds_threshold ~m] decides
    [12^m - 2^(3m) > 2^(7m/2)] exactly (by squaring, to avoid the
    half-integer exponent). *)
val advantage_exceeds_threshold : m:int -> bool

(** [smallest_threshold_m] is the least [m] with
    {!advantage_exceeds_threshold} — the point where the paper's "n
    sufficiently big" kicks in. *)
val smallest_threshold_m : unit -> int
