(** The block structure of the discrepancy argument (Section 4.2).

    For [n = 4m], [X ∪ Y] splits into [2m] intervals of size four;
    [𝓛] is the family of sets picking exactly one element from each
    interval, [A ⊆ 𝓛] are the picks with an {e odd} number of matched
    blocks (blocks where the [X]-choice and the [Y]-choice use the same
    offset, i.e. contribute an [x_ℓ, y_ℓ] pair), and [B = 𝓛 \ A]. *)

(** [create n] precomputes the blocks.  Requires [n >= 4] divisible
    by 4. *)
type t

val create : int -> t

val n : t -> int

(** [m t] = [n/4]. *)
val m : t -> int

(** [interval_masks t] — the [2m] block masks, [I^X] blocks first. *)
val interval_masks : t -> int list

(** [in_family t mask] — does [mask] pick exactly one element per
    block? *)
val in_family : t -> int -> bool

(** [matches t mask] — the number of [i ∈ [m]] with [x_i] and [y_i] both
    picked.  Meaningful for arbitrary masks; for family members it is the
    number of matched blocks. *)
val matches : t -> int -> int

val in_a : t -> int -> bool
val in_b : t -> int -> bool

(** [family t] enumerates [𝓛] ([16^m] masks — keep [m <= 5]). *)
val family : t -> int Seq.t

(** [family_cardinal t] = [2^(4m)], exactly (Lemma 18(1)). *)
val family_cardinal : t -> Ucfg_util.Bignum.t
