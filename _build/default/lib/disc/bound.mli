(** The end-to-end lower bound (Proposition 16 / Theorem 12 / Theorem 1(3)).

    Chaining the pieces, for a word length [2n] with [m = ⌊n/4⌋]:
    - any disjoint cover of [L_n] by balanced ordered rectangles has size
      [ℓ >= (12^m - 2^(3m)) / (2^(10m/3) · 256 [· 64])] — the [256] from
      Lemma 21's neatification, the extra [64] only when [n mod 4 ≠ 0]
      (the spare-element reduction of Section 4.3);
    - any uCFG [G] for [L_n] yields such a cover of size at most
      [2n·|G|] (Proposition 7), hence
      [|G| >= ℓ_min / 2n = 2^(Ω(n))].

    All bounds here round conservatively (they are valid lower bounds,
    slightly weaker than the real constants). *)

module Bignum = Ucfg_util.Bignum

(** [cover_lower_bound n] — minimum size of any disjoint cover of [L_n]
    by balanced ordered rectangles, as certified by the discrepancy
    argument.  May be 0 or 1 for small [n] (the bound only bites once
    [12^m - 2^(3m) > 0], i.e. [m >= 1] and asymptotically). *)
val cover_lower_bound : int -> Bignum.t

(** [ucfg_size_lower_bound n] = [cover_lower_bound n / 2n] (ceiling) —
    the Theorem 12 bound on the size of every uCFG accepting [L_n]. *)
val ucfg_size_lower_bound : int -> Bignum.t

(** [log2_ucfg_bound n] — [log₂] of the bound, for growth-rate tables
    (≈ [n·(log₂ 12 - 10/3)/4 ≈ 0.063·n] minus additive constants). *)
val log2_ucfg_bound : int -> float

(** [first_nontrivial_n ()] — the least [n] where
    [ucfg_size_lower_bound n >= 2]. *)
val first_nontrivial_n : unit -> int
