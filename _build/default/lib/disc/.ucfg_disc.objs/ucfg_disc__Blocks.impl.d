lib/disc/blocks.ml: List Partition Seq Setview Ucfg_rect Ucfg_util
