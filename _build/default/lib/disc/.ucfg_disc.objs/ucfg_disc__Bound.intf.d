lib/disc/bound.mli: Ucfg_util
