lib/disc/discrepancy.mli: Blocks Partition Set_rectangle Ucfg_rect Ucfg_util
