lib/disc/counts.mli: Ucfg_util
