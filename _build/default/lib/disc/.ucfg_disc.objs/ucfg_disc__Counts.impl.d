lib/disc/counts.ml: Ucfg_util
