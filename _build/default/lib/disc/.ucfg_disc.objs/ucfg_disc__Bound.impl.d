lib/disc/bound.ml: Ucfg_util
