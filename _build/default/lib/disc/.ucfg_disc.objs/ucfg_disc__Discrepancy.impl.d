lib/disc/discrepancy.ml: Blocks Hashtbl List Partition Seq Set_rectangle Setview Ucfg_rect Ucfg_util
