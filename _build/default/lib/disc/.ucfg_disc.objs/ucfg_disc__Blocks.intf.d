lib/disc/blocks.mli: Seq Ucfg_util
