(** Diagnostic records for the grammar and automaton linters.

    A diagnostic carries a stable code ([G001]…, [N001]…), a severity, a
    location inside the linted artifact, a human message and an optional
    fix hint.  Renderers produce the CLI's text output and a JSON encoding
    for toolchains.  The registry type {!check} documents each code's
    soundness status: a [Certificate] or [Definite] code is never wrong
    when it fires (or certifies), a [Heuristic] code may over-approximate,
    and a [Structural] code reports a syntactic property. *)

type severity = Error | Warning | Info

type location =
  | Whole  (** the grammar or automaton as a whole *)
  | Nonterminal of string  (** a nonterminal, by name *)
  | Rule of string * int
      (** [Rule (a, i)]: the [i]-th rule (0-based) of nonterminal [a] *)
  | State of int  (** an NFA state *)

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

(** Soundness status of a lint code, for the registry and the docs. *)
type soundness =
  | Certificate  (** certifies unambiguity; sound, never wrong *)
  | Definite  (** proves ambiguity (or tree blow-up); sound, never wrong *)
  | Heuristic  (** conservative warning; may flag unambiguous grammars *)
  | Structural  (** a syntactic fact, no semantic claim *)

(** A registry entry: one static check. *)
type check = { code : string; title : string; soundness : soundness }

val make :
  ?hint:string -> code:string -> severity:severity -> loc:location ->
  string -> t

val severity_label : severity -> string
val soundness_label : soundness -> string

(** {2 Runtime (R-code) diagnostics}

    The shared taxonomy for failures of the {e run}, not the grammar:
    guard trips, malformed inputs, cache damage.  The CLI renders them
    before exiting (124 / 2); the serve daemon embeds them in per-request
    error responses with the same codes and text. *)

(** [interrupted reason] is the R001 (timeout) / R002 (budget) /
    R003 (cancelled) error for a tripped {!Ucfg_exec.Guard}. *)
val interrupted : Ucfg_exec.Guard.reason -> t

(** [invalid_input msg] is the R010 error for malformed or unusable
    input (exit code 2 at the CLI). *)
val invalid_input : string -> t

(** [unsupported msg] is the R011 error for a request naming an unknown
    operation or parameter. *)
val unsupported : string -> t

(** [internal msg] is the R012 error for an unexpected server-side
    exception (exit code 70, [EX_SOFTWARE]): a fault of the daemon, not
    of the request. *)
val internal : string -> t

(** [busy ()] is the R013 error a daemon at capacity answers a shed
    connection with (and, with [~draining:true], one accepted after
    graceful shutdown began).  Retriable: the per-request [exit_code] is
    75 ([EX_TEMPFAIL]); clients should retry with jittered backoff. *)
val busy : ?draining:bool -> unit -> t

(** [read_timeout ms] is the R014 error for a connection whose request
    line was still incomplete after the read deadline ([ms]
    milliseconds) — slow-loris protection.  Retriable (exit 75); the
    daemon closes the connection after answering. *)
val read_timeout : float -> t

(** [oversized ~limit] is the R015 error for a request line longer than
    the daemon's [--max-request-bytes] cap.  A client error (exit 2);
    the connection is closed (the frame cannot be resynchronised). *)
val oversized : limit:int -> t

(** [cache_corrupt key] is the R020 warning: an on-disk cache entry
    failed hash verification and was transparently recomputed. *)
val cache_corrupt : string -> t

(** [checkpoint_corrupt reason] is the R021 warning: a requested search
    resume found a corrupt, truncated or parameter-mismatched checkpoint
    and degraded to a fresh run — never a wrong answer. *)
val checkpoint_corrupt : string -> t

(** Sort order: errors first, then warnings, then infos; ties by code. *)
val sort : t list -> t list

val has_errors : t list -> bool

(** [count_severity ds] is [(errors, warnings, infos)]. *)
val count_severity : t list -> int * int * int

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit

(** One diagnostic per line, followed by a summary count line. *)
val pp_report : Format.formatter -> t list -> unit

(** JSON object for one diagnostic, e.g.
    [{"code":"G001","severity":"warning","location":{"kind":"nonterminal",
    "name":"A"},"message":"...","hint":null}]. *)
val to_json : t -> string

(** JSON array of {!to_json} objects. *)
val list_to_json : t list -> string
