open Ucfg_automata
module D = Diag

let checks =
  [
    { D.code = "N001"; title = "unreachable states"; soundness = D.Structural };
    { D.code = "N002"; title = "states that reach no final state";
      soundness = D.Structural };
    { D.code = "N003"; title = "\xce\xb5-transitions present";
      soundness = D.Structural };
    { D.code = "N004"; title = "nondeterministic fan-out";
      soundness = D.Structural };
    { D.code = "N005"; title = "no initial or no final state";
      soundness = D.Structural };
    { D.code = "N006"; title = "ambiguous: off-diagonal self-product pair";
      soundness = D.Definite };
    { D.code = "N007"; title = "unambiguity certificate (self-product)";
      soundness = D.Certificate };
  ]

let sample_ids ids =
  let shown = List.filteri (fun i _ -> i < 4) ids in
  String.concat ", " (List.map string_of_int shown)
  ^ if List.length ids > 4 then ", ..." else ""

(* reachability over labelled + ε edges, forwards or backwards *)
let closure n seeds edges =
  let seen = Array.make n false in
  let queue = Queue.create () in
  let push s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Queue.add s queue
    end
  in
  List.iter push seeds;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter (fun (a, b) -> if a = s then push b) edges
  done;
  seen

let run a =
  let n = Nfa.state_count a in
  let fwd_edges =
    List.map (fun (s, _, d) -> (s, d)) (Nfa.transitions a) @ Nfa.epsilons a
  in
  let bwd_edges = List.map (fun (s, d) -> (d, s)) fwd_edges in
  let reach = closure n (Nfa.initials a) fwd_edges in
  let co = closure n (Nfa.finals a) bwd_edges in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* N001 / N002: useless states *)
  let unreachable =
    List.filter (fun s -> not reach.(s)) (List.init n (fun i -> i))
  in
  let dead =
    List.filter (fun s -> reach.(s) && not co.(s)) (List.init n (fun i -> i))
  in
  if unreachable <> [] then
    emit
      (D.make ~code:"N001" ~severity:D.Warning
         ~loc:(D.State (List.hd unreachable))
         ~hint:"Nfa.trim removes them"
         (Printf.sprintf "%d state%s unreachable from the initial states (%s)"
            (List.length unreachable)
            (if List.length unreachable = 1 then "" else "s")
            (sample_ids unreachable)));
  if dead <> [] then
    emit
      (D.make ~code:"N002" ~severity:D.Warning ~loc:(D.State (List.hd dead))
         ~hint:"Nfa.trim removes them"
         (Printf.sprintf "%d reachable state%s cannot reach a final state (%s)"
            (List.length dead)
            (if List.length dead = 1 then "" else "s")
            (sample_ids dead)));
  (* N003: ε-transitions *)
  let eps_free = Nfa.epsilon_count a = 0 in
  if not eps_free then
    emit
      (D.make ~code:"N003" ~severity:D.Info ~loc:D.Whole
         ~hint:"Nfa.remove_epsilon yields an equivalent \xce\xb5-free automaton"
         (Printf.sprintf
            "%d \xce\xb5-transition%s present; the self-product ambiguity \
             checks (N006/N007) are skipped"
            (Nfa.epsilon_count a)
            (if Nfa.epsilon_count a = 1 then "" else "s")));
  (* N004: nondeterministic fan-out — (state, letter) pairs with several
     successors.  None of these (plus a single initial state and ε-freeness)
     means the automaton is a DFA, hence trivially unambiguous. *)
  let fanout = Hashtbl.create 64 in
  List.iter
    (fun (s, c, _) ->
       Hashtbl.replace fanout (s, c)
         (1 + Option.value ~default:0 (Hashtbl.find_opt fanout (s, c))))
    (Nfa.transitions a);
  let nondet =
    Hashtbl.fold (fun k v acc -> if v >= 2 then k :: acc else acc) fanout []
    |> List.sort compare
  in
  (match nondet with
   | [] -> ()
   | (s, c) :: _ ->
     emit
       (D.make ~code:"N004" ~severity:D.Info ~loc:(D.State s)
          (Printf.sprintf
             "%d nondeterministic choice%s (first: state %d has several \
              '%c'-successors) — the only possible source of ambiguity"
             (List.length nondet)
             (if List.length nondet = 1 then "" else "s")
             s c)));
  (* N005: trivially empty automaton *)
  if Nfa.initials a = [] || Nfa.finals a = [] then
    emit
      (D.make ~code:"N005" ~severity:D.Warning ~loc:D.Whole
         (Printf.sprintf "no %s state: the language is empty"
            (if Nfa.initials a = [] then "initial" else "final")));
  (* N006 / N007: self-product criterion on the useful part, original ids *)
  if eps_free && Nfa.initials a <> [] && Nfa.finals a <> [] then begin
    let useful s = reach.(s) && co.(s) in
    let fwd = Hashtbl.create 256 in
    let queue = Queue.create () in
    let push pq =
      if not (Hashtbl.mem fwd pq) then begin
        Hashtbl.add fwd pq ();
        Queue.add pq queue
      end
    in
    let uinit = List.filter useful (Nfa.initials a) in
    List.iter (fun p -> List.iter (fun q -> push (p, q)) uinit) uinit;
    let chars = Ucfg_word.Alphabet.chars (Nfa.alphabet a) in
    let ustep s c = List.filter useful (Nfa.step a s c) in
    while not (Queue.is_empty queue) do
      let p, q = Queue.pop queue in
      List.iter
        (fun c ->
           List.iter
             (fun p' -> List.iter (fun q' -> push (p', q')) (ustep q c))
             (ustep p c))
        chars
    done;
    let co2 = Hashtbl.create 256 in
    let bqueue = Queue.create () in
    let bpush pq =
      if not (Hashtbl.mem co2 pq) then begin
        Hashtbl.add co2 pq ();
        Queue.add pq bqueue
      end
    in
    let ufinal = List.filter useful (Nfa.finals a) in
    List.iter (fun f -> List.iter (fun f' -> bpush (f, f')) ufinal) ufinal;
    let preds = Array.make n [] in
    List.iter
      (fun (s, c, d) ->
         if useful s && useful d then preds.(d) <- (s, c) :: preds.(d))
      (Nfa.transitions a);
    while not (Queue.is_empty bqueue) do
      let p, q = Queue.pop bqueue in
      List.iter
        (fun (p', c) ->
           List.iter
             (fun (q', c') -> if Char.equal c c' then bpush (p', q'))
             preds.(q))
        preds.(p)
    done;
    let witness =
      Hashtbl.fold
        (fun (p, q) () best ->
           if p < q && Hashtbl.mem co2 (p, q) then
             match best with
             | Some (p0, q0) when (p0, q0) <= (p, q) -> best
             | _ -> Some (p, q)
           else best)
        fwd None
    in
    match witness with
    | Some (p, q) ->
      emit
        (D.make ~code:"N006" ~severity:D.Error ~loc:(D.State p)
           ~hint:"Unambiguous.ambiguous_word finds a witness word"
           (Printf.sprintf
              "states %d and %d are simultaneously reachable on a common \
               prefix and co-reachable on a common suffix: some word has \
               two accepting runs — definitely ambiguous"
              p q))
    | None ->
      emit
        (D.make ~code:"N007" ~severity:D.Info ~loc:D.Whole
           "certified unambiguous: the self-product has no useful \
            off-diagonal pair, so every word has at most one accepting run")
  end;
  D.sort (List.rev !diags)
