open Ucfg_cfg
module D = Diag
module Lang = Ucfg_lang.Lang
module Packed = Ucfg_lang.Packed
module Word = Ucfg_word.Word
module Alphabet = Ucfg_word.Alphabet
module Bignum = Ucfg_util.Bignum
module Guard = Ucfg_exec.Guard
module Exec = Ucfg_exec.Exec

type backend = Counting | Packed | Mixed
type counterexample = { word : string; in_first : bool; in_second : bool }

type status =
  | Holds
  | Fails of counterexample
  | Interrupted of Guard.reason

type property = Universal | Includes | Equiv | Disjoint

type report = {
  property : property;
  status : status;
  backend : backend;
  vacuous : bool;
  cardinal : Bignum.t option;
  cardinal2 : Bignum.t option;
  cross_check : D.t option;
}

let checks =
  [
    { D.code = "G016"; title = "not universal (shortest missing word)";
      soundness = D.Definite };
    { D.code = "G017";
      title = "inclusion / disjointness violation (shortest witness)";
      soundness = D.Definite };
    { D.code = "G018"; title = "equivalence mismatch (shortest witness)";
      soundness = D.Definite };
    { D.code = "G019"; title = "empty language — vacuous verdict";
      soundness = D.Structural };
    { D.code = "G020"; title = "counting/packed backend disagreement";
      soundness = D.Definite };
  ]

(* --- per-length slices ---------------------------------------------------- *)

(* A language cut at one length, with the packed backend exposed when the
   slice lives there (binary, <= Packed.max_length).  All witness searches
   walk slices in ascending length and words in lexicographic order, which
   is exactly what makes every extracted counterexample shortest-then-least. *)
type slice = { len : int; lang : Lang.t; packed : Packed.t option }

let slices lang =
  match Lang.uniform_length lang with
  | Some len when Lang.tier lang <> `Set ->
    (* a tiered value (T0/T1/T2) is uniform-length by construction — it is
       its own single slice, and [Lang.filter]'s word enumeration (fatal on
       a factorised language of billions of words) never runs *)
    [ { len; lang; packed = Lang.to_packed lang } ]
  | _ ->
    List.map
      (fun len ->
         let sl = Lang.filter (fun w -> String.length w = len) lang in
         { len; lang = sl; packed = Lang.to_packed (Lang.pack sl) })
      (Lang.lengths lang)

let seq_head s = match s () with Seq.Nil -> None | Seq.Cons (x, _) -> Some x
let min_of_lang l = seq_head (Lang.to_seq l)

(* least word of [s1 \ s2] ([s2] absent means nothing on the right at this
   length, so the least word of [s1] itself separates).  The non-packed
   fallback is still tier-aware: [Lang.diff] dispatches to the T1/T2
   algebra and [Lang.to_seq] is a lazy lexicographic descent, so the head
   costs O(len) even on a circuit. *)
let diff_min s1 s2o =
  match s2o with
  | None -> min_of_lang s1.lang
  | Some s2 ->
    (match s1.packed, s2.packed with
     | Some p1, Some p2 ->
       Option.map (Packed.word_of_code ~len:s1.len)
         (Packed.first_code (Packed.diff p1 p2))
     | _ -> min_of_lang (Lang.diff s1.lang s2.lang))

(* least word of [s1 ∩ s2] *)
let inter_min s1 s2 =
  match s1.packed, s2.packed with
  | Some p1, Some p2 ->
    Option.map (Packed.word_of_code ~len:s1.len)
      (Packed.first_code (Packed.inter p1 p2))
  | _ -> min_of_lang (Lang.inter s1.lang s2.lang)

(* least word of [Σ^len \ s] — the gap scan on the packed codes when the
   alphabet is the binary one, a lazy lexicographic enumeration otherwise.
   Either way the work is O(cardinal), never O(|Σ|^len): in lexicographic
   order the first absent word sits at an index bounded by the cardinal. *)
let missing_min ~guard alpha s =
  if Alphabet.equal alpha Alphabet.binary then
    match s.packed with
    | Some p ->
      Option.map (Packed.word_of_code ~len:s.len) (Packed.first_absent_code p)
    | None ->
      (match Lang.tier s.lang with
       | `T1 | `T2 ->
         (* the multi-limb gap scan / circuit descent — never a 2^len
            sweep, which [Word.enumerate] would be beyond length 62 *)
         Lang.first_absent_word s.lang
       | _ ->
         Seq.find
           (fun w -> Guard.tick guard; not (Lang.mem w s.lang))
           (Word.enumerate alpha s.len))
  else
    Seq.find
      (fun w -> Guard.tick guard; not (Lang.mem w s.lang))
      (Word.enumerate alpha s.len)

(* --- universality --------------------------------------------------------- *)

(* Counting route, sound only under the unambiguity certificate: for an
   unambiguous grammar the total parse-tree count *is* the cardinal, so
   L = Σ^ℓ iff the lengths are uniform and the count equals |Σ|^ℓ — no word
   is enumerated.  [None] when the route cannot decide (cyclic after
   trimming, which the certificate rules out anyway). *)
let counting_universal g =
  let gt = Trim.trim g in
  match Static.length_ranges gt with
  | exception Invalid_argument _ -> None
  | ranges ->
    (match ranges.(Grammar.start gt) with
     | None -> Some `Empty
     | Some (lo, hi) ->
       let count = Analysis.count_trees_total gt in
       if lo = hi && Bignum.equal count (Word.count (Grammar.alphabet g) lo)
       then Some (`Universal count)
       else Some (`Non_universal count))

(* Packed route: materialise, then decide at the least populated length —
   a missing word there refutes, and any second length refutes (no Σ^ℓ
   mixes lengths). *)
let packed_universal ~guard g =
  let alpha = Grammar.alphabet g in
  let lang = Analysis.language_exn ~guard g in
  if Lang.is_empty lang then `Empty
  else
    let card = Lang.cardinal_big lang in
    let sls = slices lang in
    let s0 = List.hd sls in
    match missing_min ~guard alpha s0 with
    | Some w -> `Fails ({ word = w; in_first = false; in_second = true }, card)
    | None ->
      (match sls with
       | [] | [ _ ] -> `Holds card
       | _ :: s1 :: _ ->
         let w = Option.get (min_of_lang s1.lang) in
         `Fails ({ word = w; in_first = true; in_second = false }, card))

let mismatch_diag fmt = Printf.ksprintf (fun msg ->
    D.make ~code:"G020" ~severity:D.Error ~loc:D.Whole
      ~hint:"one of the two backends has a soundness bug — please report"
      ("internal soundness error: " ^ msg))
    fmt

let big_opt = function None -> "?" | Some b -> Bignum.to_string b

(* G020: the two routes must agree on verdict and cardinal whenever both
   ran.  This is the end-to-end cross-check of the counting argument
   against the materialising algebra. *)
let cross_universal counting packed =
  match counting, packed with
  | None, _ | _, None -> None
  | Some c, Some p ->
    let c_verdict, c_card =
      match c with
      | `Empty -> `F, Some Bignum.zero
      | `Universal n -> `H, Some n
      | `Non_universal n -> `F, Some n
    in
    let p_verdict, p_card =
      match p with
      | `Empty -> `F, Some Bignum.zero
      | `Holds n -> `H, Some n
      | `Fails (_, n) -> `F, Some n
    in
    if c_verdict <> p_verdict then
      Some
        (mismatch_diag
           "universality: counting backend says %s, packed backend says %s"
           (if c_verdict = `H then "universal" else "not universal")
           (if p_verdict = `H then "universal" else "not universal"))
    else if not (Option.equal Bignum.equal c_card p_card) then
      Some
        (mismatch_diag
           "universality: counting backend finds |L| = %s, packed backend %s"
           (big_opt c_card) (big_opt p_card))
    else None

let universal ?guard ?(cross_check = false) g =
  let guard =
    match guard with Some g -> g | None -> Exec.current_guard ()
  in
  let report status backend ~vacuous ?cardinal ?cardinal2 ?cross () =
    { property = Universal; status; backend; vacuous; cardinal; cardinal2;
      cross_check = cross }
  in
  try
    let counting = if Static.certificate g then counting_universal g else None in
    match counting with
    | Some (`Universal count) when not cross_check ->
      (* decided purely by counting: |L| = total trees = |Σ|^ℓ *)
      report Holds Counting ~vacuous:false ~cardinal:count ~cardinal2:count ()
    | _ ->
      (* the packed route runs when there is no certificate, when a witness
         is needed, or when the caller asked for the cross-check *)
      let packed = packed_universal ~guard g in
      let cross = cross_universal counting (Some packed) in
      let backend = if counting = None then Packed else Counting in
      (match packed with
       | `Empty ->
         report
           (Fails { word = ""; in_first = false; in_second = true })
           backend ~vacuous:true ~cardinal:Bignum.zero ?cross ()
       | `Holds card ->
         report Holds backend ~vacuous:false ~cardinal:card ~cardinal2:card
           ?cross ()
       | `Fails (cex, card) ->
         report (Fails cex) backend ~vacuous:false ~cardinal:card ?cross ())
  with Guard.Interrupt r ->
    report (Interrupted r) Packed ~vacuous:false ()

(* --- inclusion / disjointness -------------------------------------------- *)

(* Counting route for the relational checks, sound under the certificate on
   [g2]: membership of each word of L1 in L2 is an exact tree count under a
   shared compiled plan — L2 is never materialised.  The per-length word
   sweeps fan over the pool; [Exec.parallel_find_map] returns the first
   match in list order, so the witness (and hence the whole verdict) is
   jobs-invariant. *)
let counting_scan ~guard ~want g2 lang1 =
  let plan2 = Count_word.plan g2 in
  let hit w =
    Guard.tick guard;
    let inside = Bignum.sign (Count_word.trees_with plan2 w) > 0 in
    if inside = want then Some w else None
  in
  List.find_map
    (fun s -> Exec.parallel_find_map hit (List.of_seq (Lang.to_seq s.lang)))
    (slices lang1)

let packed_scan ~guard ~diff lang1 lang2 =
  let sls2 = slices lang2 in
  let find2 len = List.find_opt (fun (s : slice) -> s.len = len) sls2 in
  Exec.parallel_map
    (fun s1 ->
       Guard.check guard;
       match find2 s1.len with
       | s2o when diff -> diff_min s1 s2o
       | None -> None
       | Some s2 -> inter_min s1 s2)
    (slices lang1)
  |> List.find_map Fun.id

let cross_relational name c_witness p_witness =
  match c_witness, p_witness with
  | None, _ | _, None -> None
  | Some cw, Some pw ->
    let show = function
      | None -> "holds"
      | Some w -> Printf.sprintf "fails on %S" w
    in
    if cw = pw then None
    else
      Some
        (mismatch_diag "%s: counting backend %s, packed backend %s" name
           (show cw) (show pw))

(* [relational ~prop g1 g2]: inclusion when [prop = Includes] (witness in
   L1 \ L2), disjointness when [prop = Disjoint] (witness in L1 ∩ L2). *)
let relational ~prop ?guard ?(cross_check = false) g1 g2 =
  let guard =
    match guard with Some g -> g | None -> Exec.current_guard ()
  in
  let report status backend ~vacuous ?cardinal ?cardinal2 ?cross () =
    { property = prop; status; backend; vacuous; cardinal; cardinal2;
      cross_check = cross }
  in
  let diff = prop = Includes in
  try
    let lang1 = Analysis.language_exn ~guard g1 in
    let card1 = Lang.cardinal_big lang1 in
    if Lang.is_empty lang1 then
      (* ∅ ⊆ L2 and ∅ ∩ L2 = ∅, whatever L2 is *)
      report Holds Packed ~vacuous:true ~cardinal:Bignum.zero ()
    else begin
      let use_counting = Static.certificate g2 in
      let c_witness =
        if use_counting then
          Some (counting_scan ~guard ~want:(not diff) g2 lang1)
        else None
      in
      let p_result =
        if (not use_counting) || cross_check then begin
          let lang2 = Analysis.language_exn ~guard g2 in
          Some (packed_scan ~guard ~diff lang1 lang2, lang2)
        end
        else None
      in
      let cross =
        cross_relational
          (if diff then "inclusion" else "disjointness")
          c_witness (Option.map fst p_result)
      in
      let witness =
        match c_witness with Some w -> w | None -> fst (Option.get p_result)
      in
      let backend = if use_counting then Counting else Packed in
      let vacuous =
        match p_result with Some (_, l2) -> Lang.is_empty l2 | None -> false
      in
      let cardinal2 =
        Option.map (fun (_, l2) -> Lang.cardinal_big l2) p_result
      in
      match witness with
      | None ->
        report Holds backend ~vacuous ~cardinal:card1 ?cardinal2 ?cross ()
      | Some w ->
        report
          (Fails { word = w; in_first = true; in_second = not diff })
          backend ~vacuous ~cardinal:card1 ?cardinal2 ?cross ()
    end
  with Guard.Interrupt r ->
    report (Interrupted r) Packed ~vacuous:false ()

let includes ?guard ?cross_check g1 g2 =
  relational ~prop:Includes ?guard ?cross_check g1 g2

let disjoint ?guard ?cross_check g1 g2 =
  relational ~prop:Disjoint ?guard ?cross_check g1 g2

(* --- equivalence ---------------------------------------------------------- *)

let equiv ?guard ?cross_check g1 g2 =
  let r1 = relational ~prop:Includes ?guard ?cross_check g1 g2 in
  match r1.status with
  | Fails _ | Interrupted _ -> { r1 with property = Equiv }
  | Holds ->
    let r2 = relational ~prop:Includes ?guard ?cross_check g2 g1 in
    let status =
      match r2.status with
      | Fails cex ->
        (* the swapped call's witness lives in L2 \ L1 *)
        Fails { cex with in_first = false; in_second = true }
      | s -> s
    in
    {
      property = Equiv;
      status;
      backend = (if r1.backend = r2.backend then r1.backend else Mixed);
      vacuous = r1.vacuous || r2.vacuous;
      cardinal = r1.cardinal;
      cardinal2 = r2.cardinal;
      cross_check =
        (match r1.cross_check with Some d -> Some d | None -> r2.cross_check);
    }

(* --- rendering ------------------------------------------------------------ *)

let property_name = function
  | Universal -> "universality"
  | Includes -> "inclusion"
  | Equiv -> "equivalence"
  | Disjoint -> "disjointness"

let interrupt_code = function
  | Guard.Timeout -> "R001"
  | Guard.Budget -> "R002"
  | Guard.Cancel -> "R003"

let fail_diag ~severity property (cex : counterexample) =
  let make = D.make ~severity ~loc:D.Whole in
  match property with
  | Universal ->
    if cex.in_first then
      make ~code:"G016"
        ~hint:"a universal language is uniform-length; every Σ^ℓ misses \
               words of the other lengths"
        (Printf.sprintf
           "not universal: the language mixes word lengths — %S lies \
            outside Σ^ℓ of the least length" cex.word)
    else
      make ~code:"G016"
        ~hint:"the witness is the lexicographically least missing word of \
               the shortest length"
        (Printf.sprintf "not universal: %S (length %d) is not derived"
           cex.word (String.length cex.word))
  | Includes ->
    make ~code:"G017"
      ~hint:"the witness is the shortest, lexicographically least word of \
             the difference"
      (Printf.sprintf "inclusion violated: %S ∈ L(G1) ∖ L(G2)" cex.word)
  | Disjoint ->
    make ~code:"G017"
      ~hint:"disjointness is inclusion in the complement; the witness is \
             the shortest word of the intersection"
      (Printf.sprintf "not disjoint: %S ∈ L(G1) ∩ L(G2)" cex.word)
  | Equiv ->
    let side = if cex.in_first then "L(G1) ∖ L(G2)" else "L(G2) ∖ L(G1)" in
    make ~code:"G018"
      ~hint:"the witness is the shortest, lexicographically least word of \
             the symmetric difference"
      (Printf.sprintf "not equivalent: %S ∈ %s" cex.word side)

let to_diags ?(fail_severity = D.Error) r =
  let ds = ref [] in
  (match r.status with
   | Holds -> ()
   | Fails _ when r.vacuous && r.property = Universal ->
     (* an empty language is trivially non-universal; the G019 below says
        it all, a synthetic witness would only mislead *)
     ds :=
       [ D.make ~code:"G016" ~severity:fail_severity ~loc:D.Whole
           "not universal: the language is empty" ]
   | Fails cex -> ds := [ fail_diag ~severity:fail_severity r.property cex ]
   | Interrupted reason ->
     ds :=
       [ D.make ~code:(interrupt_code reason) ~severity:D.Warning ~loc:D.Whole
           ~hint:"raise --timeout/--budget for a full verdict"
           (Printf.sprintf "semantic check interrupted (%s) — %s undecided, \
                            partial verdict" (Guard.reason_code reason)
              (property_name r.property)) ]);
  if r.vacuous then
    ds :=
      D.make ~code:"G019" ~severity:D.Warning ~loc:D.Whole
        (Printf.sprintf "empty operand language — %s decided vacuously"
           (property_name r.property))
      :: !ds;
  (match r.cross_check with Some d -> ds := d :: !ds | None -> ());
  D.sort !ds

let lint ?guard ?(cross_check = true) g =
  match universal ?guard ~cross_check g with
  | r -> to_diags ~fail_severity:D.Info r
  | exception Invalid_argument _ ->
    (* language too large to materialise (or infinite): the syntactic tier
       already reports G008; the semantic tier has nothing sound to add *)
    []
