(** Static diagnostics for NFAs.

    Seven checks with stable codes, mirroring the grammar linter.  [N006]
    and [N007] together implement the self-product criterion of
    {!Ucfg_automata.Unambiguous.is_unambiguous}: on the useful part of an
    ε-free automaton, a reachable and co-reachable off-diagonal product
    pair exists iff some word has two accepting runs — so [N006] is a
    {e definite} ambiguity proof and [N007] a {e certificate} of
    unambiguity.  Both are skipped (no claim either way) when the
    automaton has ε-transitions; [N003] points at
    {!Ucfg_automata.Nfa.remove_epsilon} in that case.

    {v
    N001  unreachable states                        structural  warning
    N002  states that reach no final state          structural  warning
    N003  ε-transitions present                     structural  info
    N004  nondeterministic fan-out                  structural  info
    N005  no initial or no final state              structural  warning
    N006  ambiguous: off-diagonal self-product pair definite    error
    N007  unambiguity certificate (self-product)    certificate info
    v} *)

(** The registry: every check this linter implements, in code order. *)
val checks : Diag.check list

(** [run a] runs every check and returns the diagnostics sorted
    errors-first (see {!Diag.sort}).  States are reported with the
    original automaton's ids. *)
val run : Ucfg_automata.Nfa.t -> Diag.t list
