open Ucfg_cfg
open Grammar
module D = Diag

let checks =
  [
    { D.code = "G001"; title = "unproductive nonterminal";
      soundness = D.Structural };
    { D.code = "G002"; title = "unreachable nonterminal";
      soundness = D.Structural };
    { D.code = "G003"; title = "empty language"; soundness = D.Structural };
    { D.code = "G004"; title = "self-referential rule";
      soundness = D.Definite };
    { D.code = "G005"; title = "unit-rule cycle"; soundness = D.Definite };
    { D.code = "G006"; title = "\xce\xb5-cycle"; soundness = D.Definite };
    { D.code = "G007"; title = "dependency cycle among useful nonterminals";
      soundness = D.Definite };
    { D.code = "G008"; title = "infinite language"; soundness = D.Structural };
    { D.code = "G009"; title = "duplicate rule via unit indirection";
      soundness = D.Definite };
    { D.code = "G010"; title = "not in Chomsky normal form";
      soundness = D.Structural };
    { D.code = "G011"; title = "start symbol on a right-hand side";
      soundness = D.Structural };
    { D.code = "G012"; title = "vertical ambiguity (FIRST-set overlap)";
      soundness = D.Heuristic };
    { D.code = "G013"; title = "definite ambiguity (bounded tree-count probe)";
      soundness = D.Definite };
    { D.code = "G014"; title = "horizontal ambiguity (two factorisations)";
      soundness = D.Heuristic };
    { D.code = "G015"; title = "unambiguity certificate";
      soundness = D.Certificate };
  ]

(* --- helpers ------------------------------------------------------------- *)

let rhs_to_string g rhs =
  if rhs = [] then "\xce\xb5"
  else
    String.concat " "
      (List.map (fun s -> Format.asprintf "%a" (Grammar.pp_sym g) s) rhs)

(* first cycle (as a node list) in the directed graph over [0..n-1], or
   None; simple colored DFS, deterministic *)
let find_cycle n edges =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let cycle = ref None in
  let rec visit path v =
    if !cycle = None then begin
      color.(v) <- 1;
      List.iter
        (fun w ->
           if !cycle = None then
             if color.(w) = 1 then begin
               (* unwind [path] back to [w] to extract the cycle *)
               let rec take acc = function
                 | [] -> acc
                 | x :: _ when x = w -> w :: acc
                 | x :: rest -> take (x :: acc) rest
               in
               cycle := Some (take [ v ] path)
             end
             else if color.(w) = 0 then visit (v :: path) w)
        adj.(v);
      if color.(v) = 1 then color.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    if color.(v) = 0 && !cycle = None then visit [] v
  done;
  !cycle

let cycle_to_string g cyc =
  String.concat " -> " (List.map (fun a -> "<" ^ name g a ^ ">") cyc)
  ^ " -> <"
  ^ name g (List.hd cyc)
  ^ ">"

(* --- the linter ---------------------------------------------------------- *)

let run ?probe_words ?probe_len ?(semantic = false) g =
  let n = nonterminal_count g in
  let prod = Trim.productive g in
  let reach = Trim.reachable g in
  let useful i = prod.(i) && reach.(i) in
  let finite = Analysis.is_finite g in
  let finitely_many_trees = Analysis.has_finitely_many_trees g in
  let acyclic =
    match Analysis.topological_order g with
    | (_ : int list) -> true
    | exception Invalid_argument _ -> false
  in
  let null = Static.nullable g in
  let first = Static.first_sets g in
  let last = Static.last_sets g in
  let usable rhs = List.for_all (function T _ -> true | N i -> prod.(i)) rhs in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* G001 / G002: useless nonterminals *)
  for i = 0 to n - 1 do
    if not prod.(i) then
      emit
        (D.make ~code:"G001" ~severity:D.Warning ~loc:(D.Nonterminal (name g i))
           ~hint:"remove it, or add a rule deriving a terminal word"
           "nonterminal derives no terminal word; rules mentioning it are dead")
    else if (not reach.(i)) && i <> start g then
      emit
        (D.make ~code:"G002" ~severity:D.Warning ~loc:(D.Nonterminal (name g i))
           ~hint:"remove it, or reference it from a reachable rule"
           "nonterminal occurs in no parse tree rooted at the start symbol")
  done;
  (* G003: empty language *)
  if not prod.(start g) then
    emit
      (D.make ~code:"G003" ~severity:D.Warning
         ~loc:(D.Nonterminal (name g (start g)))
         "the start symbol derives no word: the language is empty");
  (* G004: self-referential rules *)
  for a = 0 to n - 1 do
    List.iteri
      (fun idx rhs ->
         if List.exists (function N i -> i = a | T _ -> false) rhs then
           if useful a && usable rhs && finite then
             emit
               (D.make ~code:"G004" ~severity:D.Error
                  ~loc:(D.Rule (name g a, idx))
                  ~hint:"unfold or remove the recursion"
                  (Printf.sprintf
                     "directly recursive rule pumps parse trees over a \
                      finite language: <%s> is definitely ambiguous"
                     (name g a)))
           else
             emit
               (D.make ~code:"G004" ~severity:D.Info
                  ~loc:(D.Rule (name g a, idx))
                  "directly recursive rule (infinitely many parse trees if \
                   ever used)"))
      (rules_of g a)
  done;
  (* unit / ε edges for the two cycle checks *)
  let unit_edges =
    List.filter_map
      (fun { lhs; rhs } -> match rhs with [ N b ] -> Some (lhs, b) | _ -> None)
      (rules g)
  in
  let eps_edges =
    (* a -> b through a non-unit rule whose remaining symbols all derive ε:
       a =>+ b inserting only ε-subtrees *)
    List.concat_map
      (fun { lhs; rhs } ->
         if List.length rhs < 2 then []
         else
           List.filteri
             (fun i _ -> i >= 0)
             (List.mapi (fun i s -> (i, s)) rhs)
           |> List.filter_map (fun (i, s) ->
               match s with
               | T _ -> None
               | N b ->
                 let others_nullable =
                   List.for_all
                     (fun (j, s') ->
                        j = i
                        || (match s' with T _ -> false | N k -> null.(k)))
                     (List.mapi (fun j s' -> (j, s')) rhs)
                 in
                 if others_nullable then Some (lhs, b) else None))
      (rules g)
  in
  let cycle_check code what hint edges =
    let useful_edges = List.filter (fun (a, b) -> useful a && useful b) edges in
    match find_cycle n useful_edges with
    | Some cyc ->
      emit
        (D.make ~code ~severity:D.Error ~loc:(D.Nonterminal (name g (List.hd cyc)))
           ~hint
           (Printf.sprintf
              "%s %s: every word below it has unboundedly many parse trees \
               — definitely ambiguous"
              what (cycle_to_string g cyc)))
    | None ->
      (match find_cycle n edges with
       | Some cyc ->
         emit
           (D.make ~code ~severity:D.Warning
              ~loc:(D.Nonterminal (name g (List.hd cyc)))
              ~hint
              (Printf.sprintf "%s %s (among useless nonterminals)" what
                 (cycle_to_string g cyc)))
       | None -> ())
  in
  (* G005 / G006: unit-rule and ε cycles *)
  cycle_check "G005" "unit-rule cycle" "collapse the chain of unit rules"
    unit_edges;
  cycle_check "G006" "\xce\xb5-cycle"
    "break the cycle of \xce\xb5-deriving contexts" eps_edges;
  (* G007: general dependency cycle on the useful part *)
  if not finitely_many_trees then begin
    let dep_edges =
      List.filter (fun (a, b) -> useful a && useful b) (dependency_edges g)
    in
    match find_cycle n dep_edges with
    | Some cyc ->
      if finite then
        emit
          (D.make ~code:"G007" ~severity:D.Error
             ~loc:(D.Nonterminal (name g (List.hd cyc)))
             ~hint:"acyclic grammars suffice for finite languages"
             (Printf.sprintf
                "dependency cycle %s with a finite language: infinitely many \
                 parse trees over finitely many words — definitely ambiguous"
                (cycle_to_string g cyc)))
      else
        emit
          (D.make ~code:"G007" ~severity:D.Info
             ~loc:(D.Nonterminal (name g (List.hd cyc)))
             (Printf.sprintf
                "dependency cycle %s: infinitely many parse trees; \
                 counting-based checks are unavailable"
                (cycle_to_string g cyc)))
    | None -> ()
  end;
  (* G008: infinite language *)
  if not finite then
    emit
      (D.make ~code:"G008" ~severity:D.Info ~loc:D.Whole
         "the language is infinite — outside the finite-language scope of \
          the exhaustive analyses (Ambiguity.check will reject)");
  (* G009: duplicate rule via unit indirection *)
  for a = 0 to n - 1 do
    List.iteri
      (fun idx rhs ->
         match rhs with
         | [ N b ] when b <> a ->
           List.iter
             (fun beta ->
                if beta <> [ N b ] && usable beta && has_rule g a beta then
                  emit
                    (D.make ~code:"G009"
                       ~severity:(if useful a then D.Error else D.Warning)
                       ~loc:(D.Rule (name g a, idx))
                       ~hint:"drop the unit rule or the duplicated alternative"
                       (Printf.sprintf
                          "<%s> -> <%s> and <%s> -> %s duplicate <%s> -> %s: \
                           every word of that alternative gets two parse trees%s"
                          (name g a) (name g b) (name g b)
                          (rhs_to_string g beta) (name g a)
                          (rhs_to_string g beta)
                          (if useful a then " — definitely ambiguous" else ""))))
             (rules_of g b)
         | _ -> ())
      (rules_of g a)
  done;
  (* G010: CNF readiness *)
  let start_on_rhs =
    List.exists
      (fun { rhs; _ } ->
         List.exists (function N i -> i = start g | T _ -> false) rhs)
      (rules g)
  in
  let cnf_violations =
    List.concat
      (List.concat
         (List.init n (fun a ->
              List.mapi
                (fun idx rhs ->
                   match rhs with
                   | [ T _ ] | [ N _; N _ ] -> []
                   | [] when a = start g && not start_on_rhs -> []
                   | _ -> [ (a, idx, rhs) ])
                (rules_of g a))))
  in
  (match cnf_violations with
   | [] -> ()
   | (a, idx, rhs) :: _ ->
     emit
       (D.make ~code:"G010" ~severity:D.Info ~loc:(D.Rule (name g a, idx))
          ~hint:"Cnf.of_grammar normalises within a quadratic size bound"
          (Printf.sprintf
             "%d rule%s break%s Chomsky normal form (first: <%s> -> %s)"
             (List.length cnf_violations)
             (if List.length cnf_violations = 1 then "" else "s")
             (if List.length cnf_violations = 1 then "s" else "")
             (name g a) (rhs_to_string g rhs))));
  (* G011: start symbol on a right-hand side *)
  if start_on_rhs then begin
    let where =
      List.find_map
        (fun a ->
           List.find_map
             (fun (idx, rhs) ->
                if List.exists (function N i -> i = start g | T _ -> false) rhs
                then Some (a, idx)
                else None)
             (List.mapi (fun i r -> (i, r)) (rules_of g a)))
        (List.init n (fun i -> i))
    in
    match where with
    | Some (a, idx) ->
      emit
        (D.make ~code:"G011" ~severity:D.Info ~loc:(D.Rule (name g a, idx))
           "the start symbol occurs on a right-hand side (blocks the CNF \
            start-\xce\xb5 convention)")
    | None -> ()
  end;
  (* G012: vertical-ambiguity heuristic *)
  for a = 0 to n - 1 do
    if useful a then begin
      let rhss = rules_of g a in
      if List.length rhss >= 2 then begin
        let firsts =
          List.map (fun rhs -> Static.rhs_first ~nullable:null ~first rhs) rhss
        in
        let nullable_rules =
          List.length (List.filter (Static.rhs_nullable null) rhss)
        in
        let overlap = ref None in
        List.iteri
          (fun i fi ->
             List.iteri
               (fun j fj ->
                  if j > i && !overlap = None then
                    match Static.Cset.choose_opt (Static.Cset.inter fi fj) with
                    | Some c -> overlap := Some (i, j, c)
                    | None -> ())
               firsts)
          firsts;
        match (!overlap, nullable_rules >= 2) with
        | Some (i, j, c), _ ->
          emit
            (D.make ~code:"G012" ~severity:D.Warning
               ~loc:(D.Nonterminal (name g a))
               ~hint:"disjoint FIRST sets per nonterminal make rule choice \
                      deterministic"
               (Printf.sprintf
                  "rules #%d and #%d can both start a word with '%c' — \
                   possible vertical ambiguity"
                  i j c))
        | None, true ->
          emit
            (D.make ~code:"G012" ~severity:D.Warning
               ~loc:(D.Nonterminal (name g a))
               "two rules derive \xce\xb5 — \xce\xb5 has two parse trees here")
        | None, false -> ()
      end
    end
  done;
  (* G013 / G015: the sound verdicts *)
  (match Static.verdict ?probe_words ?probe_len g with
   | Static.Ambiguous { nonterminal; word } ->
     emit
       (D.make ~code:"G013" ~severity:D.Error ~loc:(D.Nonterminal nonterminal)
          ~hint:"Ambiguity.ambiguous_witness reproduces a witness"
          (Printf.sprintf
             "%S has at least two parse trees below <%s> (bounded \
              tree-count probe) — definitely ambiguous"
             word nonterminal))
   | Static.Unambiguous ->
     emit
       (D.make ~code:"G015" ~severity:D.Info ~loc:D.Whole
          "certified unambiguous: pairwise-disjoint FIRST sets, at most one \
           nullable rule per nonterminal, and at most one variable-length \
           symbol per rule")
   | Static.Unknown -> ());
  (* G014: horizontal-ambiguity heuristic (length ranges need acyclicity) *)
  if acyclic then begin
    let ranges = Static.length_ranges g in
    let variable = function
      | T _ -> false
      | N i ->
        (match ranges.(i) with None -> true | Some (lo, hi) -> lo <> hi)
    in
    let sym_first = function
      | T c -> Static.Cset.singleton c
      | N i -> first.(i)
    in
    let sym_last = function
      | T c -> Static.Cset.singleton c
      | N i -> last.(i)
    in
    let sym_nullable = function T _ -> false | N i -> null.(i) in
    for a = 0 to n - 1 do
      if useful a then
        List.iteri
          (fun idx rhs ->
             if List.length (List.filter variable rhs) >= 2 then begin
               let rec adjacent = function
                 | x :: (y :: _ as rest) ->
                   if
                     sym_nullable x || sym_nullable y
                     || not
                          (Static.Cset.disjoint (sym_last x) (sym_first y))
                   then true
                   else adjacent rest
                 | _ -> false
               in
               if adjacent rhs then
                 emit
                   (D.make ~code:"G014" ~severity:D.Warning
                      ~loc:(D.Rule (name g a, idx))
                      ~hint:"fixed-length or boundary-disjoint symbols force \
                             a unique factorisation"
                      "two variable-length symbols share a movable boundary \
                       — a word may factorise in two ways")
             end)
          (rules_of g a)
    done
  end;
  let diags = List.rev !diags in
  D.sort (if semantic then diags @ Semantic_lint.lint g else diags)

type certificate =
  | Certified_unambiguous
  | Certified_ambiguous of D.t
  | Certificate_unknown

let definite_error_codes = [ "G004"; "G005"; "G006"; "G007"; "G009"; "G013" ]

let certificate_verdict diags =
  match
    List.find_opt
      (fun (d : D.t) ->
         d.severity = D.Error && List.mem d.code definite_error_codes)
      diags
  with
  | Some proof -> Certified_ambiguous proof
  | None ->
    if List.exists (fun (d : D.t) -> d.code = "G015") diags then
      Certified_unambiguous
    else Certificate_unknown

let verdict diags =
  match certificate_verdict diags with
  | Certified_ambiguous _ -> `Ambiguous
  | Certified_unambiguous -> `Unambiguous
  | Certificate_unknown -> `Unknown
