(** Semantic lint tier: decision procedures with counterexample witnesses.

    Universality, inclusion, equivalence and disjointness for the
    bounded-length grammars of the reproduction, decided {e without}
    enumerating the comparison language whenever a sound static
    unambiguity certificate holds.  The counting argument is Clemente's
    collapse for unambiguous CFGs (arXiv 2008.04667) specialised to
    uniform-length languages:

    - {b universality}: an unambiguous [G] whose words all have length
      [ℓ] satisfies [L(G) = Σ^ℓ] iff [|L(G)| = |Σ|^ℓ], and for an
      unambiguous grammar [|L(G)|] is exactly the total number of parse
      trees ({!Ucfg_cfg.Analysis.count_trees_total}) — no word is ever
      enumerated on the accept path;
    - {b inclusion} [L(G1) ⊆ L(G2)]: iff [|L(G1) ∩ L(G2)| = |L(G1)|],
      where membership of each word of [L(G1)] in [L(G2)] is an exact
      tree count ({!Ucfg_cfg.Count_word}) — [L(G2)] is never materialised;
    - {b disjointness} is inclusion in the complement; {b equivalence} is
      two-sided inclusion.

    When no certificate holds the procedures fall back to the {!Packed}
    language algebra: both languages are materialised per length and the
    verdict is a merge of sorted code arrays.  Either way a failing
    verdict carries the {e shortest, lexicographically least}
    counterexample (the least code in the packed difference / the first
    gap in the sorted codes).

    Every procedure is jobs-invariant — per-length sweeps fan over
    {!Ucfg_exec.Pool} through the order-preserving {!Ucfg_exec.Exec}
    combinators — and Guard-polled: a tripped deadline or budget degrades
    the verdict to {!Interrupted} (rendered as an R001–R003 partial-verdict
    diagnostic) instead of an escaped exception.

    Diagnostic codes (the registry is {!checks}):

    {v
    G016  non-universal (witness outside the language)  definite  error/info
    G017  inclusion / disjointness violation (witness)  definite  error
    G018  equivalence mismatch (witness)                definite  error
    G019  empty language — property decided vacuously   structural warning
    G020  counting/packed backend disagreement          definite  error
    v} *)

open Ucfg_cfg
module Bignum = Ucfg_util.Bignum

(** Which decision backend produced the verdict.  [Counting] is the
    certificate-gated exact-count route; [Packed] the materialise-and-merge
    route (also used to extract a witness when the counting route rejects
    universality).  [Mixed] marks a two-sided check whose directions took
    different routes. *)
type backend = Counting | Packed | Mixed

(** A failing verdict's witness: the shortest, lexicographically least
    word separating the two sides.  [in_first] / [in_second] record its
    membership in [L(G1)] and in the comparison language ([L(G2)], or
    [Σ^ℓ] for universality). *)
type counterexample = { word : string; in_first : bool; in_second : bool }

type status =
  | Holds  (** the property is true *)
  | Fails of counterexample  (** false, with a shortest witness *)
  | Interrupted of Ucfg_exec.Guard.reason
      (** the guard tripped — a partial verdict, not a refutation *)

type property = Universal | Includes | Equiv | Disjoint

type report = {
  property : property;
  status : status;
  backend : backend;
  vacuous : bool;
      (** some operand's language is empty — the verdict is decided
          vacuously (reported as G019) *)
  cardinal : Bignum.t option;  (** [|L(G1)|] when computed *)
  cardinal2 : Bignum.t option;
      (** [|L(G2)|] (or [|Σ^ℓ|] for universality) when computed *)
  cross_check : Diag.t option;
      (** [Some] (a G020 error) iff both backends ran and disagreed *)
}

(** The registry: the semantic checks G016–G020, in code order. *)
val checks : Diag.check list

(** [universal ?guard ?cross_check g] decides [L(g) = Σ^ℓ] (with [Σ] the
    grammar's alphabet and [ℓ] forced by uniformity — a language mixing
    lengths is never universal and the shorter-length witness is reported
    from the complement at the least populated length).  [~cross_check]
    (default [false]) forces both backends to run and compares their
    cardinals and witnesses, filling [cross_check] on disagreement.
    [guard] defaults to {!Ucfg_exec.Exec.current_guard}. *)
val universal :
  ?guard:Ucfg_exec.Guard.t -> ?cross_check:bool -> Grammar.t -> report

(** [includes ?guard ?cross_check g1 g2] decides [L(g1) ⊆ L(g2)]. *)
val includes :
  ?guard:Ucfg_exec.Guard.t -> ?cross_check:bool ->
  Grammar.t -> Grammar.t -> report

(** [equiv ?guard ?cross_check g1 g2] decides [L(g1) = L(g2)] (two-sided
    inclusion; the witness side flags tell which language owns it). *)
val equiv :
  ?guard:Ucfg_exec.Guard.t -> ?cross_check:bool ->
  Grammar.t -> Grammar.t -> report

(** [disjoint ?guard ?cross_check g1 g2] decides [L(g1) ∩ L(g2) = ∅]
    (inclusion of [L(g1)] in the complement of [L(g2)]). *)
val disjoint :
  ?guard:Ucfg_exec.Guard.t -> ?cross_check:bool ->
  Grammar.t -> Grammar.t -> report

(** [to_diags ?fail_severity r] renders a report through the {!Diag}
    pipeline: a G016/G017/G018 diagnostic (severity [fail_severity],
    default [Error]) for a failing verdict with the witness in the
    message, G019 for vacuous verdicts, G020 verbatim, and an R001–R003
    [Warning] for an interrupted (partial) verdict. *)
val to_diags : ?fail_severity:Diag.severity -> report -> Diag.t list

(** [lint ?guard ?cross_check g] is the deep tier behind
    [Grammar_lint.run ~semantic:true]: runs {!universal} with the backend
    cross-check on by default and renders non-universality as an [Info]
    fact (most grammars are not universal — the point is the witness),
    emptiness as G019 and backend disagreement as a G020 error. *)
val lint :
  ?guard:Ucfg_exec.Guard.t -> ?cross_check:bool -> Grammar.t -> Diag.t list
