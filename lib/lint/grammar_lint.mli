(** Static diagnostics for grammars — the rule registry.

    Fifteen checks with stable codes.  Soundness statuses (see
    {!Diag.soundness}): [G015] is the unambiguity {e certificate} and the
    [Error]-severity firings of [G004]–[G007], [G009] and [G013] are
    {e definite} — they are never wrong, which is what lets
    {!Ucfg_cfg.Ambiguity.check} skip enumeration on a conclusive verdict.
    [G012] and [G014] are heuristics (may warn on unambiguous grammars);
    the rest are structural facts.

    {v
    G001  unproductive nonterminal                  structural  warning
    G002  unreachable nonterminal                   structural  warning
    G003  empty language                            structural  warning
    G004  self-referential rule                     definite    error/info
    G005  unit-rule cycle                           definite    error/warning
    G006  ε-cycle                                   definite    error/warning
    G007  dependency cycle (useful nonterminals)    definite    error/info
    G008  infinite language                         structural  info
    G009  duplicate rule via unit indirection       definite    error/warning
    G010  not in Chomsky normal form                structural  info
    G011  start symbol on a right-hand side         structural  info
    G012  vertical ambiguity (FIRST-set overlap)    heuristic   warning
    G013  definite ambiguity (bounded probe)        definite    error
    G014  horizontal ambiguity (two factorisations) heuristic   warning
    G015  unambiguity certificate                   certificate info
    v} *)

(** The registry: every check this linter implements, in code order. *)
val checks : Diag.check list

(** [run ?probe_words ?probe_len ?semantic g] runs every check and returns
    the diagnostics sorted errors-first (see {!Diag.sort}).  [probe_words]
    and [probe_len] cap the {!Ucfg_cfg.Static.probe} underlying [G013].
    [~semantic:true] additionally runs the deep tier
    ({!Semantic_lint.lint}: universality with the counting/packed backend
    cross-check, codes G016–G020). *)
val run :
  ?probe_words:int -> ?probe_len:int -> ?semantic:bool ->
  Ucfg_cfg.Grammar.t -> Diag.t list

(** The unambiguity-certificate verdict as a typed value, so callers stop
    re-scanning diagnostic code strings.  [Certified_ambiguous] carries
    the definite diagnostic that proves ambiguity (the [Error]-severity
    firing of [G004]–[G007], [G009] or [G013] that fired first in sort
    order). *)
type certificate =
  | Certified_unambiguous  (** the [G015] certificate fired *)
  | Certified_ambiguous of Diag.t  (** a definite error — the proof *)
  | Certificate_unknown  (** neither conclusive *)

(** [certificate_verdict diags] extracts the typed certificate from a
    {!run} result.  Sound by construction — the qcheck suite asserts
    agreement with {!Ucfg_cfg.Ambiguity.check}. *)
val certificate_verdict : Diag.t list -> certificate

(** {!certificate_verdict} collapsed to the historical polymorphic
    variant. *)
val verdict : Diag.t list -> [ `Unambiguous | `Ambiguous | `Unknown ]
