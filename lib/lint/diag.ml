type severity = Error | Warning | Info

type location =
  | Whole
  | Nonterminal of string
  | Rule of string * int
  | State of int

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

type soundness = Certificate | Definite | Heuristic | Structural

type check = { code : string; title : string; soundness : soundness }

let make ?hint ~code ~severity ~loc message =
  { code; severity; loc; message; hint }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* the R-code runtime taxonomy, shared by the CLI's top-level handler and
   the serve daemon's per-request error responses: same codes, same text,
   whether a trip kills a process or degrades one response *)
let interrupted reason =
  let code =
    match reason with
    | Ucfg_exec.Guard.Timeout -> "R001"
    | Ucfg_exec.Guard.Budget -> "R002"
    | Ucfg_exec.Guard.Cancel -> "R003"
  in
  make ~code ~severity:Error ~loc:Whole
    ~hint:"raise --timeout/--budget, shrink n, or use a cheaper method"
    (Printf.sprintf "computation interrupted: %s"
       (Ucfg_exec.Guard.describe reason))

let invalid_input msg =
  make ~code:"R010" ~severity:Error ~loc:Whole
    (Printf.sprintf "invalid input: %s" msg)

let unsupported msg =
  make ~code:"R011" ~severity:Error ~loc:Whole
    (Printf.sprintf "unsupported operation: %s" msg)

let internal msg =
  make ~code:"R012" ~severity:Error ~loc:Whole
    ~hint:"this is a server-side fault, not an input problem — check the \
           daemon's log and report it"
    (Printf.sprintf "internal error: %s" msg)

let busy ?(draining = false) () =
  make ~code:"R013" ~severity:Error ~loc:Whole
    ~hint:"transient (exit 75, EX_TEMPFAIL): retry with jittered backoff"
    (if draining then
       "server draining: shutting down gracefully, not accepting new \
        connections"
     else
       "server busy: all workers in service and the connection queue is \
        full; load was shed instead of queued unboundedly")

let read_timeout ms =
  make ~code:"R014" ~severity:Error ~loc:Whole
    ~hint:"transient (exit 75): send the full request line within the \
           deadline and retry"
    (Printf.sprintf
       "read deadline exceeded: request line still incomplete after %.0f ms \
        (slow or stalled client); the connection is closed" ms)

let oversized ~limit =
  make ~code:"R015" ~severity:Error ~loc:Whole
    ~hint:"shrink the request or raise --max-request-bytes on the daemon"
    (Printf.sprintf
       "request line exceeds the size cap (%d bytes); the connection is \
        closed" limit)

let cache_corrupt key =
  make ~code:"R020" ~severity:Warning ~loc:Whole
    ~hint:"the entry was recomputed and rewritten; no wrong answer is served"
    (Printf.sprintf
       "on-disk cache entry %s failed hash verification (truncated or \
        bit-flipped)" key)

let checkpoint_corrupt reason =
  make ~code:"R021" ~severity:Warning ~loc:Whole
    ~hint:"the search restarted from scratch; a fresh checkpoint replaces \
           the damaged one on the next interruption"
    (Printf.sprintf "search checkpoint unusable (%s); resuming from scratch"
       reason)

let soundness_label = function
  | Certificate -> "certificate"
  | Definite -> "definite"
  | Heuristic -> "heuristic"
  | Structural -> "structural"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort ds =
  List.stable_sort
    (fun a b ->
       match compare (severity_rank a.severity) (severity_rank b.severity) with
       | 0 -> compare a.code b.code
       | c -> c)
    ds

let has_errors = List.exists (fun d -> d.severity = Error)

let count_severity ds =
  List.fold_left
    (fun (e, w, i) d ->
       match d.severity with
       | Error -> (e + 1, w, i)
       | Warning -> (e, w + 1, i)
       | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let pp_location fmt = function
  | Whole -> ()
  | Nonterminal a -> Format.fprintf fmt "<%s>: " a
  | Rule (a, i) -> Format.fprintf fmt "<%s> rule #%d: " a i
  | State s -> Format.fprintf fmt "state %d: " s

let pp fmt (d : t) =
  Format.fprintf fmt "%s %-7s %a%s" d.code (severity_label d.severity)
    pp_location d.loc d.message;
  match d.hint with
  | Some h -> Format.fprintf fmt "@,    hint: %s" h
  | None -> ()

let pp_report fmt ds =
  let e, w, i = count_severity ds in
  Format.fprintf fmt "@[<v>";
  List.iter (fun d -> Format.fprintf fmt "%a@," pp d) ds;
  Format.fprintf fmt "%d error%s, %d warning%s, %d info@]" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let location_to_json = function
  | Whole -> {|{"kind":"whole"}|}
  | Nonterminal a ->
    Printf.sprintf {|{"kind":"nonterminal","name":%s}|} (json_string a)
  | Rule (a, i) ->
    Printf.sprintf {|{"kind":"rule","nonterminal":%s,"index":%d}|}
      (json_string a) i
  | State s -> Printf.sprintf {|{"kind":"state","id":%d}|} s

let to_json (d : t) =
  Printf.sprintf
    {|{"code":%s,"severity":%s,"location":%s,"message":%s,"hint":%s}|}
    (json_string d.code)
    (json_string (severity_label d.severity))
    (location_to_json d.loc) (json_string d.message)
    (match d.hint with None -> "null" | Some h -> json_string h)

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))
