(** Content-addressed artifact cache: in-memory LRU over a verified
    on-disk store.

    Keys are 32-char hex digests ({!Ucfg_cfg.Canon.digest} of the
    canonical grammar text plus the operation and its parameters); values
    are opaque byte strings (the daemon stores rendered JSON result
    payloads).  Lookups hit, in order: the in-process LRU (a mutex-guarded
    hash table with last-use stamps, scanned for the oldest entry on
    eviction), then the disk store under [dir/<k[0..1]>/<key>.entry].

    Every disk entry is self-verifying — a header records the MD5 and byte
    length of the payload, and a read that fails either check reports
    {!Corrupt} instead of returning bytes, so a truncated or bit-flipped
    entry can degrade only to a recomputation, never to a wrong answer.
    Writes go through a unique temp file in the same directory followed by
    [Unix.rename], which is atomic on POSIX: concurrent writers of the
    same key race only over {e which complete entry} survives, and readers
    never observe a partial one.

    All operations are safe to call from multiple domains. *)

type t

(** [create ?mem_capacity ?disk_max_bytes ?dir ()] — [mem_capacity]
    (default 512) bounds the LRU entry count; [dir] (default [None])
    enables the disk tier and is created on demand.  [disk_max_bytes]
    (default unbounded) caps the total size of the disk store: after each
    store the tier is scanned and oldest-stamp entries are deleted until
    the cap holds again (stamps are mtimes, refreshed on disk hits, so
    eviction is LRU; a concurrent reader of an evicted entry degrades to a
    recomputation, never a wrong answer).
    @raise Invalid_argument when [disk_max_bytes <= 0]. *)
val create : ?mem_capacity:int -> ?disk_max_bytes:int -> ?dir:string -> unit -> t

(** [dir t] is the disk root, if the disk tier is enabled. *)
val dir : t -> string option

type lookup =
  | Memory of string  (** hit in the LRU *)
  | Disk of string  (** hit on disk, verified, promoted into the LRU *)
  | Miss  (** no entry *)
  | Corrupt  (** a disk entry exists but failed verification *)

(** [lookup t key] — [key] must be lowercase hex. *)
val lookup : t -> string -> lookup

(** [store t key payload] inserts into the LRU and (when enabled) writes
    the disk entry atomically, replacing any previous or corrupt one. *)
val store : t -> string -> string -> unit

(** Monotonic counters since {!create}.  [corrupt] counts failed disk
    verifications; [evictions] LRU evictions; [disk_evictions] entry files
    deleted by the [disk_max_bytes] cap. *)
type stats = {
  lookups : int;
  mem_hits : int;
  disk_hits : int;
  misses : int;
  corrupt : int;
  stores : int;
  evictions : int;
  disk_evictions : int;
}

val stats : t -> stats

(** [close t] quiesces the cache for shutdown: subsequent {!store}s are
    dropped (no new disk writes begin) and {!lookup}s stop touching the
    disk tier (memory hits still serve).  Disk writes already in flight
    finish or lose their temp file — the store's atomic-rename discipline
    means a racing writer can never leave a partial entry.  Idempotent;
    safe to call while workers still hold the cache. *)
val close : t -> unit

(** [entry_path t key] is the disk path the entry lives at (diagnostics,
    tests), when the disk tier is enabled. *)
val entry_path : t -> string -> string option
