(* LRU over a self-verifying disk store; see the mli for the contract. *)

type entry = { value : string; mutable stamp : int }

type t = {
  dir : string option;
  capacity : int;
  disk_max_bytes : int option;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutex : Mutex.t;
  mutable lookups : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_evictions : int;
  mutable closed : bool;
}

type lookup = Memory of string | Disk of string | Miss | Corrupt

type stats = {
  lookups : int;
  mem_hits : int;
  disk_hits : int;
  misses : int;
  corrupt : int;
  stores : int;
  evictions : int;
  disk_evictions : int;
}

let create ?(mem_capacity = 512) ?disk_max_bytes ?dir () =
  (match disk_max_bytes with
   | Some b when b <= 0 ->
     invalid_arg "Cache.create: disk_max_bytes must be positive"
   | _ -> ());
  {
    dir;
    capacity = max 1 mem_capacity;
    disk_max_bytes;
    tbl = Hashtbl.create 64;
    clock = 0;
    mutex = Mutex.create ();
    lookups = 0;
    mem_hits = 0;
    disk_hits = 0;
    misses = 0;
    corrupt = 0;
    stores = 0;
    evictions = 0;
    disk_evictions = 0;
    closed = false;
  }

let dir t = t.dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- disk tier ------------------------------------------------------------ *)

let check_key key =
  if
    key = ""
    || not
         (String.for_all
            (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
            key)
  then invalid_arg (Printf.sprintf "Cache: key %S is not lowercase hex" key)

let entry_path t key =
  check_key key;
  Option.map
    (fun dir ->
       let prefix = String.sub (key ^ "00") 0 2 in
       Filename.concat (Filename.concat dir prefix) (key ^ ".entry"))
    t.dir

let mkdir_p path =
  let rec ensure p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      ensure (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  ensure path

let magic = "ucfg-cache v1"

(* distinct temp names per writer: pid for cross-process, a counter for
   cross-domain *)
let tmp_counter = Atomic.make 0

let write_disk path payload =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       Printf.fprintf oc "%s %s %d\n" magic
         (Digest.to_hex (Digest.string payload))
         (String.length payload);
       output_string oc payload);
  (* atomic on POSIX: readers see the old entry or the new one, never a
     prefix of either *)
  Unix.rename tmp path

type disk_read = D_hit of string | D_miss | D_corrupt

let read_disk path =
  match open_in_bin path with
  | exception Sys_error _ -> D_miss
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         match input_line ic with
         | exception End_of_file -> D_corrupt
         | header -> (
             match String.split_on_char ' ' header with
             | [ m1; m2; digest; len_text ] when m1 ^ " " ^ m2 = magic -> (
                 match int_of_string_opt len_text with
                 | None -> D_corrupt
                 | Some len when len < 0 -> D_corrupt
                 | Some len -> (
                     match really_input_string ic len with
                     | exception End_of_file -> D_corrupt
                     | payload ->
                       (* a trailing-garbage append is damage too *)
                       if
                         pos_in ic = in_channel_length ic
                         && Digest.to_hex (Digest.string payload) = digest
                       then D_hit payload
                       else D_corrupt))
             | _ -> D_corrupt))

(* --- disk-tier eviction --------------------------------------------------- *)

(* Every [.entry] file under the two-level store, with its last-use stamp
   (the mtime — refreshed on disk hits, so eviction order is LRU) and
   size.  A full scan per enforcement is O(files); stores are rare
   relative to hits in a long-lived daemon, so as with the LRU below
   simplicity wins over an incremental index (which another process — the
   store is shared — could silently invalidate anyway). *)
let scan_entries dir =
  let out = ref [] in
  (match Sys.readdir dir with
   | exception Sys_error _ -> ()
   | subdirs ->
     Array.iter
       (fun sub ->
          let subpath = Filename.concat dir sub in
          match Sys.readdir subpath with
          | exception Sys_error _ -> ()
          | files ->
            Array.iter
              (fun f ->
                 if Filename.check_suffix f ".entry" then begin
                   let path = Filename.concat subpath f in
                   match Unix.stat path with
                   | exception Unix.Unix_error _ -> ()
                   | st ->
                     if st.Unix.st_kind = Unix.S_REG then
                       out := (path, st.Unix.st_mtime, st.Unix.st_size) :: !out
                 end)
              files)
       subdirs);
  !out

(* refresh the last-use stamp of a disk entry (best-effort: the entry may
   have been evicted by a concurrent writer between read and touch) *)
let touch path =
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

(* bring the disk tier back under [disk_max_bytes] by deleting
   oldest-stamp entries first.  Concurrent enforcers race only over
   unlinks of the same (already chosen) victims, which is benign. *)
let enforce_disk_cap t =
  match t.dir, t.disk_max_bytes with
  | Some dir, Some cap ->
    let entries = scan_entries dir in
    let total = List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries in
    if total > cap then begin
      let by_age =
        List.sort (fun (_, m1, _) (_, m2, _) -> compare m1 m2) entries
      in
      let excess = ref (total - cap) in
      let evicted = ref 0 in
      List.iter
        (fun (path, _, sz) ->
           if !excess > 0 then begin
             (try Unix.unlink path with Unix.Unix_error _ -> ());
             excess := !excess - sz;
             incr evicted
           end)
        by_age;
      locked t (fun () -> t.disk_evictions <- t.disk_evictions + !evicted)
    end
  | _ -> ()

(* --- LRU ------------------------------------------------------------------ *)

(* O(capacity) scan on eviction: capacities are a few hundred and
   evictions are rare relative to hits, so simplicity wins over a
   doubly-linked list *)
let evict_oldest_locked t =
  let oldest = ref None in
  Hashtbl.iter
    (fun key e ->
       match !oldest with
       | Some (_, s) when s <= e.stamp -> ()
       | _ -> oldest := Some (key, e.stamp))
    t.tbl;
  match !oldest with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

let insert_locked t key value =
  t.clock <- t.clock + 1;
  (match Hashtbl.find_opt t.tbl key with
   | Some _ -> Hashtbl.replace t.tbl key { value; stamp = t.clock }
   | None ->
     if Hashtbl.length t.tbl >= t.capacity then evict_oldest_locked t;
     Hashtbl.add t.tbl key { value; stamp = t.clock })

let lookup t key =
  let mem =
    locked t (fun () ->
        t.lookups <- t.lookups + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          t.clock <- t.clock + 1;
          e.stamp <- t.clock;
          t.mem_hits <- t.mem_hits + 1;
          Some e.value
        | None -> None)
  in
  match mem with
  | Some v -> Memory v
  | None -> (
      match (if t.closed then None else entry_path t key) with
      | None ->
        locked t (fun () -> t.misses <- t.misses + 1);
        Miss
      | Some path -> (
          match read_disk path with
          | D_hit payload ->
            touch path;
            locked t (fun () ->
                t.disk_hits <- t.disk_hits + 1;
                insert_locked t key payload);
            Disk payload
          | D_miss ->
            locked t (fun () -> t.misses <- t.misses + 1);
            Miss
          | D_corrupt ->
            locked t (fun () -> t.corrupt <- t.corrupt + 1);
            Corrupt))

let store t key payload =
  check_key key;
  let closed =
    locked t (fun () ->
        if not t.closed then begin
          t.stores <- t.stores + 1;
          insert_locked t key payload
        end;
        t.closed)
  in
  if not closed then
    match entry_path t key with
    | None -> ()
    | Some path ->
      write_disk path payload;
      enforce_disk_cap t

let close t = locked t (fun () -> t.closed <- true)

let stats t =
  locked t (fun () ->
      {
        lookups = t.lookups;
        mem_hits = t.mem_hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        corrupt = t.corrupt;
        stores = t.stores;
        evictions = t.evictions;
        disk_evictions = t.disk_evictions;
      })
