(** Seeded load generator and serving gate for the daemon.

    Replays a mixed traffic profile — lint, check, ambiguity, rectangles
    and rank requests over the paper's constructions plus an inline
    grammar (exercising the parse path) — against a [send] function
    (a socket connection, or an in-process {!Server.handle_line}) and
    measures what the ROADMAP asks for: cold and warm latency quantiles,
    throughput, and the warm cache hit ratio.

    Two phases, both deterministic from [seed]:

    + {b cold}: every distinct request of the profile pool once, in a
      fixed order — these populate the cache;
    + {b warm}: [requests] draws from the pool by a seeded splitmix64
      stream — on a fresh cache every one of these should hit.

    The run doubles as the correctness gate behind the CI serving job:
    every response must be [ok], and all responses to the {e same request
    line} must carry byte-identical [result] payloads (cold vs warm, mem
    vs disk).  Violations are reported and fail the run. *)

type phase = {
  count : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  hits : int;  (** responses with ["cached": true] *)
}

type report = {
  profile : string;
  seed : int;
  jobs : int;
  distinct : int;  (** pool size (cold-phase request count) *)
  requests : int;  (** warm-phase request count *)
  cold : phase;
  warm : phase;
  warm_hit_ratio : float;
  elapsed_s : float;
  throughput_rps : float;
  errors : int;  (** non-[ok] responses *)
  mismatches : int;  (** identical requests with differing [result] bytes *)
}

(** The built-in pools.  [smoke] is sized for CI (small [n]); [mixed]
    adds heavier cold requests. *)
val profiles : string list

(** [run ~profile ~seed ~requests send] executes both phases through
    [send] (one request line in, one response line out).  [dump], when
    given, receives one ["<key> <result>"] line per distinct pool request
    in pool order — a stable transcript for cold/warm and jobs 1-vs-4
    diffs.  @raise Invalid_argument on an unknown profile name. *)
val run :
  ?dump:out_channel ->
  profile:string ->
  seed:int ->
  requests:int ->
  (string -> string) ->
  report

(** [ok r] — no errors and no result mismatches. *)
val ok : report -> bool

(** Render the report as an aligned text block / a canonical JSON object
    (timings are measurements: the JSON is for artifacts, not diffs). *)
val to_text : report -> string

val to_json : report -> string
