(** Seeded load generator and serving gate for the daemon.

    Replays a mixed traffic profile — lint, check, ambiguity, rectangles
    and rank requests over the paper's constructions plus an inline
    grammar (exercising the parse path) — against a [send] function
    (a socket connection, or an in-process {!Server.handle_line}) and
    measures what the ROADMAP asks for: cold and warm latency quantiles,
    throughput, and the warm cache hit ratio.

    Two phases, both deterministic from [seed]:

    + {b cold}: every distinct request of the profile pool once, in a
      fixed order — these populate the cache;
    + {b warm}: [requests] draws from the pool by a seeded splitmix64
      stream — on a fresh cache every one of these should hit.

    The run doubles as the correctness gate behind the CI serving job:
    every response must be [ok], and all responses to the {e same request
    line} must carry byte-identical [result] payloads (cold vs warm, mem
    vs disk).  Violations are reported and fail the run. *)

type phase = {
  count : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  hits : int;  (** responses with ["cached": true] *)
}

type report = {
  profile : string;
  seed : int;
  jobs : int;
  distinct : int;  (** pool size (cold-phase request count) *)
  requests : int;  (** warm-phase request count *)
  cold : phase;
  warm : phase;
  warm_hit_ratio : float;
  elapsed_s : float;
  throughput_rps : float;
  errors : int;  (** non-[ok] responses *)
  mismatches : int;  (** identical requests with differing [result] bytes *)
}

(** The built-in pools.  [smoke] is sized for CI (small [n]); [mixed]
    adds heavier cold requests. *)
val profiles : string list

(** [run ~profile ~seed ~requests send] executes both phases through
    [send] (one request line in, one response line out).  [dump], when
    given, receives one ["<key> <result>"] line per distinct pool request
    in pool order — a stable transcript for cold/warm and jobs 1-vs-4
    diffs.  @raise Invalid_argument on an unknown profile name. *)
val run :
  ?dump:out_channel ->
  profile:string ->
  seed:int ->
  requests:int ->
  (string -> string) ->
  report

(** [ok r] — no errors and no result mismatches. *)
val ok : report -> bool

(** Render the report as an aligned text block / a canonical JSON object
    (timings are measurements: the JSON is for artifacts, not diffs). *)
val to_text : report -> string

val to_json : report -> string

(** {2 Socket-level clients}

    The modes below talk to a {e real} daemon over a socket (SIGPIPE is
    ignored process-wide on entry: a dead daemon must fail the gate, not
    kill the client). *)

type target = Unix_path of string | Tcp_port of int

(** [one_shot target line] — connect, send one request line, read one
    response line, close.  [None] on EOF, reset, or [timeout] (default
    60 s — a backstop against a wedged daemon, not a measurement). *)
val one_shot : ?timeout:float -> target -> string -> string option

(** {2 Chaos mode}

    Seeded socket-level adversity: every round plays one client shape —
    normal (with retry), partial-write-then-disconnect, full-request-
    then-abort-before-read, malformed frame, oversized newline-free
    frame, slow-but-legitimate chunked writer, slow-loris stall past the
    read deadline, and a [burst] of concurrent clients retrying through
    shed.  The first rounds visit each shape once; the rest are seeded
    draws.  After the rounds the daemon must still serve [ping] and
    [stats], and a final sequential pool pass must answer every request
    byte-identically to what the chaos rounds observed ([dump] writes
    the same ["<key> <result>"] transcript as {!run}, so it diffs
    against a chaos-free run).

    An error is a protocol violation: a missing or non-matching answer
    where one was required (R013 busy answers are retried, never errors;
    R014/R015 are the {e expected} answers to stalls and floods). *)

type chaos_params = {
  rounds : int;  (** total scenario rounds (default 40) *)
  burst : int;  (** concurrent clients per burst round (default 6) *)
  stall_ms : float;  (** slow-loris silence; set above the daemon's
                         [--idle-timeout-ms] to see R014 (default 800) *)
  oversize_bytes : int;  (** newline-free flood; set above the daemon's
                             [--max-request-bytes] to see R015 (default
                             8192) *)
}

val default_chaos : chaos_params

type chaos_report = {
  c_seed : int;
  c_jobs : int;
  c_rounds : int;
  ok_responses : int;
  busy_shed : int;  (** R013 responses observed (all retried) *)
  c_retries : int;
  aborts_sent : int;
  partial_writes : int;
  malformed_sent : int;
  oversized_sent : int;
  slow_requests : int;
  stalls_sent : int;
  read_timeouts_seen : int;  (** R014 responses observed *)
  c_bursts : int;
  c_errors : int;
  c_mismatches : int;
  c_elapsed_s : float;
}

val chaos :
  ?dump:out_channel ->
  ?params:chaos_params ->
  target:target ->
  seed:int ->
  unit ->
  chaos_report

(** [chaos_ok r] — the daemon survived: no protocol violations, no
    result mismatches. *)
val chaos_ok : chaos_report -> bool

val chaos_to_text : chaos_report -> string
val chaos_to_json : chaos_report -> string

(** {2 Concurrent clients}

    [concurrent_run ~profile ~seed ~requests ~clients target] is {!run}
    with the warm phase fanned over [clients] threads, each on its own
    persistent connection with its own seeded stream ([requests] split
    evenly); the cold phase stays sequential on one connection.  R013
    sheds are retried with the reference backoff.  Same report and
    [dump] semantics as {!run} — in particular the dump diffs against a
    serial run's, which is the concurrency gate. *)
val concurrent_run :
  ?dump:out_channel ->
  profile:string ->
  seed:int ->
  requests:int ->
  clients:int ->
  target ->
  report
