(** The grammar-analysis daemon: line-delimited JSON requests over a unix
    or TCP socket (or a stdin batch), answered through the
    content-addressed {!Cache}.

    {2 Protocol}

    One request per line, one response line per request, in order.  A
    request is a JSON object:

    {v
    { "op": "lint" | "check" | "ambiguity" | "rectangles" | "rank"
          | "ping" | "stats" | "shutdown",
      "id": <any JSON, echoed back>,                      (optional)
      "grammar": "<Grammar_io text>"                      (inline grammar)
        or "kind": "log"|"example3"|"example4"|"trivial", "n": <int>,
      "alphabet": "ab",                                   (optional)
      -- op-specific --
      "semantic": bool,                                   (lint)
      "property": "universal"|"includes"|"equiv"|"disjoint",  (check)
      "grammar2" / "kind2","n2",                          (check)
      "cross_check": bool,                                (check)
      "split": <int>,                                     (rank)
      -- per-request resource guard --
      "timeout_ms": <number>, "budget": <int>,
      "no_cache": bool }
    v}

    A successful response is
    [{"id":…, "ok":true, "op":…, "cached":bool, "source":"computed"|
    "mem"|"disk"|"recomputed", "key":"<hex>"|null, "result":{…},
    "warning":{…}?}] — [result] is the cached unit: its bytes are
    byte-identical between a cold computation and any later hit, at any
    job count.  [source] and [cached] describe {e this} lookup ([cached]
    is timing-dependent when requests race in a stdin batch; [result] is
    not).  ["recomputed"] flags a disk entry that failed hash
    verification and was transparently rebuilt ([warning] then carries
    the R020 diagnostic).

    A failed request is [{"id":…, "ok":false, "error":{"code":…,
    "exit_code":…, "message":…, "hint":…}, "diagnostics":[…]}] using the
    CLI's exit-code taxonomy per request instead of per process: R001–R003
    guard trips map to [exit_code] 124, R010 invalid input and R011
    unknown operation to 2, and R012 — an unexpected server-side
    exception, also logged to stderr for the operator — to 70
    ([EX_SOFTWARE]).  Guard trips are never cached (a semantic lint whose
    verdict is merely partial because the guard tripped mid-check is an
    R001–R003 error response, not a cacheable result), so a request that
    timed out under a small budget is recomputed when retried with a
    larger one.

    Requests over a socket are served strictly in order on one
    connection, and connections one at a time — concurrency lives {e
    inside} each computation, which fans over {!Ucfg_exec.Pool} through
    the library's parallel paths with the request's guard passed
    explicitly (never installed ambiently, so concurrent stdin-batch
    requests cannot poison each other).  {!run_stdin} additionally fans
    whole requests over the pool, preserving response order. *)

type t

(** [create ()] — [cache_dir] (default [Some "_repro/cache"], [None]
    disables the disk tier), [mem_capacity] and [cache_max_bytes] (a byte
    cap on the disk store, enforced by oldest-stamp eviction after each
    store) configure the {!Cache}; [default_timeout_ms]/[default_budget]
    bound requests that do not carry their own; [version] is echoed by
    [ping]. *)
val create :
  ?cache_dir:string option ->
  ?mem_capacity:int ->
  ?cache_max_bytes:int ->
  ?default_timeout_ms:float ->
  ?default_budget:int ->
  ?version:string ->
  unit ->
  t

val cache : t -> Cache.t

(** [handle_line t line] processes one request line into one response
    line (no trailing newline).  Never raises: every failure mode is an
    error response. *)
val handle_line : t -> string -> string

(** [stopping t] — a [shutdown] request has been served. *)
val stopping : t -> bool

(** [run_stdin t ic oc] reads all request lines from [ic], processes them
    as one batch fanned over the pool, and writes the response lines to
    [oc] in request order. *)
val run_stdin : t -> in_channel -> out_channel -> unit

(** [run_unix t ~path] listens on a unix-domain socket, serving
    connections one at a time until a [shutdown] request; the socket file
    is removed on exit.  A {e stale} socket left at [path] by a dead
    daemon is replaced; a socket a live server still answers on, or any
    non-socket file, is refused ([Failure] — exit 2 at the CLI). *)
val run_unix : t -> path:string -> unit

(** [run_tcp t ~port] — same loop on loopback TCP. *)
val run_tcp : t -> port:int -> unit
