(** The grammar-analysis daemon: line-delimited JSON requests over a unix
    or TCP socket (or a stdin batch), answered through the
    content-addressed {!Cache}.

    {2 Protocol}

    One request per line, one response line per request, in order.  A
    request is a JSON object:

    {v
    { "op": "lint" | "check" | "ambiguity" | "rectangles" | "rank"
          | "ping" | "stats" | "shutdown",
      "id": <any JSON, echoed back>,                      (optional)
      "grammar": "<Grammar_io text>"                      (inline grammar)
        or "kind": "log"|"example3"|"example4"|"trivial", "n": <int>,
      "alphabet": "ab",                                   (optional)
      -- op-specific --
      "semantic": bool,                                   (lint)
      "property": "universal"|"includes"|"equiv"|"disjoint",  (check)
      "grammar2" / "kind2","n2",                          (check)
      "cross_check": bool,                                (check)
      "split": <int>,                                     (rank)
      -- per-request resource guard --
      "timeout_ms": <number>, "budget": <int>,
      "no_cache": bool }
    v}

    A successful response is
    [{"id":…, "ok":true, "op":…, "cached":bool, "source":"computed"|
    "mem"|"disk"|"recomputed", "key":"<hex>"|null, "result":{…},
    "warning":{…}?}] — [result] is the cached unit: its bytes are
    byte-identical between a cold computation and any later hit, at any
    job count and any connection count.  [source] and [cached] describe
    {e this} lookup ([cached] is timing-dependent when requests race;
    [result] is not).  ["recomputed"] flags a disk entry that failed hash
    verification and was transparently rebuilt ([warning] then carries
    the R020 diagnostic).

    A failed request is [{"id":…, "ok":false, "error":{"code":…,
    "exit_code":…, "message":…, "hint":…}, "diagnostics":[…]}] using the
    CLI's exit-code taxonomy per request instead of per process:

    - R001–R003 (guard trips) → [exit_code] 124.  Never cached; a request
      that timed out under a small budget is recomputed when retried with
      a larger one.  R003 in particular is what an in-flight request
      reports when a graceful drain cancels it.
    - R010 (invalid input), R011 (unknown op), R015 (oversized request
      line, connection closed) → 2.  Not retriable as-is.
    - R012 (unexpected server-side exception, also logged to stderr) → 70
      ([EX_SOFTWARE]).
    - R013 (server busy / draining — the connection was shed, not served)
      and R014 (read deadline exceeded mid-request) → 75
      ([EX_TEMPFAIL]): {e transient} by contract.  Clients should retry
      with jittered exponential backoff ({!Bombard} implements the
      reference policy).

    {2 Concurrency and overload}

    The daemon serves up to [max_connections] connections concurrently,
    each on a dedicated worker thread ({!Ucfg_exec.Workq}); requests on
    one connection are answered strictly in order, and a slow request on
    one connection never delays another connection.  Parallelism inside a
    computation still fans over {!Ucfg_exec.Pool} with the request's
    guard passed explicitly — worker threads live in the main domain, so
    the domain pool is shared, and results stay byte-identical at any
    [--jobs]/[max_connections] combination.

    Admission control is a bounded queue of [queue_capacity] accepted-but-
    unstarted connections.  When it is full the daemon {e sheds}: the
    connection is answered immediately with one R013 response and closed.
    Two protections bound each connection: a request line must arrive
    completely within [idle_timeout_ms] (slow-loris protection; a stalled
    mid-request connection gets R014 and is closed, an idle one is closed
    quietly) and may not exceed [max_request_bytes] (R015, closed).  A
    client that disappears mid-response (EPIPE/ECONNRESET) costs its own
    connection, nothing else.

    {2 Graceful drain}

    {!request_drain} (async-signal-safe; the CLI calls it from its
    SIGTERM/SIGINT handler) or a [shutdown] request begins a drain: the
    listener stops accepting, queued-but-unstarted connections are shed
    with R013 ([draining] variant), idle keep-alive connections close,
    and in-flight requests run to completion.  Requests still running at
    [drain_timeout_ms] have their guards cancelled and surface as R003
    error responses.  {!run_unix}/{!run_tcp} then return {!Drained} — or
    {!Forced} if a worker ignored cancellation — after flushing and
    closing the cache ({!Cache.close}). *)

type t

(** How a serve loop ended: [Drained] is the clean path (every accepted
    request answered or cancelled-and-answered); [Forced n] means [n]
    workers were still wedged after cancellation and the grace period —
    the caller should exit nonzero without joining them. *)
type drain_outcome = Drained | Forced of int

(** [create ()] — [cache_dir] (default [Some "_repro/cache"], [None]
    disables the disk tier), [mem_capacity] and [cache_max_bytes] (a byte
    cap on the disk store, enforced by oldest-stamp eviction after each
    store) configure the {!Cache}; [default_timeout_ms]/[default_budget]
    bound requests that do not carry their own; [version] is echoed by
    [ping].

    Robustness knobs: [max_connections] (default {!Ucfg_exec.Exec.jobs})
    bounds concurrent connections; [queue_capacity] (default
    [max_connections]) bounds accepted-but-unstarted connections beyond
    that, after which the daemon sheds with R013; [idle_timeout_ms]
    (default 30000, [<= 0] disables) is the absolute deadline for one
    complete request line; [max_request_bytes] (default 1 MiB) caps a
    request line; [drain_timeout_ms] (default 5000) bounds how long a
    graceful drain waits before cancelling in-flight guards. *)
val create :
  ?cache_dir:string option ->
  ?mem_capacity:int ->
  ?cache_max_bytes:int ->
  ?default_timeout_ms:float ->
  ?default_budget:int ->
  ?max_connections:int ->
  ?queue_capacity:int ->
  ?idle_timeout_ms:float ->
  ?max_request_bytes:int ->
  ?drain_timeout_ms:float ->
  ?version:string ->
  unit ->
  t

val cache : t -> Cache.t

(** [handle_line t line] processes one request line into one response
    line (no trailing newline).  Never raises: every failure mode is an
    error response.  Safe to call from any thread; each call creates and
    registers its own guard, so a concurrent drain can cancel it. *)
val handle_line : t -> string -> string

(** [stopping t] — a [shutdown] request has been served. *)
val stopping : t -> bool

(** [draining t] — a drain (signal, [shutdown], or {!request_drain}) has
    begun; the listener no longer accepts connections. *)
val draining : t -> bool

(** [request_drain t] begins a graceful drain (idempotent, callable from
    a signal handler or any thread): wakes the accept loop, which then
    follows the drain sequence described above. *)
val request_drain : t -> unit

(** [run_stdin t ic oc] reads all request lines from [ic], processes them
    as one batch fanned over the pool, and writes the response lines to
    [oc] in request order. *)
val run_stdin : t -> in_channel -> out_channel -> unit

(** [run_unix t ~path] listens on a unix-domain socket ([backlog],
    default 64, is the kernel accept backlog) and serves concurrent
    connections until a [shutdown] request or {!request_drain}, then
    drains; the socket file is removed on exit.  A {e stale} socket left
    at [path] by a dead daemon is replaced; a socket a live server still
    answers on, or any non-socket file, is refused ([Failure] — exit 2 at
    the CLI). *)
val run_unix : ?backlog:int -> t -> path:string -> drain_outcome

(** [run_tcp t ~port] — same loop on loopback TCP. *)
val run_tcp : ?backlog:int -> t -> port:int -> drain_outcome
