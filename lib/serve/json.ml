(* Recursive-descent JSON over a string; canonical printer.  See the mli
   for the contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* --- parsing -------------------------------------------------------------- *)

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

(* encode one Unicode scalar value as UTF-8 bytes *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
     | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
     | Some ('a' .. 'f' as c) -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
     | Some ('A' .. 'F' as c) -> v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
     | _ -> fail st.pos "expected a hex digit");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'u' ->
         advance st;
         let u = hex4 st in
         let u =
           (* a high surrogate must be followed by \uDC00-\uDFFF *)
           if u >= 0xD800 && u <= 0xDBFF then begin
             expect st '\\';
             expect st 'u';
             let lo = hex4 st in
             if lo < 0xDC00 || lo > 0xDFFF then
               fail st.pos "invalid low surrogate";
             0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
           end
           else if u >= 0xDC00 && u <= 0xDFFF then
             fail st.pos "unpaired low surrogate"
           else u
         in
         add_utf8 buf u
       | _ -> fail st.pos "bad escape");
      go ()
    | Some c ->
      if Char.code c < 0x20 then fail st.pos "raw control char in string";
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  let integral =
    String.for_all (function '0' .. '9' | '-' -> true | _ -> false) text
  in
  if integral then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail start "bad number")
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let name = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (name, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; members ()
        | Some '}' -> advance st
        | _ -> fail st.pos "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; elements ()
        | Some ']' -> advance st
        | _ -> fail st.pos "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "JSON syntax error at offset %d: %s" pos msg)

(* --- printing ------------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* shortest decimal that round-trips would need %h games; %.12g is
       stable and only used for non-cached metric fields *)
    Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> add_escaped buf s
  | Raw s -> Buffer.add_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_string buf ", ";
         add buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
         if i > 0 then Buffer.add_string buf ", ";
         add_escaped buf name;
         Buffer.add_string buf ": ";
         add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
