(** A minimal JSON codec for the line-delimited serving protocol.

    The repo deliberately avoids new opam dependencies, so the daemon
    carries its own small parser and printer.  The printer is {e canonical}
    for a given value — fields are emitted in construction order, strings
    are escaped one way only, no insignificant whitespace — which is what
    makes "byte-identical cold vs warm responses" a meaningful contract:
    re-rendering a parsed response reproduces the bytes the daemon sent.

    [Raw] splices a pre-rendered JSON fragment verbatim on output (the
    daemon uses it to embed cached result payloads and {!Ucfg_lint.Diag}
    renderings without reparsing); the parser never produces it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** verbatim fragment, output only *)

(** [parse s] — objects, arrays, strings (with [\uXXXX] escapes, surrogate
    pairs decoded to UTF-8), numbers (lossless [Int] when integral and in
    range), booleans, null.  [Error] carries a position-annotated message. *)
val parse : string -> (t, string) result

(** [to_string v] — canonical single-line rendering. *)
val to_string : t -> string

(** [member name v] is the field [name] of an [Obj] (first occurrence). *)
val member : string -> t -> t option

(** Field accessors: [Some] on the matching constructor ([get_float] also
    accepts [Int]), [None] on a missing field or any other constructor. *)

val get_string : t -> string option
val get_int : t -> int option
val get_bool : t -> bool option
val get_float : t -> float option

(** [escape_string s] is the quoted, escaped JSON literal for [s]. *)
val escape_string : string -> string
