(* Request dispatch for the serving daemon.  See the mli for the protocol
   and the caching/guard contract. *)

open Ucfg_cfg
module Lang = Ucfg_lang.Lang
module Diag = Ucfg_lint.Diag
module SL = Ucfg_lint.Semantic_lint
module Guard = Ucfg_exec.Guard
module Bignum = Ucfg_util.Bignum

(* per-grammar derived artifacts shared across operations: the parsed
   grammar and (lazily) its materialised language, keyed by the semantic
   content digest — a lint then a rank on the same grammar parse and
   materialise once.  [lang] is read and written only under [art_mutex]:
   stdin batches fan [handle_line] over domains *)
type artifact = { grammar : Grammar.t; mutable lang : Lang.t option }

type t = {
  cache : Cache.t;
  version : string;
  default_timeout_ms : float option;
  default_budget : int option;
  artifacts : (string, artifact) Hashtbl.t;
  art_mutex : Mutex.t;
  mutable stop : bool;
  requests : int Atomic.t;
  errors : int Atomic.t;
}

let create ?(cache_dir = Some "_repro/cache") ?mem_capacity ?cache_max_bytes
    ?default_timeout_ms ?default_budget ?(version = "dev") () =
  {
    cache =
      Cache.create ?mem_capacity ?disk_max_bytes:cache_max_bytes
        ?dir:cache_dir ();
    version;
    default_timeout_ms;
    default_budget;
    artifacts = Hashtbl.create 32;
    art_mutex = Mutex.create ();
    stop = false;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
  }

let cache t = t.cache
let stopping t = t.stop

(* --- request decoding ----------------------------------------------------- *)

exception Bad_request of string

let badf fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let kinds =
  [ ("log", `Log); ("example3", `Example3); ("example4", `Example4);
    ("trivial", `Trivial) ]

let build_kind kind n =
  match kind with
  | `Log -> Constructions.log_cfg n
  | `Example3 -> Constructions.example3 n
  | `Example4 -> Constructions.example4 n
  | `Trivial ->
    Constructions.of_language Ucfg_word.Alphabet.binary (Ucfg_lang.Ln.language n)

let field obj name = Json.member name obj

let string_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_string v with
      | Some s -> Some s
      | None -> badf "field %S must be a string" name)

let int_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_int v with
      | Some i -> Some i
      | None -> badf "field %S must be an integer" name)

let bool_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_bool v with
      | Some b -> Some b
      | None -> badf "field %S must be a boolean" name)

let float_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_float v with
      | Some f -> Some f
      | None -> badf "field %S must be a number" name)

let alphabet_of obj suffix =
  match string_field obj ("alphabet" ^ suffix) with
  | None -> Ucfg_word.Alphabet.binary
  | Some chars ->
    if chars = "" then badf "field \"alphabet%s\" must be non-empty" suffix;
    Ucfg_word.Alphabet.make (List.init (String.length chars) (String.get chars))

(* a grammar operand: inline Grammar_io text or a named construction *)
let grammar_of obj suffix =
  match
    ( string_field obj ("grammar" ^ suffix),
      string_field obj ("kind" ^ suffix),
      int_field obj ("n" ^ suffix) )
  with
  | Some text, None, None -> Grammar_io.parse (alphabet_of obj suffix) text
  | None, Some kind, Some n -> (
      match List.assoc_opt kind kinds with
      | Some k -> build_kind k n
      | None ->
        badf "unknown kind%s %S (expected log, example3, example4, trivial)"
          suffix kind)
  | None, Some _, None -> badf "field \"kind%s\" needs \"n%s\"" suffix suffix
  | None, None, Some _ -> badf "field \"n%s\" needs \"kind%s\"" suffix suffix
  | Some _, Some _, _ | Some _, _, Some _ ->
    badf "pass either \"grammar%s\" or \"kind%s\"+\"n%s\", not both" suffix
      suffix suffix
  | None, None, None ->
    badf "missing grammar operand: \"grammar%s\" or \"kind%s\"+\"n%s\"" suffix
      suffix suffix

(* --- artifacts ------------------------------------------------------------ *)

let artifact t g =
  let key = Canon.digest g in
  Mutex.lock t.art_mutex;
  let art =
    match Hashtbl.find_opt t.artifacts key with
    | Some a -> a
    | None ->
      (* crude growth bound: the response cache is the real store, this
         table only deduplicates within a busy window *)
      if Hashtbl.length t.artifacts >= 256 then Hashtbl.reset t.artifacts;
      let a = { grammar = g; lang = None } in
      Hashtbl.add t.artifacts key a;
      a
  in
  Mutex.unlock t.art_mutex;
  art

let language t ~guard art =
  let cached =
    Mutex.lock t.art_mutex;
    let l = art.lang in
    Mutex.unlock t.art_mutex;
    l
  in
  match cached with
  | Some l -> l
  | None ->
    (* materialise outside the lock — racing domains may compute the same
       language redundantly, but never while holding the mutex; the first
       publication wins *)
    let l = Analysis.language_exn ~guard art.grammar in
    Mutex.lock t.art_mutex;
    let l = match art.lang with Some l -> l | None -> art.lang <- Some l; l in
    Mutex.unlock t.art_mutex;
    l

(* --- result rendering ----------------------------------------------------- *)

let diags_json diags = Json.Raw (Diag.list_to_json diags)

let big_opt = function
  | Some b -> Json.Str (Bignum.to_string b)
  | None -> Json.Null

let check_result name (report : SL.report) =
  let diags = SL.to_diags report in
  let status, reason =
    match report.SL.status with
    | SL.Holds -> ("holds", Json.Null)
    | SL.Fails _ -> ("fails", Json.Null)
    | SL.Interrupted r -> ("interrupted", Json.Str (Guard.reason_code r))
  in
  let backend =
    match report.SL.backend with
    | SL.Counting -> "count"
    | SL.Packed -> "packed"
    | SL.Mixed -> "mixed"
  in
  let witness =
    match report.SL.status with
    | SL.Fails cex ->
      Json.Obj
        [ ("word", Json.Str cex.SL.word);
          ("in_first", Json.Bool cex.SL.in_first);
          ("in_second", Json.Bool cex.SL.in_second) ]
    | _ -> Json.Null
  in
  ( Json.Obj
      [ ("property", Json.Str name);
        ("status", Json.Str status);
        ("reason", reason);
        ("backend", Json.Str backend);
        ("vacuous", Json.Bool report.SL.vacuous);
        ("cardinal", big_opt report.SL.cardinal);
        ("cardinal2", big_opt report.SL.cardinal2);
        ("witness", witness);
        ("diagnostics", diags_json diags) ],
    report.SL.status,
    diags )

(* --- operations ----------------------------------------------------------- *)

(* the canonical cache key of a request: op, canonical parameter string,
   canonical operand grammars.  Names only matter where the rendered
   artifact mentions them (lint diagnostics). *)
let key_of ~op ~params ~keep_names grammars =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (op :: params :: List.map (Canon.canonical ~keep_names) grammars)))

(* [compute] returns the result payload object; a [Guard.Interrupt] or an
   [SL.Interrupted] status becomes an uncached error response upstream *)
exception Interrupted_status of Guard.reason

let op_lint ~guard ~semantic g =
  let diags =
    let static = Ucfg_lint.Grammar_lint.run g in
    if semantic then Diag.sort (static @ SL.lint ~guard g) else static
  in
  (* [SL.lint] renders a guard trip as an R001–R003 warning (a partial
     verdict) instead of raising; a partial verdict must never be cached,
     so resurface the trip here and let the dispatcher turn it into an
     uncached 124 error response, exactly as [op_check] does *)
  (match
     List.find_map
       (fun (d : Diag.t) ->
          match d.Diag.code with
          | "R001" -> Some Guard.Timeout
          | "R002" -> Some Guard.Budget
          | "R003" -> Some Guard.Cancel
          | _ -> None)
       diags
   with
   | Some reason -> raise (Interrupted_status reason)
   | None -> ());
  let errors, warnings, infos = Diag.count_severity diags in
  Json.Obj
    [ ("diagnostics", diags_json diags);
      ("errors", Json.Int errors);
      ("warnings", Json.Int warnings);
      ("infos", Json.Int infos) ]

let op_ambiguity ~guard g =
  let v = Ambiguity.check ~guard g in
  let via, witness =
    match v.Ambiguity.via with
    | Ambiguity.Certificate -> ("certificate", Json.Null)
    | Ambiguity.Static_witness w -> ("static-witness", Json.Str w)
    | Ambiguity.Counting -> ("counting", Json.Null)
  in
  Json.Obj
    [ ("unambiguous", Json.Bool v.Ambiguity.unambiguous);
      ("total_trees", big_opt v.Ambiguity.total_trees);
      ("word_count",
       match v.Ambiguity.word_count with
       | Some c -> Json.Int c
       | None -> Json.Null);
      ("via", Json.Str via);
      ("witness", witness) ]

let op_check ~guard ~cross_check ~property g1 g2_opt =
  let need_g2 () =
    match g2_opt with
    | Some g -> g
    | None -> badf "property %S needs a second grammar" property
  in
  let report =
    match property with
    | "universal" -> SL.universal ~guard ~cross_check g1
    | "includes" -> SL.includes ~guard ~cross_check g1 (need_g2 ())
    | "equiv" -> SL.equiv ~guard ~cross_check g1 (need_g2 ())
    | "disjoint" -> SL.disjoint ~guard ~cross_check g1 (need_g2 ())
    | p ->
      badf "unknown property %S (expected universal, includes, equiv, \
            disjoint)" p
  in
  let result, status, _diags = check_result property report in
  (match status with
   | SL.Interrupted reason -> raise (Interrupted_status reason)
   | _ -> ());
  result

let op_rectangles ~guard g =
  let res = Ucfg_rect.Extract.run ~guard g in
  let v, shape_ok = Ucfg_rect.Extract.verify g res in
  Json.Obj
    [ ("word_length", Json.Int res.Ucfg_rect.Extract.word_length);
      ("cnf_size", Json.Int res.Ucfg_rect.Extract.cnf_size);
      ("annotated_size", Json.Int res.Ucfg_rect.Extract.annotated_size);
      ("rectangles", Json.Int (List.length res.Ucfg_rect.Extract.rectangles));
      ("bound", Json.Int res.Ucfg_rect.Extract.bound);
      ("is_cover", Json.Bool v.Ucfg_rect.Cover.is_cover);
      ("is_disjoint", Json.Bool v.Ucfg_rect.Cover.is_disjoint);
      ("balanced_within_bound", Json.Bool shape_ok) ]

let op_rank t ~guard ~split g =
  let art = artifact t g in
  let lang =
    (* a language too large (or infinite) to materialise is an input
       problem of this request, not a server fault *)
    try language t ~guard art with Invalid_argument msg -> badf "%s" msg
  in
  let len =
    match Lang.uniform_length lang with
    | Some l -> l
    | None -> badf "rank needs a non-empty uniform-length language"
  in
  let split =
    match split with
    | Some s ->
      if s < 1 || s >= len then
        badf "split %d out of range for word length %d" s len;
      s
    | None -> (len + 1) / 2
  in
  let m = Ucfg_comm.Matrix.of_language (Grammar.alphabet g) lang ~split in
  Json.Obj
    [ ("word_length", Json.Int len);
      ("split", Json.Int split);
      ("rows", Json.Int (Ucfg_comm.Matrix.rows m));
      ("cols", Json.Int (Ucfg_comm.Matrix.cols m));
      ("ones", Json.Int (Ucfg_comm.Matrix.ones m));
      ("gf2_rank", Json.Int (Ucfg_comm.Rank.gf2 m));
      ("cover_lower_bound", Json.Int (Ucfg_comm.Rank.disjoint_cover_lower_bound m));
      ("language_digest", Json.Str (Lang.digest lang)) ]

(* --- the dispatcher ------------------------------------------------------- *)

let error_response ~id ?op (diag : Diag.t) exit_code =
  let fields =
    [ ("id", id); ("ok", Json.Bool false) ]
    @ (match op with Some o -> [ ("op", Json.Str o) ] | None -> [])
    @ [ ("error",
         Json.Obj
           ([ ("code", Json.Str diag.Diag.code);
              ("exit_code", Json.Int exit_code);
              ("message", Json.Str diag.Diag.message) ]
            @
            match diag.Diag.hint with
            | Some h -> [ ("hint", Json.Str h) ]
            | None -> []));
        ("diagnostics", diags_json [ diag ]) ]
  in
  Json.to_string (Json.Obj fields)

let ok_response ~id ~op ~source ~key ?warning payload =
  let cached = match source with "computed" | "recomputed" -> false | _ -> true in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true); ("op", Json.Str op);
          ("cached", Json.Bool cached); ("source", Json.Str source);
          ("key", match key with Some k -> Json.Str k | None -> Json.Null);
          ("result", Json.Raw payload) ]
        @
        match warning with
        | Some d -> [ ("warning", Json.Raw (Diag.to_json d)) ]
        | None -> []))

let handle_line t line =
  Atomic.incr t.requests;
  let id = ref Json.Null in
  let op_for_error = ref None in
  try
    let obj =
      match Json.parse line with
      | Ok v -> v
      | Error msg -> badf "%s" msg
    in
    (match obj with Json.Obj _ -> () | _ -> badf "request must be a JSON object");
    (match field obj "id" with Some v -> id := v | None -> ());
    let op =
      match string_field obj "op" with
      | Some op -> op
      | None -> badf "missing \"op\""
    in
    op_for_error := Some op;
    let timeout_ms =
      match float_field obj "timeout_ms" with
      | Some ms -> Some ms
      | None -> t.default_timeout_ms
    in
    let budget =
      match int_field obj "budget" with
      | Some b -> Some b
      | None -> t.default_budget
    in
    (* the request guard is passed explicitly to every library entry
       point, never installed as the process-wide ambient guard: requests
       racing in a stdin batch cannot trip each other *)
    let guard =
      match timeout_ms, budget with
      | None, None -> Ucfg_exec.Exec.current_guard ()
      | timeout_ms, budget ->
        Guard.create
          ?timeout:(Option.map (fun ms -> ms /. 1000.) timeout_ms)
          ?budget ()
    in
    let no_cache = Option.value ~default:false (bool_field obj "no_cache") in
    let respond_computed ~op ~key compute =
      match key with
      | None ->
        let payload = Json.to_string (compute ()) in
        ok_response ~id:!id ~op ~source:"computed" ~key:None payload
      | Some key -> (
          let lookup = if no_cache then Cache.Miss else Cache.lookup t.cache key in
          match lookup with
          | Cache.Memory payload ->
            ok_response ~id:!id ~op ~source:"mem" ~key:(Some key) payload
          | Cache.Disk payload ->
            ok_response ~id:!id ~op ~source:"disk" ~key:(Some key) payload
          | Cache.Miss ->
            let payload = Json.to_string (compute ()) in
            Cache.store t.cache key payload;
            ok_response ~id:!id ~op ~source:"computed" ~key:(Some key) payload
          | Cache.Corrupt ->
            (* hash verification rejected the on-disk entry: recompute,
               overwrite atomically, and say so — a damaged cache can cost
               time, never correctness *)
            let payload = Json.to_string (compute ()) in
            Cache.store t.cache key payload;
            ok_response ~id:!id ~op ~source:"recomputed" ~key:(Some key)
              ~warning:(Diag.cache_corrupt key) payload)
    in
    match op with
    | "ping" ->
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string
           (Json.Obj
              [ ("pong", Json.Bool true); ("version", Json.Str t.version) ]))
    | "stats" ->
      let s = Cache.stats t.cache in
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string
           (Json.Obj
              [ ("requests", Json.Int (Atomic.get t.requests));
                ("errors", Json.Int (Atomic.get t.errors));
                ("cache",
                 Json.Obj
                   [ ("lookups", Json.Int s.Cache.lookups);
                     ("mem_hits", Json.Int s.Cache.mem_hits);
                     ("disk_hits", Json.Int s.Cache.disk_hits);
                     ("misses", Json.Int s.Cache.misses);
                     ("corrupt", Json.Int s.Cache.corrupt);
                     ("stores", Json.Int s.Cache.stores);
                     ("evictions", Json.Int s.Cache.evictions);
                     ("disk_evictions", Json.Int s.Cache.disk_evictions) ]);
                ("artifacts", Json.Int (Hashtbl.length t.artifacts)) ]))
    | "shutdown" ->
      t.stop <- true;
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string (Json.Obj [ ("stopping", Json.Bool true) ]))
    | "lint" ->
      let g = grammar_of obj "" in
      let semantic = Option.value ~default:false (bool_field obj "semantic") in
      let params = Printf.sprintf "semantic=%b" semantic in
      (* lint diagnostics mention nonterminal names, so names are part of
         this op's key (and only this op's) *)
      let key = key_of ~op ~params ~keep_names:true [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_lint ~guard ~semantic g)
    | "ambiguity" ->
      let g = grammar_of obj "" in
      let key = key_of ~op ~params:"" ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_ambiguity ~guard g)
    | "check" ->
      let g1 = grammar_of obj "" in
      let property =
        match string_field obj "property" with
        | Some p -> p
        | None -> badf "missing \"property\""
      in
      let g2 =
        if property = "universal" then None else Some (grammar_of obj "2")
      in
      let cross_check =
        Option.value ~default:false (bool_field obj "cross_check")
      in
      let params = Printf.sprintf "property=%s cross_check=%b" property cross_check in
      let grammars = g1 :: Option.to_list g2 in
      let key = key_of ~op ~params ~keep_names:false grammars in
      respond_computed ~op ~key:(Some key)
        (fun () -> op_check ~guard ~cross_check ~property g1 g2)
    | "rectangles" ->
      let g = grammar_of obj "" in
      let key = key_of ~op ~params:"" ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_rectangles ~guard g)
    | "rank" ->
      let g = grammar_of obj "" in
      let split = int_field obj "split" in
      let params =
        match split with
        | Some s -> Printf.sprintf "split=%d" s
        | None -> "split=half"
      in
      let key = key_of ~op ~params ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_rank t ~guard ~split g)
    | op ->
      Atomic.incr t.errors;
      error_response ~id:!id ~op (Diag.unsupported (Printf.sprintf "op %S" op)) 2
  with
  | Bad_request msg ->
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.invalid_input msg) 2
  | Guard.Interrupt reason | Interrupted_status reason ->
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.interrupted reason) 124
  | Invalid_argument msg | Failure msg ->
    (* the library marks unsupported-input preconditions with
       [invalid_arg]/[failwith] ("cyclic grammar", "grammar not in CNF",
       …): input-dependent, hence a client error *)
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.invalid_input msg) 2
  | exn ->
    (* anything else — I/O failures, Not_found, assertion failures deep in
       an analysis pass — is a server-side fault: give it a distinct code
       and log it for the operator instead of blaming the input *)
    Atomic.incr t.errors;
    let msg = Printexc.to_string exn in
    Printf.eprintf "ucfg serve: internal error on request: %s\n%!" msg;
    error_response ~id:!id ?op:!op_for_error (Diag.internal msg) 70

(* --- transports ----------------------------------------------------------- *)

let run_stdin t ic oc =
  let rec read acc =
    match input_line ic with
    | line -> read (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  let responses = Ucfg_exec.Exec.parallel_map (handle_line t) lines in
  List.iter
    (fun r ->
       output_string oc r;
       output_char oc '\n')
    responses;
  flush oc

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     while not t.stop do
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (handle_line t line);
         output_char oc '\n';
         flush oc
       end
     done
   with End_of_file | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t sock =
  while not t.stop do
    match Unix.accept sock with
    | fd, _ -> serve_connection t fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ())

let run_unix t ~path =
  (* only ever displace a *stale* socket: a regular file is someone
     else's data, and a socket something still answers on is a live
     daemon — unlinking either would be silent sabotage *)
  (match Unix.lstat path with
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
   | { Unix.st_kind = Unix.S_SOCK; _ } ->
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       match Unix.connect probe (Unix.ADDR_UNIX path) with
       | () -> true
       | exception Unix.Unix_error _ -> false
     in
     (try Unix.close probe with Unix.Unix_error _ -> ());
     if live then
       failwith
         (Printf.sprintf
            "socket %s already has a live server; shut it down or pass a \
             different path" path);
     (try Sys.remove path with Sys_error _ -> ())
   | _ ->
     failwith
       (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
          path));
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> accept_loop t sock)

let run_tcp t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  accept_loop t sock
