(* Request dispatch for the serving daemon.  See the mli for the protocol
   and the caching/guard contract. *)

open Ucfg_cfg
module Lang = Ucfg_lang.Lang
module Diag = Ucfg_lint.Diag
module SL = Ucfg_lint.Semantic_lint
module Guard = Ucfg_exec.Guard
module Bignum = Ucfg_util.Bignum

(* per-grammar derived artifacts shared across operations: the parsed
   grammar and (lazily) its materialised language, keyed by the semantic
   content digest — a lint then a rank on the same grammar parse and
   materialise once.  [lang] is read and written only under [art_mutex]:
   stdin batches fan [handle_line] over domains *)
type artifact = { grammar : Grammar.t; mutable lang : Lang.t option }

type drain_outcome = Drained | Forced of int

type t = {
  cache : Cache.t;
  version : string;
  default_timeout_ms : float option;
  default_budget : int option;
  max_connections : int;
  queue_capacity : int;
  idle_timeout_ms : float;
  max_request_bytes : int;
  drain_timeout_ms : float;
  artifacts : (string, artifact) Hashtbl.t;
  art_mutex : Mutex.t;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  requests : int Atomic.t;
  errors : int Atomic.t;
  in_flight : int Atomic.t;
  peak_concurrency : int Atomic.t;
  shed : int Atomic.t;
  read_timeouts : int Atomic.t;
  client_aborts : int Atomic.t;
  (* guards of in-flight requests, so drain can cancel stragglers *)
  active : (int, Ucfg_exec.Guard.t) Hashtbl.t;
  active_mutex : Mutex.t;
  next_req : int Atomic.t;
  (* write end of the accept loop's self-pipe while it runs; written by
     [request_drain] (possibly from a signal handler) to wake the select *)
  wake : Unix.file_descr option Atomic.t;
}

let create ?(cache_dir = Some "_repro/cache") ?mem_capacity ?cache_max_bytes
    ?default_timeout_ms ?default_budget ?max_connections ?queue_capacity
    ?(idle_timeout_ms = 30_000.) ?(max_request_bytes = 1_048_576)
    ?(drain_timeout_ms = 5_000.) ?(version = "dev") () =
  let max_connections =
    max 1 (Option.value max_connections ~default:(Ucfg_exec.Exec.jobs ()))
  in
  {
    cache =
      Cache.create ?mem_capacity ?disk_max_bytes:cache_max_bytes
        ?dir:cache_dir ();
    version;
    default_timeout_ms;
    default_budget;
    max_connections;
    queue_capacity = max 1 (Option.value queue_capacity ~default:max_connections);
    idle_timeout_ms;
    max_request_bytes;
    drain_timeout_ms;
    artifacts = Hashtbl.create 32;
    art_mutex = Mutex.create ();
    stop = Atomic.make false;
    draining = Atomic.make false;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    in_flight = Atomic.make 0;
    peak_concurrency = Atomic.make 0;
    shed = Atomic.make 0;
    read_timeouts = Atomic.make 0;
    client_aborts = Atomic.make 0;
    active = Hashtbl.create 16;
    active_mutex = Mutex.create ();
    next_req = Atomic.make 0;
    wake = Atomic.make None;
  }

let cache t = t.cache
let stopping t = Atomic.get t.stop
let draining t = Atomic.get t.draining

(* wake the accept loop out of its select; the pipe may already be closed
   when the daemon is past drain, in which case there is nothing to wake *)
let request_drain t =
  Atomic.set t.draining true;
  match Atomic.get t.wake with
  | Some fd ->
    (try ignore (Unix.write_substring fd "x" 0 1) with Unix.Unix_error _ -> ())
  | None -> ()

(* --- in-flight accounting ------------------------------------------------- *)

let enter_flight t =
  let now = Atomic.fetch_and_add t.in_flight 1 + 1 in
  let rec bump () =
    let peak = Atomic.get t.peak_concurrency in
    if now > peak && not (Atomic.compare_and_set t.peak_concurrency peak now)
    then bump ()
  in
  bump ()

let register_guard t guard =
  let id = Atomic.fetch_and_add t.next_req 1 in
  Mutex.lock t.active_mutex;
  Hashtbl.replace t.active id guard;
  Mutex.unlock t.active_mutex;
  id

let unregister_guard t id =
  Mutex.lock t.active_mutex;
  Hashtbl.remove t.active id;
  Mutex.unlock t.active_mutex

let cancel_active t =
  Mutex.lock t.active_mutex;
  let n = Hashtbl.length t.active in
  Hashtbl.iter (fun _ g -> Ucfg_exec.Guard.cancel g) t.active;
  Mutex.unlock t.active_mutex;
  n

(* --- request decoding ----------------------------------------------------- *)

exception Bad_request of string

let badf fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

let kinds =
  [ ("log", `Log); ("example3", `Example3); ("example4", `Example4);
    ("trivial", `Trivial) ]

let build_kind kind n =
  match kind with
  | `Log -> Constructions.log_cfg n
  | `Example3 -> Constructions.example3 n
  | `Example4 -> Constructions.example4 n
  | `Trivial ->
    Constructions.of_language Ucfg_word.Alphabet.binary (Ucfg_lang.Ln.language n)

let field obj name = Json.member name obj

let string_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_string v with
      | Some s -> Some s
      | None -> badf "field %S must be a string" name)

let int_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_int v with
      | Some i -> Some i
      | None -> badf "field %S must be an integer" name)

let bool_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_bool v with
      | Some b -> Some b
      | None -> badf "field %S must be a boolean" name)

let float_field obj name =
  match field obj name with
  | None -> None
  | Some v -> (
      match Json.get_float v with
      | Some f -> Some f
      | None -> badf "field %S must be a number" name)

let alphabet_of obj suffix =
  match string_field obj ("alphabet" ^ suffix) with
  | None -> Ucfg_word.Alphabet.binary
  | Some chars ->
    if chars = "" then badf "field \"alphabet%s\" must be non-empty" suffix;
    Ucfg_word.Alphabet.make (List.init (String.length chars) (String.get chars))

(* a grammar operand: inline Grammar_io text or a named construction *)
let grammar_of obj suffix =
  match
    ( string_field obj ("grammar" ^ suffix),
      string_field obj ("kind" ^ suffix),
      int_field obj ("n" ^ suffix) )
  with
  | Some text, None, None -> Grammar_io.parse (alphabet_of obj suffix) text
  | None, Some kind, Some n -> (
      match List.assoc_opt kind kinds with
      | Some k -> build_kind k n
      | None ->
        badf "unknown kind%s %S (expected log, example3, example4, trivial)"
          suffix kind)
  | None, Some _, None -> badf "field \"kind%s\" needs \"n%s\"" suffix suffix
  | None, None, Some _ -> badf "field \"n%s\" needs \"kind%s\"" suffix suffix
  | Some _, Some _, _ | Some _, _, Some _ ->
    badf "pass either \"grammar%s\" or \"kind%s\"+\"n%s\", not both" suffix
      suffix suffix
  | None, None, None ->
    badf "missing grammar operand: \"grammar%s\" or \"kind%s\"+\"n%s\"" suffix
      suffix suffix

(* --- artifacts ------------------------------------------------------------ *)

let artifact t g =
  let key = Canon.digest g in
  Mutex.lock t.art_mutex;
  let art =
    match Hashtbl.find_opt t.artifacts key with
    | Some a -> a
    | None ->
      (* crude growth bound: the response cache is the real store, this
         table only deduplicates within a busy window *)
      if Hashtbl.length t.artifacts >= 256 then Hashtbl.reset t.artifacts;
      let a = { grammar = g; lang = None } in
      Hashtbl.add t.artifacts key a;
      a
  in
  Mutex.unlock t.art_mutex;
  art

let language t ~guard art =
  let cached =
    Mutex.lock t.art_mutex;
    let l = art.lang in
    Mutex.unlock t.art_mutex;
    l
  in
  match cached with
  | Some l -> l
  | None ->
    (* materialise outside the lock — racing domains may compute the same
       language redundantly, but never while holding the mutex; the first
       publication wins *)
    let l = Analysis.language_exn ~guard art.grammar in
    Mutex.lock t.art_mutex;
    let l = match art.lang with Some l -> l | None -> art.lang <- Some l; l in
    Mutex.unlock t.art_mutex;
    l

(* --- result rendering ----------------------------------------------------- *)

let diags_json diags = Json.Raw (Diag.list_to_json diags)

let big_opt = function
  | Some b -> Json.Str (Bignum.to_string b)
  | None -> Json.Null

let check_result name (report : SL.report) =
  let diags = SL.to_diags report in
  let status, reason =
    match report.SL.status with
    | SL.Holds -> ("holds", Json.Null)
    | SL.Fails _ -> ("fails", Json.Null)
    | SL.Interrupted r -> ("interrupted", Json.Str (Guard.reason_code r))
  in
  let backend =
    match report.SL.backend with
    | SL.Counting -> "count"
    | SL.Packed -> "packed"
    | SL.Mixed -> "mixed"
  in
  let witness =
    match report.SL.status with
    | SL.Fails cex ->
      Json.Obj
        [ ("word", Json.Str cex.SL.word);
          ("in_first", Json.Bool cex.SL.in_first);
          ("in_second", Json.Bool cex.SL.in_second) ]
    | _ -> Json.Null
  in
  ( Json.Obj
      [ ("property", Json.Str name);
        ("status", Json.Str status);
        ("reason", reason);
        ("backend", Json.Str backend);
        ("vacuous", Json.Bool report.SL.vacuous);
        ("cardinal", big_opt report.SL.cardinal);
        ("cardinal2", big_opt report.SL.cardinal2);
        ("witness", witness);
        ("diagnostics", diags_json diags) ],
    report.SL.status,
    diags )

(* --- operations ----------------------------------------------------------- *)

(* the canonical cache key of a request: op, canonical parameter string,
   canonical operand grammars.  Names only matter where the rendered
   artifact mentions them (lint diagnostics). *)
let key_of ~op ~params ~keep_names grammars =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (op :: params :: List.map (Canon.canonical ~keep_names) grammars)))

(* [compute] returns the result payload object; a [Guard.Interrupt] or an
   [SL.Interrupted] status becomes an uncached error response upstream *)
exception Interrupted_status of Guard.reason

let op_lint ~guard ~semantic g =
  let diags =
    let static = Ucfg_lint.Grammar_lint.run g in
    if semantic then Diag.sort (static @ SL.lint ~guard g) else static
  in
  (* [SL.lint] renders a guard trip as an R001–R003 warning (a partial
     verdict) instead of raising; a partial verdict must never be cached,
     so resurface the trip here and let the dispatcher turn it into an
     uncached 124 error response, exactly as [op_check] does *)
  (match
     List.find_map
       (fun (d : Diag.t) ->
          match d.Diag.code with
          | "R001" -> Some Guard.Timeout
          | "R002" -> Some Guard.Budget
          | "R003" -> Some Guard.Cancel
          | _ -> None)
       diags
   with
   | Some reason -> raise (Interrupted_status reason)
   | None -> ());
  let errors, warnings, infos = Diag.count_severity diags in
  Json.Obj
    [ ("diagnostics", diags_json diags);
      ("errors", Json.Int errors);
      ("warnings", Json.Int warnings);
      ("infos", Json.Int infos) ]

let op_ambiguity ~guard g =
  let v = Ambiguity.check ~guard g in
  let via, witness =
    match v.Ambiguity.via with
    | Ambiguity.Certificate -> ("certificate", Json.Null)
    | Ambiguity.Static_witness w -> ("static-witness", Json.Str w)
    | Ambiguity.Counting -> ("counting", Json.Null)
  in
  Json.Obj
    [ ("unambiguous", Json.Bool v.Ambiguity.unambiguous);
      ("total_trees", big_opt v.Ambiguity.total_trees);
      ("word_count",
       match v.Ambiguity.word_count with
       | Some c -> Json.Int c
       | None -> Json.Null);
      ("via", Json.Str via);
      ("witness", witness) ]

let op_check ~guard ~cross_check ~property g1 g2_opt =
  let need_g2 () =
    match g2_opt with
    | Some g -> g
    | None -> badf "property %S needs a second grammar" property
  in
  let report =
    match property with
    | "universal" -> SL.universal ~guard ~cross_check g1
    | "includes" -> SL.includes ~guard ~cross_check g1 (need_g2 ())
    | "equiv" -> SL.equiv ~guard ~cross_check g1 (need_g2 ())
    | "disjoint" -> SL.disjoint ~guard ~cross_check g1 (need_g2 ())
    | p ->
      badf "unknown property %S (expected universal, includes, equiv, \
            disjoint)" p
  in
  let result, status, _diags = check_result property report in
  (match status with
   | SL.Interrupted reason -> raise (Interrupted_status reason)
   | _ -> ());
  result

let op_rectangles ~guard g =
  let res = Ucfg_rect.Extract.run ~guard g in
  let v, shape_ok = Ucfg_rect.Extract.verify g res in
  Json.Obj
    [ ("word_length", Json.Int res.Ucfg_rect.Extract.word_length);
      ("cnf_size", Json.Int res.Ucfg_rect.Extract.cnf_size);
      ("annotated_size", Json.Int res.Ucfg_rect.Extract.annotated_size);
      ("rectangles", Json.Int (List.length res.Ucfg_rect.Extract.rectangles));
      ("bound", Json.Int res.Ucfg_rect.Extract.bound);
      ("is_cover", Json.Bool v.Ucfg_rect.Cover.is_cover);
      ("is_disjoint", Json.Bool v.Ucfg_rect.Cover.is_disjoint);
      ("balanced_within_bound", Json.Bool shape_ok) ]

let op_rank t ~guard ~split g =
  let art = artifact t g in
  let lang =
    (* a language too large (or infinite) to materialise is an input
       problem of this request, not a server fault *)
    try language t ~guard art with Invalid_argument msg -> badf "%s" msg
  in
  let len =
    match Lang.uniform_length lang with
    | Some l -> l
    | None -> badf "rank needs a non-empty uniform-length language"
  in
  let split =
    match split with
    | Some s ->
      if s < 1 || s >= len then
        badf "split %d out of range for word length %d" s len;
      s
    | None -> (len + 1) / 2
  in
  let m = Ucfg_comm.Matrix.of_language (Grammar.alphabet g) lang ~split in
  Json.Obj
    [ ("word_length", Json.Int len);
      ("split", Json.Int split);
      ("rows", Json.Int (Ucfg_comm.Matrix.rows m));
      ("cols", Json.Int (Ucfg_comm.Matrix.cols m));
      ("ones", Json.Int (Ucfg_comm.Matrix.ones m));
      ("gf2_rank", Json.Int (Ucfg_comm.Rank.gf2 m));
      ("cover_lower_bound", Json.Int (Ucfg_comm.Rank.disjoint_cover_lower_bound m));
      ("language_digest", Json.Str (Lang.digest lang)) ]

(* --- the dispatcher ------------------------------------------------------- *)

let error_response ~id ?op (diag : Diag.t) exit_code =
  let fields =
    [ ("id", id); ("ok", Json.Bool false) ]
    @ (match op with Some o -> [ ("op", Json.Str o) ] | None -> [])
    @ [ ("error",
         Json.Obj
           ([ ("code", Json.Str diag.Diag.code);
              ("exit_code", Json.Int exit_code);
              ("message", Json.Str diag.Diag.message) ]
            @
            match diag.Diag.hint with
            | Some h -> [ ("hint", Json.Str h) ]
            | None -> []));
        ("diagnostics", diags_json [ diag ]) ]
  in
  Json.to_string (Json.Obj fields)

let ok_response ~id ~op ~source ~key ?warning payload =
  let cached = match source with "computed" | "recomputed" -> false | _ -> true in
  Json.to_string
    (Json.Obj
       ([ ("id", id); ("ok", Json.Bool true); ("op", Json.Str op);
          ("cached", Json.Bool cached); ("source", Json.Str source);
          ("key", match key with Some k -> Json.Str k | None -> Json.Null);
          ("result", Json.Raw payload) ]
        @
        match warning with
        | Some d -> [ ("warning", Json.Raw (Diag.to_json d)) ]
        | None -> []))

let handle_line t line =
  Atomic.incr t.requests;
  enter_flight t;
  Fun.protect ~finally:(fun () -> Atomic.decr t.in_flight) @@ fun () ->
  let id = ref Json.Null in
  let op_for_error = ref None in
  try
    let obj =
      match Json.parse line with
      | Ok v -> v
      | Error msg -> badf "%s" msg
    in
    (match obj with Json.Obj _ -> () | _ -> badf "request must be a JSON object");
    (match field obj "id" with Some v -> id := v | None -> ());
    let op =
      match string_field obj "op" with
      | Some op -> op
      | None -> badf "missing \"op\""
    in
    op_for_error := Some op;
    let timeout_ms =
      match float_field obj "timeout_ms" with
      | Some ms -> Some ms
      | None -> t.default_timeout_ms
    in
    let budget =
      match int_field obj "budget" with
      | Some b -> Some b
      | None -> t.default_budget
    in
    (* the request guard is passed explicitly to every library entry
       point, never installed as the process-wide ambient guard: requests
       racing across connections (or in a stdin batch) cannot trip each
       other.  Every request gets its own freshly *created* guard — even
       one with no timeout or budget, which can then trip only via
       [Guard.cancel]: graceful drain cancels the guards of in-flight
       requests, and the shared ambient [unlimited] guard is by design
       uncancellable *)
    let guard =
      Guard.create
        ?timeout:(Option.map (fun ms -> ms /. 1000.) timeout_ms)
        ?budget ()
    in
    let reqid = register_guard t guard in
    Fun.protect ~finally:(fun () -> unregister_guard t reqid) @@ fun () ->
    let no_cache = Option.value ~default:false (bool_field obj "no_cache") in
    let respond_computed ~op ~key compute =
      match key with
      | None ->
        let payload = Json.to_string (compute ()) in
        ok_response ~id:!id ~op ~source:"computed" ~key:None payload
      | Some key -> (
          let lookup = if no_cache then Cache.Miss else Cache.lookup t.cache key in
          match lookup with
          | Cache.Memory payload ->
            ok_response ~id:!id ~op ~source:"mem" ~key:(Some key) payload
          | Cache.Disk payload ->
            ok_response ~id:!id ~op ~source:"disk" ~key:(Some key) payload
          | Cache.Miss ->
            let payload = Json.to_string (compute ()) in
            Cache.store t.cache key payload;
            ok_response ~id:!id ~op ~source:"computed" ~key:(Some key) payload
          | Cache.Corrupt ->
            (* hash verification rejected the on-disk entry: recompute,
               overwrite atomically, and say so — a damaged cache can cost
               time, never correctness *)
            let payload = Json.to_string (compute ()) in
            Cache.store t.cache key payload;
            ok_response ~id:!id ~op ~source:"recomputed" ~key:(Some key)
              ~warning:(Diag.cache_corrupt key) payload)
    in
    match op with
    | "ping" ->
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string
           (Json.Obj
              [ ("pong", Json.Bool true); ("version", Json.Str t.version) ]))
    | "stats" ->
      let s = Cache.stats t.cache in
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string
           (Json.Obj
              [ ("requests", Json.Int (Atomic.get t.requests));
                ("errors", Json.Int (Atomic.get t.errors));
                (* the concurrency gauge: [in_flight] counts this very
                   request too, so it is always >= 1 here *)
                ("in_flight", Json.Int (Atomic.get t.in_flight));
                ("peak_concurrency", Json.Int (Atomic.get t.peak_concurrency));
                ("shed", Json.Int (Atomic.get t.shed));
                ("read_timeouts", Json.Int (Atomic.get t.read_timeouts));
                ("client_aborts", Json.Int (Atomic.get t.client_aborts));
                ("cache",
                 Json.Obj
                   [ ("lookups", Json.Int s.Cache.lookups);
                     ("mem_hits", Json.Int s.Cache.mem_hits);
                     ("disk_hits", Json.Int s.Cache.disk_hits);
                     ("misses", Json.Int s.Cache.misses);
                     ("corrupt", Json.Int s.Cache.corrupt);
                     ("stores", Json.Int s.Cache.stores);
                     ("evictions", Json.Int s.Cache.evictions);
                     ("disk_evictions", Json.Int s.Cache.disk_evictions) ]);
                ("artifacts", Json.Int (Hashtbl.length t.artifacts)) ]))
    | "shutdown" ->
      Atomic.set t.stop true;
      (* same path as SIGTERM: wake the accept loop so it stops taking
         connections; this worker still writes the response below before
         its connection winds down *)
      request_drain t;
      ok_response ~id:!id ~op ~source:"computed" ~key:None
        (Json.to_string (Json.Obj [ ("stopping", Json.Bool true) ]))
    | "lint" ->
      let g = grammar_of obj "" in
      let semantic = Option.value ~default:false (bool_field obj "semantic") in
      let params = Printf.sprintf "semantic=%b" semantic in
      (* lint diagnostics mention nonterminal names, so names are part of
         this op's key (and only this op's) *)
      let key = key_of ~op ~params ~keep_names:true [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_lint ~guard ~semantic g)
    | "ambiguity" ->
      let g = grammar_of obj "" in
      let key = key_of ~op ~params:"" ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_ambiguity ~guard g)
    | "check" ->
      let g1 = grammar_of obj "" in
      let property =
        match string_field obj "property" with
        | Some p -> p
        | None -> badf "missing \"property\""
      in
      let g2 =
        if property = "universal" then None else Some (grammar_of obj "2")
      in
      let cross_check =
        Option.value ~default:false (bool_field obj "cross_check")
      in
      let params = Printf.sprintf "property=%s cross_check=%b" property cross_check in
      let grammars = g1 :: Option.to_list g2 in
      let key = key_of ~op ~params ~keep_names:false grammars in
      respond_computed ~op ~key:(Some key)
        (fun () -> op_check ~guard ~cross_check ~property g1 g2)
    | "rectangles" ->
      let g = grammar_of obj "" in
      let key = key_of ~op ~params:"" ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_rectangles ~guard g)
    | "rank" ->
      let g = grammar_of obj "" in
      let split = int_field obj "split" in
      let params =
        match split with
        | Some s -> Printf.sprintf "split=%d" s
        | None -> "split=half"
      in
      let key = key_of ~op ~params ~keep_names:false [ g ] in
      respond_computed ~op ~key:(Some key) (fun () -> op_rank t ~guard ~split g)
    | op ->
      Atomic.incr t.errors;
      error_response ~id:!id ~op (Diag.unsupported (Printf.sprintf "op %S" op)) 2
  with
  | Bad_request msg ->
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.invalid_input msg) 2
  | Guard.Interrupt reason | Interrupted_status reason ->
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.interrupted reason) 124
  | Invalid_argument msg | Failure msg ->
    (* the library marks unsupported-input preconditions with
       [invalid_arg]/[failwith] ("cyclic grammar", "grammar not in CNF",
       …): input-dependent, hence a client error *)
    Atomic.incr t.errors;
    error_response ~id:!id ?op:!op_for_error (Diag.invalid_input msg) 2
  | exn ->
    (* anything else — I/O failures, Not_found, assertion failures deep in
       an analysis pass — is a server-side fault: give it a distinct code
       and log it for the operator instead of blaming the input *)
    Atomic.incr t.errors;
    let msg = Printexc.to_string exn in
    Printf.eprintf "ucfg serve: internal error on request: %s\n%!" msg;
    error_response ~id:!id ?op:!op_for_error (Diag.internal msg) 70

(* --- transports ----------------------------------------------------------- *)

let run_stdin t ic oc =
  let rec read acc =
    match input_line ic with
    | line -> read (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  let responses = Ucfg_exec.Exec.parallel_map (handle_line t) lines in
  List.iter
    (fun r ->
       output_string oc r;
       output_char oc '\n')
    responses;
  flush oc

(* --- socket I/O ------------------------------------------------------------ *)

(* a write that cannot complete is a client problem, never a daemon one *)
exception Client_gone

let set_sndtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* raw-fd writes (no out_channel: its buffer cannot express per-write
   containment).  SO_SNDTIMEO on the fd turns a stalled reader into
   EAGAIN here, so one wedged client cannot hold a worker forever. *)
let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | 0 -> raise Client_gone
      | n -> go (off + n)
      | exception
          Unix.Unix_error
            ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN
              | Unix.EWOULDBLOCK | Unix.ETIMEDOUT ),
              _, _ ) ->
        raise Client_gone
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_line fd s =
  write_all fd s;
  write_all fd "\n"

(* Per-connection buffered reader.  The deadline for one request line is
   absolute ([idle_timeout_ms] from the moment we start waiting for it),
   enforced with [select] slices — SO_RCVTIMEO would restart on every
   byte, which is exactly the slow-loris drip it must defeat.  Short
   slices also let an idle keep-alive connection notice a drain quickly
   instead of holding the drain deadline hostage. *)
type conn_reader = {
  cfd : Unix.file_descr;
  cbuf : Bytes.t;
  mutable pending : string;
}

let take_line r =
  match String.index_opt r.pending '\n' with
  | None -> None
  | Some i ->
    let line = String.sub r.pending 0 i in
    r.pending <-
      String.sub r.pending (i + 1) (String.length r.pending - i - 1);
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    Some line

let read_event t r =
  let deadline =
    if t.idle_timeout_ms > 0. then
      Some (Unix.gettimeofday () +. (t.idle_timeout_ms /. 1000.))
    else None
  in
  (* once a drain begins, a partially received request gets one more
     second to complete; an idle connection closes immediately *)
  let drain_cutoff = ref None in
  let rec go () =
    match take_line r with
    (* the cap applies to complete frames too: a whole oversized line
       arriving in one read must not outrun the pending-buffer check *)
    | Some line when String.length line > t.max_request_bytes -> `Too_big
    | Some line -> `Line line
    | None ->
      if String.length r.pending > t.max_request_bytes then `Too_big
      else begin
        let winding_down = Atomic.get t.draining || Atomic.get t.stop in
        if winding_down && r.pending = "" then `Drained
        else begin
          if winding_down && !drain_cutoff = None then
            drain_cutoff := Some (Unix.gettimeofday () +. 1.0);
          let now = Unix.gettimeofday () in
          let eff_deadline =
            match deadline, !drain_cutoff with
            | Some d, Some c -> Some (min d c)
            | Some d, None -> Some d
            | None, cutoff -> cutoff
          in
          match eff_deadline with
          | Some d when now >= d -> `Timeout (r.pending <> "")
          | _ -> (
              let wait =
                match eff_deadline with
                | None -> 0.1
                | Some d -> Float.min 0.1 (d -. now)
              in
              match Unix.select [ r.cfd ] [] [] wait with
              | [], _, _ -> go ()
              | _ -> (
                  match Unix.read r.cfd r.cbuf 0 (Bytes.length r.cbuf) with
                  | 0 -> `Eof
                  | n ->
                    r.pending <- r.pending ^ Bytes.sub_string r.cbuf 0 n;
                    go ()
                  | exception
                      Unix.Unix_error
                        ((Unix.ECONNRESET | Unix.EPIPE | Unix.ETIMEDOUT), _, _)
                    -> `Reset
                  | exception
                      Unix.Unix_error
                        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                    -> go ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        end
      end
  in
  go ()

(* One connection, inside one [Workq] worker thread.  Every exit path —
   clean EOF, deadline, oversize, reset, drain, even a bug escaping
   [handle_line] — closes the fd exactly once via the [Fun.protect]. *)
let serve_connection t fd =
  set_sndtimeo fd
    (if t.idle_timeout_ms > 0. then t.idle_timeout_ms /. 1000. else 30.);
  let r = { cfd = fd; cbuf = Bytes.create 65536; pending = "" } in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       let send resp =
         match send_line fd resp with
         | () -> true
         | exception Client_gone ->
           Atomic.incr t.client_aborts;
           false
       in
       let rec loop () =
         if not (Atomic.get t.stop) then
           match read_event t r with
           | `Line line ->
             if String.trim line = "" then loop ()
             else if send (handle_line t line) then loop ()
           | `Eof | `Drained -> ()
           | `Reset -> Atomic.incr t.client_aborts
           | `Too_big ->
             (* the frame boundary is lost: answer and close, never resync *)
             Atomic.incr t.errors;
             ignore
               (send
                  (error_response ~id:Json.Null
                     (Diag.oversized ~limit:t.max_request_bytes)
                     2))
           | `Timeout partial ->
             if partial then begin
               (* a stalled request counts; an idle keep-alive connection
                  aging out is hygiene, not an error *)
               Atomic.incr t.read_timeouts;
               Atomic.incr t.errors;
               ignore
                 (send
                    (error_response ~id:Json.Null
                       (Diag.read_timeout t.idle_timeout_ms)
                       75))
             end
       in
       loop ())

(* --- the accept loop and graceful drain ------------------------------------ *)

let serve_loop t sock =
  (* belt and braces: the CLI ignores SIGPIPE process-wide before exec,
     but library users (tests, benches) reach this loop directly and a
     dead client must never kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let wake_rd, wake_wr = Unix.pipe () in
  Atomic.set t.wake (Some wake_wr);
  let wq =
    Ucfg_exec.Workq.create ~workers:t.max_connections
      ~capacity:t.queue_capacity
      (fun fd -> serve_connection t fd)
  in
  (* overload shedding: a structured, retriable refusal beats an unbounded
     queue.  Best-effort with a short send timeout — a shed client that
     also stalls just loses the courtesy note. *)
  let shed_fd ~during_drain fd =
    Atomic.incr t.shed;
    Atomic.incr t.errors;
    set_sndtimeo fd 1.0;
    (try
       send_line fd
         (error_response ~id:Json.Null (Diag.busy ~draining:during_drain ()) 75)
     with Client_gone -> Atomic.incr t.client_aborts);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let junk = Bytes.create 64 in
  let rec accept_loop () =
    if not (Atomic.get t.stop || Atomic.get t.draining) then begin
      (match Unix.select [ sock; wake_rd ] [] [] (-1.) with
       | rs, _, _ ->
         if List.mem wake_rd rs then
           (try ignore (Unix.read wake_rd junk 0 (Bytes.length junk))
            with Unix.Unix_error _ -> ());
         if List.mem sock rs then begin
           match Unix.accept sock with
           | fd, _ -> (
               (* nothing between accept and handoff may leak the fd *)
               match Ucfg_exec.Workq.push wq fd with
               | true -> ()
               | false -> shed_fd ~during_drain:false fd
               | exception e ->
                 (try Unix.close fd with Unix.Unix_error _ -> ());
                 raise e)
           | exception
               Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
        (* no new work: listener down first, then the queue; connections
           already accepted but never started get the draining variant of
           the busy refusal *)
        Atomic.set t.draining true;
        Atomic.set t.wake None;
        (try Unix.close sock with Unix.Unix_error _ -> ()))
    (fun () -> accept_loop ());
  List.iter (shed_fd ~during_drain:true) (Ucfg_exec.Workq.stop wq);
  let deadline =
    Unix.gettimeofday () +. (Float.max 0. t.drain_timeout_ms /. 1000.)
  in
  let outcome =
    if Ucfg_exec.Workq.await_idle wq ~deadline then Drained
    else begin
      (* past the drain deadline: cancel every in-flight request's guard.
         Cooperative cancellation surfaces as an R003 error response on
         each connection, so clients see a structured refusal, not a cut
         wire; a short grace period lets those responses flush. *)
      let cancelled = cancel_active t in
      let grace = Unix.gettimeofday () +. 2.0 in
      if Ucfg_exec.Workq.await_idle wq ~deadline:grace then Drained
      else Forced (max cancelled (Ucfg_exec.Workq.busy wq))
    end
  in
  (match outcome with
   | Drained -> Ucfg_exec.Workq.join wq
   | Forced _ ->
     (* a worker is stuck past cancellation — joining would hang; the
        process is about to exit and [_exit] skips these threads *)
     ());
  Cache.close t.cache;
  (try Unix.close wake_rd with Unix.Unix_error _ -> ());
  (try Unix.close wake_wr with Unix.Unix_error _ -> ());
  outcome

let run_unix ?(backlog = 64) t ~path =
  (* only ever displace a *stale* socket: a regular file is someone
     else's data, and a socket something still answers on is a live
     daemon — unlinking either would be silent sabotage *)
  (match Unix.lstat path with
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
   | { Unix.st_kind = Unix.S_SOCK; _ } ->
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       match Unix.connect probe (Unix.ADDR_UNIX path) with
       | () -> true
       | exception Unix.Unix_error _ -> false
     in
     (try Unix.close probe with Unix.Unix_error _ -> ());
     if live then
       failwith
         (Printf.sprintf
            "socket %s already has a live server; shut it down or pass a \
             different path" path);
     (try Sys.remove path with Sys_error _ -> ())
   | _ ->
     failwith
       (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
          path));
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind sock (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock backlog;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> serve_loop t sock)

let run_tcp ?(backlog = 64) t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (match Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
   | () -> ()
   | exception e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen sock backlog;
  serve_loop t sock
