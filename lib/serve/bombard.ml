(* The load generator.  Requests are literal JSON lines (no ids) so that
   equal requests are equal strings — the consistency check keys on the
   line itself. *)

module Rng = Ucfg_util.Rng

type phase = {
  count : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  hits : int;
}

type report = {
  profile : string;
  seed : int;
  jobs : int;
  distinct : int;
  requests : int;
  cold : phase;
  warm : phase;
  warm_hit_ratio : float;
  elapsed_s : float;
  throughput_rps : float;
  errors : int;
  mismatches : int;
}

(* a small grammar shipped inline to exercise the Grammar_io parse path
   (the constructions only exercise kind:n resolution) *)
let inline_grammar =
  "start: <S>\\n<S> -> <A> <B> | <B> <A>\\n<A> -> a\\n<B> -> b"

let smoke_pool =
  [
    {|{"op": "lint", "kind": "log", "n": 4}|};
    {|{"op": "lint", "kind": "example4", "n": 3, "semantic": true}|};
    Printf.sprintf {|{"op": "lint", "grammar": "%s"}|} inline_grammar;
    {|{"op": "ambiguity", "kind": "log", "n": 4}|};
    {|{"op": "ambiguity", "kind": "example4", "n": 4}|};
    {|{"op": "check", "property": "universal", "kind": "trivial", "n": 3}|};
    {|{"op": "check", "property": "equiv", "kind": "log", "n": 4, "kind2": "trivial", "n2": 4}|};
    {|{"op": "rectangles", "kind": "example4", "n": 3}|};
    {|{"op": "rank", "kind": "log", "n": 4}|};
  ]

(* the heavier mix: same operations where the artifacts are expensive
   enough that cold admission control matters *)
let mixed_pool =
  smoke_pool
  @ [
      {|{"op": "lint", "kind": "log", "n": 6, "semantic": true}|};
      {|{"op": "ambiguity", "kind": "log", "n": 6}|};
      {|{"op": "check", "property": "equiv", "kind": "log", "n": 6, "kind2": "trivial", "n2": 6}|};
      {|{"op": "rectangles", "kind": "example4", "n": 4}|};
      {|{"op": "rank", "kind": "log", "n": 6}|};
    ]

let profiles = [ "smoke"; "mixed" ]

let pool_of = function
  | "smoke" -> smoke_pool
  | "mixed" -> mixed_pool
  | p -> invalid_arg (Printf.sprintf "Bombard: unknown profile %S" p)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (q * n / 100))

let phase_of latencies hits =
  let arr = Array.of_list (List.rev latencies) in
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  {
    count = Array.length arr;
    p50_ms = percentile sorted 50;
    p99_ms = percentile sorted 99;
    max_ms = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
    hits;
  }

(* pull the fields the gate cares about out of a response line; the
   [result] payload is re-rendered through the canonical printer, which
   reproduces the daemon's bytes (same printer on both sides) *)
let parse_response line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok v ->
    let ok = Json.member "ok" v |> Option.map Json.get_bool |> Option.join in
    let cached =
      Json.member "cached" v |> Option.map Json.get_bool |> Option.join
    in
    let key =
      Json.member "key" v |> Option.map Json.get_string |> Option.join
    in
    let result = Json.member "result" v |> Option.map Json.to_string in
    Ok (Option.value ~default:false ok, Option.value ~default:false cached,
        key, result)

let run ?dump ~profile ~seed ~requests send =
  let pool = Array.of_list (pool_of profile) in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let keys : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let errors = ref 0 and mismatches = ref 0 in
  let shoot line =
    let t0 = Unix.gettimeofday () in
    let resp = send line in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let cached =
      match parse_response resp with
      | Error _ -> incr errors; false
      | Ok (ok, cached, key, result) ->
        if not ok then incr errors;
        (match key with
         | Some k -> Hashtbl.replace keys line k
         | None -> ());
        (match result with
         | Some r -> (
             match Hashtbl.find_opt seen line with
             | None -> Hashtbl.add seen line r
             | Some first -> if not (String.equal first r) then incr mismatches)
         | None -> ());
        cached
    in
    (ms, cached)
  in
  let started = Unix.gettimeofday () in
  let cold_lat = ref [] and cold_hits = ref 0 in
  Array.iter
    (fun line ->
       let ms, cached = shoot line in
       cold_lat := ms :: !cold_lat;
       if cached then incr cold_hits)
    pool;
  let rng = Rng.create seed in
  let warm_lat = ref [] and warm_hits = ref 0 in
  for _ = 1 to requests do
    let line = Rng.pick rng pool in
    let ms, cached = shoot line in
    warm_lat := ms :: !warm_lat;
    if cached then incr warm_hits
  done;
  let elapsed_s = Unix.gettimeofday () -. started in
  (match dump with
   | None -> ()
   | Some oc ->
     Array.iter
       (fun line ->
          let key = Option.value ~default:"-" (Hashtbl.find_opt keys line) in
          let result = Option.value ~default:"-" (Hashtbl.find_opt seen line) in
          Printf.fprintf oc "%s %s\n" key result)
       pool;
     flush oc);
  let total = Array.length pool + requests in
  {
    profile;
    seed;
    jobs = Ucfg_exec.Exec.jobs ();
    distinct = Array.length pool;
    requests;
    cold = phase_of !cold_lat !cold_hits;
    warm = phase_of !warm_lat !warm_hits;
    warm_hit_ratio =
      (if requests = 0 then 0. else float_of_int !warm_hits /. float_of_int requests);
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0. then float_of_int total /. elapsed_s else 0.);
    errors = !errors;
    mismatches = !mismatches;
  }

let ok r = r.errors = 0 && r.mismatches = 0

let to_text r =
  String.concat "\n"
    [
      Printf.sprintf "bombard: profile=%s seed=%d jobs=%d" r.profile r.seed r.jobs;
      Printf.sprintf "  requests: %d cold (distinct) + %d warm" r.distinct r.requests;
      Printf.sprintf "  cold:  p50 %.2f ms, p99 %.2f ms, max %.2f ms" r.cold.p50_ms
        r.cold.p99_ms r.cold.max_ms;
      Printf.sprintf "  warm:  p50 %.2f ms, p99 %.2f ms, max %.2f ms" r.warm.p50_ms
        r.warm.p99_ms r.warm.max_ms;
      Printf.sprintf "  warm cache hit ratio: %.3f" r.warm_hit_ratio;
      Printf.sprintf "  throughput: %.1f req/s over %.2f s" r.throughput_rps
        r.elapsed_s;
      Printf.sprintf "  errors: %d, result mismatches: %d (%s)" r.errors
        r.mismatches
        (if ok r then "consistency: ok" else "CONSISTENCY: FAILED");
    ]

let phase_json p =
  Json.Obj
    [ ("count", Json.Int p.count);
      ("p50_ms", Json.Float p.p50_ms);
      ("p99_ms", Json.Float p.p99_ms);
      ("max_ms", Json.Float p.max_ms);
      ("hits", Json.Int p.hits) ]

let to_json r =
  Json.to_string
    (Json.Obj
       [ ("profile", Json.Str r.profile);
         ("seed", Json.Int r.seed);
         ("jobs", Json.Int r.jobs);
         ("distinct", Json.Int r.distinct);
         ("requests", Json.Int r.requests);
         ("cold", phase_json r.cold);
         ("warm", phase_json r.warm);
         ("warm_hit_ratio", Json.Float r.warm_hit_ratio);
         ("elapsed_s", Json.Float r.elapsed_s);
         ("throughput_rps", Json.Float r.throughput_rps);
         ("errors", Json.Int r.errors);
         ("mismatches", Json.Int r.mismatches);
         ("consistency", Json.Str (if ok r then "ok" else "failed")) ])
