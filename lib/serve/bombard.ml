(* The load generator.  Requests are literal JSON lines (no ids) so that
   equal requests are equal strings — the consistency check keys on the
   line itself. *)

module Rng = Ucfg_util.Rng

type phase = {
  count : int;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  hits : int;
}

type report = {
  profile : string;
  seed : int;
  jobs : int;
  distinct : int;
  requests : int;
  cold : phase;
  warm : phase;
  warm_hit_ratio : float;
  elapsed_s : float;
  throughput_rps : float;
  errors : int;
  mismatches : int;
}

(* a small grammar shipped inline to exercise the Grammar_io parse path
   (the constructions only exercise kind:n resolution) *)
let inline_grammar =
  "start: <S>\\n<S> -> <A> <B> | <B> <A>\\n<A> -> a\\n<B> -> b"

let smoke_pool =
  [
    {|{"op": "lint", "kind": "log", "n": 4}|};
    {|{"op": "lint", "kind": "example4", "n": 3, "semantic": true}|};
    Printf.sprintf {|{"op": "lint", "grammar": "%s"}|} inline_grammar;
    {|{"op": "ambiguity", "kind": "log", "n": 4}|};
    {|{"op": "ambiguity", "kind": "example4", "n": 4}|};
    {|{"op": "check", "property": "universal", "kind": "trivial", "n": 3}|};
    {|{"op": "check", "property": "equiv", "kind": "log", "n": 4, "kind2": "trivial", "n2": 4}|};
    {|{"op": "rectangles", "kind": "example4", "n": 3}|};
    {|{"op": "rank", "kind": "log", "n": 4}|};
  ]

(* the heavier mix: same operations where the artifacts are expensive
   enough that cold admission control matters *)
let mixed_pool =
  smoke_pool
  @ [
      {|{"op": "lint", "kind": "log", "n": 6, "semantic": true}|};
      {|{"op": "ambiguity", "kind": "log", "n": 6}|};
      {|{"op": "check", "property": "equiv", "kind": "log", "n": 6, "kind2": "trivial", "n2": 6}|};
      {|{"op": "rectangles", "kind": "example4", "n": 4}|};
      {|{"op": "rank", "kind": "log", "n": 6}|};
    ]

let profiles = [ "smoke"; "mixed" ]

let pool_of = function
  | "smoke" -> smoke_pool
  | "mixed" -> mixed_pool
  | p -> invalid_arg (Printf.sprintf "Bombard: unknown profile %S" p)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (q * n / 100))

let phase_of latencies hits =
  let arr = Array.of_list (List.rev latencies) in
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  {
    count = Array.length arr;
    p50_ms = percentile sorted 50;
    p99_ms = percentile sorted 99;
    max_ms = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
    hits;
  }

(* pull the fields the gate cares about out of a response line; the
   [result] payload is re-rendered through the canonical printer, which
   reproduces the daemon's bytes (same printer on both sides) *)
let parse_response line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok v ->
    let ok = Json.member "ok" v |> Option.map Json.get_bool |> Option.join in
    let cached =
      Json.member "cached" v |> Option.map Json.get_bool |> Option.join
    in
    let key =
      Json.member "key" v |> Option.map Json.get_string |> Option.join
    in
    let result = Json.member "result" v |> Option.map Json.to_string in
    Ok (Option.value ~default:false ok, Option.value ~default:false cached,
        key, result)

let run ?dump ~profile ~seed ~requests send =
  let pool = Array.of_list (pool_of profile) in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let keys : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let errors = ref 0 and mismatches = ref 0 in
  let shoot line =
    let t0 = Unix.gettimeofday () in
    let resp = send line in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    let cached =
      match parse_response resp with
      | Error _ -> incr errors; false
      | Ok (ok, cached, key, result) ->
        if not ok then incr errors;
        (match key with
         | Some k -> Hashtbl.replace keys line k
         | None -> ());
        (match result with
         | Some r -> (
             match Hashtbl.find_opt seen line with
             | None -> Hashtbl.add seen line r
             | Some first -> if not (String.equal first r) then incr mismatches)
         | None -> ());
        cached
    in
    (ms, cached)
  in
  let started = Unix.gettimeofday () in
  let cold_lat = ref [] and cold_hits = ref 0 in
  Array.iter
    (fun line ->
       let ms, cached = shoot line in
       cold_lat := ms :: !cold_lat;
       if cached then incr cold_hits)
    pool;
  let rng = Rng.create seed in
  let warm_lat = ref [] and warm_hits = ref 0 in
  for _ = 1 to requests do
    let line = Rng.pick rng pool in
    let ms, cached = shoot line in
    warm_lat := ms :: !warm_lat;
    if cached then incr warm_hits
  done;
  let elapsed_s = Unix.gettimeofday () -. started in
  (match dump with
   | None -> ()
   | Some oc ->
     Array.iter
       (fun line ->
          let key = Option.value ~default:"-" (Hashtbl.find_opt keys line) in
          let result = Option.value ~default:"-" (Hashtbl.find_opt seen line) in
          Printf.fprintf oc "%s %s\n" key result)
       pool;
     flush oc);
  let total = Array.length pool + requests in
  {
    profile;
    seed;
    jobs = Ucfg_exec.Exec.jobs ();
    distinct = Array.length pool;
    requests;
    cold = phase_of !cold_lat !cold_hits;
    warm = phase_of !warm_lat !warm_hits;
    warm_hit_ratio =
      (if requests = 0 then 0. else float_of_int !warm_hits /. float_of_int requests);
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0. then float_of_int total /. elapsed_s else 0.);
    errors = !errors;
    mismatches = !mismatches;
  }

let ok r = r.errors = 0 && r.mismatches = 0

(* --- socket-level clients -------------------------------------------------- *)

type target = Unix_path of string | Tcp_port of int

let connect target =
  let domain, addr =
    match target with
    | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp_port port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* a peer that vanished mid-conversation; every chaos scenario treats it
   as an outcome, not a failure *)
exception Peer_gone

let send_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | 0 -> raise Peer_gone
      | n -> go (off + n)
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Peer_gone
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* [None] on EOF, reset, or deadline — the caller knows whether a missing
   response is acceptable.  The timeout is generous: it exists to keep a
   wedged daemon from wedging CI, not to measure anything. *)
let recv_line ?(timeout = 60.) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    let now = Unix.gettimeofday () in
    if now >= deadline then None
    else
      match Unix.select [ fd ] [] [] (Float.min 1.0 (deadline -. now)) with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.read fd b 0 (Bytes.length b) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes buf b 0 n;
            let s = Buffer.contents buf in
            (match String.index_opt s '\n' with
             | Some i -> Some (String.sub s 0 i)
             | None -> go ())
          | exception
              Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let ignore_sigpipe () =
  (* a daemon that died mid-conversation must fail the gate, not kill the
     client that was measuring it *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let one_shot ?timeout target line =
  ignore_sigpipe ();
  let fd = connect target in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       match send_all fd (line ^ "\n") with
       | () -> recv_line ?timeout fd
       | exception Peer_gone -> None)

let error_code resp =
  match Json.parse resp with
  | Error _ -> None
  | Ok v -> (
      match Json.member "error" v with
      | None -> None
      | Some err ->
        Json.member "code" err |> Option.map Json.get_string |> Option.join)

let is_busy resp = error_code resp = Some "R013"

(* the reference retry policy the R013 contract asks of clients: jittered
   exponential backoff, both the base delay and the jitter seeded *)
let with_retry ?(attempts = 8) rng shot =
  let retries = ref 0 and busy = ref 0 in
  let rec go k =
    let backoff () =
      if k + 1 >= attempts then None
      else begin
        incr retries;
        Thread.delay
          (Float.min 1.0 ((0.05 *. (2. ** float_of_int k)) +. (Rng.float rng *. 0.05)));
        go (k + 1)
      end
    in
    match shot () with
    | Some resp when is_busy resp ->
      incr busy;
      backoff ()
    | Some resp -> Some resp
    | None -> backoff ()
    | exception Unix.Unix_error _ -> backoff ()
  in
  let resp = go 0 in
  (resp, !retries, !busy)

(* --- chaos mode ------------------------------------------------------------ *)

type chaos_params = {
  rounds : int;
  burst : int;
  stall_ms : float;
  oversize_bytes : int;
}

let default_chaos =
  { rounds = 40; burst = 6; stall_ms = 800.; oversize_bytes = 8192 }

type chaos_report = {
  c_seed : int;
  c_jobs : int;
  c_rounds : int;
  ok_responses : int;
  busy_shed : int;
  c_retries : int;
  aborts_sent : int;
  partial_writes : int;
  malformed_sent : int;
  oversized_sent : int;
  slow_requests : int;
  stalls_sent : int;
  read_timeouts_seen : int;
  c_bursts : int;
  c_errors : int;
  c_mismatches : int;
  c_elapsed_s : float;
}

(* every adversarial client shape the daemon must survive *)
type scenario =
  | Normal
  | Partial_disconnect
  | Abort_before_read
  | Malformed
  | Oversized
  | Slow_ok
  | Stall
  | Burst

let all_scenarios =
  [| Normal; Partial_disconnect; Abort_before_read; Malformed; Oversized;
     Slow_ok; Stall; Burst |]

let chaos ?dump ?(params = default_chaos) ~target ~seed () =
  ignore_sigpipe ();
  let rng = Rng.create seed in
  let pool = Array.of_list smoke_pool in
  let started = Unix.gettimeofday () in
  (* shared across burst threads, hence the lock *)
  let lock = Mutex.create () in
  let ok_responses = ref 0 and busy_shed = ref 0 and retries = ref 0 in
  let aborts_sent = ref 0 and partial_writes = ref 0 in
  let malformed_sent = ref 0 and oversized_sent = ref 0 in
  let slow_requests = ref 0 and stalls_sent = ref 0 in
  let read_timeouts_seen = ref 0 and bursts = ref 0 in
  let errors = ref 0 and mismatches = ref 0 in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let keys : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let sync f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let record line resp =
    match parse_response resp with
    | Error _ -> sync (fun () -> incr errors)
    | Ok (ok, _cached, key, result) ->
      sync (fun () ->
          if ok then incr ok_responses else incr errors;
          (match key with
           | Some k -> Hashtbl.replace keys line k
           | None -> ());
          match result with
          | Some r -> (
              match Hashtbl.find_opt seen line with
              | None -> Hashtbl.add seen line r
              | Some first ->
                if not (String.equal first r) then incr mismatches)
          | None -> ())
  in
  let shoot_with_retry rng' line =
    let resp, r, b = with_retry rng' (fun () -> one_shot target line) in
    sync (fun () ->
        retries := !retries + r;
        busy_shed := !busy_shed + b);
    match resp with
    | Some resp -> record line resp
    | None -> sync (fun () -> incr errors)
  in
  let run_scenario = function
    | Normal -> shoot_with_retry rng (Rng.pick rng pool)
    | Partial_disconnect -> (
        (* half a request, then vanish: the daemon's read deadline (or our
           close) must reclaim the worker without collateral damage *)
        let line = Rng.pick rng pool in
        let half = String.sub line 0 (String.length line / 2) in
        incr partial_writes;
        match connect target with
        | fd ->
          (try send_all fd half with Peer_gone -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> incr errors)
    | Abort_before_read -> (
        (* full request, but hang up before the response: exercises the
           daemon's EPIPE containment on the write side *)
        let line = Rng.pick rng pool in
        incr aborts_sent;
        match connect target with
        | fd ->
          (try send_all fd (line ^ "\n") with Peer_gone -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> incr errors)
    | Malformed -> (
        (* a busy daemon may shed the connection before ever parsing the
           frame — R013 is retriable by contract, so retry through it and
           judge only the answer the frame itself earns *)
        incr malformed_sent;
        let resp, r, b =
          with_retry rng (fun () -> one_shot target {|{"op": |})
        in
        sync (fun () ->
            retries := !retries + r;
            busy_shed := !busy_shed + b);
        match resp with
        | Some resp ->
          if error_code resp <> Some "R010" then incr errors
        | None -> incr errors)
    | Oversized -> (
        (* a newline-free flood; SHUTDOWN_SEND afterwards so a daemon with
           a larger cap sees EOF instead of waiting out its deadline.
           Acceptable outcomes: R015, or a quiet close. *)
        incr oversized_sent;
        match connect target with
        | fd ->
          Fun.protect
            ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
               (try
                  send_all fd (String.make params.oversize_bytes 'a');
                  Unix.shutdown fd Unix.SHUTDOWN_SEND
                with Peer_gone | Unix.Unix_error _ -> ());
               match recv_line fd with
               | Some resp ->
                 if is_busy resp then incr busy_shed
                 else if error_code resp <> Some "R015" then incr errors
               | None -> ())
        | exception Unix.Unix_error _ -> incr errors)
    | Slow_ok -> (
        (* a legitimate but slow client: three chunks inside the deadline
           must still be served, and served correctly *)
        let line = Rng.pick rng pool ^ "\n" in
        incr slow_requests;
        match connect target with
        | fd ->
          Fun.protect
            ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
               let len = String.length line in
               let third = max 1 (len / 3) in
               try
                 send_all fd (String.sub line 0 third);
                 Thread.delay 0.03;
                 send_all fd (String.sub line third third);
                 Thread.delay 0.03;
                 send_all fd
                   (String.sub line (2 * third) (len - (2 * third)));
                 match recv_line fd with
                 | Some resp ->
                   if is_busy resp then incr busy_shed
                   else record (String.sub line 0 (len - 1)) resp
                 | None -> incr errors
               with Peer_gone -> incr errors)
        | exception Unix.Unix_error _ -> incr errors)
    | Stall -> (
        (* a slow-loris: half a request, then silence past the daemon's
           read deadline.  Acceptable outcomes: R014, or a quiet close
           (a daemon with a longer deadline sees our EOF instead). *)
        let line = Rng.pick rng pool in
        let half = String.sub line 0 (String.length line / 2) in
        incr stalls_sent;
        match connect target with
        | fd ->
          Fun.protect
            ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
               (try send_all fd half with Peer_gone -> ());
               Thread.delay (params.stall_ms /. 1000.);
               (try Unix.shutdown fd Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ());
               match recv_line fd with
               | Some resp ->
                 if error_code resp = Some "R014" then
                   incr read_timeouts_seen
                 else if not (is_busy resp) then incr errors
               | None -> ())
        | exception Unix.Unix_error _ -> incr errors)
    | Burst ->
      (* concurrent pressure: [burst] clients at once, each retrying
         through any shed.  Lines and per-thread rngs are drawn before
         spawning so the schedule stays seeded. *)
      incr bursts;
      let work =
        Array.init params.burst (fun _ -> (Rng.pick rng pool, Rng.split rng))
      in
      let threads =
        Array.map
          (fun (line, rng') ->
             Thread.create (fun () -> shoot_with_retry rng' line) ())
          work
      in
      Array.iter Thread.join threads
  in
  for round = 0 to params.rounds - 1 do
    (* one guaranteed visit of each scenario, then seeded draws *)
    let s =
      if round < Array.length all_scenarios then all_scenarios.(round)
      else Rng.pick rng all_scenarios
    in
    run_scenario s
  done;
  (* the daemon must still be fully alive: a served ping and stats are the
     liveness assertion the whole mode exists for (retrying through any
     leftover congestion from the last rounds) *)
  let live line =
    let resp, r, b = with_retry rng (fun () -> one_shot target line) in
    sync (fun () ->
        retries := !retries + r;
        busy_shed := !busy_shed + b);
    match resp with
    | Some resp when error_code resp = None -> ()
    | _ -> incr errors
  in
  live {|{"op": "ping"}|};
  live {|{"op": "stats"}|};
  (* final sequential pool pass: the post-chaos cache must answer every
     pool request, byte-identical to what chaos rounds observed — and the
     dump makes it diffable against a chaos-free run *)
  Array.iter (fun line -> shoot_with_retry rng line) pool;
  (match dump with
   | None -> ()
   | Some oc ->
     Array.iter
       (fun line ->
          let key = Option.value ~default:"-" (Hashtbl.find_opt keys line) in
          let result =
            Option.value ~default:"-" (Hashtbl.find_opt seen line)
          in
          Printf.fprintf oc "%s %s\n" key result)
       pool;
     flush oc);
  {
    c_seed = seed;
    c_jobs = Ucfg_exec.Exec.jobs ();
    c_rounds = params.rounds;
    ok_responses = !ok_responses;
    busy_shed = !busy_shed;
    c_retries = !retries;
    aborts_sent = !aborts_sent;
    partial_writes = !partial_writes;
    malformed_sent = !malformed_sent;
    oversized_sent = !oversized_sent;
    slow_requests = !slow_requests;
    stalls_sent = !stalls_sent;
    read_timeouts_seen = !read_timeouts_seen;
    c_bursts = !bursts;
    c_errors = !errors;
    c_mismatches = !mismatches;
    c_elapsed_s = Unix.gettimeofday () -. started;
  }

let chaos_ok r = r.c_errors = 0 && r.c_mismatches = 0

let chaos_to_text r =
  String.concat "\n"
    [
      Printf.sprintf "bombard --chaos: seed=%d jobs=%d rounds=%d" r.c_seed
        r.c_jobs r.c_rounds;
      Printf.sprintf
        "  sent: %d partial, %d aborts, %d malformed, %d oversized, %d \
         slow, %d stalls, %d bursts"
        r.partial_writes r.aborts_sent r.malformed_sent r.oversized_sent
        r.slow_requests r.stalls_sent r.c_bursts;
      Printf.sprintf
        "  observed: %d ok, %d busy-shed (R013), %d read-timeouts (R014), \
         %d retries"
        r.ok_responses r.busy_shed r.read_timeouts_seen r.c_retries;
      Printf.sprintf "  elapsed: %.2f s" r.c_elapsed_s;
      Printf.sprintf "  errors: %d, result mismatches: %d (%s)" r.c_errors
        r.c_mismatches
        (if chaos_ok r then "survival: ok" else "SURVIVAL: FAILED");
    ]

let chaos_to_json r =
  Json.to_string
    (Json.Obj
       [ ("mode", Json.Str "chaos");
         ("seed", Json.Int r.c_seed);
         ("jobs", Json.Int r.c_jobs);
         ("rounds", Json.Int r.c_rounds);
         ("ok_responses", Json.Int r.ok_responses);
         ("busy_shed", Json.Int r.busy_shed);
         ("retries", Json.Int r.c_retries);
         ("aborts_sent", Json.Int r.aborts_sent);
         ("partial_writes", Json.Int r.partial_writes);
         ("malformed_sent", Json.Int r.malformed_sent);
         ("oversized_sent", Json.Int r.oversized_sent);
         ("slow_requests", Json.Int r.slow_requests);
         ("stalls_sent", Json.Int r.stalls_sent);
         ("read_timeouts_seen", Json.Int r.read_timeouts_seen);
         ("bursts", Json.Int r.c_bursts);
         ("errors", Json.Int r.c_errors);
         ("mismatches", Json.Int r.c_mismatches);
         ("elapsed_s", Json.Float r.c_elapsed_s);
         ("survival", Json.Str (if chaos_ok r then "ok" else "failed")) ])

(* --- concurrent clients ---------------------------------------------------- *)

let concurrent_run ?dump ~profile ~seed ~requests ~clients target =
  ignore_sigpipe ();
  let pool = Array.of_list (pool_of profile) in
  let lock = Mutex.create () in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let keys : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let errors = ref 0 and mismatches = ref 0 in
  let sync f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  (* one persistent connection per client thread; busy sheds retried.
     The daemon closes a connection it sheds (R013) or loses, so the
     persistent fd is poisoned the moment an attempt fails — replace it
     before the next attempt instead of retrying into a closed socket. *)
  let shoot rng' fdr line =
    let t0 = Unix.gettimeofday () in
    let stale = ref false in
    let resp, _, _ =
      with_retry rng' (fun () ->
          if !stale then begin
            (try Unix.close !fdr with Unix.Unix_error _ -> ());
            fdr := connect target;
            stale := false
          end;
          match send_all !fdr (line ^ "\n") with
          | () -> (
              match recv_line !fdr with
              | Some r when is_busy r ->
                stale := true;
                Some r
              | other ->
                if other = None then stale := true;
                other)
          | exception Peer_gone ->
            stale := true;
            None)
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    match resp with
    | None ->
      sync (fun () -> incr errors);
      (ms, false)
    | Some resp -> (
        match parse_response resp with
        | Error _ ->
          sync (fun () -> incr errors);
          (ms, false)
        | Ok (ok, cached, key, result) ->
          sync (fun () ->
              if not ok then incr errors;
              (match key with
               | Some k -> Hashtbl.replace keys line k
               | None -> ());
              match result with
              | Some r -> (
                  match Hashtbl.find_opt seen line with
                  | None -> Hashtbl.add seen line r
                  | Some first ->
                    if not (String.equal first r) then incr mismatches)
              | None -> ());
          (ms, cached))
  in
  let started = Unix.gettimeofday () in
  (* cold: sequential, one connection, pool order — populates the cache *)
  let rng = Rng.create seed in
  let cold_lat = ref [] and cold_hits = ref 0 in
  let fdr = ref (connect target) in
  Fun.protect
    ~finally:(fun () -> try Unix.close !fdr with Unix.Unix_error _ -> ())
    (fun () ->
       Array.iter
         (fun line ->
            let ms, cached = shoot rng fdr line in
            cold_lat := ms :: !cold_lat;
            if cached then incr cold_hits)
         pool);
  (* warm: [clients] threads, each with its own connection and seeded
     stream, draws split evenly (remainder to the first threads) *)
  let clients = max 1 clients in
  let warm_lat = ref [] and warm_hits = ref 0 in
  let worker i rng' =
    let mine = (requests / clients) + (if i < requests mod clients then 1 else 0) in
    let fdr = ref (connect target) in
    Fun.protect
      ~finally:(fun () -> try Unix.close !fdr with Unix.Unix_error _ -> ())
      (fun () ->
         for _ = 1 to mine do
           let line = Rng.pick rng' pool in
           let ms, cached = shoot rng' fdr line in
           sync (fun () ->
               warm_lat := ms :: !warm_lat;
               if cached then incr warm_hits)
         done)
  in
  let threads =
    List.init clients (fun i ->
        let rng' = Rng.split rng in
        Thread.create (fun () -> worker i rng') ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. started in
  (match dump with
   | None -> ()
   | Some oc ->
     Array.iter
       (fun line ->
          let key = Option.value ~default:"-" (Hashtbl.find_opt keys line) in
          let result =
            Option.value ~default:"-" (Hashtbl.find_opt seen line)
          in
          Printf.fprintf oc "%s %s\n" key result)
       pool;
     flush oc);
  let total = Array.length pool + requests in
  {
    profile;
    seed;
    jobs = Ucfg_exec.Exec.jobs ();
    distinct = Array.length pool;
    requests;
    cold = phase_of !cold_lat !cold_hits;
    warm = phase_of !warm_lat !warm_hits;
    warm_hit_ratio =
      (if requests = 0 then 0.
       else float_of_int !warm_hits /. float_of_int requests);
    elapsed_s;
    throughput_rps =
      (if elapsed_s > 0. then float_of_int total /. elapsed_s else 0.);
    errors = !errors;
    mismatches = !mismatches;
  }

let to_text r =
  String.concat "\n"
    [
      Printf.sprintf "bombard: profile=%s seed=%d jobs=%d" r.profile r.seed r.jobs;
      Printf.sprintf "  requests: %d cold (distinct) + %d warm" r.distinct r.requests;
      Printf.sprintf "  cold:  p50 %.2f ms, p99 %.2f ms, max %.2f ms" r.cold.p50_ms
        r.cold.p99_ms r.cold.max_ms;
      Printf.sprintf "  warm:  p50 %.2f ms, p99 %.2f ms, max %.2f ms" r.warm.p50_ms
        r.warm.p99_ms r.warm.max_ms;
      Printf.sprintf "  warm cache hit ratio: %.3f" r.warm_hit_ratio;
      Printf.sprintf "  throughput: %.1f req/s over %.2f s" r.throughput_rps
        r.elapsed_s;
      Printf.sprintf "  errors: %d, result mismatches: %d (%s)" r.errors
        r.mismatches
        (if ok r then "consistency: ok" else "CONSISTENCY: FAILED");
    ]

let phase_json p =
  Json.Obj
    [ ("count", Json.Int p.count);
      ("p50_ms", Json.Float p.p50_ms);
      ("p99_ms", Json.Float p.p99_ms);
      ("max_ms", Json.Float p.max_ms);
      ("hits", Json.Int p.hits) ]

let to_json r =
  Json.to_string
    (Json.Obj
       [ ("profile", Json.Str r.profile);
         ("seed", Json.Int r.seed);
         ("jobs", Json.Int r.jobs);
         ("distinct", Json.Int r.distinct);
         ("requests", Json.Int r.requests);
         ("cold", phase_json r.cold);
         ("warm", phase_json r.warm);
         ("warm_hit_ratio", Json.Float r.warm_hit_ratio);
         ("elapsed_s", Json.Float r.elapsed_s);
         ("throughput_rps", Json.Float r.throughput_rps);
         ("errors", Json.Int r.errors);
         ("mismatches", Json.Int r.mismatches);
         ("consistency", Json.Str (if ok r then "ok" else "failed")) ])
