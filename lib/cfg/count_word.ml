open Grammar
module Bignum = Ucfg_util.Bignum

(* A plan hoists everything that does not depend on the word out of the
   per-word DP: trimming, the finiteness check (a Tarjan pass), and the
   rule arrays with a per-lhs rule index.  [Ambiguity.profile] counts every
   word of a language against one grammar, so paying those once instead of
   per word is the difference between O(words · |G|) setup and O(|G|). *)
type plan = {
  trimmed : Grammar.t;
  rules_arr : rule array;
  rhs_arr : sym array array;
  by_lhs_idx : int array array;  (* rule indices per lhs, rule order *)
  degenerate : bool;             (* trimmed to nothing: every count is 0 *)
}

let plan g =
  let g = Trim.trim g in
  if nonterminal_count g = 0 then
    {
      trimmed = g;
      rules_arr = [||];
      rhs_arr = [||];
      by_lhs_idx = [||];
      degenerate = true;
    }
  else if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Count_word.trees: infinitely many parse trees"
  else begin
    let rules_arr = Array.of_list (rules g) in
    let by_lhs = Array.make (nonterminal_count g) [] in
    Array.iteri (fun ridx r -> by_lhs.(r.lhs) <- ridx :: by_lhs.(r.lhs)) rules_arr;
    {
      trimmed = g;
      rules_arr;
      rhs_arr = Array.map (fun r -> Array.of_list r.rhs) rules_arr;
      by_lhs_idx = Array.map (fun l -> Array.of_list (List.rev l)) by_lhs;
      degenerate = false;
    }
  end

exception Int_overflow

(* The DP is written once against a numeric signature and instantiated
   twice: overflow-checked native ints for the common case (ambiguity
   checking needs counts 0/1/2+), big integers as the escape hatch. *)
module type NUM = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val is_positive : t -> bool
end

module Int_num = struct
  type t = int

  let zero = 0
  let one = 1

  let add a b =
    let s = a + b in
    if s < 0 then raise_notrace Int_overflow else s

  let mul a b =
    if a = 0 || b = 0 then 0
    else if a > max_int / b then raise_notrace Int_overflow
    else a * b

  let is_positive v = v > 0
end

module Big_num = struct
  type t = Bignum.t

  let zero = Bignum.zero
  let one = Bignum.one
  let add = Bignum.add
  let mul = Bignum.mul
  let is_positive v = Bignum.sign v > 0
end

module Dp (Num : NUM) = struct
  let run p w =
    let n = String.length w in
    let nt_memo : (int, Num.t) Hashtbl.t = Hashtbl.create 256 in
    let seq_memo : (int, Num.t) Hashtbl.t = Hashtbl.create 256 in
    (* memo keys packed into a single int: positions fit in [span] values,
       suffix offsets in [krad] — k is bounded by the longest rhs, not by
       the word, so it needs its own radix (packing it with [span] made
       distinct (ridx, k) pairs alias on short words: at w = "" every key
       collapsed to ridx + k + i + j, and a suffix count of one rule could
       answer for another) *)
    let span = n + 1 in
    let krad =
      1 + Array.fold_left (fun m rhs -> max m (Array.length rhs)) 0 p.rhs_arr
    in
    let nt_key a i j = ((a * span) + i) * span + j in
    let seq_key ridx k i j = ((((ridx * krad) + k) * span) + i) * span + j in
    (* #ways nonterminal a derives w[i..j) *)
    let rec nt a i j =
      let key = nt_key a i j in
      match Hashtbl.find_opt nt_memo key with
      | Some v -> v
      | None ->
        (* seed with zero to cut ε-cycles: trimmed acyclic grammars never
           revisit, but the guard is harmless *)
        Hashtbl.replace nt_memo key Num.zero;
        let total = ref Num.zero in
        Array.iter
          (fun ridx -> total := Num.add !total (seq ridx 0 i j))
          p.by_lhs_idx.(a);
        Hashtbl.replace nt_memo key !total;
        !total
    (* #ways the suffix rhs_arr.(ridx)[k..] derives w[i..j) *)
    and seq ridx k i j =
      let rhs = p.rhs_arr.(ridx) in
      let len = Array.length rhs in
      if k = len then if i = j then Num.one else Num.zero
      else begin
        let key = seq_key ridx k i j in
        match Hashtbl.find_opt seq_memo key with
        | Some v -> v
        | None ->
          let total = ref Num.zero in
          begin
            match rhs.(k) with
            | T c ->
              if i < j && Char.equal w.[i] c then
                total := seq ridx (k + 1) (i + 1) j
            | N b ->
              for mid = i to j do
                let left = nt b i mid in
                if Num.is_positive left then
                  total :=
                    Num.add !total (Num.mul left (seq ridx (k + 1) mid j))
              done
          end;
          Hashtbl.replace seq_memo key !total;
          !total
      end
    in
    nt (start p.trimmed) 0 n
end

module Int_dp = Dp (Int_num)
module Big_dp = Dp (Big_num)

let trees_with p w =
  if p.degenerate then Bignum.zero
  else
    match Int_dp.run p w with
    | v -> Bignum.of_int v
    | exception Int_overflow -> Big_dp.run p w

let trees g w = trees_with (plan g) w

let trees_batch g ws =
  let p = plan g in
  List.map (trees_with p) ws

let recognize g w = Bignum.sign (trees g w) > 0
