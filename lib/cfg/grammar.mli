(** Context free grammars (Definition 2 of the paper).

    A grammar is a set of rules [A -> W] with [W] a string of terminals and
    nonterminals, plus a start symbol.  Nonterminals are small integers
    carrying a printable name; terminals are characters of the grammar's
    alphabet.  The size measure is the paper's: the sum of the lengths of
    all right-hand sides — the measure that matches factorised
    representations (not the rule count of Bucher et al.). *)

open Ucfg_word

type sym =
  | T of char  (** terminal *)
  | N of int  (** nonterminal id *)

type rule = { lhs : int; rhs : sym list }

type t

(** [make ~alphabet ~names ~rules ~start] validates and builds a grammar:
    every nonterminal id must index [names], every terminal must belong to
    [alphabet], and duplicate rules are collapsed.
    @raise Invalid_argument on ill-formed input. *)
val make :
  alphabet:Alphabet.t -> names:string array -> rules:rule list -> start:int -> t

(** [id g] is a process-unique identifier, assigned at construction.  Two
    structurally equal grammars built separately have different ids; use it
    as a key when memoising structures derived from a grammar value (the
    CYK rule index does). *)
val id : t -> int

val alphabet : t -> Alphabet.t
val start : t -> int
val nonterminal_count : t -> int
val name : t -> int -> string
val names : t -> string array
val rules : t -> rule list
val rule_count : t -> int

(** [rules_of g a] is the right-hand sides of [a], in insertion order. *)
val rules_of : t -> int -> sym list list

(** The paper's size measure: [sum over rules of |rhs|]. *)
val size : t -> int

(** [has_rule g a rhs] tests for the exact rule [a -> rhs]. *)
val has_rule : t -> int -> sym list -> bool

(** [is_cnf g] holds when every rule is [A -> BC] or [A -> a], except that
    the start symbol may have an [A -> ε] rule provided the start symbol
    occurs on no right-hand side (Chomsky normal form as used in
    Section 2). *)
val is_cnf : t -> bool

(** [map_nonterminals g f ~names ~start] renames nonterminal ids through
    the injective map [f]. *)
val map_nonterminals : t -> (int -> int) -> names:string array -> start:int -> t

(** Direct dependency edges [lhs -> B] for each nonterminal [B] occurring
    on a right-hand side of [lhs].  The list is duplicate-free: however
    many times [B] occurs across the right-hand sides of [lhs], the edge
    [(lhs, B)] appears exactly once, in first-occurrence order. *)
val dependency_edges : t -> (int * int) list

val pp_sym : t -> Format.formatter -> sym -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Imperative construction helper: allocate nonterminals with [fresh],
    add rules, then [finish]. *)
module Builder : sig
  type grammar := t
  type b

  val create : Alphabet.t -> b

  (** [fresh b name] allocates a new nonterminal. *)
  val fresh : b -> string -> int

  (** [fresh_memo b name] returns the existing nonterminal called [name]
      or allocates one. *)
  val fresh_memo : b -> string -> int

  val add_rule : b -> int -> sym list -> unit
  val finish : b -> start:int -> grammar
end
