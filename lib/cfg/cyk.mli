(** CYK recognition, parsing and parse-tree counting for CNF grammars.

    Counting parse trees per word is the workhorse behind the unambiguity
    checks and behind the #P-flavoured experiments: for a CNF grammar the
    number of parse trees of a word is a simple O(|w|³·|G|) dynamic
    program with big-integer entries. *)

module Bignum = Ucfg_util.Bignum

type table

(** [build g w] fills the CYK table for word [w].
    @raise Invalid_argument when [g] is not in CNF. *)
val build : Grammar.t -> string -> table

(** [recognize g w] decides [w ∈ L(g)].  Handles [ε] via a start ε-rule. *)
val recognize : Grammar.t -> string -> bool

(** [count_trees g w] is the number of parse trees of [w] in [g].

    The table is filled through a rule index compiled once per grammar
    (memoised on {!Grammar.id}) and counted on native ints, escaping to
    big integers only when a count overflows — results are identical
    either way. *)
val count_trees : Grammar.t -> string -> Bignum.t

(** [count_trees_batch g ws] is [List.map (count_trees g) ws], but the CNF
    check and the compiled rule index are shared across the whole batch —
    the entry point for callers that count thousands of words against one
    grammar. *)
val count_trees_batch : Grammar.t -> string list -> Bignum.t list

(** [parse g w] is some parse tree of [w], when [w ∈ L(g)]. *)
val parse : Grammar.t -> string -> Parse_tree.t option

(** [all_trees ?limit g w] lists the parse trees of [w] (at most [limit],
    default 1000). *)
val all_trees : ?limit:int -> Grammar.t -> string -> Parse_tree.t list

(** [derivable table a pos len] queries the table: does nonterminal [a]
    derive the subword at [pos] (0-based) of length [len]? *)
val derivable : table -> int -> int -> int -> bool

(** [occurrence_counts g w] — the inside–outside product: for every
    nonterminal occurrence [(a, pos, len)], the number of parse trees of
    [w] containing it.  This is the quantitative form of Observation 11:
    on an unambiguous grammar every count is 0 or 1, and the 1-entries
    are exactly the spans of the unique parse tree. *)
val occurrence_counts :
  Grammar.t -> string -> (int * int * int * Bignum.t) list
