(** Parse-tree counting for general (non-CNF) grammars.

    CNF conversion does not always preserve the number of parse trees
    (UNIT elimination may merge duplicate rules), so ambiguity questions
    about a grammar as written need counting on the original rules.  This
    works for any grammar whose trimmed dependency graph is acyclic —
    which covers every finite-language grammar in this repository. *)

module Bignum = Ucfg_util.Bignum

(** A compiled counting plan: the grammar trimmed, checked for tree
    finiteness, and its rules indexed by left-hand side — everything the
    per-word DP needs that does not depend on the word. *)
type plan

(** [plan g] compiles [g] once for repeated {!trees_with} calls.  The plan
    is immutable and safe to share across domains.
    @raise Invalid_argument when [g] has infinitely many parse trees. *)
val plan : Grammar.t -> plan

(** [trees_with p w] counts the parse trees of [w] under a compiled plan.
    The count runs on native ints and escapes to big integers only on
    overflow; results are identical either way. *)
val trees_with : plan -> string -> Bignum.t

(** [trees g w] is [trees_with (plan g) w]: the number of parse trees of
    [w] in [g], counted on the original rules.
    @raise Invalid_argument when [g] has infinitely many parse trees. *)
val trees : Grammar.t -> string -> Bignum.t

(** [trees_batch g ws] shares one plan across the batch. *)
val trees_batch : Grammar.t -> string list -> Bignum.t list

(** [recognize g w] is [trees g w > 0]. *)
val recognize : Grammar.t -> string -> bool
