(** Sound static pre-checks for unambiguity — no enumeration.

    {!Ambiguity.check} decides unambiguity by exhaustively counting parse
    trees, which is exponential in word length.  This module provides the
    conservative, polynomial-time layer underneath the linter and the
    {!Ambiguity} fast path: cheap syntactic analyses (nullability,
    FIRST/LAST sets, derived-length ranges) feeding two {e sound} verdicts:

    - a {b certificate of unambiguity}: every nonterminal has pairwise
      first-letter-disjoint rules, at most one nullable rule, and every
      rule admits at most one variable-length symbol, so rule choice and
      word factorisation are forced — no counting needed;
    - a {b definite-ambiguity witness}: a capped bottom-up tree-count probe
      that under-approximates the per-word tree count; any word reaching
      count 2 at a useful nonterminal is a real ambiguity witness.

    Both verdicts are conservative: [Unknown] is always a legal answer,
    and a conclusive answer is always correct (the agreement with
    {!Ambiguity.check} is property-tested). *)

module Cset : Set.S with type elt = char

(** [nullable g] marks nonterminals deriving the empty word. *)
val nullable : Grammar.t -> bool array

(** [rhs_nullable null rhs] — every symbol of [rhs] is a nullable
    nonterminal (so the right-hand side derives [ε]). *)
val rhs_nullable : bool array -> Grammar.sym list -> bool

(** [first_sets g] is, per nonterminal, the set of first letters of its
    nonempty derivable words (a Kleene fixpoint; cyclic grammars fine). *)
val first_sets : Grammar.t -> Cset.t array

(** [last_sets g] — symmetrically, the possible last letters. *)
val last_sets : Grammar.t -> Cset.t array

(** [rhs_first ~nullable ~first rhs] is the FIRST set of a right-hand
    side: first letters contributed by each symbol while all symbols
    before it are nullable. *)
val rhs_first :
  nullable:bool array -> first:Cset.t array -> Grammar.sym list -> Cset.t

(** [rhs_last ~nullable ~last rhs] — the mirror of {!rhs_first}. *)
val rhs_last :
  nullable:bool array -> last:Cset.t array -> Grammar.sym list -> Cset.t

(** [length_ranges g] is, per nonterminal, [Some (min, max)] over the
    lengths of its derivable words ([None] when it derives nothing).
    [max] saturates at a large sentinel rather than overflowing.
    @raise Invalid_argument when the dependency graph is cyclic. *)
val length_ranges : Grammar.t -> (int * int) option array

(** [certificate g] — the sound unambiguity certificate, checked on the
    trimmed grammar: trimmed dependency graph acyclic, and for every
    nonterminal (i) at most one nullable rule, (ii) pairwise-disjoint rule
    FIRST sets, (iii) at most one variable-length symbol per rule.
    [true] implies [g] is unambiguous; [false] implies nothing. *)
val certificate : Grammar.t -> bool

(** [probe ?max_words ?max_len g] under-approximates per-word parse-tree
    counts bottom-up, keeping at most [max_words] words (lexicographically
    least, default 64) of length at most [max_len] (default 64) per
    nonterminal, with saturating counts.  Truncation only drops words, so
    every reported count is a lower bound: a count of 2 at a useful
    nonterminal of the trimmed grammar is a real ambiguity.  Returns the
    first [(nonterminal name, word)] witness found, scanning nonterminals
    bottom-up.  Expects an acyclic trimmed grammar.
    @raise Invalid_argument when the dependency graph is cyclic. *)
val probe :
  ?max_words:int -> ?max_len:int -> Grammar.t -> (string * string) option

type verdict =
  | Unambiguous  (** certified by {!certificate} *)
  | Ambiguous of { nonterminal : string; word : string }
      (** [word] has at least two parse trees, exhibited below
          [nonterminal] (a name of the trimmed grammar) by {!probe} *)
  | Unknown  (** neither check is conclusive — fall back to counting *)

(** [verdict ?probe_words ?probe_len g] trims [g] and runs the certificate
    then the probe.  Returns [Unknown] when the trimmed grammar is cyclic
    (infinitely many parse trees — {!Ambiguity.check} rejects those
    upstream) or when both checks are inconclusive.  Sound: [Unambiguous]
    and [Ambiguous _] are never wrong. *)
val verdict :
  ?probe_words:int -> ?probe_len:int -> Grammar.t -> verdict
