(** Semantic analyses of grammars with (intended) finite languages.

    The paper is exclusively about finite languages, where everything about
    a grammar is decidable by exhaustive computation: the exact language
    (a Kleene fixpoint), finiteness (growing cycles), the total number of
    parse trees (a DP over the acyclic dependency graph), and the
    fixed-length property of Observation 9. *)

open Ucfg_lang
module Bignum = Ucfg_util.Bignum

type overflow = [ `Length_exceeded of int | `Card_exceeded of int ]

(** [language ?packed ?max_len ?max_card g] is the exact language of [g],
    computed by a Kleene fixpoint over per-nonterminal word sets.  [Error]
    reports that some derivable word exceeds [max_len] (default 64) or that
    some nonterminal's set exceeds [max_card] (default 2_000_000) — in
    either case the grammar is too big to materialise, not necessarily
    infinite.

    When every intermediate language is uniform-length binary (the [L_n]
    constructions), the concatenation steps run on the tiered kernel —
    machine-integer codes ({!Ucfg_lang.Packed}) up to length 62, multi-limb
    codes ({!Ucfg_lang.Wide}) up to 128, and factorised circuits
    ({!Ucfg_lang.Factored}) beyond, or whenever the product cardinality is
    huge.  [~packed:false] (default [true]) forces the set representation
    throughout — the result is identical, only slower, and exists so the
    speedup stays measurable (bench E26).  [~factored:true] (default
    [false]) seeds the fixpoint on tier T2, so every derived language is a
    circuit: languages of billions of words stay a few hundred thousand
    hash-consed nodes and the n ≥ 16 sweeps (bench E31) terminate.  With
    [~factored:true] the [max_card] cap bounds the circuit's {e node count}
    (the memory actually used) instead of the cardinal.

    [~seeds] pins the denotations of selected nonterminals: when
    [seeds.(i)] is [Some l], nonterminal [i] starts at [l] and its rules
    are never applied.  This is the incremental-recomputation hook — a
    caller that re-runs the fixpoint on a locally modified grammar (as
    {!Ucfg_rect.Extract} does, dozens of times on a shrinking grammar)
    seeds every nonterminal whose language is unaffected and pays only
    for the ones above the change.

    [~acyclic:true] asserts that the dependency graph is acyclic (e.g. a
    length-annotated grammar) and skips the per-call SCC test that
    otherwise decides between the one-pass and the iterated fixpoint;
    passing it on a cyclic grammar is unspecified.

    [~guard] (default {!Ucfg_exec.Exec.current_guard}) is polled at every
    rule application and at every left word of a large concatenation, so a
    deadline or budget interrupts the fixpoint promptly on every domain.
    @raise Ucfg_exec.Guard.Interrupt once the guard trips. *)
val language :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool ->
  ?factored:bool ->
  ?acyclic:bool ->
  ?seeds:Lang.t option array ->
  ?max_len:int -> ?max_card:int -> Grammar.t -> (Lang.t, overflow) result

(** [language_exn ?guard ?packed ?acyclic ?seeds ?max_len ?max_card g]
    raises [Invalid_argument] instead of returning [Error]. *)
val language_exn :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool ->
  ?factored:bool ->
  ?acyclic:bool ->
  ?seeds:Lang.t option array ->
  ?max_len:int -> ?max_card:int -> Grammar.t -> Lang.t

(** [language_table ?guard ?packed ?acyclic ?seeds ?max_len ?max_card g] is
    the full per-nonterminal fixpoint table behind {!language} — [table.(i)]
    is the language of nonterminal [i] (seeded entries are returned as
    seeded). *)
val language_table :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool ->
  ?factored:bool ->
  ?acyclic:bool ->
  ?seeds:Lang.t option array ->
  ?max_len:int -> ?max_card:int -> Grammar.t -> (Lang.t array, overflow) result

val language_table_exn :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool ->
  ?factored:bool ->
  ?acyclic:bool ->
  ?seeds:Lang.t option array ->
  ?max_len:int -> ?max_card:int -> Grammar.t -> Lang.t array

(** [is_finite g] decides finiteness of [L(g)]: after trimming, the
    language is infinite iff some strongly connected component of the
    dependency graph contains a "growing" rule occurrence (pumping). *)
val is_finite : Grammar.t -> bool

(** [has_finitely_many_trees g] decides whether [g] has finitely many parse
    trees: true iff the trimmed dependency graph is acyclic. *)
val has_finitely_many_trees : Grammar.t -> bool

(** [count_trees_total g] is the number of parse trees of [g] (all words
    together).  @raise Invalid_argument when there are infinitely many. *)
val count_trees_total : Grammar.t -> Bignum.t

(** [fixed_lengths g] is [Some lens] when every nonterminal of the trimmed
    grammar derives words of a single length — the situation of
    Observation 9 — with [lens.(a)] that length, indexed by the
    nonterminals of [Trim.trim g].  Returns the trimmed grammar alongside.
    [None] when some nonterminal derives words of different lengths.
    @raise Invalid_argument when the trimmed grammar is cyclic. *)
val fixed_lengths : Grammar.t -> (Grammar.t * int array) option

(** [topological_order g] lists the nonterminals of [g] so that every
    nonterminal comes after all nonterminals occurring in its rules
    (dependencies first).
    @raise Invalid_argument when the dependency graph is cyclic. *)
val topological_order : Grammar.t -> int list

(** [witness_tree g a] is some parse tree rooted at [a], if [a] is
    productive.  Deterministic (first usable rule, recursively). *)
val witness_tree : Grammar.t -> int -> Parse_tree.t option

(** [witness_word g] is the yield of [witness_tree g (start g)]. *)
val witness_word : Grammar.t -> string option
