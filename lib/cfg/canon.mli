(** Canonical grammar text and content digests, for artifact caching.

    A long-lived analysis service keys every derived artifact (lint
    verdicts, ambiguity profiles, rectangle covers, rank tables) by the
    {e content} of the grammar it was computed from, so that two clients
    submitting the same grammar — possibly with different nonterminal
    numbering, names, or interleaving of the rules of {e distinct}
    nonterminals — share one cache entry.

    {!canonical} renders a grammar into a normal form that is invariant
    under exactly those presentation choices:

    - nonterminals are renumbered in breadth-first reachability order
      from the start symbol (first occurrence on a right-hand side wins;
      unreachable nonterminals follow in their original order — they do
      not affect the language, but they do affect lint verdicts, so they
      stay part of the key);
    - names are dropped (pass [~keep_names:true] for artifacts whose
      rendering mentions names, e.g. lint diagnostics);
    - the alternatives of each nonterminal are sorted lexicographically
      {e in the rendering} (the BFS numbering above is assigned from the
      pre-sort scan order).

    The normal form is {e not} invariant under reordering the
    alternatives {e of a single nonterminal}: that reorders first
    occurrences on right-hand sides, which can change the BFS numbering
    and hence the canonical text and digest.  Two grammars with equal
    canonical text define the same rule set up to renaming, hence the
    same language and the same semantic artifacts; the converse is not
    claimed — canonicalisation is not a graph-canonical form, so
    structurally equal grammars presented sufficiently differently may
    render differently.  Either way the cache merely recomputes, it is
    never wrong. *)

(** [canonical ?keep_names g] is the canonical text of [g].  Stable across
    processes and OCaml versions: the text depends only on the grammar's
    alphabet, rules (including the relative order of each nonterminal's
    alternatives, per the caveat above) and start symbol (plus names when
    [keep_names]). *)
val canonical : ?keep_names:bool -> Grammar.t -> string

(** [digest ?keep_names g] is the MD5 hex digest (32 lowercase hex chars)
    of {!canonical}. *)
val digest : ?keep_names:bool -> Grammar.t -> string
