open Grammar

module Cset = Set.Make (Char)

(* --- nullability and FIRST/LAST sets (Kleene fixpoints) ------------------ *)

let nullable g =
  let n = nonterminal_count g in
  let null = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         if
           (not null.(lhs))
           && List.for_all (function T _ -> false | N i -> null.(i)) rhs
         then begin
           null.(lhs) <- true;
           changed := true
         end)
      (rules g)
  done;
  null

let rhs_nullable null rhs =
  List.for_all (function T _ -> false | N i -> null.(i)) rhs

let rhs_first ~nullable ~first rhs =
  let rec walk acc = function
    | [] -> acc
    | T c :: _ -> Cset.add c acc
    | N i :: rest ->
      let acc = Cset.union first.(i) acc in
      if nullable.(i) then walk acc rest else acc
  in
  walk Cset.empty rhs

let rhs_last ~nullable ~last rhs =
  let rec walk acc = function
    | [] -> acc
    | T c :: _ -> Cset.add c acc
    | N i :: rest ->
      let acc = Cset.union last.(i) acc in
      if nullable.(i) then walk acc rest else acc
  in
  walk Cset.empty (List.rev rhs)

let directional_sets g walk_of_rhs =
  let n = nonterminal_count g in
  let sets = Array.make n Cset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         let s = Cset.union sets.(lhs) (walk_of_rhs sets rhs) in
         if not (Cset.equal s sets.(lhs)) then begin
           sets.(lhs) <- s;
           changed := true
         end)
      (rules g)
  done;
  sets

let first_sets g =
  let null = nullable g in
  directional_sets g (fun first rhs -> rhs_first ~nullable:null ~first rhs)

let last_sets g =
  let null = nullable g in
  directional_sets g (fun last rhs -> rhs_last ~nullable:null ~last rhs)

(* --- derived-length ranges (acyclic only) -------------------------------- *)

(* word lengths of an acyclic grammar can still be astronomically large
   (lengths multiply down the DAG), so additions saturate *)
let len_cap = max_int / 4

let ( +! ) a b = if a >= len_cap - b then len_cap else a + b

let length_ranges g =
  let order =
    try Analysis.topological_order g
    with Invalid_argument _ ->
      invalid_arg "Static.length_ranges: cyclic grammar"
  in
  let n = nonterminal_count g in
  let ranges = Array.make n None in
  List.iter
    (fun a ->
       List.iter
         (fun rhs ->
            let range =
              List.fold_left
                (fun acc sym ->
                   match (acc, sym) with
                   | None, _ -> None
                   | Some (lo, hi), T _ -> Some (lo +! 1, hi +! 1)
                   | Some (lo, hi), N i ->
                     (match ranges.(i) with
                      | None -> None
                      | Some (lo', hi') -> Some (lo +! lo', hi +! hi')))
                (Some (0, 0)) rhs
            in
            match (range, ranges.(a)) with
            | None, _ -> ()
            | Some r, None -> ranges.(a) <- Some r
            | Some (lo, hi), Some (lo', hi') ->
              ranges.(a) <- Some (min lo lo', max hi hi'))
         (rules_of g a))
    order;
  ranges

(* --- the unambiguity certificate ----------------------------------------- *)

(* On a trimmed acyclic grammar, unambiguity follows when, for every
   nonterminal A,
     (i)  at most one rule of A is nullable — so ε determines its rule;
     (ii) the FIRST sets of A's rules are pairwise disjoint — so the first
          letter of a nonempty word determines its rule;
     (iii) every rule has at most one variable-length symbol — so, the
          rule being fixed, the word length forces every split point.
   Induction on derivation depth then gives a unique tree per word. *)
let certificate_trimmed g =
  let null = nullable g in
  let first = first_sets g in
  let ranges = length_ranges g in
  let variable = function
    | T _ -> false
    | N i -> (match ranges.(i) with None -> true | Some (lo, hi) -> lo <> hi)
  in
  let nt_ok a =
    let rhss = rules_of g a in
    let firsts = List.map (fun rhs -> rhs_first ~nullable:null ~first rhs) rhss in
    let nullables = List.filter (rhs_nullable null) rhss in
    List.length nullables <= 1
    && (let rec pairwise_disjoint = function
          | [] -> true
          | f :: rest ->
            List.for_all (fun f' -> Cset.disjoint f f') rest
            && pairwise_disjoint rest
        in
        pairwise_disjoint firsts)
    && List.for_all
         (fun rhs -> List.length (List.filter variable rhs) <= 1)
         rhss
  in
  let ok = ref true in
  for a = 0 to nonterminal_count g - 1 do
    if not (nt_ok a) then ok := false
  done;
  !ok

let certificate g =
  let g = Trim.trim g in
  Analysis.has_finitely_many_trees g && certificate_trimmed g

(* --- the bounded tree-count probe ---------------------------------------- *)

module Smap = Map.Make (String)

(* counts saturate well below the int overflow threshold of products *)
let count_cap = 1 lsl 30

let sat_add a b = if a >= count_cap - b then count_cap else a + b
let sat_mul a b = if a >= count_cap || b >= count_cap then count_cap
  else Stdlib.min count_cap (a * b)

let truncate_map k m =
  if Smap.cardinal m <= k then m
  else
    (* keep the lexicographically least k words: deterministic, and
       truncation only drops words, never lowers a kept count *)
    fst
      (Smap.fold
         (fun w c (acc, cnt) ->
            if cnt < k then (Smap.add w c acc, cnt + 1) else (acc, cnt))
         m (Smap.empty, 0))

let probe ?(max_words = 64) ?(max_len = 64) g =
  let order =
    try Analysis.topological_order g
    with Invalid_argument _ -> invalid_arg "Static.probe: cyclic grammar"
  in
  let n = nonterminal_count g in
  let counts = Array.make n Smap.empty in
  let witness = ref None in
  let combine acc sym_map =
    Smap.fold
      (fun u cu acc ->
         Smap.fold
           (fun v cv acc ->
              let w = u ^ v in
              if String.length w > max_len then acc
              else
                let c = sat_mul cu cv in
                Smap.update w
                  (function None -> Some c | Some c' -> Some (sat_add c c'))
                  acc)
           sym_map acc)
      acc Smap.empty
  in
  List.iter
    (fun a ->
       let m =
         List.fold_left
           (fun acc rhs ->
              let rule_map =
                List.fold_left
                  (fun acc sym ->
                     let sym_map =
                       match sym with
                       | T c -> Smap.singleton (String.make 1 c) 1
                       | N i -> counts.(i)
                     in
                     combine acc sym_map)
                  (Smap.singleton "" 1) rhs
              in
              Smap.union (fun _ c c' -> Some (sat_add c c')) acc rule_map)
           Smap.empty (rules_of g a)
       in
       let m = truncate_map max_words m in
       counts.(a) <- m;
       if !witness = None then
         Smap.iter
           (fun w c -> if c >= 2 && !witness = None then
               witness := Some (name g a, w))
           m)
    order;
  !witness

(* --- the combined verdict ------------------------------------------------ *)

type verdict =
  | Unambiguous
  | Ambiguous of { nonterminal : string; word : string }
  | Unknown

let verdict ?probe_words ?probe_len g =
  let g = Trim.trim g in
  if not (Analysis.has_finitely_many_trees g) then Unknown
  else if certificate_trimmed g then Unambiguous
  else
    match probe ?max_words:probe_words ?max_len:probe_len g with
    | Some (nonterminal, word) -> Ambiguous { nonterminal; word }
    | None -> Unknown
