open Ucfg_lang
module Bignum = Ucfg_util.Bignum

type method_ = Certificate | Static_witness of string | Counting

type verdict = {
  unambiguous : bool;
  total_trees : Bignum.t option;
  word_count : int option;
  via : method_;
}

let check_by_counting ?guard ?factored ?max_len ?max_card g =
  (* the exhaustive path: materialising the language dominates, and
     [Analysis.language] partitions its concatenation steps across the
     [Ucfg_exec] domain pool (or, with [~factored:true], runs entirely on
     tier-T2 circuits whose cardinals are exact model counts); the tree
     total is a cheap polynomial DP *)
  let lang = Analysis.language_exn ?guard ?factored ?max_len ?max_card g in
  let words = Lang.cardinal_big lang in
  let total_trees = Analysis.count_trees_total g in
  let unambiguous = Bignum.equal total_trees words in
  {
    unambiguous;
    total_trees = Some total_trees;
    word_count = Bignum.to_int words;
    via = Counting;
  }

let check ?guard ?factored ?max_len ?max_card ?(fast = true) g =
  let g = Trim.trim g in
  if not (Analysis.has_finitely_many_trees g) then
    (* a trimmed grammar with a dependency cycle pumps parse trees;
       infinitely many trees over finitely many words forces a word with
       two trees (the trimmed grammar is non-empty, else it is acyclic) *)
    invalid_arg "Ambiguity.check: infinitely many parse trees (grammar is \
                 trivially ambiguous on a finite language)"
  else
    match if fast then Static.verdict g else Static.Unknown with
    | Static.Unambiguous ->
      (* certified unambiguous: every word has exactly one tree, so the
         polynomial tree-count DP doubles as the word count — the language
         is never materialised *)
      let total = Analysis.count_trees_total g in
      {
        unambiguous = true;
        total_trees = Some total;
        word_count = Bignum.to_int total;
        via = Certificate;
      }
    | Static.Ambiguous { word; _ } ->
      (* a sound witness: no need to enumerate anything *)
      {
        unambiguous = false;
        total_trees = None;
        word_count = None;
        via = Static_witness word;
      }
    | Static.Unknown -> check_by_counting ?guard ?factored ?max_len ?max_card g

let is_unambiguous ?guard ?factored ?max_len ?max_card ?fast g =
  (check ?guard ?factored ?max_len ?max_card ?fast g).unambiguous

type profile = {
  word_total : int;
  ambiguous_words : int;
  max_trees : Bignum.t;
  histogram : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Tree census: per-word parse-tree multiplicities for the whole grammar
   in one bottom-up sweep, instead of one CYK table per word.  A weighted
   language maps each derivable word to its number of parse trees; rule
   concatenation convolves the weights and alternatives add them.  On
   uniform-length binary languages the words are packed machine codes
   ({!Ucfg_lang.Packed}) and a rule product is a sorted merge of code
   blocks — the same kernel the language fixpoint runs on. *)

module Census = struct
  type t =
    | Packed of { len : int; codes : int array; counts : Bignum.t array }
        (** codes strictly increasing *)
    | Set of (string, Bignum.t) Hashtbl.t

  let to_set = function
    | Set h -> h
    | Packed { len; codes; counts } ->
      let h = Hashtbl.create (Array.length codes) in
      Array.iteri
        (fun i c ->
           Hashtbl.replace h (Ucfg_lang.Packed.word_of_code ~len c) counts.(i))
        codes;
      h

  let of_word w c =
    if
      String.length w <= Ucfg_lang.Packed.max_length
      && String.for_all (fun ch -> ch = 'a' || ch = 'b') w
    then
      Packed
        {
          len = String.length w;
          codes = [| Ucfg_lang.Packed.code_of_word w |];
          counts = [| c |];
        }
    else begin
      let h = Hashtbl.create 1 in
      Hashtbl.replace h w c;
      Set h
    end

  (* weighted concatenation (one rule product step) *)
  let concat a b =
    match a, b with
    | ( Packed { len = la; codes = ca; counts = wa },
        Packed { len = lb; codes = cb; counts = wb } )
      when la + lb <= Ucfg_lang.Packed.max_length ->
      (* codes concatenate as [cu lsl lb lor cv]: for each u in order the
         block over v is ascending, and blocks for successive u are
         disjoint and ascending — the product is born sorted *)
      let na = Array.length ca and nb = Array.length cb in
      let codes = Array.make (na * nb) 0 in
      let counts = Array.make (na * nb) Bignum.zero in
      let k = ref 0 in
      for i = 0 to na - 1 do
        let hi = ca.(i) lsl lb in
        for j = 0 to nb - 1 do
          codes.(!k) <- hi lor cb.(j);
          counts.(!k) <- Bignum.mul wa.(i) wb.(j);
          incr k
        done
      done;
      Packed { len = la + lb; codes; counts }
    | _ ->
      let ha = to_set a and hb = to_set b in
      let h = Hashtbl.create (Hashtbl.length ha * Hashtbl.length hb) in
      Hashtbl.iter
        (fun u cu ->
           Hashtbl.iter
             (fun v cv ->
                let w = u ^ v in
                let prev = Option.value ~default:Bignum.zero (Hashtbl.find_opt h w) in
                Hashtbl.replace h w (Bignum.add prev (Bignum.mul cu cv)))
             hb)
        ha;
      Set h

  let is_empty = function
    | Packed { codes; _ } -> Array.length codes = 0
    | Set h -> Hashtbl.length h = 0

  (* weighted union (sum of the rule alternatives) *)
  let add a b =
    if is_empty a then b
    else if is_empty b then a
    else
    match a, b with
    | ( Packed { len = la; codes = ca; counts = wa },
        Packed { len = lb; codes = cb; counts = wb } )
      when la = lb ->
      let na = Array.length ca and nb = Array.length cb in
      let codes = Array.make (na + nb) 0 in
      let counts = Array.make (na + nb) Bignum.zero in
      let k = ref 0 and i = ref 0 and j = ref 0 in
      while !i < na && !j < nb do
        let x = ca.(!i) and y = cb.(!j) in
        if x < y then begin
          codes.(!k) <- x; counts.(!k) <- wa.(!i); incr i
        end
        else if y < x then begin
          codes.(!k) <- y; counts.(!k) <- wb.(!j); incr j
        end
        else begin
          codes.(!k) <- x;
          counts.(!k) <- Bignum.add wa.(!i) wb.(!j);
          incr i; incr j
        end;
        incr k
      done;
      while !i < na do codes.(!k) <- ca.(!i); counts.(!k) <- wa.(!i); incr i; incr k done;
      while !j < nb do codes.(!k) <- cb.(!j); counts.(!k) <- wb.(!j); incr j; incr k done;
      if !k = na + nb then Packed { len = la; codes; counts }
      else
        Packed
          { len = la; codes = Array.sub codes 0 !k; counts = Array.sub counts 0 !k }
    | _ ->
      let ha = to_set a in
      let hb = to_set b in
      let h = Hashtbl.copy ha in
      Hashtbl.iter
        (fun w c ->
           let prev = Option.value ~default:Bignum.zero (Hashtbl.find_opt h w) in
           Hashtbl.replace h w (Bignum.add prev c))
        hb;
      Set h

  let empty () = Set (Hashtbl.create 1)

  (* iterate in word order (packed code order = lexicographic order) *)
  let iter f = function
    | Packed { len; codes; counts } ->
      Array.iteri
        (fun i c -> f (Ucfg_lang.Packed.word_of_code ~len c) counts.(i))
        codes
    | Set h ->
      Hashtbl.fold (fun w c acc -> (w, c) :: acc) h []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (w, c) -> f w c)
end

(* per-nonterminal census over the (acyclic) dependency graph; the guard
   is polled before every weighted concatenation, the quadratic step *)
let census guard g =
  let counts = Array.make (Grammar.nonterminal_count g) (Census.empty ()) in
  List.iter
    (fun a ->
       let total =
         List.fold_left
           (fun acc rhs ->
              let product =
                List.fold_left
                  (fun acc sym ->
                     if Census.is_empty acc then acc
                     else begin
                       Ucfg_exec.Guard.tick guard;
                       Census.concat acc
                         (match sym with
                          | Grammar.T c ->
                            Census.of_word (String.make 1 c) Bignum.one
                          | Grammar.N b -> counts.(b))
                     end)
                  (Census.of_word "" Bignum.one)
                  rhs
              in
              Census.add acc product)
           (Census.empty ())
           (Grammar.rules_of g a)
       in
       counts.(a) <- total)
    (Analysis.topological_order g);
  counts.(Grammar.start g)

let profile ?guard ?factored ?max_len ?max_card g =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let g = Trim.trim g in
  let lang = Analysis.language_exn ~guard ?factored ?max_len ?max_card g in
  if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Ambiguity.profile: infinitely many parse trees";
  let hist = Hashtbl.create 16 in
  let max_trees = ref Bignum.zero in
  let ambiguous_words = ref 0 in
  (* one censused sweep over the grammar replaces a per-word CYK table;
     the result is deterministic (no pool involvement) and identical to
     counting each word separately — property-tested against
     {!Count_word.trees_with} *)
  Census.iter
    (fun _w c ->
       if Bignum.compare c Bignum.one > 0 then incr ambiguous_words;
       if Bignum.compare c !max_trees > 0 then max_trees := c;
       let key = Bignum.to_string c in
       Hashtbl.replace hist key
         (1 + Option.value ~default:0 (Hashtbl.find_opt hist key)))
    (census guard g);
  let histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) ->
        compare (Bignum.of_string a) (Bignum.of_string b))
  in
  {
    word_total = Lang.cardinal lang;
    ambiguous_words = !ambiguous_words;
    max_trees = !max_trees;
    histogram;
  }

let ambiguous_witness ?guard ?factored ?max_len ?max_card ?(fast = true) g =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let g = Trim.trim g in
  if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Ambiguity.ambiguous_witness: infinitely many parse trees"
  else
    match if fast then Static.verdict g else Static.Unknown with
    | Static.Ambiguous { word; _ } -> Some word
    | Static.Unambiguous -> None
    | Static.Unknown ->
      let lang = Analysis.language_exn ~guard ?factored ?max_len ?max_card g in
      (* candidate words are scanned in parallel chunks; [parallel_find_map]
         returns the first hit in word order, matching the sequential scan.
         One compiled plan serves every candidate. *)
      let p = Count_word.plan g in
      Ucfg_exec.Exec.parallel_find_map
        (fun w ->
           Ucfg_exec.Guard.tick guard;
           if Bignum.compare (Count_word.trees_with p w) Bignum.one > 0 then
             Some w
           else None)
        (Lang.elements lang)
