open Ucfg_lang
module Bignum = Ucfg_util.Bignum

type method_ = Certificate | Static_witness of string | Counting

type verdict = {
  unambiguous : bool;
  total_trees : Bignum.t option;
  word_count : int option;
  via : method_;
}

let check_by_counting ?max_len ?max_card g =
  (* the exhaustive path: materialising the language dominates, and
     [Analysis.language] partitions its concatenation steps across the
     [Ucfg_exec] domain pool; the tree total is a cheap polynomial DP *)
  let lang = Analysis.language_exn ?max_len ?max_card g in
  let word_count = Lang.cardinal lang in
  let total_trees = Analysis.count_trees_total g in
  let unambiguous = Bignum.equal total_trees (Bignum.of_int word_count) in
  {
    unambiguous;
    total_trees = Some total_trees;
    word_count = Some word_count;
    via = Counting;
  }

let check ?max_len ?max_card ?(fast = true) g =
  let g = Trim.trim g in
  if not (Analysis.has_finitely_many_trees g) then
    (* a trimmed grammar with a dependency cycle pumps parse trees;
       infinitely many trees over finitely many words forces a word with
       two trees (the trimmed grammar is non-empty, else it is acyclic) *)
    invalid_arg "Ambiguity.check: infinitely many parse trees (grammar is \
                 trivially ambiguous on a finite language)"
  else
    match if fast then Static.verdict g else Static.Unknown with
    | Static.Unambiguous ->
      (* certified unambiguous: every word has exactly one tree, so the
         polynomial tree-count DP doubles as the word count — the language
         is never materialised *)
      let total = Analysis.count_trees_total g in
      {
        unambiguous = true;
        total_trees = Some total;
        word_count = Bignum.to_int total;
        via = Certificate;
      }
    | Static.Ambiguous { word; _ } ->
      (* a sound witness: no need to enumerate anything *)
      {
        unambiguous = false;
        total_trees = None;
        word_count = None;
        via = Static_witness word;
      }
    | Static.Unknown -> check_by_counting ?max_len ?max_card g

let is_unambiguous ?max_len ?max_card ?fast g =
  (check ?max_len ?max_card ?fast g).unambiguous

type profile = {
  word_total : int;
  ambiguous_words : int;
  max_trees : Bignum.t;
  histogram : (string * int) list;
}

let profile ?max_len ?max_card g =
  let g = Trim.trim g in
  let lang = Analysis.language_exn ?max_len ?max_card g in
  if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Ambiguity.profile: infinitely many parse trees";
  let hist = Hashtbl.create 16 in
  let max_trees = ref Bignum.zero in
  let ambiguous_words = ref 0 in
  (* per-word tree counting is embarrassingly parallel: candidate words are
     partitioned across domains and the counts merged back in word order,
     so the histogram is independent of the job count.  The counting plan
     (trim + finiteness check + rule index) is compiled once and shared by
     every word. *)
  let p = Count_word.plan g in
  let counts =
    Ucfg_exec.Exec.parallel_map (Count_word.trees_with p) (Lang.elements lang)
  in
  List.iter
    (fun c ->
       if Bignum.compare c Bignum.one > 0 then incr ambiguous_words;
       if Bignum.compare c !max_trees > 0 then max_trees := c;
       let key = Bignum.to_string c in
       Hashtbl.replace hist key
         (1 + Option.value ~default:0 (Hashtbl.find_opt hist key)))
    counts;
  let histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) ->
        compare (Bignum.of_string a) (Bignum.of_string b))
  in
  {
    word_total = Lang.cardinal lang;
    ambiguous_words = !ambiguous_words;
    max_trees = !max_trees;
    histogram;
  }

let ambiguous_witness ?max_len ?max_card ?(fast = true) g =
  let g = Trim.trim g in
  if not (Analysis.has_finitely_many_trees g) then
    invalid_arg "Ambiguity.ambiguous_witness: infinitely many parse trees"
  else
    match if fast then Static.verdict g else Static.Unknown with
    | Static.Ambiguous { word; _ } -> Some word
    | Static.Unambiguous -> None
    | Static.Unknown ->
      let lang = Analysis.language_exn ?max_len ?max_card g in
      (* candidate words are scanned in parallel chunks; [parallel_find_map]
         returns the first hit in word order, matching the sequential scan.
         One compiled plan serves every candidate. *)
      let p = Count_word.plan g in
      Ucfg_exec.Exec.parallel_find_map
        (fun w ->
           if Bignum.compare (Count_word.trees_with p w) Bignum.one > 0 then
             Some w
           else None)
        (Lang.elements lang)
