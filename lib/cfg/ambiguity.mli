(** Deciding unambiguity of finite-language grammars.

    Unambiguity is semantic, which is what makes lower bounds hard — but
    for finite languages it is decidable by exact counting: a grammar is
    unambiguous iff its total number of parse trees equals the number of
    words in its language (every word has at least one tree, so equality
    forces exactly one each).

    Counting is exponential in word length, so {!check} first consults the
    sound static pre-checks of {!Static} (the linter's certificate and
    definite-ambiguity probe): when a static verdict is conclusive the
    language is never materialised.  Pass [~fast:false] to force the
    exhaustive path — the two always agree (property-tested). *)

(** How a verdict was reached. *)
type method_ =
  | Certificate  (** {!Static.certificate} held — no enumeration ran *)
  | Static_witness of string
      (** {!Static.probe} exhibited this word with two parse trees — no
          enumeration ran *)
  | Counting  (** the exhaustive tree-count / word-count comparison *)

type verdict = {
  unambiguous : bool;
  total_trees : Ucfg_util.Bignum.t option;
      (** [None] when a static witness short-circuited the count *)
  word_count : int option;
      (** [None] when the fast path skipped enumeration, or when the
          count exceeds native [int] (possible under [Certificate], or
          under [Counting] with [~factored:true]) *)
  via : method_;
}

(** [check ?guard ?factored ?max_len ?max_card ?fast g] decides
    unambiguity of [g].
    [fast] (default [true]) consults the static certificate and
    definite-ambiguity probe first and skips enumeration when conclusive.
    [factored] (default [false]) runs the counting path's language fixpoint
    on tier-T2 circuits (see {!Analysis.language}): word counts become
    exact Bignum model counts, so the comparison stays honest at sizes no
    enumeration could reach — this is how the ambiguity census of bench
    E31 handles [L_n] grammars at n ≥ 16, whose languages have billions of
    words.  [guard] (default {!Ucfg_exec.Exec.current_guard}) bounds the
    enumeration; once it trips, {!Ucfg_exec.Guard.Interrupt} escapes.
    @raise Invalid_argument when the language is infinite or too large to
    materialise under the caps (see {!Analysis.language}), or when the
    trimmed grammar has a dependency cycle — in which case it has
    infinitely many parse trees and is trivially ambiguous on a finite
    language. *)
val check :
  ?guard:Ucfg_exec.Guard.t ->
  ?factored:bool ->
  ?max_len:int -> ?max_card:int -> ?fast:bool -> Grammar.t -> verdict

(** [is_unambiguous g] is [(check g).unambiguous]. *)
val is_unambiguous :
  ?guard:Ucfg_exec.Guard.t ->
  ?factored:bool ->
  ?max_len:int -> ?max_card:int -> ?fast:bool -> Grammar.t -> bool

(** [ambiguous_witness g] is some word with at least two parse trees, when
    one exists.  With [fast] (default [true]) the static probe's witness is
    returned when conclusive; otherwise found by per-word tree counting
    over the language (polling [guard] per candidate word). *)
val ambiguous_witness :
  ?guard:Ucfg_exec.Guard.t ->
  ?factored:bool ->
  ?max_len:int -> ?max_card:int -> ?fast:bool -> Grammar.t -> string option

type profile = {
  word_total : int;
  ambiguous_words : int;  (** words with at least two parse trees *)
  max_trees : Ucfg_util.Bignum.t;  (** the ambiguity degree *)
  histogram : (string * int) list;
      (** tree-count (as a decimal string) → number of words, ascending *)
}

(** [profile g] measures the distribution of parse-tree counts over the
    words of a finite-language grammar — how ambiguous the grammar is,
    beyond the yes/no of {!check}.  Always exhaustive (the distribution
    cannot be certified statically).  Same caps, guard polling and
    exceptions as {!check}. *)
val profile :
  ?guard:Ucfg_exec.Guard.t ->
  ?factored:bool ->
  ?max_len:int -> ?max_card:int -> Grammar.t -> profile
