(* Canonical grammar text: presentation-invariant renumbering + sorted
   alternatives.  See the mli for the exact invariances. *)

let canonical ?(keep_names = false) g =
  let n = Grammar.nonterminal_count g in
  (* old id -> canonical id, assigned in BFS reachability order from the
     start symbol, scanning each nonterminal's alternatives in insertion
     order.  The assignment is independent of the original ids, but NOT
     of the relative order of one nonterminal's alternatives: reordering
     them reorders first occurrences, which can renumber and so change
     the canonical text (a spurious cache miss, never a wrong answer —
     see the mli) *)
  let canon = Array.make n (-1) in
  let next = ref 0 in
  let assign i =
    if canon.(i) < 0 then begin
      canon.(i) <- !next;
      incr next
    end
  in
  let queue = Queue.create () in
  assign (Grammar.start g);
  Queue.add (Grammar.start g) queue;
  while not (Queue.is_empty queue) do
    let a = Queue.pop queue in
    List.iter
      (List.iter (function
        | Grammar.N b ->
          if canon.(b) < 0 then begin
            assign b;
            Queue.add b queue
          end
        | Grammar.T _ -> ()))
      (Grammar.rules_of g a)
  done;
  (* unreachable nonterminals: original order *)
  for i = 0 to n - 1 do
    assign i
  done;
  let old_of = Array.make n 0 in
  Array.iteri (fun old c -> old_of.(c) <- old) canon;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "alphabet:";
  List.iter (Buffer.add_char buf) (Ucfg_word.Alphabet.chars (Grammar.alphabet g));
  Buffer.add_char buf '\n';
  Buffer.add_string buf "start:0\n";
  if keep_names then begin
    Buffer.add_string buf "names:";
    for c = 0 to n - 1 do
      if c > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Grammar.name g old_of.(c))
    done;
    Buffer.add_char buf '\n'
  end;
  let render_rhs rhs =
    match rhs with
    | [] -> "eps"
    | _ ->
      String.concat " "
        (List.map
           (function
             | Grammar.T ch -> String.make 1 ch
             | Grammar.N b -> Printf.sprintf "<%d>" canon.(b))
           rhs)
  in
  for c = 0 to n - 1 do
    let alts =
      List.sort compare (List.map render_rhs (Grammar.rules_of g old_of.(c)))
    in
    List.iter (fun alt -> Buffer.add_string buf (Printf.sprintf "%d -> %s\n" c alt)) alts
  done;
  Buffer.contents buf

let digest ?keep_names g = Digest.to_hex (Digest.string (canonical ?keep_names g))
