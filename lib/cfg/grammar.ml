open Ucfg_word

type sym = T of char | N of int

type rule = { lhs : int; rhs : sym list }

type t = {
  alphabet : Alphabet.t;
  names : string array;
  rules : rule list;
  by_lhs : sym list list array;
  start : int;
  id : int;  (* process-unique, for memoising derived structures *)
}

(* Grammars are built inside pool workers too (the minimal-grammar search),
   so the id source must be race-free. *)
let next_id = Atomic.make 0

let validate_sym alphabet nnames = function
  | T c ->
    if not (Alphabet.mem alphabet c) then
      invalid_arg (Printf.sprintf "Grammar.make: terminal %c not in alphabet" c)
  | N i ->
    if i < 0 || i >= nnames then
      invalid_arg (Printf.sprintf "Grammar.make: nonterminal %d out of range" i)

let make ~alphabet ~names ~rules ~start =
  let nnames = Array.length names in
  if start < 0 || start >= nnames then
    invalid_arg "Grammar.make: start symbol out of range";
  List.iter
    (fun { lhs; rhs } ->
       if lhs < 0 || lhs >= nnames then
         invalid_arg "Grammar.make: rule lhs out of range";
       List.iter (validate_sym alphabet nnames) rhs)
    rules;
  (* Collapse duplicate rules while preserving first-occurrence order: the
     rule *set* semantics of Definition 2. *)
  let seen = Hashtbl.create 64 in
  let rules =
    List.filter
      (fun r ->
         if Hashtbl.mem seen r then false
         else begin
           Hashtbl.add seen r ();
           true
         end)
      rules
  in
  let by_lhs = Array.make nnames [] in
  List.iter (fun { lhs; rhs } -> by_lhs.(lhs) <- rhs :: by_lhs.(lhs)) rules;
  Array.iteri (fun i l -> by_lhs.(i) <- List.rev l) by_lhs;
  { alphabet; names; rules; by_lhs; start; id = Atomic.fetch_and_add next_id 1 }

let id g = g.id
let alphabet g = g.alphabet
let start g = g.start
let nonterminal_count g = Array.length g.names
let name g i = g.names.(i)
let names g = Array.copy g.names
let rules g = g.rules
let rule_count g = List.length g.rules
let rules_of g a = g.by_lhs.(a)

let size g =
  List.fold_left (fun acc { rhs; _ } -> acc + List.length rhs) 0 g.rules

let has_rule g a rhs = List.exists (fun r -> r = rhs) g.by_lhs.(a)

let is_cnf g =
  let start_on_rhs =
    List.exists
      (fun { rhs; _ } -> List.exists (function N i -> i = g.start | T _ -> false) rhs)
      g.rules
  in
  List.for_all
    (fun { lhs; rhs } ->
       match rhs with
       | [ T _ ] -> true
       | [ N _; N _ ] -> true
       | [] -> lhs = g.start && not start_on_rhs
       | _ -> false)
    g.rules

let map_nonterminals g f ~names ~start =
  let map_sym = function T c -> T c | N i -> N (f i) in
  let rules =
    List.map (fun { lhs; rhs } -> { lhs = f lhs; rhs = List.map map_sym rhs }) g.rules
  in
  make ~alphabet:g.alphabet ~names ~rules ~start

let dependency_edges g =
  (* deduplicated: repeated occurrences of B on right-hand sides of A
     contribute the edge (A, B) once, in first-occurrence order *)
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun { lhs; rhs } ->
       List.filter_map (function N i -> Some (lhs, i) | T _ -> None) rhs)
    g.rules
  |> List.filter (fun e ->
      if Hashtbl.mem seen e then false
      else begin
        Hashtbl.add seen e ();
        true
      end)

let pp_sym g fmt = function
  | T c -> Format.fprintf fmt "%c" c
  | N i -> Format.fprintf fmt "<%s>" g.names.(i)

let pp fmt g =
  Format.fprintf fmt "@[<v>start: <%s>@," g.names.(g.start);
  Array.iteri
    (fun a rhss ->
       List.iter
         (fun rhs ->
            Format.fprintf fmt "<%s> ->" g.names.(a);
            if rhs = [] then Format.fprintf fmt " ε"
            else List.iter (fun s -> Format.fprintf fmt " %a" (pp_sym g) s) rhs;
            Format.fprintf fmt "@,")
         rhss)
    g.by_lhs;
  Format.fprintf fmt "@]"

let to_string g = Format.asprintf "%a" pp g

module Builder = struct
  type b = {
    alphabet : Alphabet.t;
    mutable names_rev : string list;
    mutable count : int;
    by_name : (string, int) Hashtbl.t;
    mutable rules_rev : rule list;
  }

  let create alphabet =
    { alphabet; names_rev = []; count = 0; by_name = Hashtbl.create 64; rules_rev = [] }

  let fresh b name =
    let id = b.count in
    b.count <- id + 1;
    b.names_rev <- name :: b.names_rev;
    if not (Hashtbl.mem b.by_name name) then Hashtbl.add b.by_name name id;
    id

  let fresh_memo b name =
    match Hashtbl.find_opt b.by_name name with
    | Some id -> id
    | None -> fresh b name

  let add_rule b lhs rhs = b.rules_rev <- { lhs; rhs } :: b.rules_rev

  let finish b ~start =
    make ~alphabet:b.alphabet
      ~names:(Array.of_list (List.rev b.names_rev))
      ~rules:(List.rev b.rules_rev) ~start
end
