open Grammar
module Bignum = Ucfg_util.Bignum

(* --- the precompiled rule index --------------------------------------- *)

(* The per-cell work of the CYK dynamic program used to rescan the rule
   *list* of the grammar; for the thousands of same-grammar calls the
   harness makes, the index below is computed once per grammar (memoised on
   {!Grammar.id}) and every loop runs over flat arrays.  Rules keep their
   first-occurrence order everywhere the order is observable (tree
   enumeration). *)
type index = {
  nn : int;
  term_pairs : (int * char) array;  (* terminal rules (lhs, c), rule order *)
  term_by_lhs : string array;       (* chars of lhs's terminal rules *)
  bin_by_lhs : (int * int) array array;  (* (b, c) pairs per lhs, rule order *)
  (* binary rules grouped by rhs pair: ((b, c), all lhs with a -> b c).
     Grouping lets one split compute the product left(b)·right(c) once and
     credit every lhs sharing the pair. *)
  bin_groups : ((int * int) * int array) array;
}

let make_index g =
  let nn = nonterminal_count g in
  let term = ref [] and bin = ref [] in
  List.iter
    (fun { lhs; rhs } ->
       match rhs with
       | [ T c ] -> term := (lhs, c) :: !term
       | [ N b; N c ] -> bin := (lhs, b, c) :: !bin
       | _ -> ())
    (rules g);
  let term_pairs = Array.of_list (List.rev !term) in
  let bin = List.rev !bin in
  let term_by_lhs = Array.make nn "" in
  Array.iter
    (fun (a, c) -> term_by_lhs.(a) <- term_by_lhs.(a) ^ String.make 1 c)
    term_pairs;
  let by_lhs = Array.make nn [] in
  let groups : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let group_order = ref [] in
  List.iter
    (fun (a, b, c) ->
       by_lhs.(a) <- (b, c) :: by_lhs.(a);
       match Hashtbl.find_opt groups (b, c) with
       | Some l -> l := a :: !l
       | None ->
         Hashtbl.add groups (b, c) (ref [ a ]);
         group_order := (b, c) :: !group_order)
    bin;
  {
    nn;
    term_pairs;
    term_by_lhs;
    bin_by_lhs = Array.map (fun l -> Array.of_list (List.rev l)) by_lhs;
    bin_groups =
      List.rev_map
        (fun bc ->
           (bc, Array.of_list (List.rev !(Hashtbl.find groups bc))))
        !group_order
      |> Array.of_list;
  }

(* Bounded memo keyed on the grammar id; grammars are constructed freely
   (every [Trim.trim] mints one), so the cache is reset rather than grown
   without bound.  Pool workers share it, hence the mutex. *)
let index_cache : (int, index) Hashtbl.t = Hashtbl.create 16
let index_cache_mutex = Mutex.create ()
let index_cache_cap = 128

let compile g =
  let gid = Grammar.id g in
  Mutex.lock index_cache_mutex;
  match Hashtbl.find_opt index_cache gid with
  | Some idx ->
    Mutex.unlock index_cache_mutex;
    idx
  | None ->
    Mutex.unlock index_cache_mutex;
    let idx = make_index g in
    Mutex.lock index_cache_mutex;
    if Hashtbl.length index_cache >= index_cache_cap then
      Hashtbl.reset index_cache;
    Hashtbl.replace index_cache gid idx;
    Mutex.unlock index_cache_mutex;
    idx

(* --- the counting kernel ----------------------------------------------- *)

(* counts.(pos).(len-1).(a) = number of parse trees of w[pos..pos+len-1]
   rooted at a.  The kernel runs on native ints — ambiguity checking only
   needs small counts — and rebuilds in big integers iff a count overflows. *)
type counts =
  | Ints of int array array array
  | Bigs of Bignum.t array array array

type table = { g : Grammar.t; idx : index; w : string; counts : counts }

exception Int_overflow

let add_i a b =
  let s = a + b in
  if s < 0 then raise_notrace Int_overflow else s

let mul_i a b =
  if a > max_int / b then raise_notrace Int_overflow else a * b

let build_counts_int guard idx w =
  let n = String.length w in
  let counts =
    Array.init n (fun pos -> Array.init (n - pos) (fun _ -> Array.make idx.nn 0))
  in
  for pos = 0 to n - 1 do
    Array.iter
      (fun (a, c) ->
         if Char.equal w.[pos] c then
           counts.(pos).(0).(a) <- counts.(pos).(0).(a) + 1)
      idx.term_pairs
  done;
  for len = 2 to n do
    for pos = 0 to n - len do
      Ucfg_exec.Guard.tick guard;
      let cell = counts.(pos).(len - 1) in
      for split = 1 to len - 1 do
        let left = counts.(pos).(split - 1) in
        let right = counts.(pos + split).(len - split - 1) in
        Array.iter
          (fun ((b, c), lhss) ->
             let lb = left.(b) in
             if lb > 0 then begin
               let rc = right.(c) in
               if rc > 0 then begin
                 let p = mul_i lb rc in
                 Array.iter (fun a -> cell.(a) <- add_i cell.(a) p) lhss
               end
             end)
          idx.bin_groups
      done
    done
  done;
  counts

let build_counts_big guard idx w =
  let n = String.length w in
  let counts =
    Array.init n (fun pos ->
        Array.init (n - pos) (fun _ -> Array.make idx.nn Bignum.zero))
  in
  for pos = 0 to n - 1 do
    Array.iter
      (fun (a, c) ->
         if Char.equal w.[pos] c then
           counts.(pos).(0).(a) <- Bignum.add counts.(pos).(0).(a) Bignum.one)
      idx.term_pairs
  done;
  for len = 2 to n do
    for pos = 0 to n - len do
      Ucfg_exec.Guard.tick guard;
      let cell = counts.(pos).(len - 1) in
      for split = 1 to len - 1 do
        let left = counts.(pos).(split - 1) in
        let right = counts.(pos + split).(len - split - 1) in
        Array.iter
          (fun ((b, c), lhss) ->
             if Bignum.sign left.(b) > 0 && Bignum.sign right.(c) > 0 then begin
               let p = Bignum.mul left.(b) right.(c) in
               Array.iter (fun a -> cell.(a) <- Bignum.add cell.(a) p) lhss
             end)
          idx.bin_groups
      done
    done
  done;
  counts

let build_with idx g w =
  (* the guard is polled once per DP cell, in either number system *)
  let guard = Ucfg_exec.Exec.current_guard () in
  let counts =
    match build_counts_int guard idx w with
    | c -> Ints c
    | exception Int_overflow -> Bigs (build_counts_big guard idx w)
  in
  { g; idx; w; counts }

let build g w =
  if not (Grammar.is_cnf g) then invalid_arg "Cyk.build: grammar not in CNF";
  build_with (compile g) g w

let count_at t pos len a =
  match t.counts with
  | Ints c -> Bignum.of_int c.(pos).(len - 1).(a)
  | Bigs c -> c.(pos).(len - 1).(a)

let positive_at t pos len a =
  match t.counts with
  | Ints c -> c.(pos).(len - 1).(a) > 0
  | Bigs c -> Bignum.sign c.(pos).(len - 1).(a) > 0

let start_epsilon_count g =
  if Grammar.has_rule g (start g) [] then Bignum.one else Bignum.zero

let count_trees g w =
  if String.length w = 0 then start_epsilon_count g
  else begin
    let t = build g w in
    count_at t 0 (String.length w) (start g)
  end

let count_trees_batch g ws =
  (* one CNF check, one compiled index, thousands of words *)
  if not (Grammar.is_cnf g) then
    invalid_arg "Cyk.count_trees_batch: grammar not in CNF";
  let idx = compile g in
  List.map
    (fun w ->
       if String.length w = 0 then start_epsilon_count g
       else begin
         let t = build_with idx g w in
         count_at t 0 (String.length w) (start g)
       end)
    ws

let recognize g w = Bignum.sign (count_trees g w) > 0

let derivable t a pos len =
  len >= 1
  && pos >= 0
  && pos + len <= String.length t.w
  && positive_at t pos len a

(* Enumerate parse trees from a filled table, lazily, capped by the
   caller.  The index arrays preserve rule order, so trees come out in the
   same order the unindexed scan produced them. *)
let trees_of_cell t a pos len =
  let idx = t.idx in
  let rec gen a pos len : Parse_tree.t Seq.t =
    if len = 1 then
      (* terminal rule, and possibly binary rules do not apply at len 1 *)
      if String.contains idx.term_by_lhs.(a) t.w.[pos] then
        Seq.return (Parse_tree.Node (a, [ Parse_tree.Leaf t.w.[pos] ]))
      else Seq.empty
    else
      Array.to_seq idx.bin_by_lhs.(a)
      |> Seq.concat_map (fun (b, c) ->
          Seq.init (len - 1) (fun i -> i + 1)
          |> Seq.concat_map (fun split ->
              if derivable t b pos split && derivable t c (pos + split) (len - split)
              then
                Seq.concat_map
                  (fun lt ->
                     Seq.map
                       (fun rt -> Parse_tree.Node (a, [ lt; rt ]))
                       (gen c (pos + split) (len - split)))
                  (gen b pos split)
              else Seq.empty))
  in
  gen a pos len

let parse g w =
  if String.length w = 0 then
    if Grammar.has_rule g (start g) [] then Some (Parse_tree.Node (start g, []))
    else None
  else begin
    let t = build g w in
    let n = String.length w in
    if not (derivable t (start g) 0 n) then None
    else
      match (trees_of_cell t (start g) 0 n) () with
      | Seq.Nil -> None
      | Seq.Cons (tree, _) -> Some tree
  end

let occurrence_counts g w =
  let t = build g w in
  let n = String.length w in
  let idx = t.idx in
  let nn = idx.nn in
  let inside pos len a = count_at t pos len a in
  (* outside.(pos).(len-1).(a): parse-ways of the context around the
     span.  Products of inside entries can exceed the int range even when
     every inside entry fits, so this stays in big integers. *)
  let outside =
    Array.init n (fun pos ->
        Array.init (n - pos) (fun _ -> Array.make nn Bignum.zero))
  in
  if n > 0 then begin
    outside.(0).(n - 1).(start g) <- Bignum.one;
    for len = n downto 2 do
      for pos = 0 to n - len do
        Array.iter
          (fun ((b, c), lhss) ->
             (* the contribution of a -> b c is linear in out_a, so the
                lhs group can be summed before touching the children *)
             let out_bc =
               Array.fold_left
                 (fun acc a -> Bignum.add acc outside.(pos).(len - 1).(a))
                 Bignum.zero lhss
             in
             if Bignum.sign out_bc > 0 then
               for split = 1 to len - 1 do
                 let in_b = inside pos split b in
                 let in_c = inside (pos + split) (len - split) c in
                 if Bignum.sign in_c > 0 then
                   outside.(pos).(split - 1).(b) <-
                     Bignum.add
                       outside.(pos).(split - 1).(b)
                       (Bignum.mul out_bc in_c);
                 if Bignum.sign in_b > 0 then
                   outside.(pos + split).(len - split - 1).(c) <-
                     Bignum.add
                       outside.(pos + split).(len - split - 1).(c)
                       (Bignum.mul out_bc in_b)
               done)
          idx.bin_groups
      done
    done
  end;
  let acc = ref [] in
  for pos = n - 1 downto 0 do
    for len = n - pos downto 1 do
      for a = nn - 1 downto 0 do
        let occ = Bignum.mul (inside pos len a) outside.(pos).(len - 1).(a) in
        if Bignum.sign occ > 0 then acc := (a, pos, len, occ) :: !acc
      done
    done
  done;
  !acc

let all_trees ?(limit = 1000) g w =
  if String.length w = 0 then
    if Grammar.has_rule g (start g) [] then [ Parse_tree.Node (start g, []) ]
    else []
  else begin
    let t = build g w in
    let n = String.length w in
    trees_of_cell t (start g) 0 n
    |> Seq.take limit |> List.of_seq
  end
