open Ucfg_lang
open Grammar
module Bignum = Ucfg_util.Bignum

type overflow = [ `Length_exceeded of int | `Card_exceeded of int ]

exception Overflowed of overflow

(* --- strongly connected components (Tarjan) over the dependency graph --- *)

let scc_of_edges n edges =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strong w;
           low.(v) <- min low.(v) low.(w)
         end
         else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  comp

let dependency_cyclic g =
  let n = nonterminal_count g in
  let edges = dependency_edges g in
  let comp = scc_of_edges n edges in
  (* cyclic iff some SCC has >1 node or a self-loop *)
  let sizes = Hashtbl.create 16 in
  Array.iter
    (fun c ->
       Hashtbl.replace sizes c (1 + Option.value ~default:0 (Hashtbl.find_opt sizes c)))
    comp;
  Hashtbl.fold (fun _ s acc -> acc || s > 1) sizes false
  || List.exists (fun (a, b) -> a = b) edges

let topological_order_unchecked g =
  let n = nonterminal_count g in
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit a =
    if not visited.(a) then begin
      visited.(a) <- true;
      List.iter
        (fun rhs ->
           List.iter (function N i -> visit i | T _ -> ()) rhs)
        (rules_of g a);
      order := a :: !order
    end
  in
  for a = 0 to n - 1 do
    visit a
  done;
  (* post-order: dependencies first *)
  List.rev !order

let topological_order g =
  if dependency_cyclic g then
    invalid_arg "Analysis.topological_order: cyclic grammar";
  topological_order_unchecked g

(* --- exact language ------------------------------------------------------ *)

(* below this many (u, v) pairs a concatenation step stays sequential *)
let par_pair_threshold = 1 lsl 12

let language_table ?guard ?(packed = true) ?(factored = false)
    ?(acyclic = false) ?(seeds = [||]) ?(max_len = 64)
    ?(max_card = 2_000_000) g =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let n = nonterminal_count g in
  let sets = Array.make n Lang.empty in
  (* a seeded nonterminal's denotation is pinned: its entry starts at the
     seed and its rules are never applied — the incremental-recomputation
     hook (Extract re-runs the fixpoint dozens of times on a shrinking
     grammar whose languages only change above the deleted nonterminal) *)
  let seeded i = i < Array.length seeds && Option.is_some seeds.(i) in
  (* concatenate the denotations of a right-hand side, truncating words
     longer than [max_len] (and recording the truncation) *)
  let truncated = ref false in
  (* with [packed = false] the seeds stay set-backed, so every derived
     language does too and the fixpoint follows the pre-packed baseline;
     with [factored = true] they start on tier T2 and the whole fixpoint
     runs on circuits — languages of 4^16 words never enumerate *)
  let seed l =
    if factored then Lang.factor l else if packed then l else Lang.unpack l
  in
  (* the [max_card] cap bounds *memory*: on the enumerated representations
     that is the cardinal; on tier T2 it is the circuit's node count (a
     factorised language of billions of words can be a few-hundred-
     thousand-node DAG, which is the whole point of the tier) *)
  let size_proxy merged =
    match Lang.to_factored merged with
    | Some f ->
      if factored then Factored.node_count ~guard f
      else
        Option.value ~default:max_int (Factored.cardinal_int ~guard f)
    | None -> Lang.cardinal merged
  in
  for i = 0 to min n (Array.length seeds) - 1 do
    match seeds.(i) with Some l -> sets.(i) <- seed l | None -> ()
  done;
  let denote_sym = function
    | T c -> seed (Lang.singleton (String.make 1 c))
    | N i -> sets.(i)
  in
  (* acc · s, the hot inner step: large products are partitioned over the
     left words across domains — the union of the per-chunk sets and the
     or of the per-chunk truncation flags do not depend on the partition,
     so the result is identical to the sequential fold *)
  let concat_step_sets acc s =
    let concat_chunk us =
      let trunc = ref false in
      let set =
        List.fold_left
          (fun out u ->
             Ucfg_exec.Guard.tick guard;
             Lang.fold
               (fun v out ->
                  let w = u ^ v in
                  if String.length w > max_len then begin
                    trunc := true;
                    out
                  end
                  else Lang.add w out)
               s out)
          Lang.empty us
      in
      (set, !trunc)
    in
    if
      Ucfg_exec.Exec.jobs () <= 1
      || Lang.cardinal acc * Lang.cardinal s < par_pair_threshold
    then begin
      let set, trunc = concat_chunk (Lang.elements acc) in
      if trunc then truncated := true;
      set
    end
    else
      Ucfg_exec.Exec.parallel_map concat_chunk
        (Ucfg_exec.Exec.chunks (Lang.elements acc))
      |> List.fold_left
        (fun out (set, trunc) ->
           if trunc then truncated := true;
           Lang.union out set)
        Lang.empty
  in
  (* uniform length of a tiered operand — O(1); [None] on the set form *)
  let tier_len l =
    match Lang.tier l with `Set -> None | _ -> Lang.uniform_length l
  in
  let concat_step acc s =
    match tier_len acc, tier_len s with
    | Some la, Some lb ->
      if la + lb > max_len then begin
        (* both operands are uniform-length, so the cutoff the set path
           applies per word is all-or-nothing here *)
        truncated := true;
        Lang.empty
      end
      else
        (* the tiered product: T0 sorted machine-integer codes end to end
           (chunked over domains inside Lang.concat when large), T1
           multi-limb codes, or — when either side is factorised or the
           product cardinality is huge — a T2 circuit substitution *)
        Lang.concat acc s
    | _ -> concat_step_sets acc s
  in
  let concat_all rhs =
    List.fold_left
      (fun acc sym -> concat_step acc (denote_sym sym))
      (seed (Lang.singleton "")) rhs
  in
  let apply_rule { lhs; rhs } =
    Ucfg_exec.Guard.tick guard;
    if seeded lhs then false
    else begin
      let add = concat_all rhs in
      let merged = Lang.union sets.(lhs) add in
      if Lang.equal merged sets.(lhs) then false
      else begin
        sets.(lhs) <- merged;
        if size_proxy merged > max_card then
          raise (Overflowed (`Card_exceeded max_card));
        true
      end
    end
  in
  try
    if acyclic || not (dependency_cyclic g) then
      (* acyclic: one bottom-up pass in dependency order suffices *)
      List.iter
        (fun a ->
           if not (seeded a) then
             List.iter
               (fun rhs -> ignore (apply_rule { lhs = a; rhs }))
               (rules_of g a))
        (topological_order_unchecked g)
    else begin
      let changed = ref true in
      while !changed do
        Ucfg_exec.Guard.check guard;
        changed := false;
        List.iter (fun r -> if apply_rule r then changed := true) (rules g)
      done
    end;
    if !truncated then Error (`Length_exceeded max_len) else Ok sets
  with Overflowed o -> Error o

let language ?guard ?packed ?factored ?acyclic ?seeds ?max_len ?max_card g =
  Result.map
    (fun sets -> sets.(start g))
    (language_table ?guard ?packed ?factored ?acyclic ?seeds ?max_len ?max_card
       g)

let overflow_exn = function
  | Ok v -> v
  | Error (`Length_exceeded n) ->
    invalid_arg (Printf.sprintf "Analysis.language: word length above %d" n)
  | Error (`Card_exceeded n) ->
    invalid_arg (Printf.sprintf "Analysis.language: more than %d words" n)

let language_exn ?guard ?packed ?factored ?acyclic ?seeds ?max_len ?max_card
    g =
  overflow_exn
    (language ?guard ?packed ?factored ?acyclic ?seeds ?max_len ?max_card g)

let language_table_exn ?guard ?packed ?factored ?acyclic ?seeds ?max_len
    ?max_card g =
  overflow_exn
    (language_table ?guard ?packed ?factored ?acyclic ?seeds ?max_len ?max_card
       g)

(* derives_nonempty.(a): a derives at least one word of length >= 1 *)
let derives_nonempty g =
  let n = nonterminal_count g in
  let prod = Trim.productive g in
  let res = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         if (not res.(lhs))
         && List.for_all (function T _ -> true | N i -> prod.(i)) rhs
         && List.exists (function T _ -> true | N i -> res.(i)) rhs
         then begin
           res.(lhs) <- true;
           changed := true
         end)
      (rules g)
  done;
  res

let is_finite g =
  let g = Trim.trim g in
  let n = nonterminal_count g in
  if n = 0 then true
  else begin
    let nonempty = derives_nonempty g in
    let edges = dependency_edges g in
    let comp = scc_of_edges n edges in
    (* A rule occurrence lhs -> ... B ... is "growing" when the siblings of
       B can derive a nonempty word; a growing edge inside an SCC lets us
       pump: A =>+ u A v with |uv| >= 1. *)
    let growing_edge_in_scc =
      List.exists
        (fun { lhs; rhs } ->
           List.exists
             (function
               | T _ -> false
               | N b ->
                 comp.(lhs) = comp.(b)
                 && begin
                   (* siblings of this occurrence of b *)
                   let rec sib_nonempty skipped = function
                     | [] -> false
                     | T _ :: _ -> true
                     | N i :: rest ->
                       if i = b && not skipped then sib_nonempty true rest
                       else nonempty.(i) || sib_nonempty skipped rest
                   in
                   sib_nonempty false rhs
                 end)
             rhs)
        (rules g)
    in
    not growing_edge_in_scc
  end

let has_finitely_many_trees g =
  let g = Trim.trim g in
  not (dependency_cyclic g)

let count_trees_total g =
  let g = Trim.trim g in
  if nonterminal_count g = 0 then Bignum.zero
  else if dependency_cyclic g then
    invalid_arg "Analysis.count_trees_total: infinitely many parse trees"
  else begin
    let n = nonterminal_count g in
    let memo = Array.make n Bignum.zero in
    List.iter
      (fun a ->
         let per_rule rhs =
           List.fold_left
             (fun acc sym ->
                match sym with
                | T _ -> acc
                | N i -> Bignum.mul acc memo.(i))
             Bignum.one rhs
         in
         memo.(a) <- Bignum.sum (List.map per_rule (rules_of g a)))
      (topological_order_unchecked g);
    memo.(start g)
  end

let fixed_lengths g =
  let g = Trim.trim g in
  if nonterminal_count g = 0 then Some (g, [||])
  else if dependency_cyclic g then
    invalid_arg "Analysis.fixed_lengths: cyclic grammar"
  else begin
    let n = nonterminal_count g in
    let lens = Array.make n (-1) in
    let consistent = ref true in
    List.iter
      (fun a ->
         List.iter
           (fun rhs ->
              let len =
                List.fold_left
                  (fun acc sym ->
                     match sym with T _ -> acc + 1 | N i -> acc + lens.(i))
                  0 rhs
              in
              if lens.(a) < 0 then lens.(a) <- len
              else if lens.(a) <> len then consistent := false)
           (rules_of g a))
      (topological_order_unchecked g);
    if !consistent then Some (g, lens) else None
  end

let witness_tree g a =
  let n = nonterminal_count g in
  (* minimal parse-tree depth per nonterminal; infinity = unproductive *)
  let inf = max_int / 2 in
  let depth = Array.make n inf in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { lhs; rhs } ->
         let d =
           List.fold_left
             (fun acc sym ->
                match sym with T _ -> acc | N i -> max acc depth.(i))
             0 rhs
         in
         if d < inf && d + 1 < depth.(lhs) then begin
           depth.(lhs) <- d + 1;
           changed := true
         end)
      (rules g)
  done;
  if depth.(a) >= inf then None
  else begin
    let rec build a =
      (* a depth-minimal rule guarantees termination even on cyclic
         grammars *)
      let best = ref None in
      List.iter
        (fun rhs ->
           let d =
             List.fold_left
               (fun acc sym ->
                  match sym with T _ -> acc | N i -> max acc depth.(i))
               0 rhs
           in
           match !best with
           | Some (bd, _) when bd <= d -> ()
           | _ -> if d < inf then best := Some (d, rhs))
        (rules_of g a);
      match !best with
      | None -> assert false
      | Some (_, rhs) ->
        Parse_tree.Node
          ( a,
            List.map
              (function T c -> Parse_tree.Leaf c | N i -> build i)
              rhs )
    in
    Some (build a)
  end

let witness_word g =
  Option.map Parse_tree.yield (witness_tree g (start g))
