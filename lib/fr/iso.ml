open Ucfg_cfg
module G = Grammar

let trivially_empty g =
  G.nonterminal_count g = 0 || G.rules_of g (G.start g) = []

let drep_of_cfg g =
  let g = Trim.trim g in
  if trivially_empty g then
    Drep.make ~alphabet:(G.alphabet g) ~nodes:[| Drep.Union [] |] ~root:0
  else begin
    if not (Analysis.has_finitely_many_trees g) then
      invalid_arg "Iso.drep_of_cfg: cyclic grammar";
    let order = Analysis.topological_order g in
    (* nodes are emitted bottom-up: letters first, then per nonterminal (in
       dependency order) its rule products followed by its union gate *)
    let nodes = ref [] in
    let count = ref 0 in
    let push nd =
      nodes := nd :: !nodes;
      let id = !count in
      incr count;
      id
    in
    let letter_ids =
      List.map
        (fun c -> (c, push (Drep.Letter c)))
        (Ucfg_word.Alphabet.chars (G.alphabet g))
    in
    let eps_id = lazy (push Drep.Eps) in
    let nt_gate = Array.make (G.nonterminal_count g) (-1) in
    List.iter
      (fun a ->
         let rule_gates =
           List.map
             (fun rhs ->
                match rhs with
                | [] -> Lazy.force eps_id
                | [ sym ] -> begin
                    match sym with
                    | G.T c -> List.assoc c letter_ids
                    | G.N b -> nt_gate.(b)
                  end
                | _ ->
                  push
                    (Drep.Prod
                       (List.map
                          (function
                            | G.T c -> List.assoc c letter_ids
                            | G.N b -> nt_gate.(b))
                          rhs)))
             (G.rules_of g a)
         in
         nt_gate.(a) <- push (Drep.Union rule_gates))
      order;
    Drep.make ~alphabet:(G.alphabet g)
      ~nodes:(Array.of_list (List.rev !nodes))
      ~root:nt_gate.(G.start g)
  end

(* The language-kernel end of the correspondence: a tier-T2 circuit
   ({!Ucfg_lang.Factored}) is a d-representation whose product gates all
   split letter-first.  Each branch node becomes a union of (letter ×
   residual) products, skipping reject children — by construction the
   union arms start with distinct letters and every product factorises
   uniquely, so the result is {e deterministic} and [Drep.count_tuples]
   equals the circuit's model count. *)
let drep_of_factored f =
  let module F = Ucfg_lang.Factored in
  let nodes = ref [] in
  let count = ref 0 in
  let push nd =
    nodes := nd :: !nodes;
    let id = !count in
    incr count;
    id
  in
  let a_id = push (Drep.Letter 'a') in
  let b_id = push (Drep.Letter 'b') in
  let eps_id = lazy (push Drep.Eps) in
  let memo = Hashtbl.create 256 in
  (* gates for the children are pushed before the parent, so every child
     index is smaller — the bottom-up order [Drep.make] validates *)
  let rec gate nd =
    match Hashtbl.find_opt memo (F.node_id nd) with
    | Some id -> id
    | None ->
      let id =
        match F.view nd with
        | `Accept -> Lazy.force eps_id
        | `Reject -> push (Drep.Union [])
        | `Branch (lo, hi) ->
          let arm letter child =
            match F.view child with
            | `Reject -> None
            | `Accept -> Some letter
            | `Branch _ when not (F.node_nonempty child) ->
              (* dead subtree (canonical empty of its height): the arm
                 denotes nothing — drop it instead of exporting junk *)
              None
            | `Branch _ -> Some (push (Drep.Prod [ letter; gate child ]))
          in
          let arms =
            List.filter_map Fun.id [ arm a_id lo; arm b_id hi ]
          in
          (match arms with [ g ] -> g | _ -> push (Drep.Union arms))
      in
      Hashtbl.replace memo (F.node_id nd) id;
      id
  in
  let root = gate (F.root f) in
  Drep.make ~alphabet:Ucfg_word.Alphabet.binary
    ~nodes:(Array.of_list (List.rev !nodes))
    ~root

let cfg_of_drep d =
  let n = Drep.node_count d in
  let names = Array.init n (fun i -> Printf.sprintf "G%d" i) in
  let rules = ref [] in
  for i = 0 to n - 1 do
    match Drep.node d i with
    | Drep.Letter c -> rules := { G.lhs = i; rhs = [ G.T c ] } :: !rules
    | Drep.Eps -> rules := { G.lhs = i; rhs = [] } :: !rules
    | Drep.Union children ->
      List.iter
        (fun j -> rules := { G.lhs = i; rhs = [ G.N j ] } :: !rules)
        children
    | Drep.Prod children ->
      rules :=
        { G.lhs = i; rhs = List.map (fun j -> G.N j) children } :: !rules
  done;
  G.make ~alphabet:(Drep.alphabet d) ~names ~rules:(List.rev !rules)
    ~start:(Drep.root d)
