(** The Kimelfeld–Martens–Niewerth correspondence: CFG ↔ d-representation.

    Both directions preserve the language exactly, the derivation
    structure bijectively (so unambiguity ↔ determinism), and the size up
    to a small constant factor — the observation that makes the paper's
    uCFG lower bound a lower bound on deterministic factorised
    representations. *)

(** [drep_of_cfg g] — one union gate per nonterminal, one product gate per
    rule.  Requires a grammar with a finite language and finitely many
    parse trees (acyclic when trimmed); the result's size is at most
    [|G| + #rules + |Σ| + 1].
    @raise Invalid_argument on cyclic (trimmed) grammars. *)
val drep_of_cfg : Ucfg_cfg.Grammar.t -> Drep.t

(** [cfg_of_drep d] — one nonterminal per gate; size at most
    [size d + node_count d]. *)
val cfg_of_drep : Drep.t -> Ucfg_cfg.Grammar.t

(** [drep_of_factored f] — a tier-T2 circuit ({!Ucfg_lang.Factored}) as a
    d-representation: each live branch node becomes a union of
    (letter × residual) products, letter-first, dead subtrees pruned.  The
    result is {e deterministic} (union arms start with distinct letters and
    products factorise uniquely), denotes exactly the circuit's language,
    and has O(node count) gates — so [Drep.count_tuples] is the circuit's
    exact model count and the KMN size measure transfers to the tier. *)
val drep_of_factored : Ucfg_lang.Factored.t -> Drep.t
