(** Rectangle covers of a language (the object of Propositions 7 and 16).

    A cover is a list of string rectangles whose union is the language; it
    is a {e disjoint} cover when the rectangles are pairwise disjoint —
    which is what unambiguity buys (Proposition 7) and what the
    discrepancy argument taxes (Proposition 16). *)

open Ucfg_lang

type verification = {
  is_cover : bool;  (** union of the rectangles = the language *)
  is_disjoint : bool;  (** pairwise disjoint *)
  union_cardinal : int;
  sum_cardinals : int;
      (** [Σ |R_i|]; equals [union_cardinal] iff the cover is disjoint *)
}

(** [verify rects lang] checks the cover.  When the language and every
    rectangle pack ({!Packed_rectangle}), the union is a merge of sorted
    code arrays (per-rectangle enumeration fanned over the execution
    pool; output is jobs-invariant) and disjointness is the
    [Σ|R_i| = |∪ R_i|] arithmetic; otherwise — or with [~packed:false],
    the benchmarking escape hatch — everything is materialised as string
    sets.  Both paths produce the same record.  [guard] (default
    {!Ucfg_exec.Exec.current_guard}) is polled per merge;
    @raise Ucfg_exec.Guard.Interrupt once it trips. *)
val verify :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool -> Rectangle.t list -> Lang.t -> verification

(** [all_balanced rects] — every rectangle is balanced. *)
val all_balanced : Rectangle.t list -> bool

(** [example8_cover n] is the (non-disjoint!) cover of [L_n] by the [n]
    balanced rectangles [L_n^0, ..., L_n^(n-1)]. *)
val example8_cover : int -> Rectangle.t list

(** [singleton_cover l ~n1 ~n2] is the trivial disjoint cover by one
    rectangle per word. *)
val singleton_cover : Lang.t -> n1:int -> n2:int -> Rectangle.t list

(** [greedy_disjoint_cover l ~n] covers a language of words of length
    [2n] by balanced rectangles greedily: repeatedly grow a maximal
    rectangle inside the remaining words (a cheap upper-bound heuristic
    for the minimum disjoint cover).  On packable languages the remaining
    words live as a sorted code array and the per-split rectangle builds
    fan out over the pool; [~packed:false] keeps the set baseline.  Both
    paths pick identical rectangles.  [guard] is polled per greedy round
    and per split build; @raise Ucfg_exec.Guard.Interrupt once it trips. *)
val greedy_disjoint_cover :
  ?guard:Ucfg_exec.Guard.t ->
  ?packed:bool -> Lang.t -> n:int -> Rectangle.t list
