open Ucfg_word
open Ucfg_lang
module Exec = Ucfg_exec.Exec
module Guard = Ucfg_exec.Guard

let ambient = function
  | Some gd -> gd
  | None -> Exec.current_guard ()

type verification = {
  is_cover : bool;
  is_disjoint : bool;
  union_cardinal : int;
  sum_cardinals : int;
}

(* ------------------------------------------------------------------ *)
(* Set baseline: materialise every rectangle and fold string-set unions.
   Kept reachable (~packed:false, or non-packable input) so the kernel can
   be benchmarked against it and non-binary languages still verify. *)

let verify_sets rects lang =
  let materialized = List.map Rectangle.materialize rects in
  let union = List.fold_left Lang.union Lang.empty materialized in
  let sum_cardinals =
    Ucfg_util.Prelude.sum_int (List.map Lang.cardinal materialized)
  in
  let union_cardinal = Lang.cardinal union in
  {
    is_cover = Lang.equal union lang;
    is_disjoint = sum_cardinals = union_cardinal;
    union_cardinal;
    sum_cardinals;
  }

(* ------------------------------------------------------------------ *)
(* Packed kernel: every rectangle enumerates as a sorted array of machine
   codes, so the union is a merge, the union cardinal is an array length,
   and disjointness is the Σ|R_i| = |∪R_i| arithmetic — no strings. *)

let merge_union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin out.(!k) <- x; incr i end
    else if y < x then begin out.(!k) <- y; incr j end
    else begin out.(!k) <- x; incr i; incr j end;
    incr k
  done;
  Array.blit a !i out !k (la - !i);
  k := !k + la - !i;
  Array.blit b !j out !k (lb - !j);
  k := !k + lb - !j;
  if !k = la + lb then out else Array.sub out 0 !k

(* balanced merge rounds; each round's pairwise merges fan out over the
   pool (ordered, hence jobs-invariant); the guard is polled per merge *)
let rec merge_all guard = function
  | [] -> [||]
  | [ a ] -> a
  | arrays ->
    let rec pair = function
      | a :: b :: rest -> (a, b) :: pair rest
      | [ a ] -> [ (a, [||]) ]
      | [] -> []
    in
    merge_all guard
      (Exec.parallel_map
         (fun (a, b) ->
            Guard.tick guard;
            merge_union a b)
         (pair arrays))

let diff_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let k = ref 0 and j = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) in
    while !j < lb && b.(!j) < x do incr j done;
    if !j >= lb || b.(!j) <> x then begin
      out.(!k) <- x;
      incr k
    end
  done;
  if !k = la then out else Array.sub out 0 !k

(* all rectangles packed at one common word length (the language's, when
   it has one) — the precondition for the merge path *)
let pack_rects rects lang =
  let lang_codes =
    if Lang.is_empty lang then Some [||]
    else
      match Lang.to_packed (Lang.pack lang) with
      | Some p -> Some (Array.of_seq (Ucfg_lang.Packed.codes p))
      | None -> None
  in
  match lang_codes with
  | None -> None
  | Some lc ->
    let len = Lang.uniform_length lang in
    let rec pack acc = function
      | [] -> Some (List.rev acc)
      | r :: rest ->
        (match Packed_rectangle.of_rectangle r with
         | Some pr
           when (match len with
               | Some n -> Packed_rectangle.word_length pr = n
               | None -> (match acc with
                   | [] -> true
                   | pr0 :: _ ->
                     Packed_rectangle.word_length pr
                     = Packed_rectangle.word_length pr0)) ->
           pack (pr :: acc) rest
         | _ -> None)
    in
    Option.map (fun prs -> (prs, lc)) (pack [] rects)

let verify ?guard ?(packed = true) rects lang =
  let guard = ambient guard in
  match if packed then pack_rects rects lang else None with
  | None ->
    Guard.check guard;
    verify_sets rects lang
  | Some (prs, lang_codes) ->
    let per_rect =
      Exec.parallel_map
        (fun pr ->
           Guard.tick guard;
           Packed_rectangle.codes pr)
        prs
    in
    let union = merge_all guard per_rect in
    let sum_cardinals =
      Ucfg_util.Prelude.sum_int (List.map Packed_rectangle.cardinal prs)
    in
    let union_cardinal = Array.length union in
    {
      is_cover = union = lang_codes;
      is_disjoint = sum_cardinals = union_cardinal;
      union_cardinal;
      sum_cardinals;
    }

let all_balanced rects = List.for_all Rectangle.is_balanced rects

let example8_cover n =
  List.map (Rectangle.example8 n) (Ucfg_util.Prelude.range 0 n)

let singleton_cover l ~n1 ~n2 =
  Lang.fold (fun w acc -> Rectangle.singleton w ~n1 ~n2 :: acc) l []

(* balanced splits (n1, n2) of words of length [len] *)
let balanced_splits len =
  List.concat_map
    (fun n2 ->
       if 3 * n2 >= len && 3 * n2 <= 2 * len then
         List.map (fun n1 -> (n1, n2)) (Ucfg_util.Prelude.range_incl 0 (len - n2))
       else [])
    (Ucfg_util.Prelude.range_incl 1 len)

(* ------------------------------------------------------------------ *)
(* Greedy cover, set baseline (pre-kernel implementation). *)

let greedy_sets guard l ~n =
  let len = 2 * n in
  if not (Lang.for_all (fun w -> String.length w = len) l) then
    invalid_arg "Cover.greedy_disjoint_cover: words must have length 2n";
  let splits = balanced_splits len in
  let outer_of (n1, n2) w =
    Word.slice w 0 n1 ^ Word.slice w (n1 + n2) (len - n1 - n2)
  in
  let middle_of (n1, n2) w = Word.slice w n1 n2 in
  let best_rectangle remaining w =
    List.fold_left
      (fun best ((n1, n2) as split) ->
         Guard.tick guard;
         (* middles available for each outer *)
         let by_outer = Hashtbl.create 64 in
         Lang.iter
           (fun u ->
              let o = outer_of split u in
              let m = middle_of split u in
              let cur =
                Option.value ~default:Lang.empty (Hashtbl.find_opt by_outer o)
              in
              Hashtbl.replace by_outer o (Lang.add m cur))
           remaining;
         let m0 = Hashtbl.find by_outer (outer_of split w) in
         let outer =
           Hashtbl.fold
             (fun o ms acc -> if Lang.subset m0 ms then Lang.add o acc else acc)
             by_outer Lang.empty
         in
         let r =
           Rectangle.make ~n1 ~n2 ~n3:(len - n1 - n2) ~outer ~middle:m0
         in
         match best with
         | Some b when Rectangle.cardinal b >= Rectangle.cardinal r -> best
         | _ -> Some r)
      None splits
  in
  let rec go remaining acc =
    Guard.check guard;
    match Lang.choose_opt remaining with
    | None -> List.rev acc
    | Some w ->
      (match best_rectangle remaining w with
       | None -> assert false
       | Some r ->
         go (Lang.diff remaining (Rectangle.materialize r)) (r :: acc))
  in
  go l []

(* ------------------------------------------------------------------ *)
(* Greedy cover on the kernel: the remaining language is a sorted code
   array; each split classifies the codes into (outer, middle) pairs with
   shifts and masks, and the per-split rectangle builds fan out over the
   pool.  Selection order matches the set baseline exactly (first maximal
   rectangle in split order), so the covers coincide. *)

let subset_sorted small big =
  (* both strictly increasing *)
  let ls = Array.length small and lb = Array.length big in
  let rec go i j =
    if i >= ls then true
    else if j >= lb then false
    else if big.(j) = small.(i) then go (i + 1) (j + 1)
    else if big.(j) < small.(i) then go i (j + 1)
    else false
  in
  ls <= lb && go 0 0

let greedy_packed guard codes ~len =
  let splits = balanced_splits len in
  let build remaining w0 (n1, n2) =
    Guard.tick guard;
    let n3 = len - n1 - n2 in
    let m2 = (1 lsl n2) - 1 and m3 = (1 lsl n3) - 1 in
    let outer_of c = ((c lsr (n2 + n3)) lsl n3) lor (c land m3) in
    let middle_of c = (c lsr n3) land m2 in
    let by_outer = Hashtbl.create 64 in
    (* codes ascend, so per outer key the middles arrive ascending *)
    Array.iter
      (fun c ->
         let o = outer_of c in
         let prev = Option.value ~default:[] (Hashtbl.find_opt by_outer o) in
         Hashtbl.replace by_outer o (middle_of c :: prev))
      remaining;
    let as_sorted_array rev_list =
      let a = Array.of_list rev_list in
      let n = Array.length a in
      for i = 0 to (n / 2) - 1 do
        let t = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- t
      done;
      a
    in
    let m0 = as_sorted_array (Hashtbl.find by_outer (outer_of w0)) in
    let outers =
      Hashtbl.fold
        (fun o ms acc ->
           if subset_sorted m0 (as_sorted_array ms) then o :: acc else acc)
        by_outer []
      |> List.sort compare |> Array.of_list
    in
    {
      Packed_rectangle.n1;
      n2;
      n3;
      outer = Packed.of_sorted_codes ~len:(n1 + n3) outers;
      middle = Packed.of_sorted_codes ~len:n2 m0;
    }
  in
  let rec go remaining acc =
    Guard.check guard;
    if Array.length remaining = 0 then List.rev acc
    else begin
      let w0 = remaining.(0) in
      let best =
        List.fold_left
          (fun best r ->
             match best with
             | Some b
               when Packed_rectangle.cardinal b >= Packed_rectangle.cardinal r
               -> best
             | _ -> Some r)
          None
          (Exec.parallel_map (build remaining w0) splits)
      in
      match best with
      | None -> assert false
      | Some r ->
        go
          (diff_sorted remaining (Packed_rectangle.codes r))
          (Packed_rectangle.to_rectangle r :: acc)
    end
  in
  go codes []

let greedy_disjoint_cover ?guard ?(packed = true) l ~n =
  let guard = ambient guard in
  let len = 2 * n in
  let packed_codes =
    if not packed then None
    else if Lang.is_empty l then Some [||]
    else
      match Lang.to_packed (Lang.pack l) with
      | Some p when Ucfg_lang.Packed.length p = len ->
        Some (Array.of_seq (Ucfg_lang.Packed.codes p))
      | Some _ ->
        invalid_arg "Cover.greedy_disjoint_cover: words must have length 2n"
      | None -> None
  in
  match packed_codes with
  | Some codes -> greedy_packed guard codes ~len
  | None -> greedy_sets guard l ~n
