open Ucfg_lang
open Ucfg_cfg
module G = Grammar

type result = {
  rectangles : Rectangle.t list;
  word_length : int;
  annotated_size : int;
  cnf_size : int;
  bound : int;
}

let run ?guard g =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let cnf = Cnf.ensure g in
  let ann = Length_annotate.annotate g in
  let n = ann.Length_annotate.word_length in
  if n < 2 then
    invalid_arg "Extract.run: need word length >= 2 for balanced rectangles";
  let names = G.names ann.Length_annotate.grammar in
  let start = G.start ann.Length_annotate.grammar in
  let span = ann.Length_annotate.span_length in
  let origin = ann.Length_annotate.origin in
  let alphabet = G.alphabet ann.Length_annotate.grammar in
  let nt = G.nonterminal_count ann.Length_annotate.grammar in
  let rules = ref (G.rules ann.Length_annotate.grammar) in
  let mentions a r =
    r.G.lhs = a
    || List.exists (function G.N b -> b = a | G.T _ -> false) r.G.rhs
  in
  (* per-nonterminal language cache across delete-trim-repeat iterations:
     deleting a_i only changes the languages of nonterminals that reach
     a_i, so everything below stays valid (and packed) and re-seeds the
     next fixpoint instead of being recomputed *)
  let cache = Array.make nt None in
  let ancestors target =
    let rev = Array.make nt [] in
    List.iter
      (fun r ->
         List.iter
           (function G.N b -> rev.(b) <- r.G.lhs :: rev.(b) | G.T _ -> ())
           r.G.rhs)
      !rules;
    let anc = Array.make nt false in
    let rec visit v =
      if not anc.(v) then begin
        anc.(v) <- true;
        List.iter visit rev.(v)
      end
    in
    visit target;
    anc
  in
  (* outer languages, computed directly: [through g anc table a_i] is, per
     nonterminal A, the set of words derived from A by the derivations that
     pass through a_i, with a_i's yield contracted to ε.  M(a_i) = {ε}; for
     an ancestor A, M(A) = ⋃ over rules A → s1…sk and positions j of
     L(s1)…L(s_{j-1})·M(s_j)·L(s_{j+1})…L(s_k), with L the cached full
     languages.  Every M(A) is uniform-length (len(A) − n2), so unlike a
     marked-grammar fixpoint — whose mixed-length intermediate sets cannot
     pack — the whole recursion runs on the packed backend, and only the
     ancestors of a_i are touched. *)
  let through g anc table a_i =
    let m = Array.make nt None in
    m.(a_i) <- Some (Lang.singleton "");
    let rec mlang a =
      match m.(a) with
      | Some l -> l
      | None ->
        let res =
          if not anc.(a) then Lang.empty
          else
            List.fold_left
              (fun acc rhs ->
                 let lang_of = function
                   | G.T c -> Lang.singleton (String.make 1 c)
                   | G.N b -> table.(b)
                 in
                 (* one term per rhs position deriving through a_i *)
                 let rec positions before after acc =
                   match after with
                   | [] -> acc
                   | sym :: rest ->
                     let acc =
                       match sym with
                       | G.T _ -> acc
                       | G.N b ->
                         let mb = mlang b in
                         if Lang.is_empty mb then acc
                         else
                           Lang.union acc
                             (Lang.concat_list
                                (List.rev_append before
                                   (mb :: List.map lang_of rest)))
                     in
                     positions (lang_of sym :: before) rest acc
                 in
                 positions [] rhs acc)
              Lang.empty (G.rules_of g a)
        in
        m.(a) <- Some res;
        res
    in
    mlang (G.start g)
  in
  let rectangles = ref [] in
  let current = ref (G.make ~alphabet ~names ~rules:!rules ~start) in
  let continue_ = ref true in
  while !continue_ do
    (* one poll per delete-trim-repeat round; the fixpoint below polls the
       same guard at every rule application *)
    Ucfg_exec.Guard.tick guard;
    match Analysis.witness_tree !current start with
    | None -> continue_ := false
    | Some tree ->
      (* descend to a balanced node: heaviest child until span <= 2n/3 *)
      let rec descend node =
        let a = Parse_tree.root node in
        if 3 * span.(a) <= 2 * n then a
        else
          match node with
          | Parse_tree.Node (_, [ l; r ]) ->
            let weight = function
              | Parse_tree.Node (b, _) -> span.(b)
              | Parse_tree.Leaf _ -> 0
            in
            descend (if weight l >= weight r then l else r)
          | Parse_tree.Node (_, _) | Parse_tree.Leaf _ ->
            (* CNF node with span > 2n/3 >= 2 always has two children *)
            assert false
      in
      let a_i = descend tree in
      let _, pos = origin.(a_i) in
      let n1 = pos - 1 in
      let n2 = span.(a_i) in
      let n3 = n - n1 - n2 in
      (* middle: the words generated from a_i under the current rules *)
      (* the annotated grammar is acyclic (finitely many trees) and stays
         so as rules are deleted *)
      let table =
        Analysis.language_table_exn ~guard ~acyclic:true ~seeds:cache !current
      in
      Array.iteri (fun i l -> cache.(i) <- Some l) table;
      let middle = table.(a_i) in
      (* outer: the words whose derivation passes through a_i, with a_i's
         span cut out.  The grammar is length-annotated, so Lemma 10 pins
         every a_i occurrence at position n1+1 with span n2: the
         through-words of the start symbol *are* w1 w3. *)
      let anc = ancestors a_i in
      let outer = Lang.pack (through !current anc table a_i) in
      rectangles := Rectangle.make ~n1 ~n2 ~n3 ~outer ~middle :: !rectangles;
      (* delete a_i entirely; its ancestors' cached languages are stale *)
      rules := List.filter (fun r -> not (mentions a_i r)) !rules;
      Array.iteri (fun i above -> if above then cache.(i) <- None) anc;
      current := G.make ~alphabet ~names ~rules:!rules ~start
  done;
  {
    rectangles = List.rev !rectangles;
    word_length = n;
    annotated_size = G.size ann.Length_annotate.grammar;
    cnf_size = G.size cnf;
    bound = n * G.size cnf;
  }

let verify ?packed g res =
  let lang = Analysis.language_exn g in
  let ver = Cover.verify ?packed res.rectangles lang in
  let shape_ok =
    Cover.all_balanced res.rectangles
    && List.length res.rectangles <= res.bound
  in
  (ver, shape_ok)
