(** Packed string rectangles — the bitset kernel under {!Cover}.

    A rectangle over binary words of total length [<= 62] is represented
    by the packed codes of its two sides ({!Ucfg_lang.Packed}): the outer
    side [L1] as codes of the glued words [w1 w3] (length [n1 + n3]), the
    middle side [L2] as codes of length [n2].  Because packing is
    monotone, the denoted language enumerates as a {e sorted} code array
    without ever building a string: group the outer codes by their [w1]
    prefix (contiguous runs of the sorted side) and interleave the middle
    codes — so covers verify by linear merges and popcount-style
    cardinality arithmetic instead of set materialisation. *)

open Ucfg_lang

type t = {
  n1 : int;
  n2 : int;
  n3 : int;
  outer : Packed.t;  (** codes of [w1 w3], length [n1 + n3] *)
  middle : Packed.t;  (** codes of [w2], length [n2] *)
}

(** [of_rectangle r] packs both sides; [None] when the rectangle is not
    packable (non-binary words, or total length above
    [Packed.max_length]).  Lossless: [to_rectangle] round-trips. *)
val of_rectangle : Rectangle.t -> t option

val to_rectangle : t -> Rectangle.t

(** Total word length [n1 + n2 + n3]. *)
val word_length : t -> int

(** [cardinal t] = [|L1| · |L2|], no enumeration. *)
val cardinal : t -> int

(** [mem_code t c] — membership of a full-word code of length
    [word_length t], by splitting [c] into its outer and middle codes. *)
val mem_code : t -> int -> bool

(** [mem t w] — string membership (length and binary shape checked). *)
val mem : t -> string -> bool

(** [codes t] is the denoted language as a strictly increasing array of
    full-word codes — [cardinal t] entries, built in one pass. *)
val codes : t -> int array

(** [to_packed t] is the denoted language as a packed value (the
    materialisation of the kernel, still string-free). *)
val to_packed : t -> Packed.t

(** [disjoint a b] — emptiness of the intersection of the denoted
    languages.  Same-split rectangles compare side-wise (disjoint outer
    {e or} disjoint middle); different splits fall back to a linear merge
    scan of the two sorted code enumerations. *)
val disjoint : t -> t -> bool

val pp : Format.formatter -> t -> unit
