(** The Proposition 7 algorithm: grammar → balanced rectangle cover.

    Given a CNF grammar [G] of a language with all words of length [N],
    the paper constructs a cover of [L(G)] by at most [N·|G|] balanced
    rectangles — {e disjoint} when [G] is unambiguous:

    + length-annotate [G] into [G'] (Lemma 10), so each nonterminal pins
      its span;
    + while [L(G')] is non-empty, pick a witness parse tree, descend to
      the heaviest-child node until its span is at most [2N/3] (then it is
      at least [N/3]): a balanced nonterminal [A_i];
    + emit the rectangle of all words having a parse tree through [A_i]
      (Observation 11): middle = [L(A_i)], outer = the words of the
      grammar with [A_i]'s rules replaced by a marker block;
    + delete [A_i], trim, repeat.

    Materialising the rectangles is exponential in [N], so this is for the
    experimental regime ([N] up to ~16); the {e count} of rectangles — the
    quantity Proposition 16 bounds from below — is what matters. *)


type result = {
  rectangles : Rectangle.t list;
  word_length : int;
  annotated_size : int;  (** |G'| — the Lemma 10 grammar's size *)
  cnf_size : int;  (** |G| after CNF conversion *)
  bound : int;  (** the paper's guarantee [N·|G|] *)
}

(** [run g] executes the extraction.  [guard] (default
    {!Ucfg_exec.Exec.current_guard}) is polled once per delete-trim-repeat
    round and throughout the seeded fixpoints.
    @raise Invalid_argument when the language of [g] is empty, not of
    fixed word length, or of word length < 2 (no balanced split
    exists).
    @raise Ucfg_exec.Guard.Interrupt once the guard trips. *)
val run : ?guard:Ucfg_exec.Guard.t -> Ucfg_cfg.Grammar.t -> result

(** [verify g res] checks the Proposition 7 guarantees against [g]'s
    materialised language: cover, balancedness, count within bound, and
    disjointness (the latter only asserted when [g] is unambiguous).
    [?packed] is forwarded to {!Cover.verify} ([~packed:false] keeps the
    string-set baseline). *)
val verify :
  ?packed:bool -> Ucfg_cfg.Grammar.t -> result -> Cover.verification * bool
