open Ucfg_lang

type t = {
  n1 : int;
  n2 : int;
  n3 : int;
  outer : Packed.t;
  middle : Packed.t;
}

let word_length t = t.n1 + t.n2 + t.n3

let pack_side len lang =
  if Lang.is_empty lang then Some (Packed.empty len)
  else if len = 0 then Some (Packed.full 0) (* non-empty at length 0 is {ε} *)
  else
    match Lang.to_packed (Lang.pack lang) with
    | Some p when Packed.length p = len -> Some p
    | Some _ | None -> None

let of_rectangle (r : Rectangle.t) =
  if r.Rectangle.n1 + r.Rectangle.n2 + r.Rectangle.n3 > Packed.max_length then
    None
  else
    match
      ( pack_side (r.Rectangle.n1 + r.Rectangle.n3) r.Rectangle.outer,
        pack_side r.Rectangle.n2 r.Rectangle.middle )
    with
    | Some outer, Some middle ->
      Some
        { n1 = r.Rectangle.n1; n2 = r.Rectangle.n2; n3 = r.Rectangle.n3;
          outer; middle }
    | _ -> None

let to_rectangle t =
  {
    Rectangle.n1 = t.n1;
    n2 = t.n2;
    n3 = t.n3;
    outer = Lang.of_packed t.outer;
    middle = Lang.of_packed t.middle;
  }

let cardinal t = Packed.cardinal t.outer * Packed.cardinal t.middle

let mem_code t c =
  let c2 = (c lsr t.n3) land ((1 lsl t.n2) - 1) in
  let co = ((c lsr (t.n2 + t.n3)) lsl t.n3) lor (c land ((1 lsl t.n3) - 1)) in
  Packed.mem_code t.middle c2 && Packed.mem_code t.outer co

let mem t w =
  String.length w = word_length t
  && String.for_all (fun ch -> ch = 'a' || ch = 'b') w
  && mem_code t (Packed.code_of_word w)

(* The sorted product: outer codes [c1 c3] sorted by [(c1, c3)] group into
   contiguous runs of equal [c1]; emitting, per run, every middle code
   against the run's [c3] suffixes yields the full codes
   [c1 · 2^(n2+n3) + c2 · 2^n3 + c3] in strictly increasing order. *)
let codes t =
  let n2 = t.n2 and n3 = t.n3 in
  let outer = Array.of_seq (Packed.codes t.outer) in
  let middle = Array.of_seq (Packed.codes t.middle) in
  let out = Array.make (Array.length outer * Array.length middle) 0 in
  let m3 = (1 lsl n3) - 1 in
  let k = ref 0 in
  let i = ref 0 in
  let len_o = Array.length outer in
  while !i < len_o do
    let c1 = outer.(!i) lsr n3 in
    let j = ref (!i + 1) in
    while !j < len_o && outer.(!j) lsr n3 = c1 do incr j done;
    Array.iter
      (fun c2 ->
         let hi = ((c1 lsl n2) lor c2) lsl n3 in
         for p = !i to !j - 1 do
           out.(!k) <- hi lor (outer.(p) land m3);
           incr k
         done)
      middle;
    i := !j
  done;
  out

let to_packed t = Packed.of_sorted_codes ~len:(word_length t) (codes t)

let arrays_disjoint a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la || j >= lb then true
    else if a.(i) = b.(j) then false
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let disjoint a b =
  if word_length a <> word_length b then true
  else if a.n1 = b.n1 && a.n2 = b.n2 then
    Packed.disjoint a.outer b.outer || Packed.disjoint a.middle b.middle
  else arrays_disjoint (codes a) (codes b)

let pp fmt t =
  Format.fprintf fmt "packed-rect(n1=%d,n2=%d,n3=%d,|L1|=%d,|L2|=%d)" t.n1 t.n2
    t.n3 (Packed.cardinal t.outer) (Packed.cardinal t.middle)
