(** Exhaustive minimal representations for tiny languages — ground truth.

    The paper's bounds are asymptotic; for very small instances we can
    compute the actual minima: the minimal DFA in polynomial time
    (Myhill–Nerode), and the minimal CNF grammar — plain or unambiguous —
    by budgeted exhaustive search over rule sets. *)

open Ucfg_word
open Ucfg_lang

(** [minimal_dfa_states alpha l] — number of states of the minimal
    complete DFA of the finite language [l]. *)
val minimal_dfa_states : Alphabet.t -> Lang.t -> int

type grammar_search = {
  minimal_size : int option;
      (** smallest CNF grammar size found, [None] if none within caps *)
  witness : Ucfg_cfg.Grammar.t option;
  nodes_explored : int;
      (** deterministic at any job count on completed runs; on an
          interrupted run, the approximate cross-domain tick count —
          scheduling-dependent, report as partial progress *)
  budget_exhausted : bool;
  interrupted : Ucfg_exec.Guard.reason option;
      (** [Some r] when the ambient or explicit guard tripped mid-search:
          the run is partial, [minimal_size]/[witness] are [None].  The
          {e kind} of reason is jobs-invariant. *)
  memo_hits : int;  (** verdict-memo hits this run (0 with [~memo:false]) *)
  memo_misses : int;  (** verdict-memo misses this run *)
  resumed : bool;  (** a valid checkpoint was loaded and continued *)
  checkpoint_written : string option;
      (** path of the checkpoint written on a guard trip, if any *)
  checkpoint_warning : string option;
      (** set when a requested resume degraded to a fresh run: the
          checkpoint was corrupt, truncated, version-mismatched, or for
          different search parameters.  Never fatal, never a wrong
          answer. *)
}

(** [checkpoint_key ?unambiguous ?max_nonterminals ?max_size ?budget
    alpha l] is a stable hex digest of the full search identity —
    parameters and target language.  Callers use it to derive a
    per-search checkpoint directory (the CLI uses
    [_repro/search/<key>]); two searches share a key exactly when a
    checkpoint written by one is resumable by the other. *)
val checkpoint_key :
  ?unambiguous:bool ->
  ?max_nonterminals:int ->
  ?max_size:int ->
  ?budget:int ->
  Alphabet.t ->
  Lang.t ->
  string

(** [minimal_cnf_size ?guard ?unambiguous ?max_nonterminals ?max_size
    ?budget ?memo ?checkpoint ?resume alpha l] searches for the smallest
    CNF grammar (rules [A -> a] of size 1 and [A -> BC] of size 2)
    accepting exactly [l]; with [unambiguous = true] (default false),
    restricts to uCFGs.

    Defaults: 3 nonterminals, size cap 12, budget 3 million nodes.
    [l] must not contain [ε].

    [guard] (default {!Ucfg_exec.Exec.current_guard}) is polled at every
    search node; when it trips, the search returns a partial record with
    [interrupted = Some _] instead of raising.  The [?budget] node cap is
    a separate, deterministic mechanism and reports through
    [budget_exhausted] as before.

    [memo] (default true) shares candidate-verdict results through a
    sharded cross-domain {!Ucfg_exec.Memo} table keyed by canonical
    grammar text, target-language digest and the unambiguity flag.
    Memo hits cost the same single search tick as misses, so the memo
    never changes [nodes_explored], the verdict, the witness, or the
    budget semantics — only wall-clock.

    [checkpoint] names a directory for a {!Ucfg_exec.Checkpoint}: when
    the guard trips mid-level, the search atomically persists its
    position (level, completed branch outcomes, replayed budget, memo
    entries) and reports the path in [checkpoint_written].  With
    [resume = true] (default false) a valid checkpoint for the same
    parameters is loaded first and the search continues where it
    stopped; completed runs delete their checkpoint.  Any damaged or
    mismatched checkpoint degrades to a fresh run with
    [checkpoint_warning] set. *)
val minimal_cnf_size :
  ?guard:Ucfg_exec.Guard.t ->
  ?unambiguous:bool ->
  ?max_nonterminals:int ->
  ?max_size:int ->
  ?budget:int ->
  ?memo:bool ->
  ?checkpoint:string ->
  ?resume:bool ->
  Alphabet.t ->
  Lang.t ->
  grammar_search
