(** Exhaustive minimal representations for tiny languages — ground truth.

    The paper's bounds are asymptotic; for very small instances we can
    compute the actual minima: the minimal DFA in polynomial time
    (Myhill–Nerode), and the minimal CNF grammar — plain or unambiguous —
    by budgeted exhaustive search over rule sets. *)

open Ucfg_word
open Ucfg_lang

(** [minimal_dfa_states alpha l] — number of states of the minimal
    complete DFA of the finite language [l]. *)
val minimal_dfa_states : Alphabet.t -> Lang.t -> int

type grammar_search = {
  minimal_size : int option;
      (** smallest CNF grammar size found, [None] if none within caps *)
  witness : Ucfg_cfg.Grammar.t option;
  nodes_explored : int;
      (** deterministic at any job count on completed runs; on an
          interrupted run, the approximate cross-domain tick count —
          scheduling-dependent, report as partial progress *)
  budget_exhausted : bool;
  interrupted : Ucfg_exec.Guard.reason option;
      (** [Some r] when the ambient or explicit guard tripped mid-search:
          the run is partial, [minimal_size]/[witness] are [None].  The
          {e kind} of reason is jobs-invariant. *)
}

(** [minimal_cnf_size ?guard ?unambiguous ?max_nonterminals ?max_size
    ?budget alpha l] searches for the smallest CNF grammar (rules
    [A -> a] of size 1 and [A -> BC] of size 2) accepting exactly [l];
    with [unambiguous = true] (default false), restricts to uCFGs.

    Defaults: 3 nonterminals, size cap 12, budget 3 million nodes.
    [l] must not contain [ε].

    [guard] (default {!Ucfg_exec.Exec.current_guard}) is polled at every
    search node; when it trips, the search returns a partial record with
    [interrupted = Some _] instead of raising.  The [?budget] node cap is
    a separate, deterministic mechanism and reports through
    [budget_exhausted] as before. *)
val minimal_cnf_size :
  ?guard:Ucfg_exec.Guard.t ->
  ?unambiguous:bool ->
  ?max_nonterminals:int ->
  ?max_size:int ->
  ?budget:int ->
  Alphabet.t ->
  Lang.t ->
  grammar_search
