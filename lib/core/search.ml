open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_automata
module G = Grammar

let minimal_dfa_states alpha l =
  let nfa = Nfa.of_word_list alpha (Lang.elements l) in
  Dfa.state_count (Determinize.minimal_dfa nfa)

type grammar_search = {
  minimal_size : int option;
  witness : G.t option;
  nodes_explored : int;
  budget_exhausted : bool;
  interrupted : Ucfg_exec.Guard.reason option;
}

(* The search fans out over the top-level rule-set frontier: for each
   nonterminal count [k] and each candidate rule index [i], one branch
   explores exactly the rule sets whose lowest-index rule is [i].  In
   (k, i) order the branches partition the level exactly as the
   sequential include-first backtracking does, so replaying the branch
   outcomes in that order reproduces the sequential verdict — witness,
   node count and budget behaviour included — for any number of domains:

   - every branch runs against the level's remaining budget as a local
     cap, so no branch does more work than a sequential run could;
   - the replay walks the outcomes in frontier order, accumulating each
     branch's deterministic tick count, and declares the budget exhausted
     at exactly the branch where the sequential counter would have
     overflowed;
   - a branch that finds a witness or hits the cap publishes its rank, and
     branches strictly to the right abort — their outcomes are never
     consulted by the replay, so cancellation affects wall-clock only. *)
type branch_outcome =
  | Found of G.t * int  (* witness and ticks spent reaching it *)
  | Exhausted of int    (* subtree fully explored, ticks spent *)
  | Capped              (* ran out of the level's remaining budget *)
  | Cancelled           (* aborted: an earlier branch terminated the level *)

exception Branch_capped
exception Branch_cancelled

let rec publish_rank terminal rank =
  let cur = Atomic.get terminal in
  if rank < cur && not (Atomic.compare_and_set terminal cur rank) then
    publish_rank terminal rank

let minimal_cnf_size ?guard ?(unambiguous = false) ?(max_nonterminals = 3)
    ?(max_size = 12) ?(budget = 3_000_000) alpha l =
  if Lang.mem "" l then invalid_arg "Search.minimal_cnf_size: ε not supported";
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  (* raw count of branch ticks across all domains — the partial progress
     reported when the guard interrupts the search mid-level.  Unlike the
     replayed [consumed] counter it is scheduling-dependent, and the
     callers label it as approximate. *)
  let explored = Atomic.make 0 in
  let max_word_len =
    List.fold_left max 0 (Lang.lengths l)
  in
  (* the candidate rule universe for k nonterminals, with costs *)
  let rules_for k =
    let terminal =
      List.concat_map
        (fun a ->
           List.map (fun c -> ({ G.lhs = a; rhs = [ G.T c ] }, 1))
             (Alphabet.chars alpha))
        (Ucfg_util.Prelude.range 0 k)
    in
    let binary =
      List.concat_map
        (fun a ->
           List.concat_map
             (fun b ->
                List.map
                  (fun c -> ({ G.lhs = a; rhs = [ G.N b; G.N c ] }, 2))
                  (Ucfg_util.Prelude.range 0 k))
             (Ucfg_util.Prelude.range 0 k))
        (Ucfg_util.Prelude.range 0 k)
    in
    Array.of_list (terminal @ binary)
  in
  let names k = Array.init k (fun i -> Printf.sprintf "N%d" i) in
  let accepts_exactly ~tick rules k =
    tick ();
    let g = G.make ~alphabet:alpha ~names:(names k) ~rules ~start:0 in
    match
      Analysis.language ~guard ~max_len:max_word_len
        ~max_card:(4 * Lang.cardinal l + 16) g
    with
    | Error _ -> false
    | Ok lg ->
      Lang.equal lg l
      && (not unambiguous
          || (Analysis.has_finitely_many_trees g
              && Ambiguity.is_unambiguous ~guard g))
  in
  (* all rule sets of cost exactly [s] over [universe] whose first rule is
     [first]; ticks are branch-local so the count is schedule-independent *)
  let run_branch ~k ~universe ~s ~cap ~terminal ~rank ~first () =
    let ticks = ref 0 in
    let tick () =
      Ucfg_exec.Guard.tick guard;
      Atomic.incr explored;
      if Atomic.get terminal < rank then raise Branch_cancelled;
      incr ticks;
      if !ticks > cap then raise Branch_capped
    in
    let len = Array.length universe in
    let rec dfs idx remaining chosen =
      tick ();
      if remaining = 0 then begin
        if accepts_exactly ~tick (List.rev chosen) k then
          Some
            (G.make ~alphabet:alpha ~names:(names k) ~rules:(List.rev chosen)
               ~start:0)
        else None
      end
      else if idx >= len then None
      else begin
        let rule, cost = universe.(idx) in
        let hit =
          if cost <= remaining then dfs (idx + 1) (remaining - cost) (rule :: chosen)
          else None
        in
        match hit with Some _ -> hit | None -> dfs (idx + 1) remaining chosen
      end
    in
    let rule, cost = universe.(first) in
    match dfs (first + 1) (s - cost) [ rule ] with
    | Some g ->
      publish_rank terminal rank;
      Found (g, !ticks)
    | None -> Exhausted !ticks
    | exception Branch_capped ->
      publish_rank terminal rank;
      Capped
    | exception Branch_cancelled -> Cancelled
  in
  let consumed = ref 0 in
  let out_of_budget = ref false in
  let run_level s =
    let cap = budget - !consumed in
    let terminal = Atomic.make max_int in
    let branches =
      List.concat_map
        (fun k ->
           let universe = rules_for k in
           List.filter_map
             (fun i ->
                if snd universe.(i) <= s then Some (k, universe, i) else None)
             (Ucfg_util.Prelude.range 0 (Array.length universe)))
        (Ucfg_util.Prelude.range_incl 1 max_nonterminals)
    in
    let outcomes =
      Ucfg_exec.Exec.run_list
        (List.mapi
           (fun rank (k, universe, first) ->
              run_branch ~k ~universe ~s ~cap ~terminal ~rank ~first)
           branches)
    in
    let rec replay = function
      | [] -> None
      | Found (g, t) :: _ ->
        if !consumed + t <= budget then begin
          consumed := !consumed + t;
          Some g
        end
        else begin
          out_of_budget := true;
          None
        end
      | Exhausted t :: rest ->
        if !consumed + t <= budget then begin
          consumed := !consumed + t;
          replay rest
        end
        else begin
          out_of_budget := true;
          None
        end
      | Capped :: _ ->
        out_of_budget := true;
        None
      | Cancelled :: _ ->
        (* unreachable: a cancelled branch is always preceded in frontier
           order by a Found or Capped branch, where the replay stops *)
        assert false
    in
    replay outcomes
  in
  let rec over_sizes s =
    if s > max_size then
      { minimal_size = None; witness = None; nodes_explored = !consumed;
        budget_exhausted = false; interrupted = None }
    else
      match run_level s with
      | Some g ->
        { minimal_size = Some s; witness = Some g; nodes_explored = !consumed;
          budget_exhausted = false; interrupted = None }
      | None when !out_of_budget ->
        (* the sequential counter raises the moment it passes the budget *)
        { minimal_size = None; witness = None; nodes_explored = budget + 1;
          budget_exhausted = true; interrupted = None }
      | None -> over_sizes (s + 1)
  in
  (* a tripped guard unwinds every branch with the same root reason (the
     pool reraises the first in frontier order); the partial node count is
     what the cross-domain counter had seen by then *)
  try over_sizes 1
  with Ucfg_exec.Guard.Interrupt r ->
    { minimal_size = None; witness = None;
      nodes_explored = Atomic.get explored; budget_exhausted = false;
      interrupted = Some r }
