open Ucfg_word
open Ucfg_lang
open Ucfg_cfg
open Ucfg_automata
module G = Grammar
module Memo = Ucfg_exec.Memo
module Checkpoint = Ucfg_exec.Checkpoint

let minimal_dfa_states alpha l =
  let nfa = Nfa.of_word_list alpha (Lang.elements l) in
  Dfa.state_count (Determinize.minimal_dfa nfa)

type grammar_search = {
  minimal_size : int option;
  witness : G.t option;
  nodes_explored : int;
  budget_exhausted : bool;
  interrupted : Ucfg_exec.Guard.reason option;
  memo_hits : int;
  memo_misses : int;
  resumed : bool;
  checkpoint_written : string option;
  checkpoint_warning : string option;
}

(* The search fans out over the top-level rule-set frontier: for each
   nonterminal count [k] and each candidate rule index [i], one branch
   explores exactly the rule sets whose lowest-index rule is [i].  In
   (k, i) order the branches partition the level exactly as the
   sequential include-first backtracking does, so replaying the branch
   outcomes in that order reproduces the sequential verdict — witness,
   node count and budget behaviour included — for any number of domains:

   - every branch runs against the level's remaining budget as a local
     cap, so no branch does more work than a sequential run could;
   - the replay walks the outcomes in frontier order, accumulating each
     branch's deterministic tick count, and declares the budget exhausted
     at exactly the branch where the sequential counter would have
     overflowed;
   - a branch that finds a witness or hits the cap publishes its rank, and
     branches strictly to the right abort — their outcomes are never
     consulted by the replay, so cancellation affects wall-clock only.

   Two layers ride on that determinism:

   - a sharded cross-domain memo table over [accepts_exactly] verdicts,
     keyed by MD5 of the candidate's canonical text, the target language
     digest and the unambiguity flag.  A memo hit costs the same single
     tick as a miss, so [nodes_explored] and the budget replay are
     byte-identical with the memo on, off, cold or warm, at any job
     count — the memo only moves wall-clock;
   - a branch interrupted by the resource guard reports [Guarded] instead
     of unwinding the level, so completed sibling outcomes survive the
     trip and can be checkpointed.  Branch outcomes are deterministic
     functions of (level, rank, cap), which makes them safe to reload in
     a later process: the resumed replay is indistinguishable from one
     that computed every branch itself. *)
type branch_outcome =
  | Found of G.t * int  (* witness and ticks spent reaching it *)
  | Exhausted of int    (* subtree fully explored, ticks spent *)
  | Capped              (* ran out of the level's remaining budget *)
  | Cancelled           (* aborted: an earlier branch terminated the level *)
  | Guarded of Ucfg_exec.Guard.reason
      (* the resource guard tripped inside this branch: no outcome *)

exception Branch_capped
exception Branch_cancelled

let rec publish_rank terminal rank =
  let cur = Atomic.get terminal in
  if rank < cur && not (Atomic.compare_and_set terminal cur rank) then
    publish_rank terminal rank

let names k = Array.init k (fun i -> Printf.sprintf "N%d" i)

(* --- checkpoint payload codec --------------------------------------------- *)

exception Corrupt_payload

(* CNF rules as one space-free token per rule: [T<lhs>.<charcode>] or
   [B<lhs>.<B>.<C>], ';'-joined.  Reconstruction through [G.make] with the
   same N0..Nk-1 names makes a reloaded witness byte-identical to the one
   the interrupted run would have returned. *)
let encode_rules rules =
  String.concat ";"
    (List.map
       (fun { G.lhs; rhs } ->
          match rhs with
          | [ G.T c ] -> Printf.sprintf "T%d.%d" lhs (Char.code c)
          | [ G.N b; G.N c ] -> Printf.sprintf "B%d.%d.%d" lhs b c
          | _ -> invalid_arg "Search: non-CNF rule in checkpoint")
       rules)

let decode_rules text =
  List.map
    (fun item ->
       if item = "" then raise Corrupt_payload;
       let body = String.sub item 1 (String.length item - 1) in
       match (item.[0], String.split_on_char '.' body) with
       | 'T', [ lhs; code ] ->
         { G.lhs = int_of_string lhs; rhs = [ G.T (Char.chr (int_of_string code)) ] }
       | 'B', [ lhs; b; c ] ->
         { G.lhs = int_of_string lhs;
           rhs = [ G.N (int_of_string b); G.N (int_of_string c) ] }
       | _ -> raise Corrupt_payload)
    (String.split_on_char ';' text)

(* the parameter line doubles as the checkpoint identity: a resumed run
   with any differing parameter (or target language) degrades to fresh *)
let params_line ~unambiguous ~max_nonterminals ~max_size ~budget alpha digest =
  Printf.sprintf "params cnf %b %d %d %d %s %s" unambiguous max_nonterminals
    max_size budget
    (String.concat "."
       (List.map (fun c -> string_of_int (Char.code c)) (Alphabet.chars alpha)))
    digest

let checkpoint_key ?(unambiguous = false) ?(max_nonterminals = 3)
    ?(max_size = 12) ?(budget = 3_000_000) alpha l =
  Digest.to_hex
    (Digest.string
       (params_line ~unambiguous ~max_nonterminals ~max_size ~budget alpha
          (Lang.digest l)))

let minimal_cnf_size ?guard ?(unambiguous = false) ?(max_nonterminals = 3)
    ?(max_size = 12) ?(budget = 3_000_000) ?(memo = true) ?checkpoint
    ?(resume = false) alpha l =
  if Lang.mem "" l then invalid_arg "Search.minimal_cnf_size: ε not supported";
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  (* raw count of branch ticks across all domains — the partial progress
     reported when the guard interrupts the search mid-level.  Unlike the
     replayed [consumed] counter it is scheduling-dependent, and the
     callers label it as approximate. *)
  let explored = Atomic.make 0 in
  let max_word_len =
    List.fold_left max 0 (Lang.lengths l)
  in
  let target_digest = Lang.digest l in
  let params =
    params_line ~unambiguous ~max_nonterminals ~max_size ~budget alpha
      target_digest
  in
  let memo_tbl = if memo then Some (Memo.create ()) else None in
  (* the candidate rule universe for k nonterminals, with costs; built once
     per search — the universes depend only on k, never on the size level *)
  let rules_for k =
    let terminal =
      List.concat_map
        (fun a ->
           List.map (fun c -> ({ G.lhs = a; rhs = [ G.T c ] }, 1))
             (Alphabet.chars alpha))
        (Ucfg_util.Prelude.range 0 k)
    in
    let binary =
      List.concat_map
        (fun a ->
           List.concat_map
             (fun b ->
                List.map
                  (fun c -> ({ G.lhs = a; rhs = [ G.N b; G.N c ] }, 2))
                  (Ucfg_util.Prelude.range 0 k))
             (Ucfg_util.Prelude.range 0 k))
        (Ucfg_util.Prelude.range 0 k)
    in
    Array.of_list (terminal @ binary)
  in
  let universes = Array.init (max_nonterminals + 1) rules_for in
  let accepts_exactly ~tick rules k =
    tick ();
    let g = G.make ~alphabet:alpha ~names:(names k) ~rules ~start:0 in
    let decide () =
      match
        Analysis.language ~guard ~max_len:max_word_len
          ~max_card:(4 * Lang.cardinal l + 16) g
      with
      | Error _ -> false
      | Ok lg ->
        Lang.equal lg l
        && (not unambiguous
            || (Analysis.has_finitely_many_trees g
                && Ambiguity.is_unambiguous ~guard g))
    in
    match memo_tbl with
    | None -> decide ()
    | Some m ->
      (* Canon-identical candidates share one verdict across branches,
         nonterminal counts, domains and resumed runs; the single tick
         above is paid either way, so the memo is invisible to the
         deterministic node accounting *)
      let key =
        Digest.to_hex
          (Digest.string
             (String.concat "\x00"
                [ Canon.canonical g; target_digest;
                  (if unambiguous then "u" else "p") ]))
      in
      (match Memo.find m key with
       | Some v -> v = "1"
       | None ->
         let v = decide () in
         Memo.set m key (if v then "1" else "0");
         v)
  in
  (* all rule sets of cost exactly [s] over [universe] whose first rule is
     [first]; ticks are branch-local so the count is schedule-independent *)
  let run_branch ~k ~universe ~s ~cap ~terminal ~rank ~first () =
    let ticks = ref 0 in
    let tick () =
      Ucfg_exec.Guard.tick guard;
      Atomic.incr explored;
      if Atomic.get terminal < rank then raise Branch_cancelled;
      incr ticks;
      if !ticks > cap then raise Branch_capped
    in
    let len = Array.length universe in
    let rec dfs idx remaining chosen =
      tick ();
      if remaining = 0 then begin
        if accepts_exactly ~tick (List.rev chosen) k then
          Some
            (G.make ~alphabet:alpha ~names:(names k) ~rules:(List.rev chosen)
               ~start:0)
        else None
      end
      else if idx >= len then None
      else begin
        let rule, cost = universe.(idx) in
        let hit =
          if cost <= remaining then dfs (idx + 1) (remaining - cost) (rule :: chosen)
          else None
        in
        match hit with Some _ -> hit | None -> dfs (idx + 1) remaining chosen
      end
    in
    let rule, cost = universe.(first) in
    match dfs (first + 1) (s - cost) [ rule ] with
    | Some g ->
      publish_rank terminal rank;
      Found (g, !ticks)
    | None -> Exhausted !ticks
    | exception Branch_capped ->
      publish_rank terminal rank;
      Capped
    | exception Branch_cancelled -> Cancelled
    | exception Ucfg_exec.Guard.Interrupt r ->
      (* keep the level alive: completed siblings still report, and the
         checkpoint below records them.  The root reason is CAS-recorded,
         so every Guarded branch carries the same kind. *)
      Guarded r
  in
  (* --- checkpoint load ---------------------------------------------------- *)
  let parse_payload payload =
    match String.split_on_char '\n' payload with
    | p :: rest when p = params ->
      (try
         let consumed0 = ref 0 and level0 = ref 0 in
         let outcomes : (int, branch_outcome) Hashtbl.t = Hashtbl.create 64 in
         let memo_entries = ref [] in
         List.iter
           (fun line ->
              match String.split_on_char ' ' line with
              | [] | [ "" ] -> ()
              | [ "consumed"; n ] -> consumed0 := int_of_string n
              | [ "level"; s ] -> level0 := int_of_string s
              | [ "outcome"; rank; "E"; t ] ->
                Hashtbl.replace outcomes (int_of_string rank)
                  (Exhausted (int_of_string t))
              | [ "outcome"; rank; "C" ] ->
                Hashtbl.replace outcomes (int_of_string rank) Capped
              | [ "outcome"; rank; "F"; t; k; rules ] ->
                let k = int_of_string k in
                let g =
                  G.make ~alphabet:alpha ~names:(names k)
                    ~rules:(decode_rules rules) ~start:0
                in
                Hashtbl.replace outcomes (int_of_string rank)
                  (Found (g, int_of_string t))
              | [ "memo"; key; v ] -> memo_entries := (key, v) :: !memo_entries
              | _ -> raise Corrupt_payload)
           rest;
         if !level0 < 1 || !level0 > max_size || !consumed0 < 0 then
           raise Corrupt_payload;
         Ok (!consumed0, !level0, outcomes, List.rev !memo_entries)
       with Corrupt_payload | Failure _ | Invalid_argument _ ->
         Error "unparseable checkpoint payload")
    | _ -> Error "parameter mismatch (different search or library version)"
  in
  let loaded_level = ref None in
  let loaded_consumed = ref 0 in
  let was_resumed = ref false in
  let warning = ref None in
  (match checkpoint with
   | Some dir when resume -> (
       match Checkpoint.load ~dir with
       | Checkpoint.Absent -> ()
       | Checkpoint.Invalid reason -> warning := Some reason
       | Checkpoint.Loaded payload -> (
           match parse_payload payload with
           | Ok (consumed0, level0, outcomes, memo_entries) ->
             loaded_consumed := consumed0;
             loaded_level := Some (level0, outcomes);
             (match memo_tbl with
              | Some m -> Memo.add_entries m memo_entries
              | None -> ());
             was_resumed := true
           | Error reason -> warning := Some reason))
   | _ -> ());
  let consumed = ref !loaded_consumed in
  let empty_stored : (int, branch_outcome) Hashtbl.t = Hashtbl.create 1 in
  let run_level ~stored s =
    let level_start = !consumed in
    let cap = budget - level_start in
    let branches =
      List.concat_map
        (fun k ->
           let universe = universes.(k) in
           List.filter_map
             (fun i ->
                if snd universe.(i) <= s then Some (k, universe, i) else None)
             (Ucfg_util.Prelude.range 0 (Array.length universe)))
        (Ucfg_util.Prelude.range_incl 1 max_nonterminals)
    in
    (* the lowest checkpointed terminal rank: fresh branches strictly to
       its right can never be consulted by the replay, so they are not
       even scheduled *)
    let stored_terminal =
      Hashtbl.fold
        (fun rank o acc ->
           match o with Found _ | Capped -> min rank acc | _ -> acc)
        stored max_int
    in
    let terminal = Atomic.make stored_terminal in
    let outcomes =
      Ucfg_exec.Exec.run_list
        (List.mapi
           (fun rank (k, universe, first) () ->
              match Hashtbl.find_opt stored rank with
              | Some o -> o
              | None ->
                if rank > stored_terminal then Cancelled
                else run_branch ~k ~universe ~s ~cap ~terminal ~rank ~first ())
           branches)
    in
    let rec replay acc = function
      | [] -> `Exhausted acc
      | Found (g, t) :: _ ->
        if acc + t <= cap then `Found (g, acc + t) else `Out_of_budget
      | Exhausted t :: rest ->
        if acc + t <= cap then replay (acc + t) rest else `Out_of_budget
      | Capped :: _ -> `Out_of_budget
      | Guarded r :: _ -> `Guarded r
      | Cancelled :: _ ->
        (* unreachable: a cancelled branch is always preceded in frontier
           order by a Found or Capped branch, where the replay stops *)
        assert false
    in
    match replay 0 outcomes with
    | `Found (g, d) ->
      consumed := level_start + d;
      `Found g
    | `Exhausted d ->
      consumed := level_start + d;
      `Done
    | `Out_of_budget -> `Out_of_budget
    | `Guarded r ->
      (* [consumed] still holds the level-start value: an incomplete level
         commits nothing, the resumed replay re-accounts it in full *)
      `Guarded (r, outcomes)
  in
  let write_checkpoint s outcomes =
    match checkpoint with
    | None -> None
    | Some dir ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf params;
      Buffer.add_char buf '\n';
      Printf.bprintf buf "consumed %d\nlevel %d\n" !consumed s;
      List.iteri
        (fun rank o ->
           match o with
           | Exhausted t -> Printf.bprintf buf "outcome %d E %d\n" rank t
           | Capped -> Printf.bprintf buf "outcome %d C\n" rank
           | Found (g, t) ->
             Printf.bprintf buf "outcome %d F %d %d %s\n" rank t
               (G.nonterminal_count g)
               (encode_rules (G.rules g))
           | Cancelled | Guarded _ ->
             (* scheduling-dependent non-outcomes are never persisted *)
             ())
        outcomes;
      (match memo_tbl with
       | Some m ->
         List.iter
           (fun (k, v) -> Printf.bprintf buf "memo %s %s\n" k v)
           (Memo.entries m)
       | None -> ());
      Some (Checkpoint.save ~dir (Buffer.contents buf))
  in
  let memo_counts () =
    match memo_tbl with
    | Some m ->
      let s = Memo.stats m in
      (s.Memo.hits, s.Memo.misses)
    | None -> (0, 0)
  in
  let finish ~minimal_size ~witness ~budget_exhausted ~nodes =
    (match checkpoint with Some dir -> Checkpoint.clear ~dir | None -> ());
    let hits, misses = memo_counts () in
    { minimal_size; witness; nodes_explored = nodes; budget_exhausted;
      interrupted = None; memo_hits = hits; memo_misses = misses;
      resumed = !was_resumed; checkpoint_written = None;
      checkpoint_warning = !warning }
  in
  let interrupted_result reason checkpoint_written =
    let hits, misses = memo_counts () in
    { minimal_size = None; witness = None;
      nodes_explored = Atomic.get explored; budget_exhausted = false;
      interrupted = Some reason; memo_hits = hits; memo_misses = misses;
      resumed = !was_resumed; checkpoint_written;
      checkpoint_warning = !warning }
  in
  let start_level =
    match !loaded_level with Some (s0, _) -> s0 | None -> 1
  in
  let rec over_sizes s =
    if s > max_size then
      finish ~minimal_size:None ~witness:None ~budget_exhausted:false
        ~nodes:!consumed
    else begin
      let stored =
        match !loaded_level with
        | Some (s0, tbl) when s0 = s -> tbl
        | _ -> empty_stored
      in
      match run_level ~stored s with
      | `Found g ->
        finish ~minimal_size:(Some s) ~witness:(Some g)
          ~budget_exhausted:false ~nodes:!consumed
      | `Out_of_budget ->
        (* the sequential counter raises the moment it passes the budget *)
        finish ~minimal_size:None ~witness:None ~budget_exhausted:true
          ~nodes:(budget + 1)
      | `Guarded (r, outcomes) ->
        interrupted_result r (write_checkpoint s outcomes)
      | `Done -> over_sizes (s + 1)
    end
  in
  (* branches catch their own Interrupts; this backstop covers a trip in
     the orchestration itself (no level in flight, nothing to checkpoint) *)
  try over_sizes start_level
  with Ucfg_exec.Guard.Interrupt r -> interrupted_result r None
