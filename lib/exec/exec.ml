(* The process-wide pool behind the library's parallel hot paths.

   The job count resolves, in order, to: the last [set_jobs] call (the
   CLI's [--jobs] flag and the bench harness both land here), the
   [UCFG_JOBS] environment variable, and finally
   [Domain.recommended_domain_count () - 1].  With a resolved count of 1
   every combinator takes the sequential path, and because all merges are
   ordered the results are bit-identical at any count — callers never
   need to care which path ran.

   The pool is created lazily on first use and rebuilt when the job count
   changes, so flipping [set_jobs] mid-process (as the determinism tests
   do) is cheap and leak-free.  Creation and rebuild are serialised by a
   mutex: the serve daemon's connection workers ([Workq] threads) may
   submit batches concurrently, and the first two must not race a double
   pool into existence.  [set_jobs] mid-flight is still the caller's
   responsibility to sequence against running batches. *)

let override = ref None
let pool_ref = ref None
let pool_lock = Mutex.create ()

let jobs () =
  match !override with
  | Some j -> j
  | None -> Pool.default_jobs ()

let set_jobs j = override := Some (max 1 j)

let pool () =
  Mutex.lock pool_lock;
  let p =
    let wanted = jobs () in
    match !pool_ref with
    | Some p when Pool.jobs p = wanted -> p
    | existing ->
      Option.iter Pool.shutdown existing;
      let p = Pool.create ~jobs:wanted () in
      pool_ref := Some p;
      p
  in
  Mutex.unlock pool_lock;
  p

(* joined workers cannot outlive the process: exit paths through at_exit
   stop the pool cleanly *)
let () =
  at_exit (fun () ->
      Mutex.lock pool_lock;
      Option.iter Pool.shutdown !pool_ref;
      pool_ref := None;
      Mutex.unlock pool_lock)

(* --- ambient guard ------------------------------------------------------- *)

(* The process-wide resource guard, defaulting to the never-trips
   [Guard.unlimited].  Library entry points take an optional [?guard] and
   fall back to this, so the CLI installs one guard per invocation
   ([--timeout]/[--budget]) and every layer below polls it without any
   plumbing.  Installed before work is fanned out and read through an
   Atomic, so worker domains always observe it. *)
let guard_state = Atomic.make Guard.unlimited

let current_guard () = Atomic.get guard_state
let set_guard g = Atomic.set guard_state g

let with_guard g f =
  let saved = current_guard () in
  set_guard g;
  Fun.protect ~finally:(fun () -> set_guard saved) f

let run_list thunks = Pool.run_list (pool ()) thunks
let parallel_map f xs = Pool.map (pool ()) f xs

let parallel_map_reduce ~map ~reduce init xs =
  Pool.map_reduce (pool ()) ~map ~reduce init xs

let parallel_find_map f xs = Pool.find_map (pool ()) f xs

(* pool-sized contiguous chunks, for callers that parallelise work whose
   per-item results are not independent values (e.g. set unions) *)
let chunks xs = Pool.chunks (pool ()) xs
