(** A bounded work queue served by a fixed set of POSIX threads.

    {!Pool} runs CPU-bound batches on domains; this is its small sibling
    for {e I/O-bound} units of work — the serve daemon's connections —
    where a worker spends most of its life blocked in [read]/[write] and
    a domain apiece would be waste.  Worker threads live in the spawning
    domain, so library code they call still fans out over the domain
    pool (they are not {!Pool} workers).

    The queue is the admission-control point: {!push} never blocks and
    never queues unboundedly — when [capacity] items are already waiting
    it refuses, and the caller sheds the item (the daemon answers
    "server busy" and closes).  {!stop} halts intake and hands the
    not-yet-started items back to the caller for disposal; workers
    finish the item they are on.  Handlers are expected to catch their
    own exceptions; one that escapes is swallowed (and counted) rather
    than killing the worker thread. *)

type 'a t

(** [create ~workers ~capacity handler] spawns [workers] threads (at
    least 1) that pop items and run [handler] on each.  [capacity]
    bounds the {e waiting} queue (at least 1): up to [workers] items in
    service plus [capacity] queued. *)
val create : workers:int -> capacity:int -> ('a -> unit) -> 'a t

val workers : 'a t -> int

(** [push t x] enqueues [x] unless the queue is full or stopped —
    [false] means [x] was {e not} accepted and the caller must dispose
    of it. *)
val push : 'a t -> 'a -> bool

(** [busy t] is the number of workers currently inside the handler;
    [queued t] the number of accepted items not yet started. *)
val busy : 'a t -> int

val queued : 'a t -> int

(** [swallowed t] counts handler exceptions that escaped (each one a
    handler bug: the daemon's handler catches everything itself). *)
val swallowed : 'a t -> int

(** [stop t] halts intake and returns the queued-but-unstarted items in
    arrival order; workers exit once their current item finishes.
    Idempotent — later calls return []. *)
val stop : 'a t -> 'a list

(** [await_idle t ~deadline] polls until no worker is inside the handler
    and nothing is queued, or [Unix.gettimeofday () >= deadline];
    [true] on idle. *)
val await_idle : 'a t -> deadline:float -> bool

(** [join t] joins the worker threads.  Only meaningful after {!stop};
    blocks for as long as the slowest in-flight handler runs. *)
val join : 'a t -> unit
