(** Self-verifying search checkpoints.

    A checkpoint is a single file [dir/checkpoint] holding one opaque
    payload behind the same header discipline as the serve disk cache:
    [ucfg-search v1 <md5> <len>] followed by exactly [len] payload
    bytes.  {!save} writes to a unique temp file and renames — atomic on
    POSIX, so a reader (or a concurrent writer) sees the old checkpoint
    or the new one, never a splice.  {!load} re-verifies everything: a
    missing header, an unknown magic or version, a length mismatch, a
    digest mismatch, or trailing garbage all degrade to {!Invalid} — the
    caller restarts from scratch with a warning, it never resumes from a
    damaged state.

    Payload syntax and versioning-on-meaning are the caller's problem:
    searches prepend a parameter line to the payload and treat a
    mismatch as {e their} invalidity.  Bumping the format version here
    invalidates every existing checkpoint at once, by design. *)

type load =
  | Loaded of string  (** the verified payload *)
  | Absent  (** no checkpoint file *)
  | Invalid of string  (** damaged or version-mismatched; the reason *)

(** [file ~dir] is the checkpoint path [dir/checkpoint]. *)
val file : dir:string -> string

(** [save ~dir payload] creates [dir] as needed and atomically writes the
    checkpoint; returns the path written. *)
val save : dir:string -> string -> string

val load : dir:string -> load

(** [clear ~dir] removes the checkpoint file if present (best-effort). *)
val clear : dir:string -> unit
