(* Deterministic fault injection, keyed on a submission-order ordinal.

   The decision for a task is a pure function of (seed, ordinal): the
   orchestrating domain assigns ordinals while enqueuing, so two runs with
   the same seed and the same task sequence inject at the same points
   regardless of how workers interleave. *)

exception Injected_fault of int

type config = { seed : int; rate : float }

let env_var = "UCFG_CHAOS"

let parse s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let seed = String.sub s 0 i
    and rate = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt seed, float_of_string_opt rate) with
    | Some seed, Some rate when rate >= 0. && rate <= 1. ->
      Some { seed; rate }
    | _ -> None)

let state =
  Atomic.make
    (match Sys.getenv_opt env_var with None -> None | Some s -> parse s)

let config () = Atomic.get state
let set c = Atomic.set state c
let enabled () = Option.is_some (config ())

let counter = Atomic.make 0
let faults = Atomic.make 0
let delays = Atomic.make 0
let faults_injected () = Atomic.get faults
let delays_injected () = Atomic.get delays

let draw () = if enabled () then Atomic.fetch_and_add counter 1 else 0

(* splitmix mixing of seed and ordinal; one stream per task *)
let decision { seed; rate } ord =
  let rng = Ucfg_util.Rng.create (seed + (ord * 0x2545F4914F6CDD1D)) in
  let r = Ucfg_util.Rng.float rng in
  if r < rate then `Fault
  else if r < 2. *. rate then `Delay (500 + Ucfg_util.Rng.int rng 4500)
  else `Pass

let burn spins =
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let prelude ord =
  match config () with
  | None -> ()
  | Some c -> (
    match decision c ord with
    | `Pass -> ()
    | `Delay spins ->
      Atomic.incr delays;
      burn spins
    | `Fault ->
      Atomic.incr faults;
      raise (Injected_fault ord))
