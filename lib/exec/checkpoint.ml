(* Self-verifying checkpoint files; see the mli for the contract. *)

type load = Loaded of string | Absent | Invalid of string

let magic = "ucfg-search v1"

let file ~dir = Filename.concat dir "checkpoint"

let mkdir_p path =
  let rec ensure p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      ensure (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  ensure path

(* distinct temp names per writer: pid for cross-process, a counter for
   cross-domain *)
let tmp_counter = Atomic.make 0

let save ~dir payload =
  mkdir_p dir;
  let path = file ~dir in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
       Printf.fprintf oc "%s %s %d\n" magic
         (Digest.to_hex (Digest.string payload))
         (String.length payload);
       output_string oc payload);
  Unix.rename tmp path;
  path

let load ~dir =
  let path = file ~dir in
  match open_in_bin path with
  | exception Sys_error _ -> Absent
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         match input_line ic with
         | exception End_of_file -> Invalid "empty file"
         | header -> (
             match String.split_on_char ' ' header with
             | [ m1; m2; digest; len_text ] when m1 ^ " " ^ m2 = magic -> (
                 match int_of_string_opt len_text with
                 | None -> Invalid "malformed length"
                 | Some len when len < 0 -> Invalid "malformed length"
                 | Some len -> (
                     match really_input_string ic len with
                     | exception End_of_file -> Invalid "truncated payload"
                     | payload ->
                       if pos_in ic <> in_channel_length ic then
                         Invalid "trailing garbage"
                       else if
                         Digest.to_hex (Digest.string payload) <> digest
                       then Invalid "digest mismatch"
                       else Loaded payload))
             | _ -> Invalid "unknown header or version"))

let clear ~dir =
  try Sys.remove (file ~dir) with Sys_error _ -> ()
