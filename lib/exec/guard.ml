(* Cooperative resource governance shared across domains.

   The tripped flag is the single source of truth: whichever domain first
   observes an exhausted resource CASes the reason in, and every later
   poll — on any domain — raises [Interrupt] with that recorded root
   reason.  That makes the *kind* of outcome jobs-invariant even though
   which domain trips first, and how many ticks were consumed by then, are
   scheduling-dependent. *)

type reason = Timeout | Budget | Cancel

exception Interrupt of reason

type t = {
  deadline : float option;  (* absolute Unix.gettimeofday *)
  budget : int option;
  active : bool;  (* skip counting and clock reads when nothing can trip *)
  ticks : int Atomic.t;
  tripped : reason option Atomic.t;
}

let unlimited =
  {
    deadline = None;
    budget = None;
    active = false;
    ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

let create ?timeout ?budget () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    budget;
    active = budget <> None || timeout <> None;
    ticks = Atomic.make 0;
    tripped = Atomic.make None;
  }

(* first reason in wins; losers re-read the winner below *)
let trip t r = ignore (Atomic.compare_and_set t.tripped None (Some r))

let fail t r =
  trip t r;
  match Atomic.get t.tripped with
  | Some r -> raise (Interrupt r)
  | None -> assert false

let raise_if_tripped t =
  match Atomic.get t.tripped with
  | Some r -> raise (Interrupt r)
  | None -> ()

(* reading the clock on every tick would dominate tight loops; every 64th
   tick keeps the deadline precision well under the ~2 s CLI requirement
   because the governed loops all tick at sub-millisecond granularity *)
let clock_mask = 63

let over_deadline t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () > d
  | None -> false

let tick t =
  raise_if_tripped t;
  if t.active then begin
    let n = Atomic.fetch_and_add t.ticks 1 + 1 in
    (match t.budget with
     | Some b when n > b -> fail t Budget
     | Some _ | None -> ());
    if n land clock_mask = 1 && over_deadline t then fail t Timeout
  end

let check t =
  raise_if_tripped t;
  if over_deadline t then fail t Timeout

let cancel t = if t != unlimited then trip t Cancel
let tripped t = Atomic.get t.tripped
let ticks t = Atomic.get t.ticks

type ('a, 'p) outcome =
  | Done of 'a
  | Timed_out of 'p
  | Budget_exhausted of 'p
  | Cancelled of 'p

let capture t ~partial f =
  match f () with
  | v -> Done v
  | exception Interrupt r ->
    (* make sure the guard is tripped for any still-running siblings even
       if the interrupt came from a nested guard-free raise *)
    trip t r;
    let p = partial () in
    (match r with
     | Timeout -> Timed_out p
     | Budget -> Budget_exhausted p
     | Cancel -> Cancelled p)

let reason_code = function
  | Timeout -> "timeout"
  | Budget -> "budget"
  | Cancel -> "cancelled"

let describe = function
  | Timeout -> "wall-clock deadline exceeded"
  | Budget -> "tick budget exhausted"
  | Cancel -> "cancelled"
