(* Sharded memo table; see the mli for the contract. *)

type shard = {
  mutex : Mutex.t;
  tbl : (string, string) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
}

type t = { shards : shard array; mask : int }

type stats = { hits : int; misses : int; inserts : int }

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

let create ?(shards = 16) () =
  let n = pow2_at_least (max 1 shards) 1 in
  {
    shards =
      Array.init n (fun _ ->
          {
            mutex = Mutex.create ();
            tbl = Hashtbl.create 64;
            hits = 0;
            misses = 0;
            inserts = 0;
          });
    mask = n - 1;
  }

let shard t key = t.shards.(Hashtbl.hash key land t.mask)

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let find t key =
  let s = shard t key in
  locked s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some _ as v ->
        s.hits <- s.hits + 1;
        v
      | None ->
        s.misses <- s.misses + 1;
        None)

let set t key value =
  let s = shard t key in
  locked s (fun () ->
      if not (Hashtbl.mem s.tbl key) then begin
        Hashtbl.add s.tbl key value;
        s.inserts <- s.inserts + 1
      end)

let length t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let stats t =
  Array.fold_left
    (fun acc s ->
       locked s (fun () ->
           {
             hits = acc.hits + s.hits;
             misses = acc.misses + s.misses;
             inserts = acc.inserts + s.inserts;
           }))
    { hits = 0; misses = 0; inserts = 0 }
    t.shards

let hit_ratio s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let entries t =
  let all =
    Array.fold_left
      (fun acc s ->
         locked s (fun () -> Hashtbl.fold (fun k v l -> (k, v) :: l) s.tbl acc))
      [] t.shards
  in
  List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) all

let add_entries t kvs =
  List.iter
    (fun (key, value) ->
       let s = shard t key in
       locked s (fun () ->
           if not (Hashtbl.mem s.tbl key) then Hashtbl.add s.tbl key value))
    kvs
