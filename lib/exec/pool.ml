(* A fixed-size pool of worker domains with deterministic combinators.

   Everything funnels through [run_list], which evaluates a list of thunks
   and returns their results in list order.  Three invariants make the
   parallel path observationally identical to the sequential one:

   - results are merged in submission order, never in completion order,
     so output cannot depend on scheduling;
   - an exception raised by a thunk is captured (with its backtrace) and
     re-raised in the caller; when several thunks raise, the one earliest
     in the list wins — again independent of scheduling;
   - with [jobs <= 1], from inside a pool worker (no nested fan-out), or
     on lists too short to split, the thunks run sequentially in the
     caller's domain.

   Consequently [map]/[map_reduce]/[find_map] return bit-identical values
   for every job count, which is what the UCFG_JOBS=1 vs UCFG_JOBS=4
   determinism gate in CI checks end to end.

   Failure additionally cancels the rest of the batch: once some slot has
   recorded an exception, queued slots with a *larger* list index skip
   their body, so sibling work drains promptly instead of running to
   completion — the reraised exception is the first in list order either
   way, exactly as in the sequential path.  Under [Chaos] injection the
   settlement pass repairs injected faults by re-running the affected
   slots in the caller, which keeps results deterministic while the
   capture/cancel/drain machinery gets exercised for real. *)

type t = {
  jobs : int;  (* parallelism degree; <= 1 means no workers were spawned *)
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or on shutdown *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let env_var = "UCFG_JOBS"

(* UCFG_JOBS wins; otherwise leave one core to the orchestrating domain *)
let default_jobs () =
  match Option.bind (Sys.getenv_opt env_var) int_of_string_opt with
  | Some j when j >= 1 -> j
  | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1)

(* workers are flagged through domain-local storage so that library code
   running inside a pool job falls back to its sequential path instead of
   re-submitting to the queue its own caller is blocked on *)
let worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    if pool.stopping then None
    else
      match Queue.take_opt pool.queue with
      | Some job -> Some job
      | None ->
        Condition.wait pool.work pool.lock;
        next ()
  in
  match next () with
  | None -> Mutex.unlock pool.lock
  | Some job ->
    Mutex.unlock pool.lock;
    (* jobs catch everything around the user thunk by construction; the
       belt-and-braces handler means no exception can ever kill a worker
       domain and silently leak pool capacity *)
    (try job () with _ -> ());
    worker_loop pool

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    pool.workers <-
      List.init jobs (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_key true;
              worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let sequential thunks = List.map (fun f -> f ()) thunks

(* CAS-min: record [rank] if it is smaller than what is already there *)
let rec note_min cell rank =
  let cur = Atomic.get cell in
  if rank < cur && not (Atomic.compare_and_set cell cur rank) then
    note_min cell rank

let run_list pool thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when pool.jobs <= 1 || in_worker () -> sequential thunks
  | _ ->
    let thunks = Array.of_list thunks in
    let n = Array.length thunks in
    let results = Array.make n None in
    let failures = Array.make n None in
    (* lowest list index that has failed; queued slots with a larger index
       skip their body so the batch drains promptly after a failure *)
    let failed_rank = Atomic.make max_int in
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock pool.lock;
    Array.iteri
      (fun i f ->
         let ord = Chaos.draw () in
         Queue.add
           (fun () ->
              (if Atomic.get failed_rank > i then
                 match
                   Chaos.prelude ord;
                   f ()
                 with
                 | v -> results.(i) <- Some v
                 | exception e ->
                   failures.(i) <- Some (e, Printexc.get_raw_backtrace ());
                   note_min failed_rank i);
              Mutex.lock pool.lock;
              decr remaining;
              if !remaining = 0 then Condition.broadcast all_done;
              Mutex.unlock pool.lock)
           pool.queue)
      thunks;
    Condition.broadcast pool.work;
    while !remaining > 0 do
      Condition.wait all_done pool.lock
    done;
    Mutex.unlock pool.lock;
    (* Slot writes happen before the counter decrement under the pool lock,
       and we read after observing zero under the same lock, so the arrays
       are safely published.  Settle in list order: the first *real*
       failure is re-raised exactly as the sequential path would raise it;
       a slot killed by an injected chaos fault, or skipped because an
       earlier (repaired) failure cancelled the batch, is re-run in the
       caller.  Without chaos no slot is ever re-run: a skipped slot always
       sits behind a recorded real failure, which raises first. *)
    let rec settle i =
      if i < n then begin
        (match failures.(i) with
         | Some (Chaos.Injected_fault _, _) ->
           results.(i) <- Some (thunks.(i) ())
         | Some (e, bt) -> Printexc.raise_with_backtrace e bt
         | None -> (
           match results.(i) with
           | Some _ -> ()
           | None -> results.(i) <- Some (thunks.(i) ())));
        settle (i + 1)
      end
    in
    settle 0;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)

(* --- chunked combinators ------------------------------------------------- *)

(* a few chunks per worker gives cheap load balancing without losing the
   deterministic ordered merge *)
let chunk_factor = 4

let chunk ~pieces xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let pieces = max 1 (min pieces n) in
    let base = n / pieces and extra = n mod pieces in
    (* the first [extra] chunks get one element more; order is preserved *)
    let rec take k xs acc =
      if k = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) rest (x :: acc)
    in
    let rec split i xs acc =
      if i >= pieces then List.rev acc
      else begin
        let size = base + if i < extra then 1 else 0 in
        let c, rest = take size xs [] in
        split (i + 1) rest (c :: acc)
      end
    in
    split 0 xs []
  end

let chunks pool xs = chunk ~pieces:(pool.jobs * chunk_factor) xs

let map pool f xs =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | _ when pool.jobs <= 1 || in_worker () -> List.map f xs
  | _ ->
    chunks pool xs
    |> List.map (fun c () -> List.map f c)
    |> run_list pool
    |> List.concat

(* equals [List.fold_left (fun acc x -> reduce acc (map x)) init xs]
   whenever [reduce] is associative: each chunk folds left to right from
   its own first element, and the chunk partials are folded in order *)
let map_reduce pool ~map:fm ~reduce init xs =
  let seq () = List.fold_left (fun acc x -> reduce acc (fm x)) init xs in
  match xs with
  | [] | [ _ ] -> seq ()
  | _ when pool.jobs <= 1 || in_worker () -> seq ()
  | _ ->
    chunks pool xs
    |> List.map (fun c () ->
        match c with
        | [] -> assert false
        | x :: rest ->
          List.fold_left (fun acc y -> reduce acc (fm y)) (fm x) rest)
    |> run_list pool
    |> List.fold_left reduce init

(* first [Some] in list order, like [List.find_map].  Chunks later than an
   already-successful chunk abort early; a chunk only aborts when a
   *strictly earlier* chunk has found a hit, so the chunk whose result is
   selected was always fully scanned up to its first hit. *)
let find_map pool f xs =
  match xs with
  | [] -> None
  | _ when pool.jobs <= 1 || in_worker () -> List.find_map f xs
  | _ ->
    let winner = Atomic.make max_int in
    chunks pool xs
    |> List.mapi (fun rank c () ->
        let rec go = function
          | [] -> None
          | _ when Atomic.get winner < rank -> None
          | x :: rest ->
            (match f x with
             | Some v ->
               note_min winner rank;
               Some v
             | None -> go rest)
        in
        go c)
    |> run_list pool
    |> List.find_map Fun.id
