(** Cooperative resource governance: deadlines, tick budgets, cancellation.

    OCaml domains cannot be killed from the outside, so every bound here is
    {e cooperative}: a [Guard.t] is a small record shared across domains,
    and long-running loops poll it at iteration boundaries via {!tick} (or
    {!check} when the iteration should not consume budget).  The first
    domain to observe an exhausted resource records the reason with a
    compare-and-set — so the {e kind} of outcome is identical at any job
    count — and every subsequent poll on any domain raises {!Interrupt}
    with that same root reason, draining sibling work promptly.

    A guard with neither deadline nor budget ({!unlimited}, the ambient
    default installed by {!Exec.current_guard}) never trips and its [tick]
    is a single uncontended atomic read, so ungoverned runs stay
    byte-identical to the pre-guard pipeline. *)

(** Why a computation was interrupted. *)
type reason =
  | Timeout  (** the wall-clock deadline passed *)
  | Budget  (** the monotonic tick budget was exhausted *)
  | Cancel  (** {!cancel} was called (first task failure, user abort) *)

(** Raised by {!tick}/{!check} once the guard has tripped.  Library entry
    points either let it escape to a single top-level handler (the CLI
    renders it as a diagnostic and exits 124) or catch it and return a
    structured {!outcome} with partial progress. *)
exception Interrupt of reason

type t

(** The shared never-trips guard.  [cancel unlimited] is a no-op: the
    ambient default must not be poisonable. *)
val unlimited : t

(** [create ?timeout ?budget ()] is a fresh guard.  [timeout] is seconds of
    wall clock from now; [budget] a total number of {!tick}s across all
    domains.  With neither, the guard only trips via {!cancel}. *)
val create : ?timeout:float -> ?budget:int -> unit -> t

(** [tick t] consumes one unit of budget and polls.  The wall clock is read
    every 64th tick (and on the first); a tripped flag is observed on every
    call.  @raise Interrupt once tripped. *)
val tick : t -> unit

(** [check t] polls without consuming budget: the tripped flag always, the
    deadline on every call.  For coarse loop heads.
    @raise Interrupt once tripped. *)
val check : t -> unit

(** [cancel t] trips [t] with {!Cancel} if it has not already tripped.
    Safe from any domain; no-op on {!unlimited}. *)
val cancel : t -> unit

(** [tripped t] is the recorded root reason, if any, without raising. *)
val tripped : t -> reason option

(** [ticks t] is the total ticks consumed so far.  Under parallelism this
    is a live cross-domain counter: monotonic, but its exact value at trip
    time is scheduling-dependent — report it as approximate. *)
val ticks : t -> int

(** Structured result of a governed computation: ['a] on completion, a
    partial ['p] otherwise. *)
type ('a, 'p) outcome =
  | Done of 'a
  | Timed_out of 'p
  | Budget_exhausted of 'p
  | Cancelled of 'p

(** [capture t ~partial f] runs [f ()], mapping a normal return to [Done]
    and an {!Interrupt} from [t] into the matching partial outcome
    (evaluating [partial ()] after the interrupt). *)
val capture : t -> partial:(unit -> 'p) -> (unit -> 'a) -> ('a, 'p) outcome

(** [reason_code r] is a stable machine-readable slug: ["timeout"],
    ["budget"], ["cancelled"]. *)
val reason_code : reason -> string

(** [describe r] is a human-readable sentence fragment for diagnostics. *)
val describe : reason -> string
