(** Sharded cross-domain memo table.

    One table is shared by every domain of a parallel search: a fixed
    power-of-two array of shards, each an independent mutex + hashtable,
    with the shard picked by key hash — so two domains contend only when
    their keys collide on a shard, never on a global lock.  Keys and
    values are strings (callers hash their structured keys, typically to
    an MD5 hex digest), which keeps the table agnostic of its domain and
    makes checkpoint serialisation trivial.

    Inserts are first-writer-wins: a key, once bound, keeps its original
    value.  Memoised computations must therefore be deterministic in the
    key — which is exactly the memoisation contract — and under that
    contract the table never changes a result, only skips recomputing
    it. *)

type t

(** [create ?shards ()] — [shards] (default 16) is rounded up to a power
    of two. *)
val create : ?shards:int -> unit -> t

(** [find t key] is the bound value, if any.  Updates the hit/miss
    counters. *)
val find : t -> string -> string option

(** [set t key value] binds [key] unless already bound (first writer
    wins).  Counts an insert only when the binding is new. *)
val set : t -> string -> string -> unit

(** Number of bindings, summed over shards. *)
val length : t -> int

type stats = { hits : int; misses : int; inserts : int }

val stats : t -> stats

(** [hit_ratio s] is [hits / (hits + misses)] ([0.] before any lookup). *)
val hit_ratio : stats -> float

(** All bindings sorted by key — a deterministic dump for checkpoints
    (deterministic given the binding set; under parallelism the set
    itself depends on where the run was interrupted). *)
val entries : t -> (string * string) list

(** [add_entries t kvs] bulk-loads checkpointed bindings, first writer
    wins, without touching the counters — restored entries are history,
    not this run's work. *)
val add_entries : t -> (string * string) list -> unit
