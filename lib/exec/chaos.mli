(** Seeded fault injection for pool tasks.

    Enabled by [UCFG_CHAOS=<seed>:<rate>] (e.g. [UCFG_CHAOS=1066:0.1]) or
    programmatically via {!set}.  Each parallel pool task draws a global
    ordinal at submission time — submission order is deterministic, so the
    injection schedule depends only on the seed and the task sequence, not
    on domain scheduling — and with probability [rate] raises
    {!Injected_fault} before the real thunk runs, or with the same
    probability busy-delays to jitter the schedule.

    Faults fire strictly {e before} the task body, so {!Pool.run_list}
    repairs them deterministically: a slot killed by an injected fault (or
    skipped because one cancelled its batch) is re-run in the caller, and
    the full test suite stays green under [make chaos] while the capture,
    cancellation and drain machinery gets exercised for real. *)

exception Injected_fault of int  (** payload: the task ordinal *)

type config = { seed : int; rate : float }

(** Parsed from [UCFG_CHAOS] at startup; [None] when unset or malformed. *)
val config : unit -> config option

(** [set c] replaces the configuration (tests use this to switch chaos on
    and off without the environment). *)
val set : config option -> unit

val enabled : unit -> bool

(** [draw ()] assigns the next task ordinal.  Cheap no-op result [0] when
    disabled. *)
val draw : unit -> int

(** [prelude ord] runs the injection decision for task [ord]: possibly
    busy-delays, possibly raises.  @raise Injected_fault *)
val prelude : int -> unit

(** Total faults actually raised / delays actually injected since start —
    the chaos tests assert these grew, proving the harness ran. *)
val faults_injected : unit -> int

val delays_injected : unit -> int
