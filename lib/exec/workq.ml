(* Bounded work queue over POSIX threads.  See the mli for the contract;
   the implementation is one mutex, one condition for workers, and a
   busy counter — [await_idle] polls (the stdlib [Condition] has no
   timed wait) at a period that is noise next to connection lifetimes. *)

type 'a t = {
  workers : int;
  capacity : int;
  queue : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable busy : int;
  mutable swallowed : int;
  mutable threads : Thread.t list;
}

let rec worker_loop t handler =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some x -> Some x
    | None ->
      if t.stopping then None
      else begin
        Condition.wait t.nonempty t.lock;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some x ->
    t.busy <- t.busy + 1;
    Mutex.unlock t.lock;
    (try handler x
     with _ ->
       Mutex.lock t.lock;
       t.swallowed <- t.swallowed + 1;
       Mutex.unlock t.lock);
    Mutex.lock t.lock;
    t.busy <- t.busy - 1;
    Mutex.unlock t.lock;
    worker_loop t handler

let create ~workers ~capacity handler =
  let t =
    {
      workers = max 1 workers;
      capacity = max 1 capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      busy = 0;
      swallowed = 0;
      threads = [];
    }
  in
  t.threads <-
    List.init t.workers (fun _ -> Thread.create (fun () -> worker_loop t handler) ());
  t

let workers t = t.workers

let push t x =
  Mutex.lock t.lock;
  let accepted =
    if t.stopping || Queue.length t.queue >= t.capacity then false
    else begin
      Queue.add x t.queue;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.lock;
  accepted

let busy t =
  Mutex.lock t.lock;
  let b = t.busy in
  Mutex.unlock t.lock;
  b

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let swallowed t =
  Mutex.lock t.lock;
  let n = t.swallowed in
  Mutex.unlock t.lock;
  n

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let leftover = List.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  leftover

let await_idle t ~deadline =
  let rec go () =
    Mutex.lock t.lock;
    let idle = t.busy = 0 && Queue.is_empty t.queue in
    Mutex.unlock t.lock;
    if idle then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let join t =
  List.iter Thread.join t.threads;
  t.threads <- []
