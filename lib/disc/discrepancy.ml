open Ucfg_rect
module Bignum = Ucfg_util.Bignum

let of_rectangle_enumerated blocks r =
  Set_rectangle.count_diff r ~in_a:(Blocks.in_a blocks)
    ~in_b:(Blocks.in_b blocks)

(* Factorised discrepancy.  Every member of [R = S × T] is [u ∪ v] with
   disjoint supports, and both the family test and the matched-pair parity
   decompose along that split: per block [I_ℓ] the family condition
   [|(u ∪ v) ∩ I_ℓ| = 1] reads [c_ℓ(u) + d_ℓ(v) = 1], so only the (at
   most two) blocks straddling the partition couple the sides, each
   through one bit; and with [x]/[y] the halves of a mask,
     [pop(x ∧ y) = pop(x_u ∧ y_u) + pop(x_v ∧ y_v) + pop(u ∧ swap v)]
   ([swap] exchanges the halves), so the cross term sees [u] only through
   [u ∧ swap inside] and [v] only through [swap v ∧ outside].  Classifying
   each side by (straddle bits, coupling bits) and summing signs per class
   replaces the [|S|·|T|] product walk by
   [O(|S| + |T| + classes_S · classes_T)]. *)
let of_rectangle blocks r =
  let n = Blocks.n blocks in
  let p = r.Set_rectangle.partition in
  if Partition.n p <> n then of_rectangle_enumerated blocks r
  else begin
    let low = (1 lsl n) - 1 in
    let swap m = ((m land low) lsl n) lor (m lsr n) in
    let inside = Partition.inside p in
    let outside = Partition.outside p in
    let all_blocks = Blocks.interval_masks blocks in
    let straddle =
      Array.of_list
        (List.filter
           (fun b -> b land inside <> 0 && b land outside <> 0)
           all_blocks)
    in
    let classify part coupling_key masks =
      let full = List.filter (fun b -> b land part = b) all_blocks in
      let tbl = Hashtbl.create 64 in
      Set_rectangle.IntSet.iter
        (fun w ->
           if List.for_all (fun b -> Setview.popcount (w land b) = 1) full
           then begin
             let code = ref 0 and ok = ref true in
             Array.iteri
               (fun i b ->
                  match Setview.popcount (w land b) with
                  | 0 -> ()
                  | 1 -> code := !code lor (1 lsl i)
                  | _ -> ok := false)
               straddle;
             if !ok then begin
               let s =
                 if Setview.popcount (w land low land (w lsr n)) land 1 = 1
                 then -1
                 else 1
               in
               let key = (!code, coupling_key w) in
               let prev =
                 Option.value (Hashtbl.find_opt tbl key) ~default:0
               in
               Hashtbl.replace tbl key (prev + s)
             end
           end)
        masks;
      tbl
    in
    let hs =
      classify outside (fun u -> u land swap inside) r.Set_rectangle.outer
    in
    let ht =
      classify inside (fun v -> swap v land outside) r.Set_rectangle.inner
    in
    (* a member is in the family iff the straddle codes complement *)
    let all_one = (1 lsl Array.length straddle) - 1 in
    let acc = ref 0 in
    Hashtbl.iter
      (fun (cu, ku) su ->
         Hashtbl.iter
           (fun (cv, kv) sv ->
              if cu lxor cv = all_one then
                (* D = -Σ s(u)·s(v)·(-1)^coupling *)
                if Setview.popcount (ku land kv) land 1 = 1 then
                  acc := !acc + (su * sv)
                else acc := !acc - (su * sv))
           ht)
      hs;
    !acc
  end

let lemma19_bound ~m = Bignum.two_pow (3 * m)

let within_lemma23_bound ~m d =
  let d = Bignum.of_int (abs d) in
  Bignum.compare (Bignum.mul d (Bignum.mul d d)) (Bignum.two_pow (10 * m)) <= 0

let random_family_member blocks rng =
  List.fold_left
    (fun acc blk ->
       let rec low b p = if b land 1 = 1 then p else low (b lsr 1) (p + 1) in
       let base = low blk 0 in
       acc lor (1 lsl (base + Ucfg_util.Rng.int rng 4)))
    0
    (Blocks.interval_masks blocks)

let max_over_random blocks ~rng ~samples ~partition =
  let ins = Partition.inside partition in
  let out = Partition.outside partition in
  let best = ref 0 in
  for _ = 1 to samples do
    let picks = List.init 32 (fun _ -> random_family_member blocks rng) in
    let inner = List.sort_uniq compare (List.map (fun m -> m land ins) picks) in
    let outer = List.sort_uniq compare (List.map (fun m -> m land out) picks) in
    let r = Set_rectangle.make partition ~outer ~inner in
    let d = abs (of_rectangle blocks r) in
    if d > !best then best := d
  done;
  !best

let tight_example blocks =
  let n = Blocks.n blocks in
  let partition = Partition.make ~n 1 n in
  let ins = Partition.inside partition in
  (* every family member splits cleanly into its X and Y halves; collect
     the distinct halves *)
  let inner = Hashtbl.create 256 and outer = Hashtbl.create 256 in
  Seq.iter
    (fun m ->
       Hashtbl.replace inner (m land ins) ();
       Hashtbl.replace outer (m land lnot ins land Setview.universe ~n) ())
    (Blocks.family blocks);
  Set_rectangle.make partition
    ~outer:(Hashtbl.fold (fun k () acc -> k :: acc) outer [])
    ~inner:(Hashtbl.fold (fun k () acc -> k :: acc) inner [])
