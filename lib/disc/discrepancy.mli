(** Rectangle discrepancy (Lemma 19, Corollary 20, Lemma 23).

    The discrepancy of a rectangle [R] is [||R ∩ A| - |R ∩ B||].  The
    paper bounds it by [2^(3m)] for [[1,n]]-rectangles (and any interval
    splitting every [(x_ℓ, y_ℓ)] pair), and by [2^(10m/3)] for arbitrary
    neat ordered balanced rectangles — always strictly below the
    [12^m - 2^(3m)] advantage of [L_n], which is what forces exponential
    disjoint covers. *)

module Bignum = Ucfg_util.Bignum
open Ucfg_rect

(** [of_rectangle blocks r] computes [|R ∩ A| - |R ∩ B|] by a factorised
    count: each side of [R = S × T] is classified once (straddling-block
    picks and coupling bits, with the within-side matched-pair parity
    summed per class), then the class tables are contracted — [O(|S| +
    |T| + classes²)] instead of walking the [|S|·|T|] product. *)
val of_rectangle : Blocks.t -> Set_rectangle.t -> int

(** [of_rectangle_enumerated blocks r] is the same count by direct
    enumeration of [R] — the reference implementation the factorised
    count is property-tested against. *)
val of_rectangle_enumerated : Blocks.t -> Set_rectangle.t -> int

(** [lemma19_bound ~m] = [2^(3m)]. *)
val lemma19_bound : m:int -> Bignum.t

(** [within_lemma23_bound ~m d] decides [|d| <= 2^(10m/3)] exactly (by
    cubing). *)
val within_lemma23_bound : m:int -> int -> bool

(** [max_over_random blocks ~rng ~samples ~partition] samples random
    rectangles over a given partition and returns the maximum absolute
    discrepancy observed (a lower-bound probe of tightness). *)
val max_over_random :
  Blocks.t ->
  rng:Ucfg_util.Rng.t ->
  samples:int ->
  partition:Partition.t ->
  int

(** [tight_example blocks] builds the worst [[1,n]]-rectangle we know:
    [S = 𝓛^X], [T = 𝓛^Y] — the full family rectangle, whose discrepancy
    is exactly [|B| - |A| = 2^(3m)] in absolute value (it meets Lemma 19
    with equality). *)
val tight_example : Blocks.t -> Set_rectangle.t
