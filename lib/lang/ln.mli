(** The paper's witness language family.

    [L_n = { (a+b)^k a (a+b)^(n-1) a (a+b)^(n-1-k) | 0 <= k <= n-1 }] — all
    binary words of length [2n] carrying two ['a']s at distance exactly [n]
    (Example 3).  Identifying a word with the pair of bit masks
    [(x, y) ∈ {0,1}^n × {0,1}^n] of its two halves (bit set iff ['a']),
    membership is exactly [x AND y ≠ 0]: the complement of set
    disjointness. *)

open Ucfg_word

(** [mem n w] decides membership of a word of length [2n].
    Words of a different length or over other characters are rejected. *)
val mem : int -> Word.t -> bool

(** [mem_code n code] decides membership from the packed code of a binary
    word of length [2n] (as produced by {!Ucfg_word.Word.to_bits}). *)
val mem_code : int -> int -> bool

(** [language n] is [L_n] — enumerated into the packed backend for
    [n <= 10] (a 4^n code scan), built symbolically on the factorised tier
    beyond (see {!language_factored}).  Both routes produce the same
    language; the representations compare equal through {!Lang.equal}. *)
val language : int -> Lang.t

(** [language_factored n] is [L_n] on tier T2, built as the union of the
    [n] slice chains [L_n^k] — Θ(2^n) hash-consed nodes, never an
    enumeration of the [4^n − 3^n] words, with exact Bignum cardinals.
    This is the reference object for the n ≥ 16 sweeps (E31). *)
val language_factored : int -> Lang.t

(** [codes n] enumerates the packed codes of [L_n] lazily. *)
val codes : int -> int Seq.t

(** [cardinal n] is [|L_n| = 4^n − 3^n], exactly. *)
val cardinal : int -> Ucfg_util.Bignum.t

(** [slice n k] is the language [L_n^k] of Example 8: words whose
    positions [k] and [k+n] (0-based) both carry ['a'].
    Requires [0 <= k <= n-1]. *)
val slice : int -> int -> Lang.t

(** [slice_mem n k w] decides membership in [L_n^k] without
    materialisation. *)
val slice_mem : int -> int -> Word.t -> bool

(** [star n] is the balanced-rectangle language [L*_n] of Example 6:
    words of length [2n] beginning and ending with [n/2] ['a']s.
    Requires [n] even. *)
val star : int -> Lang.t

val star_mem : int -> Word.t -> bool
