(* Tier T1: sorted multi-limb code arrays for 62 < len <= 128 (and, for the
   tier-equivalence tests, any smaller length).  A code is ceil(len/62)
   62-bit limbs, most-significant limb first; a language is one flattened
   [int array], [limbs] ints per code, codes strictly increasing.  The
   limb-tuple order equals lexicographic word order, so every merge-based
   algorithm of tier T0 ({!Packed}) transfers limb-for-limb. *)

let limb_bits = 62
let limb_mask = (1 lsl limb_bits) - 1
let max_length = 128

let limbs_for len = if len <= 0 then 1 else (len + limb_bits - 1) / limb_bits

let check_len op len =
  if len < 0 || len > max_length then
    invalid_arg
      (Printf.sprintf
         "Wide.%s: length %d out of [0, %d] — lengths beyond the multi-word \
          tier live on the factorised tier (Factored)"
         op len max_length)

type t = {
  len : int;
  limbs : int;  (* ints per code *)
  codes : int array;  (* flattened, [limbs] per code, strictly increasing *)
}

let length t = t.len
let cardinal t = Array.length t.codes / t.limbs
let is_empty t = Array.length t.codes = 0

let empty len =
  check_len "empty" len;
  { len; limbs = limbs_for len; codes = [||] }

let code_of_word w =
  let len = String.length w in
  check_len "code_of_word" len;
  let m = limbs_for len in
  let c = Array.make m 0 in
  for i = 0 to len - 1 do
    match w.[i] with
    | 'a' -> ()
    | 'b' ->
      let p = len - 1 - i in
      let q = m - 1 - (p / limb_bits) in
      c.(q) <- c.(q) lor (1 lsl (p mod limb_bits))
    | _ -> invalid_arg "Wide.code_of_word: non-binary character"
  done;
  c

let word_of_code ~len code =
  check_len "word_of_code" len;
  let m = limbs_for len in
  String.init len (fun i ->
      let p = len - 1 - i in
      let q = m - 1 - (p / limb_bits) in
      if (code.(q) lsr (p mod limb_bits)) land 1 = 1 then 'b' else 'a')

(* Compare the [m]-limb slices at offsets [i] and [j].  Limbs are
   non-negative and most-significant first, so plain int comparison
   left-to-right is the numeric (= lexicographic word) order. *)
let cmp_at a i b j m =
  let rec go k =
    if k = m then 0
    else
      let d = compare a.(i + k) b.(j + k) in
      if d <> 0 then d else go (k + 1)
  in
  go 0

let singleton_word w =
  let len = String.length w in
  { len; limbs = limbs_for len; codes = code_of_word w }

let of_word_list len ws =
  check_len "of_word_list" len;
  let m = limbs_for len in
  let codes =
    List.map
      (fun w ->
         if String.length w <> len then
           invalid_arg "Wide.of_word_list: word of the wrong length";
         code_of_word w)
      ws
  in
  let sorted = List.sort_uniq (fun a b -> cmp_at a 0 b 0 m) codes in
  let n = List.length sorted in
  let flat = Array.make (n * m) 0 in
  List.iteri (fun i c -> Array.blit c 0 flat (i * m) m) sorted;
  { len; limbs = m; codes = flat }

let of_packed p =
  let len = Packed.length p in
  let m = limbs_for len in
  (* m = 1 for any packable length, so the T0 codes are the limbs *)
  assert (m = 1);
  { len; limbs = m; codes = Array.of_seq (Packed.codes p) }

let to_packed t =
  if t.len > Packed.max_length then None
  else Some (Packed.of_sorted_codes ~len:t.len (Array.copy t.codes))

let mem_code t c =
  let m = t.limbs in
  let n = cardinal t in
  let lo = ref 0 and hi = ref (n - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = cmp_at t.codes (mid * m) c 0 m in
    if d = 0 then found := true
    else if d < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem t w =
  String.length w = t.len
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && mem_code t (code_of_word w)

let check_same_len op t1 t2 =
  if t1.len <> t2.len then
    invalid_arg
      (Printf.sprintf "Wide.%s: length mismatch (%d vs %d)" op t1.len t2.len)

(* Merge of two strictly-increasing flattened code arrays under a boolean
   op — the T0 [merge_sparse], with slice comparison and slice blits. *)
let merge ~keep_left ~keep_right ~keep_both t1 t2 =
  let m = t1.limbs in
  let a = t1.codes and b = t2.codes in
  let na = Array.length a / m and nb = Array.length b / m in
  let out = Array.make ((na + nb) * m) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push src off =
    Array.blit src (off * m) out (!k * m) m;
    incr k
  in
  while !i < na && !j < nb do
    let d = cmp_at a (!i * m) b (!j * m) m in
    if d < 0 then begin
      if keep_left then push a !i;
      incr i
    end
    else if d > 0 then begin
      if keep_right then push b !j;
      incr j
    end
    else begin
      if keep_both then push a !i;
      incr i;
      incr j
    end
  done;
  if keep_left then
    while !i < na do
      push a !i;
      incr i
    done;
  if keep_right then
    while !j < nb do
      push b !j;
      incr j
    done;
  { t1 with codes = Array.sub out 0 (!k * m) }

let union t1 t2 =
  check_same_len "union" t1 t2;
  merge ~keep_left:true ~keep_right:true ~keep_both:true t1 t2

let inter t1 t2 =
  check_same_len "inter" t1 t2;
  merge ~keep_left:false ~keep_right:false ~keep_both:true t1 t2

let diff t1 t2 =
  check_same_len "diff" t1 t2;
  merge ~keep_left:true ~keep_right:false ~keep_both:false t1 t2

let equal t1 t2 = t1.len = t2.len && t1.codes = t2.codes

let subset t1 t2 =
  check_same_len "subset" t1 t2;
  is_empty (diff t1 t2)

let disjoint t1 t2 =
  check_same_len "disjoint" t1 t2;
  is_empty (inter t1 t2)

(* [or_shifted dst src m_src shift] ors [src * 2^shift] into [dst] (both
   most-significant-first limb arrays).  A source limb's low part lands in
   one destination limb, its high part spills into the next — the shift-or
   that makes concatenation linear in limbs instead of bits. *)
let or_shifted dst src m_src shift =
  let m_dst = Array.length dst in
  for l = 0 to m_src - 1 do
    (* l counts limbs from the least-significant end *)
    let limb = src.(m_src - 1 - l) in
    if limb <> 0 then begin
      let lo_bit = (l * limb_bits) + shift in
      let q = lo_bit / limb_bits and r = lo_bit mod limb_bits in
      let qi = m_dst - 1 - q in
      dst.(qi) <- dst.(qi) lor ((limb lsl r) land limb_mask);
      if r > 0 then begin
        let hi = limb lsr (limb_bits - r) in
        if hi <> 0 then dst.(qi - 1) <- dst.(qi - 1) lor hi
      end
    end
  done

let concat t1 t2 =
  let len = t1.len + t2.len in
  if len > max_length then
    invalid_arg
      (Printf.sprintf
         "Wide.concat: combined length %d exceeds %d — escalate to the \
          factorised tier (Factored.concat)"
         len max_length);
  let m = limbs_for len in
  let c1 = cardinal t1 and c2 = cardinal t2 in
  let out = Array.make (c1 * c2 * m) 0 in
  (* code (u ^ v) = code u * 2^len2 + code v is strictly monotone in the
     lexicographic pair (u, v): the nested ascending loops emit the product
     already sorted and duplicate-free, exactly as in tier T0. *)
  let hi = Array.make m 0 in
  let u = Array.make t1.limbs 0 and v = Array.make t2.limbs 0 in
  let k = ref 0 in
  for i = 0 to c1 - 1 do
    Array.fill hi 0 m 0;
    Array.blit t1.codes (i * t1.limbs) u 0 t1.limbs;
    or_shifted hi u t1.limbs t2.len;
    for j = 0 to c2 - 1 do
      let off = !k * m in
      Array.blit hi 0 out off m;
      Array.blit t2.codes (j * t2.limbs) v 0 t2.limbs;
      (* v occupies the low t2.len bits: or it in unshifted *)
      for l = 0 to t2.limbs - 1 do
        let oi = off + m - 1 - l in
        out.(oi) <- out.(oi) lor v.(t2.limbs - 1 - l)
      done;
      incr k
    done
  done;
  { len; limbs = m; codes = out }

(* Multi-limb increment of a most-significant-first counter. *)
let incr_code c =
  let m = Array.length c in
  let rec go i =
    if i >= 0 then begin
      let v = c.(i) + 1 in
      if v > limb_mask then begin
        c.(i) <- 0;
        go (i - 1)
      end
      else c.(i) <- v
    end
  in
  go (m - 1)

let first_code t =
  if is_empty t then None else Some (Array.sub t.codes 0 t.limbs)

let min_word t = Option.map (word_of_code ~len:t.len) (first_code t)

(* Gap scan: walk the sorted codes alongside a running counter; the first
   disagreement is the least absent code.  O(cardinal), never O(2^len). *)
let first_absent_word t =
  let m = t.limbs in
  let n = cardinal t in
  let counter = Array.make m 0 in
  let rec scan i =
    if i >= n then
      (* counter now equals the cardinal; absent iff cardinal < 2^len,
         which at len >= 63 always holds (an array cannot reach 2^62) *)
      if t.len < limb_bits && n = 1 lsl t.len then None
      else Some (word_of_code ~len:t.len counter)
    else if cmp_at t.codes (i * m) counter 0 m <> 0 then
      Some (word_of_code ~len:t.len counter)
    else begin
      incr_code counter;
      scan (i + 1)
    end
  in
  scan 0

let iter_words f t =
  let m = t.limbs in
  let n = cardinal t in
  let c = Array.make m 0 in
  for i = 0 to n - 1 do
    Array.blit t.codes (i * m) c 0 m;
    f (word_of_code ~len:t.len c)
  done

let words t =
  let m = t.limbs in
  let n = cardinal t in
  Seq.map
    (fun i -> word_of_code ~len:t.len (Array.sub t.codes (i * m) m))
    (Seq.init n Fun.id)

let filter p t =
  let keep = ref [] and n = ref 0 in
  let m = t.limbs in
  for i = cardinal t - 1 downto 0 do
    let c = Array.sub t.codes (i * m) m in
    if p (word_of_code ~len:t.len c) then begin
      keep := c :: !keep;
      incr n
    end
  done;
  let flat = Array.make (!n * m) 0 in
  List.iteri (fun i c -> Array.blit c 0 flat (i * m) m) !keep;
  { t with codes = flat }

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat ", " (List.of_seq (words t)))
