(** Tier T2 of the language kernel: factorised languages as circuits.

    A uniform-length binary language is represented {e symbolically} as a
    level-indexed binary decision DAG — the circuit form of the paper's
    d-representations restricted to the right-linear (OBDD-style) vtree: a
    node at height [h] denotes a set of words of length [h]; its ['a] child
    denotes the residual after reading ['a], its ['b] child after ['b];
    the two sinks at height 0 denote [{ε}] and [∅].  This is exactly a
    deterministic d-rep ({!Ucfg_fr.Drep} via [Ucfg_fr.Iso.drep_of_factored])
    whose product gates split letter-first — so cardinals are exact Bignum
    model counts, never enumerations, and the KMN isomorphism connects the
    tier to the paper's uCFG lower bound machinery.

    Nodes are hash-consed in one global manager (a mutex-guarded table, so
    the tier is domain-safe): structurally equal languages are physically
    equal nodes, making {!equal} O(1) and every [apply]-style operation
    properly memoisable.  Node identifiers are an internal detail — their
    numeric values depend on construction order and are never observable in
    results, which keeps the tier jobs-invariant.

    All potentially long walks ({!cardinal}, {!node_count}, [apply] loops)
    poll a {!Ucfg_exec.Guard.t} (default the ambient
    {!Ucfg_exec.Exec.current_guard}).

    The ladder is T0 ({!Packed}, len ≤ 62) → T1 ({!Wide}, len ≤ 128) →
    T2 (this module, any length); {!Lang} dispatches automatically, and
    also escalates here on {e cardinality} (huge concatenation products at
    small lengths) — the escape that unlocks the n ≥ 16 sweeps. *)

type t

(** {1 Structure} *)

type node

val root : t -> node

(** Stable within one process run only; never expose in output. *)
val node_id : node -> int

val view : node -> [ `Accept | `Reject | `Branch of node * node ]

(** Whether the node denotes a non-empty set — exact (the canonical empty
    diagram of each height is a unique hash-consed node), O(1).  Lets
    traversals prune dead (all-reject) subtrees. *)
val node_nonempty : node -> bool

(** {2 Raw builders}

    For callers that construct a diagram directly (e.g. {!Ln}'s symbolic
    slice chains) instead of going through a word list.  [branch lo hi]
    hash-conses the node reading ['a] into [lo] and ['b] into [hi]
    ([Invalid_argument] on unequal child heights); [accept]/[reject] are
    the sinks; [reject_all h] is the empty language of height [h];
    [of_root len root] wraps a root of height [len] as a language
    ([Invalid_argument] on a height mismatch). *)

val accept : node

val reject : node
val branch : node -> node -> node
val reject_all : int -> node
val of_root : int -> node -> t

(** Uniform word length (the height of the root). *)
val length : t -> int

(** Reachable branch nodes — the memory cost of the representation, used
    as the [max_card] proxy where enumerated tiers use the cardinal. *)
val node_count : ?guard:Ucfg_exec.Guard.t -> t -> int

(** {1 Construction} *)

val empty : int -> t
val full : int -> t
val singleton_word : string -> t
val of_word_list : int -> string list -> t
val of_packed : Packed.t -> t
val of_wide : Wide.t -> t

(** {1 Queries} *)

val is_empty : t -> bool
val is_full : t -> bool
val mem : t -> string -> bool

(** Exact model count by a memoised path sum — O(nodes), never O(2^len). *)
val cardinal : ?guard:Ucfg_exec.Guard.t -> t -> Ucfg_util.Bignum.t

(** [cardinal_int t] is the cardinal when it fits a native [int]. *)
val cardinal_int : ?guard:Ucfg_exec.Guard.t -> t -> int option

(** Least word in lexicographic order — a single descent. *)
val min_word : t -> string option

(** Least word of length [length t] {e not} in the language ([None] when
    full) — a descent through non-full children; the symbolic analogue of
    the T0/T1 gap scans. *)
val min_absent_word : t -> string option

(** {1 Algebra}

    Binary operations require equal lengths ([Invalid_argument]
    otherwise); all are memoised applies, O(|t1|·|t2|) nodes. *)

val union : ?guard:Ucfg_exec.Guard.t -> t -> t -> t
val inter : ?guard:Ucfg_exec.Guard.t -> t -> t -> t
val diff : ?guard:Ucfg_exec.Guard.t -> t -> t -> t

(** [complement t] is [Σ^len \ t] — a sink swap, O(|t|), the operation
    the explicit tiers cannot afford above len 62. *)
val complement : ?guard:Ucfg_exec.Guard.t -> t -> t

(** [concat t1 t2] substitutes [t2]'s root for [t1]'s accept sink —
    O(|t1| + |t2|) nodes, independent of the cardinal product. *)
val concat : ?guard:Ucfg_exec.Guard.t -> t -> t -> t

(** O(1): hash-consing makes structural equality physical. *)
val equal : t -> t -> bool

val subset : ?guard:Ucfg_exec.Guard.t -> t -> t -> bool
val disjoint : ?guard:Ucfg_exec.Guard.t -> t -> t -> bool

(** {1 Enumeration}

    Lexicographic; only for languages known to be small — the whole point
    of the tier is that results need not fit in memory. *)

val words : t -> string Seq.t
val iter_words : (string -> unit) -> t -> unit
val filter : (string -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
