open Ucfg_word
module Bignum = Ucfg_util.Bignum

let mem n w =
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && begin
    let rec go k = k < n && ((w.[k] = 'a' && w.[k + n] = 'a') || go (k + 1)) in
    go 0
  end

let mem_code n code =
  let x = code land ((1 lsl n) - 1) in
  let y = (code lsr n) land ((1 lsl n) - 1) in
  x land y <> 0

let codes n =
  if 2 * n > 60 then invalid_arg "Ln.codes: n too large";
  let total = 1 lsl (2 * n) in
  Seq.filter (mem_code n) (Seq.init total Fun.id)

(* Symbolic chain for one slice [L_n^k] — positions [k] and [k + n] fixed
   to 'a', every other position free — built bottom-up with the raw
   factored-node constructors: ~4n hash-consed nodes, no enumeration. *)
let slice_factored n k =
  if k < 0 || k > n - 1 then invalid_arg "Ln.slice_factored: bad k";
  let len = 2 * n in
  let acc = ref Factored.accept in
  for pos = len - 1 downto 0 do
    let h = len - 1 - pos in
    (* !acc has height h *)
    if pos = k || pos = k + n then
      acc := Factored.branch !acc (Factored.reject_all h)
    else acc := Factored.branch !acc !acc
  done;
  Factored.of_root len !acc

(* [L_n = ∪_k L_n^k] on the factorised tier: n memoised unions over the
   ~4n-node slice chains.  The result is the canonical level decision DAG
   of [L_n] — Θ(2^n) nodes (the residual after the first half is the set
   of 'a'-positions read, and all 2^n of them are distinct), exponentially
   smaller than the 4^n − 3^n words it denotes, and cardinals stay exact
   Bignum model counts.  This is what carries the E-series to n >= 16. *)
let language_factored n =
  if n <= 0 then invalid_arg "Ln.language_factored: n must be positive";
  let rec go k acc =
    if k >= n then acc else go (k + 1) (Factored.union acc (slice_factored n k))
  in
  Lang.of_factored (go 1 (slice_factored n 0))

(* Direct enumeration into the packed backend — cheap up to n ~ 10. *)
let language_enumerated n =
  (* Straight into the packed backend: [codes] sets bit [i] for an 'a' at
     position [i], while the packed key sets bit [len - 1 - i] for a 'b'
     there, so the key is the bit-reversed complement of the code.  A
     direct scan of the code space (no intermediate [Seq]) keeps the
     construction cheap enough to rebuild per benchmark row. *)
  let len = 2 * n in
  let total = 1 lsl len in
  let key_of_code code =
    let key = ref 0 in
    for i = 0 to len - 1 do
      if (code lsr i) land 1 = 0 then key := !key lor (1 lsl (len - 1 - i))
    done;
    !key
  in
  let pow3 =
    let r = ref 1 in
    for _ = 1 to n do
      r := 3 * !r
    done;
    !r
  in
  let keys = Array.make (max (total - pow3) 1) 0 in
  let k = ref 0 in
  for code = 0 to total - 1 do
    if mem_code n code then begin
      keys.(!k) <- key_of_code code;
      incr k
    end
  done;
  Lang.of_packed (Packed.of_codes ~len (Array.sub keys 0 !k))

(* The enumeration scans all 4^n codes, so it stops paying around n ~ 10;
   beyond that the factorised construction takes over.  Both materialise
   the same language (QCheck-pinned on the overlap). *)
let enumeration_cap = 10

let language n =
  if n <= enumeration_cap && 2 * n <= 60 then language_enumerated n
  else language_factored n

let cardinal n =
  Bignum.sub (Bignum.pow (Bignum.of_int 4) n) (Bignum.pow (Bignum.of_int 3) n)

let slice_mem n k w =
  if k < 0 || k > n - 1 then invalid_arg "Ln.slice_mem: bad k";
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && w.[k] = 'a'
  && w.[k + n] = 'a'

let slice n k =
  if 2 * n <= Packed.max_length then
    Lang.filter (fun w -> slice_mem n k w) (Lang.full Alphabet.binary (2 * n))
  else Lang.of_factored (slice_factored n k)

let star_mem n w =
  if n mod 2 <> 0 then invalid_arg "Ln.star_mem: n must be even";
  let h = n / 2 in
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && begin
    let ok = ref true in
    for i = 0 to h - 1 do
      if w.[i] <> 'a' || w.[(2 * n) - 1 - i] <> 'a' then ok := false
    done;
    !ok
  end

let star n =
  if n mod 2 <> 0 then invalid_arg "Ln.star_mem: n must be even";
  if 2 * n <= Packed.max_length then
    Lang.filter (fun w -> star_mem n w) (Lang.full Alphabet.binary (2 * n))
  else begin
    (* symbolic chain: the first and last n/2 positions fixed to 'a' *)
    let len = 2 * n in
    let h2 = n / 2 in
    let acc = ref Factored.accept in
    for pos = len - 1 downto 0 do
      let h = len - 1 - pos in
      if pos < h2 || pos >= len - h2 then
        acc := Factored.branch !acc (Factored.reject_all h)
      else acc := Factored.branch !acc !acc
    done;
    Lang.of_factored (Factored.of_root len !acc)
  end
