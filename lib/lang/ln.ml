open Ucfg_word
module Bignum = Ucfg_util.Bignum

let mem n w =
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && begin
    let rec go k = k < n && ((w.[k] = 'a' && w.[k + n] = 'a') || go (k + 1)) in
    go 0
  end

let mem_code n code =
  let x = code land ((1 lsl n) - 1) in
  let y = (code lsr n) land ((1 lsl n) - 1) in
  x land y <> 0

let codes n =
  if 2 * n > 60 then invalid_arg "Ln.codes: n too large";
  let total = 1 lsl (2 * n) in
  Seq.filter (mem_code n) (Seq.init total Fun.id)

let language n =
  (* Straight into the packed backend: [codes] sets bit [i] for an 'a' at
     position [i], while the packed key sets bit [len - 1 - i] for a 'b'
     there, so the key is the bit-reversed complement of the code.  A
     direct scan of the code space (no intermediate [Seq]) keeps the
     construction cheap enough to rebuild per benchmark row. *)
  if 2 * n > 60 then invalid_arg "Ln.codes: n too large";
  let len = 2 * n in
  let total = 1 lsl len in
  let key_of_code code =
    let key = ref 0 in
    for i = 0 to len - 1 do
      if (code lsr i) land 1 = 0 then key := !key lor (1 lsl (len - 1 - i))
    done;
    !key
  in
  let pow3 =
    let r = ref 1 in
    for _ = 1 to n do
      r := 3 * !r
    done;
    !r
  in
  let keys = Array.make (max (total - pow3) 1) 0 in
  let k = ref 0 in
  for code = 0 to total - 1 do
    if mem_code n code then begin
      keys.(!k) <- key_of_code code;
      incr k
    end
  done;
  Lang.of_packed (Packed.of_codes ~len (Array.sub keys 0 !k))

let cardinal n =
  Bignum.sub (Bignum.pow (Bignum.of_int 4) n) (Bignum.pow (Bignum.of_int 3) n)

let slice_mem n k w =
  if k < 0 || k > n - 1 then invalid_arg "Ln.slice_mem: bad k";
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && w.[k] = 'a'
  && w.[k + n] = 'a'

let slice n k =
  Lang.filter (fun w -> slice_mem n k w) (Lang.full Alphabet.binary (2 * n))

let star_mem n w =
  if n mod 2 <> 0 then invalid_arg "Ln.star_mem: n must be even";
  let h = n / 2 in
  String.length w = 2 * n
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && begin
    let ok = ref true in
    for i = 0 to h - 1 do
      if w.[i] <> 'a' || w.[(2 * n) - 1 - i] <> 'a' then ok := false
    done;
    !ok
  end

let star n =
  Lang.filter (fun w -> star_mem n w) (Lang.full Alphabet.binary (2 * n))
