(** Finite languages.

    A finite language is a finite set of words; this is the object that the
    paper's grammars, automata and rectangle covers all denote.  All the
    usual boolean and concatenation operations are provided, together with
    the fixed-length queries the rectangle machinery needs. *)

open Ucfg_word

type t

(** {1 Representations}

    Internally a language is either a persistent string set or, when all
    words are binary and share one length, a value on the packed tier
    ladder: T0 {!Packed} (sorted machine-integer codes, len ≤ 62),
    T1 {!Wide} (sorted multi-limb codes, len ≤ 128), or T2 {!Factored}
    (a hash-consed decision DAG — a deterministic d-rep — any length,
    cardinals by exact model counting).  All four behave identically —
    same iteration order, same [elements], same [choose_opt] — so the
    representation is observable only through the [to_*] peeks and
    {!tier}.  Dispatch between tiers is automatic, by length and (for
    {!concat}) by product cardinality: a concatenation whose explicit
    code array would be huge escalates to T2 even at small lengths. *)

(** [of_packed p] wraps a packed language (empty packed values normalise to
    {!empty}). *)
val of_packed : Packed.t -> t

(** [to_packed t] is the T0 backend when [t] currently uses it — an
    O(1) peek, never a conversion.  Use {!pack} first to force one. *)
val to_packed : t -> Packed.t option

val of_wide : Wide.t -> t
val to_wide : t -> Wide.t option
val of_factored : Factored.t -> t
val to_factored : t -> Factored.t option

(** Which representation [t] currently uses — O(1), for tests and
    diagnostics. *)
val tier : t -> [ `Set | `T0 | `T1 | `T2 ]

(** [pack t] switches to the cheapest fitting packed tier when the
    language is non-empty, uniform-length and binary; otherwise [t]
    unchanged.  Lossless either way. *)
val pack : t -> t

(** [factor t] forces the factorised tier T2 when the language is
    non-empty, uniform-length and binary; otherwise [t] unchanged. *)
val factor : t -> t

(** [unpack t] forces the set representation — the inverse of {!pack} /
    {!factor}.  Mostly for benchmarking the tiers against the set
    baseline; enumerates, so only for languages known to be small. *)
val unpack : t -> t

val empty : t
val singleton : Word.t -> t
val of_list : Word.t list -> t
val of_seq : Word.t Seq.t -> t
val add : Word.t -> t -> t
val mem : Word.t -> t -> bool

(** @raise Invalid_argument when a T2 cardinal exceeds the native [int]
    range — use {!cardinal_big} there. *)
val cardinal : t -> int

(** Exact cardinal as a big integer (a model count on tier T2 — never an
    enumeration). *)
val cardinal_big : t -> Ucfg_util.Bignum.t

val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

(** [concat l1 l2] is the pairwise concatenation [{uv | u in l1, v in l2}]. *)
val concat : t -> t -> t

(** [concat_list ls] folds {!concat} over a list, starting from [{ε}]. *)
val concat_list : t list -> t

val elements : t -> Word.t list
val to_seq : t -> Word.t Seq.t
val iter : (Word.t -> unit) -> t -> unit
val fold : (Word.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Word.t -> bool) -> t -> t
val map : (Word.t -> Word.t) -> t -> t
val for_all : (Word.t -> bool) -> t -> bool
val exists : (Word.t -> bool) -> t -> bool
val choose_opt : t -> Word.t option

(** [min_word t] = {!choose_opt}: the lexicographically least word (every
    representation enumerates in ascending order). *)
val min_word : t -> Word.t option

(** [first_absent_word t] is the least word of the tier's uniform length
    missing from [t] ([None] when full) — gap scans on T0/T1, a non-full
    descent on T2; O(representation), never O(2^len).
    @raise Invalid_argument on the set representation. *)
val first_absent_word : t -> Word.t option

(** [full alpha n] is [Σ^n]. *)
val full : Alphabet.t -> int -> t

(** [complement_within alpha n l] is [Σ^n \ l]; words of other lengths in
    [l] are ignored. *)
val complement_within : Alphabet.t -> int -> t -> t

(** Distinct word lengths occurring in the language, ascending. *)
val lengths : t -> int list

(** [uniform_length l] is [Some n] when every word has length [n]
    (and the language is non-empty). *)
val uniform_length : t -> int option

(** [sample rng k l] draws [k] distinct words uniformly without
    replacement (all of them if [k >= cardinal l]). *)
val sample : Ucfg_util.Rng.t -> int -> t -> Word.t list

(** [digest l] is the MD5 hex digest of the sorted word enumeration —
    a stable content fingerprint for cached artifacts.  Representation
    invariant: a packed language and its set form hash identically. *)
val digest : t -> string

val pp : Format.formatter -> t -> unit
