(** Finite languages.

    A finite language is a finite set of words; this is the object that the
    paper's grammars, automata and rectangle covers all denote.  All the
    usual boolean and concatenation operations are provided, together with
    the fixed-length queries the rectangle machinery needs. *)

open Ucfg_word

type t

(** {1 Representations}

    Internally a language is either a persistent string set or, when all
    words are binary and share one length [<= Packed.max_length], a
    {!Packed} value (sorted machine-integer codes).  The two behave
    identically — same iteration order, same [elements], same
    [choose_opt] — so the representation is observable only through
    {!to_packed}. *)

(** [of_packed p] wraps a packed language (empty packed values normalise to
    {!empty}). *)
val of_packed : Packed.t -> t

(** [to_packed t] is the packed backend when [t] currently uses it — an
    O(1) peek, never a conversion.  Use {!pack} first to force one. *)
val to_packed : t -> Packed.t option

(** [pack t] switches to the packed representation when the language is
    non-empty, uniform-length, binary and short enough; otherwise [t]
    unchanged.  Lossless either way. *)
val pack : t -> t

(** [unpack t] forces the set representation — the inverse of {!pack}.
    Mostly for benchmarking the packed backend against the set baseline. *)
val unpack : t -> t

val empty : t
val singleton : Word.t -> t
val of_list : Word.t list -> t
val of_seq : Word.t Seq.t -> t
val add : Word.t -> t -> t
val mem : Word.t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

(** [concat l1 l2] is the pairwise concatenation [{uv | u in l1, v in l2}]. *)
val concat : t -> t -> t

(** [concat_list ls] folds {!concat} over a list, starting from [{ε}]. *)
val concat_list : t list -> t

val elements : t -> Word.t list
val to_seq : t -> Word.t Seq.t
val iter : (Word.t -> unit) -> t -> unit
val fold : (Word.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Word.t -> bool) -> t -> t
val map : (Word.t -> Word.t) -> t -> t
val for_all : (Word.t -> bool) -> t -> bool
val exists : (Word.t -> bool) -> t -> bool
val choose_opt : t -> Word.t option

(** [full alpha n] is [Σ^n]. *)
val full : Alphabet.t -> int -> t

(** [complement_within alpha n l] is [Σ^n \ l]; words of other lengths in
    [l] are ignored. *)
val complement_within : Alphabet.t -> int -> t -> t

(** Distinct word lengths occurring in the language, ascending. *)
val lengths : t -> int list

(** [uniform_length l] is [Some n] when every word has length [n]
    (and the language is non-empty). *)
val uniform_length : t -> int option

(** [sample rng k l] draws [k] distinct words uniformly without
    replacement (all of them if [k >= cardinal l]). *)
val sample : Ucfg_util.Rng.t -> int -> t -> Word.t list

(** [digest l] is the MD5 hex digest of the sorted word enumeration —
    a stable content fingerprint for cached artifacts.  Representation
    invariant: a packed language and its set form hash identically. *)
val digest : t -> string

val pp : Format.formatter -> t -> unit
