module Bitset = Ucfg_util.Bitset

let max_length = 62

(* Below this word length the full [2^len] universe fits a small bitset and
   boolean operations become word-parallel; above it, sorted code arrays.
   The representation depends on [len] alone, so two languages of the same
   length never mix representations. *)
let dense_cap = 16

type repr = Dense of Bitset.t | Sparse of int array
type t = { len : int; repr : repr }

let check_len op len =
  if len < 0 || len > max_length then
    invalid_arg
      (Printf.sprintf
         "Packed.%s: length %d out of [0, %d] — lengths up to 128 live on \
          the multi-word tier (Wide), longer ones on the factorised tier \
          (Factored); Lang dispatches automatically"
         op len max_length)

let length t = t.len

let is_dense len = len <= dense_cap

let empty len =
  check_len "empty" len;
  { len;
    repr = (if is_dense len then Dense (Bitset.create (1 lsl len)) else Sparse [||]) }

let full len =
  check_len "full" len;
  { len;
    repr =
      (if is_dense len then Dense (Bitset.full (1 lsl len))
       else Sparse (Array.init (1 lsl len) Fun.id)) }

let code_of_word w =
  let len = String.length w in
  check_len "code_of_word" len;
  let code = ref 0 in
  for i = 0 to len - 1 do
    match w.[i] with
    | 'a' -> ()
    | 'b' -> code := !code lor (1 lsl (len - 1 - i))
    | _ -> invalid_arg "Packed.code_of_word: non-binary character"
  done;
  !code

let word_of_code ~len code =
  check_len "word_of_code" len;
  String.init len (fun i ->
      if (code lsr (len - 1 - i)) land 1 = 1 then 'b' else 'a')

let is_empty t =
  match t.repr with Dense b -> Bitset.is_empty b | Sparse a -> Array.length a = 0

let cardinal t =
  match t.repr with Dense b -> Bitset.cardinal b | Sparse a -> Array.length a

let of_sorted_codes ~len codes =
  check_len "of_sorted_codes" len;
  if is_dense len then begin
    let b = Bitset.create (1 lsl len) in
    Array.iter (fun c -> Bitset.Mut.set b c) codes;
    { len; repr = Dense b }
  end
  else { len; repr = Sparse codes }

let of_codes ~len codes =
  check_len "of_codes" len;
  (* [c lsr len <> 0] instead of [c >= 1 lsl len]: at len = 62 the universe
     size itself overflows the 63-bit native int and would reject every
     code *)
  Array.iter
    (fun c ->
       if c < 0 || c lsr len <> 0 then
         invalid_arg "Packed.of_codes: code out of range")
    codes;
  if is_dense len then of_sorted_codes ~len codes
  else begin
    let a = Array.copy codes in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then empty len
    else begin
      (* in-place dedup of the sorted copy *)
      let k = ref 1 in
      for i = 1 to n - 1 do
        if a.(i) <> a.(!k - 1) then begin
          a.(!k) <- a.(i);
          incr k
        end
      done;
      { len; repr = Sparse (Array.sub a 0 !k) }
    end
  end

let singleton_word w = of_sorted_codes ~len:(String.length w) [| code_of_word w |]

let mem_code t c =
  c >= 0
  && (match t.repr with
      | Dense b -> c < Bitset.size b && Bitset.mem b c
      | Sparse a ->
        let lo = ref 0 and hi = ref (Array.length a - 1) and found = ref false in
        while (not !found) && !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if a.(mid) = c then found := true
          else if a.(mid) < c then lo := mid + 1
          else hi := mid - 1
        done;
        !found)

let mem t w =
  String.length w = t.len
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  && mem_code t (code_of_word w)

let iter_codes f t =
  match t.repr with Dense b -> Bitset.iter f b | Sparse a -> Array.iter f a

let fold_codes f t init =
  match t.repr with
  | Dense b -> Bitset.fold f b init
  | Sparse a -> Array.fold_left (fun acc c -> f c acc) init a

let codes t =
  match t.repr with
  | Dense b -> List.to_seq (Bitset.elements b)
  | Sparse a -> Array.to_seq a

let words t = Seq.map (word_of_code ~len:t.len) (codes t)

let first_code t =
  match t.repr with
  | Dense b -> Bitset.Mut.lowest_set b
  | Sparse a -> if Array.length a = 0 then None else Some a.(0)

let min_word t = Option.map (word_of_code ~len:t.len) (first_code t)

(* Gap scan over the sorted codes: the least absent code is the first index
   where the strictly-increasing code array pulls ahead of the identity —
   O(cardinal), never O(2^len), so universality witnesses stay cheap even
   when the complement would not fit in memory. *)
let first_absent_code t =
  match t.repr with
  | Dense b ->
    let universe = Bitset.size b in
    let rec scan c =
      if c >= universe then None
      else if Bitset.mem b c then scan (c + 1)
      else Some c
    in
    scan 0
  | Sparse a ->
    let n = Array.length a in
    let rec scan i =
      if i >= n then if n = 1 lsl t.len then None else Some n
      else if a.(i) > i then Some i
      else scan (i + 1)
    in
    scan 0

let check_same_len op t1 t2 =
  if t1.len <> t2.len then
    invalid_arg (Printf.sprintf "Packed.%s: length mismatch (%d vs %d)" op t1.len t2.len)

(* Merge of two strictly-increasing code arrays under a boolean op encoded by
   [keep_left]/[keep_right]/[keep_both]. *)
let merge_sparse ~keep_left ~keep_right ~keep_both a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push c = out.(!k) <- c; incr k in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      if keep_left then push x;
      incr i
    end
    else if x > y then begin
      if keep_right then push y;
      incr j
    end
    else begin
      if keep_both then push x;
      incr i; incr j
    end
  done;
  if keep_left then
    while !i < na do push a.(!i); incr i done;
  if keep_right then
    while !j < nb do push b.(!j); incr j done;
  Array.sub out 0 !k

let union t1 t2 =
  check_same_len "union" t1 t2;
  match t1.repr, t2.repr with
  | Dense a, Dense b -> { t1 with repr = Dense (Bitset.union a b) }
  | Sparse a, Sparse b ->
    { t1 with repr = Sparse (merge_sparse ~keep_left:true ~keep_right:true ~keep_both:true a b) }
  | _ -> assert false

let inter t1 t2 =
  check_same_len "inter" t1 t2;
  match t1.repr, t2.repr with
  | Dense a, Dense b -> { t1 with repr = Dense (Bitset.inter a b) }
  | Sparse a, Sparse b ->
    { t1 with repr = Sparse (merge_sparse ~keep_left:false ~keep_right:false ~keep_both:true a b) }
  | _ -> assert false

let diff t1 t2 =
  check_same_len "diff" t1 t2;
  match t1.repr, t2.repr with
  | Dense a, Dense b -> { t1 with repr = Dense (Bitset.diff a b) }
  | Sparse a, Sparse b ->
    { t1 with repr = Sparse (merge_sparse ~keep_left:true ~keep_right:false ~keep_both:false a b) }
  | _ -> assert false

let equal t1 t2 =
  t1.len = t2.len
  && (match t1.repr, t2.repr with
      | Dense a, Dense b -> Bitset.equal a b
      | Sparse a, Sparse b -> a = b
      | _ -> assert false)

let subset t1 t2 =
  check_same_len "subset" t1 t2;
  match t1.repr, t2.repr with
  | Dense a, Dense b -> Bitset.subset a b
  | Sparse a, Sparse b ->
    Array.length (merge_sparse ~keep_left:true ~keep_right:false ~keep_both:false a b) = 0
  | _ -> assert false

let disjoint t1 t2 =
  check_same_len "disjoint" t1 t2;
  match t1.repr, t2.repr with
  | Dense a, Dense b -> Bitset.disjoint a b
  | Sparse a, Sparse b ->
    Array.length (merge_sparse ~keep_left:false ~keep_right:false ~keep_both:true a b) = 0
  | _ -> assert false

let complement_within t =
  match t.repr with
  | Dense b -> { t with repr = Dense (Bitset.complement b) }
  | Sparse a ->
    let universe = 1 lsl t.len in
    let out = Array.make (universe - Array.length a) 0 in
    let k = ref 0 and j = ref 0 in
    for c = 0 to universe - 1 do
      if !j < Array.length a && a.(!j) = c then incr j
      else begin
        out.(!k) <- c;
        incr k
      end
    done;
    { t with repr = Sparse out }

let add_code t c =
  if c < 0 || c lsr t.len <> 0 then
    invalid_arg "Packed.add_code: code out of range";
  match t.repr with
  | Dense b -> { t with repr = Dense (Bitset.add b c) }
  | Sparse a ->
    if mem_code t c then t
    else { t with repr = Sparse (merge_sparse ~keep_left:true ~keep_right:true ~keep_both:true a [| c |]) }

let concat t1 t2 =
  let len = t1.len + t2.len in
  if len > max_length then
    invalid_arg
      (Printf.sprintf
         "Packed.concat: combined length %d exceeds %d — escalate to the \
          multi-word tier (Wide.concat), or let Lang.concat dispatch"
         len max_length);
  let c1 = cardinal t1 and c2 = cardinal t2 in
  (* key (u ^ v) = key u lsl len2 lor key v is strictly monotone in the
     lexicographic pair (u, v), so the nested ascending iteration emits the
     product already sorted and duplicate-free. *)
  let out = Array.make (c1 * c2) 0 in
  let k = ref 0 in
  iter_codes
    (fun cu ->
       let hi = cu lsl t2.len in
       iter_codes
         (fun cv ->
            out.(!k) <- hi lor cv;
            incr k)
         t2)
    t1;
  of_sorted_codes ~len out

let filter p t =
  let out = ref [] and n = ref 0 in
  iter_codes
    (fun c ->
       if p (word_of_code ~len:t.len c) then begin
         out := c :: !out;
         incr n
       end)
    t;
  let a = Array.make !n 0 in
  List.iteri (fun i c -> a.(!n - 1 - i) <- c) !out;
  of_sorted_codes ~len:t.len a

let pp fmt t =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (List.of_seq (words t)))
