open Ucfg_word

(* Hybrid representation: general languages live in a persistent string set;
   non-empty languages of one length whose words are all binary and short
   enough live in the packed backend ({!Packed}), where the boolean algebra
   and concatenation run on machine integers.  The packed code order equals
   the lexicographic word order, so every observable behaviour — iteration
   order, [elements], [choose_opt], predicate application order — is
   identical in both representations.  Canonical form: the empty language is
   always [Set Word.Set.empty] (a [Packed] value is never empty). *)
type t = Set of Word.Set.t | Packed of Packed.t

let empty = Set Word.Set.empty

let of_packed p = if Packed.is_empty p then empty else Packed p
let to_packed = function Packed p -> Some p | Set _ -> None

let is_binary_word w = String.for_all (fun c -> c = 'a' || c = 'b') w

let packable_word w =
  String.length w <= Packed.max_length && is_binary_word w

(* Lossless conversions. *)
let to_set = function
  | Set s -> s
  | Packed p -> Word.Set.of_seq (Packed.words p)

let pack t =
  match t with
  | Packed _ -> t
  | Set s when Word.Set.is_empty s -> t
  | Set s ->
    let len = String.length (Word.Set.min_elt s) in
    if
      len <= Packed.max_length
      && Word.Set.for_all
           (fun w -> String.length w = len && is_binary_word w)
           s
    then begin
      let codes = Array.make (Word.Set.cardinal s) 0 in
      let k = ref 0 in
      (* set iteration is ascending, and the code order agrees with it *)
      Word.Set.iter
        (fun w ->
           codes.(!k) <- Packed.code_of_word w;
           incr k)
        s;
      Packed (Packed.of_sorted_codes ~len codes)
    end
    else t

let unpack = function Packed _ as t -> Set (to_set t) | t -> t

let singleton w =
  if packable_word w then Packed (Packed.singleton_word w)
  else Set (Word.Set.singleton w)

let of_list ws = pack (Set (Word.Set.of_list ws))
let of_seq ws = pack (Set (Word.Set.of_seq ws))

(* [add] degrades a packed value to the set representation: persistent
   single-word insertion into a packed array is O(cardinal), so the common
   [fold add empty] accumulation loops would turn quadratic.  Adding to the
   empty language still yields a packed singleton, so only the second add
   pays a (one-element) conversion. *)
let add w t =
  match t with
  | Set s when Word.Set.is_empty s -> singleton w
  | Set s -> Set (Word.Set.add w s)
  | Packed _ -> Set (Word.Set.add w (to_set t))

let mem w = function
  | Set s -> Word.Set.mem w s
  | Packed p -> Packed.mem p w

let cardinal = function
  | Set s -> Word.Set.cardinal s
  | Packed p -> Packed.cardinal p

let is_empty = function Set s -> Word.Set.is_empty s | Packed _ -> false

let same_len p q = Packed.length p = Packed.length q

let union a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> Packed (Packed.union p q)
  | _ ->
    if is_empty a then b
    else if is_empty b then a
    else Set (Word.Set.union (to_set a) (to_set b))

let inter a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> of_packed (Packed.inter p q)
  | Packed p, Packed q when not (same_len p q) -> empty
  | _ -> Set (Word.Set.inter (to_set a) (to_set b))

let diff a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> of_packed (Packed.diff p q)
  | Packed _, Packed _ -> a
  | _ ->
    if is_empty a || is_empty b then a
    else Set (Word.Set.diff (to_set a) (to_set b))

let equal a b =
  match a, b with
  | Packed p, Packed q -> same_len p q && Packed.equal p q
  | Set s, Set s' -> Word.Set.equal s s'
  | (Packed _ as pk), (Set _ as st) | (Set _ as st), (Packed _ as pk) ->
    (not (is_empty st))
    && cardinal pk = cardinal st
    && Word.Set.equal (to_set pk) (to_set st)

let subset a b =
  match a, b with
  | Packed p, Packed q -> same_len p q && Packed.subset p q
  | _ ->
    is_empty a
    || ((not (is_empty b)) && Word.Set.subset (to_set a) (to_set b))

let disjoint a b =
  match a, b with
  | Packed p, Packed q -> (not (same_len p q)) || Packed.disjoint p q
  | _ ->
    is_empty a || is_empty b || Word.Set.disjoint (to_set a) (to_set b)

(* below this many (u, v) pairs the fan-out overhead outweighs the work *)
let par_pair_threshold = 1 lsl 12

(* Packed product, chunked over the left operand's codes when large.  Each
   chunk of ascending u-codes emits an ascending slice of the result, and
   chunks are concatenated in submission order, so the output array is the
   same sorted array the sequential loop produces. *)
let concat_packed p q =
  let len = Packed.length p + Packed.length q in
  let pairs = Packed.cardinal p * Packed.cardinal q in
  if Ucfg_exec.Exec.jobs () <= 1 || pairs < par_pair_threshold then
    Packed.concat p q
  else begin
    let len2 = Packed.length q in
    let c2 = Packed.cardinal q in
    let product_chunk us =
      let out = Array.make (List.length us * c2) 0 in
      let k = ref 0 in
      List.iter
        (fun cu ->
           let hi = cu lsl len2 in
           Packed.iter_codes
             (fun cv ->
                out.(!k) <- hi lor cv;
                incr k)
             q)
        us;
      out
    in
    Ucfg_exec.Exec.parallel_map product_chunk
      (Ucfg_exec.Exec.chunks (List.of_seq (Packed.codes p)))
    |> Array.concat
    |> fun codes -> Packed.of_sorted_codes ~len codes
  end

let concat_sets l1 l2 =
  let seq () =
    Word.Set.fold
      (fun u acc ->
         Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
      l1 Word.Set.empty
  in
  if
    Ucfg_exec.Exec.jobs () <= 1
    || Word.Set.cardinal l1 * Word.Set.cardinal l2 < par_pair_threshold
  then seq ()
  else begin
    (* partition the left words across domains; set union is insensitive to
       the partition, so the result is identical to the sequential fold *)
    let concat_chunk us =
      List.fold_left
        (fun acc u ->
           Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
        Word.Set.empty us
    in
    Ucfg_exec.Exec.parallel_map concat_chunk
      (Ucfg_exec.Exec.chunks (Word.Set.elements l1))
    |> List.fold_left Word.Set.union Word.Set.empty
  end

let concat a b =
  match a, b with
  | Packed p, Packed q
    when Packed.length p + Packed.length q <= Packed.max_length ->
    Packed (concat_packed p q)
  | _ ->
    if is_empty a || is_empty b then empty
    else Set (concat_sets (to_set a) (to_set b))

let concat_list ls = List.fold_left concat (singleton "") ls

let elements = function
  | Set s -> Word.Set.elements s
  | Packed p -> List.of_seq (Packed.words p)

let to_seq = function Set s -> Word.Set.to_seq s | Packed p -> Packed.words p

(* both representations enumerate in ascending string order (packed code
   order is lexicographic within the uniform length), so the digest is
   representation-invariant: pack/unpack round trips hash identically *)
let digest l =
  let buf = Buffer.create 1024 in
  Seq.iter
    (fun w ->
       Buffer.add_string buf w;
       Buffer.add_char buf '\n')
    (match l with Set s -> Word.Set.to_seq s | Packed p -> Packed.words p);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let iter f = function
  | Set s -> Word.Set.iter f s
  | Packed p -> Packed.iter_codes (fun c -> f (Packed.word_of_code ~len:(Packed.length p) c)) p

let fold f t init =
  match t with
  | Set s -> Word.Set.fold f s init
  | Packed p ->
    Packed.fold_codes
      (fun c acc -> f (Packed.word_of_code ~len:(Packed.length p) c) acc)
      p init

let filter f = function
  | Set s -> Set (Word.Set.filter f s)
  | Packed p -> of_packed (Packed.filter f p)

let map f t =
  match t with
  | Set s -> pack (Set (Word.Set.map f s))
  | Packed _ -> pack (Set (fold (fun w acc -> Word.Set.add (f w) acc) t Word.Set.empty))

exception Early

let for_all f = function
  | Set s -> Word.Set.for_all f s
  | Packed p ->
    (try
       Packed.iter_codes
         (fun c ->
            if not (f (Packed.word_of_code ~len:(Packed.length p) c)) then
              raise_notrace Early)
         p;
       true
     with Early -> false)

let exists f = function
  | Set s -> Word.Set.exists f s
  | Packed p ->
    (try
       Packed.iter_codes
         (fun c ->
            if f (Packed.word_of_code ~len:(Packed.length p) c) then
              raise_notrace Early)
         p;
       false
     with Early -> true)

let choose_opt = function
  | Set s -> Word.Set.choose_opt s (* stdlib choose = min_elt *)
  | Packed p -> Packed.min_word p

let full alpha n =
  if Alphabet.chars alpha = [ 'a'; 'b' ] && n <= Packed.max_length then
    of_packed (Packed.full n)
  else of_seq (Word.enumerate alpha n)

let complement_within alpha n l =
  if Alphabet.chars alpha = [ 'a'; 'b' ] && n <= Packed.max_length then
    match l with
    | Packed p when Packed.length p = n ->
      of_packed (Packed.complement_within p)
    | _ ->
      (* same filter the set path runs, just over the packed universe *)
      of_packed (Packed.filter (fun w -> not (mem w l)) (Packed.full n))
  else
    Set
      (Word.Set.filter
         (fun w -> not (mem w l))
         (Word.Set.of_seq (Word.enumerate alpha n)))

let lengths = function
  | Packed p -> [ Packed.length p ]
  | Set s ->
    Word.Set.fold (fun w acc -> String.length w :: acc) s []
    |> List.sort_uniq compare

let uniform_length l =
  match lengths l with [ n ] -> Some n | _ -> None

let sample rng k l =
  let arr = Array.of_list (elements l) in
  Ucfg_util.Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let pp fmt l =
  Format.fprintf fmt "{%s}" (String.concat ", " (elements l))
