open Ucfg_word

type t = Word.Set.t

let empty = Word.Set.empty
let singleton = Word.Set.singleton
let of_list = Word.Set.of_list
let of_seq = Word.Set.of_seq
let add = Word.Set.add
let mem = Word.Set.mem
let cardinal = Word.Set.cardinal
let is_empty = Word.Set.is_empty

let union = Word.Set.union
let inter = Word.Set.inter
let diff = Word.Set.diff
let equal = Word.Set.equal
let subset = Word.Set.subset
let disjoint = Word.Set.disjoint

(* below this many (u, v) pairs the fan-out overhead outweighs the work *)
let par_pair_threshold = 1 lsl 12

let concat l1 l2 =
  let seq () =
    Word.Set.fold
      (fun u acc ->
         Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
      l1 Word.Set.empty
  in
  if
    Ucfg_exec.Exec.jobs () <= 1
    || Word.Set.cardinal l1 * Word.Set.cardinal l2 < par_pair_threshold
  then seq ()
  else begin
    (* partition the left words across domains; set union is insensitive to
       the partition, so the result is identical to the sequential fold *)
    let concat_chunk us =
      List.fold_left
        (fun acc u ->
           Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
        Word.Set.empty us
    in
    Ucfg_exec.Exec.parallel_map concat_chunk
      (Ucfg_exec.Exec.chunks (Word.Set.elements l1))
    |> List.fold_left Word.Set.union Word.Set.empty
  end

let concat_list ls = List.fold_left concat (singleton "") ls

let elements = Word.Set.elements
let to_seq = Word.Set.to_seq
let iter = Word.Set.iter
let fold = Word.Set.fold
let filter = Word.Set.filter
let map = Word.Set.map
let for_all = Word.Set.for_all
let exists = Word.Set.exists
let choose_opt = Word.Set.choose_opt

let full alpha n = of_seq (Word.enumerate alpha n)

let complement_within alpha n l =
  Word.Set.filter (fun w -> not (Word.Set.mem w l)) (full alpha n)

let lengths l =
  Word.Set.fold
    (fun w acc ->
       let n = String.length w in
       if List.mem n acc then acc else n :: acc)
    l []
  |> List.sort compare

let uniform_length l =
  match lengths l with [ n ] -> Some n | _ -> None

let sample rng k l =
  let arr = Array.of_list (elements l) in
  Ucfg_util.Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let pp fmt l =
  Format.fprintf fmt "{%s}" (String.concat ", " (elements l))
