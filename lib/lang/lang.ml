open Ucfg_word

(* Tiered representation.  General languages live in a persistent string
   set; non-empty uniform-length binary languages live on the packed tier
   ladder:

     T0  [Packed]    len <= 62    one machine integer per code
     T1  [Wide]      len <= 128   ceil(len/62) limbs per code, same algebra
     T2  [Factored]  any length   hash-consed decision DAG (a deterministic
                                  d-rep), cardinals by model counting

   Dispatch is by length — and, for concatenation, by *cardinality*: a
   product whose explicit code array would exceed [wide_pair_threshold]
   escalates to T2 even at small lengths, which is what lets the n >= 16
   sweeps run where 4^n words could never be enumerated.  All tiers (and
   the set form) enumerate in ascending lexicographic order, so every
   observable behaviour — iteration order, [elements], [choose_opt],
   [digest] — is representation-invariant.  Canonical form: the empty
   language is always [Set Word.Set.empty] (a tiered value is never
   empty). *)
type t =
  | Set of Word.Set.t
  | Packed of Packed.t
  | Wide of Wide.t
  | Factored of Factored.t

let empty = Set Word.Set.empty

let of_packed p = if Packed.is_empty p then empty else Packed p
let to_packed = function Packed p -> Some p | _ -> None
let of_wide w = if Wide.is_empty w then empty else Wide w
let to_wide = function Wide w -> Some w | _ -> None
let of_factored f = if Factored.is_empty f then empty else Factored f
let to_factored = function Factored f -> Some f | _ -> None

let tier = function
  | Set _ -> `Set
  | Packed _ -> `T0
  | Wide _ -> `T1
  | Factored _ -> `T2

let is_binary_word w = String.for_all (fun c -> c = 'a' || c = 'b') w

let packable_word w =
  String.length w <= Packed.max_length && is_binary_word w

(* Lossless conversions. *)
let to_set = function
  | Set s -> s
  | Packed p -> Word.Set.of_seq (Packed.words p)
  | Wide w -> Word.Set.of_seq (Wide.words w)
  | Factored f -> Word.Set.of_seq (Factored.words f)

let pack t =
  match t with
  | Packed _ | Wide _ | Factored _ -> t
  | Set s when Word.Set.is_empty s -> t
  | Set s ->
    let len = String.length (Word.Set.min_elt s) in
    if
      not
        (Word.Set.for_all
           (fun w -> String.length w = len && is_binary_word w)
           s)
    then t
    else if len <= Packed.max_length then begin
      let codes = Array.make (Word.Set.cardinal s) 0 in
      let k = ref 0 in
      (* set iteration is ascending, and the code order agrees with it *)
      Word.Set.iter
        (fun w ->
           codes.(!k) <- Packed.code_of_word w;
           incr k)
        s;
      Packed (Packed.of_sorted_codes ~len codes)
    end
    else if len <= Wide.max_length then
      Wide (Wide.of_word_list len (Word.Set.elements s))
    else Factored (Factored.of_word_list len (Word.Set.elements s))

let unpack = function Set _ as t -> t | t -> Set (to_set t)

(* [factor t] forces tier T2 when the language is uniform-length binary
   (leaving [t] unchanged otherwise, and the empty language canonical). *)
let factor t =
  match t with
  | Factored _ -> t
  | Packed p -> Factored (Factored.of_packed p)
  | Wide w -> Factored (Factored.of_wide w)
  | Set s when Word.Set.is_empty s -> t
  | Set s ->
    let len = String.length (Word.Set.min_elt s) in
    if
      Word.Set.for_all
        (fun w -> String.length w = len && is_binary_word w)
        s
    then Factored (Factored.of_word_list len (Word.Set.elements s))
    else t

let singleton w =
  if packable_word w then Packed (Packed.singleton_word w)
  else if is_binary_word w && String.length w <= Wide.max_length then
    Wide (Wide.singleton_word w)
  else if is_binary_word w then Factored (Factored.singleton_word w)
  else Set (Word.Set.singleton w)

let of_list ws = pack (Set (Word.Set.of_list ws))
let of_seq ws = pack (Set (Word.Set.of_seq ws))

(* [add] degrades a tiered value to the set representation: persistent
   single-word insertion into a sorted code array is O(cardinal), so the
   common [fold add empty] accumulation loops would turn quadratic.  Adding
   to the empty language still yields a tiered singleton, so only the
   second add pays a (one-element) conversion. *)
let add w t =
  match t with
  | Set s when Word.Set.is_empty s -> singleton w
  | Set s -> Set (Word.Set.add w s)
  | Packed _ | Wide _ | Factored _ -> Set (Word.Set.add w (to_set t))

let mem w = function
  | Set s -> Word.Set.mem w s
  | Packed p -> Packed.mem p w
  | Wide wd -> Wide.mem wd w
  | Factored f -> Factored.mem f w

let cardinal = function
  | Set s -> Word.Set.cardinal s
  | Packed p -> Packed.cardinal p
  | Wide w -> Wide.cardinal w
  | Factored f -> (
      match Factored.cardinal_int f with
      | Some n -> n
      | None ->
        invalid_arg
          "Lang.cardinal: cardinal exceeds the native int range (use \
           Lang.cardinal_big)")

let cardinal_big = function
  | Factored f -> Factored.cardinal f
  | t -> Ucfg_util.Bignum.of_int (cardinal t)

let is_empty = function
  | Set s -> Word.Set.is_empty s
  | Packed _ | Wide _ | Factored _ -> false

let same_len p q = Packed.length p = Packed.length q

(* Uniform length of a tiered value, [None] on the set form — O(1). *)
let tier_length = function
  | Packed p -> Some (Packed.length p)
  | Wide w -> Some (Wide.length w)
  | Factored f -> Some (Factored.length f)
  | Set _ -> None

(* Promote two same-length tiered values to their common (higher) tier.
   T0 lifts into T1 by reinterpreting codes as one-limb codes; T1 lifts
   into T2 by a sorted-range build.  Used only on equal lengths. *)
let as_wide = function
  | Packed p -> Wide.of_packed p
  | Wide w -> w
  | Set _ | Factored _ -> assert false

let as_factored = function
  | Packed p -> Factored.of_packed p
  | Wide w -> Factored.of_wide w
  | Factored f -> f
  | Set _ -> assert false

let union a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> Packed (Packed.union p q)
  | (Factored _, (Packed _ | Wide _ | Factored _)
    | (Packed _ | Wide _), Factored _)
    when tier_length a = tier_length b ->
    Factored (Factored.union (as_factored a) (as_factored b))
  | ((Packed _ | Wide _), (Packed _ | Wide _))
    when tier_length a = tier_length b ->
    Wide (Wide.union (as_wide a) (as_wide b))
  | _ ->
    if is_empty a then b
    else if is_empty b then a
    else Set (Word.Set.union (to_set a) (to_set b))

let inter a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> of_packed (Packed.inter p q)
  | (Factored _, (Packed _ | Wide _ | Factored _)
    | (Packed _ | Wide _), Factored _)
    when tier_length a = tier_length b ->
    of_factored (Factored.inter (as_factored a) (as_factored b))
  | ((Packed _ | Wide _), (Packed _ | Wide _))
    when tier_length a = tier_length b ->
    of_wide (Wide.inter (as_wide a) (as_wide b))
  | (Packed _ | Wide _ | Factored _), (Packed _ | Wide _ | Factored _) ->
    empty (* different uniform lengths never intersect *)
  | (Factored f, Set s | Set s, Factored f) ->
    (* keep the set side enumerated: the factored side may be huge *)
    pack
      (Set (Word.Set.filter (fun w -> Factored.mem f w) s))
  | _ -> Set (Word.Set.inter (to_set a) (to_set b))

let diff a b =
  match a, b with
  | Packed p, Packed q when same_len p q -> of_packed (Packed.diff p q)
  | (Factored _, (Packed _ | Wide _ | Factored _)
    | (Packed _ | Wide _), Factored _)
    when tier_length a = tier_length b ->
    of_factored (Factored.diff (as_factored a) (as_factored b))
  | ((Packed _ | Wide _), (Packed _ | Wide _))
    when tier_length a = tier_length b ->
    of_wide (Wide.diff (as_wide a) (as_wide b))
  | (Packed _ | Wide _ | Factored _), (Packed _ | Wide _ | Factored _) ->
    a (* different uniform lengths: nothing to remove *)
  | Set s, Factored f ->
    pack (Set (Word.Set.filter (fun w -> not (Factored.mem f w)) s))
  | _ ->
    if is_empty a || is_empty b then a
    else Set (Word.Set.diff (to_set a) (to_set b))

let equal a b =
  match a, b with
  | Packed p, Packed q -> same_len p q && Packed.equal p q
  | Set s, Set s' -> Word.Set.equal s s'
  | (Wide _ | Factored _), (Packed _ | Wide _ | Factored _)
  | Packed _, (Wide _ | Factored _) ->
    tier_length a = tier_length b
    && (match a, b with
        | Factored _, _ | _, Factored _ ->
          Factored.equal (as_factored a) (as_factored b)
        | _ -> Wide.equal (as_wide a) (as_wide b))
  | (Factored f as fc), (Set _ as st) | (Set _ as st), (Factored f as fc) ->
    (* never enumerate the factored side: cardinal check, then membership
       of the (already materialised) set side *)
    (not (is_empty st))
    && tier_length fc = Some (String.length (Word.Set.min_elt (to_set st)))
    && Ucfg_util.Bignum.equal (Factored.cardinal f)
         (Ucfg_util.Bignum.of_int (cardinal st))
    && Word.Set.for_all (fun w -> Factored.mem f w) (to_set st)
  | ((Packed _ | Wide _) as pk), (Set _ as st)
  | (Set _ as st), ((Packed _ | Wide _) as pk) ->
    (not (is_empty st))
    && cardinal pk = cardinal st
    && Word.Set.equal (to_set pk) (to_set st)

let subset a b =
  match a, b with
  | Packed p, Packed q -> same_len p q && Packed.subset p q
  | (Wide _ | Factored _), (Packed _ | Wide _ | Factored _)
  | Packed _, (Wide _ | Factored _) ->
    tier_length a = tier_length b
    && (match a, b with
        | Factored _, _ | _, Factored _ ->
          Factored.subset (as_factored a) (as_factored b)
        | _ -> Wide.subset (as_wide a) (as_wide b))
  | Set _, Factored f -> Word.Set.for_all (fun w -> Factored.mem f w) (to_set a)
  | Factored f, Set s ->
    Ucfg_util.Bignum.compare (Factored.cardinal f)
      (Ucfg_util.Bignum.of_int (Word.Set.cardinal s))
    <= 0
    && Seq.for_all (fun w -> Word.Set.mem w s) (Factored.words f)
  | _ ->
    is_empty a
    || ((not (is_empty b)) && Word.Set.subset (to_set a) (to_set b))

let disjoint a b =
  match a, b with
  | Packed p, Packed q -> (not (same_len p q)) || Packed.disjoint p q
  | (Wide _ | Factored _), (Packed _ | Wide _ | Factored _)
  | Packed _, (Wide _ | Factored _) ->
    tier_length a <> tier_length b
    || (match a, b with
        | Factored _, _ | _, Factored _ ->
          Factored.disjoint (as_factored a) (as_factored b)
        | _ -> Wide.disjoint (as_wide a) (as_wide b))
  | (Factored f, Set s | Set s, Factored f) ->
    Word.Set.for_all (fun w -> not (Factored.mem f w)) s
  | _ ->
    is_empty a || is_empty b || Word.Set.disjoint (to_set a) (to_set b)

(* below this many (u, v) pairs the fan-out overhead outweighs the work *)
let par_pair_threshold = 1 lsl 12

(* above this many (u, v) pairs an explicit product array stops being a
   good idea at any length: escalate to the factorised tier, where concat
   is O(nodes).  This cardinality escape — not the 62-char length wall —
   is what caps the enumerated sweeps around n ~ 10, and lifting it is
   what pushes the E-series to n >= 16. *)
let wide_pair_threshold = 1 lsl 22

(* Packed product, chunked over the left operand's codes when large.  Each
   chunk of ascending u-codes emits an ascending slice of the result, and
   chunks are concatenated in submission order, so the output array is the
   same sorted array the sequential loop produces. *)
let concat_packed p q =
  let len = Packed.length p + Packed.length q in
  let pairs = Packed.cardinal p * Packed.cardinal q in
  if Ucfg_exec.Exec.jobs () <= 1 || pairs < par_pair_threshold then
    Packed.concat p q
  else begin
    let len2 = Packed.length q in
    let c2 = Packed.cardinal q in
    let product_chunk us =
      let out = Array.make (List.length us * c2) 0 in
      let k = ref 0 in
      List.iter
        (fun cu ->
           let hi = cu lsl len2 in
           Packed.iter_codes
             (fun cv ->
                out.(!k) <- hi lor cv;
                incr k)
             q)
        us;
      out
    in
    Ucfg_exec.Exec.parallel_map product_chunk
      (Ucfg_exec.Exec.chunks (List.of_seq (Packed.codes p)))
    |> Array.concat
    |> fun codes -> Packed.of_sorted_codes ~len codes
  end

let concat_sets l1 l2 =
  let seq () =
    Word.Set.fold
      (fun u acc ->
         Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
      l1 Word.Set.empty
  in
  if
    Ucfg_exec.Exec.jobs () <= 1
    || Word.Set.cardinal l1 * Word.Set.cardinal l2 < par_pair_threshold
  then seq ()
  else begin
    (* partition the left words across domains; set union is insensitive to
       the partition, so the result is identical to the sequential fold *)
    let concat_chunk us =
      List.fold_left
        (fun acc u ->
           Word.Set.fold (fun v acc -> Word.Set.add (u ^ v) acc) l2 acc)
        Word.Set.empty us
    in
    Ucfg_exec.Exec.parallel_map concat_chunk
      (Ucfg_exec.Exec.chunks (Word.Set.elements l1))
    |> List.fold_left Word.Set.union Word.Set.empty
  end

let concat a b =
  match a, b with
  | ( (Packed _ | Wide _ | Factored _),
      (Packed _ | Wide _ | Factored _) ) -> (
      let la = Option.get (tier_length a)
      and lb = Option.get (tier_length b) in
      let len = la + lb in
      match a, b with
      | Factored _, _ | _, Factored _ ->
        Factored (Factored.concat (as_factored a) (as_factored b))
      | _ ->
        let pairs = cardinal a * cardinal b in
        if pairs >= wide_pair_threshold then
          Factored (Factored.concat (as_factored a) (as_factored b))
        else if len <= Packed.max_length then
          (* T0 inputs stay on the T0 path (the parallel chunked product);
             mixed or T1 inputs at packable lengths use the wide product *)
          (match a, b with
           | Packed p, Packed q -> Packed (concat_packed p q)
           | _ -> Wide (Wide.concat (as_wide a) (as_wide b)))
        else if len <= Wide.max_length then
          Wide (Wide.concat (as_wide a) (as_wide b))
        else Factored (Factored.concat (as_factored a) (as_factored b)))
  | _ ->
    if is_empty a || is_empty b then empty
    else Set (concat_sets (to_set a) (to_set b))

let concat_list ls = List.fold_left concat (singleton "") ls

let to_seq = function
  | Set s -> Word.Set.to_seq s
  | Packed p -> Packed.words p
  | Wide w -> Wide.words w
  | Factored f -> Factored.words f

let elements t = List.of_seq (to_seq t)

(* all representations enumerate in ascending string order (tier code
   order is lexicographic within the uniform length), so the digest is
   representation-invariant: pack/factor round trips hash identically *)
let digest l =
  let buf = Buffer.create 1024 in
  Seq.iter
    (fun w ->
       Buffer.add_string buf w;
       Buffer.add_char buf '\n')
    (to_seq l);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let iter f = function
  | Set s -> Word.Set.iter f s
  | Packed p ->
    Packed.iter_codes
      (fun c -> f (Packed.word_of_code ~len:(Packed.length p) c))
      p
  | Wide w -> Wide.iter_words f w
  | Factored fc -> Factored.iter_words f fc

let fold f t init =
  match t with
  | Set s -> Word.Set.fold f s init
  | Packed p ->
    Packed.fold_codes
      (fun c acc -> f (Packed.word_of_code ~len:(Packed.length p) c) acc)
      p init
  | Wide _ | Factored _ -> Seq.fold_left (fun acc w -> f w acc) init (to_seq t)

let filter f = function
  | Set s -> Set (Word.Set.filter f s)
  | Packed p -> of_packed (Packed.filter f p)
  | Wide w -> of_wide (Wide.filter f w)
  | Factored fc -> of_factored (Factored.filter f fc)

let map f t =
  match t with
  | Set s -> pack (Set (Word.Set.map f s))
  | Packed _ | Wide _ | Factored _ ->
    pack (Set (fold (fun w acc -> Word.Set.add (f w) acc) t Word.Set.empty))

exception Early

let for_all f = function
  | Set s -> Word.Set.for_all f s
  | Packed p ->
    (try
       Packed.iter_codes
         (fun c ->
            if not (f (Packed.word_of_code ~len:(Packed.length p) c)) then
              raise_notrace Early)
         p;
       true
     with Early -> false)
  | Wide _ | Factored _ as t -> Seq.for_all f (to_seq t)

let exists f = function
  | Set s -> Word.Set.exists f s
  | Packed p ->
    (try
       Packed.iter_codes
         (fun c ->
            if f (Packed.word_of_code ~len:(Packed.length p) c) then
              raise_notrace Early)
         p;
       false
     with Early -> true)
  | Wide _ | Factored _ as t -> Seq.exists f (to_seq t)

let choose_opt = function
  | Set s -> Word.Set.choose_opt s (* stdlib choose = min_elt *)
  | Packed p -> Packed.min_word p
  | Wide w -> Wide.min_word w
  | Factored f -> Factored.min_word f

let min_word = choose_opt

(* Least word of [Σ^len] missing from a tiered language: the T0/T1 gap
   scans and the T2 descent, all O(representation), never O(2^len).
   [None] = the language is full; raises on the set form (callers decide
   how to enumerate a raw set). *)
let first_absent_word = function
  | Packed p ->
    Option.map
      (Packed.word_of_code ~len:(Packed.length p))
      (Packed.first_absent_code p)
  | Wide w -> Wide.first_absent_word w
  | Factored f -> Factored.min_absent_word f
  | Set _ -> invalid_arg "Lang.first_absent_word: set representation"

let full alpha n =
  if Alphabet.chars alpha = [ 'a'; 'b' ] then
    if n <= Packed.max_length then of_packed (Packed.full n)
    else Factored (Factored.full n)
  else of_seq (Word.enumerate alpha n)

(* Restrict [l] to its length-[n] binary slice as a T2 value. *)
let factor_slice n l =
  match l with
  | Packed p when Packed.length p = n -> Factored.of_packed p
  | Wide w when Wide.length w = n -> Factored.of_wide w
  | Factored f when Factored.length f = n -> f
  | Packed _ | Wide _ | Factored _ -> Factored.empty n
  | Set s ->
    Factored.of_word_list n
      (Word.Set.elements
         (Word.Set.filter
            (fun w -> String.length w = n && is_binary_word w)
            s))

let complement_within alpha n l =
  if Alphabet.chars alpha = [ 'a'; 'b' ] then begin
    if n <= Packed.max_length then
      match l with
      | Packed p when Packed.length p = n ->
        of_packed (Packed.complement_within p)
      | Wide _ | Factored _ ->
        of_factored (Factored.complement (factor_slice n l))
      | _ ->
        (* same filter the set path runs, just over the packed universe *)
        of_packed (Packed.filter (fun w -> not (mem w l)) (Packed.full n))
    else
      (* beyond the machine-word tier the complement cannot be enumerated:
         it lives on the factorised tier, where it is a sink swap *)
      of_factored (Factored.complement (factor_slice n l))
  end
  else
    Set
      (Word.Set.filter
         (fun w -> not (mem w l))
         (Word.Set.of_seq (Word.enumerate alpha n)))

let lengths = function
  | Packed p -> [ Packed.length p ]
  | Wide w -> [ Wide.length w ]
  | Factored f -> [ Factored.length f ]
  | Set s ->
    Word.Set.fold (fun w acc -> String.length w :: acc) s []
    |> List.sort_uniq compare

let uniform_length l =
  match lengths l with [ n ] -> Some n | _ -> None

let sample rng k l =
  let arr = Array.of_list (elements l) in
  Ucfg_util.Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min k (Array.length arr)))

let pp fmt l =
  Format.fprintf fmt "{%s}" (String.concat ", " (elements l))
