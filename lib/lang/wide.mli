(** Tier T1 of the language kernel: multi-word packed languages.

    Uniform-length binary languages whose words are too long for a single
    machine integer ({!Packed.max_length} [= 62] characters) but short
    enough that sorted code arrays still pay off: [len <= 128].  A code is
    the word's binary value split into 62-bit limbs, most-significant limb
    first, and a language is one flattened [int array] holding the codes in
    strictly increasing order — the limb-tuple order equals the
    lexicographic word order, exactly as the single-limb code order does in
    tier T0.  Every T0 algorithm carries over verbatim: boolean operations
    are linear merges, membership is binary search, concatenation is a
    shift-or over the limb boundary (monotone, so the product comes out
    sorted), and the least absent code is a gap scan against a running
    multi-word counter.

    What does {e not} carry over is complementation: [2^len - cardinal]
    codes cannot be materialised at [len > 62].  Complements (and anything
    else whose {e result} outgrows an explicit code array) escalate to the
    factorised tier {!Factored}, where they are symbolic.  The ladder is
    T0 ({!Packed}, [len <= 62]) → T1 (this module, [len <= 128]) →
    T2 ({!Factored}, any length, circuit-backed); {!Lang} dispatches
    between them automatically. *)

type t

(** Number of payload bits per limb (62: codes stay non-negative OCaml
    [int]s with a spare tag bit). *)
val limb_bits : int

(** Upper bound on the word length this tier accepts (128).  Lengths
    [<= Packed.max_length] are also accepted — the overlap range is what
    the tier-equivalence tests pin down. *)
val max_length : int

(** [limbs_for len] is the number of limbs per code at length [len]
    (at least 1). *)
val limbs_for : int -> int

(** [length t] is the uniform word length. *)
val length : t -> int

val is_empty : t -> bool
val cardinal : t -> int

(** [empty len] / [singleton_word w] / [of_word_list len ws].
    @raise Invalid_argument when the length is outside [[0, max_length]]
    (the message names the {!Factored} tier) or a word is non-binary or of
    the wrong length. *)
val empty : int -> t

val singleton_word : string -> t
val of_word_list : int -> string list -> t

(** [code_of_word w] is the code as limbs, most-significant first. *)
val code_of_word : string -> int array

val word_of_code : len:int -> int array -> string

(** [of_packed p] / [to_packed t] convert to and from tier T0 losslessly;
    [to_packed] is [None] when [length t > Packed.max_length]. *)
val of_packed : Packed.t -> t

val to_packed : t -> Packed.t option

val mem : t -> string -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

(** [concat t1 t2] — sorted-product shift-or.
    @raise Invalid_argument when the combined length exceeds
    {!max_length} (the message names the {!Factored} tier). *)
val concat : t -> t -> t

(** Least word (lexicographically), i.e. the least code. *)
val min_word : t -> string option

(** [first_absent_word t] is the least word of length [length t] {e not}
    in [t], or [None] when [t] is full — a gap scan over the sorted codes
    against a running multi-limb counter, O(cardinal), never O(2^len). *)
val first_absent_word : t -> string option

val iter_words : (string -> unit) -> t -> unit
val words : t -> string Seq.t
val filter : (string -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
