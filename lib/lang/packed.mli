(** Packed fixed-length binary languages — tier T0 of the language kernel.

    A language all of whose words are binary (over [{a, b}]) and share one
    length [len <= 62] fits into machine integers: a word is packed into
    its {e lexicographic code} — bit [len - 1 - i] of the code is set iff
    position [i] carries a ['b'] — so that the usual integer order on codes
    coincides with the lexicographic order on words ([Word.Set]'s order).
    This is the representation behind the hot paths of the reproduction:
    the witness family [L_n] and everything the exactness checks and the
    discrepancy enumerations materialise is of this shape.

    This module is the bottom rung of a three-tier ladder, all sharing the
    sorted-code merge algebra: T0 (here, one machine integer per code,
    len ≤ 62) → T1 ({!Wide}, one 62-bit limb array per code, len ≤ 128) →
    T2 ({!Factored}, a hash-consed decision-DAG circuit, any length, with
    exact Bignum model counts instead of enumeration).  {!Lang} dispatches
    between the tiers by length — and by {e cardinality}, escalating huge
    concatenation products straight to T2.

    Two consequences of the code order make the operations cheap:

    - boolean operations are merges of sorted [int array]s (or, for
      [len <= 16], bitwise operations on a {!Ucfg_util.Bitset} over the
      full [2^len] universe);
    - concatenation is [code u lsl len v lor code v], which is {e monotone}
      in the pair [(u, v)] — the product of two sorted code arrays comes
      out sorted and duplicate-free with no comparison at all.

    Values are immutable.  The representation (dense vs sorted array) is a
    function of [len] alone, so same-length operands always agree on it. *)

open Ucfg_word

type t

(** Largest word length on {e this} tier: {b 62} characters, the widest
    width at which every code [0 .. 2^len - 1] still fits OCaml's tagged
    63-bit native [int].  Every constructor validates its length against
    this cap and raises [Invalid_argument] beyond it, with a message
    naming the tier that does handle the length — {!Wide} up to 128,
    {!Factored} beyond.  62 is not a wall, just the T0/T1 crossover;
    {!Lang} moves between the tiers automatically. *)
val max_length : int

(** [length t] is the common word length.  Meaningful even when empty. *)
val length : t -> int

(** [empty len] is the empty language at length [len].
    @raise Invalid_argument unless [0 <= len <= max_length]. *)
val empty : int -> t

(** [full len] is all [2^len] binary words of length [len]. *)
val full : int -> t

(** [singleton_word w] packs the single binary word [w].
    @raise Invalid_argument on non-binary words or lengths above
    {!max_length}. *)
val singleton_word : Word.t -> t

val is_empty : t -> bool
val cardinal : t -> int

(** {1 Codes} *)

(** [code_of_word w] is the lexicographic code of the binary word [w].
    @raise Invalid_argument on non-binary characters or overlong words. *)
val code_of_word : Word.t -> int

(** [word_of_code ~len c] inverts {!code_of_word}. *)
val word_of_code : len:int -> int -> Word.t

(** [of_codes ~len codes] builds a language from arbitrary codes (the
    array is not consumed; order and duplicates do not matter). *)
val of_codes : len:int -> int array -> t

(** [of_sorted_codes ~len codes] trusts [codes] to be strictly increasing
    and takes ownership of the array.  Unchecked — the fast construction
    path for callers that enumerate in order. *)
val of_sorted_codes : len:int -> int array -> t

val mem_code : t -> int -> bool

(** [mem t w] is word membership: length, binary shape and code. *)
val mem : t -> Word.t -> bool

(** [iter_codes f t] visits codes in increasing (= lexicographic) order. *)
val iter_codes : (int -> unit) -> t -> unit

val fold_codes : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [codes t] is the code sequence, increasing. *)
val codes : t -> int Seq.t

(** [words t] is the word sequence, lexicographically increasing — the
    same order in which [Word.Set] iterates. *)
val words : t -> Word.t Seq.t

(** [first_code t] is the least (= lexicographically least) code, when
    non-empty.  O(1) on the sorted-array representation, one word scan on
    the dense one — witness extraction never unpacks a language. *)
val first_code : t -> int option

(** [min_word t] is the lexicographically least word, when non-empty:
    [word_of_code ~len (first_code t)]. *)
val min_word : t -> Word.t option

(** [first_absent_code t] is the least code of [Σ^len \ t], or [None] when
    [t] is full.  A gap scan over the sorted codes — O(cardinal), never
    O(2^len) — so universality counterexamples cost nothing extra even at
    lengths where the complement could not be materialised. *)
val first_absent_code : t -> int option

(** {1 Boolean algebra}

    All binary operations require operands of equal [length].
    @raise Invalid_argument on a length mismatch. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

(** [complement_within t] is [Σ^len \ t]. *)
val complement_within : t -> t

(** [add_code t c] is [t ∪ {c}]. *)
val add_code : t -> int -> t

(** {1 Concatenation} *)

(** [concat t1 t2] is the pairwise concatenation, a language of length
    [length t1 + length t2]; the result has exactly
    [cardinal t1 * cardinal t2] words (packing is injective).
    @raise Invalid_argument when the combined length exceeds
    {!max_length} — the message points at {!Wide.concat}, the next tier
    up ({!Lang.concat} performs that escalation itself). *)
val concat : t -> t -> t

(** [filter p t] keeps the words satisfying [p] (applied in order). *)
val filter : (Word.t -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
