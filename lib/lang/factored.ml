(* Tier T2: hash-consed level decision DAGs.

   A node at height [h] denotes a language of words of length [h] over
   {a, b}: [Branch { lo; hi }] reads one character ('a' goes to [lo], 'b'
   to [hi]), the sinks [Accept]/[Reject] denote {ε}/∅.  The diagram is
   quasi-reduced — every path from a root of height [h] has exactly [h]
   edges, no level skipping — so a node's height is determined by its
   children and the key [(id lo, id hi)] identifies it completely.  One
   global mutex-guarded hash-cons table makes structurally equal nodes
   physically equal across the whole process: equality is id comparison,
   applies memoise on id pairs, and the empty/full language of each height
   is a unique node (the [nonempty]/[full] flags below are therefore exact,
   not heuristic).

   Jobs-invariance: numeric ids depend on construction order, but two
   structurally equal languages always resolve to the same node whatever
   the interleaving (keys are built bottom-up from already-unified
   children), and no operation's *result* depends on id values — only memo
   layouts do. *)

module Bignum = Ucfg_util.Bignum
module Guard = Ucfg_exec.Guard

type node =
  | Accept
  | Reject
  | Branch of {
      id : int;
      height : int;
      nonempty : bool;
      full : bool;
      lo : node;  (* residual after 'a' *)
      hi : node;  (* residual after 'b' *)
    }

let node_id = function Accept -> 1 | Reject -> 0 | Branch b -> b.id

let height = function Accept | Reject -> 0 | Branch b -> b.height
let nonempty = function Accept -> true | Reject -> false | Branch b -> b.nonempty
let node_nonempty = nonempty
let node_full = function Accept -> true | Reject -> false | Branch b -> b.full

let view = function
  | Accept -> `Accept
  | Reject -> `Reject
  | Branch b -> `Branch (b.lo, b.hi)

(* The global manager.  All table access happens under [lock]; [mk] never
   recurses while holding it. *)
let table : (int * int, node) Hashtbl.t = Hashtbl.create 4096
let counter = ref 2
let lock = Mutex.create ()

let mk lo hi =
  let key = (node_id lo, node_id hi) in
  Mutex.lock lock;
  let n =
    match Hashtbl.find_opt table key with
    | Some n -> n
    | None ->
      let id = !counter in
      incr counter;
      let n =
        Branch
          {
            id;
            height = height lo + 1;
            nonempty = nonempty lo || nonempty hi;
            full = node_full lo && node_full hi;
            lo;
            hi;
          }
      in
      Hashtbl.add table key n;
      n
  in
  Mutex.unlock lock;
  n

let rec rejects h = if h = 0 then Reject else let c = rejects (h - 1) in mk c c
let rec accepts h = if h = 0 then Accept else let c = accepts (h - 1) in mk c c

let accept = Accept
let reject = Reject
let reject_all = rejects

let branch lo hi =
  if height lo <> height hi then
    invalid_arg "Factored.branch: children of unequal heights";
  mk lo hi

type t = { len : int; root : node }

let of_root len root =
  if height root <> len then
    invalid_arg
      (Printf.sprintf "Factored.of_root: root height %d at length %d"
         (height root) len);
  { len; root }

let root t = t.root
let length t = t.len
let is_empty t = not (nonempty t.root)
let is_full t = node_full t.root

let check_len op len =
  if len < 0 then invalid_arg (Printf.sprintf "Factored.%s: negative length" op)

let empty len =
  check_len "empty" len;
  { len; root = rejects len }

let full len =
  check_len "full" len;
  { len; root = accepts len }

let check_same_len op t1 t2 =
  if t1.len <> t2.len then
    invalid_arg
      (Printf.sprintf "Factored.%s: length mismatch (%d vs %d)" op t1.len t2.len)

(* Generic sorted-range builder: [get w] gives word [w]'s character at a
   position; the words (by index in [0, n)) are sorted lexicographically,
   so at each height the range splits at a single binary-searched point.
   Hash-consing dedups shared suffix structure as the build proceeds. *)
let build_sorted ~n ~char_at ~len =
  let rec go h lo hi =
    if lo >= hi then rejects h
    else if h = 0 then Accept
    else begin
      let pos = len - h in
      (* first index in [lo, hi) whose character at [pos] is 'b' *)
      let a = ref lo and b = ref hi in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if char_at mid pos = 'b' then b := mid else a := mid + 1
      done;
      mk (go (h - 1) lo !a) (go (h - 1) !a hi)
    end
  in
  { len; root = go len 0 n }

let singleton_word w =
  let len = String.length w in
  String.iter
    (fun c ->
       if c <> 'a' && c <> 'b' then
         invalid_arg "Factored.singleton_word: non-binary character")
    w;
  build_sorted ~n:1 ~char_at:(fun _ pos -> w.[pos]) ~len

let of_word_list len ws =
  check_len "of_word_list" len;
  List.iter
    (fun w ->
       if String.length w <> len then
         invalid_arg "Factored.of_word_list: word of the wrong length";
       String.iter
         (fun c ->
            if c <> 'a' && c <> 'b' then
              invalid_arg "Factored.of_word_list: non-binary character")
         w)
    ws;
  let arr = Array.of_list (List.sort_uniq compare ws) in
  build_sorted ~n:(Array.length arr) ~char_at:(fun i pos -> arr.(i).[pos]) ~len

let of_packed p =
  let len = Packed.length p in
  let codes = Array.of_seq (Packed.codes p) in
  build_sorted ~n:(Array.length codes)
    ~char_at:(fun i pos ->
        if (codes.(i) lsr (len - 1 - pos)) land 1 = 1 then 'b' else 'a')
    ~len

let of_wide w =
  let len = Wide.length w in
  (* materialising the word list is fine: a Wide value is an explicit code
     array already, so this is a constant-factor copy *)
  of_word_list len (List.of_seq (Wide.words w))

let mem t w =
  String.length w = t.len
  && String.for_all (fun c -> c = 'a' || c = 'b') w
  &&
  let rec go n i =
    match n with
    | Accept -> true
    | Reject -> false
    | Branch b -> go (if w.[i] = 'a' then b.lo else b.hi) (i + 1)
  in
  go t.root 0

let ambient_guard = function
  | Some g -> g
  | None -> Ucfg_exec.Exec.current_guard ()

(* Memoised apply.  Shortcut rules use the exactness of [nonempty]/[full]:
   the empty and full nodes of each height are unique, so returning the
   other operand (or a sink chain) is returning *the* canonical result. *)
type op = Union | Inter | Diff

let apply ?guard op t1 t2 =
  check_same_len
    (match op with Union -> "union" | Inter -> "inter" | Diff -> "diff")
    t1 t2;
  let g = ambient_guard guard in
  let memo : (int * int, node) Hashtbl.t = Hashtbl.create 256 in
  let rec go n1 n2 =
    let h = height n1 in
    match op with
    | Union when node_id n1 = node_id n2 -> n1
    | Union when not (nonempty n1) -> n2
    | Union when not (nonempty n2) -> n1
    | Union when node_full n1 || node_full n2 -> accepts h
    | Inter when node_id n1 = node_id n2 -> n1
    | Inter when (not (nonempty n1)) || not (nonempty n2) -> rejects h
    | Inter when node_full n1 -> n2
    | Inter when node_full n2 -> n1
    | Diff when (not (nonempty n1)) || node_id n1 = node_id n2 -> rejects h
    | Diff when not (nonempty n2) -> n1
    | _ ->
      let key = (node_id n1, node_id n2) in
      (match Hashtbl.find_opt memo key with
       | Some n -> n
       | None ->
         Guard.tick g;
         let n =
           match n1, n2 with
           | (Accept | Reject), (Accept | Reject) ->
             let x = nonempty n1 and y = nonempty n2 in
             let z =
               match op with
               | Union -> x || y
               | Inter -> x && y
               | Diff -> x && not y
             in
             if z then Accept else Reject
           | Branch b1, Branch b2 -> mk (go b1.lo b2.lo) (go b1.hi b2.hi)
           | _ -> assert false (* equal heights *)
         in
         Hashtbl.add memo key n;
         n)
  in
  { len = t1.len; root = go t1.root t2.root }

let union ?guard t1 t2 = apply ?guard Union t1 t2
let inter ?guard t1 t2 = apply ?guard Inter t1 t2
let diff ?guard t1 t2 = apply ?guard Diff t1 t2

let complement ?guard t =
  let g = ambient_guard guard in
  let memo : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match n with
    | Accept -> Reject
    | Reject -> Accept
    | Branch b -> (
        match Hashtbl.find_opt memo b.id with
        | Some n -> n
        | None ->
          Guard.tick g;
          let n = mk (go b.lo) (go b.hi) in
          Hashtbl.add memo b.id n;
          n)
  in
  { len = t.len; root = go t.root }

let concat ?guard t1 t2 =
  let g = ambient_guard guard in
  let bottom = rejects t2.len in
  let memo : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match n with
    | Accept -> t2.root
    | Reject -> bottom
    | Branch b -> (
        match Hashtbl.find_opt memo b.id with
        | Some n -> n
        | None ->
          Guard.tick g;
          let n = mk (go b.lo) (go b.hi) in
          Hashtbl.add memo b.id n;
          n)
  in
  { len = t1.len + t2.len; root = go t1.root }

let equal t1 t2 = t1.len = t2.len && node_id t1.root = node_id t2.root

let subset ?guard t1 t2 =
  check_same_len "subset" t1 t2;
  is_empty (diff ?guard t1 t2)

let disjoint ?guard t1 t2 =
  check_same_len "disjoint" t1 t2;
  is_empty (inter ?guard t1 t2)

let cardinal ?guard t =
  let g = ambient_guard guard in
  let memo : (int, Bignum.t) Hashtbl.t = Hashtbl.create 256 in
  let rec go n =
    match n with
    | Accept -> Bignum.one
    | Reject -> Bignum.zero
    | Branch b -> (
        match Hashtbl.find_opt memo b.id with
        | Some c -> c
        | None ->
          Guard.tick g;
          let c =
            if b.full then Bignum.two_pow b.height
            else if not b.nonempty then Bignum.zero
            else Bignum.add (go b.lo) (go b.hi)
          in
          Hashtbl.add memo b.id c;
          c)
  in
  go t.root

let cardinal_int ?guard t = Bignum.to_int (cardinal ?guard t)

let node_count ?guard t =
  let g = ambient_guard guard in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let count = ref 0 in
  let rec go n =
    match n with
    | Accept | Reject -> ()
    | Branch b ->
      if not (Hashtbl.mem seen b.id) then begin
        Guard.tick g;
        Hashtbl.add seen b.id ();
        incr count;
        go b.lo;
        go b.hi
      end
  in
  go t.root;
  !count

let min_word t =
  if is_empty t then None
  else begin
    let buf = Buffer.create t.len in
    let rec go n =
      match n with
      | Accept -> ()
      | Reject -> assert false
      | Branch b ->
        if nonempty b.lo then begin
          Buffer.add_char buf 'a';
          go b.lo
        end
        else begin
          Buffer.add_char buf 'b';
          go b.hi
        end
    in
    go t.root;
    Some (Buffer.contents buf)
  end

let min_absent_word t =
  if is_full t then None
  else begin
    let buf = Buffer.create t.len in
    let rec go n h =
      match n with
      | Reject -> for _ = 1 to h do Buffer.add_char buf 'a' done
      | Accept -> assert false
      | Branch b ->
        if not (node_full b.lo) then begin
          Buffer.add_char buf 'a';
          go b.lo (h - 1)
        end
        else begin
          Buffer.add_char buf 'b';
          go b.hi (h - 1)
        end
    in
    go t.root t.len;
    Some (Buffer.contents buf)
  end

let words t =
  (* lexicographic DFS: 'a' (lo) before 'b' (hi) *)
  let rec seq prefix n () =
    match n with
    | Reject -> Seq.Nil
    | Accept -> Seq.Cons (prefix, Seq.empty)
    | Branch b when not b.nonempty -> Seq.Nil (* prune dead subtrees *)
    | Branch b ->
      Seq.append (seq (prefix ^ "a") b.lo) (seq (prefix ^ "b") b.hi) ()
  in
  if is_empty t then Seq.empty else seq "" t.root

let iter_words f t = Seq.iter f (words t)

let filter p t =
  of_word_list t.len
    (Seq.fold_left (fun acc w -> if p w then w :: acc else acc) [] (words t))

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat ", " (List.of_seq (words t)))
