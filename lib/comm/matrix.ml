open Ucfg_word
open Ucfg_lang
module Bitset = Ucfg_util.Bitset

(* Row/column labels are never materialised: a label is recomputed from its
   index on demand.  [Codes] marks a matrix whose indices are packed word
   codes ({!Ucfg_lang.Packed}); [Enum] covers any alphabet via base-k
   digits, matching [Word.enumerate]'s lexicographic order. *)
type labels =
  | No_labels
  | Codes of { row_len : int; col_len : int }
  | Enum of { alpha : Alphabet.t; row_len : int; col_len : int }

type t = {
  rows : int;
  cols : int;
  data : Bitset.t array;  (** one bitset per row *)
  labels : labels;
}

let max_side = 1 lsl 20

let of_predicate ~rows ~cols f =
  if rows < 0 || cols < 0 || rows > max_side || cols > max_side then
    invalid_arg "Matrix.of_predicate: bad dimensions";
  let data =
    Array.init rows (fun i ->
        Bitset.of_list cols
          (List.filter (fun j -> f i j) (Ucfg_util.Prelude.range 0 cols)))
  in
  { rows; cols; data; labels = No_labels }

(* k^e, saturating just above [max_side] (enough for the size check) *)
let ipow k e =
  let rec go acc e =
    if e = 0 || acc > max_side then acc else go (acc * k) (e - 1)
  in
  go 1 e

let of_language alpha l ~split =
  match Lang.uniform_length l with
  | None -> invalid_arg "Matrix.of_language: mixed word lengths"
  | Some len ->
    if split < 0 || split > len then invalid_arg "Matrix.of_language: bad split";
    let k = Alphabet.size alpha in
    let rows = ipow k split and cols = ipow k (len - split) in
    if rows > max_side || cols > max_side then
      invalid_arg "Matrix.of_language: matrix too large";
    let packed =
      if Alphabet.equal alpha Alphabet.binary then
        Lang.to_packed (Lang.pack l)
      else None
    in
    (match packed with
     | Some p when Packed.length p = len ->
       (* the kernel path: a word code splits as
          [code = row_code lsl (len - split) lor col_code], and the codes
          arrive in ascending (row-major) order — each row's bits are set
          directly, no strings and no membership tests *)
       let data = Array.init rows (fun _ -> Bitset.create cols) in
       let shift = len - split in
       let mask = cols - 1 in
       Seq.iter
         (fun c -> Bitset.Mut.set data.(c lsr shift) (c land mask))
         (Packed.codes p);
       {
         rows;
         cols;
         data;
         labels = Codes { row_len = split; col_len = len - split };
       }
     | _ ->
       let col_words = Array.of_seq (Word.enumerate alpha (len - split)) in
       let data =
         Array.of_seq
           (Seq.map
              (fun x ->
                 Bitset.of_list cols
                   (Array.to_list col_words
                    |> List.mapi (fun j y -> (j, y))
                    |> List.filter_map (fun (j, y) ->
                        if Lang.mem (x ^ y) l then Some j else None)))
              (Word.enumerate alpha split))
       in
       {
         rows;
         cols;
         data;
         labels = Enum { alpha; row_len = split; col_len = len - split };
       })

let rows t = t.rows
let cols t = t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Matrix.get: out of range";
  Bitset.mem t.data.(i) j

let row t i =
  if i < 0 || i >= t.rows then invalid_arg "Matrix.row: out of range";
  t.data.(i)

let ones t = Array.fold_left (fun acc r -> acc + Bitset.cardinal r) 0 t.data

(* index -> word, inverting [Word.enumerate]'s order: base-k digits,
   most significant first, digit d = [Alphabet.char_at alpha d] *)
let enum_word alpha len idx =
  let k = Alphabet.size alpha in
  let b = Bytes.create len in
  let r = ref idx in
  for pos = len - 1 downto 0 do
    Bytes.set b pos (Alphabet.char_at alpha (!r mod k));
    r := !r / k
  done;
  Bytes.to_string b

let row_label t i =
  match t.labels with
  | No_labels -> invalid_arg "Matrix.row_label: unlabelled matrix"
  | _ when i < 0 || i >= t.rows -> invalid_arg "Matrix.row_label: out of range"
  | Codes { row_len; _ } -> Packed.word_of_code ~len:row_len i
  | Enum { alpha; row_len; _ } -> enum_word alpha row_len i

let col_label t j =
  match t.labels with
  | No_labels -> invalid_arg "Matrix.col_label: unlabelled matrix"
  | _ when j < 0 || j >= t.cols -> invalid_arg "Matrix.col_label: out of range"
  | Codes { col_len; _ } -> Packed.word_of_code ~len:col_len j
  | Enum { alpha; col_len; _ } -> enum_word alpha col_len j

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      Format.pp_print_char fmt (if get t i j then '1' else '0')
    done;
    Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
