open Ucfg_rect
module IntSet = Set.Make (Int)

type outcome =
  | Exact of int
  | Budget_exhausted of int
  | Interrupted of int * Ucfg_exec.Guard.reason

exception Out_of_budget

(* all subsets of a list (as lists); the caller bounds the length *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let s = subsets rest in
    s @ List.map (fun l -> x :: l) s

let minimum ?guard ?(budget = 2_000_000) ~n target =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let partitions = Partition.all_balanced ~n in
  let target_set = IntSet.of_list target in
  let nodes = ref 0 in
  let tick () =
    Ucfg_exec.Guard.tick guard;
    incr nodes;
    if !nodes > budget then raise Out_of_budget
  in
  (* candidate rectangles containing the element [w], lying inside
     [remaining]; exhaustive over component subsets *)
  let candidates remaining w =
    List.concat_map
      (fun p ->
         let ins = Partition.inside p and out = Partition.outside p in
         let o_w = w land out and i_w = w land ins in
         (* values occurring in remaining *)
         let outers = Hashtbl.create 16 and inners = Hashtbl.create 16 in
         IntSet.iter
           (fun m ->
              Hashtbl.replace outers (m land out) ();
              Hashtbl.replace inners (m land ins) ())
           remaining;
         let outer_vals =
           Hashtbl.fold (fun k () acc -> if k <> o_w then k :: acc else acc)
             outers []
         in
         let inner_vals =
           Hashtbl.fold (fun k () acc -> if k <> i_w then k :: acc else acc)
             inners []
         in
         if List.length outer_vals > 10 || List.length inner_vals > 10 then
           raise Out_of_budget
         else begin
           List.concat_map
             (fun os ->
                let os = o_w :: os in
                List.filter_map
                  (fun is ->
                     let is = i_w :: is in
                     tick ();
                     let members =
                       List.concat_map (fun o -> List.map (fun i -> o lor i) is) os
                     in
                     if List.for_all (fun m -> IntSet.mem m remaining) members
                     then Some (IntSet.of_list members)
                     else None)
                  (subsets inner_vals))
             (subsets outer_vals)
         end)
      partitions
  in
  (* depth-limited DFS: can [remaining] be covered with [k] rectangles? *)
  let rec covers remaining k =
    tick ();
    if IntSet.is_empty remaining then true
    else if k = 0 then false
    else begin
      let w = IntSet.min_elt remaining in
      List.exists
        (fun members -> covers (IntSet.diff remaining members) (k - 1))
        (candidates remaining w)
    end
  in
  let refuted = ref 0 in
  try
    if IntSet.is_empty target_set then Exact 0
    else begin
      let rec loop k =
        if covers target_set k then Exact k
        else begin
          refuted := k;
          loop (k + 1)
        end
      in
      loop 1
    end
  with
  | Out_of_budget -> Budget_exhausted (!refuted + 1)
  | Ucfg_exec.Guard.Interrupt r -> Interrupted (!refuted + 1, r)

let minimum_ln ?guard ?budget n =
  minimum ?guard ?budget ~n (List.of_seq (Ucfg_lang.Ln.codes n))
