open Ucfg_rect
module IntSet = Set.Make (Int)
module Memo = Ucfg_exec.Memo
module Checkpoint = Ucfg_exec.Checkpoint

type outcome =
  | Exact of int
  | Budget_exhausted of int
  | Interrupted of int * Ucfg_exec.Guard.reason

type run = {
  outcome : outcome;
  nodes : int;
  memo_hits : int;
  memo_misses : int;
  resumed : bool;
  checkpoint_written : string option;
  checkpoint_warning : string option;
}

exception Out_of_budget

exception Corrupt_payload

(* all subsets of a list, lazily: the eager version materialised all 2^n
   lists up front with quadratic append copying; this one streams them in
   the same order, so consumers tick-poll as they go and short-circuit
   without paying for the unvisited tail *)
let rec subsets = function
  | [] -> Seq.return []
  | x :: rest ->
    let s = subsets rest in
    Seq.append s (Seq.map (fun l -> x :: l) s)

let minimum_run ?guard ?(budget = 2_000_000) ?(memo = true) ?checkpoint
    ?(resume = false) ~n target =
  let guard =
    match guard with
    | Some gd -> gd
    | None -> Ucfg_exec.Exec.current_guard ()
  in
  let partitions = List.mapi (fun i p -> (i, p)) (Partition.all_balanced ~n) in
  let target_set = IntSet.of_list target in
  let set_text s =
    String.concat "," (List.map string_of_int (IntSet.elements s))
  in
  let params =
    Printf.sprintf "params cover %d %d %s" n budget
      (Digest.to_hex (Digest.string (set_text target_set)))
  in
  let memo_tbl = if memo then Some (Memo.create ()) else None in
  let parse_payload payload =
    match String.split_on_char '\n' payload with
    | p :: rest when p = params ->
      (try
         let refuted0 = ref 0 in
         let entries = ref [] in
         List.iter
           (fun line ->
              match String.split_on_char ' ' line with
              | [] | [ "" ] -> ()
              | [ "refuted"; k ] -> refuted0 := int_of_string k
              | [ "memo"; key; v ] -> entries := (key, v) :: !entries
              | _ -> raise Corrupt_payload)
           rest;
         if !refuted0 < 0 then raise Corrupt_payload;
         Ok (!refuted0, List.rev !entries)
       with Corrupt_payload | Failure _ ->
         Error "unparseable checkpoint payload")
    | _ -> Error "parameter mismatch (different search or library version)"
  in
  let warning = ref None in
  let was_resumed = ref false in
  let start_refuted = ref 0 in
  (match checkpoint with
   | Some dir when resume -> (
       match Checkpoint.load ~dir with
       | Checkpoint.Absent -> ()
       | Checkpoint.Invalid reason -> warning := Some reason
       | Checkpoint.Loaded payload -> (
           match parse_payload payload with
           | Ok (refuted0, entries) ->
             start_refuted := refuted0;
             (match memo_tbl with
              | Some m -> Memo.add_entries m entries
              | None -> ());
             was_resumed := true
           | Error reason -> warning := Some reason))
   | _ -> ());
  let nodes = ref 0 in
  let tick () =
    Ucfg_exec.Guard.tick guard;
    incr nodes;
    if !nodes > budget then raise Out_of_budget
  in
  (* maximal candidate rectangles for one balanced partition [p]: contain
     the element [w], lie inside [remaining]; exhaustive over component
     subsets, streamed lazily *)
  let partition_candidates p remaining w =
    let ins = Partition.inside p and out = Partition.outside p in
    let o_w = w land out and i_w = w land ins in
    (* values occurring in remaining *)
    let outers = Hashtbl.create 16 and inners = Hashtbl.create 16 in
    IntSet.iter
      (fun m ->
         Hashtbl.replace outers (m land out) ();
         Hashtbl.replace inners (m land ins) ())
      remaining;
    let outer_vals =
      Hashtbl.fold (fun k () acc -> if k <> o_w then k :: acc else acc)
        outers []
    in
    let inner_vals =
      Hashtbl.fold (fun k () acc -> if k <> i_w then k :: acc else acc)
        inners []
    in
    if List.length outer_vals > 10 || List.length inner_vals > 10 then
      raise Out_of_budget
    else
      Seq.concat_map
        (fun os ->
           let os = o_w :: os in
           Seq.filter_map
             (fun is ->
                let is = i_w :: is in
                tick ();
                let members =
                  List.concat_map (fun o -> List.map (fun i -> o lor i) is) os
                in
                if List.for_all (fun m -> IntSet.mem m remaining) members
                then Some (IntSet.of_list members)
                else None)
             (subsets inner_vals))
        (subsets outer_vals)
  in
  (* iterative deepening revisits the same [remaining] at every depth
     bound, so per-(partition, remaining) candidate lists are cached once
     complete; [w] is determined by [remaining] (its minimum).  A cached
     partition costs no ticks on revisit — the work was already paid. *)
  let cand_cache : (int * int list, IntSet.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  let candidates remaining w =
    Seq.concat_map
      (fun (pi, p) ->
         if memo then begin
           let key = (pi, IntSet.elements remaining) in
           match Hashtbl.find_opt cand_cache key with
           | Some lst -> List.to_seq lst
           | None ->
             let lst = List.of_seq (partition_candidates p remaining w) in
             Hashtbl.add cand_cache key lst;
             List.to_seq lst
         end
         else partition_candidates p remaining w)
      (List.to_seq partitions)
  in
  let trans_key remaining k =
    Digest.to_hex
      (Digest.string (Printf.sprintf "%d:%s" k (set_text remaining)))
  in
  (* depth-limited DFS: can [remaining] be covered with [k] rectangles?
     The verdict is a deterministic function of (remaining, k), so
     completed verdicts go through the transposition table; aborted
     subtrees (budget, guard, width bailout) raise past it and are never
     recorded *)
  let rec covers remaining k =
    tick ();
    if IntSet.is_empty remaining then true
    else if k = 0 then false
    else begin
      let decide () =
        let w = IntSet.min_elt remaining in
        Seq.exists
          (fun members -> covers (IntSet.diff remaining members) (k - 1))
          (candidates remaining w)
      in
      match memo_tbl with
      | None -> decide ()
      | Some m -> (
          let key = trans_key remaining k in
          match Memo.find m key with
          | Some v -> v = "1"
          | None ->
            let v = decide () in
            Memo.set m key (if v then "1" else "0");
            v)
    end
  in
  let refuted = ref !start_refuted in
  let memo_counts () =
    match memo_tbl with
    | Some m ->
      let s = Memo.stats m in
      (s.Memo.hits, s.Memo.misses)
    | None -> (0, 0)
  in
  (* the refuted cursor and the transposition entries survive a trip:
     a resumed run skips the already-refuted sizes and replays none of
     the recorded subtree verdicts *)
  let write_checkpoint () =
    match checkpoint with
    | None -> None
    | Some dir ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf params;
      Buffer.add_char buf '\n';
      Printf.bprintf buf "refuted %d\n" !refuted;
      (match memo_tbl with
       | Some m ->
         List.iter
           (fun (k, v) -> Printf.bprintf buf "memo %s %s\n" k v)
           (Memo.entries m)
       | None -> ());
      Some (Checkpoint.save ~dir (Buffer.contents buf))
  in
  let result outcome checkpoint_written =
    let hits, misses = memo_counts () in
    { outcome; nodes = !nodes; memo_hits = hits; memo_misses = misses;
      resumed = !was_resumed; checkpoint_written;
      checkpoint_warning = !warning }
  in
  let finish outcome =
    (match checkpoint with Some dir -> Checkpoint.clear ~dir | None -> ());
    result outcome None
  in
  try
    if IntSet.is_empty target_set then finish (Exact 0)
    else begin
      let rec loop k =
        if covers target_set k then finish (Exact k)
        else begin
          refuted := k;
          loop (k + 1)
        end
      in
      loop (!start_refuted + 1)
    end
  with
  | Out_of_budget -> result (Budget_exhausted (!refuted + 1)) (write_checkpoint ())
  | Ucfg_exec.Guard.Interrupt r ->
    result (Interrupted (!refuted + 1, r)) (write_checkpoint ())

let minimum ?guard ?budget ?memo ?checkpoint ?resume ~n target =
  (minimum_run ?guard ?budget ?memo ?checkpoint ?resume ~n target).outcome

let minimum_ln ?guard ?budget n =
  minimum ?guard ?budget ~n (List.of_seq (Ucfg_lang.Ln.codes n))
