let compatible m (r1, c1) (r2, c2) =
  not (Matrix.get m r1 c2) || not (Matrix.get m r2 c1)

let is_fooling m pairs =
  List.for_all (fun (r, c) -> Matrix.get m r c) pairs
  && begin
    let arr = Array.of_list pairs in
    let ok = ref true in
    Array.iteri
      (fun i p ->
         Array.iteri (fun j q -> if i < j && not (compatible m p q) then ok := false) arr)
      arr;
    !ok
  end

let greedy m =
  (* visit 1-entries sparsest-first: dense rows/columns (like the all-a
     word of L_n) are compatible with almost nothing and would poison a
     naive scan order *)
  let row_ones =
    Array.init (Matrix.rows m) (fun r ->
        Ucfg_util.Bitset.cardinal (Matrix.row m r))
  in
  let col_ones = Array.make (Matrix.cols m) 0 in
  for r = 0 to Matrix.rows m - 1 do
    Ucfg_util.Bitset.iter (fun c -> col_ones.(c) <- col_ones.(c) + 1)
      (Matrix.row m r)
  done;
  let entries = ref [] in
  for r = 0 to Matrix.rows m - 1 do
    Ucfg_util.Bitset.iter (fun c -> entries := (r, c) :: !entries)
      (Matrix.row m r)
  done;
  (* bucket sort on the (small, bounded) density key — stable, so the
     order is exactly the one [List.sort] produced *)
  let ordered =
    let buckets = Array.make (Matrix.rows m + Matrix.cols m + 1) [] in
    List.iter
      (fun ((r, c) as e) ->
         let k = row_ones.(r) + col_ones.(c) in
         buckets.(k) <- e :: buckets.(k))
      !entries;
    List.concat_map List.rev (Array.to_list buckets)
  in
  let chosen = ref [] in
  (* same scan, on row bitsets: (r,c) clashes with a chosen (r',c') iff
     M[r,c'] and M[r',c] — two bit probes, no bounds rechecks *)
  List.iter
    (fun ((r, c) as e) ->
       let row_r = Matrix.row m r in
       if
         List.for_all
           (fun ((_, c'), row_r') ->
              not (Ucfg_util.Bitset.mem row_r c' && Ucfg_util.Bitset.mem row_r' c))
           !chosen
       then chosen := (e, row_r) :: !chosen)
    ordered;
  List.rev_map fst !chosen

let diagonal m =
  let side = min (Matrix.rows m) (Matrix.cols m) in
  (* sparse rows first, for the same reason as in [greedy] *)
  let order =
    List.sort
      (fun i j ->
         compare
           (Ucfg_util.Bitset.cardinal (Matrix.row m i))
           (Ucfg_util.Bitset.cardinal (Matrix.row m j)))
      (Ucfg_util.Prelude.range 0 side)
  in
  let chosen = ref [] in
  List.iter
    (fun i ->
       if Matrix.get m i i
       && List.for_all (fun q -> compatible m (i, i) q) !chosen
       then chosen := (i, i) :: !chosen)
    order;
  List.rev !chosen
